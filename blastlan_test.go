package blastlan_test

import (
	"bytes"
	"testing"
	"time"

	"blastlan"
)

// The facade must be sufficient to reproduce the paper's headline result
// without touching internal packages.
func TestFacadeHeadline(t *testing.T) {
	m := blastlan.Standalone3Com()
	cfg := blastlan.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       blastlan.Blast,
		Strategy:       blastlan.GoBackN,
		RetransTimeout: blastlan.DefaultTr(m, 64),
	}
	b, err := blastlan.Simulate(cfg, blastlan.SimOptions{Cost: m})
	if err != nil || b.Failed() {
		t.Fatal(err, b.SendErr, b.RecvErr)
	}
	cfg.Protocol = blastlan.StopAndWait
	saw, err := blastlan.Simulate(cfg, blastlan.SimOptions{Cost: m})
	if err != nil || saw.Failed() {
		t.Fatal(err, saw.SendErr, saw.RecvErr)
	}
	ratio := float64(saw.Send.Elapsed) / float64(b.Send.Elapsed)
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("SAW/B = %.2f, want ≈ 2 (the paper's headline)", ratio)
	}
	// Analytic agreement.
	if got, want := b.Send.Elapsed, blastlan.TimeBlast(m, 64)+2*m.Propagation; got != want {
		t.Errorf("blast %v, formula %v", got, want)
	}
}

func TestFacadeVKernel(t *testing.T) {
	c, err := blastlan.NewCluster(blastlan.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := c.A.CreateProcess(8<<10, false)
	dst := c.B.CreateProcess(8<<10, true)
	copy(src.Bytes(), bytes.Repeat([]byte("v"), 8<<10))
	res, err := c.MoveTo(src, 0, dst, 0, 8<<10, blastlan.MoveOptions{
		Protocol: blastlan.Blast, Strategy: blastlan.GoBackN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Error("MoveTo corrupted data")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestFacadeMonteCarlo(t *testing.T) {
	m := blastlan.VKernel()
	est, err := blastlan.MonteCarloBlast(blastlan.MCParams{
		Cost: m, D: 64, PN: 1e-3, Tr: blastlan.TimeBlast(m, 64),
		Strategy: blastlan.GoBackN, Trials: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean <= 0 || est.Mean > 200*time.Millisecond {
		t.Errorf("mean = %v", est.Mean)
	}
	saw, err := blastlan.MonteCarloStopAndWait(blastlan.MCParams{
		Cost: m, D: 64, PN: 1e-3, Tr: 59 * time.Millisecond, Trials: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if saw.Mean <= est.Mean {
		t.Errorf("SAW %v should exceed blast %v", saw.Mean, est.Mean)
	}
}

func TestFacadeChecksumAndPresets(t *testing.T) {
	if blastlan.TransferChecksum(nil) != 0xffff {
		t.Error("empty checksum")
	}
	for _, m := range []blastlan.CostModel{
		blastlan.Standalone3Com(), blastlan.VKernel(),
		blastlan.ExcelanDMA(), blastlan.ModernGigabit(),
		blastlan.DoubleBuffered(blastlan.Standalone3Com()),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	for _, l := range []blastlan.LossModel{
		blastlan.NoLoss(), blastlan.TypicalEthernet(), blastlan.FullSpeedInterfaces(),
	} {
		if err := l.Validate(); err != nil {
			t.Error(err)
		}
	}
	if blastlan.Utilization(blastlan.Standalone3Com(), 64) > 0.40 {
		t.Error("utilization out of range")
	}
}
