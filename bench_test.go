// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the underlying machinery. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigureN times one full regeneration of
// that artifact (quick Monte-Carlo budgets); the reported values are
// printed by cmd/lanbench and archived in EXPERIMENTS.md.
package blastlan_test

import (
	"testing"
	"time"

	"blastlan"
	"blastlan/internal/core"
	"blastlan/internal/experiments"
	"blastlan/internal/mc"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/simrun"
	"blastlan/internal/wire"
)

// benchExperiment times one regeneration of a registered experiment.
func benchExperiment(b *testing.B, id string) {
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.Options{Seed: int64(i), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Skipped {
			b.Skip("substrate unavailable")
		}
	}
}

// One benchmark per table and figure in the paper's evaluation.
func BenchmarkTable1StandaloneProtocols(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2CostBreakdown(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkTable3VKernelMoveTo(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFigure3Timelines(b *testing.B)          { benchExperiment(b, "figure3") }
func BenchmarkFigure4ElapsedVsN(b *testing.B)         { benchExperiment(b, "figure4") }
func BenchmarkFigure5ExpectedTime(b *testing.B)       { benchExperiment(b, "figure5") }
func BenchmarkFigure6StdDeviation(b *testing.B)       { benchExperiment(b, "figure6") }
func BenchmarkUtilization(b *testing.B)               { benchExperiment(b, "util") }
func BenchmarkAblationDMA(b *testing.B)               { benchExperiment(b, "ablation-dma") }
func BenchmarkAblationBurst(b *testing.B)             { benchExperiment(b, "ablation-burst") }
func BenchmarkMultiblast(b *testing.B)                { benchExperiment(b, "multiblast") }
func BenchmarkUDPLoopback(b *testing.B)               { benchExperiment(b, "udp-loopback") }

// Micro-benchmarks of the machinery the experiments rest on.

// BenchmarkSimulatedBlast64KB times one full 64 KB error-free blast through
// the discrete-event simulator (the paper's core measurement).
func BenchmarkSimulatedBlast64KB(b *testing.B) {
	m := params.Standalone3Com()
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 500 * time.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := simrun.Transfer(cfg, simrun.Options{Cost: m})
		if err != nil || res.Failed() {
			b.Fatal(err, res.SendErr)
		}
	}
}

// BenchmarkSimulatedBlastLossy64KB adds 1% loss and go-back-n recovery.
func BenchmarkSimulatedBlastLossy64KB(b *testing.B) {
	m := params.VKernel()
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: blastlan.TimeBlast(m, 64),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := simrun.Transfer(cfg, simrun.Options{Cost: m,
			Loss: params.LossModel{PNet: 0.01}, Seed: int64(i)})
		if err != nil || res.Failed() {
			b.Fatal(err, res.SendErr)
		}
	}
}

// BenchmarkMonteCarloTrial times single strategy-level Monte-Carlo trials.
func BenchmarkMonteCarloTrial(b *testing.B) {
	m := params.VKernel()
	p := mc.Params{Cost: m, D: 64, PN: 1e-3, Tr: blastlan.TimeBlast(m, 64),
		Strategy: core.GoBackN, Trials: 1, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := mc.Blast(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeDecode times the packet codec round trip on reused
// buffers: Encode into a capacity-sufficient buffer and DecodeInto a reused
// Packet perform no allocation at all.
func BenchmarkWireEncodeDecode(b *testing.B) {
	pkt := &wire.Packet{
		Type: wire.TypeData, Trans: 7, Seq: 41, Total: 64,
		Payload: make([]byte, 1000),
	}
	buf := make([]byte, 0, 1100)
	var dec wire.Packet
	b.ReportAllocs()
	b.SetBytes(int64(wire.HeaderSize + len(pkt.Payload)))
	for i := 0; i < b.N; i++ {
		out, err := pkt.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := wire.DecodeInto(&dec, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedBlastReusedKernel is BenchmarkSimulatedBlast64KB with
// the kernel (and its event/waiter pools) reused across transfers, the way
// the parallel sampler drives trials.
func BenchmarkSimulatedBlastReusedKernel(b *testing.B) {
	m := params.Standalone3Com()
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 500 * time.Millisecond,
	}
	k := sim.NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := simrun.TransferOn(k, cfg, simrun.Options{Cost: m})
		if err != nil || res.Failed() {
			b.Fatal(err, res.SendErr)
		}
	}
}

// BenchmarkSampler32Lossy times a 32-trial parallel sample of a lossy 64 KB
// blast — the unit of work every stochastic figure point is built from.
func BenchmarkSampler32Lossy(b *testing.B) {
	m := params.VKernel()
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: blastlan.TimeBlast(m, 64),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := simrun.Sample(cfg, simrun.Options{Cost: m,
			Loss: params.LossModel{PNet: 0.01}, Seed: int64(i)}, 32)
		if err != nil || st.Failures > 0 {
			b.Fatalf("sample: %v (%d failures)", err, st.Failures)
		}
	}
}

// BenchmarkAnalyticFigure5Point times one closed-form figure point.
func BenchmarkAnalyticFigure5Point(b *testing.B) {
	t01 := 5900 * time.Microsecond
	t0d := 173 * time.Millisecond
	for i := 0; i < b.N; i++ {
		_ = blastlan.ExpectedTimeStopAndWait(t01, 10*t01, 64, 1e-4)
		_ = blastlan.ExpectedTimeBlast(t0d, t0d, 64, 1e-4)
		_ = blastlan.StdDevFullNoNak(t0d, t0d, 64, 1e-4)
	}
}
