package blastlan_test

import (
	"fmt"
	"time"

	"blastlan"
)

// ExampleSimulate reproduces the paper's headline measurement: a 64 KB
// blast on the measured SUN/3-Com/Ethernet cost model.
func ExampleSimulate() {
	cost := blastlan.Standalone3Com()
	res, err := blastlan.Simulate(blastlan.Config{
		Bytes:          64 << 10,
		Protocol:       blastlan.Blast,
		Strategy:       blastlan.GoBackN, // §3.2's recommendation
		RetransTimeout: 500 * time.Millisecond,
	}, blastlan.SimOptions{Cost: cost})
	if err != nil || res.Failed() {
		panic(err)
	}
	fmt.Printf("64 KB blast: %v (formula %v + 2τ)\n",
		res.Send.Elapsed, blastlan.TimeBlast(cost, 64))
	// Output:
	// 64 KB blast: 140.59ms (formula 140.57ms + 2τ)
}

// ExampleTimeStopAndWait shows the §2.1.3 closed forms directly.
func ExampleTimeStopAndWait() {
	m := blastlan.Standalone3Com()
	fmt.Printf("T_SAW(64) = %v\n", blastlan.TimeStopAndWait(m, 64))
	fmt.Printf("T_B(64)   = %v\n", blastlan.TimeBlast(m, 64))
	fmt.Printf("u(64)     = %.1f%%\n", 100*blastlan.Utilization(m, 64))
	// Output:
	// T_SAW(64) = 250.2656ms
	// T_B(64)   = 140.57ms
	// u(64)     = 37.3%
}

// ExampleMonteCarloBlast estimates the elapsed-time distribution under
// loss, the paper's §3.2.3 method.
func ExampleMonteCarloBlast() {
	m := blastlan.VKernel()
	est, err := blastlan.MonteCarloBlast(blastlan.MCParams{
		Cost:     m,
		D:        64,
		PN:       1e-4, // the paper's full-speed interface error rate
		Tr:       blastlan.TimeBlast(m, 64),
		Strategy: blastlan.GoBackN,
		Trials:   50000,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean within 2%% of error-free: %v\n",
		float64(est.Mean) < 1.02*float64(blastlan.TimeBlast(m, 64)))
	// Output:
	// mean within 2% of error-free: true
}
