// Quickstart: reproduce the paper's headline result in a dozen lines.
//
// A 64 KB transfer is simulated on the paper's measured hardware model
// (SUN workstation + 3-Com interface + 10 Mb/s Ethernet) under all three
// protocol classes, and the measured times are compared with §2.1.3's
// closed forms. Stop-and-wait comes out ≈2× slower than blast — not the
// ≤10 % that wire-time arithmetic predicts — because per-packet copies
// dominate and only blast/sliding-window overlap them across the two hosts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"blastlan"
)

func main() {
	cost := blastlan.Standalone3Com()
	const size = 64 << 10
	packets := size / 1024

	fmt.Printf("64 KB over a 10 Mb/s Ethernet, C=%v T=%v (copies dominate!)\n\n",
		cost.C(), cost.T())
	fmt.Printf("%-16s %12s %12s\n", "protocol", "simulated", "formula")

	type variant struct {
		name    string
		proto   blastlan.Protocol
		cost    blastlan.CostModel
		formula func() any
	}
	variants := []variant{
		{"stop-and-wait", blastlan.StopAndWait, cost,
			func() any { return blastlan.TimeStopAndWait(cost, packets) }},
		{"sliding-window", blastlan.SlidingWindow, cost,
			func() any { return blastlan.TimeSlidingWin(cost, packets) }},
		{"blast", blastlan.Blast, cost,
			func() any { return blastlan.TimeBlast(cost, packets) }},
		{"blast dbl-buf", blastlan.BlastAsync, blastlan.DoubleBuffered(cost),
			func() any { return blastlan.TimeBlastDouble(blastlan.DoubleBuffered(cost), packets) }},
	}

	var saw, blast float64
	for _, v := range variants {
		res, err := blastlan.Simulate(blastlan.Config{
			TransferID:     1,
			Bytes:          size,
			Protocol:       v.proto,
			Strategy:       blastlan.GoBackN,
			RetransTimeout: blastlan.DefaultTr(cost, packets),
		}, blastlan.SimOptions{Cost: v.cost})
		if err != nil || res.Failed() {
			log.Fatalf("%s: %v %v %v", v.name, err, res.SendErr, res.RecvErr)
		}
		fmt.Printf("%-16s %12v %12v\n", v.name, res.Send.Elapsed, v.formula())
		switch v.proto {
		case blastlan.StopAndWait:
			saw = float64(res.Send.Elapsed)
		case blastlan.Blast:
			blast = float64(res.Send.Elapsed)
		}
	}
	fmt.Printf("\nstop-and-wait / blast = %.2f  (the paper: \"about twice as much time\")\n", saw/blast)
	fmt.Printf("network utilization of the blast: %.0f%% (the paper: \"only 38 percent\")\n",
		100*blastlan.Utilization(cost, packets))
}
