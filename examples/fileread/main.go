// Fileread: the paper's motivating workload — a diskless workstation
// reading file pages from a file server through the V kernel's MoveTo.
//
// "When a process wants to read an entire file into its address space, it
// first allocates a buffer big enough to contain that file. It then sends a
// message to the file server … the file server reads the file from disk,
// and then uses MoveTo to move the file from its address space into that of
// the client." (§2)
//
// This example builds a two-kernel cluster (file server on kernel alpha,
// client on kernel beta), "reads" files of increasing page size, and shows
// why the paper's conclusion — use a blast protocol — matters for file
// access performance: kernel-level copies make stop-and-wait pay double.
//
//	go run ./examples/fileread
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"blastlan"
)

// file is what the server holds: name plus contents in its address space.
type file struct {
	name string
	size int
}

func main() {
	files := []file{
		{"passwd", 1 << 10},
		{"page-4k", 4 << 10},
		{"page-16k", 16 << 10},
		{"kernel-image", 64 << 10},
	}

	fmt.Println("V-kernel file reads: MoveTo from file server to client buffer")
	fmt.Printf("%-14s %8s  %14s  %14s  %8s\n",
		"file", "bytes", "stop-and-wait", "blast", "ratio")

	for _, f := range files {
		// A fresh cluster per file keeps the simulated clocks independent.
		cluster, err := blastlan.NewCluster(blastlan.ClusterOptions{
			Cost: blastlan.VKernel(), // kernel-level copy costs (§2.2)
		})
		if err != nil {
			log.Fatal(err)
		}
		// The file server process has the file in its address space (the
		// "disk read" already happened).
		server := cluster.A.CreateProcess(f.size, false)
		rand.New(rand.NewSource(int64(f.size))).Read(server.Bytes())

		// Step 1 of the paper's sequence: the client "sends a message to
		// the file server indicating the starting address of the buffer
		// and its length" — V's synchronous 32-byte IPC.
		cluster.A.ServeIPC(func(req blastlan.VMessage) blastlan.VMessage {
			var reply blastlan.VMessage
			reply.PutUint32(0, 1)              // OK, transfer arranged
			reply.PutUint32(1, uint32(f.size)) // confirmed length
			return reply
		})
		var req blastlan.VMessage
		req.PutUint32(0, 0) // client buffer offset
		req.PutUint32(1, uint32(f.size))
		if _, _, err := cluster.Exchange(cluster.B, cluster.A, req, 10*time.Millisecond); err != nil {
			log.Fatalf("%s: IPC: %v", f.name, err)
		}

		var elapsed [2]float64
		for i, proto := range []blastlan.Protocol{blastlan.StopAndWait, blastlan.Blast} {
			// The client allocates its buffer *before* the transfer — the
			// precondition that lets the kernels skip intermediate copies.
			client := cluster.B.CreateProcess(f.size, true)
			res, err := cluster.MoveTo(server, 0, client, 0, f.size, blastlan.MoveOptions{
				Protocol: proto,
				Strategy: blastlan.GoBackN,
			})
			if err != nil {
				log.Fatalf("%s: %v", f.name, err)
			}
			if !bytes.Equal(client.Bytes(), server.Bytes()) {
				log.Fatalf("%s: file corrupted in transit", f.name)
			}
			elapsed[i] = float64(res.Elapsed)
		}
		fmt.Printf("%-14s %8d  %14s  %14s  %8.2f\n",
			f.name, f.size,
			fmt.Sprintf("%.2f ms", elapsed[0]/1e6),
			fmt.Sprintf("%.2f ms", elapsed[1]/1e6),
			elapsed[0]/elapsed[1])
	}

	// The local case: client and server on the same kernel — one block
	// move, no network, no per-packet costs (§2's local MoveTo).
	cluster, err := blastlan.NewCluster(blastlan.ClusterOptions{Cost: blastlan.VKernel()})
	if err != nil {
		log.Fatal(err)
	}
	server := cluster.A.CreateProcess(64<<10, false)
	local := cluster.A.CreateProcess(64<<10, true)
	res, err := cluster.MoveTo(server, 0, local, 0, 64<<10, blastlan.MoveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal 64 KB MoveTo (same kernel, no network): %v — %s\n",
		res.Elapsed, "one block move instead of 64 packet exchanges")
}
