// Loopback: the same protocol code that runs in the simulator, on real UDP
// sockets — the paper's standalone measurement method (§2.1.1) against a
// live network stack.
//
// An in-process server accepts push transfers; the client pushes 64 KB
// under each protocol, then repeats the blast with 5 % injected loss in
// both directions to exercise go-back-n recovery end to end, verifying the
// whole-transfer checksum (§4's software checksum) each time.
//
//	go run ./examples/loopback
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"blastlan"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

func main() {
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(1985)).Read(payload)
	want := blastlan.TransferChecksum(payload)

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("loopback sockets unavailable: %v", err)
	}
	defer conn.Close()

	received := make(chan []byte, 1)
	srv := blastlan.NewUDPServer(conn)
	srv.Sink = func(r wire.Req, data []byte) { received <- data }
	go srv.Run()

	push := func(label string, proto blastlan.Protocol, strat blastlan.Strategy, lossy bool) {
		e, err := blastlan.DialUDP(conn.LocalAddr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer e.Close()
		if lossy {
			e.MangleTx = udplan.SeededDrop(0.05, 7)
			e.MangleRx = udplan.SeededDrop(0.05, 8)
		}
		res, err := blastlan.PushUDP(e, blastlan.Config{
			TransferID:     uint32(time.Now().UnixNano()),
			Bytes:          len(payload),
			ChunkSize:      1000,
			Protocol:       proto,
			Strategy:       strat,
			RetransTimeout: 100 * time.Millisecond,
			MaxAttempts:    100,
			Linger:         250 * time.Millisecond,
			ReceiverIdle:   5 * time.Second,
			Payload:        payload,
		})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		data := <-received
		if !bytes.Equal(data, payload) || blastlan.TransferChecksum(data) != want {
			log.Fatalf("%s: payload corrupted", label)
		}
		fmt.Printf("%-28s %10v  %4d pkts (%3d retransmitted)  checksum %04x ok\n",
			label, res.Elapsed.Round(10*time.Microsecond),
			res.DataPackets, res.Retransmits, want)
	}

	fmt.Printf("pushing 64 KB over UDP loopback (%s)\n\n", conn.LocalAddr())
	push("stop-and-wait", blastlan.StopAndWait, blastlan.GoBackN, false)
	push("sliding-window", blastlan.SlidingWindow, blastlan.GoBackN, false)
	push("blast / go-back-n", blastlan.Blast, blastlan.GoBackN, false)
	push("blast + 5% loss, go-back-n", blastlan.Blast, blastlan.GoBackN, true)
	push("blast + 5% loss, selective", blastlan.Blast, blastlan.Selective, true)

	fmt.Println("\nno 10 Mb/s wire here — but per-packet kernel round trips play the role of")
	fmt.Println("the paper's copies, so blast still beats stop-and-wait by a wide margin.")
}
