// Filedump: a remote file-system dump — the paper's "larger sizes" case
// (§1, §3.1.3) — moved with multiblast.
//
// A 1 MB dump is 1024 packets. As transfers grow, "errors are more likely
// and retransmission becomes more costly", so the paper suggests breaking
// the transfer into multiple blasts, each individually acknowledged. This
// example sweeps the blast window under a lossy network and shows the
// trade: smaller windows cost a little more error-free time (one extra ack
// exchange per window) but bound how much a single error forces go-back-n
// to resend.
//
//	go run ./examples/filedump
package main

import (
	"fmt"
	"log"

	"blastlan"
)

func main() {
	const dumpBytes = 1 << 20
	packets := dumpBytes / 1024
	cost := blastlan.VKernel()
	loss := blastlan.LossModel{PNet: 2e-3}
	const trials = 40

	fmt.Printf("1 MB file-system dump (%d packets), pn = %g, go-back-n\n\n", packets, loss.PNet)
	fmt.Printf("%-14s %14s %14s %14s %12s\n",
		"window", "error-free", "mean (lossy)", "worst (lossy)", "resent/run")

	for _, window := range []int{16, 64, 256, 0} {
		cfg := blastlan.Config{
			TransferID:     1,
			Bytes:          dumpBytes,
			Protocol:       blastlan.Blast,
			Strategy:       blastlan.GoBackN,
			Window:         window,
			RetransTimeout: blastlan.DefaultTr(cost, packets) / 4,
		}
		clean, err := blastlan.Simulate(cfg, blastlan.SimOptions{Cost: cost})
		if err != nil || clean.Failed() {
			log.Fatal(err, clean.SendErr)
		}

		var sum, worst float64
		resent := 0
		for seed := int64(0); seed < trials; seed++ {
			res, err := blastlan.Simulate(cfg, blastlan.SimOptions{Cost: cost, Loss: loss, Seed: seed})
			if err != nil || res.Failed() {
				log.Fatal(err, res.SendErr)
			}
			e := float64(res.Send.Elapsed)
			sum += e
			if e > worst {
				worst = e
			}
			resent += res.Send.Retransmits
		}
		name := fmt.Sprintf("%d pkts", window)
		if window == 0 {
			name = "single blast"
		}
		fmt.Printf("%-14s %14s %14s %14s %12.1f\n",
			name,
			fmt.Sprintf("%.1f ms", float64(clean.Send.Elapsed)/1e6),
			fmt.Sprintf("%.1f ms", sum/trials/1e6),
			fmt.Sprintf("%.1f ms", worst/1e6),
			float64(resent)/trials)
	}

	fmt.Println("\nsmaller windows: slightly slower error-free, far less retransmitted data per error —")
	fmt.Println("§3.1.3: \"for such very large sizes, we suggest the use of multiple blasts\"")
}
