package main

// The loadN sweep: the many-client scale axis the substrate-agnostic
// session layer opened. Each row runs simrun.LoadScenario — N seeded
// clients with staggered arrivals and mixed sizes against one sharded
// simulated server — and reports how fast the DES plus session layer push
// simulated payload through, in payload MB per wall-clock second. The rows
// land in both the micro snapshot (BENCH_5.json) and the -udp gated
// snapshot, so ci/bench_floor.json guards the scale axis like the loopback
// throughput floors.

import (
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/simrun"
)

// loadCase is one row of the sweep.
type loadCase struct {
	name string
	n    int
}

// loadScenarioFor builds the benchmark scenario for n clients.
func loadScenarioFor(n int) simrun.LoadScenario {
	return simrun.LoadScenario{
		Name:        fmt.Sprintf("load%d", n),
		N:           n,
		Bytes:       []int{64 << 10, 256 << 10},
		Strategies:  []core.Strategy{core.GoBackN, core.Selective},
		Arrival:     50 * time.Millisecond,
		Concurrency: 8,
		Seed:        1,
	}
}

// appendLoadRows measures the sweep (N = 1, 8, 64) and appends one row per
// N. Each row is the best of reps runs (wall-clock DES throughput jitters
// with scheduler noise like any other wall-clock figure).
func appendLoadRows(snap *benchSnapshot, quick bool) error {
	reps := 3
	if quick {
		reps = 2
	}
	for _, c := range []loadCase{{"sim_load1", 1}, {"sim_load8", 8}, {"sim_load64", 64}} {
		sc := loadScenarioFor(c.n)
		var best time.Duration
		var bytes int64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			res, err := sc.Run()
			el := time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s: %w", c.name, err)
			}
			if res.Completed != sc.N {
				return fmt.Errorf("%s: %d of %d clients completed", c.name, res.Completed, sc.N)
			}
			bytes = res.AggBytes
			if best == 0 || el < best {
				best = el
			}
		}
		mbps := float64(bytes) / best.Seconds() / 1e6
		fmt.Printf("%-32s %10.1f %12v\n", c.name, mbps, best.Round(time.Millisecond))
		snap.Benchmarks = append(snap.Benchmarks, benchEntry{
			Name:       c.name,
			NsPerOp:    float64(best.Nanoseconds()),
			BytesPerOp: bytes,
			MBps:       mbps,
		})
	}
	return nil
}
