// Command lanbench regenerates the tables and figures of Zwaenepoel,
// "Protocols for Large Data Transfers over Local Networks" (SIGCOMM 1985).
//
// Usage:
//
//	lanbench                      # run everything
//	lanbench -experiment table1   # one artifact
//	lanbench -list                # enumerate artifacts
//	lanbench -quick               # reduced Monte-Carlo budgets
//
// Output is the paper-vs-measured comparison archived in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blastlan/internal/experiments"
)

func main() {
	var (
		id     = flag.String("experiment", "", "run a single experiment by id (default: all)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "reduce Monte-Carlo budgets ~30x")
		seed   = flag.Int64("seed", 1, "base seed for stochastic experiments")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	todo := experiments.All()
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []*experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, experiments.RenderCSV(res))
			continue
		}
		fmt.Print(experiments.Render(res))
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
