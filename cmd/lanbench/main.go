// Command lanbench regenerates the tables and figures of Zwaenepoel,
// "Protocols for Large Data Transfers over Local Networks" (SIGCOMM 1985).
//
// Usage:
//
//	lanbench                      # run everything, in parallel
//	lanbench -experiment table1   # one artifact
//	lanbench -experiment ablation-adversary  # hostile-network ablation
//	lanbench -list                # enumerate artifacts
//	lanbench -quick               # reduced Monte-Carlo budgets
//	lanbench -parallel=false      # sequential sampling (bit-identical output)
//	lanbench -benchjson BENCH_1.json  # machine-readable perf snapshot
//
// Output is the paper-vs-measured comparison archived in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/experiments"
	"blastlan/internal/mc"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/wire"
)

func main() {
	var (
		id       = flag.String("experiment", "", "run a single experiment by id (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduce Monte-Carlo budgets ~30x")
		seed     = flag.Int64("seed", 1, "base seed for stochastic experiments")
		format   = flag.String("format", "text", "output format: text or csv")
		parallel = flag.Bool("parallel", true,
			"fan DES sampling and figure points across GOMAXPROCS workers (results are bit-identical either way; the Monte-Carlo estimator always uses GOMAXPROCS internally)")
		benchjson = flag.String("benchjson", "",
			"write a machine-readable micro-benchmark snapshot (ns/op, allocs/op) to this file and exit")
		udp = flag.Bool("udp", false,
			"run the loopback UDP datapath throughput suite (batched vs single-syscall vs pre-batching legacy, plus the striped streams×policy sweep) instead of the paper experiments; writes -benchjson when set")
		streams = flag.Int("streams", 0,
			"with -udp: restrict the striped sweep to this stream count (0: full {1,2,4,8} sweep plus the classic single-stream cases)")
		ctrlName = flag.String("controller", "",
			"with -udp: restrict the striped sweep to one rate-control policy ("+strings.Join(core.ControllerNames(), ", ")+")")
		adaptive = flag.Bool("adaptive", false,
			"deprecated: same as -controller=aimd")
		tier = flag.String("tier", "auto",
			"with -udp: cap the datapath tier of the classic pull cases (gso, mmsg, writeto, auto); the snapshot records the tier that actually ran")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	controller := *ctrlName
	if *adaptive && controller == "" {
		fmt.Fprintf(os.Stderr, "lanbench: -adaptive is deprecated; use -controller=%s\n", core.ControllerAIMD)
		controller = core.ControllerAIMD
	}
	if controller != "" && core.ControllerID(controller) == 0 {
		fmt.Fprintf(os.Stderr, "lanbench: unknown controller %q (registered: %s)\n",
			controller, strings.Join(core.ControllerNames(), ", "))
		os.Exit(2)
	}

	if *udp {
		if err := runUDPBench(*benchjson, *quick, *streams, controller, *tier); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchjson != "" {
		if err := writeBenchSnapshot(*benchjson); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	workers := 0 // all cores
	if !*parallel {
		workers = 1
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Workers: workers}
	todo := experiments.All()
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []*experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, experiments.RenderCSV(res))
			continue
		}
		fmt.Print(experiments.Render(res))
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// benchEntry is one micro-benchmark measurement in the snapshot.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBps        float64 `json:"mbps,omitempty"` // end-to-end throughput cases only
	Tier        string  `json:"tier,omitempty"` // datapath tier that actually ran (UDP pull cases)
}

// benchSnapshot is the machine-readable perf record CI archives as
// BENCH_<n>.json; regressions show up as diffs against the committed file.
type benchSnapshot struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// writeBenchSnapshot runs the micro-benchmarks the experiments rest on and
// writes their results as JSON.
func writeBenchSnapshot(path string) error {
	blast64 := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 500 * time.Millisecond,
	}
	m := params.Standalone3Com()
	mv := params.VKernel()

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"wire_encode_decode", func(b *testing.B) {
			pkt := &wire.Packet{Type: wire.TypeData, Trans: 7, Seq: 41, Total: 64,
				Payload: make([]byte, 1000)}
			buf := make([]byte, 0, 1100)
			var dec wire.Packet
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := pkt.Encode(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				if err := wire.DecodeInto(&dec, out); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sim_blast_64kb", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := simrun.Transfer(blast64, simrun.Options{Cost: m})
				if err != nil || res.Failed() {
					b.Fatal(err, res.SendErr)
				}
			}
		}},
		{"sampler_blast_64kb_x32", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := simrun.Sample(blast64, simrun.Options{Cost: mv,
					Loss: params.LossModel{PNet: 1e-3}, Seed: int64(i)}, 32)
				if err != nil || st.Elapsed.N() == 0 {
					b.Fatalf("sample: %v (n=%d)", err, st.Elapsed.N())
				}
			}
		}},
		{"mc_blast_trial", func(b *testing.B) {
			p := mc.Params{Cost: mv, D: 64, PN: 1e-3, Tr: 200 * time.Millisecond,
				Strategy: core.GoBackN, Trials: 1, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Seed = int64(i)
				if _, err := mc.Blast(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	snap := benchSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		snap.Benchmarks = append(snap.Benchmarks, benchEntry{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-26s %12.1f ns/op %8d B/op %6d allocs/op\n",
			c.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	// The many-client scale axis: sharded sim server, N = 1/8/64 clients
	// through the shared session layer.
	if err := appendLoadRows(&snap, false); err != nil {
		return err
	}
	return writeSnapshot(snap, path)
}

// writeSnapshot serialises a benchmark snapshot to path.
func writeSnapshot(snap benchSnapshot, path string) error {
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
