package main

// The -udp mode: loopback throughput benchmarks for the real-UDP datapath,
// comparing the single-syscall path (batch=1), the sendmmsg/recvmmsg
// batched path (batch=32), and a faithful emulation of the pre-batching
// pipeline (serial server, whole payload materialised per pull, no
// streaming) as the baseline. Results are archived as BENCH_3.json and the
// EXPERIMENTS.md throughput table.

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// udpPullCase is one loopback pull measurement.
type udpPullCase struct {
	name   string
	bytes  int
	batch  int // sendmmsg/recvmmsg ring size; 1 = single-syscall
	window int
	legacy bool // pre-PR pipeline: serial server, materialised payload, no streaming
}

const udpSocketBuf = 4 << 20 // sized so a full window survives skb truesize accounting

// runUDPPull executes one measured pull and returns the elapsed wall time.
func runUDPPull(c udpPullCase) (time.Duration, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	if c.legacy {
		srv.Data = func(r wire.Req) ([]byte, bool) {
			payload := make([]byte, r.Bytes)
			rand.New(rand.NewSource(int64(r.Bytes))).Read(payload)
			return payload, true
		}
	} else {
		srv.Concurrency = 2
		srv.Batch = c.batch
		srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
			return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
		}
	}
	go srv.Run()

	e, err := udplan.Dial(conn.LocalAddr().String())
	if err != nil {
		return 0, err
	}
	defer e.Close()
	e.SetSocketBuffers(udpSocketBuf)
	if !c.legacy {
		e.SetBatch(c.batch)
	}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          c.bytes,
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         c.window,
		RetransTimeout: 250 * time.Millisecond,
		MaxAttempts:    10000,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   10 * time.Second,
	}
	if !c.legacy {
		cfg.Sink = func(int, []byte) {} // stream: checksum and discard
	}
	t0 := time.Now()
	res, err := udplan.Pull(e, cfg)
	elapsed := time.Since(t0)
	if err != nil {
		return elapsed, err
	}
	if res.Bytes != c.bytes {
		return elapsed, fmt.Errorf("pull delivered %d of %d bytes", res.Bytes, c.bytes)
	}
	return elapsed, nil
}

// setSocketBufs raises the kernel socket buffers so a whole blast window
// survives skb truesize accounting (see udplan.SetConnBuffers).
func setSocketBufs(conn net.PacketConn) { udplan.SetConnBuffers(conn, udpSocketBuf) }

// runUDPBench runs the loopback suite and writes BENCH-style JSON to path
// (when non-empty), printing a human-readable table either way.
func runUDPBench(path string, quick bool) error {
	sizes := []int{1 << 20, 16 << 20, 64 << 20}
	if quick {
		sizes = []int{1 << 20, 4 << 20}
	}
	snap := benchSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	fmt.Printf("%-28s %10s %12s\n", "case", "MB/s", "elapsed")
	for _, size := range sizes {
		mb := size >> 20
		cases := []udpPullCase{
			{fmt.Sprintf("udp_pull_%dmb_legacy", mb), size, 1, 128, true},
			{fmt.Sprintf("udp_pull_%dmb_batch1", mb), size, 1, 128, false},
			{fmt.Sprintf("udp_pull_%dmb_batch32", mb), size, 32, 128, false},
		}
		for _, c := range cases {
			// Best of three: wall-clock loopback runs jitter with scheduler
			// noise; the minimum is the repeatable hardware-bound figure.
			best := time.Duration(0)
			for i := 0; i < 3; i++ {
				el, err := runUDPPull(c)
				if err != nil {
					return fmt.Errorf("%s: %w", c.name, err)
				}
				if best == 0 || el < best {
					best = el
				}
			}
			mbps := float64(c.bytes) / best.Seconds() / 1e6
			fmt.Printf("%-28s %10.1f %12v\n", c.name, mbps, best.Round(time.Millisecond))
			snap.Benchmarks = append(snap.Benchmarks, benchEntry{
				Name:       c.name,
				NsPerOp:    float64(best.Nanoseconds()),
				BytesPerOp: int64(c.bytes),
				MBps:       mbps,
			})
		}
	}

	// Steady-state send-loop allocation check: the exact per-packet work of
	// a blast window body — fill the reused packet from the streaming
	// source, encode into the frame ring, flush every batch — against a
	// blackhole socket. Must be 0 allocs/op.
	for _, batch := range []int{1, 32} {
		r := testing.Benchmark(func(b *testing.B) { steadySendLoop(b, batch) })
		name := fmt.Sprintf("udp_send_steady_batch%d", batch)
		fmt.Printf("%-28s %10s %12v  %d allocs/op\n", name, "-",
			(time.Duration(r.NsPerOp())).Round(time.Nanosecond), r.AllocsPerOp())
		snap.Benchmarks = append(snap.Benchmarks, benchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	if path == "" {
		return nil
	}
	return writeSnapshot(snap, path)
}

// steadySendLoop benchmarks one data packet through the batched send path:
// source-generated payload, reused packet value, EncodeInto the frame ring,
// sendmmsg flush amortised over the batch.
func steadySendLoop(b *testing.B, batch int) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0") // never read: blackhole
	if err != nil {
		b.Skip(err)
	}
	defer sink.Close()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Skip(err)
	}
	defer conn.Close()
	e := udplan.NewEndpoint(conn, sink.LocalAddr())
	e.SetBatch(batch)

	const chunk = 1000
	n := 1 << 20 / chunk
	src := core.SeededSource(1, n*chunk, chunk)
	scratch := make([]byte, chunk)
	pkt := &wire.Packet{Type: wire.TypeData, Trans: 1, Total: uint32(n)}
	b.ReportAllocs()
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % n
		pkt.Seq = uint32(seq)
		pkt.Payload = src(seq, scratch)
		if err := e.Send(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.FlushBatch()
}
