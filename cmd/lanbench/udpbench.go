package main

// The -udp mode: loopback throughput benchmarks for the real-UDP datapath.
// The classic suite compares the single-syscall path (batch=1), the
// sendmmsg/recvmmsg batched path (batch=32), and a faithful emulation of
// the pre-batching pipeline (serial server, whole payload materialised per
// pull, no streaming) as the baseline — archived as BENCH_3.json and
// guarded by CI's perf-regression gate (cmd/benchgate). The striped sweep
// measures streams ∈ {1,2,4,8} × {fixed, aimd, bbr} pulls against the
// sharded server, on a clean loopback and under a 1% seeded drop adversary
// — archived as BENCH_4.json and the EXPERIMENTS.md streams×policy table
// (-controller restricts the sweep to one rate-control policy). The gated
// udp_pull_bbr_loss1 case pins the BBR policy's 16 MB striped pull under
// 1% loss against the ci/bench_floor.json floor.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/store"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// udpPullCase is one loopback pull measurement.
type udpPullCase struct {
	name       string
	bytes      int
	batch      int // sendmmsg/recvmmsg ring size; 1 = single-syscall
	window     int
	legacy     bool        // pre-PR pipeline: serial server, materialised payload, no streaming
	tier       udplan.Tier // datapath tier cap (TierAuto: probe for the best)
	controller string      // rate-control policy the REQ asks the server for
	drop       float64     // seeded wire-loss probability on the client endpoint
}

// minTier combines a case's tier cap with the -tier flag: the stricter of
// the two wins, TierAuto caps nothing.
func minTier(a, b udplan.Tier) udplan.Tier {
	if a == udplan.TierAuto {
		return b
	}
	if b != udplan.TierAuto && b < a {
		return b
	}
	return a
}

const udpSocketBuf = 4 << 20 // sized so a full window survives skb truesize accounting

// runUDPPull executes one measured pull and returns the elapsed wall time
// plus the datapath tier the client actually engaged (a gso-capped case
// degrades to mmsg on kernels without UDP_SEGMENT; the snapshot records
// which tier the number belongs to).
func runUDPPull(c udpPullCase) (time.Duration, udplan.Tier, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	if c.legacy {
		srv.Data = func(r wire.Req) ([]byte, bool) {
			payload := make([]byte, r.Bytes)
			rand.New(rand.NewSource(int64(r.Bytes))).Read(payload)
			return payload, true
		}
	} else {
		srv.Concurrency = 2
		srv.Batch = c.batch
		srv.MaxTier = c.tier
		srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
			return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
		}
	}
	go srv.Run()

	e, err := udplan.Dial(conn.LocalAddr().String())
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()
	e.SetSocketBuffers(udpSocketBuf)
	if !c.legacy {
		e.MaxTier = c.tier
		e.SetBatch(c.batch)
	}
	engaged := e.Tier()
	if c.drop > 0 {
		if err := e.SetAdversary(params.Adversary{Loss: params.LossModel{PNet: c.drop}}, 1); err != nil {
			return 0, engaged, err
		}
	}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          c.bytes,
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         c.window,
		Controller:     c.controller,
		RetransTimeout: 250 * time.Millisecond,
		MaxAttempts:    10000,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   10 * time.Second,
	}
	if !c.legacy {
		cfg.Sink = func(int, []byte) {} // stream: checksum and discard
	}
	t0 := time.Now()
	res, err := udplan.Pull(e, cfg)
	elapsed := time.Since(t0)
	if err != nil {
		return elapsed, engaged, err
	}
	if res.Bytes != c.bytes {
		return elapsed, engaged, fmt.Errorf("pull delivered %d of %d bytes", res.Bytes, c.bytes)
	}
	return elapsed, engaged, nil
}

// setSocketBufs raises the kernel socket buffers so a whole blast window
// survives skb truesize accounting (see udplan.SetConnBuffers).
func setSocketBufs(conn net.PacketConn) { udplan.SetConnBuffers(conn, udpSocketBuf) }

// filePullCase is one named pull from a real on-disk file through the
// disk-backed store (internal/store): stat by name, then pull through the
// sharded hot-object cache with pipelined read-ahead. cold measures the
// first pull against a fresh store; hot warms the cache with one pull and
// measures the second — the figure the bench floor gates, since a warm hot
// set must cost near what the in-memory generator path costs.
type filePullCase struct {
	name  string
	bytes int
	hot   bool
}

// runFilePull executes one file-backed pull case: a fresh store over a
// fresh temp directory per call, so cold reps really are cold as far as the
// store is concerned (the OS page cache stays warm across reps — the store
// cache, not the platter, is what this measures). The stat handshake runs
// before the timer starts, mirroring the generator cases, which have no
// stat either.
func runFilePull(c filePullCase, tier udplan.Tier) (time.Duration, udplan.Tier, error) {
	dir, err := os.MkdirTemp("", "lanbench-store-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	const object = "bench.bin"
	payload := core.SeededPayload(int64(c.bytes), c.bytes, 1000)
	if err := os.WriteFile(filepath.Join(dir, object), payload, 0o644); err != nil {
		return 0, 0, err
	}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	srv.Concurrency = 2
	srv.Batch = 32
	srv.MaxTier = tier
	st := store.Open(dir, store.Options{})
	defer st.Close()
	srv.SourceEnv = st.SourceReq
	srv.Stat = st.StatReq
	go srv.Run()

	pull := func() (time.Duration, udplan.Tier, error) {
		e, err := udplan.Dial(conn.LocalAddr().String())
		if err != nil {
			return 0, 0, err
		}
		defer e.Close()
		e.SetSocketBuffers(udpSocketBuf)
		e.MaxTier = tier
		e.SetBatch(32)
		engaged := e.Tier()
		cfg := core.Config{
			TransferID:     1,
			ChunkSize:      1000,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			Window:         128,
			RetransTimeout: 250 * time.Millisecond,
			MaxAttempts:    10000,
			Linger:         50 * time.Millisecond,
			ReceiverIdle:   10 * time.Second,
			Sink:           func(int, []byte) {}, // stream: checksum and discard
		}
		size, err := core.Stat(e, cfg, object)
		if err != nil {
			return 0, engaged, fmt.Errorf("stat: %w", err)
		}
		cfg.Name, cfg.Bytes = object, int(size)
		t0 := time.Now()
		res, err := udplan.Pull(e, cfg)
		elapsed := time.Since(t0)
		if err != nil {
			return elapsed, engaged, err
		}
		if res.Bytes != c.bytes {
			return elapsed, engaged, fmt.Errorf("file pull delivered %d of %d bytes", res.Bytes, c.bytes)
		}
		return elapsed, engaged, nil
	}
	if c.hot {
		if _, _, err := pull(); err != nil {
			return 0, 0, fmt.Errorf("warming pull: %w", err)
		}
	}
	return pull()
}

// runResumePull measures the failure-recovery path end to end: the server
// crashes (socket closed under its sessions) after serving half the chunks,
// a fresh socket rebinds the same port after a short downtime, and the
// client recovers through core.PullResume — frontier offset REQ, no
// verified chunk re-fetched. The elapsed time therefore includes crash
// detection (the dead session's idle bound), the downtime, and the resume
// round trip; the bench floor pins the whole recovered pull at ≥70% of the
// uninterrupted throughput floor. A small Tr keeps detection latency
// proportionate on loopback (RTT is microseconds).
func runResumePull(bytes int) (time.Duration, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	addr := conn.LocalAddr().String()
	const chunk = 1000
	crashAt := int64(bytes / chunk / 2)
	trigger := params.Faults{CrashAfterChunks: []int64{crashAt}}.Trigger()

	var (
		mu      sync.Mutex
		curConn net.PacketConn
	)
	srvDone := make(chan error, 2)
	var crash func()
	start := func(c net.PacketConn) {
		setSocketBufs(c)
		srv := udplan.NewServer(c)
		srv.Concurrency = 2
		srv.Batch = 32
		srv.SessionIdle = 2 * time.Second
		srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
			stream := int(r.StreamBytes())
			base := core.OffsetSource(
				core.SeededSource(int64(stream), stream, int(r.Chunk)),
				int(r.OffsetChunks))
			return func(seq int, dst []byte) []byte {
				if trigger.OnChunk() {
					crash()
				}
				return base(seq, dst)
			}, true
		}
		mu.Lock()
		curConn = c
		mu.Unlock()
		go func() { srvDone <- srv.Run() }()
	}
	restarted := make(chan struct{})
	crash = func() {
		mu.Lock()
		dead := curConn
		mu.Unlock()
		dead.Close()
		time.AfterFunc(10*time.Millisecond, func() {
			defer close(restarted)
			c2, err := net.ListenPacket("udp", addr)
			if err != nil {
				return // the client's resume budget reports the failure
			}
			start(c2)
		})
	}
	start(conn)

	e, err := udplan.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	e.SetSocketBuffers(udpSocketBuf)
	e.SetBatch(32)
	cfg := core.Config{
		TransferID:     1,
		Bytes:          bytes,
		ChunkSize:      chunk,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         128,
		RetransTimeout: 20 * time.Millisecond,
		// One REQ round per session: crash detection belongs to the resume
		// layer, whose offset REQ re-fetches only the unverified tail.
		MaxAttempts: 1,
		Sink:        func(int, []byte) {}, // stream: checksum and discard
	}
	t0 := time.Now()
	res, rstats, err := core.PullResume(e, cfg, core.ResumeOptions{
		MaxResumes: 16,
		Backoff:    5 * time.Millisecond,
		Seed:       1,
	})
	elapsed := time.Since(t0)
	if err != nil {
		return elapsed, err
	}
	if res.Bytes != bytes {
		return elapsed, fmt.Errorf("resumed pull delivered %d of %d bytes", res.Bytes, bytes)
	}
	if rstats.Sessions < 2 {
		return elapsed, fmt.Errorf("server never crashed (%d sessions)", rstats.Sessions)
	}
	<-restarted
	mu.Lock()
	curConn.Close()
	mu.Unlock()
	for i := 0; i < 2; i++ {
		if err := <-srvDone; err != nil {
			return elapsed, fmt.Errorf("server: %w", err)
		}
	}
	return elapsed, nil
}

// runBusyBackoff measures admission-control shedding: `clients` concurrent
// pulls against a server capped at 2 sessions with a short RETRY-AFTER
// hint. Refused clients honor the hint through PullResume's jittered
// backoff, so the makespan is the serialised transfer time plus the
// admission queueing — the figure quantifies what BUSY-and-retry costs over
// an uncontended pull, and the case fails outright if any client errors or
// nobody was ever refused.
func runBusyBackoff(bytes, clients int) (time.Duration, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	srv.Concurrency = 2
	srv.Batch = 32
	srv.RetryAfter = 10 * time.Millisecond
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
	}
	go srv.Run()
	defer srv.Close()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		busyWaits int
		firstErr  error
	)
	t0 := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := udplan.Dial(conn.LocalAddr().String())
			if err == nil {
				defer e.Close()
				e.SetSocketBuffers(udpSocketBuf)
				e.SetBatch(32)
				cfg := core.Config{
					TransferID:     uint32(1 + i),
					Bytes:          bytes,
					ChunkSize:      1000,
					Protocol:       core.Blast,
					Strategy:       core.GoBackN,
					Window:         128,
					RetransTimeout: 20 * time.Millisecond,
					Sink:           func(int, []byte) {},
				}
				var rstats core.ResumeStats
				_, rstats, err = core.PullResume(e, cfg, core.ResumeOptions{
					MaxBusyWaits: 1 << 20,
					Backoff:      5 * time.Millisecond,
					Seed:         int64(i),
				})
				mu.Lock()
				busyWaits += rstats.BusyWaits
				mu.Unlock()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d: %w", i, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return elapsed, firstErr
	}
	if busyWaits == 0 {
		return elapsed, fmt.Errorf("%d clients against a 2-session cap were never refused", clients)
	}
	return elapsed, nil
}

// runFanoutBench measures one-to-many distribution: a single source daemon
// serving the seeded object, fanned out to 8 receivers either through the
// depth-2 stripe-relay tree (relays=4: the source transmits each stripe
// once, cut-through relay boards serve the children while still receiving)
// or as 8 independent whole-object pulls (relays=0: the source pays 8×).
// Returns the fan-out's makespan; aggregate MB/s is 8×object over it.
func runFanoutBench(objBytes, relays, lineRate int) (time.Duration, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	srv.Concurrency = 16
	srv.Batch = 32
	srv.LineRate = lineRate
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		stream := int(r.StreamBytes())
		src := core.SeededSource(int64(stream), stream, int(r.Chunk))
		return core.OffsetSource(src, int(r.OffsetChunks)), true
	}
	go srv.Run()

	res, err := udplan.RunFanout(conn.LocalAddr().String(), udplan.FanoutOptions{
		N:         8,
		Relays:    relays,
		Bytes:     objBytes,
		Chunk:     1000,
		Window:    128,
		Tr:        250 * time.Millisecond,
		Batch:     32,
		SocketBuf: udpSocketBuf,
		LineRate:  lineRate,
	})
	if err != nil {
		return res.Elapsed, err
	}
	if res.Completed != 8 {
		for _, r := range res.Receivers {
			for _, so := range r.Stripes {
				if so.Err != nil {
					return res.Elapsed, fmt.Errorf("fanout receiver %d stripe %d: %w", r.Receiver, so.Stripe.Index, so.Err)
				}
			}
		}
		return res.Elapsed, fmt.Errorf("fanout completed %d of 8 receivers", res.Completed)
	}
	return res.Elapsed, nil
}

// stripedCase is one streams×policy×network loopback measurement.
type stripedCase struct {
	name       string
	bytes      int
	streams    int
	controller string  // rate-control policy ("": fixed window)
	drop       float64 // seeded per-stripe drop probability (0: clean)
}

// runStripedPull executes one striped pull against a sharded batched server
// and returns the elapsed wall time.
func runStripedPull(c stripedCase) (time.Duration, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	setSocketBufs(conn)
	srv := udplan.NewServer(conn)
	srv.Concurrency = c.streams + 1
	srv.Batch = 32
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		stream := int(r.StreamBytes())
		src := core.SeededSource(int64(stream), stream, int(r.Chunk))
		return core.OffsetSource(src, int(r.OffsetChunks)), true
	}
	go srv.Run()

	cfg := core.Config{
		TransferID:     1,
		Bytes:          c.bytes,
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.Selective,
		Window:         256,
		Controller:     c.controller,
		RetransTimeout: 250 * time.Millisecond,
		MaxAttempts:    10000,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   10 * time.Second,
	}
	opts := udplan.StripeOptions{
		Streams:   c.streams,
		Batch:     64,
		SocketBuf: 8 << 20,
	}
	if c.drop > 0 {
		opts.Adversary = params.Adversary{Loss: params.LossModel{PNet: c.drop}}
		opts.AdversarySeed = 1
	}
	t0 := time.Now()
	res, err := udplan.PullStriped(conn.LocalAddr().String(), cfg, opts)
	elapsed := time.Since(t0)
	if err != nil {
		return elapsed, err
	}
	if res.Bytes != c.bytes {
		return elapsed, fmt.Errorf("striped pull delivered %d of %d bytes", res.Bytes, c.bytes)
	}
	return elapsed, nil
}

// measurePull runs one named pull case reps times and records the best
// (minimum) elapsed time: wall-clock loopback runs jitter with scheduler
// noise, and the minimum is the repeatable hardware-bound figure. The row
// is printed and appended to the snapshot.
func measurePull(snap *benchSnapshot, name string, bytes, reps int, run func() (time.Duration, string, error)) error {
	best := time.Duration(0)
	tier := ""
	for i := 0; i < reps; i++ {
		el, tr, err := run()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tier = tr
		if best == 0 || el < best {
			best = el
		}
	}
	mbps := float64(bytes) / best.Seconds() / 1e6
	label := name
	if tier != "" {
		label = fmt.Sprintf("%s [%s]", name, tier)
	}
	fmt.Printf("%-32s %10.1f %12v\n", label, mbps, best.Round(time.Millisecond))
	snap.Benchmarks = append(snap.Benchmarks, benchEntry{
		Name:       name,
		NsPerOp:    float64(best.Nanoseconds()),
		BytesPerOp: int64(bytes),
		MBps:       mbps,
		Tier:       tier,
	})
	return nil
}

// runUDPBench runs the loopback suites and writes BENCH-style JSON to path
// (when non-empty), printing a human-readable table either way. streams > 0
// restricts the striped sweep to that stream count and skips the classic
// cases; controller restricts it to that rate-control policy.
func runUDPBench(path string, quick bool, streams int, controller string, tierName string) error {
	tierCap, err := udplan.ParseTier(tierName)
	if err != nil {
		return err
	}
	sizes := []int{1 << 20, 16 << 20, 64 << 20}
	if quick {
		sizes = []int{1 << 20, 4 << 20}
	}
	snap := benchSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	fmt.Printf("%-32s %10s %12s\n", "case", "MB/s", "elapsed")
	if streams == 0 {
		for _, size := range sizes {
			mb := size >> 20
			// batch32 stays pinned at the sendmmsg tier it has always
			// measured (so its floors keep meaning across kernels); _gso is
			// the segmentation-offload tier, degrading to mmsg where
			// UDP_SEGMENT is unsupported — the snapshot's tier column says
			// which actually ran.
			cases := []udpPullCase{
				{name: fmt.Sprintf("udp_pull_%dmb_legacy", mb), bytes: size, batch: 1, window: 128, legacy: true, tier: udplan.TierAuto},
				{name: fmt.Sprintf("udp_pull_%dmb_batch1", mb), bytes: size, batch: 1, window: 128, tier: udplan.TierAuto},
				{name: fmt.Sprintf("udp_pull_%dmb_batch32", mb), bytes: size, batch: 32, window: 128, tier: udplan.TierMmsg},
				{name: fmt.Sprintf("udp_pull_%dmb_gso", mb), bytes: size, batch: 32, window: 128, tier: udplan.TierGSO},
			}
			for _, c := range cases {
				c := c
				c.tier = minTier(c.tier, tierCap)
				if err := measurePull(&snap, c.name, c.bytes, 3,
					func() (time.Duration, string, error) {
						el, tr, err := runUDPPull(c)
						return el, tr.String(), err
					}); err != nil {
					return err
				}
			}
			// The disk-backed store cases at the same size and tier as _gso,
			// so cold-vs-hot and store-vs-generator read off one table.
			for _, fc := range []filePullCase{
				{fmt.Sprintf("udp_pull_file_cold_%dmb", mb), size, false},
				{fmt.Sprintf("udp_pull_file_hot_%dmb", mb), size, true},
			} {
				fc := fc
				if err := measurePull(&snap, fc.name, fc.bytes, 3,
					func() (time.Duration, string, error) {
						el, tr, err := runFilePull(fc, minTier(udplan.TierGSO, tierCap))
						return el, tr.String(), err
					}); err != nil {
					return err
				}
			}
		}
	}

	if streams == 0 {
		// The failure-recovery cases (PR 8): a resumed 64 MB pull through a
		// mid-transfer server crash — gated by ci/bench_floor.json at ≥70% of
		// the uninterrupted gso floor — and the BUSY admission-shedding
		// makespan of 8 clients against a 2-session cap.
		const resumeBytes = 64 << 20
		if err := measurePull(&snap, "udp_pull_resume", resumeBytes, 3,
			func() (time.Duration, string, error) {
				el, err := runResumePull(resumeBytes)
				return el, "", err
			}); err != nil {
			return err
		}
		busyBytes, busyClients := 4<<20, 8
		if quick {
			busyBytes = 2 << 20
		}
		if err := measurePull(&snap, "udp_busy_backoff", busyBytes*busyClients, 3,
			func() (time.Duration, string, error) {
				el, err := runBusyBackoff(busyBytes, busyClients)
				return el, "", err
			}); err != nil {
			return err
		}

		// The one-to-many fan-out cases (PR 10): 8 receivers of one object,
		// as the depth-2 stripe-relay tree (4 relays, cut-through boards —
		// the source transmits the object ~once and its socket carries 1
		// stream's load, each relay's 2) vs 8 independent pulls (the source
		// socket serialises all 8 streams). MB/s is aggregate delivered
		// payload (8 × object) over the fan-out makespan; the floor gates the
		// tree, and the PR's acceptance ratio (tree ≥ 3× independent) reads
		// straight off the two rows.
		// The headline pair models every socket as a 62.5 MB/s (500 Mb/s)
		// serializing link (Server.LineRate): loopback has no NIC, so
		// without the modeled line a topology comparison on a small host
		// degenerates into a CPU benchmark in which the tree's extra hop
		// can only lose. With it, the economics under test are real ones —
		// whose socket carries how many copies — and the line (well under
		// loopback's CPU ceiling) is the binding constraint. The unpaced
		// pair is kept for transparency: it reports the raw-CPU regime,
		// where on a single-core host the tree's 2× per-byte work ties or
		// loses. The tree's floor gates udp_fanout_8; the PR's acceptance
		// ratio (tree >= 3x independent) reads straight off the first two
		// rows.
		fanBytes, fanLine := 8<<20, 62_500_000
		if quick {
			fanBytes = 4 << 20
		}
		for _, fc := range []struct {
			name   string
			relays int
			line   int
		}{
			{"udp_fanout_8", 4, fanLine},
			{"udp_fanout_8_independent", 0, fanLine},
			{"udp_fanout_8_unpaced", 4, 0},
			{"udp_fanout_8_unpaced_independent", 0, 0},
		} {
			fc := fc
			if err := measurePull(&snap, fc.name, 8*fanBytes, 3,
				func() (time.Duration, string, error) {
					el, err := runFanoutBench(fanBytes, fc.relays, fc.line)
					return el, "", err
				}); err != nil {
				return err
			}
		}
	}

	// The striped streams×policy sweep, clean and under 1% seeded drop.
	cleanSize, lossySize := 64<<20, 16<<20
	if quick {
		cleanSize, lossySize = 8<<20, 2<<20
	}
	streamCounts := []int{1, 2, 4, 8}
	if streams > 0 {
		streamCounts = []int{streams}
	}
	modes := []string{"", core.ControllerAIMD, core.ControllerBBR}
	if controller != "" {
		modes = []string{controller}
	}
	for _, nets := range []struct {
		suffix string
		size   int
		drop   float64
		reps   int
	}{
		{"", cleanSize, 0, 5},
		{"_drop1", lossySize, 0.01, 3},
	} {
		for _, s := range streamCounts {
			for _, policy := range modes {
				mode := ""
				if policy != "" {
					mode = "_" + policy
				}
				c := stripedCase{
					name:       fmt.Sprintf("udp_stream%d%s_%dmb%s", s, mode, nets.size>>20, nets.suffix),
					bytes:      nets.size,
					streams:    s,
					controller: policy,
					drop:       nets.drop,
				}
				if err := measurePull(&snap, c.name, c.bytes, nets.reps,
					func() (time.Duration, string, error) {
						el, err := runStripedPull(c)
						return el, "", err
					}); err != nil {
					return err
				}
			}
		}
	}

	// The gated controller-under-loss case: the 321 MB/s configuration of the
	// PR-4 adaptive-under-loss row (streams=4, selective repeat, 16 MB, 1%
	// seeded drop on every stripe endpoint) driven by the BBR-flavored policy,
	// whose rate-based window holds through stray drops instead of backing off
	// multiplicatively. ci/bench_floor.json floors it at the AIMD basis, so a
	// policy regression that collapses under loss fails the bench gate. Runs
	// at full size even in -quick: the floor needs a stable figure.
	if streams == 0 && controller == "" {
		c := stripedCase{
			name:       "udp_pull_bbr_loss1",
			bytes:      16 << 20,
			streams:    4,
			controller: core.ControllerBBR,
			drop:       0.01,
		}
		if err := measurePull(&snap, c.name, c.bytes, 3,
			func() (time.Duration, string, error) {
				el, err := runStripedPull(c)
				return el, "", err
			}); err != nil {
			return err
		}
	}

	if streams > 0 {
		if path == "" {
			return nil
		}
		return writeSnapshot(snap, path)
	}

	// The many-client loadN sweep: a sharded *simulated* server (the shared
	// session layer under deterministic load) rides in the same gated
	// snapshot, so ci/bench_floor.json guards the scale axis too.
	if err := appendLoadRows(&snap, quick); err != nil {
		return err
	}

	// Steady-state send-loop allocation check: the exact per-packet work of
	// a blast window body — fill the reused packet from the streaming
	// source, encode into the frame ring, flush every batch — against a
	// blackhole socket. Must be 0 allocs/op.
	for _, batch := range []int{1, 32} {
		r := testing.Benchmark(func(b *testing.B) { steadySendLoop(b, batch) })
		name := fmt.Sprintf("udp_send_steady_batch%d", batch)
		fmt.Printf("%-28s %10s %12v  %d allocs/op\n", name, "-",
			(time.Duration(r.NsPerOp())).Round(time.Nanosecond), r.AllocsPerOp())
		snap.Benchmarks = append(snap.Benchmarks, benchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	if path == "" {
		return nil
	}
	return writeSnapshot(snap, path)
}

// steadySendLoop benchmarks one data packet through the batched send path:
// source-generated payload, reused packet value, EncodeInto the frame ring,
// sendmmsg flush amortised over the batch.
func steadySendLoop(b *testing.B, batch int) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0") // never read: blackhole
	if err != nil {
		b.Skip(err)
	}
	defer sink.Close()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Skip(err)
	}
	defer conn.Close()
	e := udplan.NewEndpoint(conn, sink.LocalAddr())
	e.SetBatch(batch)

	const chunk = 1000
	n := 1 << 20 / chunk
	src := core.SeededSource(1, n*chunk, chunk)
	scratch := make([]byte, chunk)
	pkt := &wire.Packet{Type: wire.TypeData, Trans: 1, Total: uint32(n)}
	b.ReportAllocs()
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % n
		pkt.Seq = uint32(seq)
		pkt.Payload = src(seq, scratch)
		if err := e.Send(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.FlushBatch()
}
