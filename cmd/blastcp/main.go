// Command blastcp moves data to or from a blastd daemon using the paper's
// protocols.
//
//	blastcp -to 127.0.0.1:7025 -push file.bin          # MoveTo: push a file
//	blastcp -to 127.0.0.1:7025 -pull 65536             # MoveFrom: pull n bytes
//	blastcp -to 127.0.0.1:7025 -push f -proto saw      # compare protocols
//	blastcp -to 127.0.0.1:7025 -pull 1048576 -window 64 -strategy selective
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -window 128 -batch 32  # batched syscalls
//	blastcp -to 127.0.0.1:7025 -pull 1048576 -chunk 8000 -mtu 9000   # jumbo frames
//	blastcp -to 127.0.0.1:7025 -pull 268435456 -streams 4            # striped parallel pull
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -adaptive              # AIMD rate control
//	blastcp -to 127.0.0.1:7025 -get data.bin -o local.bin            # named pull from -serve
//	blastcp -to 127.0.0.1:7025 -get data.bin -streams 4              # striped named pull
//
// A named pull (-get) stats the remote object first — the daemon answers
// with its size from the file store — then pulls exactly that many bytes by
// name, striped or not. -o writes the pulled bytes to a local file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

var protocols = map[string]core.Protocol{
	"saw":   core.StopAndWait,
	"sw":    core.SlidingWindow,
	"blast": core.Blast,
}

var strategies = map[string]core.Strategy{
	"full-no-nak": core.FullNoNak,
	"full-nak":    core.FullNak,
	"go-back-n":   core.GoBackN,
	"selective":   core.Selective,
}

func main() {
	var (
		to        = flag.String("to", "127.0.0.1:7025", "blastd address")
		pushFile  = flag.String("push", "", "file to push (MoveTo)")
		pullBytes = flag.Int("pull", 0, "bytes to pull (MoveFrom)")
		getName   = flag.String("get", "", "remote file to pull by name from the daemon's -serve store")
		outFile   = flag.String("o", "", "write pulled bytes to this local file")
		protoName = flag.String("proto", "blast", "protocol: saw, sw, blast")
		stratName = flag.String("strategy", "go-back-n", "blast strategy")
		chunk     = flag.Int("chunk", 1000, "payload bytes per packet")
		window    = flag.Int("window", 0, "multiblast window in packets")
		tr        = flag.Duration("tr", 200*time.Millisecond, "retransmission timeout")
		id        = flag.Uint("id", 1, "transfer id")
		gap       = flag.Duration("gap", 0, "pace data packets with this inter-packet gap")
		batch     = flag.Int("batch", 32, "syscall batch size (sendmmsg/recvmmsg frame rings; 1 = single-syscall)")
		tierName  = flag.String("tier", "auto", "cap the batched datapath tier: gso, mmsg, writeto, auto")
		mtu       = flag.Int("mtu", 0, "max datagram size for jumbo chunks (0: default 2048)")
		sockbuf   = flag.Int("sockbuf", 4<<20, "kernel socket buffer size (large windows overflow the default)")
		streams   = flag.Int("streams", 1, "stripe a pull across this many parallel sessions")
		adaptive  = flag.Bool("adaptive", false, "AIMD rate control: window/batch/pacing react to observed loss")
		lossTx    = flag.Float64("drop-tx", 0, "inject outbound loss (testing)")
		lossRx    = flag.Float64("drop-rx", 0, "inject inbound loss (testing)")
	)
	flag.Parse()

	proto, ok := protocols[*protoName]
	if !ok {
		log.Fatalf("blastcp: unknown protocol %q", *protoName)
	}
	strat, ok := strategies[*stratName]
	if !ok {
		log.Fatalf("blastcp: unknown strategy %q", *stratName)
	}
	modes := 0
	for _, on := range []bool{*pushFile != "", *pullBytes != 0, *getName != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("blastcp: exactly one of -push, -pull or -get is required")
	}
	if *streams > 1 && *pushFile != "" {
		log.Fatal("blastcp: -streams applies to pulls only")
	}
	if *outFile != "" && *pushFile != "" {
		log.Fatal("blastcp: -o applies to pulls only")
	}
	tier, err := udplan.ParseTier(*tierName)
	if err != nil {
		log.Fatalf("blastcp: %v", err)
	}

	cfg := core.Config{
		TransferID:     uint32(*id),
		ChunkSize:      *chunk,
		Protocol:       proto,
		Strategy:       strat,
		Window:         *window,
		Adaptive:       *adaptive,
		RetransTimeout: *tr,
		MaxAttempts:    100,
		Linger:         2**tr + 100*time.Millisecond,
		ReceiverIdle:   10 * time.Second,
	}

	if *streams > 1 {
		// Striped pull: the fan-out dials its own endpoints, so the loss
		// knobs install per-stripe hooks (independent seeds per stripe).
		cfg.Bytes = *pullBytes
		if *getName != "" {
			// Stat on a throwaway endpoint; the stripes dial their own.
			size, err := statRemote(*to, cfg, *getName)
			if err != nil {
				log.Fatalf("blastcp: stat %q: %v", *getName, err)
			}
			log.Printf("blastcp: remote %q is %d bytes", *getName, size)
			cfg.Name, cfg.Bytes = *getName, int(size)
		}
		var out *os.File
		opts := udplan.StripeOptions{
			Streams:   *streams,
			Batch:     *batch,
			Tier:      tier,
			MTU:       *mtu,
			SocketBuf: *sockbuf,
			PacketGap: *gap,
		}
		if *lossTx > 0 {
			opts.MangleTx = func(i int) func(*wire.Packet) params.Mangle {
				return udplan.SeededDrop(*lossTx, int64(1+2*i))
			}
		}
		if *lossRx > 0 {
			opts.MangleRx = func(i int) func(*wire.Packet) params.Mangle {
				return udplan.SeededDrop(*lossRx, int64(2+2*i))
			}
		}
		if *outFile != "" {
			var err error
			if out, err = os.Create(*outFile); err != nil {
				log.Fatalf("blastcp: %v", err)
			}
			opts.Sink = func(off int, b []byte) {
				if _, werr := out.WriteAt(b, int64(off)); werr != nil {
					log.Printf("blastcp: writing %s: %v", *outFile, werr)
				}
			}
		}
		res, err := udplan.PullStriped(*to, cfg, opts)
		if err != nil {
			// A stripe failed and its siblings were cancelled; show what
			// each stripe managed before the fan-out unwound.
			for _, s := range res.Stripes {
				status := "cancelled"
				if s.Err == nil && s.Recv.Completed {
					status = "completed"
				} else if s.Err != nil {
					status = s.Err.Error()
				}
				fmt.Printf("  stripe %d [%d,%d): %d of %d bytes — %s\n",
					s.Stripe.Index, s.Stripe.Offset, s.Stripe.Offset+s.Stripe.Bytes,
					s.Recv.Bytes, s.Stripe.Bytes, status)
			}
			log.Fatalf("blastcp: striped pull: %v", err)
		}
		for _, s := range res.Stripes {
			fmt.Printf("  stripe %d [%d,%d): %d packets (%d dups) in %v\n",
				s.Stripe.Index, s.Stripe.Offset, s.Stripe.Offset+s.Stripe.Bytes,
				s.Recv.DataPackets, s.Recv.Duplicates, s.Recv.Elapsed.Round(time.Microsecond))
		}
		fmt.Printf("pulled %d bytes over %d stripes in %v (%.2f MB/s), checksum %04x\n",
			res.Bytes, len(res.Stripes), res.Elapsed.Round(time.Microsecond),
			res.MBps(), res.Checksum)
		if out != nil {
			if err := out.Close(); err != nil {
				log.Fatalf("blastcp: closing %s: %v", *outFile, err)
			}
			fmt.Printf("wrote %s\n", *outFile)
		}
		return
	}

	e, err := udplan.Dial(*to)
	if err != nil {
		log.Fatalf("blastcp: %v", err)
	}
	defer e.Close()
	e.PacketGap = *gap
	if *mtu > 0 {
		if err := e.SetMTU(*mtu); err != nil {
			log.Fatalf("blastcp: %v", err)
		}
	}
	if *sockbuf > 0 {
		e.SetSocketBuffers(*sockbuf)
	}
	e.MaxTier = tier
	e.SetBatch(*batch)
	if *batch > 1 {
		log.Printf("blastcp: datapath tier %s (gro %v)", e.Tier(), e.GRO())
	}
	if *lossTx > 0 {
		e.MangleTx = udplan.SeededDrop(*lossTx, 1)
	}
	if *lossRx > 0 {
		e.MangleRx = udplan.SeededDrop(*lossRx, 2)
	}

	if *pushFile != "" {
		payload, err := os.ReadFile(*pushFile)
		if err != nil {
			log.Fatalf("blastcp: %v", err)
		}
		cfg.Bytes = len(payload)
		cfg.Payload = payload
		res, err := udplan.Push(e, cfg)
		if err != nil {
			log.Fatalf("blastcp: push: %v", err)
		}
		fmt.Printf("pushed %d bytes in %v (%.2f MB/s), %d packets (%d retransmitted), checksum %04x\n",
			len(payload), res.Elapsed.Round(time.Microsecond),
			float64(len(payload))/res.Elapsed.Seconds()/1e6,
			res.DataPackets, res.Retransmits, core.TransferChecksum(payload))
		return
	}

	cfg.Bytes = *pullBytes
	if *getName != "" {
		// Stat then pull on the same endpoint: the daemon's session answers
		// the stat and stays open for the pull that follows.
		size, err := core.Stat(e, cfg, *getName)
		if err != nil {
			log.Fatalf("blastcp: stat %q: %v", *getName, err)
		}
		log.Printf("blastcp: remote %q is %d bytes", *getName, size)
		cfg.Name, cfg.Bytes = *getName, int(size)
	}
	// Stream the pull: chunks are checksummed incrementally and discarded
	// (or written through to -o), so pulling 1 GB costs no 1 GB buffer on
	// this side either.
	var out *os.File
	cfg.Sink = func(off int, b []byte) {}
	if *outFile != "" {
		var err error
		if out, err = os.Create(*outFile); err != nil {
			log.Fatalf("blastcp: %v", err)
		}
		cfg.Sink = func(off int, b []byte) {
			if _, werr := out.WriteAt(b, int64(off)); werr != nil {
				log.Printf("blastcp: writing %s: %v", *outFile, werr)
			}
		}
	}
	res, err := udplan.Pull(e, cfg)
	if err != nil {
		log.Fatalf("blastcp: pull: %v", err)
	}
	fmt.Printf("pulled %d bytes in %v (%.2f MB/s), %d packets (%d dups), checksum %04x\n",
		res.Bytes, res.Elapsed.Round(time.Microsecond),
		float64(res.Bytes)/res.Elapsed.Seconds()/1e6,
		res.DataPackets, res.Duplicates, res.Checksum)
	if out != nil {
		if err := out.Close(); err != nil {
			log.Fatalf("blastcp: closing %s: %v", *outFile, err)
		}
		fmt.Printf("wrote %s\n", *outFile)
	}
}

// statRemote asks the daemon for a named object's size on a throwaway
// endpoint (striped pulls dial their own endpoints per stripe).
func statRemote(addr string, cfg core.Config, name string) (int64, error) {
	e, err := udplan.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	return core.Stat(e, cfg, name)
}
