// Command blastcp moves data to or from a blastd daemon using the paper's
// protocols.
//
//	blastcp -to 127.0.0.1:7025 -push file.bin          # MoveTo: push a file
//	blastcp -to 127.0.0.1:7025 -pull 65536             # MoveFrom: pull n bytes
//	blastcp -to 127.0.0.1:7025 -push f -proto saw      # compare protocols
//	blastcp -to 127.0.0.1:7025 -pull 1048576 -window 64 -strategy selective
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -window 128 -batch 32  # batched syscalls
//	blastcp -to 127.0.0.1:7025 -pull 1048576 -chunk 8000 -mtu 9000   # jumbo frames
//	blastcp -to 127.0.0.1:7025 -pull 268435456 -streams 4            # striped parallel pull
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -controller aimd       # AIMD rate control
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -controller bbr        # rate-based control
//	blastcp -to 127.0.0.1:7025 -get data.bin -o local.bin            # named pull from -serve
//	blastcp -to 127.0.0.1:7025 -get data.bin -streams 4              # striped named pull
//	blastcp -to 127.0.0.1:7025 -pull 67108864 -resume                # survive a server restart
//	blastcp -to 127.0.0.1:7025 -pull 268435456 -streams 4 -repair    # per-stripe repair
//	blastcp -to 127.0.0.1:7025 -pull 65536 -sum 1a2b                 # verify the checksum
//	blastcp -to A:7025 -copy data.bin -dest B:7025                   # third-party copy A→B
//
// A named pull (-get) stats the remote object first — the daemon answers
// with its size from the file store — then pulls exactly that many bytes by
// name, striped or not. -o writes the pulled bytes to a local file.
//
// A third-party copy (-copy NAME -dest B) asks the -to daemon to push the
// named object to daemon B itself: the bytes move server-to-server while
// this client only watches relayed progress — replicating between two fast
// machines is never throttled by the orchestrator's own link.
//
// Failures exit with a distinct code per class — 2 usage, 3 give-up (peer
// silent), 4 busy (admission refused past the retry budget), 5 refused
// range, 6 checksum mismatch — each announced by a one-line taxonomy tag on
// stderr, so wrapping scripts can branch without parsing prose.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// Exit codes. Scripts wrap blastcp (a cron mover retries give-ups, honors
// busy back-pressure, aborts on refused ranges), so each failure class gets
// a distinct code and a single taxonomy line on stderr instead of a generic
// fatal log.
const (
	exitUsage    = 2 // bad flags or flag combinations
	exitGiveUp   = 3 // peer silent: transfer abandoned after max attempts/resumes
	exitBusy     = 4 // server refused admission (BUSY) past the retry budget
	exitRefused  = 5 // request shape refused: bad range, stripe or name
	exitChecksum = 6 // transfer completed but its checksum differs from -sum
)

// exitLabel is the taxonomy tag leading each failure line.
func exitLabel(code int) string {
	switch code {
	case exitUsage:
		return "usage"
	case exitGiveUp:
		return "give-up"
	case exitBusy:
		return "busy"
	case exitRefused:
		return "refused-range"
	case exitChecksum:
		return "checksum-mismatch"
	}
	return "error"
}

// fail prints one taxonomy line and exits with the class's code.
func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "blastcp: %s: %s\n", exitLabel(code), fmt.Sprintf(format, args...))
	os.Exit(code)
}

// failErr classifies a transfer error into its exit code: BUSY beats
// bad-config beats give-up (errors wrap, the most specific class wins). A
// remote copy failure — the serving side tried and reported why — lands in
// the refused class: the request named something the server could not move.
func failErr(context string, err error) {
	code := 1
	var busy *core.BusyError
	var rce *core.RemoteCopyError
	switch {
	case errors.As(err, &busy):
		code = exitBusy
	case errors.As(err, &rce):
		code = exitRefused
	case errors.Is(err, core.ErrBadConfig):
		code = exitRefused
	case errors.Is(err, core.ErrGiveUp):
		code = exitGiveUp
	}
	fail(code, "%s: %v", context, err)
}

var protocols = map[string]core.Protocol{
	"saw":   core.StopAndWait,
	"sw":    core.SlidingWindow,
	"blast": core.Blast,
}

var strategies = map[string]core.Strategy{
	"full-no-nak": core.FullNoNak,
	"full-nak":    core.FullNak,
	"go-back-n":   core.GoBackN,
	"selective":   core.Selective,
}

func main() {
	var (
		to        = flag.String("to", "127.0.0.1:7025", "blastd address")
		pushFile  = flag.String("push", "", "file to push (MoveTo)")
		pullBytes = flag.Int("pull", 0, "bytes to pull (MoveFrom)")
		getName   = flag.String("get", "", "remote file to pull by name from the daemon's -serve store")
		copyName  = flag.String("copy", "", "ask the -to daemon to push this named object to -dest (third-party copy)")
		destAddr  = flag.String("dest", "", "target daemon a -copy pushes to (HOST:PORT)")
		outFile   = flag.String("o", "", "write pulled bytes to this local file")
		protoName = flag.String("proto", "blast", "protocol: saw, sw, blast")
		stratName = flag.String("strategy", "go-back-n", "blast strategy")
		chunk     = flag.Int("chunk", 1000, "payload bytes per packet")
		window    = flag.Int("window", 0, "multiblast window in packets")
		tr        = flag.Duration("tr", 200*time.Millisecond, "retransmission timeout")
		id        = flag.Uint("id", 1, "transfer id")
		gap       = flag.Duration("gap", 0, "pace data packets with this inter-packet gap")
		batch     = flag.Int("batch", 32, "syscall batch size (sendmmsg/recvmmsg frame rings; 1 = single-syscall)")
		tierName  = flag.String("tier", "auto", "cap the batched datapath tier: gso, mmsg, writeto, auto")
		mtu       = flag.Int("mtu", 0, "max datagram size for jumbo chunks (0: default 2048)")
		sockbuf   = flag.Int("sockbuf", 4<<20, "kernel socket buffer size (large windows overflow the default)")
		streams   = flag.Int("streams", 1, "stripe a pull across this many parallel sessions")
		ctrlName  = flag.String("controller", "", "rate-control policy: "+strings.Join(core.ControllerNames(), ", ")+" (empty: fixed schedule)")
		adaptive  = flag.Bool("adaptive", false, "deprecated: same as -controller=aimd")
		lossTx    = flag.Float64("drop-tx", 0, "inject outbound loss (testing)")
		lossRx    = flag.Float64("drop-rx", 0, "inject inbound loss (testing)")
		resume    = flag.Bool("resume", false, "resume a pull across server crashes/restarts (offset REQs from the verified frontier)")
		repair    = flag.Bool("repair", false, "striped pulls: resume a failed stripe instead of aborting its siblings")
		wantSum   = flag.String("sum", "", "expected transfer checksum (4 hex digits); mismatch exits 6")
	)
	flag.Parse()

	proto, ok := protocols[*protoName]
	if !ok {
		fail(exitUsage, "unknown protocol %q", *protoName)
	}
	strat, ok := strategies[*stratName]
	if !ok {
		fail(exitUsage, "unknown strategy %q", *stratName)
	}
	modes := 0
	for _, on := range []bool{*pushFile != "", *pullBytes != 0, *getName != "", *copyName != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fail(exitUsage, "exactly one of -push, -pull, -get or -copy is required")
	}
	if *copyName != "" && *destAddr == "" {
		fail(exitUsage, "-copy requires -dest")
	}
	if *copyName == "" && *destAddr != "" {
		fail(exitUsage, "-dest applies to -copy only")
	}
	if *copyName != "" && (*streams > 1 || *outFile != "" || *resume || *repair) {
		fail(exitUsage, "-streams, -o, -resume and -repair do not apply to -copy")
	}
	if *streams > 1 && *pushFile != "" {
		fail(exitUsage, "-streams applies to pulls only")
	}
	if *outFile != "" && *pushFile != "" {
		fail(exitUsage, "-o applies to pulls only")
	}
	if (*resume || *repair) && *pushFile != "" {
		fail(exitUsage, "-resume and -repair apply to pulls only")
	}
	var expectSum uint16
	if *wantSum != "" {
		v, perr := strconv.ParseUint(*wantSum, 16, 16)
		if perr != nil {
			fail(exitUsage, "-sum %q is not a 16-bit hex checksum", *wantSum)
		}
		expectSum = uint16(v)
	}
	tier, err := udplan.ParseTier(*tierName)
	if err != nil {
		fail(exitUsage, "%v", err)
	}
	controller := *ctrlName
	if *adaptive && controller == "" {
		log.Printf("blastcp: -adaptive is deprecated; use -controller=%s", core.ControllerAIMD)
		controller = core.ControllerAIMD
	}
	if controller != "" && core.ControllerID(controller) == 0 {
		fail(exitUsage, "unknown controller %q (registered: %s)", controller, strings.Join(core.ControllerNames(), ", "))
	}

	cfg := core.Config{
		TransferID:     uint32(*id),
		ChunkSize:      *chunk,
		Protocol:       proto,
		Strategy:       strat,
		Window:         *window,
		Controller:     controller,
		RetransTimeout: *tr,
		MaxAttempts:    100,
		Linger:         2**tr + 100*time.Millisecond,
		ReceiverIdle:   10 * time.Second,
	}

	if *copyName != "" {
		// Third-party copy: the -to daemon pushes the named object to -dest
		// itself; this client only orchestrates and watches the progress it
		// relays. The bytes never touch this machine.
		e, err := udplan.Dial(*to)
		if err != nil {
			failErr("dial", err)
		}
		defer e.Close()
		start := time.Now()
		n, err := core.Copy(e, cfg, *copyName, *destAddr, func(b int64) {
			if b > 0 {
				log.Printf("blastcp: copy progress: %d bytes moved", b)
			}
		})
		if err != nil {
			failErr(fmt.Sprintf("copy %q to %s", *copyName, *destAddr), err)
		}
		elapsed := time.Since(start)
		fmt.Printf("copied %d bytes from %s to %s in %v (%.2f MB/s server-to-server)\n",
			n, *to, *destAddr, elapsed.Round(time.Microsecond),
			float64(n)/elapsed.Seconds()/1e6)
		return
	}

	if *streams > 1 {
		// Striped pull: the fan-out dials its own endpoints, so the loss
		// knobs install per-stripe hooks (independent seeds per stripe).
		cfg.Bytes = *pullBytes
		var statEp *udplan.Endpoint
		if *getName != "" {
			// Stat on the pull's own endpoint: the socket (and the daemon
			// session it opened) is handed to stripe 0 below instead of being
			// thrown away after one round trip.
			ep, err := udplan.Dial(*to)
			if err != nil {
				failErr("dial", err)
			}
			size, err := core.Stat(ep, cfg, *getName)
			if err != nil {
				ep.Close()
				failErr(fmt.Sprintf("stat %q", *getName), err)
			}
			log.Printf("blastcp: remote %q is %d bytes", *getName, size)
			cfg.Name, cfg.Bytes = *getName, int(size)
			statEp = ep
		}
		var out *os.File
		opts := udplan.StripeOptions{
			Endpoint:  statEp,
			Streams:   *streams,
			Batch:     *batch,
			Tier:      tier,
			MTU:       *mtu,
			SocketBuf: *sockbuf,
			PacketGap: *gap,
			Repair:    *repair || *resume,
		}
		if *lossTx > 0 {
			opts.MangleTx = func(i int) func(*wire.Packet) params.Mangle {
				return udplan.SeededDrop(*lossTx, int64(1+2*i))
			}
		}
		if *lossRx > 0 {
			opts.MangleRx = func(i int) func(*wire.Packet) params.Mangle {
				return udplan.SeededDrop(*lossRx, int64(2+2*i))
			}
		}
		if *outFile != "" {
			var err error
			if out, err = os.Create(*outFile); err != nil {
				log.Fatalf("blastcp: %v", err)
			}
			opts.Sink = func(off int, b []byte) {
				if _, werr := out.WriteAt(b, int64(off)); werr != nil {
					log.Printf("blastcp: writing %s: %v", *outFile, werr)
				}
			}
		}
		res, err := udplan.PullStriped(*to, cfg, opts)
		if err != nil {
			// A stripe failed and its siblings were cancelled; show what
			// each stripe managed before the fan-out unwound.
			for _, s := range res.Stripes {
				status := "cancelled"
				if s.Err == nil && s.Recv.Completed {
					status = "completed"
				} else if s.Err != nil {
					status = s.Err.Error()
				}
				fmt.Printf("  stripe %d [%d,%d): %d of %d bytes — %s\n",
					s.Stripe.Index, s.Stripe.Offset, s.Stripe.Offset+s.Stripe.Bytes,
					s.Recv.Bytes, s.Stripe.Bytes, status)
			}
			failErr("striped pull", err)
		}
		for _, s := range res.Stripes {
			repaired := ""
			if s.Resume.Sessions > 1 {
				repaired = fmt.Sprintf(", %d resumed sessions", s.Resume.Sessions-1)
			}
			fmt.Printf("  stripe %d [%d,%d): %d packets (%d dups) in %v%s\n",
				s.Stripe.Index, s.Stripe.Offset, s.Stripe.Offset+s.Stripe.Bytes,
				s.Recv.DataPackets, s.Recv.Duplicates, s.Recv.Elapsed.Round(time.Microsecond), repaired)
		}
		fmt.Printf("pulled %d bytes over %d stripes in %v (%.2f MB/s), checksum %04x\n",
			res.Bytes, len(res.Stripes), res.Elapsed.Round(time.Microsecond),
			res.MBps(), res.Checksum)
		if out != nil {
			if err := out.Close(); err != nil {
				log.Fatalf("blastcp: closing %s: %v", *outFile, err)
			}
			fmt.Printf("wrote %s\n", *outFile)
		}
		if *wantSum != "" && res.Checksum != expectSum {
			fail(exitChecksum, "pulled checksum %04x, expected %04x", res.Checksum, expectSum)
		}
		return
	}

	e, err := udplan.Dial(*to)
	if err != nil {
		failErr("dial", err)
	}
	defer e.Close()
	e.PacketGap = *gap
	if *mtu > 0 {
		if err := e.SetMTU(*mtu); err != nil {
			log.Fatalf("blastcp: %v", err)
		}
	}
	if *sockbuf > 0 {
		e.SetSocketBuffers(*sockbuf)
	}
	e.MaxTier = tier
	e.SetBatch(*batch)
	if *batch > 1 {
		log.Printf("blastcp: datapath tier %s (gro %v)", e.Tier(), e.GRO())
	}
	if *lossTx > 0 {
		e.MangleTx = udplan.SeededDrop(*lossTx, 1)
	}
	if *lossRx > 0 {
		e.MangleRx = udplan.SeededDrop(*lossRx, 2)
	}

	if *pushFile != "" {
		payload, err := os.ReadFile(*pushFile)
		if err != nil {
			log.Fatalf("blastcp: %v", err)
		}
		cfg.Bytes = len(payload)
		cfg.Payload = payload
		res, err := udplan.Push(e, cfg)
		if err != nil {
			failErr("push", err)
		}
		fmt.Printf("pushed %d bytes in %v (%.2f MB/s), %d packets (%d retransmitted), checksum %04x\n",
			len(payload), res.Elapsed.Round(time.Microsecond),
			float64(len(payload))/res.Elapsed.Seconds()/1e6,
			res.DataPackets, res.Retransmits, core.TransferChecksum(payload))
		return
	}

	cfg.Bytes = *pullBytes
	if *getName != "" {
		// Stat then pull on the same endpoint: the daemon's session answers
		// the stat and stays open for the pull that follows.
		size, err := core.Stat(e, cfg, *getName)
		if err != nil {
			failErr(fmt.Sprintf("stat %q", *getName), err)
		}
		log.Printf("blastcp: remote %q is %d bytes", *getName, size)
		cfg.Name, cfg.Bytes = *getName, int(size)
	}
	// Stream the pull: chunks are checksummed incrementally and discarded
	// (or written through to -o), so pulling 1 GB costs no 1 GB buffer on
	// this side either.
	var out *os.File
	cfg.Sink = func(off int, b []byte) {}
	if *outFile != "" {
		var err error
		if out, err = os.Create(*outFile); err != nil {
			log.Fatalf("blastcp: %v", err)
		}
		cfg.Sink = func(off int, b []byte) {
			if _, werr := out.WriteAt(b, int64(off)); werr != nil {
				log.Printf("blastcp: writing %s: %v", *outFile, werr)
			}
		}
	}
	var res core.RecvResult
	if *resume {
		// Resumable pull: a server crash/restart mid-transfer costs only the
		// unverified tail (offset REQs from the frontier), and BUSY refusals
		// are honored with backoff instead of burning REQ rounds.
		var rstats core.ResumeStats
		res, rstats, err = core.PullResume(e, cfg, core.ResumeOptions{})
		if rstats.Sessions > 1 || rstats.BusyWaits > 0 {
			log.Printf("blastcp: recovered over %d sessions (%d chunks re-requested, %d busy waits)",
				rstats.Sessions, rstats.ResumedChunks, rstats.BusyWaits)
		}
	} else {
		res, err = udplan.Pull(e, cfg)
	}
	if err != nil {
		failErr("pull", err)
	}
	fmt.Printf("pulled %d bytes in %v (%.2f MB/s), %d packets (%d dups), checksum %04x\n",
		res.Bytes, res.Elapsed.Round(time.Microsecond),
		float64(res.Bytes)/res.Elapsed.Seconds()/1e6,
		res.DataPackets, res.Duplicates, res.Checksum)
	if out != nil {
		if err := out.Close(); err != nil {
			log.Fatalf("blastcp: closing %s: %v", *outFile, err)
		}
		fmt.Printf("wrote %s\n", *outFile)
	}
	if *wantSum != "" && res.Checksum != expectSum {
		fail(exitChecksum, "pulled checksum %04x, expected %04x", res.Checksum, expectSum)
	}
}
