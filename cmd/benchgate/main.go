// Command benchgate is CI's perf-regression gate: it compares a freshly
// measured lanbench -benchjson snapshot against a committed throughput
// floor and fails (exit 1) when any gated benchmark falls below its
// minimum. The floor file lists only the benchmarks worth gating; a gated
// name missing from the snapshot is itself a failure, so a renamed or
// silently dropped benchmark cannot sneak past the gate.
//
//	benchgate -got BENCH_udp_ci.json -floor ci/bench_floor.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// snapshot mirrors the lanbench -benchjson schema (the fields the gate
// needs).
type snapshot struct {
	GoVersion  string `json:"go_version"`
	Benchmarks []struct {
		Name string  `json:"name"`
		MBps float64 `json:"mbps"`
	} `json:"benchmarks"`
}

// floorFile is the committed gate: a note documenting how the floors were
// derived, and the minimum MB/s per gated benchmark.
type floorFile struct {
	Note    string             `json:"note"`
	MinMBps map[string]float64 `json:"min_mbps"`
}

func main() {
	got := flag.String("got", "", "freshly measured lanbench -benchjson snapshot")
	floorPath := flag.String("floor", "ci/bench_floor.json", "committed throughput floor")
	flag.Parse()
	if *got == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -got is required")
		os.Exit(2)
	}
	snap, err := readJSON[snapshot](*got)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	floor, err := readJSON[floorFile](*floorPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	measured := make(map[string]float64, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		measured[b.Name] = b.MBps
	}

	names := make([]string, 0, len(floor.MinMBps))
	for name := range floor.MinMBps {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-28s %10s %10s  verdict\n", "benchmark", "MB/s", "floor")
	for _, name := range names {
		min := floor.MinMBps[name]
		mbps, ok := measured[name]
		switch {
		case !ok:
			failed = true
			fmt.Printf("%-28s %10s %10.1f  MISSING from snapshot\n", name, "-", min)
		case mbps < min:
			failed = true
			fmt.Printf("%-28s %10.1f %10.1f  REGRESSION\n", name, mbps, min)
		default:
			fmt.Printf("%-28s %10.1f %10.1f  ok\n", name, mbps, min)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: throughput regression against %s (%s)\n", *floorPath, floor.Note)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated benchmarks at or above their floors")
}

func readJSON[T any](path string) (T, error) {
	var v T
	data, err := os.ReadFile(path)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}
