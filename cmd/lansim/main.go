// Command lansim runs one simulated transfer and reports both sides,
// optionally rendering the Figure 3-style activity timeline or sweeping a
// hostile-network adversary over all four blast strategies.
//
// Examples:
//
//	lansim -bytes 65536 -proto blast -strategy go-back-n
//	lansim -bytes 3072 -proto saw -timeline
//	lansim -bytes 65536 -proto blast -loss 0.01 -seed 7
//	lansim -cost vkernel -bytes 65536 -proto blast -window 16
//	lansim -bytes 65536 -reorder 0.05 -reorder-depth 3 -corrupt 0.02
//	lansim -adversary -cost vkernel -bytes 65536 -trials 200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/experiments"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/trace"
)

var protocols = map[string]core.Protocol{
	"saw":    core.StopAndWait,
	"sw":     core.SlidingWindow,
	"blast":  core.Blast,
	"dblast": core.BlastAsync,
}

var strategies = map[string]core.Strategy{
	"full-no-nak": core.FullNoNak,
	"full-nak":    core.FullNak,
	"go-back-n":   core.GoBackN,
	"selective":   core.Selective,
}

func costPreset(name string) (params.CostModel, error) {
	switch name {
	case "standalone":
		return params.Standalone3Com(), nil
	case "vkernel":
		return params.VKernel(), nil
	case "excelan":
		return params.ExcelanDMA(), nil
	case "modern":
		return params.ModernGigabit(), nil
	case "standalone-dbl":
		return params.DoubleBuffered(params.Standalone3Com()), nil
	}
	return params.CostModel{}, fmt.Errorf("unknown cost preset %q (standalone, vkernel, excelan, modern, standalone-dbl)", name)
}

func main() {
	var (
		bytesN    = flag.Int("bytes", 64<<10, "transfer size in bytes")
		chunk     = flag.Int("chunk", params.DataPacketSize, "data packet size")
		protoName = flag.String("proto", "blast", "protocol: saw, sw, blast, dblast")
		stratName = flag.String("strategy", "go-back-n", "blast strategy: full-no-nak, full-nak, go-back-n, selective")
		costName  = flag.String("cost", "standalone", "cost preset: standalone, vkernel, excelan, modern, standalone-dbl")
		loss      = flag.Float64("loss", 0, "wire loss probability pn")
		ifaceLoss = flag.Float64("iface-loss", 0, "interface drop probability")
		window    = flag.Int("window", 0, "multiblast window in packets (0 = single blast)")
		tr        = flag.Duration("tr", 0, "retransmission timeout Tr (0 = 2x error-free blast)")
		seed      = flag.Int64("seed", 1, "loss-process seed")
		timeline  = flag.Bool("timeline", false, "render the activity timeline (Figure 3 style)")
		width     = flag.Int("width", 96, "timeline width in characters")

		reorder   = flag.Float64("reorder", 0, "adversary: reorder probability per packet")
		depth     = flag.Int("reorder-depth", 2, "adversary: packets that overtake a held one")
		dup       = flag.Float64("dup", 0, "adversary: duplication probability per packet")
		corrupt   = flag.Float64("corrupt", 0, "adversary: single-bit corruption probability per packet")
		jitter    = flag.Duration("jitter", 0, "adversary: max extra delay per packet")
		advSweep  = flag.Bool("adversary", false, "sweep adversary intensity over all four blast strategies and chart throughput")
		advTrials = flag.Int("trials", 100, "trials per point in the -adversary sweep")
	)
	flag.Parse()

	proto, ok := protocols[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	strat, ok := strategies[*stratName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *stratName)
		os.Exit(2)
	}
	cost, err := costPreset(*costName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if proto == core.BlastAsync && cost.TxBuffers < 2 {
		cost = params.DoubleBuffered(cost)
	}

	if *advSweep {
		if *reorder != 0 || *dup != 0 || *corrupt != 0 || *jitter != 0 || *loss != 0 || *timeline {
			fmt.Fprintln(os.Stderr, "lansim: -adversary sweeps its own intensity grid; -reorder/-dup/-corrupt/-jitter/-loss/-timeline are ignored in sweep mode")
		}
		if err := adversarySweep(cost, *bytesN, *chunk, *advTrials, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	adv := params.Adversary{
		ReorderProb:   *reorder,
		ReorderDepth:  *depth,
		DuplicateProb: *dup,
		CorruptProb:   *corrupt,
		JitterMax:     *jitter,
	}

	n := (*bytesN + *chunk - 1) / *chunk
	timeout := *tr
	if timeout == 0 {
		timeout = 2 * (time.Duration(n)*(cost.C()+cost.T()) + cost.C() + 2*cost.Ca() + cost.Ta())
	}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          *bytesN,
		ChunkSize:      *chunk,
		Protocol:       proto,
		Strategy:       strat,
		Window:         *window,
		RetransTimeout: timeout,
	}

	var rec trace.Recorder
	opt := simrun.Options{
		Cost:      cost,
		Loss:      params.LossModel{PNet: *loss, PIface: *ifaceLoss},
		Adversary: adv,
		Seed:      *seed,
	}
	if *timeline {
		opt.Trace = rec.Add
	}
	res, err := simrun.Transfer(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("transfer : %d bytes in %d packets of %d, %s/%s on %s\n",
		*bytesN, n, *chunk, proto, strat, cost.Name)
	fmt.Printf("costs    : C=%v Ca=%v T=%v Ta=%v τ=%v Tr=%v\n",
		cost.C(), cost.Ca(), cost.T(), cost.Ta(), cost.Propagation, timeout)
	if res.SendErr != nil || res.RecvErr != nil {
		fmt.Printf("FAILED   : send=%v recv=%v\n", res.SendErr, res.RecvErr)
		os.Exit(1)
	}
	fmt.Printf("elapsed  : %v\n", res.Send.Elapsed)
	fmt.Printf("sender   : %d data pkts (%d retransmitted), %d rounds, %d timeouts, %d acks, %d naks\n",
		res.Send.DataPackets, res.Send.Retransmits, res.Send.Rounds,
		res.Send.Timeouts, res.Send.AcksReceived, res.Send.NaksReceived)
	fmt.Printf("receiver : %d data pkts (%d dups), %d acks, %d naks sent\n",
		res.Recv.DataPackets, res.Recv.Duplicates, res.Recv.AcksSent, res.Recv.NaksSent)
	fmt.Printf("drops    : wire=%d iface=%d corrupt=%d overrun=%d\n",
		res.DstCounters.WireDrops+res.SrcCounters.WireDrops,
		res.DstCounters.IfaceDrops+res.SrcCounters.IfaceDrops,
		res.DstCounters.CorruptDrops+res.SrcCounters.CorruptDrops,
		res.DstCounters.Overruns+res.SrcCounters.Overruns)
	if adv.Active() {
		fmt.Printf("adversary: drops=%d corrupts=%d dups=%d holds=%d (flushed %d) delays=%d\n",
			res.Adv.Drops+res.Adv.IfaceDrops, res.Adv.Corrupts, res.Adv.Dups,
			res.Adv.Holds, res.Adv.Flushes, res.Adv.Delays)
	}

	if *timeline {
		fmt.Println()
		fmt.Print(rec.Render(*width))
	}
}

// adversarySweep charts throughput against reorder/corruption intensity for
// all four blast retransmission strategies: each cell is a seeded Scenario
// sampled through the parallel engine, so the chart is reproducible.
func adversarySweep(cost params.CostModel, bytesN, chunk, trials int, seed int64) error {
	intensities := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1}
	strats := []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective}
	n := (bytesN + chunk - 1) / chunk
	tr := 2 * analytic.TimeBlast(cost, n)

	fmt.Printf("adversary sweep: %d bytes (%d pkts of %d) on %s, %d trials/cell, Tr=%v\n",
		bytesN, n, chunk, cost.Name, trials, tr)
	fmt.Printf("intensity x: reorder=x (depth 2), corrupt=x, duplicate=x/2, jitter<=0.5ms\n\n")
	fmt.Printf("%-9s  %-22s  %-22s  %-22s  %-22s\n", "", "full-no-nak", "full-nak", "go-back-n", "selective")
	fmt.Printf("%-9s  %-22s  %-22s  %-22s  %-22s\n", "intensity",
		"mean ms (KB/s)", "mean ms (KB/s)", "mean ms (KB/s)", "mean ms (KB/s)")

	for i, x := range intensities {
		adv := experiments.AdversaryAt(x)
		fmt.Printf("%-9s", fmt.Sprintf("%.1f%%", 100*x))
		for _, s := range strats {
			sc := simrun.Scenario{
				Name:      fmt.Sprintf("sweep-%g-%s", x, s),
				Cost:      cost,
				Adversary: adv,
				Config: core.Config{
					TransferID:     1,
					Bytes:          bytesN,
					ChunkSize:      chunk,
					Protocol:       core.Blast,
					Strategy:       s,
					RetransTimeout: tr,
				},
				Trials: trials,
				Seed:   seed + int64(i)*1000,
			}
			st, err := sc.Sample(0)
			if err != nil {
				return err
			}
			mean := st.Elapsed.Mean()
			cell := "all failed"
			if st.Elapsed.N() > 0 {
				kbs := float64(bytesN) / 1024 / mean.Seconds()
				cell = fmt.Sprintf("%8.2f (%7.0f)", float64(mean)/float64(time.Millisecond), kbs)
				if st.Failures > 0 {
					cell += fmt.Sprintf(" %df", st.Failures)
				}
			}
			fmt.Printf("  %-22s", cell)
		}
		fmt.Println()
	}
	return nil
}
