// Command lansim runs one simulated transfer and reports both sides,
// optionally rendering the Figure 3-style activity timeline.
//
// Examples:
//
//	lansim -bytes 65536 -proto blast -strategy go-back-n
//	lansim -bytes 3072 -proto saw -timeline
//	lansim -bytes 65536 -proto blast -loss 0.01 -seed 7
//	lansim -cost vkernel -bytes 65536 -proto blast -window 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/trace"
)

var protocols = map[string]core.Protocol{
	"saw":    core.StopAndWait,
	"sw":     core.SlidingWindow,
	"blast":  core.Blast,
	"dblast": core.BlastAsync,
}

var strategies = map[string]core.Strategy{
	"full-no-nak": core.FullNoNak,
	"full-nak":    core.FullNak,
	"go-back-n":   core.GoBackN,
	"selective":   core.Selective,
}

func costPreset(name string) (params.CostModel, error) {
	switch name {
	case "standalone":
		return params.Standalone3Com(), nil
	case "vkernel":
		return params.VKernel(), nil
	case "excelan":
		return params.ExcelanDMA(), nil
	case "modern":
		return params.ModernGigabit(), nil
	case "standalone-dbl":
		return params.DoubleBuffered(params.Standalone3Com()), nil
	}
	return params.CostModel{}, fmt.Errorf("unknown cost preset %q (standalone, vkernel, excelan, modern, standalone-dbl)", name)
}

func main() {
	var (
		bytesN    = flag.Int("bytes", 64<<10, "transfer size in bytes")
		chunk     = flag.Int("chunk", params.DataPacketSize, "data packet size")
		protoName = flag.String("proto", "blast", "protocol: saw, sw, blast, dblast")
		stratName = flag.String("strategy", "go-back-n", "blast strategy: full-no-nak, full-nak, go-back-n, selective")
		costName  = flag.String("cost", "standalone", "cost preset: standalone, vkernel, excelan, modern, standalone-dbl")
		loss      = flag.Float64("loss", 0, "wire loss probability pn")
		ifaceLoss = flag.Float64("iface-loss", 0, "interface drop probability")
		window    = flag.Int("window", 0, "multiblast window in packets (0 = single blast)")
		tr        = flag.Duration("tr", 0, "retransmission timeout Tr (0 = 2x error-free blast)")
		seed      = flag.Int64("seed", 1, "loss-process seed")
		timeline  = flag.Bool("timeline", false, "render the activity timeline (Figure 3 style)")
		width     = flag.Int("width", 96, "timeline width in characters")
	)
	flag.Parse()

	proto, ok := protocols[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	strat, ok := strategies[*stratName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *stratName)
		os.Exit(2)
	}
	cost, err := costPreset(*costName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if proto == core.BlastAsync && cost.TxBuffers < 2 {
		cost = params.DoubleBuffered(cost)
	}

	n := (*bytesN + *chunk - 1) / *chunk
	timeout := *tr
	if timeout == 0 {
		timeout = 2 * (time.Duration(n)*(cost.C()+cost.T()) + cost.C() + 2*cost.Ca() + cost.Ta())
	}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          *bytesN,
		ChunkSize:      *chunk,
		Protocol:       proto,
		Strategy:       strat,
		Window:         *window,
		RetransTimeout: timeout,
	}

	var rec trace.Recorder
	opt := simrun.Options{
		Cost: cost,
		Loss: params.LossModel{PNet: *loss, PIface: *ifaceLoss},
		Seed: *seed,
	}
	if *timeline {
		opt.Trace = rec.Add
	}
	res, err := simrun.Transfer(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("transfer : %d bytes in %d packets of %d, %s/%s on %s\n",
		*bytesN, n, *chunk, proto, strat, cost.Name)
	fmt.Printf("costs    : C=%v Ca=%v T=%v Ta=%v τ=%v Tr=%v\n",
		cost.C(), cost.Ca(), cost.T(), cost.Ta(), cost.Propagation, timeout)
	if res.SendErr != nil || res.RecvErr != nil {
		fmt.Printf("FAILED   : send=%v recv=%v\n", res.SendErr, res.RecvErr)
		os.Exit(1)
	}
	fmt.Printf("elapsed  : %v\n", res.Send.Elapsed)
	fmt.Printf("sender   : %d data pkts (%d retransmitted), %d rounds, %d timeouts, %d acks, %d naks\n",
		res.Send.DataPackets, res.Send.Retransmits, res.Send.Rounds,
		res.Send.Timeouts, res.Send.AcksReceived, res.Send.NaksReceived)
	fmt.Printf("receiver : %d data pkts (%d dups), %d acks, %d naks sent\n",
		res.Recv.DataPackets, res.Recv.Duplicates, res.Recv.AcksSent, res.Recv.NaksSent)
	fmt.Printf("drops    : wire=%d iface=%d overrun=%d\n",
		res.DstCounters.WireDrops+res.SrcCounters.WireDrops,
		res.DstCounters.IfaceDrops+res.SrcCounters.IfaceDrops,
		res.DstCounters.Overruns+res.SrcCounters.Overruns)

	if *timeline {
		fmt.Println()
		fmt.Print(rec.Render(*width))
	}
}
