// Command blastd is the transfer daemon: it answers blastcp's push and
// pull requests over UDP using the paper's protocols.
//
//	blastd -listen 127.0.0.1:7025 -out /tmp/received
//
// Pushed transfers are written to numbered files under -out (or verified
// and discarded when -out is empty). Pull requests are served deterministic
// pseudo-random data of the requested size, so blastcp can verify the
// transfer checksum end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"

	"blastlan/internal/core"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7025", "UDP address to listen on")
		outDir   = flag.String("out", "", "directory for pushed transfers (empty: verify and discard)")
		maxBytes = flag.Int("max-bytes", 256<<20, "reject transfers larger than this")
	)
	flag.Parse()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("blastd: %v", err)
	}
	defer conn.Close()
	log.Printf("blastd: serving on %s", conn.LocalAddr())

	count := 0
	srv := udplan.NewServer(conn)
	srv.Data = func(r wire.Req) ([]byte, bool) {
		if int(r.Bytes) > *maxBytes {
			log.Printf("blastd: rejecting %d-byte pull (limit %d)", r.Bytes, *maxBytes)
			return nil, false
		}
		payload := make([]byte, r.Bytes)
		rand.New(rand.NewSource(int64(r.Bytes))).Read(payload)
		log.Printf("blastd: serving %d-byte pull, checksum %04x",
			r.Bytes, core.TransferChecksum(payload))
		return payload, true
	}
	srv.Sink = func(r wire.Req, data []byte) {
		count++
		sum := core.TransferChecksum(data)
		if *outDir == "" {
			log.Printf("blastd: received %d bytes (push #%d), checksum %04x", len(data), count, sum)
			return
		}
		name := filepath.Join(*outDir, fmt.Sprintf("transfer-%04d.bin", count))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			log.Printf("blastd: writing %s: %v", name, err)
			return
		}
		log.Printf("blastd: wrote %s (%d bytes, checksum %04x)", name, len(data), sum)
	}

	if err := srv.Run(); err != nil {
		log.Fatalf("blastd: %v", err)
	}
}
