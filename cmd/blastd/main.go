// Command blastd is the transfer daemon: it answers blastcp's push and
// pull requests over UDP using the paper's protocols.
//
//	blastd -listen 127.0.0.1:7025 -out /tmp/received
//	blastd -concurrency 64 -batch 32            # sharded, sendmmsg-batched
//
// The daemon is concurrent by default: datagrams are demultiplexed by peer
// address into per-session goroutines (up to -concurrency at once), and the
// hot path batches syscalls with sendmmsg/recvmmsg frame rings (-batch).
//
// Pushed transfers stream to numbered files under -out, or are verified
// against their incremental checksum and discarded when -out is empty.
// Pull requests are served deterministic pseudo-random data generated chunk
// by chunk — a 1 GB pull never allocates a 1 GB buffer — with a running
// whole-transfer checksum logged so blastcp can verify end to end.
//
// Striped pulls (blastcp -streams N) arrive as N concurrent sessions each
// requesting a byte range of one logical stream; the daemon resolves each
// range against the same generator, so the client's reassembly is
// byte-identical to an unstriped pull. Requests carrying the adaptive bit
// (blastcp -adaptive) are served with the AIMD rate/window controller
// reacting to observed drops and NAKs instead of the fixed REQ parameters.
//
// SIGINT/SIGTERM drains gracefully: new sessions are refused (clients
// retry elsewhere), active transfers get up to -drain to finish — a second
// signal forces the socket closed — and a per-peer session summary is
// logged on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7025", "UDP address to listen on")
		outDir      = flag.String("out", "", "directory for pushed transfers (empty: verify and discard)")
		maxBytes    = flag.Int("max-bytes", 1<<30, "reject transfers larger than this")
		concurrency = flag.Int("concurrency", 8, "session cap: concurrent transfers served at once (1 = serial)")
		batch       = flag.Int("batch", 32, "syscall batch size for sendmmsg/recvmmsg frame rings (1 = single-syscall)")
		sockets     = flag.Int("sockets", 1, "SO_REUSEPORT demux sockets sharing the listen port, one demux loop each (Linux; 1 = single socket)")
		tierName    = flag.String("tier", "auto", "cap the batched datapath tier: gso, mmsg, writeto, auto")
		mtu         = flag.Int("mtu", 0, "max datagram size for jumbo-frame chunks (0: default 2048)")
		sockbuf     = flag.Int("sockbuf", 4<<20, "kernel socket buffer size (large windows overflow the default)")
		drain       = flag.Duration("drain", 10*time.Second,
			"graceful-shutdown bound: on SIGINT/SIGTERM, stop admitting sessions and wait this long for active transfers to finish before dropping them")
	)
	flag.Parse()

	tier, err := udplan.ParseTier(*tierName)
	if err != nil {
		log.Fatalf("blastd: %v", err)
	}
	conns, err := udplan.ListenReuseport("udp", *listen, *sockets)
	if err != nil {
		log.Fatalf("blastd: %v", err)
	}
	if *sockbuf > 0 {
		for _, c := range conns {
			udplan.SetConnBuffers(c, *sockbuf)
		}
	}

	srv := udplan.NewMultiServer(conns...)
	defer srv.Close()
	srv.Concurrency = *concurrency
	srv.Batch = *batch
	srv.MTU = *mtu
	srv.MaxTier = tier
	srv.Logf = log.Printf
	log.Printf("blastd: serving on %s (concurrency %d, batch %d, %d socket(s), tier %s)",
		conns[0].LocalAddr(), *concurrency, *batch, len(conns), srv.Tier())
	// Per-peer rate log (one line per completed transfer) plus the per-peer
	// totals the shutdown summary prints.
	summary := newPeerSummary()
	srv.Done = func(ts udplan.TransferStats) {
		verb := "served pull to"
		if ts.Push {
			verb = "received push from"
		}
		log.Printf("blastd: %s %v: %d bytes in %v (%.2f MB/s), %d packets (%d retransmitted)",
			verb, ts.Peer, ts.Bytes, ts.Elapsed, ts.MBps(), ts.Packets, ts.Retransmits)
		summary.add(ts)
	}

	// Pulls stream from a seeded chunk generator: deterministic per logical
	// stream, so retransmissions regenerate identical bytes and the client
	// can verify the checksum without the daemon ever buffering the
	// transfer. A striped request (blastcp -streams) selects a
	// chunk-aligned view into the stream named by its REQ — every stripe of
	// one logical pull regenerates the same bytes at the same offsets, so
	// the client's reassembly is byte-identical to an unstriped pull. The
	// running checksum of the served range is logged the first time it
	// completes in order.
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		if r.Bytes == 0 || r.Chunk == 0 {
			return nil, false // degenerate request: the generator needs both
		}
		stream := int(r.StreamBytes())
		if int(r.Bytes) > *maxBytes || stream > *maxBytes {
			log.Printf("blastd: rejecting %d-byte pull of a %d-byte stream (limit %d)",
				r.Bytes, stream, *maxBytes)
			return nil, false
		}
		src := core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks))
		var acc wire.SumAcc
		next, total := 0, int(r.Bytes+uint64(r.Chunk)-1)/int(r.Chunk)
		return func(seq int, dst []byte) []byte {
			b := src(seq, dst)
			if seq == next { // fold each chunk into the running checksum once
				acc.AddAt(seq*int(r.Chunk), b)
				if next++; next == total {
					if r.Total > 0 {
						log.Printf("blastd: streaming stripe [%d,%d) of %d-byte pull, range checksum %04x",
							r.Offset(), r.Offset()+r.Bytes, stream, acc.Sum16())
					} else {
						log.Printf("blastd: streaming %d-byte pull, checksum %04x", r.Bytes, acc.Sum16())
					}
				}
			}
			return b
		}, true
	}

	// Pushes stream straight to disk (or into the incremental checksum):
	// no transfer-sized buffer on the receive side either.
	var pushes atomic.Int64
	srv.SinkStream = func(r wire.Req) (core.ChunkSink, func(core.RecvResult), bool) {
		if int(r.Bytes) > *maxBytes {
			log.Printf("blastd: rejecting %d-byte push (limit %d)", r.Bytes, *maxBytes)
			return nil, nil, false
		}
		n := pushes.Add(1)
		if *outDir == "" {
			return func(int, []byte) {}, func(res core.RecvResult) {
				log.Printf("blastd: verified %d bytes (push #%d), checksum %04x",
					res.Bytes, n, res.Checksum)
			}, true
		}
		name := filepath.Join(*outDir, fmt.Sprintf("transfer-%04d.bin", n))
		f, err := os.Create(name)
		if err != nil {
			log.Printf("blastd: creating %s: %v", name, err)
			return nil, nil, false
		}
		return func(off int, b []byte) {
				if _, err := f.WriteAt(b, int64(off)); err != nil {
					log.Printf("blastd: writing %s: %v", name, err)
				}
			}, func(res core.RecvResult) {
				if err := f.Close(); err != nil {
					log.Printf("blastd: closing %s: %v", name, err)
				}
				if !res.Completed {
					// Aborted push: drop the partial file.
					os.Remove(name)
					log.Printf("blastd: discarded aborted push %s (%d bytes received)", name, res.Bytes)
					return
				}
				log.Printf("blastd: wrote %s (%d bytes, checksum %04x)", name, res.Bytes, res.Checksum)
			}, true
	}

	// Graceful shutdown: SIGINT/SIGTERM stops admitting new sessions and
	// drains the active ones (bounded by -drain) instead of dropping them
	// mid-blast; a second signal — or the bound expiring — forces the
	// socket closed under whatever is left.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run() }()

	var runErr error
	select {
	case runErr = <-runDone:
	case <-sigc:
		log.Printf("blastd: shutdown: draining %d active session(s), bound %v (signal again to force)",
			srv.Active(), *drain)
		srv.BeginDrain()
		timer := time.NewTimer(*drain)
		select {
		case runErr = <-runDone:
			timer.Stop()
		case <-timer.C:
			log.Printf("blastd: drain bound expired; dropping %d session(s)", srv.Active())
			srv.Close()
			runErr = <-runDone
		case <-sigc:
			log.Printf("blastd: forced; dropping %d session(s)", srv.Active())
			srv.Close()
			runErr = <-runDone
		}
	}
	summary.log()
	if runErr != nil {
		log.Fatalf("blastd: %v", runErr)
	}
}

// peerSummary accumulates per-peer transfer totals for the shutdown log.
type peerSummary struct {
	mu sync.Mutex
	m  map[string]*peerTotals
}

type peerTotals struct {
	transfers   int
	pushes      int
	bytes       int64
	packets     int64
	retransmits int64
	elapsed     time.Duration
}

func newPeerSummary() *peerSummary { return &peerSummary{m: map[string]*peerTotals{}} }

func (s *peerSummary) add(ts udplan.TransferStats) {
	peer := "<unknown>"
	if ts.Peer != nil {
		peer = ts.Peer.String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.m[peer]
	if t == nil {
		t = &peerTotals{}
		s.m[peer] = t
	}
	t.transfers++
	if ts.Push {
		t.pushes++
	}
	t.bytes += int64(ts.Bytes)
	t.packets += int64(ts.Packets)
	t.retransmits += int64(ts.Retransmits)
	t.elapsed += ts.Elapsed
}

// log prints one line per peer, then the grand total.
func (s *peerSummary) log() {
	s.mu.Lock()
	defer s.mu.Unlock()
	peers := make([]string, 0, len(s.m))
	for p := range s.m {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	var total peerTotals
	for _, p := range peers {
		t := s.m[p]
		log.Printf("blastd: session summary %s: %d transfer(s) (%d push), %d bytes, %d packets (%d retransmitted), busy %v",
			p, t.transfers, t.pushes, t.bytes, t.packets, t.retransmits, t.elapsed.Round(time.Millisecond))
		total.transfers += t.transfers
		total.pushes += t.pushes
		total.bytes += t.bytes
		total.packets += t.packets
		total.retransmits += t.retransmits
		total.elapsed += t.elapsed
	}
	log.Printf("blastd: served %d transfer(s) from %d peer(s), %d bytes total (%d retransmitted packets)",
		total.transfers, len(peers), total.bytes, total.retransmits)
}
