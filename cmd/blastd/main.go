// Command blastd is the transfer daemon: it answers blastcp's push and
// pull requests over UDP using the paper's protocols.
//
//	blastd -listen 127.0.0.1:7025 -out /tmp/received
//	blastd -concurrency 64 -batch 32            # sharded, sendmmsg-batched
//
// The daemon is concurrent by default: datagrams are demultiplexed by peer
// address into per-session goroutines (up to -concurrency at once), and the
// hot path batches syscalls with sendmmsg/recvmmsg frame rings (-batch).
//
// Pushed transfers stream to numbered files under -out, or are verified
// against their incremental checksum and discarded when -out is empty.
// Aborted pushes (a client that vanished mid-blast, a force-closed session
// at shutdown) release their file and discard the partial. Pull requests
// are served deterministic pseudo-random data generated chunk by chunk — a
// 1 GB pull never allocates a 1 GB buffer — with a running whole-transfer
// checksum logged so blastcp can verify end to end.
//
// With -serve, named pulls (blastcp -get NAME) are answered from real files
// under the given directory through the disk-backed store: a sharded
// hot-object cache with single-flight fills and pipelined read-ahead
// (-cache-mb, -readahead), so N clients pulling the same file cost one pass
// over the disk. Anonymous pulls still hit the seeded generator. A -serve
// daemon also answers third-party copy asks (blastcp -copy NAME -dest B):
// it pushes the named file to the target daemon itself, relaying progress
// to the orchestrator, so replicating between two servers never routes the
// bytes through the client.
//
// Striped pulls (blastcp -streams N) arrive as N concurrent sessions each
// requesting a byte range of one logical stream; the daemon resolves each
// range against the same generator, so the client's reassembly is
// byte-identical to an unstriped pull. Requests carrying a rate-control
// policy id in the REQ flags (blastcp -controller aimd|bbr|autotune, or the
// deprecated -adaptive) are served with that controller reacting to observed
// drops and NAKs instead of the fixed REQ parameters; an id this build does
// not know degrades to AIMD.
//
// SIGINT/SIGTERM drains gracefully: new sessions are refused (clients
// retry elsewhere), active transfers get up to -drain to finish — a second
// signal forces the socket closed — and a per-peer session summary is
// logged on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/store"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7025", "UDP address to listen on")
		outDir      = flag.String("out", "", "directory for pushed transfers (empty: verify and discard)")
		serveDir    = flag.String("serve", "", "directory of real files served to named pulls (blastcp -get) through the disk-backed store")
		cacheMB     = flag.Int("cache-mb", 256, "hot-object cache budget for -serve, in MiB")
		readAhead   = flag.Int("readahead", 8, "chunks of pipelined read-ahead for -serve (0 disables)")
		maxBytes    = flag.Int("max-bytes", 1<<30, "reject transfers larger than this")
		concurrency = flag.Int("concurrency", 8, "session cap: concurrent transfers served at once (1 = serial)")
		batch       = flag.Int("batch", 32, "syscall batch size for sendmmsg/recvmmsg frame rings (1 = single-syscall)")
		sockets     = flag.Int("sockets", 1, "SO_REUSEPORT demux sockets sharing the listen port, one demux loop each (Linux; 1 = single socket)")
		tierName    = flag.String("tier", "auto", "cap the batched datapath tier: gso, mmsg, writeto, auto")
		mtu         = flag.Int("mtu", 0, "max datagram size for jumbo-frame chunks (0: default 2048)")
		sockbuf     = flag.Int("sockbuf", 4<<20, "kernel socket buffer size (large windows overflow the default)")
		drain       = flag.Duration("drain", 10*time.Second,
			"graceful-shutdown bound: on SIGINT/SIGTERM, stop admitting sessions and wait this long for active transfers to finish before dropping them")
	)
	flag.Parse()

	tier, err := udplan.ParseTier(*tierName)
	if err != nil {
		log.Fatalf("blastd: %v", err)
	}
	conns, err := udplan.ListenReuseport("udp", *listen, *sockets)
	if err != nil {
		log.Fatalf("blastd: %v", err)
	}
	if *sockbuf > 0 {
		for _, c := range conns {
			udplan.SetConnBuffers(c, *sockbuf)
		}
	}

	srv := udplan.NewMultiServer(conns...)
	defer srv.Close()
	srv.Concurrency = *concurrency
	srv.Batch = *batch
	srv.MTU = *mtu
	srv.MaxTier = tier
	srv.Logf = log.Printf
	log.Printf("blastd: serving on %s (concurrency %d, batch %d, %d socket(s), tier %s)",
		conns[0].LocalAddr(), *concurrency, *batch, len(conns), srv.Tier())
	// Per-peer rate log (one line per completed transfer) plus the per-peer
	// totals the shutdown summary prints.
	summary := newPeerSummary()
	srv.Done = func(ts udplan.TransferStats) {
		verb := "served pull to"
		if ts.Push {
			verb = "received push from"
		}
		log.Printf("blastd: %s %v: %d bytes in %v (%.2f MB/s), %d packets (%d retransmitted)",
			verb, ts.Peer, ts.Bytes, ts.Elapsed, ts.MBps(), ts.Packets, ts.Retransmits)
		summary.add(ts)
	}

	// Pulls stream from a seeded chunk generator: deterministic per logical
	// stream, so retransmissions regenerate identical bytes and the client
	// can verify the checksum without the daemon ever buffering the
	// transfer. A striped request (blastcp -streams) selects a
	// chunk-aligned view into the stream named by its REQ — every stripe of
	// one logical pull regenerates the same bytes at the same offsets, so
	// the client's reassembly is byte-identical to an unstriped pull. The
	// running checksum of the served range is logged the first time it
	// completes in order.
	seeded := func(r wire.Req) (core.ChunkSource, bool) {
		if r.Bytes == 0 || r.Chunk == 0 {
			return nil, false // degenerate request: the generator needs both
		}
		stream := int(r.StreamBytes())
		if int(r.Bytes) > *maxBytes || stream > *maxBytes {
			log.Printf("blastd: rejecting %d-byte pull of a %d-byte stream (limit %d)",
				r.Bytes, stream, *maxBytes)
			return nil, false
		}
		src := core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks))
		var acc wire.SumAcc
		next, total := 0, int(r.Bytes+uint64(r.Chunk)-1)/int(r.Chunk)
		return func(seq int, dst []byte) []byte {
			b := src(seq, dst)
			if seq == next { // fold each chunk into the running checksum once
				acc.AddAt(seq*int(r.Chunk), b)
				if next++; next == total {
					if r.Total > 0 {
						log.Printf("blastd: streaming stripe [%d,%d) of %d-byte pull, range checksum %04x",
							r.Offset(), r.Offset()+r.Bytes, stream, acc.Sum16())
					} else {
						log.Printf("blastd: streaming %d-byte pull, checksum %04x", r.Bytes, acc.Sum16())
					}
				}
			}
			return b
		}, true
	}
	srv.Source = seeded

	// Named pulls come from real files through the disk-backed store; the
	// store refuses anonymous REQs, so those fall back to the generator.
	if *serveDir != "" {
		ra := *readAhead
		if ra == 0 {
			ra = -1 // Options treats 0 as "default"; the flag's 0 means off
		}
		st := store.Open(*serveDir, store.Options{
			CacheBytes: int64(*cacheMB) << 20,
			ReadAhead:  ra,
			Logf:       log.Printf,
		})
		defer st.Close()
		srv.SourceEnv = func(r wire.Req, env core.Env) (core.ChunkSource, bool) {
			if r.Name == "" {
				return seeded(r)
			}
			if stream := int(r.StreamBytes()); stream > *maxBytes {
				log.Printf("blastd: rejecting %d-byte named pull (limit %d)", stream, *maxBytes)
				return nil, false
			}
			return st.SourceReq(r, env)
		}
		srv.Stat = st.StatReq

		// Third-party copy (blastcp -copy NAME -dest B): asked by an
		// orchestrator, this daemon pushes the named object to the target
		// daemon itself — the ordinary push engine on a fresh socket — while
		// the control session relays quantised progress back. The orchestrator
		// never carries the bytes.
		srv.Copy = func(r wire.Req, env core.Env, progress func(int64)) (int64, error) {
			size, ok := st.StatReq(r)
			if !ok {
				return 0, fmt.Errorf("no such object %q", r.Name)
			}
			if size > int64(*maxBytes) {
				return 0, fmt.Errorf("%d-byte object exceeds the %d-byte limit", size, *maxBytes)
			}
			chunk := 1000
			src, err := st.Source(r.Name, chunk, 0, nil)
			if err != nil {
				return 0, err
			}
			e, err := udplan.Dial(r.Target)
			if err != nil {
				return 0, fmt.Errorf("dial %s: %v", r.Target, err)
			}
			defer e.Close()
			if *sockbuf > 0 {
				e.SetSocketBuffers(*sockbuf)
			}
			e.SetBatch(*batch)
			// The push engine re-reads chunks on retransmit; progress tracks
			// the high-water mark of first transmissions only.
			var sent int64
			cfg := core.Config{
				TransferID: 1,
				Bytes:      int(size),
				ChunkSize:  chunk,
				Protocol:   core.Blast,
				Strategy:   core.GoBackN,
				Window:     64,
				Source: func(seq int, dst []byte) []byte {
					b := src(seq, dst)
					if hi := int64(seq)*int64(chunk) + int64(len(b)); hi > sent {
						sent = hi
						progress(sent)
					}
					return b
				},
				RetransTimeout: 200 * time.Millisecond,
				MaxAttempts:    100,
				Linger:         500 * time.Millisecond,
			}
			log.Printf("blastd: copying %q (%d bytes) to %s", r.Name, size, r.Target)
			if _, err := udplan.Push(e, cfg); err != nil {
				return 0, fmt.Errorf("push to %s: %v", r.Target, err)
			}
			return size, nil
		}
		log.Printf("blastd: serving files from %s (cache %d MiB, read-ahead %d)", *serveDir, *cacheMB, *readAhead)
	} else {
		// Without a store there is nothing a copy could name; answer the ask
		// with a clear refusal instead of letting the orchestrator time out.
		srv.Copy = func(r wire.Req, env core.Env, progress func(int64)) (int64, error) {
			return 0, fmt.Errorf("this daemon serves no named objects (start it with -serve)")
		}
	}

	// Pushes stream straight to disk (or into the incremental checksum):
	// no transfer-sized buffer on the receive side either. FileSink owns
	// the file lifecycle — close exactly once per push, discard partials
	// from aborted transfers — and rejects degenerate or oversized REQs at
	// admission.
	fsink := &store.FileSink{Dir: *outDir, MaxBytes: *maxBytes, Logf: log.Printf}
	srv.SinkStream = fsink.SinkStream

	// Graceful shutdown: SIGINT/SIGTERM stops admitting new sessions and
	// drains the active ones (bounded by -drain) instead of dropping them
	// mid-blast; a second signal — or the bound expiring — forces the
	// socket closed under whatever is left.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run() }()

	var runErr error
	select {
	case runErr = <-runDone:
	case <-sigc:
		log.Printf("blastd: shutdown: draining %d active session(s), bound %v (signal again to force)",
			srv.Active(), *drain)
		srv.BeginDrain()
		timer := time.NewTimer(*drain)
		select {
		case runErr = <-runDone:
			timer.Stop()
		case <-timer.C:
			log.Printf("blastd: drain bound expired; dropping %d session(s)", srv.Active())
			srv.Close()
			runErr = <-runDone
		case <-sigc:
			log.Printf("blastd: forced; dropping %d session(s)", srv.Active())
			srv.Close()
			runErr = <-runDone
		}
	}
	summary.log()
	if runErr != nil {
		log.Fatalf("blastd: %v", runErr)
	}
}

// peerSummary accumulates per-peer transfer totals for the shutdown log.
type peerSummary struct {
	mu sync.Mutex
	m  map[string]*peerTotals
}

type peerTotals struct {
	transfers   int
	pushes      int
	bytes       int64
	packets     int64
	retransmits int64
	elapsed     time.Duration
}

func newPeerSummary() *peerSummary { return &peerSummary{m: map[string]*peerTotals{}} }

func (s *peerSummary) add(ts udplan.TransferStats) {
	peer := "<unknown>"
	if ts.Peer != nil {
		peer = ts.Peer.String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.m[peer]
	if t == nil {
		t = &peerTotals{}
		s.m[peer] = t
	}
	t.transfers++
	if ts.Push {
		t.pushes++
	}
	t.bytes += int64(ts.Bytes)
	t.packets += int64(ts.Packets)
	t.retransmits += int64(ts.Retransmits)
	t.elapsed += ts.Elapsed
}

// log prints one line per peer, then the grand total.
func (s *peerSummary) log() {
	s.mu.Lock()
	defer s.mu.Unlock()
	peers := make([]string, 0, len(s.m))
	for p := range s.m {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	var total peerTotals
	for _, p := range peers {
		t := s.m[p]
		log.Printf("blastd: session summary %s: %d transfer(s) (%d push), %d bytes, %d packets (%d retransmitted), busy %v",
			p, t.transfers, t.pushes, t.bytes, t.packets, t.retransmits, t.elapsed.Round(time.Millisecond))
		total.transfers += t.transfers
		total.pushes += t.pushes
		total.bytes += t.bytes
		total.packets += t.packets
		total.retransmits += t.retransmits
		total.elapsed += t.elapsed
	}
	log.Printf("blastd: served %d transfer(s) from %d peer(s), %d bytes total (%d retransmitted packets)",
		total.transfers, len(peers), total.bytes, total.retransmits)
}
