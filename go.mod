module blastlan

go 1.24
