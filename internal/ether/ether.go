// Package ether implements the Ethernet data-link framing the paper's
// standalone experiments ran on: a 14-byte header (destination, source,
// EtherType), payload padded to the 64-byte minimum frame, a CRC-32 frame
// check sequence, and the 1536-byte maximum packet size quoted in §2.1.2.
//
// The UDP transport does not need this layer (UDP supplies framing), but the
// package makes the simulated link a faithful data-link-level reproduction:
// frames are what cross the simulated wire when Ethernet mode is enabled,
// and the workload generators use frame arithmetic to size transfers.
package ether

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout constants (Ethernet II / DIX v2, which the paper cites).
const (
	AddrLen    = 6
	HeaderLen  = 2*AddrLen + 2
	FCSLen     = 4
	MinFrame   = 64   // including FCS
	MaxFrame   = 1536 // the paper's quoted maximum packet size
	MaxPayload = MaxFrame - HeaderLen - FCSLen
	MinPayload = MinFrame - HeaderLen - FCSLen

	// EtherTypeBlast is the private EtherType carrying blastlan packets.
	EtherTypeBlast = 0xB1A5
)

// Framing errors.
var (
	ErrFrameShort   = errors.New("ether: frame too short")
	ErrFrameLong    = errors.New("ether: frame exceeds maximum")
	ErrFCS          = errors.New("ether: FCS mismatch")
	ErrPayloadLarge = errors.New("ether: payload too large")
)

// Addr is a 48-bit MAC address.
type Addr [AddrLen]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// HostAddr returns a deterministic locally-administered unicast address for
// a small host index, convenient for simulations and tests.
func HostAddr(i int) Addr {
	return Addr{0x02, 0x00, 0x5e, byte(i >> 16), byte(i >> 8), byte(i)}
}

// String renders the address in the usual colon-separated form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsMulticast reports whether the group bit is set.
func (a Addr) IsMulticast() bool { return a[0]&1 == 1 }

// Frame is a decoded Ethernet frame.
type Frame struct {
	Dst, Src  Addr
	EtherType uint16
	// Payload excludes padding: PayloadLen preserves the true length so
	// padded minimum-size frames round-trip. Decode returns the padded
	// payload when the true length cannot be known (foreign EtherTypes).
	Payload []byte
}

// Encode appends the encoded frame — header, payload, padding, FCS — to dst.
func (f *Frame) Encode(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d > %d", ErrPayloadLarge, len(f.Payload), MaxPayload)
	}
	start := len(dst)
	dst = append(dst, f.Dst[:]...)
	dst = append(dst, f.Src[:]...)
	var et [2]byte
	binary.BigEndian.PutUint16(et[:], f.EtherType)
	dst = append(dst, et[:]...)
	dst = append(dst, f.Payload...)
	if pad := MinPayload - len(f.Payload); pad > 0 {
		dst = append(dst, make([]byte, pad)...)
	}
	fcs := crc32.ChecksumIEEE(dst[start:])
	var fb [4]byte
	binary.BigEndian.PutUint32(fb[:], fcs)
	return append(dst, fb[:]...), nil
}

// EncodedLen returns the on-wire length of a frame carrying payloadLen bytes.
func EncodedLen(payloadLen int) int {
	n := HeaderLen + payloadLen + FCSLen
	if n < MinFrame {
		n = MinFrame
	}
	return n
}

// Decode parses and verifies one frame. The returned frame's Payload aliases
// buf and includes any minimum-size padding (the link layer cannot know the
// true payload length; the next layer's own length field strips it — wire
// packets carry one).
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < MinFrame {
		return nil, fmt.Errorf("%w: %d < %d", ErrFrameShort, len(buf), MinFrame)
	}
	if len(buf) > MaxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameLong, len(buf), MaxFrame)
	}
	body, fcsBytes := buf[:len(buf)-FCSLen], buf[len(buf)-FCSLen:]
	want := binary.BigEndian.Uint32(fcsBytes)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrFCS, got, want)
	}
	var f Frame
	copy(f.Dst[:], body[0:AddrLen])
	copy(f.Src[:], body[AddrLen:2*AddrLen])
	f.EtherType = binary.BigEndian.Uint16(body[2*AddrLen : HeaderLen])
	f.Payload = body[HeaderLen:]
	return &f, nil
}

// WireTimeBits returns the number of bit times a frame of the given encoded
// length occupies on the medium, including the 8-byte preamble and start
// delimiter that precede every Ethernet frame (the paper's arithmetic folds
// these into its quoted sizes; simulations may choose either convention).
func WireTimeBits(encodedLen int) int {
	const preamble = 8
	return 8 * (encodedLen + preamble)
}
