package ether

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:       HostAddr(2),
		Src:       HostAddr(1),
		EtherType: EtherTypeBlast,
		Payload:   []byte("a payload clearly longer than the 46-byte minimum so no padding"),
	}
	buf, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedLen(len(f.Payload)) {
		t.Fatalf("encoded len = %d, want %d", len(buf), EncodedLen(len(f.Payload)))
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.EtherType != f.EtherType {
		t.Errorf("header mismatch: %+v", g)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestMinimumFramePadding(t *testing.T) {
	f := &Frame{Dst: HostAddr(1), Src: HostAddr(2), EtherType: EtherTypeBlast, Payload: []byte{1, 2, 3}}
	buf, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != MinFrame {
		t.Fatalf("padded frame = %d bytes, want %d", len(buf), MinFrame)
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Padding is preserved; the payload is padded to the 46-byte minimum.
	if len(g.Payload) != MinPayload {
		t.Errorf("decoded payload = %d bytes, want %d", len(g.Payload), MinPayload)
	}
	if !bytes.Equal(g.Payload[:3], []byte{1, 2, 3}) {
		t.Error("payload prefix lost")
	}
	for _, b := range g.Payload[3:] {
		if b != 0 {
			t.Fatal("padding must be zero")
		}
	}
}

// Property: payloads up to MaxPayload round-trip; the payload prefix always
// survives and frames never exceed the paper's 1536-byte maximum.
func TestFrameProperty(t *testing.T) {
	f := func(payload []byte, di, si uint8) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		fr := &Frame{Dst: HostAddr(int(di)), Src: HostAddr(int(si)), EtherType: EtherTypeBlast, Payload: payload}
		buf, err := fr.Encode(nil)
		if err != nil {
			return false
		}
		if len(buf) > MaxFrame || len(buf) < MinFrame {
			return false
		}
		g, err := Decode(buf)
		if err != nil {
			return false
		}
		return bytes.HasPrefix(g.Payload, payload) && g.Dst == fr.Dst && g.Src == fr.Src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	fr := &Frame{Dst: HostAddr(1), Src: HostAddr(2), EtherType: 0x0800, Payload: make([]byte, 100)}
	good, err := fr.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good[:MinFrame-1]); !errors.Is(err, ErrFrameShort) {
		t.Errorf("short: %v", err)
	}
	long := make([]byte, MaxFrame+1)
	if _, err := Decode(long); !errors.Is(err, ErrFrameLong) {
		t.Errorf("long: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[20] ^= 0xff
	if _, err := Decode(bad); !errors.Is(err, ErrFCS) {
		t.Errorf("fcs: %v", err)
	}
	big := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := big.Encode(nil); !errors.Is(err, ErrPayloadLarge) {
		t.Errorf("encode big: %v", err)
	}
}

// Every single-bit corruption of a frame must be caught by the CRC.
func TestFCSDetectsBitErrors(t *testing.T) {
	fr := &Frame{Dst: HostAddr(3), Src: HostAddr(4), EtherType: EtherTypeBlast, Payload: []byte("data")}
	good, err := fr.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for byteIdx := 0; byteIdx < len(good); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[byteIdx] ^= 1 << bit
			if _, err := Decode(bad); err == nil {
				t.Fatalf("bit flip at %d.%d undetected", byteIdx, bit)
			}
		}
	}
}

func TestAddr(t *testing.T) {
	a := HostAddr(0x123456)
	if got, want := a.String(), "02:00:5e:12:34:56"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if a.IsBroadcast() || a.IsMulticast() {
		t.Error("host addresses are unicast")
	}
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast flags wrong")
	}
	if HostAddr(1) == HostAddr(2) {
		t.Error("host addresses must be distinct")
	}
}

func TestEncodedLen(t *testing.T) {
	cases := []struct{ payload, want int }{
		{0, MinFrame},
		{MinPayload, MinFrame},
		{MinPayload + 1, MinFrame + 1},
		{1000, HeaderLen + 1000 + FCSLen},
		{MaxPayload, MaxFrame},
	}
	for _, c := range cases {
		if got := EncodedLen(c.payload); got != c.want {
			t.Errorf("EncodedLen(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestWireTimeBits(t *testing.T) {
	// A minimum frame plus preamble is 72 bytes = 576 bit times,
	// 57.6 µs at 10 Mb/s.
	if got := WireTimeBits(MinFrame); got != 576 {
		t.Errorf("WireTimeBits(64) = %d, want 576", got)
	}
}
