package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "ablation-adversary",
		Title: "Hostile-network ablation: blast strategies vs reorder/duplication/corruption intensity",
		Paper: "beyond the paper: §3 analyses loss only, but the same recovery machinery must survive reordering, duplication and corruption; NAK-driven strategies degrade gracefully while full-no-nak pays a full Tr per disturbance near the end of a blast",
		Run:   runAblationAdversary,
	})
}

// adversaryIntensities is the swept x-axis: each level scales the reorder
// and corruption probabilities (duplication rides at half).
var adversaryIntensities = []float64{0, 0.005, 0.02, 0.05}

// AdversaryAt maps one hostility intensity x onto the adversary shape the
// ablation (and lansim's -adversary sweep) charts: reordering and corruption
// at x, duplication at x/2, mild jitter. One definition keeps the CLI sweep
// and the archived table on the same axes.
func AdversaryAt(x float64) params.Adversary {
	if x == 0 {
		return params.Adversary{}
	}
	return params.Adversary{
		ReorderProb:   x,
		ReorderDepth:  2,
		DuplicateProb: x / 2,
		CorruptProb:   x,
		JitterMax:     500 * time.Microsecond,
	}
}

// runAblationAdversary sweeps all four blast strategies over increasingly
// hostile networks. Every cell is a seeded Scenario fanned through the
// parallel sampling engine, so the table is bit-identical at any worker
// count (-parallel on or off).
func runAblationAdversary(opt Options) (*Result, error) {
	m := params.VKernel()
	trials := 200
	if opt.Quick {
		trials = 20
	}
	strategies := []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective}
	res := &Result{
		ID:    "ablation-adversary",
		Title: fmt.Sprintf("64 KB blast under a hostile network (DES, %d trials/cell)", trials),
		Paper: "reorder+corrupt+duplicate at intensity x; mean elapsed per strategy",
		Header: []string{"intensity", "full-no-nak (ms)", "full-nak (ms)",
			"go-back-n (ms)", "selective (ms)", "gbn retrans/run", "failures"},
	}
	res.Rows = make([][]string, len(adversaryIntensities))
	err := forEachPoint(opt.Workers, len(adversaryIntensities), func(i int) error {
		x := adversaryIntensities[i]
		row := []string{fmt.Sprintf("%.1f%%", 100*x)}
		var failures int
		var gbnRetrans float64
		for _, s := range strategies {
			sc := simrun.Scenario{
				Name:      fmt.Sprintf("adv-%g-%s", x, s),
				Cost:      m,
				Adversary: AdversaryAt(x),
				Config: core.Config{
					TransferID:     1,
					Bytes:          64 * 1024,
					Protocol:       core.Blast,
					Strategy:       s,
					RetransTimeout: analytic.TimeBlast(m, 64),
				},
				Trials: trials,
				Seed:   opt.Seed + int64(i)*1000,
			}
			// The sampler below this point already fans the trials across
			// workers; rows above it parallelise the intensity levels.
			st, err := sc.Sample(opt.Workers)
			if err != nil {
				return err
			}
			row = append(row, ms(st.Elapsed.Mean()))
			failures += st.Failures
			if s == core.GoBackN {
				gbnRetrans = float64(st.Retransmits) / float64(trials)
			}
		}
		row = append(row, fmt.Sprintf("%.1f", gbnRetrans), fmt.Sprint(failures))
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"intensity x sets ReorderProb = CorruptProb = x (depth 2), DuplicateProb = x/2, jitter ≤ 0.5 ms; corruption runs the real wire codec, so every flip is a checksum rejection",
		"full-no-nak degrades worst: a disturbance near the blast's tail silences the receiver and costs a full Tr, while the NAK strategies recover at wire speed",
		"duplicates and reordering alone are nearly free for blast — the receiver accepts out-of-order packets into the pre-allocated buffer and discards duplicates (§2's MoveTo contract)")
	return res, nil
}
