package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/disk"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/vkernel"
)

func init() {
	register(&Experiment{
		ID:    "ext-pagesize",
		Title: "Extension: end-to-end file read vs page size (disk + IPC + MoveTo)",
		Paper: "§1: high-performance file access requires large page sizes \"due to economies in accessing the disk in large quantities as well as to economies in accessing the network in large quantities\" [10,12,15] — this regenerates the combined effect the paper's intro cites as motivation",
		Run:   runPageSize,
	})
	register(&Experiment{
		ID:    "ext-chunk",
		Title: "Extension: blast elapsed time vs network packet size",
		Paper: "§1's network half in isolation: per-packet costs amortise over bigger packets up to the 1536-byte Ethernet maximum (§2.1.2)",
		Run:   runChunkSweep,
	})
}

func runPageSize(opt Options) (*Result, error) {
	res := &Result{
		ID:     "ext-pagesize",
		Title:  "64 KB file read through the V file server (Fujitsu Eagle disk, blast MoveTo)",
		Paper:  "large pages amortise both disk positioning and per-packet network costs",
		Header: []string{"page size", "pages", "IPC (ms)", "disk (ms)", "network (ms)", "total (ms)", "vs 64KB page"},
	}
	file := make([]byte, 64*1024)
	rand.New(rand.NewSource(opt.Seed)).Read(file)

	var base time.Duration
	for _, page := range []int{1024, 4096, 16384, 65536} {
		c, err := vkernel.NewCluster(vkernel.Options{Cost: params.VKernel(), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		fs, err := vkernel.NewFileServer(c.A, disk.FujitsuEagle())
		if err != nil {
			return nil, err
		}
		fs.Store("file", file)
		client := c.B.CreateProcess(len(file), true)
		r, err := fs.Read(client, 0, "file", 0, len(file), page,
			vkernel.MoveOptions{Protocol: core.Blast, Strategy: core.GoBackN})
		if err != nil {
			return nil, err
		}
		if page == 65536 {
			base = r.Elapsed
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dKB", page/1024),
			fmt.Sprint(r.Pages),
			ms(r.IPCTime), ms(r.DiskTime), ms(r.NetTime), ms(r.Elapsed),
			"", // filled below once base is known
		})
	}
	// Fill the ratio column (the base is the last row's measurement).
	for i := range res.Rows {
		var v float64
		fmt.Sscanf(res.Rows[i][5], "%f", &v)
		res.Rows[i][6] = ratio(time.Duration(v*float64(time.Millisecond)), base)
	}
	res.Notes = append(res.Notes,
		"disk: 18 ms average seek + 8.3 ms rotational latency per page boundary at 1.8 MB/s (a 1985 Fujitsu Eagle); network: V-kernel blast MoveTo per page",
		"1 KB pages pay 63 extra rotational latencies AND 63 extra per-transfer protocol exchanges: both of the intro's economies point the same way")
	return res, nil
}

func runChunkSweep(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	res := &Result{
		ID:     "ext-chunk",
		Title:  "64 KB blast vs data-packet size (standalone cost model)",
		Paper:  "bigger packets amortise the fixed per-packet copy cost",
		Header: []string{"packet size", "packets", "elapsed (ms)", "per-KB (ms)", "utilization"},
	}
	for _, chunk := range []int{256, 512, 1024, 1536} {
		cfg := core.Config{
			TransferID:     1,
			Bytes:          64 * 1024,
			ChunkSize:      chunk,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			RetransTimeout: time.Second,
		}
		elapsed, err := one(cfg, simrun.Options{Cost: m})
		if err != nil {
			return nil, err
		}
		n := cfg.NumPackets()
		// Utilization with chunk-sized packets: share of elapsed time the
		// wire carries bits.
		wire := time.Duration(n) * m.WireTime(chunk)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(chunk),
			fmt.Sprint(n),
			ms(elapsed),
			ms(elapsed / 64),
			pct(float64(wire) / float64(elapsed)),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("every packet costs a fixed ≈%v of copy set-up regardless of size (the linear copy model's intercept), so 256-byte packets quadruple that overhead relative to 1024-byte packets", m.CopyTime(0)),
		"the paper transfers \"amounts one or two orders of magnitude bigger than the maximum network packet size\" in maximal packets for exactly this reason")
	return res, nil
}
