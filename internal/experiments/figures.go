package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/mc"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/trace"
	"blastlan/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "figure3",
		Title: "Protocol timelines: stop-and-wait, blast, sliding window, double-buffered blast",
		Paper: "Figure 3: with stop-and-wait the two processors are never active in parallel; blast and sliding window overlap the sender's copy-in with the receiver's copy-out; a double-buffered interface additionally overlaps copies with wire time",
		Run:   runFigure3,
	})
	register(&Experiment{
		ID:    "figure4",
		Title: "Elapsed time vs transfer size for the four protocol variants",
		Paper: "Figure 4: blast < sliding window < stop-and-wait at every size, with double-buffered blast below all three; gaps grow linearly with N",
		Run:   runFigure4,
	})
	register(&Experiment{
		ID:    "figure5",
		Title: "Expected time for 64 KB transfers vs packet loss probability",
		Paper: "Figure 5: curves flat at their error-free level through pn ≈ 1e-4, then a knee; blast (T0=173 ms) far below stop-and-wait (D·T0(1)=378 ms) throughout the realistic 1e-5…1e-4 region; larger Tr steepens the knee",
		Run:   runFigure5,
	})
	register(&Experiment{
		ID:    "figure6",
		Title: "Standard deviation of 64 KB MoveTo vs loss probability, per retransmission strategy",
		Paper: "Figure 6: full retransmission without NAK has unacceptable σ (grows with Tr); a NAK removes most of it; go-back-n is better still and only marginally worse than selective — hence go-back-n is the strategy of choice (§3.2.4)",
		Run:   runFigure6,
	})
}

func runFigure3(opt Options) (*Result, error) {
	res := &Result{
		ID:    "figure3",
		Title: "Protocol timelines (N = 3 packets, standalone cost model)",
		Paper: "Figure 3a–d",
	}
	variants := []struct {
		name  string
		proto core.Protocol
		cost  params.CostModel
	}{
		{"Figure 3.a — stop-and-wait", core.StopAndWait, params.Standalone3Com()},
		{"Figure 3.b — blast", core.Blast, params.Standalone3Com()},
		{"Figure 3.c — sliding window", core.SlidingWindow, params.Standalone3Com()},
		{"Figure 3.d — blast, double-buffered interface", core.BlastAsync, params.DoubleBuffered(params.Standalone3Com())},
	}
	for _, v := range variants {
		var rec trace.Recorder
		elapsed, err := one(core.Config{
			TransferID:     1,
			Bytes:          3 * 1024,
			Protocol:       v.proto,
			Strategy:       core.GoBackN,
			RetransTimeout: 500 * time.Millisecond,
		}, simrun.Options{Cost: v.cost, Trace: rec.Add})
		if err != nil {
			return nil, err
		}
		res.Preformatted = append(res.Preformatted,
			fmt.Sprintf("%s — total elapsed %s ms\n%s", v.name, ms(elapsed), rec.Render(96)))
	}
	return res, nil
}

func runFigure4(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	md := params.DoubleBuffered(m)
	res := &Result{
		ID:     "figure4",
		Title:  "Elapsed time vs N (ms, standalone cost model)",
		Paper:  "Figure 4 curves",
		Header: []string{"N", "SAW", "SW", "B", "B-dblbuf", "SAW model", "SW model", "B model", "dbl model"},
	}
	sizes := workload.FigureSizes()
	res.Rows = make([][]string, len(sizes))
	err := forEachPoint(opt.Workers, len(sizes), func(i int) error {
		tr := sizes[i]
		n := tr.Packets()
		saw, err := one(table1Config(tr.Bytes, core.StopAndWait), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		sw, err := one(table1Config(tr.Bytes, core.SlidingWindow), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		b, err := one(table1Config(tr.Bytes, core.Blast), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		dbl, err := one(table1Config(tr.Bytes, core.BlastAsync), simrun.Options{Cost: md})
		if err != nil {
			return err
		}
		res.Rows[i] = []string{
			fmt.Sprint(n),
			ms(saw), ms(sw), ms(b), ms(dbl),
			ms(analytic.TimeStopAndWait(m, n)),
			ms(analytic.TimeSlidingWindow(m, n)),
			ms(analytic.TimeBlast(m, n)),
			ms(analytic.TimeBlastDouble(md, n)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// figure5Trials picks per-point Monte-Carlo trial counts: high loss rates
// need hundreds of retransmission rounds per trial, so the budget shrinks
// as pn grows (the estimate converges faster there anyway).
func figure5Trials(pn float64, quick bool) int {
	base := 100000
	if quick {
		base = 3000
	}
	switch {
	case pn >= 1e-1:
		return base / 100
	case pn >= 1e-2:
		return base / 10
	}
	return base
}

func runFigure5(opt Options) (*Result, error) {
	m := params.VKernel()
	d := 64
	t01 := analytic.TimeStopAndWait(m, 1) // 5.9 ms
	t0d := analytic.TimeBlast(m, d)       // 173 ms
	res := &Result{
		ID:    "figure5",
		Title: "Expected time for 64 KB transfers (ms) vs pn — V kernel model",
		Paper: fmt.Sprintf("T0(1)=%s ms, T0(D)=%s ms; flat region through 1e-4, knee beyond", ms(t01), ms(t0d)),
		Header: []string{"pn",
			"SAW Tr=10·T0(1)", "mc", "SAW Tr=100·T0(1)",
			"B Tr=T0(D)", "mc", "B Tr=10·T0(D)"},
	}
	ladder := workload.LossLadder(1e-6, 1e-1)
	res.Rows = make([][]string, len(ladder))
	err := forEachPoint(opt.Workers, len(ladder), func(i int) error {
		pn := ladder[i]
		trials := figure5Trials(pn, opt.Quick)
		sawMC, err := mc.StopAndWait(mc.Params{Cost: m, D: d, PN: pn, Tr: 10 * t01, Trials: trials, Seed: opt.Seed})
		if err != nil {
			return err
		}
		blastMC, err := mc.Blast(mc.Params{Cost: m, D: d, PN: pn, Tr: t0d,
			Strategy: core.FullNoNak, Trials: trials, Seed: opt.Seed})
		if err != nil {
			return err
		}
		res.Rows[i] = []string{
			fmt.Sprintf("%.0e", pn),
			ms(analytic.ExpectedTimeStopAndWait(t01, 10*t01, d, pn)), ms(sawMC.Mean),
			ms(analytic.ExpectedTimeStopAndWait(t01, 100*t01, d, pn)),
			ms(analytic.ExpectedTimeBlast(t0d, t0d, d, pn)), ms(blastMC.Mean),
			ms(analytic.ExpectedTimeBlast(t0d, 10*t0d, d, pn)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"analytic columns are §3.1's closed forms; mc columns are strategy-level Monte Carlo (which additionally models receiver-side packet accumulation across attempts, so it sits at or slightly below the closed form at high pn)",
		"the paper operates between 1e-5 (network errors) and 1e-4 (interface errors at full speed): both protocols sit in their flat region there, and blast wins by the error-free margin")
	return res, nil
}

func runFigure6(opt Options) (*Result, error) {
	m := params.VKernel()
	d := 64
	t0d := analytic.TimeBlast(m, d)
	tresp := analytic.ResponseLatency(m)
	res := &Result{
		ID:    "figure6",
		Title: "σ of 64 KB MoveTo (ms) vs pn, per retransmission strategy — Tr = T0(D)",
		Paper: "σ(R1 no-NAK) ≫ σ(R2 NAK) > σ(R3 go-back-n) ≳ σ(R4 selective)",
		Header: []string{"pn",
			"R1 no-NAK mc", "R1 model", "R1 Tr=10·T0 model",
			"R2 NAK mc", "R2 model",
			"R3 go-back-n mc", "R4 selective mc"},
	}
	ladder := workload.LossLadder(1e-5, 1e-1)
	res.Rows = make([][]string, len(ladder))
	err := forEachPoint(opt.Workers, len(ladder), func(i int) error {
		pn := ladder[i]
		trials := figure5Trials(pn, opt.Quick)
		row := []string{fmt.Sprintf("%.0e", pn)}
		var mcSigma []time.Duration
		for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
			est, err := mc.Blast(mc.Params{Cost: m, D: d, PN: pn, Tr: t0d,
				Strategy: s, Trials: trials, Seed: opt.Seed})
			if err != nil {
				return err
			}
			mcSigma = append(mcSigma, est.StdDev)
		}
		row = append(row,
			ms(mcSigma[0]),
			ms(analytic.StdDevFullNoNak(t0d, t0d, d, pn)),
			ms(analytic.StdDevFullNoNak(t0d, 10*t0d, d, pn)),
			ms(mcSigma[1]),
			ms(analytic.StdDevFullNak(t0d, t0d, tresp, d, pn)),
			ms(mcSigma[2]),
			ms(mcSigma[3]),
		)
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"R3/R4 have no closed form — the paper, like us, evaluates them by simulation (§3.2.3)",
		"R1's σ scales with Tr (compare the two R1 model columns): that is what makes full retransmission without NAK unacceptable at realistic timeouts (§3.2.4)",
		"Monte-Carlo σ at pn=1e-5 rests on few failure events; treat the first row as ±15%")
	return res, nil
}
