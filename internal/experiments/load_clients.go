package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "ext-load-clients",
		Title: "Extension: many-client load on one sharded server (shared session layer, DES)",
		Paper: "not in the paper: §2.1 measures one transfer between two matched machines; this extension serves N concurrent seeded clients through the substrate-agnostic session layer and reports makespan, recovery and Jain fairness — deterministically",
		Run:   runLoadClients,
	})
}

// runLoadClients sweeps the client count (and an adversarial variant) over
// one sharded simulated server.
func runLoadClients(opt Options) (*Result, error) {
	res := &Result{
		ID:     "ext-load-clients",
		Title:  "N seeded clients vs one sharded server (Concurrency=8, mixed 64/256 KB pulls, staggered arrivals)",
		Paper:  "not in the paper: the scale axis the transport/session refactor opened",
		Header: []string{"clients", "network", "completed", "makespan (virtual)", "data pkts", "retransmits", "fairness (Jain)"},
	}
	counts := []int{1, 8, 16, 64}
	if opt.Quick {
		counts = []int{1, 8, 16}
	}
	networks := []struct {
		name string
		adv  params.Adversary
	}{
		{"clean", params.Adversary{}},
		{"2% loss + dup", params.Adversary{
			Loss:          params.LossModel{PNet: 0.02},
			DuplicateProb: 0.01,
		}},
	}
	for _, n := range counts {
		for _, nw := range networks {
			sc := simrun.LoadScenario{
				Name:        fmt.Sprintf("load%d", n),
				N:           n,
				Bytes:       []int{64 << 10, 256 << 10},
				Strategies:  []core.Strategy{core.GoBackN, core.Selective},
				Arrival:     50 * time.Millisecond,
				Concurrency: 8,
				Adversary:   nw.adv,
				Seed:        opt.Seed,
			}
			r, err := sc.Run()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n),
				nw.name,
				fmt.Sprintf("%d/%d", r.Completed, n),
				fmt.Sprintf("%v", r.Makespan.Round(time.Millisecond)),
				fmt.Sprintf("%d", r.Agg.DataSent),
				fmt.Sprintf("%d", r.Agg.Retransmits),
				fmt.Sprintf("%.3f", r.Fairness),
			})
		}
	}
	res.Notes = append(res.Notes,
		"every client pulls through the shared session layer (internal/session) from one sharded simulated server; the identical server code serves real UDP in blastd",
		"clients beyond the Concurrency=8 session cap are dropped at REQ time and recover via REQ retransmission, which is what stretches the adversarial makespans",
		"bit-identical at any worker count and GOMAXPROCS (handoff-scheduled DES); regression-pinned by TestLoadScenarioDeterministic",
	)
	return res, nil
}
