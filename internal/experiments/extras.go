package experiments

import (
	"fmt"
	"net"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/stats"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
	"blastlan/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "util",
		Title: "Network utilization of single- vs double-buffered blast",
		Paper: "§2.1.3: \"for the 64 kilobyte transfer … the network utilization is only 38 percent\"; double buffering improves elapsed time and utilization; a third buffer buys nothing",
		Run:   runUtil,
	})
	register(&Experiment{
		ID:    "ablation-dma",
		Title: "Copy-cost ablation: 3-Com host copies vs Excelan-style DMA vs modern hardware",
		Paper: "§2.1.3: DMA interfaces still copy — just with a slower on-board processor, so elapsed time is not improved; copy/wire ratio is the whole game, so on modern hardware the blast advantage collapses to the naive wire arithmetic",
		Run:   runAblationDMA,
	})
	register(&Experiment{
		ID:    "ablation-burst",
		Title: "Loss-model ablation: independent vs Gilbert–Elliott burst losses at equal average rate",
		Paper: "§1/§3: the analysis assumes independent losses and notes burst errors occasionally occur; bursts concentrate failures into fewer attempts — slightly lower mean, higher tail",
		Run:   runAblationBurst,
	})
	register(&Experiment{
		ID:    "multiblast",
		Title: "Multiblast: window sweep for a 1 MB remote file-system dump",
		Paper: "§3.1.3: as the transfer grows, errors get more likely and retransmission more costly; \"for such very large sizes, we suggest the use of multiple blasts\"",
		Run:   runMultiblast,
	})
	register(&Experiment{
		ID:    "udp-loopback",
		Title: "Real-socket measurement: 64 KB over UDP loopback, three protocols",
		Paper: "§2.1.1's measurement method on a live transport: absolute numbers reflect 2026 hardware, but blast ≤ sliding window ≤ stop-and-wait should hold because per-packet syscall round trips play the role of copies",
		Run:   runUDPLoopback,
	})
}

func runUtil(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	md := params.DoubleBuffered(m)
	res := &Result{
		ID:     "util",
		Title:  "Blast network utilization and the double-buffering ablation",
		Paper:  "u(64) ≈ 38%",
		Header: []string{"N", "u single-buf", "B (ms)", "B dbl (ms)", "dbl speedup", "3-buf gain"},
	}
	ns := []int{1, 4, 16, 64, 256}
	res.Rows = make([][]string, len(ns))
	err := forEachPoint(opt.Workers, len(ns), func(i int) error {
		n := ns[i]
		b := analytic.TimeBlast(m, n)
		dbl := analytic.TimeBlastDouble(md, n)
		// A third buffer: simulate with TxBuffers=3 and compare.
		m3 := md
		m3.TxBuffers = 3
		cfg := table1Config(n*1024, core.BlastAsync)
		dbl2, err := one(cfg, simrun.Options{Cost: md})
		if err != nil {
			return err
		}
		tri, err := one(cfg, simrun.Options{Cost: m3})
		if err != nil {
			return err
		}
		gain := "none"
		if tri < dbl2 {
			gain = ms(dbl2 - tri)
		}
		res.Rows[i] = []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f%%", 100*analytic.Utilization(m, n)),
			ms(b), ms(dbl), ratio(b, dbl), gain,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"\"3-buf gain\" compares simulated double- vs triple-buffered interfaces: zero everywhere, confirming §2.1.3's claim that a third transmission buffer provides no further improvement while C and T are constant",
		"u(64) = 37.3% with exact wire times; the paper's quoted \"only 38 percent\" reflects its rounded constants")
	return res, nil
}

func runAblationDMA(opt Options) (*Result, error) {
	res := &Result{
		ID:     "ablation-dma",
		Title:  "64 KB blast under different copy engines",
		Paper:  "copy time dominates; DMA boards that copy with a slow on-board CPU make things worse, not better",
		Header: []string{"hardware", "C (ms)", "T (ms)", "C/T", "SAW (ms)", "B (ms)", "SAW/B", "B util"},
	}
	models := []params.CostModel{
		params.Standalone3Com(),
		params.ExcelanDMA(),
		params.VKernel(),
		params.ModernGigabit(),
	}
	res.Rows = make([][]string, len(models))
	err := forEachPoint(opt.Workers, len(models), func(i int) error {
		m := models[i]
		saw, err := one(table1Config(64*1024, core.StopAndWait), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		b, err := one(table1Config(64*1024, core.Blast), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		res.Rows[i] = []string{
			m.Name,
			ms(m.C()), ms(m.T()),
			fmt.Sprintf("%.2f", float64(m.C())/float64(m.T())),
			ms(saw), ms(b), ratio(saw, b),
			pct(analytic.Utilization(m, 64)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"the Excelan-style row models §2.1.3's observation that the board's 8088 copies ≈2.5× slower than the 68000 host: every protocol slows down and blast's relative advantage grows",
		"the modern row inverts the regime (C ≪ T): the SAW/B ratio collapses toward the naive ≤1.1× wire arithmetic of §2.1 — the paper's effect is a property of the copy/wire cost ratio, exactly as it argues")
	return res, nil
}

func runAblationBurst(opt Options) (*Result, error) {
	m := params.VKernel()
	meanLoss := 1e-2
	ge := &params.GilbertElliott{PGood: 0, PBad: 0.5, PGoodToBad: 0.2 * meanLoss / 0.5 / (1 - meanLoss/0.5), PBadToGood: 0.2}
	trials := 600
	if opt.Quick {
		trials = 60
	}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 * 1024,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: analytic.TimeBlast(m, 64),
	}
	res := &Result{
		ID:     "ablation-burst",
		Title:  fmt.Sprintf("64 KB go-back-n blast, mean loss %.3g: independent vs burst (DES, %d trials)", meanLoss, trials),
		Paper:  "independence is a reasonable first-order approximation; bursts shift cost into the tail",
		Header: []string{"loss process", "mean (ms)", "σ (ms)", "max (ms)", "failures"},
	}
	bern, fail1, err := desSample(cfg, simrun.Options{Cost: m,
		Loss: params.LossModel{PNet: meanLoss}, Seed: opt.Seed}, trials, opt.Workers)
	if err != nil {
		return nil, err
	}
	burst, fail2, err := desSample(cfg, simrun.Options{Cost: m,
		Loss: params.LossModel{Burst: ge}, Seed: opt.Seed}, trials, opt.Workers)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{
		"independent (Bernoulli)", ms(bern.Mean()), ms(bern.StdDev()), ms(bern.Max()), fmt.Sprint(fail1)})
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("Gilbert–Elliott (mean burst %.0f pkts)", 1/ge.PBadToGood),
		ms(burst.Mean()), ms(burst.StdDev()), ms(burst.Max()), fmt.Sprint(fail2)})
	res.Notes = append(res.Notes,
		fmt.Sprintf("Gilbert–Elliott stationary mean loss %.4f vs Bernoulli %.4f", ge.MeanLoss(), meanLoss))
	return res, nil
}

func runMultiblast(opt Options) (*Result, error) {
	m := params.VKernel()
	dump := workload.FileDump()
	pn := 2e-3
	trials := 200
	if opt.Quick {
		trials = 20
	}
	res := &Result{
		ID:     "multiblast",
		Title:  fmt.Sprintf("1 MB dump (%d packets), pn=%.0e, go-back-n (DES, %d trials)", dump.Packets(), pn, trials),
		Paper:  "multiple blasts bound each retransmission's cost; the single giant blast pays the most per error",
		Header: []string{"window (pkts)", "error-free (ms)", "mean (ms)", "σ (ms)", "retransmitted pkts/run"},
	}
	windows := workload.MultiblastWindows()
	res.Rows = make([][]string, len(windows))
	err := forEachPoint(opt.Workers, len(windows), func(i int) error {
		w := windows[i]
		cfg := core.Config{
			TransferID:     1,
			Bytes:          dump.Bytes,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			Window:         w,
			RetransTimeout: analytic.TimeBlast(m, dump.Packets()) / 4,
		}
		clean, err := one(cfg, simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		// The sampler already fans the per-point trials across workers;
		// points above it mostly parallelise the error-free baselines.
		st, err := simrun.SampleWorkers(cfg, simrun.Options{Cost: m,
			Loss: params.LossModel{PNet: pn}, Seed: opt.Seed}, trials, opt.Workers)
		if err != nil {
			return err
		}
		name := fmt.Sprint(w)
		if w == 0 {
			name = "single blast"
		}
		res.Rows[i] = []string{
			name, ms(clean), ms(st.Elapsed.Mean()), ms(st.Elapsed.StdDev()),
			fmt.Sprintf("%.1f", float64(st.Retransmits)/float64(trials)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"smaller windows retransmit less per error (go-back-n never crosses a window boundary) at the cost of one extra ack exchange per window in the error-free time")
	return res, nil
}

func runUDPLoopback(opt Options) (*Result, error) {
	res := &Result{
		ID:     "udp-loopback",
		Title:  "64 KB over real UDP loopback (protocol elapsed, ms; 5 runs each)",
		Paper:  "shape check on a live transport",
		Header: []string{"protocol", "mean (ms)", "min (ms)", "max (ms)"},
	}
	payload := workload.Transfer{Name: "64KB", Bytes: 64 * 1024}.Payload(opt.Seed)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		res.Skipped = true
		res.Notes = append(res.Notes, fmt.Sprintf("no UDP loopback available: %v", err))
		return res, nil
	}
	defer conn.Close()
	srv := udplan.NewServer(conn)
	srv.Sink = func(wire.Req, []byte) {}
	go srv.Run()

	runs := 5
	if opt.Quick {
		runs = 2
	}
	for _, p := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
		var acc stats.Durations
		for i := 0; i < runs; i++ {
			e, err := udplan.Dial(conn.LocalAddr().String())
			if err != nil {
				res.Skipped = true
				res.Notes = append(res.Notes, fmt.Sprintf("dial: %v", err))
				return res, nil
			}
			cfg := core.Config{
				TransferID:     uint32(int(p)*100 + i + 1),
				Bytes:          len(payload),
				ChunkSize:      1000,
				Protocol:       p,
				Strategy:       core.GoBackN,
				RetransTimeout: 200 * time.Millisecond,
				MaxAttempts:    50,
				Linger:         100 * time.Millisecond,
				ReceiverIdle:   2 * time.Second,
				Payload:        payload,
			}
			// SendResult.Elapsed covers first data packet to final ack —
			// the paper's measurement window — and excludes the request
			// handshake (whose latency is serial-server scheduling, not
			// protocol cost).
			sres, err := udplan.Push(e, cfg)
			if err != nil {
				e.Close()
				return nil, fmt.Errorf("udp push (%v): %w", p, err)
			}
			acc.Add(sres.Elapsed)
			e.Close()
		}
		res.Rows = append(res.Rows, []string{p.String(), ms(acc.Mean()), ms(acc.Min()), ms(acc.Max())})
	}
	res.Notes = append(res.Notes,
		"loopback has no 10 Mb/s wire: stop-and-wait pays a kernel round trip per packet while blast pays one per transfer, so the ordering — not the magnitude — is the reproduced result")
	return res, nil
}
