package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "contention",
		Title: "Extension: rate-control policies judged under N-flow contention (DES)",
		Paper: "not in the paper: crosses every registered RateController policy with clean/lossy/jittery fabrics and 1/8/64 concurrent clients, reporting goodput, Jain fairness and makespan per cell — deterministically at any worker count",
		Run:   runContention,
	})
}

// runContention executes the full ContentionSweep gauntlet and renders the
// judged table.
func runContention(opt Options) (*Result, error) {
	res := &Result{
		ID:     "contention",
		Title:  "Controller × adversary × client-count contention sweep (256 KB pulls, sharded DES server)",
		Paper:  "not in the paper: the judging harness for the pluggable congestion-control registry",
		Header: []string{"policy", "adversary", "clients", "completed", "goodput MB/s", "fairness (Jain)", "makespan (virtual)", "retransmits"},
	}
	sw := simrun.ContentionSweep{Seed: opt.Seed}
	if opt.Quick {
		sw.Clients = []int{1, 8}
		sw.Bytes = 64 << 10
	}
	workers := opt.Workers
	cells, err := sw.Run(workers)
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		res.Rows = append(res.Rows, []string{
			c.PolicyName(),
			c.Adversary,
			fmt.Sprintf("%d", c.Clients),
			fmt.Sprintf("%d/%d", c.Completed, c.Clients),
			fmt.Sprintf("%.1f", c.Goodput),
			fmt.Sprintf("%.3f", c.Fairness),
			fmt.Sprintf("%v", c.Makespan.Round(time.Microsecond)),
			fmt.Sprintf("%d", c.Retrans),
		})
	}
	res.Notes = append(res.Notes,
		"every cell is N clients of one policy pulling concurrently from one sharded simulated server through the shared session layer; the policy rides the REQ's rate-control id, exactly as blastd serves it",
		"goodput is delivered payload over the cell's makespan; fairness is Jain's index over per-client end-to-end throughputs",
		"bit-identical at any worker count (cells seeded by enumeration index, merged in index order); regression-pinned by TestContentionSweepDeterministicAtAnyWorkerCount",
	)
	return res, nil
}
