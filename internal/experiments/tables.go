package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/trace"
	"blastlan/internal/vkernel"
	"blastlan/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Standalone measurements of error-free transmissions",
		Paper: "1 KB exchange ≈ 4.1 ms; for multi-packet transfers stop-and-wait takes about twice as long as sliding window or blast, with blast slightly ahead of sliding window (§2.1.1, Table 1)",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Breakdown of 1 KB transmission cost over its components",
		Paper: "copy data 1.35 ms each way, transmit 0.82 ms, copy ack 0.17 ms each way, transmit ack 0.05 ms; components total 3.91 ms vs 4.08 ms observed; ≈75% copying, ≈21% wire (§2.1.2, Table 2)",
		Run:   runTable2,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "V kernel MoveTo measurements",
		Paper: "kernel overhead raises C to 1.83 ms and Ca to 0.67 ms; T0(1) = 5.9 ms and T0(64) = 173 ms; blast's advantage grows under kernel overhead (§2.2, Table 3)",
		Run:   runTable3,
	})
}

// table1Config builds the standalone transfer configuration for one size.
func table1Config(bytes int, p core.Protocol) core.Config {
	return core.Config{
		TransferID:     1,
		Bytes:          bytes,
		Protocol:       p,
		Strategy:       core.GoBackN,
		RetransTimeout: 500 * time.Millisecond,
	}
}

func runTable1(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	res := &Result{
		ID:     "table1",
		Title:  "Standalone measurements of error-free transmissions (ms)",
		Paper:  "SAW ≈ 2× blast; blast < sliding window < stop-and-wait",
		Header: []string{"size", "pkts", "SAW sim", "SAW model", "SW sim", "SW model", "B sim", "B model", "SAW/B"},
	}
	sizes := workload.PageReadSizes()
	res.Rows = make([][]string, len(sizes))
	err := forEachPoint(opt.Workers, len(sizes), func(i int) error {
		tr := sizes[i]
		n := tr.Packets()
		saw, err := one(table1Config(tr.Bytes, core.StopAndWait), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		sw, err := one(table1Config(tr.Bytes, core.SlidingWindow), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		b, err := one(table1Config(tr.Bytes, core.Blast), simrun.Options{Cost: m})
		if err != nil {
			return err
		}
		res.Rows[i] = []string{
			tr.Name, fmt.Sprint(n),
			ms(saw), ms(analytic.TimeStopAndWait(m, n)),
			ms(sw), ms(analytic.TimeSlidingWindow(m, n)),
			ms(b), ms(analytic.TimeBlast(m, n)),
			ratio(saw, b),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"sim = discrete-event simulation of the busy-wait standalone programs; model = §2.1.3 closed forms (which ignore the 2·τ propagation round trip)")
	return res, nil
}

func runTable2(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	var rec trace.Recorder
	elapsed, err := one(core.Config{
		TransferID:     1,
		Bytes:          1024,
		Protocol:       core.StopAndWait,
		RetransTimeout: 500 * time.Millisecond,
	}, simrun.Options{Cost: m, Trace: rec.Add})
	if err != nil {
		return nil, err
	}
	paper := map[string]string{
		"Copy data into sender's interface":     "1.35",
		"Transmit data":                         "0.82",
		"Copy data out of receiver's interface": "1.35",
		"Copy ack into receiver's interface":    "0.17",
		"Transmit ack":                          "0.05",
		"Copy ack out of sender's interface":    "0.17",
	}
	res := &Result{
		ID:     "table2",
		Title:  "Breakdown of transmission cost over its components (ms)",
		Paper:  "components total 3.91 ms; observed elapsed 4.08 ms",
		Header: []string{"operation", "paper", "measured"},
	}
	rows := rec.Breakdown()
	var copyTime, wireTime time.Duration
	for _, r := range rows {
		p := paper[r.Operation]
		if p == "" {
			p = "-"
		}
		res.Rows = append(res.Rows, []string{r.Operation, p, ms(r.Time)})
		if r.Operation == "Transmit data" || r.Operation == "Transmit ack" {
			wireTime += r.Time
		} else {
			copyTime += r.Time
		}
	}
	total := trace.Total(rows)
	res.Rows = append(res.Rows, []string{"Total", "3.91", ms(total)})
	res.Rows = append(res.Rows, []string{"Observed elapsed time", "4.08", ms(elapsed)})
	res.Notes = append(res.Notes,
		fmt.Sprintf("copying %s of elapsed, wire %s (paper: ≈75%% and ≈21%%)",
			pct(float64(copyTime)/float64(elapsed)), pct(float64(wireTime)/float64(elapsed))),
		"the paper's extra 0.17 ms of observed time is network and device latency its simulator-of-record (the hardware) includes; our substitute models a 10 µs propagation per hop")
	return res, nil
}

func runTable3(opt Options) (*Result, error) {
	res := &Result{
		ID:     "table3",
		Title:  "V kernel MoveTo measurements (ms)",
		Paper:  "T0(1) = 5.9 ms, T0(64) = 173 ms; C/Ca rise to 1.83/0.67 ms",
		Header: []string{"size", "pkts", "SAW MoveTo", "SW MoveTo", "B MoveTo", "B model", "SAW/B"},
	}
	m := params.VKernel()
	sizes := workload.PageReadSizes()
	res.Rows = make([][]string, len(sizes))
	err := forEachPoint(opt.Workers, len(sizes), func(i int) error {
		tr := sizes[i]
		n := tr.Packets()
		row := []string{tr.Name, fmt.Sprint(n)}
		var byProto []time.Duration
		for _, proto := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
			c, err := vkernel.NewCluster(vkernel.Options{Cost: m, Seed: opt.Seed})
			if err != nil {
				return err
			}
			src := c.A.CreateProcess(tr.Bytes, false)
			dst := c.B.CreateProcess(tr.Bytes, true)
			mv, err := c.MoveTo(src, 0, dst, 0, tr.Bytes, vkernel.MoveOptions{
				Protocol: proto, Strategy: core.GoBackN,
			})
			if err != nil {
				return err
			}
			byProto = append(byProto, mv.Elapsed)
			row = append(row, ms(mv.Elapsed))
		}
		row = append(row, ms(analytic.TimeBlast(m, n)), ratio(byProto[0], byProto[2]))
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"the paper's Table 3 has no sliding-window column (\"measurements not available at the time of writing\"); ours confirms the standalone ordering held at kernel level",
		"kernel overhead makes blast even more advantageous: SAW/B ≈ 2.2 here vs ≈ 1.8 standalone (§2.2)")
	return res, nil
}
