package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse a "12.34" ms cell back to a float.
func cellMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad ms cell %q: %v", s, err)
	}
	return v
}

func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "figure3", "figure4",
		"figure5", "figure6", "util", "ablation-dma", "ablation-burst",
		"ablation-adversary", "multiblast", "udp-loopback", "ext-load",
		"ext-load-clients", "ext-pagesize", "ext-chunk", "ext-adaptive",
		"contention", "fanout"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, err := Find(id); err != nil {
			t.Errorf("missing %s: %v", id, err)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestTable1ReproducesHeadline(t *testing.T) {
	res := runQuick(t, "table1")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Last row is 64 KB: SAW ≈ 250 ms, B ≈ 141 ms, ratio ≈ 1.8.
	last := res.Rows[len(res.Rows)-1]
	saw := cellMS(t, last[2])
	b := cellMS(t, last[6])
	if saw < 249 || saw > 252 {
		t.Errorf("SAW(64KB) = %v ms", saw)
	}
	if b < 140 || b > 142 {
		t.Errorf("B(64KB) = %v ms", b)
	}
	r := cellMS(t, last[8])
	if r < 1.6 || r > 2.1 {
		t.Errorf("SAW/B = %v", r)
	}
	// Sim and model columns agree within a whisker for every row.
	for _, row := range res.Rows {
		for _, pair := range [][2]int{{2, 3}, {4, 5}, {6, 7}} {
			sim, model := cellMS(t, row[pair[0]]), cellMS(t, row[pair[1]])
			if diff := sim - model; diff < -0.5 || diff > 1.5 {
				t.Errorf("row %v: sim %v vs model %v", row[0], sim, model)
			}
		}
	}
}

func TestTable2Components(t *testing.T) {
	res := runQuick(t, "table2")
	// Six components + total + observed.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	total := cellMS(t, res.Rows[6][2])
	if total < 3.90 || total > 3.92 {
		t.Errorf("total = %v ms", total)
	}
	observed := cellMS(t, res.Rows[7][2])
	if observed < total {
		t.Errorf("observed %v < components %v", observed, total)
	}
}

func TestTable3KernelAnchors(t *testing.T) {
	res := runQuick(t, "table3")
	first := res.Rows[0] // 1 KB row: SAW MoveTo = T0(1) ≈ 5.9 ms
	if v := cellMS(t, first[2]); v < 5.8 || v > 6.0 {
		t.Errorf("T0(1) = %v ms", v)
	}
	last := res.Rows[len(res.Rows)-1] // 64 KB row: B MoveTo ≈ 173 ms
	if v := cellMS(t, last[4]); v < 172 || v > 175 {
		t.Errorf("T0(64) = %v ms", v)
	}
}

func TestFigure3RendersFourTimelines(t *testing.T) {
	res := runQuick(t, "figure3")
	if len(res.Preformatted) != 4 {
		t.Fatalf("timelines = %d", len(res.Preformatted))
	}
	for _, block := range res.Preformatted {
		if !strings.Contains(block, "src cpu") || !strings.Contains(block, "dst cpu") {
			t.Errorf("timeline missing lanes:\n%s", block)
		}
	}
}

func TestFigure4Ordering(t *testing.T) {
	res := runQuick(t, "figure4")
	for _, row := range res.Rows {
		saw, sw, b, dbl := cellMS(t, row[1]), cellMS(t, row[2]), cellMS(t, row[3]), cellMS(t, row[4])
		if row[0] == "1" {
			// A 1-packet transfer is the same serial exchange under every
			// protocol: all four curves start from one point (Figure 4).
			if !(dbl == b && b == sw && sw == saw) {
				t.Errorf("N=1 should coincide: %v", row)
			}
			continue
		}
		if !(dbl < b && b < sw && sw < saw) {
			t.Errorf("N=%s: ordering violated: dbl=%v b=%v sw=%v saw=%v", row[0], dbl, b, sw, saw)
		}
	}
}

func TestFigure5FlatThenKnee(t *testing.T) {
	res := runQuick(t, "figure5")
	// Column 4 is blast Tr=T0(D) analytic. Flat through 1e-4 (rows 0-2),
	// then rising.
	var blast []float64
	for _, row := range res.Rows {
		blast = append(blast, cellMS(t, row[4]))
	}
	if blast[2] > blast[0]*1.02 {
		t.Errorf("blast not flat in the paper's operating region: %v", blast)
	}
	if blast[len(blast)-1] < blast[0]*2 {
		t.Errorf("knee missing: %v", blast)
	}
	// Blast below SAW everywhere in the realistic region (first 4 rows).
	for i := 0; i < 4; i++ {
		saw := cellMS(t, res.Rows[i][1])
		if blast[i] >= saw {
			t.Errorf("row %d: blast %v ≥ SAW %v", i, blast[i], saw)
		}
	}
}

func TestFigure6StrategyOrdering(t *testing.T) {
	res := runQuick(t, "figure6")
	// At pn = 1e-2 (row 3) the ordering must be clean even with quick
	// trial counts: R1 > R2 > R3, R4 ≤ R3 within noise.
	row := res.Rows[3]
	r1 := cellMS(t, row[1])
	r2 := cellMS(t, row[4])
	r3 := cellMS(t, row[6])
	r4 := cellMS(t, row[7])
	if !(r1 > r2 && r2 > r3) {
		t.Errorf("σ ordering violated: R1=%v R2=%v R3=%v", r1, r2, r3)
	}
	if r4 > r3*1.25 {
		t.Errorf("selective σ=%v should not exceed go-back-n σ=%v", r4, r3)
	}
}

func TestUtilReproduces38Percent(t *testing.T) {
	res := runQuick(t, "util")
	for _, row := range res.Rows {
		if row[0] == "64" {
			// The paper quotes "only 38 percent"; exact wire times give
			// 37.3 % — same claim, different rounding.
			u, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
			if err != nil || u < 36.5 || u > 38.5 {
				t.Errorf("u(64) = %s, want ≈ 37-38%%", row[1])
			}
			if row[5] != "none" {
				t.Errorf("third buffer gained %s, want none", row[5])
			}
			return
		}
	}
	t.Fatal("no N=64 row")
}

func TestAblationDMA(t *testing.T) {
	res := runQuick(t, "ablation-dma")
	var ratios = map[string]float64{}
	for _, row := range res.Rows {
		ratios[row[0]] = cellMS(t, row[6])
	}
	if ratios["excelan-dma"] <= ratios["standalone-3com"] {
		t.Errorf("slow DMA copies should widen the SAW/B gap: %v", ratios)
	}
	if ratios["modern-1g"] > 1.3 {
		t.Errorf("modern hardware should collapse the gap: %v", ratios["modern-1g"])
	}
}

func TestAblationBurst(t *testing.T) {
	res := runQuick(t, "ablation-burst")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if cellMS(t, row[1]) <= 0 {
			t.Errorf("mean missing: %v", row)
		}
		if row[4] != "0" {
			t.Errorf("failures: %v", row)
		}
	}
}

func TestAblationAdversary(t *testing.T) {
	res := runQuick(t, "ablation-adversary")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The clean row is the deterministic error-free blast: all four
	// strategies coincide, and no run fails anywhere.
	clean := res.Rows[0]
	for col := 2; col <= 4; col++ {
		if clean[col] != clean[1] {
			t.Errorf("error-free strategies should coincide: %v", clean)
		}
	}
	for _, row := range res.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("failures in %v", row)
		}
	}
	// Hostility costs time: the harshest go-back-n mean exceeds the clean
	// one, and full-no-nak (timeout recovery) degrades at least as badly as
	// go-back-n (NAK recovery) on the harshest row.
	harsh := res.Rows[len(res.Rows)-1]
	if cellMS(t, harsh[3]) <= cellMS(t, clean[3]) {
		t.Errorf("go-back-n should slow down under hostility: %v vs %v", harsh[3], clean[3])
	}
	if cellMS(t, harsh[1]) < cellMS(t, harsh[3]) {
		t.Errorf("full-no-nak %v should not beat go-back-n %v under hostility", harsh[1], harsh[3])
	}
}

func TestMultiblastWindows(t *testing.T) {
	res := runQuick(t, "multiblast")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Error-free time grows (slightly) as windows shrink; retransmitted
	// packets per run shrink as windows shrink.
	firstClean := cellMS(t, res.Rows[0][1])
	lastClean := cellMS(t, res.Rows[len(res.Rows)-1][1])
	if firstClean < lastClean {
		t.Errorf("smaller windows should cost more error-free time: %v vs %v", firstClean, lastClean)
	}
}

func TestLoadExtension(t *testing.T) {
	res := runQuick(t, "ext-load")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Zero load reproduces the uncontended Table 1 numbers exactly.
	if got := cellMS(t, res.Rows[0][3]); got < 140 || got > 142 {
		t.Errorf("B at zero load = %v ms", got)
	}
	if res.Rows[0][5] != "0" {
		t.Errorf("zero-load collisions = %s", res.Rows[0][5])
	}
	// Elapsed time is monotone in offered load for both protocols.
	for _, col := range []int{1, 3} {
		prev := 0.0
		for _, row := range res.Rows {
			v := cellMS(t, row[col])
			if v < prev {
				t.Errorf("column %d not monotone at load %s", col, row[0])
			}
			prev = v
		}
	}
	// The paper's operating assumption: low load barely matters.
	base := cellMS(t, res.Rows[0][3])
	low := cellMS(t, res.Rows[1][3])
	if low > 1.15*base {
		t.Errorf("10%% load should cost <15%%: %v vs %v", low, base)
	}
}

func TestAdaptiveExtension(t *testing.T) {
	res := runQuick(t, "ext-adaptive")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// At the highest loss rate the learned timeout must beat the
	// mis-tuned fixed one on both mean and σ, for both protocols.
	row := res.Rows[len(res.Rows)-1]
	sawFixed, sawAdapt := cellMS(t, row[1]), cellMS(t, row[3])
	mbFixed, mbAdapt := cellMS(t, row[5]), cellMS(t, row[7])
	if sawAdapt >= sawFixed {
		t.Errorf("SAW adaptive mean %v should beat fixed %v", sawAdapt, sawFixed)
	}
	if mbAdapt >= mbFixed {
		t.Errorf("multiblast adaptive mean %v should beat fixed %v", mbAdapt, mbFixed)
	}
	sawFixedSigma, sawAdaptSigma := cellMS(t, row[2]), cellMS(t, row[4])
	if sawAdaptSigma >= sawFixedSigma {
		t.Errorf("SAW adaptive σ %v should beat fixed %v", sawAdaptSigma, sawFixedSigma)
	}
}

func TestPageSizeExtension(t *testing.T) {
	res := runQuick(t, "ext-pagesize")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Totals strictly decrease with page size — both economies at work.
	prev := 1e18
	for _, row := range res.Rows {
		v := cellMS(t, row[5])
		if v >= prev {
			t.Errorf("page %s total %v not cheaper than smaller page", row[0], v)
		}
		prev = v
	}
	// The 1 KB / 64 KB end-to-end ratio is dramatic.
	r := cellMS(t, res.Rows[0][6])
	if r < 3 {
		t.Errorf("1KB vs 64KB page ratio = %v, expected > 3x", r)
	}
}

func TestChunkExtension(t *testing.T) {
	res := runQuick(t, "ext-chunk")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := 1e18
	for _, row := range res.Rows {
		v := cellMS(t, row[2])
		if v >= prev {
			t.Errorf("chunk %s elapsed %v not cheaper than smaller chunk", row[0], v)
		}
		prev = v
	}
}

func TestUDPLoopbackRunsOrSkips(t *testing.T) {
	res := runQuick(t, "udp-loopback")
	if res.Skipped {
		t.Skipf("udp unavailable: %v", res.Notes)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if cellMS(t, row[1]) <= 0 {
			t.Errorf("no measurement for %s", row[0])
		}
	}
}

func TestRenderOutput(t *testing.T) {
	res := runQuick(t, "table1")
	text := Render(res)
	for _, want := range []string{"table1", "size", "64KB", "paper:"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	// Skipped marker renders.
	s := Render(&Result{ID: "x", Title: "t", Skipped: true})
	if !strings.Contains(s, "SKIPPED") {
		t.Error("skip marker missing")
	}
}

// Every experiment must run to completion in quick mode — the smoke test
// cmd/lanbench relies on.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		res, err := e.Run(Options{Seed: 2, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if res.ID != e.ID {
			t.Errorf("%s: result id %s", e.ID, res.ID)
		}
		if !res.Skipped && len(res.Rows) == 0 && len(res.Preformatted) == 0 {
			t.Errorf("%s: empty result", e.ID)
		}
	}
}
