package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "ext-load",
		Title: "Extension: protocol elapsed time under background network load (CSMA/CD)",
		Paper: "§1: \"our conclusions are therefore valid only under low load conditions. Fortunately, such conditions are typical\" — the paper never measures contention; this extension does, with a CSMA/CD medium and a third-party traffic generator",
		Run:   runLoad,
	})
}

func runLoad(opt Options) (*Result, error) {
	m := params.Standalone3Com()
	res := &Result{
		ID:     "ext-load",
		Title:  "64 KB transfer vs offered background load (CSMA/CD, 1024-byte background frames)",
		Paper:  "not in the paper: quantifies the low-load caveat",
		Header: []string{"offered load", "SAW (ms)", "SAW slowdown", "B (ms)", "B slowdown", "collisions (B run)"},
	}
	loads := []float64{0, 0.1, 0.3, 0.5, 0.7}
	var sawBase, bBase time.Duration
	for _, load := range loads {
		runOne := func(proto core.Protocol) (time.Duration, int64, error) {
			cfg := core.Config{
				TransferID:     1,
				Bytes:          64 * 1024,
				Protocol:       proto,
				Strategy:       core.GoBackN,
				RetransTimeout: 2 * time.Second,
			}
			r, err := simrun.Transfer(cfg, simrun.Options{
				Cost:           m,
				Seed:           opt.Seed,
				Medium:         sim.MediumCSMACD,
				BackgroundLoad: load,
			})
			if err != nil {
				return 0, 0, err
			}
			if r.Failed() {
				return 0, 0, fmt.Errorf("load %.1f %v: %v/%v", load, proto, r.SendErr, r.RecvErr)
			}
			return r.Send.Elapsed, r.Collisions, nil
		}
		saw, _, err := runOne(core.StopAndWait)
		if err != nil {
			return nil, err
		}
		b, coll, err := runOne(core.Blast)
		if err != nil {
			return nil, err
		}
		if load == 0 {
			sawBase, bBase = saw, b
		}
		res.Rows = append(res.Rows, []string{
			pct(load),
			ms(saw), ratio(saw, sawBase),
			ms(b), ratio(b, bBase),
			fmt.Sprint(coll),
		})
	}
	res.Notes = append(res.Notes,
		"stop-and-wait acquires the medium 2N times per transfer (N data + N acks) versus N+1 for blast, so contention hits it in absolute terms hardest; both remain within tens of percent at the low loads the paper assumes",
		"collisions occur only among stations that deferred behind the same busy period (the 1-persistent restart), so zero-load runs collide exactly never and reproduce the uncontended numbers")
	return res, nil
}
