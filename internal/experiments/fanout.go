package experiments

import (
	"fmt"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "fanout",
		Title: "Extension: one-to-many replication — stripe-relay tree vs N independent pulls vs native broadcast (DES)",
		Paper: "§6 observes that a blast monopolises the shared ether; the paper's one-to-many answer is the medium's own broadcast. This extension measures what a relay tree buys — and costs — on both the 1985 shared medium and a modern switched-fabric model",
		Run:   runFanout,
	})
}

// runFanout compares three one-to-many shapes delivering the same object to
// 8 receivers, on the paper's 10 Mb/s shared ether and the modern gigabit
// model: 8 independent pulls (the source transmits N×), the depth-2
// stripe-relay tree (the source transmits ~1×, relays carry the rest), and
// the medium's native broadcast (one transmission reaches everyone — the
// shared-medium floor, with no per-receiver reliability).
func runFanout(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fanout",
		Title:  "One-to-many distribution: 1 source → 8 receivers, by topology and hardware model",
		Paper:  "extension of §6's broadcast observation: on a shared medium no relay tree can beat native broadcast — the tree's win is a parallel-socket (switched fabric) phenomenon, measured for real by lanbench -udp (udp_fanout_8)",
		Header: []string{"model", "topology", "source data pkts", "source tx bytes", "delivered", "agg MB/s", "makespan (virtual)"},
	}
	bytes := 256 << 10
	if opt.Quick {
		bytes = 64 << 10
	}
	models := []struct {
		name string
		cost params.CostModel
	}{
		{"3com-10mbps", params.Standalone3Com()},
		{"gigabit", params.ModernGigabit()},
	}
	type cell struct{ rows [][]string }
	cells := make([]cell, len(models))
	err := forEachPoint(opt.Workers, len(models), func(mi int) error {
		m := models[mi]
		base := simrun.FanoutScenario{
			Name:  "fanout-" + m.name,
			Cost:  m.cost,
			N:     8,
			Bytes: bytes,
			Chunk: 1000,
			Seed:  opt.Seed,
		}
		row := func(topology string, r simrun.FanoutResult) []string {
			return []string{
				m.name, topology,
				fmt.Sprintf("%d", r.SourceDataSent),
				fmt.Sprintf("%d", r.SourceTxBytes),
				fmt.Sprintf("%d/8", r.Completed),
				fmt.Sprintf("%.2f", r.AggMBps()),
				fmt.Sprintf("%v", r.Makespan.Round(time.Microsecond)),
			}
		}
		flat := base
		flat.Relays = 0
		fr, err := flat.Run()
		if err != nil {
			return err
		}
		tree := base
		tree.Relays = 4
		tr, err := tree.Run()
		if err != nil {
			return err
		}
		bc, err := base.RunBroadcast()
		if err != nil {
			return err
		}
		cells[mi].rows = [][]string{
			row("8 independent pulls", fr),
			row("stripe-relay tree (4 relays)", tr),
			{m.name, "native broadcast (floor)",
				fmt.Sprintf("%d", bc.Packets), "-", "8/8",
				fmt.Sprintf("%.2f", bc.AggMBps()),
				fmt.Sprintf("%v", bc.Elapsed.Round(time.Microsecond))},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		res.Rows = append(res.Rows, c.rows...)
	}
	res.Notes = append(res.Notes,
		"the tree's headline is the source column: ~1× the object in data packets regardless of receiver count, vs N× for independent pulls — every other hop is carried by a relay",
		"on a shared medium the tree moves more total wire bytes than the baseline (every byte crosses the ether twice), so native broadcast — one occupancy for all receivers, but no per-receiver reliability — is the physical floor there, exactly the paper's §6 reading",
		"on parallel-socket fabrics the economics invert: the bottleneck is the most-loaded socket (source 1 stream + relays 2 each, vs 8 serialised at the source), which is what lanbench -udp measures for real as udp_fanout_8 vs udp_fanout_8_independent",
		"deterministic bit for bit at any worker count; pinned by TestFanoutDeterministic and the sim==UDP fanout conformance suite",
	)
	return res, nil
}
