// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment pairs the paper's reported values (or
// qualitative claims, for the log-scale figures) with values measured on
// this repository's simulator, Monte Carlo, analytic models and — for the
// loopback experiment — real UDP sockets.
//
// cmd/lanbench runs experiments from the command line; the root package's
// benchmarks time them; EXPERIMENTS.md archives one full run.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/simrun"
	"blastlan/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Seed makes stochastic experiments reproducible.
	Seed int64
	// Quick reduces trial counts by roughly an order of magnitude so the
	// full suite runs in seconds (tests and smoke runs).
	Quick bool
	// Workers bounds the DES sampling and per-point parallelism: 0 means
	// GOMAXPROCS, 1 forces the sequential path. Results are bit-identical
	// at every setting — trials are seeded per index and merged in index
	// order, and each figure point writes only its own row.
	Workers int
}

// Result is a rendered experiment outcome.
type Result struct {
	ID     string
	Title  string
	Paper  string // what the paper reports, for side-by-side comparison
	Header []string
	Rows   [][]string
	// Preformatted blocks (timelines) printed after the table.
	Preformatted []string
	Notes        []string
	// Skipped marks experiments whose substrate is unavailable (e.g. no
	// UDP sockets); Notes carry the reason.
	Skipped bool
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises the expectation the measured values are judged
	// against.
	Paper string
	Run   func(Options) (*Result, error)
}

// registry holds all experiments in presentation order.
var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns every experiment in presentation order.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
}

// Render formats a result as aligned text.
func Render(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	if r.Skipped {
		b.WriteString("SKIPPED\n")
	}
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
			b.WriteString("\n")
		}
		line(r.Header)
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, p := range r.Preformatted {
		b.WriteString("\n")
		b.WriteString(p)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderCSV formats the result's table as CSV (header + rows), suitable
// for external plotting of the figure series. Preformatted blocks and
// notes are omitted.
func RenderCSV(r *Result) string {
	var b strings.Builder
	esc := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	if len(r.Header) > 0 {
		esc(r.Header)
	}
	for _, row := range r.Rows {
		esc(row)
	}
	return b.String()
}

// ms renders a duration in milliseconds with two decimals — the paper's
// unit everywhere.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// pct renders a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

// ratio renders a/b with two decimals.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// desSample runs n independent DES transfers through the parallel sampler,
// varying the seed per trial, and accumulates the sender elapsed times.
// Failed trials are counted, not accumulated. Output is identical at any
// worker count.
func desSample(cfg core.Config, opt simrun.Options, n, workers int) (acc stats.Durations, failures int, err error) {
	st, err := simrun.SampleWorkers(cfg, opt, n, workers)
	return st.Elapsed, st.Failures, err
}

// forEachPoint evaluates n independent figure/table points, fanning them
// across workers (0 = GOMAXPROCS). Each point must write only its own
// output slot, so the rendered artifact is identical regardless of
// parallelism. The first error by point index is returned.
func forEachPoint(workers, n int, point func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = point(i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					errs[i] = point(i)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// one runs a single deterministic (error-free) DES transfer and returns the
// sender's elapsed time.
func one(cfg core.Config, opt simrun.Options) (time.Duration, error) {
	res, err := simrun.Transfer(cfg, opt)
	if err != nil {
		return 0, err
	}
	if res.Failed() {
		return 0, fmt.Errorf("experiments: transfer failed: %v / %v", res.SendErr, res.RecvErr)
	}
	return res.Send.Elapsed, nil
}
