package experiments

import (
	"fmt"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
)

func init() {
	register(&Experiment{
		ID:    "ext-adaptive",
		Title: "Extension: fixed vs adaptive (Jacobson/Karn) retransmission timeout",
		Paper: "Figures 5–6 show Tr drives both the knee of the expected time and R1's σ, and the paper hand-picks Tr as multiples of the known T0; an estimator that learns the response time online (Jacobson 1988, three years later) removes the tuning knob — wherever there are repeated exchanges to learn from",
		Run:   runAdaptive,
	})
}

// adaptiveVariant is one (protocol, timeout policy) column pair.
type adaptiveVariant struct {
	label    string
	cfg      core.Config
	adaptive bool
}

func runAdaptive(opt Options) (*Result, error) {
	m := params.VKernel()
	t01 := analytic.TimeStopAndWait(m, 1) // 5.9 ms
	t0d := analytic.TimeBlast(m, 64)      // 173 ms
	trials := 400
	if opt.Quick {
		trials = 50
	}
	res := &Result{
		ID:    "ext-adaptive",
		Title: fmt.Sprintf("64 KB transfers, fixed vs learned Tr (DES, %d trials)", trials),
		Paper: "the estimator converges to the response time, recovering hand-tuned behaviour without knowing T0",
		Header: []string{"pn",
			"SAW Tr=10·T0(1)", "σ", "SAW adaptive", "σ",
			"MB8 Tr=10·T0(D)", "σ", "MB8 adaptive", "σ"},
	}
	base := []adaptiveVariant{
		{"saw-fixed", core.Config{Protocol: core.StopAndWait, RetransTimeout: 10 * t01}, false},
		{"saw-adaptive", core.Config{Protocol: core.StopAndWait, RetransTimeout: 10 * t01}, true},
		// Multiblast with 8-packet windows: the first window's response
		// seeds the estimator for the remaining seven.
		{"mb-fixed", core.Config{Protocol: core.Blast, Strategy: core.FullNoNak,
			Window: 8, RetransTimeout: 10 * t0d}, false},
		{"mb-adaptive", core.Config{Protocol: core.Blast, Strategy: core.FullNoNak,
			Window: 8, RetransTimeout: 10 * t0d}, true},
	}
	for _, pn := range []float64{1e-4, 1e-3, 1e-2} {
		row := []string{fmt.Sprintf("%.0e", pn)}
		for _, v := range base {
			cfg := v.cfg
			cfg.TransferID = 1
			cfg.Bytes = 64 * 1024
			cfg.AdaptiveTr = v.adaptive
			acc, failures, err := desSample(cfg, simrun.Options{Cost: m,
				Loss: params.LossModel{PNet: pn}, Seed: opt.Seed}, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			if failures > 0 {
				return nil, fmt.Errorf("ext-adaptive: %s: %d failures at pn=%g", v.label, failures, pn)
			}
			row = append(row, ms(acc.Mean()), ms(acc.StdDev()))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("seeds are deliberately mis-tuned 10× high (SAW %s, multiblast %s); the estimator converges to the ≈3 ms response latency after the first exchanges and cuts both mean and σ toward the hand-tuned values",
			ms(10*t01)+" ms", ms(10*t0d)+" ms"),
		"a single-window blast cannot adapt within one transfer — its only RTT sample arrives with the ack that completes it; persistent senders (the V kernel) would carry the estimator across transfers",
		"Karn's rule: no samples from retransmitted exchanges, so loss slows learning but never corrupts it")
	return res, nil
}
