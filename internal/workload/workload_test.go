package workload

import (
	"bytes"
	"testing"
)

func TestPageReadSizes(t *testing.T) {
	sizes := PageReadSizes()
	if len(sizes) != 4 {
		t.Fatalf("got %d sizes", len(sizes))
	}
	if sizes[len(sizes)-1].Bytes != 64*1024 {
		t.Error("ladder must end at the paper's 64 KB transfer")
	}
	if sizes[len(sizes)-1].Packets() != 64 {
		t.Errorf("64KB = %d packets", sizes[len(sizes)-1].Packets())
	}
}

func TestFigureSizesDoubling(t *testing.T) {
	sizes := FigureSizes()
	if sizes[0].Bytes != 1024 || sizes[len(sizes)-1].Bytes != 64*1024 {
		t.Errorf("range: %v..%v", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i].Bytes != 2*sizes[i-1].Bytes {
			t.Error("sizes must double")
		}
	}
	if sizes[2].Name != "4KB" {
		t.Errorf("name = %q", sizes[2].Name)
	}
}

func TestPayloadDeterministic(t *testing.T) {
	tr := Transfer{"x", 1000}
	a, b := tr.Payload(1), tr.Payload(1)
	if !bytes.Equal(a, b) {
		t.Error("same seed must give same payload")
	}
	c := tr.Payload(2)
	if bytes.Equal(a, c) {
		t.Error("different seeds must differ")
	}
	if len(a) != 1000 {
		t.Errorf("len = %d", len(a))
	}
}

func TestNamedWorkloads(t *testing.T) {
	if s := ScreenImage(); s.Bytes != 606*808/8 {
		t.Errorf("alto screen = %d bytes", s.Bytes)
	}
	if d := FileDump(); d.Bytes != 1<<20 || d.Packets() != 1024 {
		t.Errorf("dump: %+v", d)
	}
	if w := MultiblastWindows(); len(w) == 0 || w[len(w)-1] != 0 {
		t.Errorf("windows: %v", w)
	}
}

func TestLossLadder(t *testing.T) {
	pts := LossLadder(1e-6, 1e-1)
	if len(pts) != 6 {
		t.Fatalf("got %d points: %v", len(pts), pts)
	}
	if pts[0] != 1e-6 || pts[len(pts)-1] < 0.099 || pts[len(pts)-1] > 0.11 {
		t.Errorf("ladder: %v", pts)
	}
}
