// Package workload generates the transfer patterns the paper's evaluation
// and motivation use: page-sized file reads (the intro's case for large
// page sizes, [10,12,15]), remote file-system dumps (§1's "larger sizes"),
// and the screen-image downloads that gave blast protocols their name (§4:
// MIT's VAX-to-Alto screen downloader).
package workload

import (
	"math/rand"

	"blastlan/internal/params"
)

// Transfer is one unit of offered work.
type Transfer struct {
	Name  string
	Bytes int
}

// Payload deterministically fills a buffer of the transfer's size; seed
// varies content across repetitions.
func (t Transfer) Payload(seed int64) []byte {
	b := make([]byte, t.Bytes)
	rand.New(rand.NewSource(seed ^ int64(t.Bytes))).Read(b)
	return b
}

// Packets returns the data-packet count for the default chunk size.
func (t Transfer) Packets() int { return params.Packets(t.Bytes) }

// PageReadSizes is the ladder of transfer sizes the paper's tables sweep:
// one packet up to the 64-packet transfer of Tables 1–3.
func PageReadSizes() []Transfer {
	return []Transfer{
		{"1KB", 1 * 1024},
		{"4KB", 4 * 1024},
		{"16KB", 16 * 1024},
		{"64KB", 64 * 1024},
	}
}

// FigureSizes is the finer ladder used for Figure 4's curves.
func FigureSizes() []Transfer {
	var out []Transfer
	for n := 1; n <= 64; n *= 2 {
		out = append(out, Transfer{Name: sizeName(n), Bytes: n * 1024})
	}
	return out
}

func sizeName(nKB int) string {
	const digits = "0123456789"
	if nKB == 0 {
		return "0KB"
	}
	var buf [8]byte
	i := len(buf)
	for nKB > 0 {
		i--
		buf[i] = digits[nKB%10]
		nKB /= 10
	}
	return string(buf[i:]) + "KB"
}

// ScreenImage is the Alto screen download of §4's anecdote: a 606×808
// monochrome framebuffer, ≈ 61 KB.
func ScreenImage() Transfer {
	return Transfer{Name: "alto-screen", Bytes: 606 * 808 / 8}
}

// FileDump is §1's remote file-system dump: orders of magnitude larger
// than a packet, the motivating case for multiblast (§3.1.3).
func FileDump() Transfer {
	return Transfer{Name: "fs-dump-1MB", Bytes: 1 << 20}
}

// MultiblastWindows is the window ladder the multiblast experiment sweeps
// for the FileDump transfer (in packets; 0 = one giant blast).
func MultiblastWindows() []int { return []int{16, 64, 256, 0} }

// LossLadder returns the p_n decade points of Figure 5/6's x-axis.
func LossLadder(from, to float64) []float64 {
	var out []float64
	for p := from; p <= to*1.0000001; p *= 10 {
		out = append(out, p)
	}
	return out
}
