// Adversary generalises LossModel into a full hostile-network model.
//
// The paper evaluates its protocols only under packet loss (§3), but a real
// LAN also reorders, duplicates, corrupts and delays datagrams — the recovery
// machinery of internal/core (duplicate suppression, out-of-order blast
// reassembly, checksum rejection) exists precisely for those events. The
// Adversary describes them substrate-independently: the simulator, the V
// kernel and the real-UDP endpoint all consult the same seeded decision
// engine, so one scenario definition runs on all three substrates.
package params

import (
	"fmt"
	"math/rand"
	"time"

	"blastlan/internal/wire"
)

// Mangle is the adversary's verdict on one packet crossing the network.
// The zero value passes the packet through untouched. Substrates implement
// the mechanics (the simulator with virtual-time events, the UDP endpoint
// with held datagrams); the decision itself is substrate-independent.
type Mangle struct {
	// Drop loses the packet on the wire (the paper's network errors).
	Drop bool
	// IfaceDrop loses the packet in the receiving interface (the paper's
	// interface errors). Substrates without a modelled interface treat it
	// as Drop.
	IfaceDrop bool

	// Corrupt flips one bit of the encoded frame. The receive path runs the
	// real wire codec, so the packet survives only if the flip evades the
	// checksum and every structural check — with the strict datagram codec
	// a single-bit flip never does, and the packet counts as a corruption
	// drop instead. Corrupt is terminal like the drops: Judge clears
	// Duplicate, Hold and Delay on a corrupt verdict, so a mangled frame is
	// never also duplicated or reordered (the substrates would otherwise
	// disagree about what happens to a frame that no receiver accepts).
	Corrupt bool
	// CorruptBit selects the flipped bit: bit CorruptBit mod (8·frame size)
	// of the encoded frame. Meaningful only when Corrupt is set.
	CorruptBit int64

	// Duplicate delivers the packet twice.
	Duplicate bool

	// Hold withholds the packet until Hold later packets bound for the same
	// receiver have overtaken it (reordering by depth). Substrates flush a
	// held packet that nothing overtakes — the simulator after ReorderFlush
	// of virtual time, the UDP endpoint when the sending side turns to
	// listen — so a hold delays but never loses.
	Hold int

	// Delay adds extra latency before delivery (jitter). Held packets get
	// no Delay — a hold already delays, and stacking jitter on top would
	// time differently on every substrate.
	//
	// Substrate note: the simulator delays only the judged packet (a later
	// event on the virtual clock), so successors can overtake it; the UDP
	// endpoint sleeps inline, so jitter there is head-of-line latency and
	// never reorders. Reordering experiments must use Hold, which behaves
	// identically everywhere; Delay is a timing knob and timing is already
	// excluded from cross-substrate conformance.
	Delay time.Duration
}

// Adversary describes a hostile network: the LossModel's drop processes plus
// seeded reordering, duplication, bit corruption and delay jitter, and an
// optional scripted per-packet hook for precisely targeted scenarios.
//
// The zero Adversary is inactive (a perfectly polite network).
type Adversary struct {
	// Loss is drawn per packet exactly like the plain LossModel: PNet (or
	// the Gilbert–Elliott chain) decides wire drops, PIface interface drops.
	Loss LossModel

	// ReorderProb is the per-packet probability of being held back so that
	// ReorderDepth subsequent packets to the same receiver overtake it.
	// ReorderDepth defaults to 1 when ReorderProb is set.
	ReorderProb  float64
	ReorderDepth int
	// ReorderFlush bounds how long a held packet waits for traffic to
	// overtake it before being delivered anyway (liveness: the victim may
	// stop transmitting precisely because the held packet is missing).
	// Zero means DefaultReorderFlush.
	ReorderFlush time.Duration

	// DuplicateProb is the per-packet probability of a duplicate delivery.
	DuplicateProb float64

	// CorruptProb is the per-packet probability of a single-bit corruption
	// of the encoded frame (see Mangle.Corrupt).
	CorruptProb float64

	// JitterMax adds a uniform extra delay in [0, JitterMax) per packet.
	JitterMax time.Duration

	// Script, when non-nil, is a scripted per-packet mangling hook consulted
	// before the probabilistic knobs. It must be a pure function of the
	// packet's fields (type, sequence, attempt, flags): scripts keyed on
	// packet identity produce identical event sequences on every substrate,
	// which is what the cross-substrate conformance suite asserts. A script
	// verdict that drops the packet suppresses the probabilistic draws.
	Script func(pkt *wire.Packet) Mangle
}

// DefaultReorderFlush is the fallback bound on how long a held packet waits
// to be overtaken: long enough that back-to-back blast traffic reaches any
// plausible depth first, short relative to retransmission timeouts.
const DefaultReorderFlush = 20 * time.Millisecond

// Active reports whether the adversary does anything at all.
func (a Adversary) Active() bool {
	return a.Loss != (LossModel{}) || a.ReorderProb > 0 || a.DuplicateProb > 0 ||
		a.CorruptProb > 0 || a.JitterMax > 0 || a.Script != nil
}

// Validate reports whether the adversary is usable.
func (a Adversary) Validate() error {
	if err := a.Loss.Validate(); err != nil {
		return err
	}
	for _, p := range []float64{a.ReorderProb, a.DuplicateProb, a.CorruptProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("params: adversary probabilities must be in [0,1]")
		}
	}
	if a.ReorderDepth < 0 {
		return fmt.Errorf("params: adversary reorder depth must be non-negative")
	}
	if a.JitterMax < 0 || a.ReorderFlush < 0 {
		return fmt.Errorf("params: adversary delays must be non-negative")
	}
	return nil
}

// depth returns the effective reorder depth.
func (a Adversary) depth() int {
	if a.ReorderDepth < 1 {
		return 1
	}
	return a.ReorderDepth
}

// FlushAfter returns the effective reorder-flush bound.
func (a Adversary) FlushAfter() time.Duration {
	if a.ReorderFlush > 0 {
		return a.ReorderFlush
	}
	return DefaultReorderFlush
}

// AdversaryState is one substrate's instantiation of an Adversary: the seeded
// random stream plus the Gilbert–Elliott chain state. Each simulated network
// or endpoint owns its own state; two substrates given the same seed draw
// identical decision sequences for identical packet streams.
type AdversaryState struct {
	adv   Adversary
	rng   *rand.Rand
	geBad bool
}

// NewState builds the seeded decision engine. The seed is mixed (splitmix
// constants) so an adversary sharing a caller's base seed does not mirror the
// caller's other random streams draw for draw.
func (a Adversary) NewState(seed int64) *AdversaryState {
	mixed := seed*-7046029254386353131 + -1442695040888963407
	return &AdversaryState{adv: a, rng: rand.New(rand.NewSource(mixed))}
}

// Mangler returns the state's Judge as a standalone hook, for substrates that
// take mangle functions (udplan's MangleTx/MangleRx). Install the same hook
// on both directions of one endpoint to mirror the simulator's network-level
// adversary, which sees every packet once.
func (a Adversary) Mangler(seed int64) func(*wire.Packet) Mangle {
	return a.NewState(seed).Judge
}

// Judge draws the adversary's verdict for one packet. The script (if any) is
// consulted first; the probabilistic knobs then draw in a fixed order — wire
// loss, interface loss, corruption, duplication, reordering, jitter — with a
// drop or corruption short-circuiting the remaining draws. Only configured
// knobs consume randomness, so the decision stream is a deterministic
// function of the seed and the packet sequence.
func (s *AdversaryState) Judge(pkt *wire.Packet) Mangle {
	var m Mangle
	if s.adv.Script != nil {
		m = s.adv.Script(pkt)
		if m.Drop || m.IfaceDrop {
			return m
		}
		if m.Corrupt {
			// Terminal (see Mangle.Corrupt): normalise so every substrate
			// treats a mangled frame identically.
			m.Duplicate, m.Hold, m.Delay = false, 0, 0
			return m
		}
	}
	if s.adv.Loss.DrawWireLoss(s.rng, &s.geBad) {
		m.Drop = true
		return m
	}
	if p := s.adv.Loss.PIface; p > 0 && s.rng.Float64() < p {
		m.IfaceDrop = true
		return m
	}
	if p := s.adv.CorruptProb; p > 0 && s.rng.Float64() < p {
		m.Corrupt = true
		m.CorruptBit = s.rng.Int63()
		m.Duplicate, m.Hold, m.Delay = false, 0, 0
		return m
	}
	if p := s.adv.DuplicateProb; p > 0 && s.rng.Float64() < p {
		m.Duplicate = true
	}
	if p := s.adv.ReorderProb; p > 0 && s.rng.Float64() < p && m.Hold == 0 {
		m.Hold = s.adv.depth()
	}
	if j := s.adv.JitterMax; j > 0 {
		if d := time.Duration(s.rng.Int63n(int64(j))); m.Hold == 0 {
			m.Delay += d
		}
	}
	return m
}

// FlipBit flips bit (bit mod 8·len(frame)) of the encoded frame in place and
// returns the byte and mask it touched. Substrates share it so a scripted
// CorruptBit lands on the same wire bit everywhere.
func FlipBit(frame []byte, bit int64) (idx int, mask byte) {
	n := int64(len(frame)) * 8
	if n == 0 {
		return 0, 0
	}
	b := bit % n
	if b < 0 {
		b += n
	}
	idx, mask = int(b/8), byte(1)<<uint(b%8)
	frame[idx] ^= mask
	return idx, mask
}
