// Package params defines the cost and loss models that parameterise every
// protocol experiment in this repository.
//
// The paper (Zwaenepoel, SIGCOMM 1985, §2.1) reduces the SUN-workstation /
// 3-Com-interface / 10 Mb/s-Ethernet hardware to a handful of per-packet
// constants:
//
//	C  = 1.35 ms  copy a 1024-byte data packet into or out of the interface
//	Ca = 0.17 ms  copy a   64-byte ack  packet into or out of the interface
//	T  = 0.82 ms  wire time of a 1024-byte data packet at 10 Mb/s
//	Ta = 0.05 ms  wire time of a   64-byte ack  packet at 10 Mb/s
//	τ  < 10 µs    network propagation/latency
//
// CostModel generalises those constants: copy time is linear in packet size
// (base + per-byte), wire time is size·8/bandwidth, so the same model covers
// the standalone measurements (Table 1/2), the V-kernel overheads (Table 3),
// the Excelan-DMA discussion (§2.1.3), and modern what-if presets.
package params

import (
	"fmt"
	"math/rand"
	"time"
)

// Packet sizes used throughout the paper's experiments (§2.1.1).
const (
	// DataPacketSize is the payload-bearing packet size used in all of the
	// paper's measurements.
	DataPacketSize = 1024
	// AckPacketSize is the acknowledgement packet size.
	AckPacketSize = 64
	// MaxEthernetPacket is the maximum packet size on the 10 Mb/s Ethernet
	// quoted by the paper (§2.1.2 footnote).
	MaxEthernetPacket = 1536
)

// CostModel captures the per-packet costs of one host/interface/network
// combination. The zero value is invalid; use a preset or NewCostModel.
type CostModel struct {
	// Name identifies the preset in experiment output.
	Name string

	// CopyDataPkt and CopyAckPkt are the measured CPU costs of copying a
	// DataPacketSize-byte packet and an AckPacketSize-byte packet into or out
	// of the network interface (the paper's C and Ca). Copy time for other
	// sizes is interpolated linearly between (and extrapolated beyond) these
	// two anchor points, which keeps the paper's constants exact under
	// integer arithmetic. In kernel presets the costs include header
	// handling, demultiplexing, access-right checks and interrupt dispatch
	// (§2.2).
	CopyDataPkt time.Duration
	CopyAckPkt  time.Duration

	// BandwidthBitsPerSec is the raw network data rate (10 Mb/s Ethernet in
	// the paper).
	BandwidthBitsPerSec int64
	// WireOverheadBytes is counted on the wire per packet in addition to the
	// packet bytes themselves (preamble + FCS when Ethernet framing is
	// modelled; 0 reproduces the paper's "computed at the 10 megabit data
	// rate" arithmetic, which folds framing into the quoted sizes).
	WireOverheadBytes int

	// Propagation is the one-way network latency τ.
	Propagation time.Duration

	// TxBuffers is the number of transmit buffers in the interface: 1 for
	// the 3-Com single-buffered interface, 2 for the double-buffered design
	// of §2.1.3/Figure 3.d. (More than 2 buys nothing; the paper notes this
	// and tests assert it.)
	TxBuffers int
	// RxBuffers is the number of receive buffers; an arriving packet that
	// finds all of them full is dropped (an "interface error", §3).
	RxBuffers int
}

// NewCostModel builds a linear copy-cost model from the two measured points
// the paper gives: the copy time of a data packet and of an ack packet.
func NewCostModel(name string, dataCopy, ackCopy time.Duration, bandwidth int64, prop time.Duration) CostModel {
	return CostModel{
		Name:                name,
		CopyDataPkt:         dataCopy,
		CopyAckPkt:          ackCopy,
		BandwidthBitsPerSec: bandwidth,
		Propagation:         prop,
		TxBuffers:           1,
		RxBuffers:           2,
	}
}

// Standalone3Com is the paper's §2.1 standalone measurement configuration:
// SUN workstation, 3-Com Multibus interface, idle 10 Mb/s Ethernet.
// It reproduces C = 1.35 ms, Ca = 0.17 ms, T = 0.82 ms, Ta = 0.05 ms.
func Standalone3Com() CostModel {
	return NewCostModel("standalone-3com",
		1350*time.Microsecond, 170*time.Microsecond,
		10_000_000, 10*time.Microsecond)
}

// VKernel is the paper's §2.2 V-kernel configuration: the same hardware with
// kernel overhead (headers, access-right checking, demultiplexing, interrupt
// handling) folded into the copy costs, giving C = 1.83 ms and Ca = 0.67 ms.
func VKernel() CostModel {
	return NewCostModel("v-kernel",
		1830*time.Microsecond, 670*time.Microsecond,
		10_000_000, 10*time.Microsecond)
}

// ExcelanDMA models the §2.1.3 observation that the Excelan board's on-board
// 8088 copies "much slower" than the 68000 host copies into the 3-Com
// interface: same structure, copies ~2.5× slower, but performed by the
// interface processor (which our simulator still serialises with the
// transfer, exactly as the paper's formulas assume when C is reinterpreted
// as the DMA processor's copy time).
func ExcelanDMA() CostModel {
	m := NewCostModel("excelan-dma",
		3375*time.Microsecond, 425*time.Microsecond,
		10_000_000, 10*time.Microsecond)
	return m
}

// DoubleBuffered returns a copy of m with a double-buffered interface
// (Figure 3.d): the processor may copy the next packet into the second
// buffer while the first is being transmitted.
func DoubleBuffered(m CostModel) CostModel {
	m.Name = m.Name + "+dblbuf"
	m.TxBuffers = 2
	return m
}

// ModernGigabit is a what-if preset: 1 Gb/s network, ≈10 GB/s memory copies
// (≈0.1 µs per data packet plus ≈0.2 µs fixed descriptor handling), 0.2 µs
// cut-through-switch latency. Copies no longer dominate (C/T ≈ 0.04 versus
// the paper's 1.6), so the blast advantage shrinks toward the naïve
// wire-time arithmetic of §2.1 — an ablation showing the paper's effect is
// a property of the copy/wire cost ratio, exactly as it argues.
func ModernGigabit() CostModel {
	return CostModel{
		Name:                "modern-1g",
		CopyDataPkt:         300 * time.Nanosecond,
		CopyAckPkt:          210 * time.Nanosecond,
		BandwidthBitsPerSec: 1_000_000_000,
		Propagation:         200 * time.Nanosecond,
		TxBuffers:           1,
		RxBuffers:           2,
	}
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	switch {
	case m.BandwidthBitsPerSec <= 0:
		return fmt.Errorf("params: %s: bandwidth must be positive", m.Name)
	case m.CopyDataPkt < m.CopyAckPkt:
		return fmt.Errorf("params: %s: data-packet copy cannot be cheaper than ack copy", m.Name)
	case m.CopyAckPkt < 0:
		return fmt.Errorf("params: %s: copy costs must be non-negative", m.Name)
	case m.CopyTime(0) < 0:
		return fmt.Errorf("params: %s: copy cost extrapolates negative at size 0", m.Name)
	case m.TxBuffers < 1:
		return fmt.Errorf("params: %s: need at least one transmit buffer", m.Name)
	case m.RxBuffers < 1:
		return fmt.Errorf("params: %s: need at least one receive buffer", m.Name)
	case m.Propagation < 0:
		return fmt.Errorf("params: %s: propagation must be non-negative", m.Name)
	}
	return nil
}

// CopyTime is the CPU time to copy a packet of the given size into or out of
// the network interface: linear interpolation through the two measured
// anchor points (AckPacketSize, CopyAckPkt) and (DataPacketSize, CopyDataPkt).
func (m CostModel) CopyTime(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	span := int64(m.CopyDataPkt - m.CopyAckPkt)
	d := int64(m.CopyAckPkt) + span*int64(bytes-AckPacketSize)/int64(DataPacketSize-AckPacketSize)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// WireTime is the time the packet occupies the network.
func (m CostModel) WireTime(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bits := 8 * int64(bytes+m.WireOverheadBytes)
	return time.Duration(bits * int64(time.Second) / m.BandwidthBitsPerSec)
}

// C, Ca, T and Ta return the paper's four constants under this model.
func (m CostModel) C() time.Duration  { return m.CopyTime(DataPacketSize) }
func (m CostModel) Ca() time.Duration { return m.CopyTime(AckPacketSize) }
func (m CostModel) T() time.Duration  { return m.WireTime(DataPacketSize) }
func (m CostModel) Ta() time.Duration { return m.WireTime(AckPacketSize) }

// Packets returns the number of DataPacketSize packets needed to carry a
// transfer of the given size (the paper's N or D).
func Packets(transferBytes int) int {
	if transferBytes <= 0 {
		return 0
	}
	return (transferBytes + DataPacketSize - 1) / DataPacketSize
}

// LossModel describes how packets are lost.
//
// The paper's analysis (§3) assumes statistically independent losses with a
// constant per-packet probability. PNet models losses on the wire; PIface
// models drops in the receiving interface, which the paper observed to be an
// order of magnitude more frequent when one station blasts at another. Both
// apply to data and ack packets alike.
//
// Burst, if non-nil, switches the wire-loss process to a Gilbert–Elliott
// two-state chain (the paper's "burst errors occasionally occur" caveat);
// PNet is then ignored for the wire.
type LossModel struct {
	PNet   float64
	PIface float64
	Burst  *GilbertElliott
}

// GilbertElliott is a two-state Markov loss process: in the Good state
// packets are lost with probability PGood, in the Bad state with PBad; the
// chain moves Good→Bad with probability PGoodToBad per packet and Bad→Good
// with PBadToGood.
type GilbertElliott struct {
	PGood, PBad            float64
	PGoodToBad, PBadToGood float64
}

// MeanLoss is the stationary average loss probability of the chain,
// useful for constructing a burst model with the same average rate as a
// Bernoulli model.
func (g GilbertElliott) MeanLoss() float64 {
	den := g.PGoodToBad + g.PBadToGood
	if den == 0 {
		return g.PGood
	}
	piBad := g.PGoodToBad / den
	return (1-piBad)*g.PGood + piBad*g.PBad
}

// DrawWireLoss draws one wire-loss decision from the model: it advances the
// Gilbert–Elliott chain one packet (geBad is the caller-held chain state)
// and draws from the new state's loss probability, or draws Bernoulli(PNet)
// when no burst process is configured. The simulated network and the
// adversary both consume this single implementation, each with its own rng
// and chain state.
func (l LossModel) DrawWireLoss(rng *rand.Rand, geBad *bool) bool {
	if g := l.Burst; g != nil {
		if *geBad {
			if rng.Float64() < g.PBadToGood {
				*geBad = false
			}
		} else {
			if rng.Float64() < g.PGoodToBad {
				*geBad = true
			}
		}
		p := g.PGood
		if *geBad {
			p = g.PBad
		}
		return rng.Float64() < p
	}
	return l.PNet > 0 && rng.Float64() < l.PNet
}

// Validate reports whether the loss model is usable.
func (l LossModel) Validate() error {
	if l.PNet < 0 || l.PNet > 1 || l.PIface < 0 || l.PIface > 1 {
		return fmt.Errorf("params: loss probabilities must be in [0,1]")
	}
	if g := l.Burst; g != nil {
		for _, p := range []float64{g.PGood, g.PBad, g.PGoodToBad, g.PBadToGood} {
			if p < 0 || p > 1 {
				return fmt.Errorf("params: Gilbert-Elliott probabilities must be in [0,1]")
			}
		}
	}
	return nil
}

// NoLoss is the error-free configuration of §2.
func NoLoss() LossModel { return LossModel{} }

// TypicalEthernet is the paper's "normal circumstances" measurement:
// roughly 1 lost packet in 100 000.
func TypicalEthernet() LossModel { return LossModel{PNet: 1e-5} }

// FullSpeedInterfaces adds the order-of-magnitude-worse interface drops the
// paper measured when one station transmits at full speed to another
// (≈ 1 in 10 000).
func FullSpeedInterfaces() LossModel { return LossModel{PNet: 1e-5, PIface: 1e-4} }
