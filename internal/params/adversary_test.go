package params

import (
	"testing"
	"time"

	"blastlan/internal/wire"
)

func TestAdversaryActiveAndValidate(t *testing.T) {
	var zero Adversary
	if zero.Active() {
		t.Error("zero adversary must be inactive")
	}
	if err := zero.Validate(); err != nil {
		t.Error(err)
	}
	active := []Adversary{
		{Loss: LossModel{PNet: 0.1}},
		{ReorderProb: 0.1},
		{DuplicateProb: 0.1},
		{CorruptProb: 0.1},
		{JitterMax: time.Millisecond},
		{Script: func(*wire.Packet) Mangle { return Mangle{} }},
	}
	for i, a := range active {
		if !a.Active() {
			t.Errorf("case %d should be active", i)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
	bad := []Adversary{
		{ReorderProb: 1.5},
		{DuplicateProb: -0.1},
		{CorruptProb: 2},
		{ReorderDepth: -1},
		{JitterMax: -time.Second},
		{ReorderFlush: -time.Second},
		{Loss: LossModel{PNet: 3}},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad case %d should not validate", i)
		}
	}
}

// Same seed, same packet stream → identical verdict sequence; different
// seeds diverge. This is the determinism contract the Workers=1 vs Workers=8
// sampler regression rests on.
func TestAdversaryStateDeterministic(t *testing.T) {
	adv := Adversary{
		Loss:          LossModel{PNet: 0.05, PIface: 0.02},
		ReorderProb:   0.1,
		ReorderDepth:  3,
		DuplicateProb: 0.1,
		CorruptProb:   0.1,
		JitterMax:     time.Millisecond,
	}
	stream := func(seed int64) []Mangle {
		st := adv.NewState(seed)
		out := make([]Mangle, 0, 256)
		for i := 0; i < 256; i++ {
			pkt := &wire.Packet{Type: wire.TypeData, Seq: uint32(i), Total: 256}
			out = append(out, st.Judge(pkt))
		}
		return out
	}
	a, b := stream(7), stream(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := stream(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical verdict streams")
	}
}

// Every configured knob must actually fire over a long enough stream, and
// holds must carry the configured depth.
func TestAdversaryStateCoverage(t *testing.T) {
	adv := Adversary{
		Loss:          LossModel{PNet: 0.05, PIface: 0.05},
		ReorderProb:   0.1,
		ReorderDepth:  2,
		DuplicateProb: 0.1,
		CorruptProb:   0.1,
		JitterMax:     time.Millisecond,
	}
	st := adv.NewState(1)
	var drops, iface, corrupt, dups, holds, jitters int
	for i := 0; i < 4096; i++ {
		m := st.Judge(&wire.Packet{Type: wire.TypeData, Seq: uint32(i)})
		switch {
		case m.Drop:
			drops++
		case m.IfaceDrop:
			iface++
		default:
			if m.Corrupt {
				corrupt++
			}
			if m.Duplicate {
				dups++
			}
			if m.Hold != 0 {
				if m.Hold != 2 {
					t.Fatalf("hold depth %d, want 2", m.Hold)
				}
				holds++
			}
			if m.Delay > 0 {
				if m.Delay >= time.Millisecond {
					t.Fatalf("jitter %v out of range", m.Delay)
				}
				jitters++
			}
		}
	}
	for name, n := range map[string]int{"drops": drops, "iface": iface,
		"corrupt": corrupt, "dups": dups, "holds": holds, "jitters": jitters} {
		if n == 0 {
			t.Errorf("%s never fired over 4096 packets", name)
		}
	}
}

// A script verdict takes precedence and a scripted drop suppresses the
// probabilistic draws entirely (no randomness consumed).
func TestAdversaryScriptShortCircuits(t *testing.T) {
	adv := Adversary{
		CorruptProb: 1, // would corrupt every packet
		Script: func(p *wire.Packet) Mangle {
			if p.Seq == 3 {
				return Mangle{Drop: true}
			}
			return Mangle{}
		},
	}
	st := adv.NewState(1)
	if m := st.Judge(&wire.Packet{Type: wire.TypeData, Seq: 3}); !m.Drop || m.Corrupt {
		t.Errorf("scripted drop overridden: %+v", m)
	}
	if m := st.Judge(&wire.Packet{Type: wire.TypeData, Seq: 4}); !m.Corrupt {
		t.Errorf("probabilistic knobs should still apply to unscripted packets: %+v", m)
	}
}

func TestFlipBit(t *testing.T) {
	buf := make([]byte, 4)
	idx, mask := FlipBit(buf, 9) // bit 9 = byte 1, bit 1
	if idx != 1 || mask != 0x02 || buf[1] != 0x02 {
		t.Errorf("FlipBit(9): idx=%d mask=%02x buf=%v", idx, mask, buf)
	}
	FlipBit(buf, 9) // flipping twice restores
	if buf[1] != 0 {
		t.Error("double flip must restore the frame")
	}
	// Out-of-range and negative bits wrap instead of panicking.
	FlipBit(buf, 32+9)
	if buf[1] != 0x02 {
		t.Error("bit index must wrap modulo frame size")
	}
	FlipBit(buf, -1)
	if buf[3]&0x80 == 0 {
		t.Error("negative bit index must wrap to the top bit")
	}
	if idx, mask := FlipBit(nil, 3); idx != 0 || mask != 0 {
		t.Error("empty frame must be a no-op")
	}
}

func TestAdversaryFlushAfterDefault(t *testing.T) {
	var a Adversary
	if a.FlushAfter() != DefaultReorderFlush {
		t.Error("zero ReorderFlush must default")
	}
	a.ReorderFlush = time.Second
	if a.FlushAfter() != time.Second {
		t.Error("explicit ReorderFlush ignored")
	}
	if a.depth() != 1 {
		t.Error("depth must default to 1")
	}
	a.ReorderDepth = 5
	if a.depth() != 5 {
		t.Error("explicit depth ignored")
	}
}
