package params

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestStandalonePreset(t *testing.T) {
	m := Standalone3Com()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The preset must reproduce the paper's four constants exactly.
	if got, want := m.C(), 1350*time.Microsecond; got != want {
		t.Errorf("C = %v, want %v", got, want)
	}
	if got, want := m.Ca(), 170*time.Microsecond; got != want {
		t.Errorf("Ca = %v, want %v", got, want)
	}
	// Wire times: 1024 B at 10 Mb/s = 819.2 µs (paper rounds to 0.82 ms),
	// 64 B = 51.2 µs (paper: 51 µs).
	if got, want := m.T(), time.Duration(1024*8)*time.Second/10_000_000; got != want {
		t.Errorf("T = %v, want %v", got, want)
	}
	if got := m.T(); got < 819*time.Microsecond || got > 820*time.Microsecond {
		t.Errorf("T = %v, want ≈ 820 µs", got)
	}
	if got := m.Ta(); got < 51*time.Microsecond || got > 52*time.Microsecond {
		t.Errorf("Ta = %v, want ≈ 51 µs", got)
	}
}

func TestVKernelPreset(t *testing.T) {
	m := VKernel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.C(), 1830*time.Microsecond; got != want {
		t.Errorf("C = %v, want %v", got, want)
	}
	if got, want := m.Ca(), 670*time.Microsecond; got != want {
		t.Errorf("Ca = %v, want %v", got, want)
	}
}

func TestCopyTimeMonotonic(t *testing.T) {
	m := Standalone3Com()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.CopyTime(x) <= m.CopyTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyTimeNegativeClamped(t *testing.T) {
	m := Standalone3Com()
	if m.CopyTime(-5) != m.CopyTime(0) {
		t.Error("negative size should clamp to zero")
	}
	if m.WireTime(-5) != m.WireTime(0) {
		t.Error("negative size should clamp to zero")
	}
}

func TestWireTimeLinear(t *testing.T) {
	m := Standalone3Com()
	f := func(a uint8) bool {
		n := int(a)
		// wire time of n bytes + wire time of n bytes == wire time of 2n bytes
		// (within integer rounding of 1 ns per call).
		lhs := m.WireTime(n) + m.WireTime(n)
		rhs := m.WireTime(2 * n)
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackets(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 0}, {-1, 0}, {1, 1}, {1023, 1}, {1024, 1}, {1025, 2},
		{64 * 1024, 64}, {64*1024 + 1, 65},
	}
	for _, c := range cases {
		if got := Packets(c.bytes); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []CostModel{
		{Name: "no-bandwidth", TxBuffers: 1, RxBuffers: 1},
		{Name: "neg-copy", BandwidthBitsPerSec: 1, CopyAckPkt: -1, TxBuffers: 1, RxBuffers: 1},
		{Name: "inverted-copy", BandwidthBitsPerSec: 1, CopyDataPkt: 1, CopyAckPkt: 2, TxBuffers: 1, RxBuffers: 1},
		{Name: "no-tx", BandwidthBitsPerSec: 1, RxBuffers: 1},
		{Name: "no-rx", BandwidthBitsPerSec: 1, TxBuffers: 1},
		{Name: "neg-prop", BandwidthBitsPerSec: 1, TxBuffers: 1, RxBuffers: 1, Propagation: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
	if err := Standalone3Com().Validate(); err != nil {
		t.Errorf("standalone preset should validate: %v", err)
	}
}

func TestDoubleBuffered(t *testing.T) {
	m := DoubleBuffered(Standalone3Com())
	if m.TxBuffers != 2 {
		t.Errorf("TxBuffers = %d, want 2", m.TxBuffers)
	}
	// Costs are unchanged.
	if m.C() != Standalone3Com().C() {
		t.Error("double buffering must not change copy costs")
	}
}

func TestLossModelValidate(t *testing.T) {
	good := []LossModel{NoLoss(), TypicalEthernet(), FullSpeedInterfaces(),
		{Burst: &GilbertElliott{PGood: 0.001, PBad: 0.5, PGoodToBad: 0.01, PBadToGood: 0.2}}}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", l, err)
		}
	}
	bad := []LossModel{{PNet: -0.1}, {PNet: 1.5}, {PIface: 2},
		{Burst: &GilbertElliott{PGood: -1}}}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%+v: expected error", l)
		}
	}
}

func TestGilbertElliottMeanLoss(t *testing.T) {
	// Symmetric chain spends half its time in each state.
	g := GilbertElliott{PGood: 0, PBad: 0.2, PGoodToBad: 0.1, PBadToGood: 0.1}
	if got := g.MeanLoss(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MeanLoss = %g, want 0.1", got)
	}
	// Degenerate chain that never transitions stays in Good.
	g2 := GilbertElliott{PGood: 0.03, PBad: 0.9}
	if got := g2.MeanLoss(); got != 0.03 {
		t.Errorf("MeanLoss = %g, want 0.03", got)
	}
}

func TestOneKilobyteExchangeMatchesTable2(t *testing.T) {
	// Table 2: C + T + C + Ca + Ta + Ca = 3.91 ms (sum of components).
	m := Standalone3Com()
	total := 2*m.C() + m.T() + 2*m.Ca() + m.Ta()
	lo, hi := 3900*time.Microsecond, 3920*time.Microsecond
	if total < lo || total > hi {
		t.Errorf("1 KB exchange = %v, want ≈ 3.91 ms", total)
	}
}
