// Faults describes whole-process failures — the companion to Adversary,
// which only mistreats individual packets. The paper's protocols assume a
// live correspondent; the failure-recovery layer (core.PullResume, the
// restartable server) exists for the cases the paper does not model: a
// server that crashes and restarts mid-transfer, a client that goes dark.
// Like the Adversary, a Faults value is substrate-independent: the simulator
// closes and reopens the serving station, the UDP server closes and rebinds
// its socket, and both consult the same deterministic trigger, so one fault
// schedule reproduces identically everywhere.
package params

import (
	"fmt"
	"sync"
	"time"

	"blastlan/internal/wire"
)

// Faults is a seedable whole-process failure schedule.
//
// The zero Faults is inactive (nothing ever crashes).
type Faults struct {
	// CrashAfterChunks schedules server crashes on the cumulative count of
	// data chunks served across all sessions: the server dies when its
	// trigger observes the Nth chunk for each threshold, in order. Counting
	// served chunks (not wall or virtual time) is what makes the schedule
	// deterministic on the simulator and closely reproducible on real UDP.
	CrashAfterChunks []int64

	// Downtime is how long a crashed server stays down before restarting
	// (default 200ms). During downtime REQs and ACKs fall on the floor, so
	// clients observe give-ups and resume once the server is back.
	Downtime time.Duration

	// BlackholeAfter and BlackholeCount describe a client-side blackhole:
	// starting at the BlackholeAfter-th data chunk the client receives (
	// 1-based), BlackholeCount consecutive data packets are dropped before
	// delivery — a client that goes dark mid-transfer and comes back.
	// Zero BlackholeAfter disables it.
	BlackholeAfter int64
	BlackholeCount int64
}

// Active reports whether the schedule injects anything at all.
func (f Faults) Active() bool {
	return len(f.CrashAfterChunks) > 0 || f.BlackholeAfter > 0
}

// Validate reports whether the schedule is usable: crash thresholds must be
// positive and strictly increasing (each names a cumulative chunk count).
func (f Faults) Validate() error {
	prev := int64(0)
	for _, c := range f.CrashAfterChunks {
		if c <= prev {
			return fmt.Errorf("params: crash thresholds must be positive and strictly increasing")
		}
		prev = c
	}
	if f.BlackholeAfter < 0 || f.BlackholeCount < 0 {
		return fmt.Errorf("params: blackhole bounds must be non-negative")
	}
	if f.Downtime < 0 {
		return fmt.Errorf("params: downtime must be non-negative")
	}
	return nil
}

// RestartDelay returns the effective downtime before a crashed server
// restarts.
func (f Faults) RestartDelay() time.Duration {
	if f.Downtime > 0 {
		return f.Downtime
	}
	return 200 * time.Millisecond
}

// Trigger instantiates the crash schedule as a concurrency-safe counter.
func (f Faults) Trigger() *CrashTrigger {
	return &CrashTrigger{thresholds: f.CrashAfterChunks}
}

// CrashTrigger counts served chunks against a crash schedule. Sessions call
// OnChunk for every data chunk they serve; it returns true exactly once per
// threshold — at the moment the cumulative count crosses it — and the caller
// performs the crash (closing the serving station or socket). Safe for
// concurrent sessions; under the simulator's handoff scheduling the mutex is
// uncontended and the count order is deterministic.
type CrashTrigger struct {
	mu         sync.Mutex
	thresholds []int64
	next       int
	served     int64
}

// OnChunk records one served chunk and reports whether a scheduled crash
// fires now.
func (t *CrashTrigger) OnChunk() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.served++
	if t.next < len(t.thresholds) && t.served >= t.thresholds[t.next] {
		t.next++
		return true
	}
	return false
}

// Crashes reports how many scheduled crashes have fired.
func (t *CrashTrigger) Crashes() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Served reports the cumulative chunk count observed so far.
func (t *CrashTrigger) Served() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.served
}

// BlackholeHook builds a stateful receive-side mangle hook implementing the
// schedule's client blackhole: after BlackholeAfter data chunks have been
// delivered, the next BlackholeCount data packets are dropped. Install it as
// a receive-direction mangle (Endpoint.MangleRx, Station.MangleRx); non-data
// packets pass untouched so the handshake stays alive. Returns nil when the
// schedule has no blackhole.
func (f Faults) BlackholeHook() func(pkt *wire.Packet) Mangle {
	if f.BlackholeAfter <= 0 || f.BlackholeCount <= 0 {
		return nil
	}
	var mu sync.Mutex
	seen := int64(0)
	return func(pkt *wire.Packet) Mangle {
		if pkt.Type != wire.TypeData {
			return Mangle{}
		}
		mu.Lock()
		defer mu.Unlock()
		seen++
		if seen > f.BlackholeAfter && seen <= f.BlackholeAfter+f.BlackholeCount {
			return Mangle{Drop: true}
		}
		return Mangle{}
	}
}
