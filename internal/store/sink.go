package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// FileSink is the push-side of the daemon's file handling: it streams
// pushed transfers into numbered files under a directory, guarantees the
// per-transfer file is closed exactly once on every outcome, and discards
// partials from aborted pushes (a client that vanished mid-blast, a
// force-closed session at shutdown). The session layer guarantees the
// completion callback fires exactly once per accepted push; everything
// the daemon must do with that guarantee lives here, where it is testable
// without a main().
type FileSink struct {
	// Dir receives transfer-NNNN.bin files. Empty means verify-and-discard:
	// pushes stream into the incremental checksum only.
	Dir string

	// MaxBytes, when positive, rejects pushes larger than this.
	MaxBytes int

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// OnDone, when non-nil, observes every completed callback: the file's
	// path ("" when discarding), the result, and whether the file was kept.
	// Test hook.
	OnDone func(path string, res core.RecvResult, kept bool)

	n atomic.Int64
}

func (fs *FileSink) logf(format string, args ...any) {
	if fs.Logf != nil {
		fs.Logf(format, args...)
	}
}

// SinkStream is the session.Server.SinkStream hook. Degenerate REQs are
// rejected before any resource is created: a push REQ with Bytes==0 or
// Chunk==0 would otherwise reach the engine's chunk arithmetic (the pull
// path has always had this guard; the push path must mirror it).
func (fs *FileSink) SinkStream(r wire.Req) (core.ChunkSink, func(core.RecvResult), bool) {
	if r.Bytes == 0 || r.Chunk == 0 {
		fs.logf("store: rejecting degenerate push (bytes=%d chunk=%d)", r.Bytes, r.Chunk)
		return nil, nil, false
	}
	if fs.MaxBytes > 0 && int(r.Bytes) > fs.MaxBytes {
		fs.logf("store: rejecting %d-byte push (limit %d)", r.Bytes, fs.MaxBytes)
		return nil, nil, false
	}
	n := fs.n.Add(1)
	if fs.Dir == "" {
		return func(int, []byte) {}, func(res core.RecvResult) {
			fs.logf("store: verified %d bytes (push #%d), checksum %04x",
				res.Bytes, n, res.Checksum)
			if fs.OnDone != nil {
				fs.OnDone("", res, false)
			}
		}, true
	}
	name := filepath.Join(fs.Dir, fmt.Sprintf("transfer-%04d.bin", n))
	f, err := os.Create(name)
	if err != nil {
		fs.logf("store: creating %s: %v", name, err)
		return nil, nil, false
	}
	sink := func(off int, b []byte) {
		if _, werr := f.WriteAt(b, int64(off)); werr != nil {
			fs.logf("store: writing %s: %v", name, werr)
		}
	}
	done := func(res core.RecvResult) {
		if cerr := f.Close(); cerr != nil {
			fs.logf("store: closing %s: %v", name, cerr)
		}
		kept := res.Completed
		if !kept {
			// Aborted push: drop the partial file.
			os.Remove(name)
			fs.logf("store: discarded aborted push %s (%d bytes received)", name, res.Bytes)
		} else {
			fs.logf("store: wrote %s (%d bytes, checksum %04x)", name, res.Bytes, res.Checksum)
		}
		if fs.OnDone != nil {
			fs.OnDone(name, res, kept)
		}
	}
	return sink, done, true
}
