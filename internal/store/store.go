// Package store is the disk-backed file store behind the serving side:
// real files served by name as core.ChunkSources through the shared
// session layer, so the simulator, the V kernel and the UDP daemon all
// pull from the same read path — platter to protocol engine.
//
// The paper's introduction motivates large pages with "economies in
// accessing the disk in large quantities as well as ... the network in
// large quantities"; this package supplies the disk half at serving time.
// Three pieces matter at fleet scale (the hot set must leave the disk
// once, not once per client):
//
//   - a sharded hot-object cache with ref-counted chunk buffers, so one
//     disk read fans out to N concurrent pullers without copying per
//     session or breaking the zero-alloc datapath (cache.go);
//   - single-flight fills: N sessions racing for the same cold chunk
//     trigger exactly one backing read;
//   - pipelined read-ahead that stays a configurable window ahead of the
//     sender — background prefetch goroutines on real substrates, and on
//     the DES a batched span read whose cost the disk model charges as
//     one large page (read-ahead IS the paper's page-size economy).
package store

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// maxChunk bounds a client-requested chunk size: above this a REQ is
// rejected rather than allocating attacker-sized buffers per chunk. Real
// substrates bound chunks at the MTU long before this; the DES has no MTU.
const maxChunk = 1 << 20

// Options configures a Store.
type Options struct {
	// CacheBytes is the hot-object cache budget. Default 256 MiB.
	CacheBytes int64

	// Shards is the cache shard count. Default GOMAXPROCS.
	Shards int

	// ReadAhead is how many chunks the store keeps in flight ahead of the
	// sender. Default 8; negative disables read-ahead.
	ReadAhead int

	// Prefetchers caps concurrent background prefetch reads (real
	// substrates only). Default 4.
	Prefetchers int

	// Sim selects DES mode: no goroutines (fills are synchronous batched
	// span reads charged to the session's virtual clock) and cache waits
	// poll in virtual time. Required when the Store serves simulator
	// sessions; forbidden otherwise.
	Sim bool

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.Shards < 1 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.ReadAhead == 0 {
		o.ReadAhead = 8
	}
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	}
	if o.Prefetchers < 1 {
		o.Prefetchers = 4
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits        int64 // chunk requests served from cache (incl. fill waits)
	Misses      int64 // chunk requests that owned a backing fill
	ChunkReads  int64 // chunks filled from the backing FS — with single-flight, ≤ one per (file, chunk)
	ReadOps     int64 // backing ReadAt calls (batched read-ahead folds many fills into one)
	Evictions   int64 // entries reclaimed by CLOCK
	BytesCached int64 // budget-accounted cache residency
}

// Store serves named files through the chunk cache.
type Store struct {
	fs  FS
	opt Options
	c   *cache

	mu     sync.Mutex
	objs   map[string]*object
	nextID uint32

	sem chan struct{} // prefetch slots

	hits       atomic.Int64
	misses     atomic.Int64
	chunkReads atomic.Int64
	readOps    atomic.Int64
}

// object is one resolved file in the registry.
type object struct {
	id   uint32
	name string
	f    File
	size int64

	// views are dense per-chunk-size indexes over the object's cache
	// entries: views[chunk][idx] points at the entry for chunk idx, nil
	// when absent or torn down. Entries publish themselves into their
	// cell at creation and clear it on eviction (cache.go), so every
	// source over the object — including all stripes of a striped pull
	// and every later session — shares one lock-free warm path. The
	// cells cost 8 bytes per chunk per chunk size, unaccounted against
	// the cache budget (the budget covers payload bytes).
	mu    sync.Mutex
	views map[uint32][]atomic.Pointer[entry]
}

// view returns (creating if needed) the object's dense index at the
// given chunk size.
func (o *object) view(chunk int) []atomic.Pointer[entry] {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.views == nil {
		o.views = make(map[uint32][]atomic.Pointer[entry])
	}
	v, ok := o.views[uint32(chunk)]
	if !ok {
		v = make([]atomic.Pointer[entry], totalChunks(o.size, chunk))
		o.views[uint32(chunk)] = v
	}
	return v
}

// New creates a Store over fs.
func New(fs FS, opt Options) *Store {
	opt = opt.withDefaults()
	return &Store{
		fs:   fs,
		opt:  opt,
		c:    newCache(opt.CacheBytes, opt.Shards, opt.Sim),
		objs: make(map[string]*object),
		sem:  make(chan struct{}, opt.Prefetchers),
	}
}

// Open creates a Store serving the files under dir (see DirFS).
func Open(dir string, opt Options) *Store { return New(NewDirFS(dir), opt) }

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		ChunkReads:  s.chunkReads.Load(),
		ReadOps:     s.readOps.Load(),
		Evictions:   s.c.evictions.Load(),
		BytesCached: s.c.bytesCached(),
	}
}

// Close closes every open file. In-flight prefetches fail harmlessly.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.objs {
		o.f.Close()
	}
	s.objs = make(map[string]*object)
}

// resolve opens (or finds) the named object. Open files are kept for the
// store's lifetime — the registry is the file-handle cache.
func (s *Store) resolve(name string) (*object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o := s.objs[name]; o != nil {
		return o, nil
	}
	f, err := s.fs.Open(name)
	if err != nil {
		return nil, err
	}
	o := &object{id: s.nextID, name: name, f: f, size: f.Size()}
	s.nextID++
	s.objs[name] = o
	return o, nil
}

// Stat reports the named object's size.
func (s *Store) Stat(name string) (int64, error) {
	o, err := s.resolve(name)
	if err != nil {
		return 0, err
	}
	return o.size, nil
}

// StatReq is the session.Server.Stat hook: it answers stat REQs for named
// objects.
func (s *Store) StatReq(r wire.Req) (int64, bool) {
	if r.Name == "" {
		return 0, false
	}
	o, err := s.resolve(r.Name)
	if err != nil {
		s.logf("store: stat %q: %v", r.Name, err)
		return 0, false
	}
	return o.size, true
}

// SourceReq is the session.Server.SourceEnv hook: it resolves named pull
// REQs — striped or not — into chunk sources reading through the cache.
// Anonymous REQs (no name) are not the store's business; return false so
// the daemon can fall back to another source.
func (s *Store) SourceReq(r wire.Req, env core.Env) (core.ChunkSource, bool) {
	if r.Name == "" {
		return nil, false
	}
	if r.Bytes == 0 || r.Chunk == 0 || r.Chunk > maxChunk {
		s.logf("store: rejecting degenerate pull of %q (bytes=%d chunk=%d)", r.Name, r.Bytes, r.Chunk)
		return nil, false
	}
	o, err := s.resolve(r.Name)
	if err != nil {
		s.logf("store: pull %q: %v", r.Name, err)
		return nil, false
	}
	if r.StreamBytes() > uint64(o.size) || r.Offset()+r.Bytes > uint64(o.size) {
		s.logf("store: rejecting pull of [%d,%d) beyond %d-byte %q",
			r.Offset(), r.Offset()+r.Bytes, o.size, r.Name)
		return nil, false
	}
	return s.source(o, int(r.Chunk), int(r.OffsetChunks), env), true
}

// Source returns a chunk source for the named object, for callers outside
// the session layer (tests, benchmarks). env may be nil on real
// substrates.
func (s *Store) Source(name string, chunk, offsetChunks int, env core.Env) (core.ChunkSource, error) {
	if chunk <= 0 || chunk > maxChunk {
		return nil, fmt.Errorf("store: chunk size %d out of range", chunk)
	}
	o, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	return s.source(o, chunk, offsetChunks, env), nil
}

// source builds the per-transfer chunk source. The engine owns the
// returned bytes only until its next call (core.ChunkSource contract), so
// a copy-out keeps cached buffers shared and immutable while staying
// alloc-free on hits.
//
// Warm chunks are served through the object's view — one pointer load,
// one state load and a memcpy, no shard mutex and no map lookup — which
// is what keeps a fully cached pull at parity with the in-memory
// generator. Because the view is shared at the object, a chunk any
// earlier session (or stripe, or prefetcher) filled is already on the
// fast path for this one; the locked cache path only runs for absent or
// in-flight chunks.
func (s *Store) source(o *object, chunk, offsetChunks int, env core.Env) core.ChunkSource {
	ahead := offsetChunks // high-water chunk index already dispatched to prefetch
	ra := s.opt.ReadAhead
	view := o.view(chunk)
	return func(seq int, dst []byte) []byte {
		idx := offsetChunks + seq
		n := chunkLen(o.size, chunk, idx)
		if n <= 0 {
			return dst[:0]
		}
		if cap(dst) < n {
			dst = make([]byte, n)
		}
		dst = dst[:n]
		var advance bool
		if e := view[idx].Load(); e != nil && e.state.Load() == entryFilled {
			s.hits.Add(1)
			if !e.hot.Load() {
				e.hot.Store(true)
			}
			advance = e.prefetched.Load() && e.prefetched.Swap(false)
			copy(dst, e.buf)
		} else {
			adv, err := s.readChunk(o, chunk, idx, dst, env, view)
			if err != nil {
				s.logf("store: reading %q chunk %d: %v", o.name, idx, err)
				return dst[:0]
			}
			advance = adv
		}
		if !s.opt.Sim && ra > 0 && advance {
			// Pipelined read-ahead: keep (idx, idx+ra] in flight behind
			// the sender. The high-water mark makes the steady state O(1)
			// — each served chunk dispatches at most one new prefetch —
			// and only advances past chunks actually dispatched, so a
			// busy prefetcher pool delays the window instead of punching
			// holes in it. The window slides only when the pipeline is
			// live (a miss, or the first consumption of a prefetched
			// chunk); a warm hit skips the probing outright, so fully
			// cached streams pay no read-ahead tax.
			start := idx + 1
			if ahead > start {
				start = ahead
			}
			for j := start; j <= idx+ra; j++ {
				if !s.prefetch(o, chunk, j, view) {
					break
				}
				ahead = j + 1
			}
		}
		return dst
	}
}

// readChunk delivers chunk idx into dst through the cache — the slow
// path behind the view: absent chunks (a miss that owns the fill) and
// in-flight chunks (wait on another session's fill). advance reports
// whether the read-ahead window should slide: true on a miss or on the
// first consumption of a prefetched chunk, false on a warm hit (the
// stream ahead is already cached).
func (s *Store) readChunk(o *object, chunk, idx int, dst []byte, env core.Env, view []atomic.Pointer[entry]) (advance bool, err error) {
	k := chunkKey{file: o.id, chunk: uint32(chunk), idx: uint32(idx)}
	e, hit, prefetched := s.c.acquire(k, len(dst), &view[idx])
	if hit {
		s.hits.Add(1)
		if err := s.c.wait(e, env); err != nil {
			s.c.release(e)
			return prefetched, err
		}
		copy(dst, e.buf)
		s.c.release(e)
		return prefetched, nil
	}
	s.misses.Add(1)
	if s.opt.Sim {
		return true, s.fillSpanSim(o, chunk, idx, e, dst, env, view)
	}
	buf := make([]byte, len(dst))
	s.readOps.Add(1)
	if _, err := o.f.ReadAt(env, buf, int64(idx)*int64(chunk)); err != nil {
		s.c.fillFail(e, err)
		s.c.release(e)
		return true, err
	}
	s.chunkReads.Add(1)
	s.c.fillDone(e, buf)
	copy(dst, buf)
	s.c.release(e)
	return true, nil
}

// fillSpanSim is the DES miss path: instead of background goroutines
// (which would break the kernel's deterministic handoff scheduling),
// read-ahead happens synchronously as one span read of up to ReadAhead+1
// chunks — one disk access the timing model charges like a single large
// page, which is exactly the paper's disk-economy argument. The span
// stops at the file's end and at the first chunk some other session
// already owns.
func (s *Store) fillSpanSim(o *object, chunk, idx int, first *entry, dst []byte, env core.Env, view []atomic.Pointer[entry]) error {
	entries := []*entry{first}
	for j := idx + 1; j <= idx+s.opt.ReadAhead; j++ {
		n := chunkLen(o.size, chunk, j)
		if n <= 0 {
			break
		}
		e, hit, _ := s.c.acquire(chunkKey{file: o.id, chunk: uint32(chunk), idx: uint32(j)}, n, &view[j])
		if hit {
			s.c.release(e)
			break
		}
		entries = append(entries, e)
	}
	span := int(min64(int64(len(entries))*int64(chunk), o.size-int64(idx)*int64(chunk)))
	buf := make([]byte, span)
	s.readOps.Add(1)
	if _, err := o.f.ReadAt(env, buf, int64(idx)*int64(chunk)); err != nil {
		for _, e := range entries {
			s.c.fillFail(e, err)
			s.c.release(e)
		}
		return err
	}
	s.chunkReads.Add(int64(len(entries)))
	for i, e := range entries {
		lo := i * chunk
		hi := lo + chunkLen(o.size, chunk, idx+i)
		s.c.fillDone(e, buf[lo:hi:hi])
		if i > 0 {
			s.c.release(e)
		}
	}
	copy(dst, first.buf)
	s.c.release(first)
	return nil
}

// prefetch schedules a background fill for chunk idx if no entry exists
// and a prefetch slot is free; otherwise it does nothing — read-ahead is
// an optimisation, never a wait. It reports whether the chunk is covered
// (already present, past EOF, or now in flight); false means no slot was
// free and the caller should retry on its next serve.
func (s *Store) prefetch(o *object, chunk, idx int, view []atomic.Pointer[entry]) bool {
	n := chunkLen(o.size, chunk, idx)
	if n <= 0 {
		return true
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return false // all prefetchers busy
	}
	e, hit, _ := s.c.acquire(chunkKey{file: o.id, chunk: uint32(chunk), idx: uint32(idx)}, n, &view[idx])
	if hit {
		s.c.release(e)
		<-s.sem
		return true
	}
	s.c.markPrefetched(e)
	go func() {
		defer func() { <-s.sem }()
		buf := make([]byte, n)
		s.readOps.Add(1)
		if _, err := o.f.ReadAt(nil, buf, int64(idx)*int64(chunk)); err != nil {
			s.c.fillFail(e, err)
			s.c.release(e)
			return
		}
		s.chunkReads.Add(1)
		s.c.fillDone(e, buf)
		s.c.release(e)
	}()
	return true
}

// totalChunks is how many chunk-sized pieces a size-byte object splits
// into (the memo slot count for a source over it).
func totalChunks(size int64, chunk int) int {
	return int((size + int64(chunk) - 1) / int64(chunk))
}

// chunkLen is the length of chunk idx in a size-byte object: the chunk
// size except for a short tail, zero past the end.
func chunkLen(size int64, chunk, idx int) int {
	off := int64(idx) * int64(chunk)
	if off >= size {
		return 0
	}
	n := size - off
	if n > int64(chunk) {
		n = int64(chunk)
	}
	return int(n)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
