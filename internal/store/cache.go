package store

import (
	"sync"
	"sync/atomic"
	"time"

	"blastlan/internal/core"
)

// The hot-object cache: chunk-grained, sharded, CLOCK-evicted, with
// ref-counted buffers and single-flight fills.
//
// Keys are (file, chunk size, chunk index) — every concurrent puller of
// one file at one chunk size shares entries, including the stripes of one
// striped pull. A miss inserts a pending entry before reading, so N
// sessions racing for the same cold chunk trigger exactly one backing
// read: the first owns the fill, the rest wait on it (a closed channel on
// real substrates, virtual-time polling on the DES, where blocking on a
// channel would stall the kernel's handoff scheduling).
//
// Readers pin an entry with a refcount for exactly the span of one
// copy-out into the engine's scratch buffer; CLOCK never evicts a pinned
// or pending entry, so a buffer fanned out to N sessions cannot be
// recycled under a concurrent copy. The hit path is alloc-free: map
// lookup, memcpy, unpin.

// simWaitQuantum is how much virtual time a DES session sleeps between
// polls of a chunk another session is reading off the simulated disk.
const simWaitQuantum = 200 * time.Microsecond

// chunkKey identifies one cached chunk.
type chunkKey struct {
	file  uint32 // store registry id
	chunk uint32 // chunk size the stream was requested with
	idx   uint32 // chunk index within the file at that chunk size
}

// entry lifecycle states, published through entry.state so lock-free
// readers can tell a filled buffer from one still in flight or already
// torn down.
const (
	entryPending uint32 = iota // fill in flight; owner is the acquirer that missed
	entryFilled                // buf valid and immutable
	entryDead                  // failed or evicted; no longer in the map
)

// entry is one cached chunk. buf is written exactly once by the filling
// owner and published with a release store of state=entryFilled, so any
// reader that loads state and sees entryFilled may read buf without a
// lock — including after a concurrent eviction, because buffers are
// never recycled (the GC reclaims them once the last reader drops the
// pointer). key/charge are immutable; refs/pending/dead/err are guarded
// by the owning shard's mutex; hot and prefetched are atomics because
// the memoized fast path touches them outside the lock.
type entry struct {
	key     chunkKey
	buf     []byte
	charge  int   // bytes accounted against the shard budget
	refs    int32 // pinned readers; never evicted while > 0
	pending bool  // fill in flight (shard-mutex view of state)
	dead    bool  // failed or evicted (shard-mutex view of state)
	state   atomic.Uint32
	hot     atomic.Bool // CLOCK reference bit
	// prefetched marks an entry created by background read-ahead and not
	// yet consumed by a reader. The first hit consumes it (Swap) — the
	// signal that the pipeline is live and the read-ahead window should
	// slide. A warm entry (flag already cleared) tells readers the stream
	// is cached and the per-chunk prefetch probing can be skipped
	// entirely, which is what keeps the hot hit path within sight of the
	// in-memory generator.
	prefetched atomic.Bool
	err        error
	ready      chan struct{}
	// slot points back at the entry's cell in the owning object's view
	// (the dense per-(file, chunk-size) index sources read lock-free).
	// Written once at creation under the shard mutex; eviction and fill
	// failure CAS the cell back to nil so a dead entry's buffer does not
	// stay reachable — the cell, not the map, is what outlives the entry.
	slot *atomic.Pointer[entry]
}

type cacheShard struct {
	mu     sync.Mutex
	m      map[chunkKey]*entry
	ring   []*entry // CLOCK ring in insertion order
	hand   int
	bytes  int64
	budget int64
}

type cache struct {
	shards    []cacheShard
	sim       bool
	evictions atomic.Int64
}

func newCache(budget int64, shards int, sim bool) *cache {
	if shards < 1 {
		shards = 1
	}
	c := &cache{shards: make([]cacheShard, shards), sim: sim}
	per := budget / int64(shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[chunkKey]*entry)
		c.shards[i].budget = per
	}
	return c
}

func (c *cache) shardOf(k chunkKey) *cacheShard {
	h := uint64(k.file)<<40 ^ uint64(k.chunk)<<20 ^ uint64(k.idx)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.shards[h%uint64(len(c.shards))]
}

// acquire pins the entry for k, creating a pending one on a miss. The
// caller that misses owns the fill: it must call fillDone or fillFail
// exactly once, then release. Hitters (including hits on a still-pending
// fill) wait, copy, release. prefetched reports (and consumes) the
// entry's read-ahead provenance — true for the first hit on a
// background-filled entry. slot, when non-nil, is the view cell the new
// entry publishes itself into — lock-free readers find it there the
// moment the fill completes.
func (c *cache) acquire(k chunkKey, charge int, slot *atomic.Pointer[entry]) (e *entry, hit, prefetched bool) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e = sh.m[k]; e != nil {
		e.hot.Store(true)
		e.refs++
		prefetched = e.prefetched.Swap(false)
		sh.mu.Unlock()
		return e, true, prefetched
	}
	e = &entry{key: k, charge: charge, refs: 1, pending: true, ready: make(chan struct{}), slot: slot}
	if slot != nil {
		slot.Store(e)
	}
	sh.m[k] = e
	sh.ring = append(sh.ring, e)
	sh.bytes += int64(charge)
	sh.evict(c)
	sh.mu.Unlock()
	return e, false, false
}

// markPrefetched tags a freshly-acquired entry as read-ahead-filled.
func (c *cache) markPrefetched(e *entry) {
	e.prefetched.Store(true)
}

// wait blocks until e's fill completes and reports its outcome. On the
// DES it polls in virtual time instead of blocking the kernel.
func (c *cache) wait(e *entry, env core.Env) error {
	if !c.sim {
		<-e.ready
		return e.err
	}
	sh := c.shardOf(e.key)
	for {
		sh.mu.Lock()
		pending, err := e.pending, e.err
		sh.mu.Unlock()
		if !pending {
			return err
		}
		env.Compute(simWaitQuantum)
	}
}

// fillDone publishes a completed fill. The state store is the release
// barrier that publishes buf to lock-free readers.
func (c *cache) fillDone(e *entry, buf []byte) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	e.buf = buf
	e.pending = false
	e.state.Store(entryFilled)
	sh.mu.Unlock()
	close(e.ready)
}

// fillFail publishes a failed fill and removes the entry, so the next
// request for the chunk retries the read instead of caching the error.
func (c *cache) fillFail(e *entry, err error) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	e.err = err
	e.pending = false
	e.dead = true
	e.state.Store(entryDead)
	if e.slot != nil {
		e.slot.CompareAndSwap(e, nil)
	}
	delete(sh.m, e.key)
	sh.bytes -= int64(e.charge)
	sh.mu.Unlock()
	close(e.ready)
}

// release unpins an entry.
func (c *cache) release(e *entry) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	e.refs--
	sh.mu.Unlock()
}

// bytesCached sums the budget-accounted bytes across shards.
func (c *cache) bytesCached() int64 {
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.bytes
		sh.mu.Unlock()
	}
	return total
}

// evict runs the CLOCK hand until the shard is back under budget: a hot
// entry loses its reference bit and survives one sweep; pinned or pending
// entries are skipped outright; dead entries are harvested in passing. If
// everything live is pinned the shard runs over budget until the pins
// drop — correctness over ceremony. Caller holds sh.mu.
func (sh *cacheShard) evict(c *cache) {
	for sh.bytes > sh.budget && len(sh.ring) > 0 {
		evicted := false
		for scanned := 2 * len(sh.ring); scanned > 0 && len(sh.ring) > 0; scanned-- {
			if sh.hand >= len(sh.ring) {
				sh.hand = 0
			}
			e := sh.ring[sh.hand]
			if e.dead {
				sh.removeAt(sh.hand)
				continue
			}
			if e.pending || e.refs > 0 {
				sh.hand++
				continue
			}
			if e.hot.Load() {
				e.hot.Store(false)
				sh.hand++
				continue
			}
			delete(sh.m, e.key)
			e.dead = true
			e.state.Store(entryDead)
			if e.slot != nil {
				e.slot.CompareAndSwap(e, nil)
			}
			sh.bytes -= int64(e.charge)
			sh.removeAt(sh.hand)
			c.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// removeAt deletes ring[i] preserving CLOCK order.
func (sh *cacheShard) removeAt(i int) {
	sh.ring = append(sh.ring[:i], sh.ring[i+1:]...)
	if sh.hand > i {
		sh.hand--
	}
}
