package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/disk"
	"blastlan/internal/wire"
)

// fakeEnv is a minimal core.Env for driving sources outside a substrate:
// Compute accumulates virtual time, which is how the SimFS tests observe
// disk-model charges.
type fakeEnv struct{ t time.Duration }

func (e *fakeEnv) Now() time.Duration           { return e.t }
func (e *fakeEnv) Compute(d time.Duration)      { e.t += d }
func (e *fakeEnv) Send(*wire.Packet) error      { return nil }
func (e *fakeEnv) SendAsync(*wire.Packet) error { return nil }
func (e *fakeEnv) Recv(time.Duration) (*wire.Packet, error) {
	return nil, fmt.Errorf("fakeEnv has no packets")
}

// memFS counts backing reads, optionally dawdling to widen race windows.
type memFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	content []byte
	delay   time.Duration
	mu      sync.Mutex
	reads   int
}

func newMemFS() *memFS { return &memFS{files: map[string]*memFile{}} }

func (m *memFS) add(name string, size int, delay time.Duration) *memFile {
	content := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(size)))
	rng.Read(content)
	f := &memFile{content: content, delay: delay}
	m.mu.Lock()
	m.files[name] = f
	m.mu.Unlock()
	return f
}

func (m *memFS) Open(name string) (File, error) {
	m.mu.Lock()
	f := m.files[name]
	m.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("no such file %q", name)
	}
	return f, nil
}

func (f *memFile) Size() int64 { return int64(len(f.content)) }

func (f *memFile) ReadAt(_ core.Env, p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.reads++
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if off < 0 || off > int64(len(f.content)) {
		return 0, fmt.Errorf("read at %d outside %d bytes", off, len(f.content))
	}
	return copy(p, f.content[off:]), nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) readCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// pullAll drains the whole object through a fresh source and returns the
// reassembled bytes.
func pullAll(t *testing.T, s *Store, name string, chunk int, env core.Env) []byte {
	t.Helper()
	size, err := s.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := s.Source(name, chunk, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, size)
	buf := make([]byte, chunk)
	for seq := 0; int64(len(out)) < size; seq++ {
		b := src(seq, buf)
		if len(b) == 0 {
			t.Fatalf("source dried up at seq %d (%d of %d bytes)", seq, len(out), size)
		}
		out = append(out, b...)
	}
	return out
}

func TestDirFSServesAndValidates(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 300000)
	rand.New(rand.NewSource(7)).Read(content)
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "blob.bin"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	s := Open(dir, Options{})
	defer s.Close()

	got := pullAll(t, s, "sub/blob.bin", 1400, nil)
	if !bytes.Equal(got, content) {
		t.Fatal("pulled bytes differ from the file")
	}
	// Hostile names never escape the root.
	for _, name := range []string{"../blob", "/etc/passwd", "sub/../../x", ".", "", "sub"} {
		if _, err := s.Stat(name); err == nil {
			t.Errorf("Stat(%q) resolved", name)
		}
	}
}

// The acceptance criterion: N concurrent pullers of one cold file trigger
// exactly one backing read per chunk — the cache's single-flight fan-out,
// verified under -race by the CI race job.
func TestSingleFlightFanOut(t *testing.T) {
	const (
		pullers = 8
		chunk   = 1024
		chunks  = 64
	)
	fs := newMemFS()
	f := fs.add("hot.bin", chunk*chunks, 200*time.Microsecond)
	s := New(fs, Options{CacheBytes: 64 << 20})
	defer s.Close()

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, pullers)
	for i := 0; i < pullers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			src, err := s.Source("hot.bin", chunk, 0, nil)
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, chunk)
			for seq := 0; seq < chunks; seq++ {
				b := src(seq, buf)
				want := f.content[seq*chunk : (seq+1)*chunk]
				if !bytes.Equal(b, want) {
					errs <- fmt.Errorf("puller got wrong bytes at seq %d", seq)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ChunkReads != chunks {
		t.Errorf("ChunkReads = %d, want exactly %d (one per chunk)", st.ChunkReads, chunks)
	}
	if got := f.readCount(); got != chunks {
		t.Errorf("backing ReadAt calls = %d, want exactly %d", got, chunks)
	}
	if st.Hits == 0 {
		t.Error("fan-out produced no cache hits")
	}
}

// Read-ahead keeps a window in flight behind the sender: after serving
// early chunks the later ones must already be cached.
func TestReadAheadPipelines(t *testing.T) {
	const chunk, chunks = 2048, 32
	fs := newMemFS()
	fs.add("ra.bin", chunk*chunks, 0)
	s := New(fs, Options{CacheBytes: 64 << 20, ReadAhead: 8, Prefetchers: 8})
	defer s.Close()

	src, err := s.Source("ra.bin", chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chunk)
	src(0, buf)
	// Chunks 1..8 should land without being demanded.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.Stats().ChunkReads >= 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read-ahead idle: ChunkReads = %d after chunk 0", s.Stats().ChunkReads)
		}
		time.Sleep(time.Millisecond)
	}
	before := s.Stats().Misses
	src(1, buf)
	src(2, buf)
	if after := s.Stats().Misses; after != before {
		t.Errorf("chunks 1-2 missed (%d -> %d misses) despite read-ahead", before, after)
	}
}

// CLOCK eviction: fresh chunks enter cold (scan-resistant), re-referenced
// chunks get a second chance, pins are never evicted.
func TestClockEviction(t *testing.T) {
	const chunk = 1024
	fs := newMemFS()
	fs.add("ev.bin", chunk*16, 0)
	s := New(fs, Options{CacheBytes: 4 * chunk, Shards: 1, ReadAhead: -1})
	defer s.Close()

	src, err := s.Source("ev.bin", chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chunk)
	for seq := 0; seq < 4; seq++ {
		src(seq, buf)
	}
	src(0, buf) // re-reference chunk 0: hot bit set
	reads := s.Stats().ChunkReads
	src(4, buf) // over budget: CLOCK clears 0's hot bit, evicts cold 1
	if s.Stats().Evictions == 0 {
		t.Fatal("no eviction past the budget")
	}
	src(0, buf) // survived its second chance
	if got := s.Stats().ChunkReads; got != reads+1 {
		t.Errorf("re-read of hot chunk 0 went to disk (ChunkReads %d -> %d)", reads, got)
	}
	src(1, buf) // the cold victim was evicted
	if got := s.Stats().ChunkReads; got != reads+2 {
		t.Errorf("evicted chunk 1 not re-read (ChunkReads %d -> %d)", reads, got)
	}
}

// The DES read path: a cold sequential file read through the store with
// read-ahead R costs exactly disk.FileReadTime(size, (R+1)*chunk) of
// virtual time — read-ahead is the paper's large-page disk economy, and
// the model is exact, so the DES can gate on it deterministically.
func TestSimColdReadMatchesDiskModel(t *testing.T) {
	const chunk, ra = 1024, 7
	const size = chunk * 64 // divisible by the (ra+1)-chunk span
	g := disk.FujitsuEagle()
	sfs := NewSimFS(g)
	sfs.Add("cold.bin", 42, size)
	s := New(sfs, Options{Sim: true, ReadAhead: ra, CacheBytes: 64 << 20})
	defer s.Close()

	env := &fakeEnv{}
	got := pullAll(t, s, "cold.bin", chunk, env)
	if !bytes.Equal(got, core.SeededPayload(42, size, 1024)) {
		t.Fatal("sim content mismatch")
	}
	want := g.FileReadTime(size, (ra+1)*chunk)
	if env.t != want {
		t.Errorf("cold read cost %v, disk model says %v", env.t, want)
	}
	// Hot re-read is free of disk time entirely.
	env2 := &fakeEnv{}
	pullAll(t, s, "cold.bin", chunk, env2)
	if env2.t != 0 {
		t.Errorf("hot re-read charged %v of disk time", env2.t)
	}
	st := s.Stats()
	if st.ChunkReads != 64 {
		t.Errorf("ChunkReads = %d, want 64", st.ChunkReads)
	}
	if st.ReadOps != 8 {
		t.Errorf("ReadOps = %d, want 8 span reads", st.ReadOps)
	}
}

// Sim-mode determinism: two identical runs produce identical counters and
// identical virtual-time charges.
func TestSimDeterministic(t *testing.T) {
	run := func() (Stats, time.Duration) {
		g := disk.FujitsuEagle()
		sfs := NewSimFS(g)
		sfs.Add("d.bin", 9, 100_000)
		s := New(sfs, Options{Sim: true, ReadAhead: 4, CacheBytes: 16 * 1024, Shards: 2})
		defer s.Close()
		env := &fakeEnv{}
		pullAll(t, s, "d.bin", 1000, env)
		pullAll(t, s, "d.bin", 1000, env)
		return s.Stats(), env.t
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("two identical sim runs diverged: %+v/%v vs %+v/%v", s1, t1, s2, t2)
	}
	if s1.Evictions == 0 {
		t.Error("scenario sized to evict, but nothing was evicted")
	}
}

func TestSourceReqValidation(t *testing.T) {
	fs := newMemFS()
	fs.add("ok.bin", 10_000, 0)
	s := New(fs, Options{})
	defer s.Close()

	ok := func(r wire.Req) bool {
		_, got := s.SourceReq(r, nil)
		return got
	}
	if !ok(wire.Req{Name: "ok.bin", Bytes: 10_000, Chunk: 1000}) {
		t.Error("valid pull rejected")
	}
	bad := []wire.Req{
		{Bytes: 1000, Chunk: 100},                                                  // anonymous: not ours
		{Name: "ok.bin", Bytes: 0, Chunk: 100},                                     // degenerate
		{Name: "ok.bin", Bytes: 1000, Chunk: 0},                                    // degenerate
		{Name: "ok.bin", Bytes: 1000, Chunk: 2 << 20},                              // absurd chunk
		{Name: "missing", Bytes: 1000, Chunk: 100},                                 // no such object
		{Name: "ok.bin", Bytes: 20_000, Chunk: 1000},                               // beyond EOF
		{Name: "ok.bin", Bytes: 5000, Chunk: 1000, OffsetChunks: 8, Total: 10_000}, // range past EOF
	}
	for i, r := range bad {
		if ok(r) {
			t.Errorf("bad req %d accepted: %+v", i, r)
		}
	}
	// Striped ranges resolve like unstriped ones.
	r := wire.Req{Name: "ok.bin", Bytes: 5000, Chunk: 1000, OffsetChunks: 5, Total: 10_000}
	src, got := s.SourceReq(r, nil)
	if !got {
		t.Fatal("striped tail rejected")
	}
	b := src(0, make([]byte, 1000))
	f, _ := fs.Open("ok.bin")
	want := f.(*memFile).content[5000:6000]
	if !bytes.Equal(b, want) {
		t.Error("striped source returned wrong range")
	}
	if size, got := s.StatReq(wire.Req{Name: "ok.bin", Stat: true}); !got || size != 10_000 {
		t.Errorf("StatReq = %d, %v", size, got)
	}
	if _, got := s.StatReq(wire.Req{Stat: true}); got {
		t.Error("anonymous stat accepted")
	}
}

func TestFileSinkLifecycle(t *testing.T) {
	dir := t.TempDir()
	var calls []bool
	sink := &FileSink{Dir: dir, MaxBytes: 1 << 20,
		OnDone: func(_ string, _ core.RecvResult, kept bool) { calls = append(calls, kept) }}

	// Satellite guard: degenerate push REQs are rejected up front, before
	// any file exists — mirroring the pull path's Bytes/Chunk check.
	for _, r := range []wire.Req{
		{Push: true, Bytes: 0, Chunk: 100},
		{Push: true, Bytes: 100, Chunk: 0},
		{Push: true, Bytes: 2 << 20, Chunk: 1000}, // over MaxBytes
	} {
		if _, _, ok := sink.SinkStream(r); ok {
			t.Errorf("degenerate push accepted: %+v", r)
		}
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatal("rejected pushes left files behind")
	}

	// A completed push keeps its file with the pushed bytes.
	put, done, ok := sink.SinkStream(wire.Req{Push: true, Bytes: 10, Chunk: 5})
	if !ok {
		t.Fatal("valid push rejected")
	}
	put(0, []byte("hello"))
	put(5, []byte("world"))
	done(core.RecvResult{Completed: true, Bytes: 10})
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("expected 1 stored file, found %d", len(ents))
	}
	b, _ := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if string(b) != "helloworld" {
		t.Errorf("stored %q", b)
	}

	// An aborted push closes and removes its partial file.
	put, done, ok = sink.SinkStream(wire.Req{Push: true, Bytes: 100, Chunk: 10})
	if !ok {
		t.Fatal("valid push rejected")
	}
	put(0, []byte("partial"))
	done(core.RecvResult{Completed: false, Bytes: 7})
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("aborted push not cleaned up: %d files", len(ents))
	}
	if want := []bool{true, false}; len(calls) != 2 || calls[0] != want[0] || calls[1] != want[1] {
		t.Errorf("OnDone kept flags = %v", calls)
	}

	// Verify-and-discard mode never touches the filesystem.
	discard := &FileSink{}
	put, done, ok = discard.SinkStream(wire.Req{Push: true, Bytes: 10, Chunk: 5})
	if !ok {
		t.Fatal("discard-mode push rejected")
	}
	put(0, []byte("hello"))
	done(core.RecvResult{Completed: true})
}
