package store

import (
	"os"
	"path/filepath"
	"testing"

	"blastlan/internal/core"
)

// The hot-path budget: a warm hit must cost close to what the seeded
// generator costs (the in-memory source the daemon's anonymous pulls use),
// or the cache would tax every warm transfer. Compare:
//
//	go test -bench 'Source' -benchtime 2s ./internal/store
func BenchmarkSeededSource(b *testing.B) {
	const chunk = 1000
	n := (64 << 20) / chunk
	src := core.SeededSource(1, 64<<20, chunk)
	dst := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src(i%n, dst)
	}
}

func BenchmarkHotSource(b *testing.B) {
	dir := b.TempDir()
	const chunk = 1000
	payload := core.SeededPayload(1, 64<<20, chunk)
	if err := os.WriteFile(filepath.Join(dir, "f"), payload, 0o644); err != nil {
		b.Fatal(err)
	}
	st := Open(dir, Options{})
	defer st.Close()
	src, err := st.Source("f", chunk, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	n := (64 << 20) / chunk
	dst := make([]byte, chunk)
	for i := 0; i < n; i++ {
		src(i, dst) // warm the cache
	}
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src(i%n, dst)
	}
}
