package store

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"

	"blastlan/internal/core"
	"blastlan/internal/disk"
)

// FS is the store's backing filesystem: the only thing the cache and
// read-ahead machinery know about where bytes come from. Two
// implementations matter — DirFS over a real directory for the daemon, and
// SimFS over seeded content with a modelled disk for the DES, where every
// read charges the serving host's virtual clock. That split is what makes
// the cache's behaviour (hit fan-out, eviction, read-ahead economy)
// testable deterministically.
type FS interface {
	// Open resolves a client-supplied object name. Implementations must
	// treat the name as hostile input (see DirFS).
	Open(name string) (File, error)
}

// File is one open object.
type File interface {
	// Size is the object's length in bytes, fixed for the file's lifetime.
	Size() int64

	// ReadAt fills p from offset off, exactly len(p) bytes unless the read
	// fails. env, when non-nil, is charged the read's cost on substrates
	// with modelled disks (SimFS spends virtual time via env.Compute);
	// real files ignore it — the kernel's clock charges itself.
	ReadAt(env core.Env, p []byte, off int64) (int, error)

	Close() error
}

// DirFS serves files from a directory root. Names use slash-separated
// io/fs syntax and are validated with fs.ValidPath, so "../", absolute
// paths and empty names never escape the root.
type DirFS struct{ root string }

// NewDirFS returns a DirFS rooted at dir.
func NewDirFS(dir string) *DirFS { return &DirFS{root: dir} }

func (d *DirFS) Open(name string) (File, error) {
	if !iofs.ValidPath(name) || name == "." {
		return nil, fmt.Errorf("store: invalid object name %q", name)
	}
	f, err := os.Open(filepath.Join(d.root, filepath.FromSlash(name)))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.IsDir() {
		f.Close()
		return nil, fmt.Errorf("store: %q is a directory", name)
	}
	return &osFile{f: f, size: st.Size()}, nil
}

type osFile struct {
	f    *os.File
	size int64
}

func (o *osFile) Size() int64 { return o.size }

func (o *osFile) ReadAt(_ core.Env, p []byte, off int64) (int, error) {
	n, err := o.f.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		err = nil // exact read ending at EOF
	}
	return n, err
}

func (o *osFile) Close() error { return o.f.Close() }

// SimFS is the DES filesystem: named objects with deterministic seeded
// content, read through a disk.Geometry timing model. A read continuing
// where the previous one ended pays the model's page-boundary cost (half a
// rotation plus transfer — the same accounting as disk.FileReadTime);
// anything else pays a full random access. A store with read-ahead R over
// chunk size c therefore reads a cold file in exactly
// FileReadTime(size, R*c): read-ahead IS the large-page economy the
// paper's introduction argues for, applied to the server's disk.
type SimFS struct {
	geo disk.Geometry

	mu    sync.Mutex
	files map[string]*simFile
}

// NewSimFS returns an empty simulated filesystem on the given disk.
func NewSimFS(g disk.Geometry) *SimFS {
	return &SimFS{geo: g, files: make(map[string]*simFile)}
}

// Add creates (or replaces) a simulated file with core.SeededPayload
// content, so clients can verify pulled bytes against the same generator.
func (s *SimFS) Add(name string, seed int64, size int) {
	content := core.SeededPayload(seed, size, 1024)
	s.mu.Lock()
	s.files[name] = &simFile{fs: s, content: content, lastEnd: -1}
	s.mu.Unlock()
}

func (s *SimFS) Open(name string) (File, error) {
	s.mu.Lock()
	f := s.files[name]
	s.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("store: no such simulated object %q", name)
	}
	return f, nil
}

type simFile struct {
	fs      *SimFS
	content []byte
	lastEnd int64 // end offset of the previous read; -1 = never read
}

func (f *simFile) Size() int64 { return int64(len(f.content)) }

func (f *simFile) ReadAt(env core.Env, p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(f.content)) {
		return 0, fmt.Errorf("store: simulated read at %d outside %d-byte object", off, len(f.content))
	}
	n := copy(p, f.content[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	if env != nil {
		g := f.fs.geo
		d := g.AccessTime(n)
		if off == f.lastEnd {
			// Sequential continuation: the head is past the data — pay the
			// page-boundary cost, not a seek (disk.FileReadTime's model).
			d = g.RotationPeriod/2 + g.SequentialTime(n)
		}
		env.Compute(d)
	}
	f.lastEnd = off + int64(n)
	return n, nil
}

func (f *simFile) Close() error { return nil }
