// Package simrun wires the protocol engines of internal/core to the
// discrete-event substrate of internal/sim: one call runs a complete
// sender/receiver pair over a simulated network and reports both sides'
// results, reproducing the paper's two-machine measurement set-up
// (§2.1.1) in virtual time.
package simrun

import (
	"fmt"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// Result bundles both sides of one simulated transfer.
type Result struct {
	Send core.SendResult
	Recv core.RecvResult
	// SendErr/RecvErr are the per-side errors (e.g. core.ErrGiveUp on a
	// hopeless loss rate); the transfer as a whole still simulates to
	// completion.
	SendErr error
	RecvErr error
	// Counters are the final interface counters of the two stations.
	SrcCounters sim.Counters
	DstCounters sim.Counters
	// Adv totals the events an Options.Adversary injected.
	Adv sim.AdvCounters
	// Collisions counts CSMA/CD collision events (MediumCSMACD only).
	Collisions int64
}

// Failed reports whether either side abandoned the transfer.
func (r Result) Failed() bool { return r.SendErr != nil || r.RecvErr != nil }

// Options configures a simulated transfer run.
type Options struct {
	Cost params.CostModel
	Loss params.LossModel
	Seed int64

	// Adversary, when active, installs a hostile-network model on the
	// deliver path (reordering, duplication, corruption, jitter, scripted
	// mangling — see params.Adversary), seeded from Seed independently of
	// the Loss process. It composes with Loss; scenario definitions usually
	// put all loss in Adversary.Loss and leave Loss zero.
	Adversary params.Adversary
	// Trace, if non-nil, receives activity spans for timeline rendering.
	Trace func(sim.Span)

	// Medium selects the arbitration discipline (default FIFO; set
	// sim.MediumCSMACD for the contention extension).
	Medium sim.MediumMode
	// BackgroundLoad, when positive, attaches a third-party traffic
	// generator offering this fraction of the link bandwidth (the paper's
	// excluded high-load regime). Requires MediumCSMACD to be meaningful.
	BackgroundLoad float64
	// BackgroundFrame is the background frame size (default 1024 bytes).
	BackgroundFrame int

	// DropFilter injects precisely targeted losses (see sim.Network).
	DropFilter func(pkt *wire.Packet, to *sim.Station) bool
}

// Transfer simulates one complete transfer and returns both sides' results.
// The returned error reports substrate-level failures (deadlock, panic,
// invalid models); protocol-level give-ups are reported in Result.
func Transfer(cfg core.Config, opt Options) (Result, error) {
	return TransferOn(sim.NewKernel(), cfg, opt)
}

// TransferOn runs the transfer on a caller-provided kernel, which is Reset
// first. Batch drivers (Sample) reuse one kernel per worker across thousands
// of trials so its event and waiter pools stay warm instead of being rebuilt
// per transfer.
func TransferOn(k *sim.Kernel, cfg core.Config, opt Options) (Result, error) {
	var res Result
	k.Reset()
	n, err := sim.NewNetwork(k, opt.Cost, opt.Loss, opt.Seed)
	if err != nil {
		return res, err
	}
	if opt.Adversary.Active() {
		if err := n.SetAdversary(opt.Adversary, opt.Seed); err != nil {
			return res, err
		}
	}
	n.Trace = opt.Trace
	n.Medium = opt.Medium
	n.DropFilter = opt.DropFilter
	src := n.AddStation("src")
	dst := n.AddStation("dst")

	var senderDone, recvDone bool
	k.Go("sender", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, src, dst)
		res.Send, res.SendErr = core.RunSender(env, cfg)
		senderDone = true
	})
	k.Go("receiver", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, dst, src)
		res.Recv, res.RecvErr = core.RunReceiver(env, cfg)
		recvDone = true
	})

	if opt.BackgroundLoad > 0 {
		frame := opt.BackgroundFrame
		if frame == 0 {
			frame = params.DataPacketSize
		}
		bg := n.AddStation("bg")
		sink := n.AddStation("sink")
		sink.SetSink()
		n.AddLoadGenerator(bg, sink, opt.BackgroundLoad, frame)
		// The generator never lets the event heap drain: drive the kernel
		// step by step until both protocol sides have finished.
		for !(senderDone && recvDone) {
			more, err := k.Step()
			if err != nil {
				return res, fmt.Errorf("simrun: %w", err)
			}
			if !more {
				return res, fmt.Errorf("simrun: event heap drained before completion")
			}
		}
	} else if err := k.Run(); err != nil {
		return res, fmt.Errorf("simrun: %w", err)
	}
	res.SrcCounters = src.Counters
	res.DstCounters = dst.Counters
	res.Adv = n.Adv
	res.Collisions = n.Collisions
	return res, nil
}
