package simrun

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
)

func sampleConfig() (core.Config, Options) {
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 200 * time.Millisecond,
	}
	opt := Options{
		Cost: params.VKernel(),
		Loss: params.LossModel{PNet: 5e-3},
		Seed: 42,
	}
	return cfg, opt
}

// TestSampleDeterministicAcrossGOMAXPROCS is the tentpole's contract: the
// parallel sampler must produce bit-identical stats no matter how many
// workers (or processors) execute the trials.
func TestSampleDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg, opt := sampleConfig()
	const n = 48

	prev := runtime.GOMAXPROCS(1)
	seq, err := Sample(cfg, opt, n)
	runtime.GOMAXPROCS(8)
	par, parErr := Sample(cfg, opt, n)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if parErr != nil {
		t.Fatal(parErr)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sampler output depends on GOMAXPROCS:\n 1: %+v\n 8: %+v", seq, par)
	}
}

// TestSampleWorkersMatchSequential pins the explicit-worker path to the
// sequential one across several worker counts, including workers > trials.
func TestSampleWorkersMatchSequential(t *testing.T) {
	cfg, opt := sampleConfig()
	const n = 24
	want, err := SampleWorkers(cfg, opt, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.Elapsed.N() == 0 {
		t.Fatal("sequential sample produced no successful trials")
	}
	for _, workers := range []int{2, 3, 7, 64} {
		got, err := SampleWorkers(cfg, opt, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged:\nwant %+v\ngot  %+v", workers, want, got)
		}
	}
}

// TestSampleMatchesSequentialTransfers checks the sampler against hand-rolled
// sequential Transfer calls with the same per-trial seeds — the pre-sampler
// desSample loop.
func TestSampleMatchesSequentialTransfers(t *testing.T) {
	cfg, opt := sampleConfig()
	const n = 16
	st, err := Sample(cfg, opt, n)
	if err != nil {
		t.Fatal(err)
	}
	var wantMean time.Duration
	var count int64
	for i := 0; i < n; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		res, err := Transfer(cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			continue
		}
		wantMean += res.Send.Elapsed
		count++
	}
	if st.Elapsed.N() != count {
		t.Fatalf("sampler saw %d successes, sequential loop %d", st.Elapsed.N(), count)
	}
	if count > 0 {
		want := time.Duration(int64(wantMean) / count)
		if got := st.Elapsed.Mean(); got < want-time.Microsecond || got > want+time.Microsecond {
			t.Fatalf("mean mismatch: sampler %v, sequential %v", got, want)
		}
	}
}

// TestTransferOnReuse drives many trials through one kernel and checks each
// matches a fresh-kernel run, exercising Reset and the event/job pools.
func TestTransferOnReuse(t *testing.T) {
	cfg, opt := sampleConfig()
	k := sim.NewKernel()
	for i := 0; i < 8; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		reused, err := TransferOn(k, cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Transfer(cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Fatalf("trial %d: reused kernel diverged from fresh kernel:\nreused %+v\nfresh  %+v", i, reused, fresh)
		}
	}
}
