package simrun

import (
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/disk"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/store"
	"blastlan/internal/transport"
)

// DiskLoadScenario is the disk-economy experiment on the DES: N clients pull
// the same named file from one simulated server whose reads go through the
// disk-backed store — the sharded hot-object cache, single-flight fills and
// batched read-ahead of internal/store — over a modelled disk
// (disk.Geometry). The first reader pays the platter's price in virtual
// time; everyone overlapping or following hits the cache, so the scenario
// measures exactly the paper's argument about accessing the disk in large
// quantities: how many disk reads does a fleet of pullers actually cost?
//
// Every client stats the object first (the named-pull handshake blastcp
// -get uses), then pulls it by name. The whole run is deterministic: same
// seed, same bits, including the store's counters and every virtual
// timestamp.
type DiskLoadScenario struct {
	// Name labels the scenario in test output and experiment tables.
	Name string
	// Cost is the simulator network model; the zero value means the
	// modern-gigabit preset.
	Cost params.CostModel
	// Disk is the serving host's disk model; the zero value means the
	// paper-era Fujitsu Eagle.
	Disk disk.Geometry
	// N is the number of clients (default 4), all pulling the same file.
	N int
	// FileBytes is the served file's size (default 1 MiB).
	FileBytes int
	// Chunk is the data packet size (default params.DataPacketSize).
	Chunk int
	// Window splits blasts (0: single blast per transfer).
	Window int
	// Tr is the clients' retransmission timeout (default 100 ms virtual).
	Tr time.Duration
	// Spacing staggers the clients deterministically: client i arrives at
	// i*Spacing. Zero means everyone arrives at t=0 — the thundering herd
	// against one cold cache.
	Spacing time.Duration
	// Concurrency is the server's session cap (default 4).
	Concurrency int
	// CacheBytes is the store's hot-object cache budget (0: store default).
	// Size it below FileBytes to watch CLOCK eviction under pressure.
	CacheBytes int64
	// ReadAhead is the store's read-ahead window in chunks (0: store
	// default; negative disables). On the DES a cold miss reads the whole
	// window as one span — one disk access charged like a single large page.
	ReadAhead int
	// Seed drives the file's content and the network model's randomness.
	Seed int64
}

// diskLoadObject is the one file every client pulls.
const diskLoadObject = "data.bin"

func (sc DiskLoadScenario) withDefaults() DiskLoadScenario {
	if sc.Cost.BandwidthBitsPerSec == 0 {
		sc.Cost = params.ModernGigabit()
	}
	if sc.Disk.RotationPeriod == 0 {
		sc.Disk = disk.FujitsuEagle()
	}
	if sc.N <= 0 {
		sc.N = 4
	}
	if sc.FileBytes <= 0 {
		sc.FileBytes = 1 << 20
	}
	if sc.Chunk == 0 {
		sc.Chunk = params.DataPacketSize
	}
	if sc.Tr == 0 {
		sc.Tr = 100 * time.Millisecond
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 4
	}
	return sc
}

// DiskLoadClient is one client's end-to-end outcome.
type DiskLoadClient struct {
	Client     int
	Arrival    time.Duration // scheduled arrival (virtual)
	Start      time.Duration // stat issued (virtual)
	End        time.Duration // transfer complete (virtual)
	Elapsed    time.Duration // End - Start: stat + queueing + transfer
	StatBytes  int64         // size the stat reply reported
	Completed  bool
	ChecksumOK bool
	Err        string
}

// MBps is the client's end-to-end virtual throughput.
func (r DiskLoadClient) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.StatBytes) / r.Elapsed.Seconds() / 1e6
}

// DiskLoadResult reports one disk-load run.
type DiskLoadResult struct {
	Clients   []DiskLoadClient
	Served    int           // transfers the server completed
	Completed int           // clients that finished with an intact payload
	Makespan  time.Duration // first arrival to last completion (virtual)
	// Store is the store's counter snapshot after the run: the experiment's
	// headline numbers. With a cache at least file-sized, ChunkReads equals
	// the file's chunk count no matter how many clients pulled — one pass
	// over the platter for the whole fleet — and ReadOps shows how few disk
	// accesses the batched read-ahead folded that pass into.
	Store store.Stats
}

// Run executes the scenario once on a fresh kernel, server and store.
func (sc DiskLoadScenario) Run() (DiskLoadResult, error) {
	sc = sc.withDefaults()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, sc.Cost, params.LossModel{}, sc.Seed)
	if err != nil {
		return DiskLoadResult{}, err
	}
	serverSt := n.AddStation("server")

	fs := store.NewSimFS(sc.Disk)
	fs.Add(diskLoadObject, sc.Seed, sc.FileBytes)
	st := store.New(fs, store.Options{
		Sim:        true,
		CacheBytes: sc.CacheBytes,
		ReadAhead:  sc.ReadAhead,
	})
	srv := &session.Server{
		Concurrency: sc.Concurrency,
		Idle:        time.Duration(sc.N)*sc.Spacing + 5*time.Minute,
		SourceEnv:   st.SourceReq,
		Stat:        st.StatReq,
	}
	var srvErr error
	sim.Serve(n, serverSt, func(l *sim.Listener) { srvErr = srv.Run(l) })

	want := core.TransferChecksum(core.SeededPayload(sc.Seed, sc.FileBytes, 1024))
	results := make([]DiskLoadClient, sc.N)
	k.Go("diskload", func(p *sim.Proc) {
		f := &sim.Fabric{Net: n, Server: serverSt, P: p}
		f.Fan(sc.N, func(i int, c transport.Client) error {
			r := &results[i]
			r.Client = i
			r.Arrival = time.Duration(i) * sc.Spacing
			c.Compute(r.Arrival)
			cfg := core.Config{
				TransferID:     uint32(i + 1),
				ChunkSize:      sc.Chunk,
				Protocol:       core.Blast,
				Strategy:       core.Selective,
				Window:         sc.Window,
				RetransTimeout: sc.Tr,
			}
			r.Start = c.Now()
			size, err := core.Stat(c, cfg, diskLoadObject)
			if err != nil {
				r.Err = fmt.Sprintf("stat: %v", err)
				return err
			}
			r.StatBytes = size
			cfg.Name, cfg.Bytes = diskLoadObject, int(size)
			res, err := core.Request(c, cfg)
			r.End = c.Now()
			r.Elapsed = r.End - r.Start
			if err != nil {
				r.Err = err.Error()
				return err
			}
			r.Completed = res.Completed
			r.ChecksumOK = res.Completed && res.Checksum == want
			return nil
		})
	})
	if err := k.Run(); err != nil {
		return DiskLoadResult{}, fmt.Errorf("simrun: diskload %s: %w", sc.Name, err)
	}
	if srvErr != nil {
		return DiskLoadResult{}, fmt.Errorf("simrun: diskload %s server: %w", sc.Name, srvErr)
	}

	out := DiskLoadResult{Clients: results, Served: srv.Served(), Store: st.Stats()}
	var first, last time.Duration = -1, 0
	for i := range results {
		r := &results[i]
		if first < 0 || r.Arrival < first {
			first = r.Arrival
		}
		if r.End > last {
			last = r.End
		}
		if r.Completed && r.ChecksumOK {
			out.Completed++
		}
	}
	if first < 0 {
		first = 0
	}
	out.Makespan = last - first
	return out, nil
}
