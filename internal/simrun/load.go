package simrun

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/stats"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// LoadScenario is a DES-backed many-client load experiment: N seeded
// clients with staggered arrivals and a mixed size/strategy workload all
// pull from one sharded simulated server running the shared session layer
// (internal/session) — the same demux loop, session table and handlers
// that serve real UDP traffic. Because the whole thing runs under the
// kernel's handoff scheduling, scale behaviour that is unmeasurable on a
// real network — session-cap REQ drops, shard contention, many-client
// fairness — reproduces bit for bit at any worker count.
type LoadScenario struct {
	// Name labels the scenario in test output and experiment tables.
	Name string
	// Cost is the simulator hardware model; the zero value means the
	// modern-gigabit preset (a load experiment wants a fast fabric).
	Cost params.CostModel
	// N is the number of clients (default 8).
	N int
	// Bytes is the transfer-size mix; each client draws one entry
	// (seeded). Default {64 KB}.
	Bytes []int
	// Strategies is the blast retransmission-strategy mix; each client
	// draws one entry. Default {GoBackN}.
	Strategies []core.Strategy
	// Chunk is the data packet size (default params.DataPacketSize).
	Chunk int
	// Window splits blasts (0: single blast per transfer).
	Window int
	// Tr is the clients' retransmission timeout (default 100 ms virtual).
	Tr time.Duration
	// Arrival staggers the clients: client arrivals are drawn uniformly
	// from [0, Arrival). Zero means everyone arrives at t=0 — the
	// thundering herd.
	Arrival time.Duration
	// Concurrency is the server's session cap (default GOMAXPROCS-like 4);
	// clients beyond it are dropped at REQ time and recover by retrying.
	Concurrency int
	// Controller names the rate-control policy every client's REQ asks the
	// server to drive its blast with (core.Config.Controller → the policy
	// byte of the handshake). Empty means the fixed schedule.
	Controller string
	// ClientController, when non-nil, returns client i's policy name and
	// overrides Controller — a mixed-policy contention experiment (empty:
	// fixed schedule).
	ClientController func(i int) string
	// Adversary, when active, is installed per client (station-scoped, so
	// one client's traffic cannot perturb another's decision stream),
	// client i seeded Seed+i. ClientAdversary overrides it per client.
	Adversary params.Adversary
	// ClientAdversary, when non-nil, returns client i's adversary (an
	// inactive adversary leaves the client clean).
	ClientAdversary func(i int) params.Adversary
	// Seed drives every stochastic choice (sizes, strategies, arrivals,
	// adversaries). Trial t of Sample uses Seed+t.
	Seed int64
	// Trials is the Sample batch size (default 1).
	Trials int
}

// withLoadDefaults fills the zero fields.
func (sc LoadScenario) withLoadDefaults() LoadScenario {
	if sc.Cost.BandwidthBitsPerSec == 0 {
		sc.Cost = params.ModernGigabit()
	}
	if sc.N <= 0 {
		sc.N = 8
	}
	if len(sc.Bytes) == 0 {
		sc.Bytes = []int{64 << 10}
	}
	if len(sc.Strategies) == 0 {
		sc.Strategies = []core.Strategy{core.GoBackN}
	}
	if sc.Chunk == 0 {
		sc.Chunk = params.DataPacketSize
	}
	if sc.Tr == 0 {
		sc.Tr = 100 * time.Millisecond
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 4
	}
	if sc.Trials <= 0 {
		sc.Trials = 1
	}
	return sc
}

// LoadClientResult is one client's end-to-end outcome.
type LoadClientResult struct {
	Client     int
	TransferID uint32
	Bytes      int
	Strategy   core.Strategy
	Controller string        // rate-control policy the client requested
	Arrival    time.Duration // scheduled arrival (virtual)
	Start      time.Duration // request issued (virtual)
	End        time.Duration // transfer complete (virtual)
	Elapsed    time.Duration // End - Start: queueing + transfer
	Completed  bool
	ChecksumOK bool
	// Counts combines the client's receiver-side counters with the server
	// session's sender-side ones (DataSent/Retransmits, from the Done
	// hook), so one struct captures the whole conversation.
	Counts Counts
	Err    string
}

// MBps is the client's end-to-end virtual throughput.
func (r LoadClientResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// LoadResult reports one load-scenario run.
type LoadResult struct {
	Clients   []LoadClientResult
	Served    int           // transfers the server completed
	Completed int           // clients that finished with an intact payload
	Makespan  time.Duration // first arrival to last completion (virtual)
	AggBytes  int64         // payload bytes delivered across all clients
	Agg       Counts        // summed per-client counts
	// Fairness is Jain's index over completed clients' end-to-end
	// throughputs: 1.0 = perfectly even service, 1/n = one client hogged
	// the server.
	Fairness float64
}

// jain computes Jain's fairness index over xs (1 for empty input).
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// loadClientSpec is one client's pre-drawn workload.
type loadClientSpec struct {
	bytes      int
	strategy   core.Strategy
	controller string
	arrival    time.Duration
	adv        params.Adversary
	advSeed    int64
}

// specs draws every client's workload up front, in index order, so the
// scenario is a pure function of its seed.
func (sc LoadScenario) specs() []loadClientSpec {
	rng := rand.New(rand.NewSource(sc.Seed*-3751637671895480951 + 7046029254386353131))
	out := make([]loadClientSpec, sc.N)
	for i := range out {
		s := &out[i]
		s.bytes = sc.Bytes[rng.Intn(len(sc.Bytes))]
		s.strategy = sc.Strategies[rng.Intn(len(sc.Strategies))]
		if sc.Arrival > 0 {
			s.arrival = time.Duration(rng.Int63n(int64(sc.Arrival)))
		}
		s.controller = sc.Controller
		if sc.ClientController != nil {
			s.controller = sc.ClientController(i)
		}
		s.adv = sc.Adversary
		if sc.ClientAdversary != nil {
			s.adv = sc.ClientAdversary(i)
		}
		s.advSeed = sc.Seed + int64(i)
	}
	return out
}

// Run executes the scenario once: one kernel, one sharded server process,
// N client processes. The result is deterministic — same seed, same bits —
// regardless of GOMAXPROCS, because every process runs under the kernel's
// handoff scheduling.
func (sc LoadScenario) Run() (LoadResult, error) {
	sc = sc.withLoadDefaults()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, sc.Cost, params.LossModel{}, sc.Seed)
	if err != nil {
		return LoadResult{}, err
	}
	serverSt := n.AddStation("server")
	specs := sc.specs()

	// The server streams seeded chunks, exactly like blastd: a pull of B
	// bytes is generated from seed B, so the client can verify the payload
	// without the server materialising it.
	serverStats := make(map[uint32]session.TransferStats, sc.N)
	srv := &session.Server{
		Concurrency: sc.Concurrency,
		// Virtual idle: generous enough to outlive the full arrival window
		// plus service; it only delays the (free) virtual clock at the end.
		Idle: sc.Arrival + 5*time.Minute,
		Source: func(r wire.Req) (core.ChunkSource, bool) {
			if r.Bytes == 0 || r.Chunk == 0 {
				return nil, false
			}
			stream := int(r.StreamBytes())
			return core.OffsetSource(
				core.SeededSource(int64(stream), stream, int(r.Chunk)),
				int(r.OffsetChunks)), true
		},
		Done: func(ts session.TransferStats) { serverStats[ts.TransferID] = ts },
	}
	var srvErr error
	sim.Serve(n, serverSt, func(l *sim.Listener) { srvErr = srv.Run(l) })

	results := make([]LoadClientResult, sc.N)
	k.Go("load", func(p *sim.Proc) {
		f := &sim.Fabric{
			Net:    n,
			Server: serverSt,
			P:      p,
			Prepare: func(i int, st *sim.Station) error {
				if !specs[i].adv.Active() {
					return nil
				}
				return st.SetAdversary(specs[i].adv, specs[i].advSeed)
			},
		}
		// Per-client errors are recorded in results[i].Err; Fan's error
		// slice would only duplicate them.
		f.Fan(sc.N, func(i int, c transport.Client) error {
			s := specs[i]
			r := &results[i]
			r.Client, r.Bytes, r.Strategy, r.Arrival = i, s.bytes, s.strategy, s.arrival
			r.Controller = s.controller
			r.TransferID = uint32(i + 1)
			c.Compute(s.arrival) // staggered arrival
			cfg := core.Config{
				TransferID:     r.TransferID,
				Bytes:          s.bytes,
				ChunkSize:      sc.Chunk,
				Protocol:       core.Blast,
				Strategy:       s.strategy,
				Window:         sc.Window,
				Controller:     s.controller,
				RetransTimeout: sc.Tr,
			}
			r.Start = c.Now()
			res, err := core.Request(c, cfg)
			r.End = c.Now()
			r.Elapsed = r.End - r.Start
			if err != nil {
				r.Err = err.Error()
				return err
			}
			r.Completed = res.Completed
			r.ChecksumOK = res.Completed &&
				res.Checksum == core.TransferChecksum(core.SeededPayload(int64(s.bytes), s.bytes, sc.Chunk))
			r.Counts = Counts{
				DataRecv:   res.DataPackets - res.LingerEvents,
				Duplicates: res.Duplicates - res.LingerEvents,
				AcksOut:    res.AcksSent - res.LingerAcks,
				NaksOut:    res.NaksSent - res.LingerNaks,
			}
			return nil
		})
	})
	if err := k.Run(); err != nil {
		return LoadResult{}, fmt.Errorf("simrun: load %s: %w", sc.Name, err)
	}
	if srvErr != nil {
		return LoadResult{}, fmt.Errorf("simrun: load %s server: %w", sc.Name, srvErr)
	}

	out := LoadResult{Clients: results, Served: srv.Served()}
	var rates []float64
	var first, last time.Duration = -1, 0
	for i := range results {
		r := &results[i]
		if ts, ok := serverStats[r.TransferID]; ok {
			r.Counts.DataSent = ts.Packets
			r.Counts.Retransmits = ts.Retransmits
		}
		if first < 0 || r.Arrival < first {
			first = r.Arrival
		}
		if r.End > last {
			last = r.End
		}
		out.Agg.DataSent += r.Counts.DataSent
		out.Agg.Retransmits += r.Counts.Retransmits
		out.Agg.DataRecv += r.Counts.DataRecv
		out.Agg.Duplicates += r.Counts.Duplicates
		out.Agg.AcksOut += r.Counts.AcksOut
		out.Agg.NaksOut += r.Counts.NaksOut
		if r.Completed && r.ChecksumOK {
			out.Completed++
			out.AggBytes += int64(r.Bytes)
			if r.Elapsed > 0 {
				rates = append(rates, r.MBps())
			}
		}
	}
	if first < 0 {
		first = 0
	}
	out.Makespan = last - first
	out.Fairness = jain(rates)
	return out, nil
}

// LoadStats merges a batch of independent seeded load trials, folded
// strictly in trial-index order so the result is bit-identical at any
// worker count.
type LoadStats struct {
	Trials    int
	Makespan  stats.Durations
	Served    int64
	Completed int64
	DataSent  int64
	Retrans   int64
	// FairnessMean averages Jain's index across trials.
	FairnessMean float64
}

// Sample runs the scenario's Trials independent instances (trial t seeded
// Seed+t) fanned across workers (0 or negative: GOMAXPROCS via the same
// convention as SampleWorkers), merging in index order.
func (sc LoadScenario) Sample(workers int) (LoadStats, error) {
	sc = sc.withLoadDefaults()
	n := sc.Trials
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if sc.ClientAdversary != nil || sc.ClientController != nil || sc.Adversary.Script != nil {
		workers = 1 // callback hooks are not goroutine-safe
	}
	results := make([]LoadResult, n)
	errs := make([]error, n)
	worker := func(w int) {
		for t := w; t < n; t += workers {
			s := sc
			s.Seed = sc.Seed + int64(t)
			results[t], errs[t] = s.Run()
		}
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	var agg LoadStats
	var fairSum float64
	for t := 0; t < n; t++ {
		if errs[t] != nil {
			return agg, errs[t]
		}
		r := results[t]
		agg.Trials++
		agg.Makespan.Add(r.Makespan)
		agg.Served += int64(r.Served)
		agg.Completed += int64(r.Completed)
		agg.DataSent += int64(r.Agg.DataSent)
		agg.Retrans += int64(r.Agg.Retransmits)
		fairSum += r.Fairness
	}
	if agg.Trials > 0 {
		agg.FairnessMean = fairSum / float64(agg.Trials)
	}
	return agg, nil
}
