package simrun

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// udpAvailable reports whether loopback sockets work in this environment.
func udpAvailable() bool {
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return false
	}
	c.Close()
	return true
}

// batchSizes is the grid the batched datapath is pinned at: 1 is the
// single-syscall reference geometry, 4 forces multiple flushes per window,
// 32 holds a whole 16-packet window in one flush.
var batchSizes = []int{1, 4, 32}

// TestBatchedPathConformance reruns the scripted hostile-network scenarios
// of TestCrossSubstrateConformance over the batched UDP datapath and
// asserts identical protocol counters and byte-identical payloads against
// both the unbatched UDP reference run and the discrete-event simulator —
// the contract that syscall batching is invisible to the protocol, even
// while the adversary drops, corrupts, duplicates and reorders frames.
func TestBatchedPathConformance(t *testing.T) {
	if !udpAvailable() {
		t.Skip("no UDP loopback")
	}
	payload := advPayload(16000, 9)
	baseCfg := func(p core.Protocol, s core.Strategy) core.Config {
		return core.Config{
			TransferID:     1,
			Bytes:          len(payload),
			ChunkSize:      1000, // 16 packets
			Protocol:       p,
			Strategy:       s,
			RetransTimeout: 500 * time.Millisecond,
			MaxAttempts:    50,
			Linger:         150 * time.Millisecond,
			ReceiverIdle:   2 * time.Second,
			Payload:        payload,
		}
	}
	cases := []struct {
		name   string
		cfg    core.Config
		script func(*wire.Packet) params.Mangle
	}{
		{"blast/full-nak", baseCfg(core.Blast, core.FullNak), hostileNakScript},
		{"blast/go-back-n", baseCfg(core.Blast, core.GoBackN), hostileNakScript},
		{"blast/selective", baseCfg(core.Blast, core.Selective), hostileNakScript},
		{"blast/go-back-n-adjacent", baseCfg(core.Blast, core.GoBackN), hostileAdjacentScript},
		{"blast/full-no-nak", baseCfg(core.Blast, core.FullNoNak), hostileLosslessScript},
		{"saw", baseCfg(core.StopAndWait, core.GoBackN), sawDupScript},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := Scenario{
				Name:      c.name,
				Adversary: params.Adversary{Script: c.script},
				Config:    c.cfg,
				Seed:      7,
			}
			simOut, err := sc.RunSim()
			if err != nil {
				t.Fatal(err)
			}
			refOut, err := sc.RunUDP() // Batch: 0 — the single-syscall path
			if err != nil {
				t.Fatal(err)
			}
			if refOut.Counts != simOut.Counts {
				t.Fatalf("unbatched UDP reference diverges from sim:\nsim %+v\nudp %+v", simOut.Counts, refOut.Counts)
			}
			for _, b := range batchSizes {
				bsc := sc
				bsc.Batch = b
				out, err := bsc.RunUDP()
				if err != nil {
					t.Fatalf("batch=%d: %v", b, err)
				}
				if !out.Completed || !out.IntactPayload(payload) {
					t.Errorf("batch=%d: completed=%v intact=%v", b, out.Completed, out.IntactPayload(payload))
				}
				if out.Counts != refOut.Counts {
					t.Errorf("batch=%d counters diverge from single-syscall path:\nref   %+v\nbatch %+v", b, refOut.Counts, out.Counts)
				}
			}
		})
	}
}

// TestBatchedPathPropertyGrid exercises {saw, sw, blast×4} × {reorder, dup,
// corrupt, jitter} seeded adversaries over the batched UDP path at batch
// sizes 1, 4 and 32: every grid point must complete with a byte-identical
// payload hash at every batch size. (Counters are timing-dependent under
// seeded adversaries on a wall clock, so — as in the cross-substrate seeded
// test — payload integrity and completion are the pinned properties here;
// the scripted conformance test above pins counters.)
func TestBatchedPathPropertyGrid(t *testing.T) {
	if !udpAvailable() {
		t.Skip("no UDP loopback")
	}
	if testing.Short() {
		t.Skip("wall-clock grid")
	}
	kinds := []struct {
		name string
		adv  params.Adversary
	}{
		{"reorder", params.Adversary{ReorderProb: 0.10, ReorderDepth: 3}},
		{"duplicate", params.Adversary{DuplicateProb: 0.10}},
		{"corrupt", params.Adversary{CorruptProb: 0.06}},
		{"jitter", params.Adversary{JitterMax: 500 * time.Microsecond}},
	}
	variants := []struct {
		name  string
		proto core.Protocol
		strat core.Strategy
	}{
		{"saw", core.StopAndWait, core.GoBackN},
		{"sw", core.SlidingWindow, core.GoBackN},
		{"blast-full-no-nak", core.Blast, core.FullNoNak},
		{"blast-full-nak", core.Blast, core.FullNak},
		{"blast-go-back-n", core.Blast, core.GoBackN},
		{"blast-selective", core.Blast, core.Selective},
	}
	payload := advPayload(8000, 13)
	for _, k := range kinds {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", k.name, v.name), func(t *testing.T) {
				cfg := core.Config{
					TransferID:     1,
					Bytes:          len(payload),
					ChunkSize:      1000,
					Protocol:       v.proto,
					Strategy:       v.strat,
					RetransTimeout: 100 * time.Millisecond,
					MaxAttempts:    300,
					// The linger must outlive Tr: a reorder hold can complete
					// the receiver silently (full-no-nak never acks a gap-fill),
					// and the ack then rides the sender's timeout retransmission
					// — which must still find the receiver alive.
					Linger:       300 * time.Millisecond,
					ReceiverIdle: 2 * time.Second,
					Payload:      payload,
				}
				for _, b := range batchSizes {
					sc := Scenario{
						Name:      k.name + "/" + v.name,
						Adversary: k.adv,
						Config:    cfg,
						Seed:      int64(len(k.name)*31 + len(v.name)),
						Batch:     b,
					}
					out, err := sc.RunUDP()
					if err != nil {
						t.Fatalf("batch=%d: %v", b, err)
					}
					if !out.Completed {
						t.Errorf("batch=%d: incomplete", b)
					}
					if !out.IntactPayload(payload) {
						t.Errorf("batch=%d: payload hash differs", b)
					}
				}
			})
		}
	}
}

// TestBatchedSeededAdversaryIdenticalPayload is the acceptance scenario on
// the batched path: one seeded adversary combining loss, reorder depth ≥ 2,
// duplication, corruption and jitter must deliver byte-identical payloads
// at every batch size, for all four blast strategies.
func TestBatchedSeededAdversaryIdenticalPayload(t *testing.T) {
	if !udpAvailable() {
		t.Skip("no UDP loopback")
	}
	adv := params.Adversary{
		Loss:          params.LossModel{PNet: 0.01},
		ReorderProb:   0.05,
		ReorderDepth:  2,
		DuplicateProb: 0.04,
		CorruptProb:   0.03,
		JitterMax:     300 * time.Microsecond,
	}
	payload := advPayload(16000, 3)
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		t.Run(s.String(), func(t *testing.T) {
			for _, b := range batchSizes {
				sc := Scenario{
					Name:      "batched-seeded-" + s.String(),
					Adversary: adv,
					Config: core.Config{
						TransferID:     1,
						Bytes:          len(payload),
						ChunkSize:      1000,
						Protocol:       core.Blast,
						Strategy:       s,
						RetransTimeout: 80 * time.Millisecond,
						MaxAttempts:    200,
						Linger:         120 * time.Millisecond,
						ReceiverIdle:   3 * time.Second,
						Payload:        payload,
					},
					Seed:  int64(s) + 11,
					Batch: b,
				}
				out, err := sc.RunUDP()
				if err != nil {
					t.Fatalf("batch=%d: %v", b, err)
				}
				if !bytes.Equal(out.Data, payload) {
					t.Errorf("batch=%d: payload corrupted", b)
				}
			}
		})
	}
}
