package simrun

import (
	"runtime"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/sim"
	"blastlan/internal/stats"
)

// Stats summarises a batch of independent seeded transfers: the experiment
// harness regenerates every stochastic figure point from one of these.
type Stats struct {
	// Elapsed accumulates the sender elapsed time of every successful trial.
	Elapsed stats.Durations
	// Failures counts trials where either side abandoned the transfer
	// (core.ErrGiveUp); failed trials contribute to no other field.
	Failures int
	// Retransmits and DataPackets total the sender-side packet counters of
	// the successful trials.
	Retransmits int64
	DataPackets int64
}

// Sample runs n independent transfers of cfg, with trial i seeded
// opt.Seed+i, fanned across GOMAXPROCS workers, and merges the results.
// The output is bit-identical to a sequential run of the same trials: every
// trial is deterministic given its seed, and the merge folds trials in index
// order regardless of which worker ran them.
func Sample(cfg core.Config, opt Options, n int) (Stats, error) {
	return SampleWorkers(cfg, opt, n, 0)
}

// SampleWorkers is Sample with an explicit worker count (0 or negative
// means GOMAXPROCS). Options carrying callbacks (Trace, DropFilter, an
// Adversary script) are not goroutine-safe and force a single worker; the
// Adversary's probabilistic knobs are per-trial state and parallelise fully.
func SampleWorkers(cfg core.Config, opt Options, n, workers int) (Stats, error) {
	var agg Stats
	if n <= 0 {
		return agg, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if opt.Trace != nil || opt.DropFilter != nil || opt.Adversary.Script != nil {
		workers = 1
	}

	type trial struct {
		elapsed     time.Duration
		retransmits int
		dataPackets int
		failed      bool
		err         error
	}
	trials := make([]trial, n)
	worker := func(w int) {
		// One kernel per worker, Reset between trials: pools stay warm.
		k := sim.NewKernel()
		for i := w; i < n; i += workers {
			o := opt
			o.Seed = opt.Seed + int64(i)
			res, err := TransferOn(k, cfg, o)
			if err != nil {
				// A substrate error (deadlock, panic) can leave processes
				// blocked, so the kernel no longer satisfies Reset's quiesce
				// precondition — and the merge loop discards everything after
				// the first error anyway. Stop this worker.
				trials[i].err = err
				return
			}
			if res.Failed() {
				trials[i].failed = true
				continue
			}
			trials[i].elapsed = res.Send.Elapsed
			trials[i].retransmits = res.Send.Retransmits
			trials[i].dataPackets = res.Send.DataPackets
		}
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}

	// Merge strictly in trial-index order so the accumulated moments are
	// identical no matter how the trials were scheduled.
	for i := range trials {
		t := &trials[i]
		if t.err != nil {
			return agg, t.err
		}
		if t.failed {
			agg.Failures++
			continue
		}
		agg.Elapsed.Add(t.elapsed)
		agg.Retransmits += int64(t.retransmits)
		agg.DataPackets += int64(t.dataPackets)
	}
	return agg, nil
}
