package simrun

import (
	"testing"
	"testing/quick"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// Targeted fault injection: drop exactly the first positive acknowledgement
// of a blast. The sender must time out, retransmit the sequence (FullNoNak
// has no other recovery), and the lingering receiver must re-acknowledge.
func TestDropExactlyTheFinalAck(t *testing.T) {
	cfg := paper64K(core.Blast, core.FullNoNak)
	acksSeen := 0
	res, err := Transfer(cfg, Options{
		Cost: params.VKernel(),
		DropFilter: func(pkt *wire.Packet, to *sim.Station) bool {
			if pkt.Type == wire.TypeAck {
				acksSeen++
				return acksSeen == 1 // lose only the first ack
			}
			return false
		},
	})
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr, res.RecvErr)
	}
	if res.Send.Timeouts != 1 {
		t.Errorf("timeouts = %d, want exactly 1", res.Send.Timeouts)
	}
	if res.Send.Retransmits != 64 {
		t.Errorf("retransmits = %d, want the full sequence (64)", res.Send.Retransmits)
	}
	if res.Recv.LingerEvents == 0 {
		t.Error("the retransmitted round must be handled by the lingering receiver")
	}
	// Elapsed ≈ 2 rounds + Tr.
	want := 2*(64*(params.VKernel().C()+params.VKernel().T())) + cfg.RetransTimeout
	if res.Send.Elapsed < want || res.Send.Elapsed > want+10*time.Millisecond {
		t.Errorf("elapsed %v, want ≈ %v", res.Send.Elapsed, want)
	}
}

// Drop exactly one mid-sequence data packet: go-back-n must resend the
// suffix, selective only the single packet.
func TestDropExactlyOneDataPacket(t *testing.T) {
	dropSeq5 := func() func(pkt *wire.Packet, to *sim.Station) bool {
		dropped := false
		return func(pkt *wire.Packet, to *sim.Station) bool {
			if !dropped && pkt.Type == wire.TypeData && pkt.Seq == 5 {
				dropped = true
				return true
			}
			return false
		}
	}

	gbn, err := Transfer(paper64K(core.Blast, core.GoBackN),
		Options{Cost: params.VKernel(), DropFilter: dropSeq5()})
	if err != nil || gbn.Failed() {
		t.Fatal(err, gbn.SendErr)
	}
	// Go-back-n resends 5..63: 59 packets.
	if gbn.Send.Retransmits != 59 {
		t.Errorf("go-back-n retransmits = %d, want 59", gbn.Send.Retransmits)
	}
	if gbn.Recv.Duplicates != 58 { // 6..63 arrive twice
		t.Errorf("go-back-n dups = %d, want 58", gbn.Recv.Duplicates)
	}

	sel, err := Transfer(paper64K(core.Blast, core.Selective),
		Options{Cost: params.VKernel(), DropFilter: dropSeq5()})
	if err != nil || sel.Failed() {
		t.Fatal(err, sel.SendErr)
	}
	if sel.Send.Retransmits != 1 {
		t.Errorf("selective retransmits = %d, want 1", sel.Send.Retransmits)
	}
	if sel.Recv.Duplicates != 0 {
		t.Errorf("selective dups = %d, want 0", sel.Recv.Duplicates)
	}
	// §3.2.4's quantitative comparison on this exact scenario.
	if sel.Send.Elapsed >= gbn.Send.Elapsed {
		t.Errorf("selective %v should beat go-back-n %v here", sel.Send.Elapsed, gbn.Send.Elapsed)
	}
}

// Drop the FlagLast packet itself: R3 retries only the reliable last.
func TestDropReliableLast(t *testing.T) {
	dropped := 0
	res, err := Transfer(paper64K(core.Blast, core.GoBackN), Options{
		Cost: params.VKernel(),
		DropFilter: func(pkt *wire.Packet, to *sim.Station) bool {
			if pkt.Type == wire.TypeData && pkt.IsLast() && dropped < 2 {
				dropped++
				return true // lose the reliable last twice
			}
			return false
		},
	})
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr)
	}
	// Only the last packet is retried — twice — not the window.
	if res.Send.Retransmits != 2 {
		t.Errorf("retransmits = %d, want 2 (reliable-last only)", res.Send.Retransmits)
	}
	if res.Send.Timeouts != 2 {
		t.Errorf("timeouts = %d, want 2", res.Send.Timeouts)
	}
}

// A NAK lost on the way back: the sender times out and (for go-back-n)
// retries the reliable last; the receiver re-NAKs; recovery proceeds.
func TestDropTheNak(t *testing.T) {
	droppedData, droppedNak := false, false
	res, err := Transfer(paper64K(core.Blast, core.GoBackN), Options{
		Cost: params.VKernel(),
		DropFilter: func(pkt *wire.Packet, to *sim.Station) bool {
			if !droppedData && pkt.Type == wire.TypeData && pkt.Seq == 10 {
				droppedData = true
				return true
			}
			if !droppedNak && pkt.Type == wire.TypeNak {
				droppedNak = true
				return true
			}
			return false
		},
	})
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr)
	}
	if res.Recv.NaksSent < 2 {
		t.Errorf("naks sent = %d, want ≥ 2 (the first was lost)", res.Recv.NaksSent)
	}
	if res.Send.Timeouts == 0 {
		t.Error("the lost NAK must cost a timeout")
	}
}

// Degenerate geometries.
func TestEdgeGeometries(t *testing.T) {
	cases := []core.Config{
		{Bytes: 1, Protocol: core.Blast, Strategy: core.GoBackN},                      // 1-byte transfer
		{Bytes: 1, Protocol: core.StopAndWait},                                        // 1 byte SAW
		{Bytes: 1536, ChunkSize: 1536, Protocol: core.Blast},                          // paper's max packet
		{Bytes: 3 * 1536, ChunkSize: 1536, Protocol: core.SlidingWindow},              // max packets, SW
		{Bytes: 10 * 1024, Protocol: core.Blast, Window: 1, Strategy: core.GoBackN},   // every packet its own blast
		{Bytes: 999, ChunkSize: 1000, Protocol: core.Blast, Strategy: core.Selective}, // chunk > bytes
		{Bytes: 64*1024 + 1, Protocol: core.Blast, Strategy: core.FullNak},            // ragged last
	}
	for i, cfg := range cases {
		cfg.TransferID = uint32(i + 1)
		cfg.RetransTimeout = 100 * time.Millisecond
		res, err := Transfer(cfg, Options{Cost: params.Standalone3Com()})
		if err != nil || res.Failed() {
			t.Fatalf("case %d (%+v): %v %v %v", i, cfg, err, res.SendErr, res.RecvErr)
		}
		if res.Recv.Bytes != cfg.Bytes {
			t.Fatalf("case %d: got %d bytes, want %d", i, res.Recv.Bytes, cfg.Bytes)
		}
		// Window=1 means one ack per packet.
		if cfg.Window == 1 && res.Send.AcksReceived != cfg.NumPackets() {
			t.Errorf("case %d: acks = %d, want %d", i, res.Send.AcksReceived, cfg.NumPackets())
		}
	}
}

// Tr below the response latency: pathological but must still terminate —
// the sender's premature timeout retries the last packet, and a queued ack
// is found on the next wait.
func TestTimeoutBelowResponseLatency(t *testing.T) {
	cfg := paper64K(core.Blast, core.GoBackN)
	cfg.RetransTimeout = time.Millisecond // ≪ response latency ≈ 3.2 ms
	res, err := Transfer(cfg, Options{Cost: params.VKernel()})
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr, res.RecvErr)
	}
	if res.Send.Timeouts == 0 {
		t.Error("premature Tr must cause timeouts")
	}
	if res.Recv.Bytes != cfg.Bytes {
		t.Error("transfer incomplete")
	}
}

// A single receive buffer with a double-buffered sender: arrivals can race
// copy-outs; the protocol must absorb any overruns via retransmission.
func TestSingleRxBufferSurvives(t *testing.T) {
	cost := params.DoubleBuffered(params.Standalone3Com())
	cost.RxBuffers = 1
	cfg := paper64K(core.BlastAsync, core.GoBackN)
	res, err := Transfer(cfg, Options{Cost: cost})
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr, res.RecvErr)
	}
	if res.Recv.Bytes != cfg.Bytes {
		t.Error("transfer incomplete")
	}
	t.Logf("overruns=%d retransmits=%d", res.DstCounters.Overruns, res.Send.Retransmits)
}

// Property: for arbitrary geometry, strategy and moderate loss, a transfer
// either completes exactly or gives up cleanly — driven by testing/quick.
func TestQuickTransferInvariants(t *testing.T) {
	f := func(bytesSeed uint16, chunkSel, protoSel, stratSel uint8, seed int64, lossSel uint8) bool {
		cfg := core.Config{
			TransferID:     1,
			Bytes:          1 + int(bytesSeed)%40000,
			ChunkSize:      []int{256, 512, 1024, 1536}[int(chunkSel)%4],
			Protocol:       []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast, core.BlastAsync}[int(protoSel)%4],
			Strategy:       []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective}[int(stratSel)%4],
			RetransTimeout: 60 * time.Millisecond,
		}
		loss := params.LossModel{PNet: []float64{0, 0.02, 0.06}[int(lossSel)%3]}
		res, err := Transfer(cfg, Options{Cost: params.Standalone3Com(), Loss: loss, Seed: seed})
		if err != nil {
			return false
		}
		if res.SendErr != nil {
			return true // clean give-up is acceptable under loss
		}
		return res.Recv.Completed && res.Recv.Bytes == cfg.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
