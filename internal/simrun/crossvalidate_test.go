package simrun

import (
	"testing"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/mc"
	"blastlan/internal/params"
	"blastlan/internal/stats"
)

// desEstimate runs `trials` independent DES transfers and summarises the
// sender elapsed-time distribution.
func desEstimate(t *testing.T, cfg core.Config, opt Options, trials int) (mean, sigma time.Duration) {
	t.Helper()
	var acc stats.Durations
	for i := 0; i < trials; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		res, err := Transfer(cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("trial %d failed: %v %v", i, res.SendErr, res.RecvErr)
		}
		acc.Add(res.Send.Elapsed)
	}
	return acc.Mean(), acc.StdDev()
}

// The strategy-level Monte Carlo must agree with the cycle-accurate DES on
// both mean and standard deviation: they are independent implementations of
// the same protocol semantics.
func TestMonteCarloMatchesDES(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	m := params.VKernel()
	tr := analytic.TimeBlast(m, 64) // Tr = T0(D)
	pn := 2e-2                      // lossy enough for σ to be measurable with few DES trials
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		cfg := core.Config{
			TransferID:     1,
			Bytes:          64 * 1024,
			Protocol:       core.Blast,
			Strategy:       s,
			RetransTimeout: tr,
		}
		desMean, desSigma := desEstimate(t, cfg,
			Options{Cost: m, Loss: params.LossModel{PNet: pn}, Seed: 10_000}, 800)

		est, err := mc.Blast(mc.Params{
			Cost: m, D: 64, PN: pn, Tr: tr, Strategy: s, Trials: 120000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if re := stats.RelErr(float64(desMean), float64(est.Mean)); re > 0.03 {
			t.Errorf("%v: DES mean %v vs MC mean %v (rel err %.3f)", s, desMean, est.Mean, re)
		}
		// σ needs wider tolerance: 800 DES trials give ±~7 % sampling error.
		if re := stats.RelErr(float64(desSigma), float64(est.StdDev)); re > 0.20 {
			t.Errorf("%v: DES σ %v vs MC σ %v (rel err %.3f)", s, desSigma, est.StdDev, re)
		}
	}
}

// Same cross-validation for stop-and-wait.
func TestMonteCarloMatchesDESStopAndWait(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	m := params.VKernel()
	tr := 10 * analytic.TimeStopAndWait(m, 1) // Tr = 10·T0(1), Figure 5 setting
	pn := 2e-2
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 * 1024,
		Protocol:       core.StopAndWait,
		RetransTimeout: tr,
	}
	desMean, desSigma := desEstimate(t, cfg,
		Options{Cost: m, Loss: params.LossModel{PNet: pn}, Seed: 50_000}, 500)
	est, err := mc.StopAndWait(mc.Params{
		Cost: m, D: 64, PN: pn, Tr: tr, Trials: 120000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re := stats.RelErr(float64(desMean), float64(est.Mean)); re > 0.03 {
		t.Errorf("DES mean %v vs MC mean %v (rel err %.3f)", desMean, est.Mean, re)
	}
	if re := stats.RelErr(float64(desSigma), float64(est.StdDev)); re > 0.25 {
		t.Errorf("DES σ %v vs MC σ %v (rel err %.3f)", desSigma, est.StdDev, re)
	}
}

// Interface drops and wire drops compose: the DES with both loss processes
// must match the MC fed the combined probability.
func TestCombinedLossMatchesDES(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	m := params.VKernel()
	tr := analytic.TimeBlast(m, 64)
	loss := params.LossModel{PNet: 1e-2, PIface: 1e-2}
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 * 1024,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: tr,
	}
	desMean, _ := desEstimate(t, cfg, Options{Cost: m, Loss: loss, Seed: 90_000}, 500)
	est, err := mc.Blast(mc.Params{
		Cost: m, D: 64, PN: mc.CombinedLoss(loss), Tr: tr,
		Strategy: core.GoBackN, Trials: 100000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re := stats.RelErr(float64(desMean), float64(est.Mean)); re > 0.03 {
		t.Errorf("DES mean %v vs MC mean %v (rel err %.3f)", desMean, est.Mean, re)
	}
}
