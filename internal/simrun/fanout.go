package simrun

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// FanoutScenario is a DES-backed one-to-many replication experiment: one
// source distributes the same seeded object to N receivers, either through
// a depth-2 stripe-relay tree (Relays > 0) or as N independent pulls
// (Relays == 0, the baseline the tree is judged against).
//
// The tree is the relay shape of ROADMAP item 4: the source blasts each
// stripe of the object exactly once — to the relay that owns it — so the
// source pays ~1× the object in transmitted bytes no matter how many
// receivers there are. Each relay runs a cut-through board
// (session.Board): it serves a stripe chunk to its children the moment the
// chunk lands, while the rest of the stripe is still arriving, and every
// receiver assembles the full object by pulling each stripe from the relay
// that owns it. All hops ride the ordinary session layer (REQ stripe
// fields, PullResume budgets, BUSY/RETRY-AFTER), so a mid-tree failure
// repairs the affected subtree instead of restarting the fan-out.
//
// Everything runs under one kernel's handoff scheduling, so a run is
// deterministic bit for bit at any GOMAXPROCS — the property the sim==UDP
// fanout conformance suite pins.
type FanoutScenario struct {
	// Name labels the scenario in test output and experiment tables.
	Name string
	// Cost is the simulator hardware model (zero: modern gigabit).
	Cost params.CostModel
	// N is the number of receivers (default 8).
	N int
	// Relays is the number of stripe relays between the source and the
	// receivers. 0 runs the baseline: every receiver pulls the whole
	// object straight from the source.
	Relays int
	// Bytes is the object size (default 256 KiB).
	Bytes int
	// Chunk is the data packet size (default params.DataPacketSize).
	Chunk int
	// Window splits blasts (default 16).
	Window int
	// Tr is every hop's retransmission timeout (default 100 ms virtual).
	Tr time.Duration
	// Controller names the rate-control policy each pull requests (empty:
	// fixed schedule).
	Controller string
	// Concurrency caps each server's simultaneous sessions (default: room
	// for the whole plan).
	Concurrency int
	// RetryAfter is the servers' BUSY back-off hint (zero: server default).
	RetryAfter time.Duration
	// Arrivals staggers receivers: receiver i sleeps Arrivals[i] before
	// dialing (missing entries arrive at t=0). Relays always start at t=0.
	Arrivals []time.Duration
	// DrainAt, when positive, calls BeginDrain on every server (source and
	// relays) at that virtual time: in-flight subtrees complete, latecomers
	// are refused BUSY/RETRY-AFTER.
	DrainAt time.Duration
	// MaxResumes and MaxBusyWaits bound every pull's recovery budget, and
	// Backoff is its initial retry delay (zero: core.ResumeOptions
	// defaults).
	MaxResumes   int
	MaxBusyWaits int
	Backoff      time.Duration
	// Seed drives backoff jitter and the network model.
	Seed int64
}

// withFanoutDefaults fills the zero fields.
func (sc FanoutScenario) withFanoutDefaults() FanoutScenario {
	if sc.Cost.BandwidthBitsPerSec == 0 {
		sc.Cost = params.ModernGigabit()
	}
	if sc.N <= 0 {
		sc.N = 8
	}
	if sc.Bytes <= 0 {
		sc.Bytes = 256 << 10
	}
	if sc.Chunk <= 0 {
		sc.Chunk = params.DataPacketSize
	}
	if sc.Window == 0 {
		sc.Window = 16
	}
	if sc.Tr == 0 {
		sc.Tr = 100 * time.Millisecond
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = sc.N + sc.Relays + 2
	}
	return sc
}

// FanoutReceiverResult is one receiver's end-to-end outcome, all stripe
// sessions folded together.
type FanoutReceiverResult struct {
	Receiver   int
	Arrival    time.Duration
	Start      time.Duration // first stripe REQ issued (virtual)
	End        time.Duration // last stripe completed (virtual)
	Elapsed    time.Duration
	Completed  bool
	ChecksumOK bool
	Data       []byte
	// Counts sums the receiver's stripe sessions: receiver-side counters
	// net of linger plus the serving sessions' sender-side ones.
	Counts Counts
	Resume core.ResumeStats
	// Busy reports that a stripe surfaced a BUSY refusal after exhausting
	// its busy-wait budget; RetryAfter is the server's hint.
	Busy       bool
	RetryAfter time.Duration
	Err        string
}

// MBps is the receiver's end-to-end virtual throughput.
func (r FanoutReceiverResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Data)) / r.Elapsed.Seconds() / 1e6
}

// FanoutRelayResult is one relay's uplink outcome.
type FanoutRelayResult struct {
	Relay     int
	Stripe    core.Stripe
	Completed bool
	Counts    Counts
	Resume    core.ResumeStats
	Err       string
}

// FanoutResult reports one fan-out run.
type FanoutResult struct {
	Receivers []FanoutReceiverResult
	Relays    []FanoutRelayResult
	Completed int           // receivers that assembled an intact object
	Makespan  time.Duration // first receiver start to last receiver end
	AggBytes  int64         // payload bytes delivered to intact receivers
	// SourceDataSent counts data packets the source's sessions transmitted
	// — the headline: ~1 object with relays, N objects without.
	SourceDataSent int
	// SourceTxBytes counts wire bytes out of the source station.
	SourceTxBytes int64
	Agg           Counts
}

// AggMBps is aggregate delivered payload over the makespan.
func (r FanoutResult) AggMBps() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.AggBytes) / r.Makespan.Seconds() / 1e6
}

// recvCounts projects a pull's receiver-side counters net of linger.
func recvCounts(res core.RecvResult) Counts {
	return Counts{
		DataRecv:   res.DataPackets - res.LingerEvents,
		Duplicates: res.Duplicates - res.LingerEvents,
		AcksOut:    res.AcksSent - res.LingerAcks,
		NaksOut:    res.NaksSent - res.LingerNaks,
	}
}

// addResume folds one session's resume stats into an aggregate.
func addResume(agg *core.ResumeStats, s core.ResumeStats) {
	agg.Sessions += s.Sessions
	agg.BusyWaits += s.BusyWaits
	agg.ResumedChunks += s.ResumedChunks
	agg.DupChunks += s.DupChunks
}

// fanoutParts returns the stripe plan: the relay stripes, or one
// whole-object "stripe" for the baseline.
func (sc FanoutScenario) fanoutParts() []core.Stripe {
	if sc.Relays > 0 {
		return core.PlanStripes(sc.Bytes, sc.Chunk, sc.Relays)
	}
	return []core.Stripe{{Index: 0, Offset: 0, Bytes: sc.Bytes}}
}

// seededReqSource streams the size-seeded object exactly like blastd: any
// stripe REQ resolves against the logical stream.
func seededReqSource(r wire.Req) (core.ChunkSource, bool) {
	if r.Bytes == 0 || r.Chunk == 0 {
		return nil, false
	}
	stream := int(r.StreamBytes())
	return core.OffsetSource(
		core.SeededSource(int64(stream), stream, int(r.Chunk)),
		int(r.OffsetChunks)), true
}

// fanoutStripeOut is one stripe session's raw outcome, recorded by the
// stripe's own process.
type fanoutStripeOut struct {
	res        core.RecvResult
	rst        core.ResumeStats
	err        error
	start, end time.Duration
}

// Run executes the scenario once: one kernel, one source server, Relays
// relay servers (each a cut-through board fed by its own uplink pull), and
// N receivers each pulling every stripe. Deterministic — same seed, same
// bits — at any worker count.
func (sc FanoutScenario) Run() (FanoutResult, error) {
	sc = sc.withFanoutDefaults()
	parts := sc.fanoutParts()
	treed := sc.Relays > 0
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, sc.Cost, params.LossModel{}, sc.Seed)
	if err != nil {
		return FanoutResult{}, err
	}

	// Virtual idle only delays the free virtual clock at the end; it must
	// outlive arrivals plus service so no server quits early.
	idle := sc.DrainAt + 10*time.Minute
	for _, a := range sc.Arrivals {
		idle += a
	}
	stats := make(map[uint32]session.TransferStats)
	record := func(ts session.TransferStats) { stats[ts.TransferID] = ts }

	srcSt := n.AddStation("source")
	srcSrv := &session.Server{
		Concurrency: sc.Concurrency,
		Idle:        idle,
		RetryAfter:  sc.RetryAfter,
		Source:      seededReqSource,
		Done:        record,
	}
	srvErrs := make([]error, 1+len(parts))
	sim.Serve(n, srcSt, func(l *sim.Listener) { srvErrs[0] = srcSrv.Run(l) })

	// Relay plumbing: serving station + board per stripe, then the uplink
	// stations, then the receivers' stripe stations — all created in a
	// fixed order before any process runs.
	var boards []*session.Board
	var relaySrvs []*session.Server
	var relaySts []*sim.Station
	if treed {
		boards = make([]*session.Board, len(parts))
		relaySrvs = make([]*session.Server, len(parts))
		relaySts = make([]*sim.Station, len(parts))
		for ki := range parts {
			ki := ki
			boards[ki] = session.NewBoardAt(parts[ki].Offset, parts[ki].Bytes, sc.Chunk, true)
			relaySts[ki] = n.AddStation(fmt.Sprintf("relay%d", ki))
			srv := &session.Server{
				Concurrency: sc.Concurrency,
				Idle:        idle,
				RetryAfter:  sc.RetryAfter,
				SourceEnv:   boards[ki].SourceReq,
				Done:        record,
			}
			relaySrvs[ki] = srv
			sim.Serve(n, relaySts[ki], func(l *sim.Listener) { srvErrs[1+ki] = srv.Run(l) })
		}
	}

	relayRes := make([]FanoutRelayResult, 0, len(parts))
	if treed {
		relayRes = make([]FanoutRelayResult, len(parts))
		for ki := range parts {
			ki, st := ki, parts[ki]
			ust := n.AddStation(fmt.Sprintf("relay%d-up", ki))
			k.Go(fmt.Sprintf("relay%d-up", ki), func(p *sim.Proc) {
				ep := sim.NewEndpoint(p, ust, srcSt)
				rr := &relayRes[ki]
				rr.Relay, rr.Stripe = ki, st
				cfg := core.Config{
					TransferID:     session.FanoutRelayID(ki),
					Bytes:          st.Bytes,
					ChunkSize:      sc.Chunk,
					Protocol:       core.Blast,
					Strategy:       core.GoBackN,
					Window:         sc.Window,
					Controller:     sc.Controller,
					RetransTimeout: sc.Tr,
					StripeOffset:   st.Offset,
					StripeTotal:    sc.Bytes,
					Sink:           boards[ki].Sink(),
				}
				res, rst, err := core.PullResume(ep, cfg, core.ResumeOptions{
					MaxResumes:   sc.MaxResumes,
					MaxBusyWaits: sc.MaxBusyWaits,
					Backoff:      sc.Backoff,
					Seed:         sc.Seed + 7000 + int64(ki),
				})
				rr.Resume = rst
				if err != nil {
					rr.Err = err.Error()
					// Children unblock and recover through their own resume
					// budgets instead of deadlocking on a dead board.
					boards[ki].Fail(err)
					return
				}
				rr.Completed = res.Completed
				rr.Counts = recvCounts(res)
			})
		}
	}

	arrival := func(i int) time.Duration {
		if i < len(sc.Arrivals) {
			return sc.Arrivals[i]
		}
		return 0
	}
	outs := make([][]fanoutStripeOut, sc.N)
	bufs := make([][]byte, sc.N)
	for i := 0; i < sc.N; i++ {
		outs[i] = make([]fanoutStripeOut, len(parts))
		bufs[i] = make([]byte, sc.Bytes)
	}
	for i := 0; i < sc.N; i++ {
		for ki := range parts {
			i, ki, st := i, ki, parts[ki]
			cst := n.AddStation(fmt.Sprintf("recv%d-%d", i, ki))
			target := srcSt
			if treed {
				target = relaySts[ki]
			}
			k.Go(fmt.Sprintf("recv%d-%d", i, ki), func(p *sim.Proc) {
				ep := sim.NewEndpoint(p, cst, target)
				if a := arrival(i); a > 0 {
					ep.SleepFor(a)
				}
				o := &outs[i][ki]
				cfg := core.Config{
					TransferID:     session.FanoutReceiverID(i, ki),
					Bytes:          st.Bytes,
					ChunkSize:      sc.Chunk,
					Protocol:       core.Blast,
					Strategy:       core.GoBackN,
					Window:         sc.Window,
					Controller:     sc.Controller,
					RetransTimeout: sc.Tr,
					Sink: func(off int, b []byte) {
						copy(bufs[i][st.Offset+off:], b)
					},
				}
				if treed {
					cfg.StripeOffset = st.Offset
					cfg.StripeTotal = sc.Bytes
				}
				o.start = p.Now()
				o.res, o.rst, o.err = core.PullResume(ep, cfg, core.ResumeOptions{
					MaxResumes:   sc.MaxResumes,
					MaxBusyWaits: sc.MaxBusyWaits,
					Backoff:      sc.Backoff,
					Seed:         sc.Seed + int64(i*session.FanoutStripeStride+ki),
				})
				o.end = p.Now()
			})
		}
	}

	if sc.DrainAt > 0 {
		k.After(sc.DrainAt, func() {
			srcSrv.BeginDrain()
			for _, s := range relaySrvs {
				s.BeginDrain()
			}
		})
	}

	if err := k.Run(); err != nil {
		return FanoutResult{}, fmt.Errorf("simrun: fanout %s: %w", sc.Name, err)
	}
	for i, e := range srvErrs {
		if e != nil {
			return FanoutResult{}, fmt.Errorf("simrun: fanout %s server %d: %w", sc.Name, i, e)
		}
	}

	expected := core.SeededPayload(int64(sc.Bytes), sc.Bytes, sc.Chunk)
	out := FanoutResult{
		Receivers: make([]FanoutReceiverResult, sc.N),
		Relays:    relayRes,
	}
	for ki := range relayRes {
		rr := &relayRes[ki]
		if ts, ok := stats[session.FanoutRelayID(ki)]; ok {
			rr.Counts.DataSent += ts.Packets
			rr.Counts.Retransmits += ts.Retransmits
		}
		out.SourceDataSent += rr.Counts.DataSent
	}
	var first, last time.Duration = -1, 0
	for i := range out.Receivers {
		r := &out.Receivers[i]
		r.Receiver, r.Arrival = i, arrival(i)
		r.Completed = true
		r.Start = -1
		for ki := range parts {
			o := &outs[i][ki]
			if r.Start < 0 || o.start < r.Start {
				r.Start = o.start
			}
			if o.end > r.End {
				r.End = o.end
			}
			addResume(&r.Resume, o.rst)
			if o.err != nil {
				r.Completed = false
				if r.Err == "" {
					r.Err = o.err.Error()
				}
				var busy *core.BusyError
				if errors.As(o.err, &busy) {
					r.Busy = true
					r.RetryAfter = busy.RetryAfter
				}
				continue
			}
			if !o.res.Completed {
				r.Completed = false
			}
			c := recvCounts(o.res)
			r.Counts.DataRecv += c.DataRecv
			r.Counts.Duplicates += c.Duplicates
			r.Counts.AcksOut += c.AcksOut
			r.Counts.NaksOut += c.NaksOut
			if ts, ok := stats[session.FanoutReceiverID(i, ki)]; ok {
				r.Counts.DataSent += ts.Packets
				r.Counts.Retransmits += ts.Retransmits
			}
		}
		r.Elapsed = r.End - r.Start
		r.Data = bufs[i]
		r.ChecksumOK = r.Completed && bytes.Equal(bufs[i], expected)
		if !treed {
			// Baseline: the source's sessions are the receivers' own.
			out.SourceDataSent += r.Counts.DataSent
		}
		if r.Completed && r.ChecksumOK {
			out.Completed++
			out.AggBytes += int64(sc.Bytes)
			if first < 0 || r.Start < first {
				first = r.Start
			}
			if r.End > last {
				last = r.End
			}
		}
		out.Agg.DataSent += r.Counts.DataSent
		out.Agg.Retransmits += r.Counts.Retransmits
		out.Agg.DataRecv += r.Counts.DataRecv
		out.Agg.Duplicates += r.Counts.Duplicates
		out.Agg.AcksOut += r.Counts.AcksOut
		out.Agg.NaksOut += r.Counts.NaksOut
	}
	if first < 0 {
		first = 0
	}
	out.Makespan = last - first
	out.SourceTxBytes = srcSt.Counters.TxBytes
	return out, nil
}

// BroadcastResult reports the native-broadcast comparator run.
type BroadcastResult struct {
	Packets  int           // distinct data packets broadcast
	Elapsed  time.Duration // first transmission start to last completion
	AggBytes int64         // payload bytes heard across all receivers
}

// AggMBps is aggregate delivered payload over the broadcast's elapsed time.
func (r BroadcastResult) AggMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.AggBytes) / r.Elapsed.Seconds() / 1e6
}

// RunBroadcast models the paper's native one-to-many lower bound on the
// same hardware model: the source broadcasts each chunk once on the shared
// ether and every station hears it (internal/ether CSMA — one medium
// occupancy regardless of receiver count). No per-receiver reliability, no
// acks: this is the physical floor a relay tree is compared against, not a
// usable protocol on its own.
func (sc FanoutScenario) RunBroadcast() (BroadcastResult, error) {
	sc = sc.withFanoutDefaults()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, sc.Cost, params.LossModel{}, sc.Seed)
	if err != nil {
		return BroadcastResult{}, err
	}
	src := n.AddStation("source")
	for i := 0; i < sc.N; i++ {
		st := n.AddStation(fmt.Sprintf("recv%d", i))
		st.SetSink()
	}
	var out BroadcastResult
	k.Go("broadcast", func(p *sim.Proc) {
		payload := core.SeededPayload(int64(sc.Bytes), sc.Bytes, sc.Chunk)
		total := (sc.Bytes + sc.Chunk - 1) / sc.Chunk
		t0 := p.Now()
		for seq := 0; seq < total; seq++ {
			lo := seq * sc.Chunk
			hi := lo + sc.Chunk
			if hi > sc.Bytes {
				hi = sc.Bytes
			}
			pkt := &wire.Packet{Type: wire.TypeData, Trans: 1, Seq: uint32(seq), Payload: payload[lo:hi]}
			if seq == total-1 {
				pkt.Flags = wire.FlagLast
			}
			src.SendBroadcast(p, pkt)
			out.Packets++
		}
		out.Elapsed = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		return BroadcastResult{}, fmt.Errorf("simrun: broadcast %s: %w", sc.Name, err)
	}
	out.AggBytes = int64(sc.N) * int64(sc.Bytes)
	return out, nil
}
