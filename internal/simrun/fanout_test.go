package simrun

import (
	"bytes"
	"testing"
	"time"
)

// fanoutTestScenario is the small, fast tree used across the fan-out tests:
// 1 source → 4 stripe relays → 8 receivers, 64 chunks.
func fanoutTestScenario() FanoutScenario {
	return FanoutScenario{
		Name:   "fanout-test",
		N:      8,
		Relays: 4,
		Bytes:  64000,
		Chunk:  1000,
		Seed:   42,
	}
}

func TestFanoutTreeDelivers(t *testing.T) {
	sc := fanoutTestScenario()
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.N {
		t.Fatalf("completed %d/%d receivers", res.Completed, sc.N)
	}
	for i, r := range res.Receivers {
		if !r.ChecksumOK {
			t.Errorf("receiver %d assembled a corrupt object", i)
		}
		if r.Counts.DataRecv < 64 {
			t.Errorf("receiver %d saw %d data packets, want >= 64", i, r.Counts.DataRecv)
		}
	}
	for ki, rr := range res.Relays {
		if !rr.Completed {
			t.Errorf("relay %d uplink incomplete: %s", ki, rr.Err)
		}
	}
	// The headline: the source transmitted the object once — each stripe
	// went to exactly one relay — no matter that there are 8 receivers.
	if res.SourceDataSent != 64 {
		t.Errorf("source sent %d data packets, want 64 (~1x the object)", res.SourceDataSent)
	}

	// The baseline pays N x at the source for the same delivery.
	base := sc
	base.Name, base.Relays = "fanout-base", 0
	bres, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if bres.Completed != sc.N {
		t.Fatalf("baseline completed %d/%d receivers", bres.Completed, sc.N)
	}
	if bres.SourceDataSent != 64*sc.N {
		t.Errorf("baseline source sent %d data packets, want %d (Nx)", bres.SourceDataSent, 64*sc.N)
	}
}

func TestFanoutDeterministic(t *testing.T) {
	sc := fanoutTestScenario()
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SourceTxBytes != b.SourceTxBytes || a.SourceDataSent != b.SourceDataSent {
		t.Errorf("aggregate outcomes diverge between identical runs:\n%+v\n%+v",
			a, b)
	}
	for i := range a.Receivers {
		ra, rb := a.Receivers[i], b.Receivers[i]
		if ra.Counts != rb.Counts || ra.Start != rb.Start || ra.End != rb.End {
			t.Errorf("receiver %d diverges between identical runs:\n%+v\n%+v", i, ra, rb)
		}
		if !bytes.Equal(ra.Data, rb.Data) {
			t.Errorf("receiver %d payload diverges between identical runs", i)
		}
	}
	for ki := range a.Relays {
		if a.Relays[ki].Counts != b.Relays[ki].Counts {
			t.Errorf("relay %d diverges between identical runs", ki)
		}
	}
}

// TestFanoutDrainRace pins BeginDrain racing an active fan-out: every
// in-flight subtree completes byte-identical to the seeded object, while a
// latecomer arriving after the drain begins is refused BUSY with a
// RETRY-AFTER hint instead of hanging or corrupting anything.
func TestFanoutDrainRace(t *testing.T) {
	// ~37 ms of in-flight virtual transfer on the gigabit model; the drain
	// begins at 5 ms and the latecomer's two refusals land well before the
	// in-flight subtrees finish. (The shared-ether models are unsuitable
	// here: a blast monopolizes the CSMA medium and starves latecomer REQs
	// outright — the paper's own observation — so no BUSY ever reaches
	// them.)
	sc := FanoutScenario{
		Name:         "fanout-drain",
		N:            9,
		Relays:       4,
		Bytes:        512 << 10,
		Chunk:        1000,
		RetryAfter:   2 * time.Millisecond,
		Backoff:      2 * time.Millisecond,
		MaxBusyWaits: 2,
		Arrivals: []time.Duration{
			0, 0, 0, 0, 0, 0, 0, 0,
			6 * time.Millisecond, // receiver 8 arrives after the drain begins
		},
		DrainAt: 5 * time.Millisecond,
		Seed:    7,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d receivers, want the 8 in-flight ones", res.Completed)
	}
	for i := 0; i < 8; i++ {
		r := res.Receivers[i]
		if !r.Completed || !r.ChecksumOK {
			t.Errorf("in-flight receiver %d did not complete intact: %s", i, r.Err)
		}
	}
	late := res.Receivers[8]
	if late.Completed {
		t.Fatal("latecomer completed against a draining tree")
	}
	if !late.Busy {
		t.Fatalf("latecomer error is not a BUSY refusal: %s", late.Err)
	}
	if late.RetryAfter <= 0 {
		t.Errorf("latecomer BUSY carried no RETRY-AFTER hint (%v)", late.RetryAfter)
	}
}

// TestFanoutBroadcastLowerBound checks the native-broadcast comparator: on
// the shared ether one transmission reaches every station, so broadcast's
// aggregate rate is the physical ceiling no relay tree can beat there.
func TestFanoutBroadcastLowerBound(t *testing.T) {
	sc := fanoutTestScenario()
	bc, err := sc.RunBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	if bc.Packets != 64 {
		t.Errorf("broadcast sent %d packets, want 64", bc.Packets)
	}
	if bc.Elapsed <= 0 || bc.AggMBps() <= 0 {
		t.Fatalf("broadcast measured nothing: %+v", bc)
	}
	tree, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if bc.AggMBps() < tree.AggMBps() {
		t.Errorf("relay tree (%.1f MB/s) beat native broadcast (%.1f MB/s) on a shared medium",
			tree.AggMBps(), bc.AggMBps())
	}
}
