package simrun

import (
	"reflect"
	"testing"
	"time"

	"blastlan/internal/core"
)

// testSweep is a sweep sized for CI: small transfers, the full policy ×
// adversary cross, two contention levels.
func testSweep() ContentionSweep {
	return ContentionSweep{
		Clients: []int{1, 8},
		Bytes:   64 << 10,
		Seed:    17,
	}
}

// The judged table is bit-identical at any worker count: every cell is a
// deterministic DES run seeded by its enumeration index, merged in index
// order.
func TestContentionSweepDeterministicAtAnyWorkerCount(t *testing.T) {
	seq, err := testSweep().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := testSweep().Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d sweep differs from sequential:\nseq %+v\npar %+v", workers, seq, par)
		}
	}
}

// cellOf finds one cell of the sweep result.
func cellOf(t *testing.T, cells []ContentionCell, policy, adv string, clients int) ContentionCell {
	t.Helper()
	for _, c := range cells {
		if c.Policy == policy && c.Adversary == adv && c.Clients == clients {
			return c
		}
	}
	t.Fatalf("no cell (%q, %q, %d) in sweep", policy, adv, clients)
	return ContentionCell{}
}

// The point of the BBR-flavored policy: under 1% random loss it sustains
// materially higher goodput than AIMD, whose multiplicative backoff treats
// every stray drop as congestion. And every policy still delivers every
// payload intact in every cell.
func TestContentionSweepJudgesPolicies(t *testing.T) {
	cells, err := testSweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Completed != c.Clients {
			t.Errorf("cell %s/%s/%d: %d of %d clients completed", c.PolicyName(), c.Adversary, c.Clients, c.Completed, c.Clients)
		}
	}
	for _, clients := range []int{1, 8} {
		bbr := cellOf(t, cells, core.ControllerBBR, "loss1", clients)
		aimd := cellOf(t, cells, core.ControllerAIMD, "loss1", clients)
		if bbr.Goodput < aimd.Goodput {
			t.Errorf("clients=%d under 1%% loss: bbr %.1f MB/s < aimd %.1f MB/s", clients, bbr.Goodput, aimd.Goodput)
		}
	}
}

// Same-policy contention is fair: 8 clients of one policy on a clean fabric
// share the server with Jain's index >= 0.9 — no policy starves its own kind.
func TestContentionSweepFairness(t *testing.T) {
	sw := testSweep()
	sw.Adversaries = []NamedAdversary{{Name: "clean"}}
	sw.Clients = []int{8}
	cells, err := sw.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Fairness < 0.9 {
			t.Errorf("policy %s: 8-client clean fairness %.3f < 0.9", c.PolicyName(), c.Fairness)
		}
	}
}

// The sweep's default gauntlet matches the experiment contract: three
// adversaries, three contention levels, every registered policy.
func TestContentionSweepDefaults(t *testing.T) {
	sw := ContentionSweep{}.withDefaults()
	if !reflect.DeepEqual(sw.Policies, core.ControllerNames()) {
		t.Errorf("default policies %v", sw.Policies)
	}
	advs := make([]string, len(sw.Adversaries))
	for i, a := range sw.Adversaries {
		advs[i] = a.Name
	}
	if !reflect.DeepEqual(advs, []string{"clean", "loss1", "jitter"}) {
		t.Errorf("default adversaries %v", advs)
	}
	if !reflect.DeepEqual(sw.Clients, []int{1, 8, 64}) {
		t.Errorf("default clients %v", sw.Clients)
	}
	if sw.Arrival != 2*time.Millisecond {
		t.Errorf("default arrival %v", sw.Arrival)
	}
}
