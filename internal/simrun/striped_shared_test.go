package simrun

import (
	"bytes"
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// The striped fan-out itself is now substrate-agnostic (session.PullStriped):
// the same orchestrator — plan, per-stripe sessions, merger, per-stripe
// adversaries, partial-failure cancellation — runs over simulator processes
// and over UDP sockets. This suite pins that a striped multi-stream pull
// against a sharded session-layer server behaves identically on both.

// stripedSharedConfig is the logical transfer both substrates pull.
func stripedSharedConfig() core.Config {
	return core.Config{
		TransferID:     1,
		Bytes:          64000, // 64 chunks -> 4 stripes of 16
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         16,
		RetransTimeout: 250 * time.Millisecond,
		MaxAttempts:    50,
		Linger:         100 * time.Millisecond,
		ReceiverIdle:   2 * time.Second,
	}
}

// stripedSharedSource is the server-side seeded generator (identical on
// both substrates), resolving stripe ranges from the REQ.
func stripedSharedSource(r wire.Req) (core.ChunkSource, bool) {
	if r.Bytes == 0 || r.Chunk == 0 {
		return nil, false
	}
	stream := int(r.StreamBytes())
	return core.OffsetSource(
		core.SeededSource(int64(stream), stream, int(r.Chunk)),
		int(r.OffsetChunks)), true
}

// runStripedShared runs the striped pull on the simulator through the
// shared session layer end to end: sharded session.Server on one station,
// session.PullStriped over a sim.Fabric of per-stripe client stations.
func runStripedSharedSim(t *testing.T, streams int, adv params.Adversary, seed int64, into []byte) session.StripedResult {
	t.Helper()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, params.Standalone3Com(), params.LossModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	serverSt := n.AddStation("server")
	srv := &session.Server{
		Idle:        time.Minute,
		Concurrency: streams + 1,
		Source:      stripedSharedSource,
	}
	var srvErr error
	sim.Serve(n, serverSt, func(l *sim.Listener) { srvErr = srv.Run(l) })

	var res session.StripedResult
	var resErr error
	k.Go("striped-pull", func(p *sim.Proc) {
		f := &sim.Fabric{
			Net:    n,
			Server: serverSt,
			P:      p,
			Name:   "stripe",
			Prepare: func(i int, st *sim.Station) error {
				if !adv.Active() {
					return nil
				}
				return st.SetAdversary(adv, seed+int64(i))
			},
		}
		opts := session.StripeOptions{Streams: streams}
		if into != nil {
			opts.Sink = func(off int, b []byte) { copy(into[off:], b) }
		}
		res, resErr = session.PullStriped(f, stripedSharedConfig(), opts)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if resErr != nil {
		t.Fatal(resErr)
	}
	return res
}

// runStripedSharedUDP runs the identical pull over UDP loopback.
func runStripedSharedUDP(t *testing.T, streams int, adv params.Adversary, seed int64, into []byte) session.StripedResult {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer conn.Close()
	udplan.SetConnBuffers(conn, 4<<20)
	srv := udplan.NewServer(conn)
	srv.Concurrency = streams + 1
	srv.Batch = 32
	srv.Source = stripedSharedSource
	go srv.Run()

	opts := udplan.StripeOptions{
		Streams:       streams,
		Adversary:     adv,
		AdversarySeed: seed,
	}
	if into != nil {
		opts.Sink = func(off int, b []byte) { copy(into[off:], b) }
	}
	res, err := udplan.PullStriped(conn.LocalAddr().String(), stripedSharedConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stripeNetCounts projects one stripe's receiver counters net of linger.
func stripeNetCounts(r core.RecvResult) Counts {
	return Counts{
		DataRecv:   r.DataPackets - r.LingerEvents,
		Duplicates: r.Duplicates - r.LingerEvents,
		AcksOut:    r.AcksSent - r.LingerAcks,
		NaksOut:    r.NaksSent - r.LingerNaks,
	}
}

// TestStripedPullSharedLayer pins the tentpole property: a striped
// multi-stream pull through the shared transport/session layer reassembles
// the identical stream on the simulator and over UDP, with identical
// per-stripe protocol counters, under the same scripted per-stripe
// adversary.
func TestStripedPullSharedLayer(t *testing.T) {
	const streams = 4
	cfg := stripedSharedConfig()
	expected := core.SeededPayload(int64(cfg.Bytes), cfg.Bytes, cfg.ChunkSize)
	adv := params.Adversary{Script: stripeHostileScript}

	simBuf := make([]byte, cfg.Bytes)
	simRes := runStripedSharedSim(t, streams, adv, 21, simBuf)
	if simRes.Bytes != cfg.Bytes {
		t.Fatalf("sim striped pull delivered %d of %d bytes", simRes.Bytes, cfg.Bytes)
	}
	if !bytes.Equal(simBuf, expected) {
		t.Fatal("sim striped reassembly differs from the seeded stream")
	}
	if simRes.Checksum != core.TransferChecksum(expected) {
		t.Fatalf("sim merged checksum %04x, want %04x", simRes.Checksum, core.TransferChecksum(expected))
	}
	if simRes.Elapsed <= 0 {
		t.Errorf("sim striped elapsed %v not measured in virtual time", simRes.Elapsed)
	}
	recovered := 0
	for _, s := range simRes.Stripes {
		if s.Recv.NaksSent > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no stripe needed recovery; the adversary scenario is vacuous")
	}

	udpBuf := make([]byte, cfg.Bytes)
	udpRes := runStripedSharedUDP(t, streams, adv, 21, udpBuf)
	if !bytes.Equal(udpBuf, expected) {
		t.Fatal("udp striped reassembly differs from the seeded stream")
	}
	if udpRes.Checksum != simRes.Checksum {
		t.Fatalf("checksums diverge: sim %04x udp %04x", simRes.Checksum, udpRes.Checksum)
	}
	for i := range simRes.Stripes {
		sc, uc := stripeNetCounts(simRes.Stripes[i].Recv), stripeNetCounts(udpRes.Stripes[i].Recv)
		if sc != uc {
			t.Errorf("stripe %d counters diverge:\nsim %+v\nudp %+v", i, sc, uc)
		}
		if simRes.Stripes[i].Recv.DataPackets == 0 {
			t.Errorf("stripe %d saw no data", i)
		}
	}
}
