package simrun

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/transport"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// Server-side conformance: one sharded server built on the shared session
// layer (internal/session) serves 8 seeded clients at Concurrency=4 under
// scripted per-client drop/corrupt/duplicate/reorder adversaries, once over
// the discrete-event simulator and once over real UDP loopback. Per-client
// protocol counters and reassembled payloads must be identical. There is no
// substrate-specific server code in this test: both substrates run the same
// session.Server value configured by configureConformanceServer — udplan's
// daemon IS the shared server over a socket listener, and the simulator's
// is the same server over a station listener.

const (
	srvConfClients     = 8
	srvConfConcurrency = 4
	srvConfChunk       = 1000
)

// srvConfScript returns client i's scripted adversary hook: pure functions
// of packet identity (type, seq, attempt, flags), so the event sequence —
// and therefore every counter — is independent of arrival timing and
// identical on every substrate. Recovery stays NAK-driven: the reliable
// last packet of a window is never molested.
func srvConfScript(i int) func(*wire.Packet) params.Mangle {
	mode := i % 4
	if mode == 0 {
		return nil // clean client
	}
	return func(p *wire.Packet) params.Mangle {
		if p.Type != wire.TypeData || p.Attempt != 0 || p.Flags&wire.FlagLast != 0 {
			return params.Mangle{}
		}
		switch mode {
		case 1: // lossy client
			if p.Seq%16 == 2 || p.Seq%16 == 11 {
				return params.Mangle{Drop: true}
			}
		case 2: // corrupting + duplicating client
			if p.Seq%16 == 4 {
				return params.Mangle{Corrupt: true, CorruptBit: 1357}
			}
			if p.Seq%16 == 7 {
				return params.Mangle{Duplicate: true}
			}
		case 3: // reordering + lossy client
			if p.Seq%16 == 9 {
				return params.Mangle{Hold: 2}
			}
			if p.Seq%16 == 13 {
				return params.Mangle{Drop: true}
			}
		}
		return params.Mangle{}
	}
}

// srvConfAdversary wraps client i's script as an installable adversary.
func srvConfAdversary(i int) params.Adversary {
	s := srvConfScript(i)
	if s == nil {
		return params.Adversary{}
	}
	return params.Adversary{Script: s}
}

// srvConfConfig is client i's transfer contract: mixed sizes and
// strategies, wall-clock-sized timeouts so one config works on both
// substrates.
func srvConfConfig(i int) core.Config {
	return core.Config{
		TransferID:     uint32(100 + i),
		Bytes:          20000 + (i%4)*7000, // 20..41 chunks
		ChunkSize:      srvConfChunk,
		Protocol:       core.Blast,
		Strategy:       []core.Strategy{core.GoBackN, core.Selective}[i%2],
		Window:         16,
		RetransTimeout: 250 * time.Millisecond,
		MaxAttempts:    50,
		Linger:         100 * time.Millisecond,
		ReceiverIdle:   2 * time.Second,
	}
}

// srvConfExpected is client i's expected payload (the server streams it
// from a size-seeded generator, like blastd).
func srvConfExpected(i int) []byte {
	n := srvConfConfig(i).Bytes
	return core.SeededPayload(int64(n), n, srvConfChunk)
}

// configureConformanceServer installs the one shared handler set on a
// session.Server — the same value drives both substrates.
func configureConformanceServer(srv *session.Server, stats map[uint32]session.TransferStats, mu *sync.Mutex) {
	srv.Concurrency = srvConfConcurrency
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		if r.Bytes == 0 || r.Chunk == 0 {
			return nil, false
		}
		stream := int(r.StreamBytes())
		return core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks)), true
	}
	srv.Done = func(ts session.TransferStats) {
		mu.Lock()
		stats[ts.TransferID] = ts
		mu.Unlock()
	}
}

// srvConfOutcome is the per-client cross-substrate projection: the client's
// receiver-side counters net of linger, the server session's sender-side
// counters, and the payload.
type srvConfOutcome struct {
	Counts    Counts
	Completed bool
	Data      []byte
}

// clientOutcome projects a client's RecvResult plus its server session's
// stats.
func clientOutcome(res core.RecvResult, ts session.TransferStats) srvConfOutcome {
	return srvConfOutcome{
		Counts: Counts{
			DataSent:    ts.Packets,
			Retransmits: ts.Retransmits,
			DataRecv:    res.DataPackets - res.LingerEvents,
			Duplicates:  res.Duplicates - res.LingerEvents,
			AcksOut:     res.AcksSent - res.LingerAcks,
			NaksOut:     res.NaksSent - res.LingerNaks,
		},
		Completed: res.Completed,
		Data:      res.Data,
	}
}

// runServerConformanceSim serves the 8 clients on the simulator through the
// shared session layer.
func runServerConformanceSim(t *testing.T) []srvConfOutcome {
	t.Helper()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, params.Standalone3Com(), params.LossModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	serverSt := n.AddStation("server")
	stats := make(map[uint32]session.TransferStats)
	var mu sync.Mutex
	srv := &session.Server{Idle: time.Minute}
	configureConformanceServer(srv, stats, &mu)
	var srvErr error
	sim.Serve(n, serverSt, func(l *sim.Listener) { srvErr = srv.Run(l) })

	results := make([]core.RecvResult, srvConfClients)
	errs := make([]error, srvConfClients)
	k.Go("clients", func(p *sim.Proc) {
		f := &sim.Fabric{
			Net:    n,
			Server: serverSt,
			P:      p,
			Prepare: func(i int, st *sim.Station) error {
				adv := srvConfAdversary(i)
				if !adv.Active() {
					return nil
				}
				return st.SetAdversary(adv, int64(1000+i))
			},
		}
		f.Fan(srvConfClients, func(i int, c transport.Client) error {
			results[i], errs[i] = core.Request(c, srvConfConfig(i))
			return errs[i]
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	outs := make([]srvConfOutcome, srvConfClients)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("sim client %d: %v", i, errs[i])
		}
		outs[i] = clientOutcome(results[i], stats[uint32(100+i)])
	}
	return outs
}

// runServerConformanceUDP serves the same 8 clients over real UDP loopback
// through the same shared session layer (udplan.Server embeds it; only the
// socket listener is substrate-specific).
func runServerConformanceUDP(t *testing.T, batch int) []srvConfOutcome {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer conn.Close()
	udplan.SetConnBuffers(conn, 4<<20)
	stats := make(map[uint32]session.TransferStats)
	var mu sync.Mutex
	srv := udplan.NewServer(conn)
	srv.Batch = batch
	configureConformanceServer(&srv.Server, stats, &mu)
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Run() }()

	results := make([]core.RecvResult, srvConfClients)
	errs := make([]error, srvConfClients)
	var wg sync.WaitGroup
	for i := 0; i < srvConfClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := udplan.Dial(conn.LocalAddr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer e.Close()
			e.SetSocketBuffers(1 << 20)
			if adv := srvConfAdversary(i); adv.Active() {
				if errs[i] = e.SetAdversary(adv, int64(1000+i)); errs[i] != nil {
					return
				}
			}
			results[i], errs[i] = core.Request(e, srvConfConfig(i))
		}(i)
	}
	wg.Wait()
	conn.Close()
	if err := <-srvDone; err != nil {
		t.Fatalf("udp server: %v", err)
	}
	outs := make([]srvConfOutcome, srvConfClients)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("udp client %d: %v", i, errs[i])
		}
		mu.Lock()
		ts := stats[uint32(100+i)]
		mu.Unlock()
		outs[i] = clientOutcome(results[i], ts)
	}
	return outs
}

// TestServerSideConformance is the acceptance pin: a Concurrency=4 sharded
// server serving 8 seeded clients under scripted drop/corrupt/dup/reorder
// adversaries produces identical per-client protocol counters and
// byte-identical payloads on the simulator and over UDP — through the
// shared session layer on both sides.
func TestServerSideConformance(t *testing.T) {
	simOuts := runServerConformanceSim(t)

	// The scenario must actually exercise recovery and the session cap.
	recovered := 0
	for i, o := range simOuts {
		if !o.Completed {
			t.Fatalf("sim client %d incomplete", i)
		}
		if !bytes.Equal(o.Data, srvConfExpected(i)) {
			t.Fatalf("sim client %d payload differs from the seeded stream", i)
		}
		if o.Counts.Retransmits > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no client needed recovery; the adversary scenario is vacuous")
	}

	for _, batch := range []int{1, 32} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			udpOuts := runServerConformanceUDP(t, batch)
			for i := range udpOuts {
				if !udpOuts[i].Completed {
					t.Fatalf("udp client %d incomplete", i)
				}
				if !bytes.Equal(udpOuts[i].Data, simOuts[i].Data) {
					t.Errorf("client %d payload differs between sim and udp", i)
				}
				if udpOuts[i].Counts != simOuts[i].Counts {
					t.Errorf("client %d counters diverge:\nsim %+v\nudp %+v",
						i, simOuts[i].Counts, udpOuts[i].Counts)
				}
			}
		})
	}
}
