package simrun

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// stripeHostileScript mangles first transmissions keyed purely on packet
// identity, with every event type landing inside a 16-packet stripe: each
// stripe of a striped transfer (and each 16-packet window of an unstriped
// one) sees a drop, a duplicate and a reorder hold. NAK-driven recovery
// only, so counters are timing-independent on every substrate.
func stripeHostileScript(p *wire.Packet) params.Mangle {
	if p.Type != wire.TypeData || p.Attempt != 0 {
		return params.Mangle{}
	}
	switch p.Seq % 16 {
	case 2:
		return params.Mangle{Drop: true}
	case 5:
		return params.Mangle{Duplicate: true}
	case 9:
		return params.Mangle{Hold: 2}
	}
	return params.Mangle{}
}

// TestStripedConformance pins the striping contract across substrates: a
// striped transfer (streams=4) must produce byte-identical reassembled
// payloads to streams=1, and every stripe's protocol counters must be
// identical on the simulator and over real UDP, under a seeded
// drop/duplicate/reorder adversary — with the fixed window and with each
// registered rate-control policy in the loop. This is the enforcement of
// the RateController determinism contract (ratecontrol.go): a policy whose
// window or batch decisions read the clock would diverge here.
func TestStripedConformance(t *testing.T) {
	udpOK := true
	if c, err := net.ListenPacket("udp", "127.0.0.1:0"); err != nil {
		udpOK = false
	} else {
		c.Close()
	}

	payload := advPayload(64000, 11) // 64 chunks -> 4 stripes of 16
	base := core.Config{
		TransferID:     1,
		Bytes:          len(payload),
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         16,
		RetransTimeout: 500 * time.Millisecond,
		// Controlled transfers learn the RTO online and the estimator's
		// default 1 ms floor is tuned for a quiet LAN; under the race
		// detector a loopback response round can take longer than that,
		// and a single real timeout on the UDP leg would diverge the
		// counters from the sim. Pinning the floor at the fixed Tr keeps
		// recovery purely NAK-driven on every substrate.
		MinRTO:       500 * time.Millisecond,
		MaxAttempts:  50,
		Linger:       150 * time.Millisecond,
		ReceiverIdle: 2 * time.Second,
		Payload:      payload,
	}

	modes := []string{""} // fixed window
	modes = append(modes, core.ControllerNames()...)
	for _, controller := range modes {
		name := controller
		if name == "" {
			name = "fixed"
		}
		t.Run(name, func(t *testing.T) {
			cfg := base
			cfg.Controller = controller
			sc := Scenario{
				Name:      "striped/" + name,
				Adversary: params.Adversary{Script: stripeHostileScript},
				Config:    cfg,
				Seed:      21,
			}

			reassemble := func(streams int, run func(Scenario) (Outcome, error)) ([]byte, []Counts) {
				t.Helper()
				stripes := sc.Stripes(streams)
				outs := make([]Outcome, len(stripes))
				errs := make([]error, len(stripes))
				var wg sync.WaitGroup
				for i := range stripes {
					wg.Add(1)
					// Stripes run concurrently, as the striping client
					// fans them out.
					go func(i int) {
						defer wg.Done()
						outs[i], errs[i] = run(stripes[i])
					}(i)
				}
				wg.Wait()
				whole := make([]byte, 0, len(payload))
				counts := make([]Counts, len(stripes))
				for i := range stripes {
					if errs[i] != nil {
						t.Fatalf("streams=%d stripe %d: %v", streams, i, errs[i])
					}
					if !outs[i].Completed {
						t.Fatalf("streams=%d stripe %d incomplete", streams, i)
					}
					whole = append(whole, outs[i].Data...)
					counts[i] = outs[i].Counts
					if outs[i].Retransmits == 0 {
						t.Errorf("streams=%d stripe %d: script forced no recovery; scenario is vacuous", streams, i)
					}
				}
				return whole, counts
			}

			sim4, simCounts4 := reassemble(4, Scenario.RunSim)
			sim1, _ := reassemble(1, Scenario.RunSim)
			if !bytes.Equal(sim4, payload) {
				t.Fatal("sim streams=4 reassembly differs from the payload")
			}
			if !bytes.Equal(sim4, sim1) {
				t.Fatal("sim streams=4 and streams=1 reassemble differently")
			}

			if !udpOK {
				t.Skip("no UDP loopback: sim-only conformance")
			}
			udp4, udpCounts4 := reassemble(4, Scenario.RunUDP)
			if !bytes.Equal(udp4, payload) {
				t.Fatal("udp streams=4 reassembly differs from the payload")
			}
			for i := range simCounts4 {
				if udpCounts4[i] != simCounts4[i] {
					t.Errorf("stripe %d counters diverge:\nsim %+v\nudp %+v", i, simCounts4[i], udpCounts4[i])
				}
			}
			udp1, udpCounts1 := reassemble(1, Scenario.RunUDP)
			if !bytes.Equal(udp1, payload) {
				t.Fatal("udp streams=1 reassembly differs from the payload")
			}
			// The unstriped transfer conforms across substrates too, so the
			// streams=4 vs streams=1 comparison is anchored on both sides.
			sim1Counts := simStripeCounts(t, sc, 1)
			if udpCounts1[0] != sim1Counts[0] {
				t.Errorf("streams=1 counters diverge:\nsim %+v\nudp %+v", sim1Counts[0], udpCounts1[0])
			}
		})
	}
}

// simStripeCounts runs the scenario's stripes on the simulator and returns
// their counters.
func simStripeCounts(t *testing.T, sc Scenario, streams int) []Counts {
	t.Helper()
	stripes := sc.Stripes(streams)
	counts := make([]Counts, len(stripes))
	for i, ssc := range stripes {
		out, err := ssc.RunSim()
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = out.Counts
	}
	return counts
}

// TestAdaptiveControllerDeterministicSim pins the controller-in-the-loop
// property the conformance above relies on: an adaptive transfer under a
// probabilistic seeded adversary is bit-deterministic on the simulator
// (same seed, same trajectory, same counters), and the controller actually
// engages.
func TestAdaptiveControllerDeterministicSim(t *testing.T) {
	payload := advPayload(256_000, 13) // 256 chunks
	cfg := core.Config{
		TransferID:     3,
		Bytes:          len(payload),
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Adaptive:       true,
		RetransTimeout: 100 * time.Millisecond,
		MaxAttempts:    200,
		Linger:         150 * time.Millisecond,
		ReceiverIdle:   5 * time.Second,
		Payload:        payload,
	}
	sc := Scenario{
		Name:      "adaptive-des",
		Adversary: params.Adversary{Loss: params.LossModel{PNet: 0.02}},
		Config:    cfg,
		Seed:      5,
	}
	a, err := sc.RunSim()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.RunSim()
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("adaptive sim run is not deterministic:\n%+v\n%+v", a.Counts, b.Counts)
	}
	if !a.Completed || !a.IntactPayload(payload) {
		t.Fatal("adaptive transfer failed under 2% loss")
	}
	if a.Retransmits == 0 {
		t.Error("no recovery at 2% loss; scenario is vacuous")
	}

	// The adaptive sender must beat the fixed-window sender's elapsed time
	// under the same seeded loss: the learned Tr turns silent-loss stalls
	// from 100 ms into response-time scale.
	fixed := sc
	fixed.Config.Adaptive = false
	fixed.Config.Window = 128
	av, fx := simElapsed(t, sc), simElapsed(t, fixed)
	if av >= fx {
		t.Errorf("adaptive elapsed %v not better than fixed %v under loss", av, fx)
	}
}

// simElapsed runs the scenario once on the simulator and returns the
// sender's virtual elapsed time.
func simElapsed(t *testing.T, sc Scenario) time.Duration {
	t.Helper()
	res, err := Transfer(sc.Config, sc.Options())
	if err != nil || res.Failed() {
		t.Fatal(err, res.SendErr, res.RecvErr)
	}
	return res.Send.Elapsed
}
