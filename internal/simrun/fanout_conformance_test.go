package simrun

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/session"
	"blastlan/internal/udplan"
)

// Fan-out conformance: the 1-source → 4-relay → 8-receiver stripe tree runs
// once on the discrete-event simulator and once over real UDP loopback,
// through the same session layer (boards, stripe REQs, PullResume) on both
// substrates. Per-receiver and per-relay protocol counters and the
// receivers' assembled payloads must be identical. The network is clean and
// timeouts generous on both sides, so every counter is purely data-driven —
// any divergence is a protocol-layer bug, not scheduling noise.

const (
	fanConfN      = 8
	fanConfRelays = 4
	fanConfBytes  = 64000
	fanConfChunk  = 1000
	fanConfTr     = 500 * time.Millisecond
)

func fanConfScenario() FanoutScenario {
	return FanoutScenario{
		Name:   "fanout-conformance",
		N:      fanConfN,
		Relays: fanConfRelays,
		Bytes:  fanConfBytes,
		Chunk:  fanConfChunk,
		Tr:     fanConfTr,
		Seed:   5,
	}
}

// fanConfOutcome is the cross-substrate projection of one hop.
type fanConfOutcome struct {
	Counts    Counts
	Completed bool
	Data      []byte
}

// runFanoutConformanceSim runs the tree on the simulator.
func runFanoutConformanceSim(t *testing.T) (recv, relays []fanConfOutcome) {
	t.Helper()
	res, err := fanConfScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Receivers {
		recv = append(recv, fanConfOutcome{Counts: r.Counts, Completed: r.Completed && r.ChecksumOK, Data: r.Data})
	}
	for _, rr := range res.Relays {
		relays = append(relays, fanConfOutcome{Counts: rr.Counts, Completed: rr.Completed})
	}
	return recv, relays
}

// runFanoutConformanceUDP runs the same tree over UDP loopback: the source
// is an ordinary sharded daemon streaming the seeded object, the relays and
// receivers are udplan.RunFanout's.
func runFanoutConformanceUDP(t *testing.T, batch int) (recv, relays []fanConfOutcome) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer conn.Close()
	udplan.SetConnBuffers(conn, 4<<20)
	stats := make(map[uint32]session.TransferStats)
	var mu sync.Mutex
	record := func(ts session.TransferStats) {
		mu.Lock()
		stats[ts.TransferID] = ts
		mu.Unlock()
	}
	srv := udplan.NewServer(conn)
	srv.Batch = batch
	srv.Concurrency = fanConfRelays + 2
	srv.Source = seededReqSource
	srv.Done = record
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Run() }()

	res, err := udplan.RunFanout(conn.LocalAddr().String(), udplan.FanoutOptions{
		N:        fanConfN,
		Relays:   fanConfRelays,
		Bytes:    fanConfBytes,
		Chunk:    fanConfChunk,
		Tr:       fanConfTr,
		Batch:    batch,
		Seed:     5,
		KeepData: true,
		Done:     record,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-srvDone; err != nil {
		t.Fatalf("udp source server: %v", err)
	}

	join := func(id uint32, recvRes core.RecvResult) Counts {
		c := recvCounts(recvRes)
		mu.Lock()
		if ts, ok := stats[id]; ok {
			c.DataSent += ts.Packets
			c.Retransmits += ts.Retransmits
		}
		mu.Unlock()
		return c
	}
	for i := range res.Receivers {
		r := &res.Receivers[i]
		var c Counts
		ok := r.Completed
		for ki := range r.Stripes {
			so := &r.Stripes[ki]
			if so.Err != nil {
				t.Fatalf("udp receiver %d stripe %d: %v", i, ki, so.Err)
			}
			sc := join(so.ID, so.Recv)
			c.DataSent += sc.DataSent
			c.Retransmits += sc.Retransmits
			c.DataRecv += sc.DataRecv
			c.Duplicates += sc.Duplicates
			c.AcksOut += sc.AcksOut
			c.NaksOut += sc.NaksOut
		}
		recv = append(recv, fanConfOutcome{Counts: c, Completed: ok, Data: r.Data})
	}
	for ki := range res.Relays {
		rr := &res.Relays[ki]
		if rr.Err != nil {
			t.Fatalf("udp relay %d uplink: %v", ki, rr.Err)
		}
		relays = append(relays, fanConfOutcome{Counts: join(rr.ID, rr.Recv), Completed: rr.Recv.Completed})
	}
	return recv, relays
}

// TestFanoutConformance is the acceptance pin: the 1→8 stripe-relay tree
// produces identical per-receiver and per-relay protocol counters and
// byte-identical payloads on the simulator and over UDP loopback.
func TestFanoutConformance(t *testing.T) {
	simRecv, simRelays := runFanoutConformanceSim(t)

	// Non-vacuity: every receiver holds the seeded object and the source
	// transmitted it ~once (each stripe to exactly one relay).
	expected := core.SeededPayload(int64(fanConfBytes), fanConfBytes, fanConfChunk)
	srcSent := 0
	for _, rr := range simRelays {
		if !rr.Completed {
			t.Fatal("sim relay uplink incomplete")
		}
		srcSent += rr.Counts.DataSent
	}
	if want := fanConfBytes / fanConfChunk; srcSent != want {
		t.Fatalf("sim source sent %d data packets, want %d (~1x the object)", srcSent, want)
	}
	for i, o := range simRecv {
		if !o.Completed {
			t.Fatalf("sim receiver %d incomplete", i)
		}
		if !bytes.Equal(o.Data, expected) {
			t.Fatalf("sim receiver %d payload differs from the seeded stream", i)
		}
	}

	for _, batch := range []int{1, 32} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			udpRecv, udpRelays := runFanoutConformanceUDP(t, batch)
			for i := range udpRecv {
				if !udpRecv[i].Completed {
					t.Fatalf("udp receiver %d incomplete", i)
				}
				if !bytes.Equal(udpRecv[i].Data, simRecv[i].Data) {
					t.Errorf("receiver %d payload differs between sim and udp", i)
				}
				if udpRecv[i].Counts != simRecv[i].Counts {
					t.Errorf("receiver %d counters diverge:\nsim %+v\nudp %+v",
						i, simRecv[i].Counts, udpRecv[i].Counts)
				}
			}
			for ki := range udpRelays {
				if udpRelays[ki].Counts != simRelays[ki].Counts {
					t.Errorf("relay %d counters diverge:\nsim %+v\nudp %+v",
						ki, simRelays[ki].Counts, udpRelays[ki].Counts)
				}
			}
		})
	}
}
