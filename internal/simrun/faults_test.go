package simrun

import (
	"fmt"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
)

// crashScenario is the canonical 16-client crash/restart recovery scenario:
// a seeded mixed workload against a capped server that dies twice on its
// served-chunk schedule. Every client is expected to complete via resume.
func crashScenario(seed int64) FaultScenario {
	return FaultScenario{
		Name:       "crash16",
		N:          16,
		Bytes:      []int{64 << 10, 128 << 10},
		Strategies: []core.Strategy{core.GoBackN, core.FullNak},
		Arrival:    200 * time.Millisecond,
		Faults: params.Faults{
			CrashAfterChunks: []int64{300, 900},
			Downtime:         150 * time.Millisecond,
		},
		Seed: seed,
	}
}

// TestFaultScenarioRecovers: the crash schedule fires, sessions die, and
// every client still completes with an intact checksum — no duplicate chunk
// ever reaches a client sink.
func TestFaultScenarioRecovers(t *testing.T) {
	res, err := crashScenario(7).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Crashes != 2 || res.Restarts != 2 {
		t.Fatalf("crash schedule did not fire: crashes=%d restarts=%d", res.Crashes, res.Restarts)
	}
	if res.Completed != 16 {
		for _, c := range res.Clients {
			if !c.Completed || !c.ChecksumOK {
				t.Errorf("client %d: completed=%v checksumOK=%v sessions=%d err=%q",
					c.Client, c.Completed, c.ChecksumOK, c.Resume.Sessions, c.Err)
			}
		}
		t.Fatalf("completed %d/16 clients", res.Completed)
	}
	if res.Sessions <= 16 {
		t.Fatalf("no client ever resumed (sessions=%d); the crashes were free", res.Sessions)
	}
	if res.Resumed == 0 {
		t.Fatalf("no chunks were re-requested; recovery did not go through offset REQs")
	}
	if res.Dups != 0 {
		t.Fatalf("resumed clients re-received %d verified chunks; resume REQs must start at the frontier", res.Dups)
	}
}

// TestFaultScenarioDeterministic: the whole recovery schedule — which
// sessions die, how many resumes and BUSY waits each client needs, the
// virtual-time makespan — is a pure function of the seed, at any worker
// count.
func TestFaultScenarioDeterministic(t *testing.T) {
	sc := crashScenario(11)
	sc.Trials = 3

	fingerprint := func(workers int) string {
		st, err := sc.Sample(workers)
		if err != nil {
			t.Fatalf("sample(workers=%d): %v", workers, err)
		}
		return fmt.Sprintf("trials=%d makespan=%v completed=%d crashes=%d sessions=%d busy=%d resumed=%d dups=%d",
			st.Trials, st.Makespan.Mean(), st.Completed, st.Crashes,
			st.Sessions, st.BusyWaits, st.Resumed, st.Dups)
	}
	serial := fingerprint(1)
	for _, workers := range []int{2, 4} {
		if got := fingerprint(workers); got != serial {
			t.Fatalf("workers=%d diverged:\n  serial:   %s\n  parallel: %s", workers, got, serial)
		}
	}

	// Repeat-run identity at the single-run level too, including per-client
	// recovery ledgers.
	a, err := sc.Run()
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	for i := range a.Clients {
		ca, cb := a.Clients[i], b.Clients[i]
		if ca != cb {
			t.Fatalf("client %d diverged between identical runs:\n  a: %+v\n  b: %+v", i, ca, cb)
		}
	}
}

// TestFaultScenarioCounterPinned: a single client whose serving session is
// killed mid-blast provably re-fetches only unverified chunks — every chunk
// crosses the wire to the sink exactly once (DataRecv == chunk count,
// DupChunks == 0) even though it took two sessions.
func TestFaultScenarioCounterPinned(t *testing.T) {
	const chunks = 200
	sc := FaultScenario{
		Name:  "pin",
		N:     1,
		Bytes: []int{chunks * 1000},
		Chunk: 1000,
		Faults: params.Faults{
			CrashAfterChunks: []int64{80},
			Downtime:         150 * time.Millisecond,
		},
		Seed: 3,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	c := res.Clients[0]
	if !c.Completed || !c.ChecksumOK {
		t.Fatalf("client did not recover: %+v", c)
	}
	if c.Resume.Sessions != 2 {
		t.Fatalf("expected exactly one resume (2 sessions), got %d", c.Resume.Sessions)
	}
	if c.Resume.DupChunks != 0 {
		t.Fatalf("resume re-received %d verified chunks", c.Resume.DupChunks)
	}
	if c.DataRecv != chunks {
		t.Fatalf("chunks crossing the wire = %d, want exactly %d (each chunk once)", c.DataRecv, chunks)
	}
	if c.Resume.ResumedChunks == 0 || c.Resume.ResumedChunks >= chunks {
		t.Fatalf("resume REQ re-requested %d of %d chunks; want a strict mid-transfer tail", c.Resume.ResumedChunks, chunks)
	}
	// The two sessions partition the stream at the crash frontier.
	if first := c.DataRecv - c.Resume.ResumedChunks; first+c.Resume.ResumedChunks != chunks {
		t.Fatalf("sessions do not partition the stream: first=%d resumed=%d total=%d",
			first, c.Resume.ResumedChunks, chunks)
	}
}

// TestFaultScenarioBlackhole: a client whose receive path goes dark for a
// stretch of the stream still completes (in-session NAK recovery or a
// resume, depending on strategy), with no duplicate sink deliveries.
func TestFaultScenarioBlackhole(t *testing.T) {
	sc := FaultScenario{
		Name:       "blackhole",
		N:          2,
		Bytes:      []int{96 << 10},
		Strategies: []core.Strategy{core.GoBackN},
		Faults: params.Faults{
			BlackholeAfter: 20,
			BlackholeCount: 40,
		},
		Seed: 5,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d/2: %+v", res.Completed, res.Clients)
	}
	if res.Dups != 0 {
		t.Fatalf("blackhole recovery delivered %d duplicate chunks", res.Dups)
	}
}

// TestFaultScenarioOverload: far more clients than the session cap. The
// server sheds load with BUSY/RETRY-AFTER, clients honor the hint with
// jittered backoff, and everyone eventually completes — deterministically.
func TestFaultScenarioOverload(t *testing.T) {
	n := 4096
	arrival := 100 * time.Millisecond
	if testing.Short() {
		// Keep the full run's arrival *rate*: 512 clients trickling in
		// over the same 100 ms window never oversubscribe the 8-session
		// cap, and an overload test without refusals is vacuous.
		n, arrival = 512, 100*time.Millisecond/8
	}
	sc := FaultScenario{
		Name:        "overload",
		N:           n,
		Bytes:       []int{4 << 10},
		Concurrency: 8,
		RetryAfter:  50 * time.Millisecond,
		Arrival:     arrival,
		// Deep refusal queues: a late client may be refused many times
		// before a slot frees up.
		MaxBusyWaits: 1 << 20,
		Seed:         9,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d/%d clients under overload", res.Completed, n)
	}
	if res.BusyWaits == 0 {
		t.Fatalf("no BUSY refusals at %d clients over an 8-session cap; admission control is not engaging", n)
	}
	if res.Crashes != 0 || res.Dups != 0 {
		t.Fatalf("unexpected crashes=%d dups=%d", res.Crashes, res.Dups)
	}
}
