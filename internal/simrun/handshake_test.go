package simrun

import (
	"bytes"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// runHandshake wires a push or pull handshake pair over a simulated
// network and returns both sides' outcomes.
func runHandshake(t *testing.T, push bool, loss params.LossModel, seed int64) (core.SendResult, core.RecvResult) {
	t.Helper()
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cfg := core.Config{
		TransferID:     42,
		Bytes:          len(payload),
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 50 * time.Millisecond,
		MaxAttempts:    200,
		Payload:        payload,
	}
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, params.VKernel(), loss, seed)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.AddStation("src"), n.AddStation("dst")

	var sres core.SendResult
	var rres core.RecvResult
	var sErr, rErr error

	if push {
		k.Go("pusher", func(p *sim.Proc) {
			env := sim.NewEndpoint(p, src, dst)
			sres, sErr = core.Push(env, cfg)
		})
		k.Go("accepter", func(p *sim.Proc) {
			env := sim.NewEndpoint(p, dst, src)
			acc, err := core.ServeOnce(env, -1, func(r wire.Req) (core.Config, bool) {
				if !r.Push {
					return core.Config{}, false
				}
				return core.ConfigOf(0, r), true
			})
			if err != nil {
				rErr = err
				return
			}
			rres, rErr = core.AcceptPush(env, acc)
		})
	} else {
		k.Go("server", func(p *sim.Proc) {
			env := sim.NewEndpoint(p, src, dst)
			acc, err := core.ServeOnce(env, -1, func(r wire.Req) (core.Config, bool) {
				c := core.ConfigOf(0, r)
				c.Payload = payload
				return c, true
			})
			if err != nil {
				rErr = err
				return
			}
			sres, sErr = core.RunSender(env, acc)
		})
		k.Go("puller", func(p *sim.Proc) {
			env := sim.NewEndpoint(p, dst, src)
			pull := cfg
			pull.Payload = nil
			rres, rErr = core.Request(env, pull)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sErr != nil || rErr != nil {
		t.Fatalf("handshake failed: send=%v recv=%v", sErr, rErr)
	}
	if !rres.Completed || !bytes.Equal(rres.Data, payload) {
		t.Fatalf("payload mismatch: completed=%v got %d bytes", rres.Completed, len(rres.Data))
	}
	return sres, rres
}

func TestPushHandshakeErrorFree(t *testing.T) {
	sres, _ := runHandshake(t, true, params.NoLoss(), 1)
	if sres.DataPackets != 16 {
		t.Errorf("sent %d packets", sres.DataPackets)
	}
}

func TestPullHandshakeErrorFree(t *testing.T) {
	runHandshake(t, false, params.NoLoss(), 1)
}

func TestPushHandshakeUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		runHandshake(t, true, params.LossModel{PNet: 0.05}, seed)
	}
}

func TestPullHandshakeUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		runHandshake(t, false, params.LossModel{PNet: 0.05}, seed)
	}
}

// ConfigOf/ReqOf must round-trip the transfer parameters.
func TestConfigReqRoundTrip(t *testing.T) {
	cfg := core.Config{
		Bytes:          123456,
		ChunkSize:      512,
		Protocol:       core.SlidingWindow,
		Strategy:       core.Selective,
		Window:         32,
		RetransTimeout: 70 * time.Millisecond,
	}
	got := core.ConfigOf(9, core.ReqOf(cfg, true))
	if got.Bytes != cfg.Bytes || got.ChunkSize != cfg.ChunkSize ||
		got.Protocol != cfg.Protocol || got.Strategy != cfg.Strategy ||
		got.Window != cfg.Window || got.RetransTimeout != cfg.RetransTimeout {
		t.Errorf("round trip mismatch: %+v vs %+v", got, cfg)
	}
	if got.TransferID != 9 {
		t.Errorf("transfer id = %d", got.TransferID)
	}
}
