package simrun

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// advPayload builds a deterministic non-trivial payload.
func advPayload(n int, seed byte) []byte {
	b := make([]byte, n)
	x := seed | 1
	for i := range b {
		x = x*37 + 111
		b[i] = x
	}
	return b
}

// advGridConfig is the transfer used by the property grid: small enough to
// keep 24 grid points fast, large enough that every adversary knob fires.
func advGridConfig(p core.Protocol, s core.Strategy, payload []byte) core.Config {
	return core.Config{
		TransferID:     1,
		Bytes:          len(payload),
		ChunkSize:      1000,
		Protocol:       p,
		Strategy:       s,
		RetransTimeout: 60 * time.Millisecond,
		MaxAttempts:    500,
		Linger:         100 * time.Millisecond,
		ReceiverIdle:   2 * time.Second,
		Payload:        payload,
	}
}

// TestAdversaryPropertyGrid is the first systematic exercise of the
// duplicate and out-of-order recovery paths in internal/core: for every
// protocol/strategy × adversary-kind grid point the transfer must complete
// with an intact payload, the sender/receiver packet accounting identities
// must hold, and the injected events must be visible in (and consistent
// with) the protocol counters.
func TestAdversaryPropertyGrid(t *testing.T) {
	kinds := []struct {
		name string
		adv  params.Adversary
	}{
		{"reorder", params.Adversary{ReorderProb: 0.15, ReorderDepth: 3}},
		{"duplicate", params.Adversary{DuplicateProb: 0.15}},
		{"corrupt", params.Adversary{CorruptProb: 0.08}},
		{"jitter", params.Adversary{JitterMax: 2 * time.Millisecond}},
	}
	type variant struct {
		name  string
		proto core.Protocol
		strat core.Strategy
	}
	variants := []variant{
		{"saw", core.StopAndWait, core.GoBackN},
		{"sw", core.SlidingWindow, core.GoBackN},
		{"blast/full-no-nak", core.Blast, core.FullNoNak},
		{"blast/full-nak", core.Blast, core.FullNak},
		{"blast/go-back-n", core.Blast, core.GoBackN},
		{"blast/selective", core.Blast, core.Selective},
	}
	payload := advPayload(32*1024, 5)
	wantSum := core.TransferChecksum(payload)

	for _, v := range variants {
		for _, k := range kinds {
			t.Run(fmt.Sprintf("%s/%s", v.name, k.name), func(t *testing.T) {
				cfg := advGridConfig(v.proto, v.strat, payload)
				// Several seeds per grid point: the invariants must hold for
				// every one, and the injected event must fire in at least
				// one (any single seed could draw a quiet run).
				var injected int64
				for seed := int64(1); seed <= 5; seed++ {
					res, err := Transfer(cfg, Options{
						Cost:      params.Standalone3Com(),
						Adversary: k.adv,
						Seed:      seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Failed() {
						t.Fatalf("seed %d: transfer failed: %v / %v", seed, res.SendErr, res.RecvErr)
					}

					// Payload integrity: the whole-transfer hash must match.
					if !bytes.Equal(res.Recv.Data, payload) {
						t.Fatalf("seed %d: delivered payload differs from the original", seed)
					}
					if res.Recv.Checksum != wantSum {
						t.Fatalf("seed %d: transfer checksum %04x, want %04x", seed, res.Recv.Checksum, wantSum)
					}

					// Accounting identities. Every data packet is
					// transmitted once with attempt 0, so transmissions
					// beyond N are exactly the retransmissions; every
					// received data packet is either one of the N firsts or
					// a duplicate.
					n := cfg.NumPackets()
					if res.Send.DataPackets != n+res.Send.Retransmits {
						t.Errorf("seed %d: sender: %d data packets != %d + %d retransmits",
							seed, res.Send.DataPackets, n, res.Send.Retransmits)
					}
					if res.Recv.DataPackets != n+res.Recv.Duplicates {
						t.Errorf("seed %d: receiver: %d data packets != %d + %d duplicates",
							seed, res.Recv.DataPackets, n, res.Recv.Duplicates)
					}

					// Per-kind consistency between injected events and the
					// protocol-level counters.
					switch k.name {
					case "reorder":
						injected += res.Adv.Holds
					case "duplicate":
						injected += res.Adv.DataDups
						// Each injected data duplicate is received as a
						// duplicate unless it (or its twin) overran the
						// interface buffers.
						overruns := res.DstCounters.Overruns + res.SrcCounters.Overruns
						if int64(res.Recv.Duplicates)+overruns < res.Adv.DataDups {
							t.Errorf("seed %d: duplicates %d + overruns %d < injected %d",
								seed, res.Recv.Duplicates, overruns, res.Adv.DataDups)
						}
					case "corrupt":
						injected += res.Adv.Corrupts
						drops := res.DstCounters.CorruptDrops + res.SrcCounters.CorruptDrops
						if drops != res.Adv.Corrupts {
							t.Errorf("seed %d: corrupt drops %d != injected %d (passed %d)",
								seed, drops, res.Adv.Corrupts, res.Adv.Passed)
						}
						if res.Adv.Passed != 0 {
							t.Errorf("seed %d: %d single-bit flips evaded the codec", seed, res.Adv.Passed)
						}
					case "jitter":
						injected += res.Adv.Delays
					}
				}
				if injected == 0 {
					t.Errorf("%s never fired over 5 seeds; grid point is vacuous", k.name)
				}
			})
		}
	}
}

// TestSampleAdversaryDeterministicAcrossWorkers is the tentpole's sampler
// contract extended to hostile networks: Sample under a non-trivial
// adversary (all knobs at once) must be bit-identical at Workers=1 and
// Workers=8.
func TestSampleAdversaryDeterministicAcrossWorkers(t *testing.T) {
	cfg := core.Config{
		TransferID:     1,
		Bytes:          64 << 10,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 200 * time.Millisecond,
	}
	opt := Options{
		Cost: params.VKernel(),
		Adversary: params.Adversary{
			Loss:          params.LossModel{PNet: 2e-3},
			ReorderProb:   0.02,
			ReorderDepth:  2,
			DuplicateProb: 0.02,
			CorruptProb:   0.01,
			JitterMax:     500 * time.Microsecond,
		},
		Seed: 99,
	}
	const n = 48
	seq, err := SampleWorkers(cfg, opt, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Elapsed.N() == 0 {
		t.Fatal("no successful trials")
	}
	par, err := SampleWorkers(cfg, opt, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("adversarial sampler output depends on workers:\n 1: %+v\n 8: %+v", seq, par)
	}
}

// A scenario with a scripted adversary must force a single worker (scripts
// are caller-owned callbacks) and still sample correctly.
func TestScenarioSampleScripted(t *testing.T) {
	sc := Scenario{
		Name: "scripted",
		Adversary: params.Adversary{Script: func(p *wire.Packet) params.Mangle {
			if p.Type == wire.TypeData && p.Seq == 1 && p.Attempt == 0 {
				return params.Mangle{Drop: true}
			}
			return params.Mangle{}
		}},
		Config: core.Config{
			TransferID:     1,
			Bytes:          8 << 10,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			RetransTimeout: 100 * time.Millisecond,
		},
		Trials: 4,
		Seed:   3,
	}
	st, err := sc.Sample(8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures != 0 || st.Elapsed.N() != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Retransmits == 0 {
		t.Error("the scripted drop must force retransmissions")
	}
}
