package simrun

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/stats"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// FaultScenario is a DES-backed failure-recovery experiment: N seeded
// clients pull from one sharded simulated server while a params.Faults
// schedule kills and restarts the server mid-transfer (and optionally
// blackholes a client's receive path). Clients run the resumable-pull
// engine (core.PullResume), so every client is expected to complete with an
// intact checksum despite the crashes — and because crashes trigger on the
// deterministic count of served chunks and everything runs under the
// kernel's handoff scheduling, the entire recovery schedule (which sessions
// die, at which chunk, how each client backs off and resumes) reproduces
// bit for bit at any worker count.
//
// The same scenario shape doubles as the overload experiment: with no
// crashes, a small Concurrency cap and a large N, refused clients observe
// BUSY/RETRY-AFTER replies and complete via backoff.
type FaultScenario struct {
	// Name labels the scenario in test output and experiment tables.
	Name string
	// Cost is the simulator hardware model; the zero value means the
	// modern-gigabit preset.
	Cost params.CostModel
	// N is the number of clients (default 4).
	N int
	// Bytes is the transfer-size mix; each client draws one entry (seeded).
	// Default {64 KB}.
	Bytes []int
	// Strategies is the blast retransmission-strategy mix. Default {GoBackN}.
	Strategies []core.Strategy
	// Chunk is the data packet size (default params.DataPacketSize).
	Chunk int
	// Window splits blasts (0: single blast per transfer).
	Window int
	// Tr is the clients' retransmission timeout (default 100 ms virtual).
	Tr time.Duration
	// Arrival staggers the clients uniformly over [0, Arrival).
	Arrival time.Duration
	// Concurrency is the server's session cap (default 4); refused REQs are
	// answered with BUSY/RETRY-AFTER.
	Concurrency int
	// RetryAfter overrides the server's BUSY back-off hint (0: server
	// default).
	RetryAfter time.Duration
	// Faults is the failure schedule: server crashes on cumulative served
	// chunks, restart downtime, optional client-0 receive blackhole.
	Faults params.Faults
	// MaxResumes, MaxBusyWaits and Backoff tune each client's resume engine
	// (zero values take core.ResumeOptions defaults; Backoff defaults to
	// 20ms virtual here, well under a retransmission timeout).
	MaxResumes   int
	MaxBusyWaits int
	Backoff      time.Duration
	// Seed drives every stochastic choice (sizes, strategies, arrivals,
	// backoff jitter). Trial t of Sample uses Seed+t.
	Seed int64
	// Trials is the Sample batch size (default 1).
	Trials int
}

// withFaultDefaults fills the zero fields.
func (sc FaultScenario) withFaultDefaults() FaultScenario {
	if sc.Cost.BandwidthBitsPerSec == 0 {
		sc.Cost = params.ModernGigabit()
	}
	if sc.N <= 0 {
		sc.N = 4
	}
	if len(sc.Bytes) == 0 {
		sc.Bytes = []int{64 << 10}
	}
	if len(sc.Strategies) == 0 {
		sc.Strategies = []core.Strategy{core.GoBackN}
	}
	if sc.Chunk == 0 {
		sc.Chunk = params.DataPacketSize
	}
	if sc.Tr == 0 {
		sc.Tr = 100 * time.Millisecond
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 4
	}
	if sc.Backoff <= 0 {
		sc.Backoff = 20 * time.Millisecond
	}
	if sc.Trials <= 0 {
		sc.Trials = 1
	}
	return sc
}

// FaultClientResult is one client's end-to-end recovery outcome.
type FaultClientResult struct {
	Client     int
	TransferID uint32
	Bytes      int
	Strategy   core.Strategy
	Arrival    time.Duration
	Start      time.Duration
	End        time.Duration
	Elapsed    time.Duration
	Completed  bool
	ChecksumOK bool
	// Resume is the client's recovery ledger: sessions issued, BUSY waits
	// honored, chunks re-requested, duplicate arrivals discarded.
	Resume core.ResumeStats
	// DataRecv is the client's distinct-progress data arrivals summed
	// across all of its sessions (linger traffic excluded) — with
	// Resume.DupChunks it pins that a resumed client re-fetched only
	// unverified chunks.
	DataRecv int
	Err      string
}

// FaultResult reports one fault-scenario run.
type FaultResult struct {
	Clients   []FaultClientResult
	Completed int   // clients that finished with an intact payload
	Served    int   // transfers the server completed across incarnations
	Crashes   int   // scheduled crashes that fired
	Restarts  int   // server incarnations beyond the first
	Sessions  int   // client sessions summed (N means no recovery happened)
	BusyWaits int   // BUSY refusals honored across clients
	Resumed   int   // chunks re-requested by resume REQs
	Dups      int   // duplicate chunk arrivals discarded by clients
	AggBytes  int64 // payload bytes delivered across all clients
	Makespan  time.Duration
}

// faultClientSpec is one client's pre-drawn workload.
type faultClientSpec struct {
	bytes    int
	strategy core.Strategy
	arrival  time.Duration
}

// specs draws every client's workload up front, in index order, so the
// scenario is a pure function of its seed.
func (sc FaultScenario) specs() []faultClientSpec {
	rng := rand.New(rand.NewSource(sc.Seed*-8296271519245169997 + 3751637671895480951))
	out := make([]faultClientSpec, sc.N)
	for i := range out {
		s := &out[i]
		s.bytes = sc.Bytes[rng.Intn(len(sc.Bytes))]
		s.strategy = sc.Strategies[rng.Intn(len(sc.Strategies))]
		if sc.Arrival > 0 {
			s.arrival = time.Duration(rng.Int63n(int64(sc.Arrival)))
		}
	}
	return out
}

// Run executes the scenario once: one kernel, a restartable server process,
// N resumable-client processes. Deterministic — same seed, same bits — at
// any GOMAXPROCS.
func (sc FaultScenario) Run() (FaultResult, error) {
	sc = sc.withFaultDefaults()
	if err := sc.Faults.Validate(); err != nil {
		return FaultResult{}, err
	}
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, sc.Cost, params.LossModel{}, sc.Seed)
	if err != nil {
		return FaultResult{}, err
	}
	serverSt := n.AddStation("server")
	specs := sc.specs()
	trigger := sc.Faults.Trigger()

	restarts := 0
	var srvErr error
	srv := &session.Server{
		Concurrency: sc.Concurrency,
		RetryAfter:  sc.RetryAfter,
		Idle:        sc.Arrival + 5*time.Minute,
		// Reap orphaned sessions fast: after a crash the old incarnation's
		// session bodies must release their processes in bounded virtual
		// time, not the 30s wall-clock default.
		SessionIdle: 2 * time.Second,
	}
	// The server streams seeded chunks (like blastd); the crash trigger
	// rides the source, so "crash after the Nth served chunk" counts every
	// chunk that crosses any session, deterministically. The crash closes
	// the serving station — the demux loop and every in-flight session die
	// with net.ErrClosed — and a kernel timer restarts the server after the
	// scheduled downtime on the same station, receive queue flushed (a real
	// crash loses its socket buffers).
	var crash func()
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		if r.Bytes == 0 || r.Chunk == 0 {
			return nil, false
		}
		stream := int(r.StreamBytes())
		base := core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks))
		return func(seq int, dst []byte) []byte {
			if trigger.OnChunk() {
				crash()
			}
			return base(seq, dst)
		}, true
	}
	var runServer func()
	runServer = func() {
		sim.Serve(n, serverSt, func(l *sim.Listener) {
			if err := srv.Run(l); err != nil && srvErr == nil {
				srvErr = err
			}
		})
	}
	crash = func() {
		if serverSt.Closed() {
			return
		}
		serverSt.Close()
		restarts++
		k.After(sc.Faults.RestartDelay(), func() {
			serverSt.FlushRx()
			serverSt.Reopen()
			runServer()
		})
	}
	runServer()

	blackhole := sc.Faults.BlackholeHook()
	results := make([]FaultClientResult, sc.N)
	k.Go("faultload", func(p *sim.Proc) {
		f := &sim.Fabric{
			Net:    n,
			Server: serverSt,
			P:      p,
			Prepare: func(i int, st *sim.Station) error {
				if i != 0 || blackhole == nil {
					return nil
				}
				// Client 0 goes dark for a stretch of its receive stream.
				return st.SetAdversary(params.Adversary{Script: blackhole}, sc.Seed)
			},
		}
		f.Fan(sc.N, func(i int, c transport.Client) error {
			s := specs[i]
			r := &results[i]
			r.Client, r.Bytes, r.Strategy, r.Arrival = i, s.bytes, s.strategy, s.arrival
			r.TransferID = uint32(i + 1)
			c.Compute(s.arrival)
			cfg := core.Config{
				TransferID:     r.TransferID,
				Bytes:          s.bytes,
				ChunkSize:      sc.Chunk,
				Protocol:       core.Blast,
				Strategy:       s.strategy,
				Window:         sc.Window,
				RetransTimeout: sc.Tr,
				// One REQ round per session: a quiet server means the session
				// is dead and recovery belongs to the resume layer's offset
				// REQs — an in-session REQ retry would re-request the full
				// range and re-receive verified chunks.
				MaxAttempts: 1,
			}
			r.Start = c.Now()
			res, rstats, err := core.PullResume(c, cfg, core.ResumeOptions{
				MaxResumes:   sc.MaxResumes,
				MaxBusyWaits: sc.MaxBusyWaits,
				Backoff:      sc.Backoff,
				Seed:         sc.Seed + int64(i),
			})
			r.End = c.Now()
			r.Elapsed = r.End - r.Start
			r.Resume = rstats
			r.DataRecv = res.DataPackets - res.Duplicates - res.LingerEvents
			if err != nil {
				r.Err = err.Error()
				return err
			}
			r.Completed = res.Completed
			r.ChecksumOK = res.Completed &&
				res.Checksum == core.TransferChecksum(core.SeededPayload(int64(s.bytes), s.bytes, sc.Chunk))
			return nil
		})
	})
	if err := k.Run(); err != nil {
		return FaultResult{}, fmt.Errorf("simrun: faults %s: %w", sc.Name, err)
	}
	if srvErr != nil {
		return FaultResult{}, fmt.Errorf("simrun: faults %s server: %w", sc.Name, srvErr)
	}

	out := FaultResult{
		Clients:  results,
		Served:   srv.Served(),
		Crashes:  trigger.Crashes(),
		Restarts: restarts,
	}
	var first, last time.Duration = -1, 0
	for i := range results {
		r := &results[i]
		out.Sessions += r.Resume.Sessions
		out.BusyWaits += r.Resume.BusyWaits
		out.Resumed += r.Resume.ResumedChunks
		out.Dups += r.Resume.DupChunks
		if first < 0 || r.Arrival < first {
			first = r.Arrival
		}
		if r.End > last {
			last = r.End
		}
		if r.Completed && r.ChecksumOK {
			out.Completed++
			out.AggBytes += int64(r.Bytes)
		}
	}
	if first < 0 {
		first = 0
	}
	out.Makespan = last - first
	return out, nil
}

// FaultStats merges a batch of independent seeded fault trials, folded in
// trial-index order so the result is bit-identical at any worker count.
type FaultStats struct {
	Trials    int
	Makespan  stats.Durations
	Completed int64
	Crashes   int64
	Sessions  int64
	BusyWaits int64
	Resumed   int64
	Dups      int64
}

// Sample runs the scenario's Trials independent instances (trial t seeded
// Seed+t) fanned across workers (0 or negative: GOMAXPROCS), merging in
// index order.
func (sc FaultScenario) Sample(workers int) (FaultStats, error) {
	sc = sc.withFaultDefaults()
	n := sc.Trials
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]FaultResult, n)
	errs := make([]error, n)
	worker := func(w int) {
		for t := w; t < n; t += workers {
			s := sc
			s.Seed = sc.Seed + int64(t)
			results[t], errs[t] = s.Run()
		}
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	var agg FaultStats
	for t := 0; t < n; t++ {
		if errs[t] != nil {
			return agg, errs[t]
		}
		r := results[t]
		agg.Trials++
		agg.Makespan.Add(r.Makespan)
		agg.Completed += int64(r.Completed)
		agg.Crashes += int64(r.Crashes)
		agg.Sessions += int64(r.Sessions)
		agg.BusyWaits += int64(r.BusyWaits)
		agg.Resumed += int64(r.Resumed)
		agg.Dups += int64(r.Dups)
	}
	return agg, nil
}
