package simrun

import (
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// gsoAvailable reports whether the GSO tier actually engages on this
// kernel, by probing a scratch endpoint pair the same way RunUDP does.
func gsoAvailable() bool {
	cs, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return false
	}
	defer cs.Close()
	ss, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return false
	}
	defer ss.Close()
	e := udplan.NewEndpoint(cs, ss.LocalAddr())
	e.SetBatch(32)
	return e.Tier() == udplan.TierGSO
}

// TestGSOTierConformance reruns the scripted hostile-network scenarios —
// drops, corruption, duplicates and reordering holds — with the UDP
// datapath pinned at each transmit tier, and asserts identical protocol
// counters and byte-identical payloads against the discrete-event
// simulator. This is the contract that segmentation offload is invisible
// to the protocol: whether a blast window leaves as one UDP_SEGMENT
// superbuffer, a sendmmsg batch or a WriteTo loop, the adversary sees the
// same frames and the engines count the same events.
func TestGSOTierConformance(t *testing.T) {
	if !udpAvailable() {
		t.Skip("no UDP loopback")
	}
	if !gsoAvailable() {
		t.Skip("GSO tier unavailable (needs Linux >= 4.18)")
	}
	payload := advPayload(16000, 9)
	baseCfg := func(p core.Protocol, s core.Strategy) core.Config {
		return core.Config{
			TransferID:     1,
			Bytes:          len(payload),
			ChunkSize:      1000, // 16 packets
			Protocol:       p,
			Strategy:       s,
			RetransTimeout: 500 * time.Millisecond,
			MaxAttempts:    50,
			Linger:         150 * time.Millisecond,
			ReceiverIdle:   2 * time.Second,
			Payload:        payload,
		}
	}
	cases := []struct {
		name   string
		cfg    core.Config
		script func(*wire.Packet) params.Mangle
	}{
		{"blast/full-nak", baseCfg(core.Blast, core.FullNak), hostileNakScript},
		{"blast/go-back-n", baseCfg(core.Blast, core.GoBackN), hostileNakScript},
		{"blast/selective", baseCfg(core.Blast, core.Selective), hostileNakScript},
		{"blast/go-back-n-adjacent", baseCfg(core.Blast, core.GoBackN), hostileAdjacentScript},
		{"blast/full-no-nak", baseCfg(core.Blast, core.FullNoNak), hostileLosslessScript},
	}
	// Batch 32 holds the whole 16-packet window in one flush — the geometry
	// where the GSO tier really sends one superbuffer per window.
	tiers := []udplan.Tier{udplan.TierWriteTo, udplan.TierMmsg, udplan.TierGSO}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := Scenario{
				Name:      c.name,
				Adversary: params.Adversary{Script: c.script},
				Config:    c.cfg,
				Seed:      7,
				Batch:     32,
			}
			simOut, err := sc.RunSim()
			if err != nil {
				t.Fatal(err)
			}
			for _, tier := range tiers {
				tsc := sc
				tsc.Tier = tier
				out, err := tsc.RunUDP()
				if err != nil {
					t.Fatalf("tier=%s: %v", tier, err)
				}
				if !out.Completed || !out.IntactPayload(payload) {
					t.Errorf("tier=%s: completed=%v intact=%v", tier, out.Completed, out.IntactPayload(payload))
				}
				if out.Counts != simOut.Counts {
					t.Errorf("tier=%s counters diverge from sim:\nsim  %+v\ntier %+v", tier, simOut.Counts, out.Counts)
				}
			}
		})
	}
}

// TestGSOTierSeededAdversaryIdenticalPayload drives the GSO-pinned datapath
// through one seeded adversary combining loss, deep reordering, duplication,
// corruption and jitter, for all four blast strategies: the receiver must
// reassemble a byte-identical payload even when the kernel is both
// segmenting outbound superbuffers and coalescing inbound ones. (Counters
// are timing-dependent under seeded adversaries on a wall clock, so — as in
// the batched seeded test — payload integrity is the pinned property.)
func TestGSOTierSeededAdversaryIdenticalPayload(t *testing.T) {
	if !udpAvailable() {
		t.Skip("no UDP loopback")
	}
	if !gsoAvailable() {
		t.Skip("GSO tier unavailable (needs Linux >= 4.18)")
	}
	adv := params.Adversary{
		Loss:          params.LossModel{PNet: 0.01},
		ReorderProb:   0.05,
		ReorderDepth:  2,
		DuplicateProb: 0.04,
		CorruptProb:   0.03,
		JitterMax:     300 * time.Microsecond,
	}
	payload := advPayload(16000, 3)
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		t.Run(s.String(), func(t *testing.T) {
			sc := Scenario{
				Name:      "gso-seeded-" + s.String(),
				Adversary: adv,
				Config: core.Config{
					TransferID:     1,
					Bytes:          len(payload),
					ChunkSize:      1000,
					Protocol:       core.Blast,
					Strategy:       s,
					RetransTimeout: 80 * time.Millisecond,
					MaxAttempts:    200,
					Linger:         120 * time.Millisecond,
					ReceiverIdle:   3 * time.Second,
					Payload:        payload,
				},
				Seed:  int64(s) + 17,
				Batch: 32,
				Tier:  udplan.TierGSO,
			}
			out, err := sc.RunUDP()
			if err != nil {
				t.Fatal(err)
			}
			if !out.IntactPayload(payload) {
				t.Error("payload differs after GSO-tier transfer")
			}
		})
	}
}
