package simrun

import (
	"fmt"
	"net"
	"testing"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/stats"
	"blastlan/internal/wire"
)

// Conformance matrix: every protocol on every hardware preset at several
// sizes must match its §2.1.3 closed form. This is the regression net that
// keeps the simulator and the analytic model from drifting apart.
func TestConformanceMatrix(t *testing.T) {
	models := []params.CostModel{
		params.Standalone3Com(),
		params.VKernel(),
		params.ExcelanDMA(),
		params.ModernGigabit(),
	}
	sizes := []int{1, 7, 64}

	type variant struct {
		proto   core.Protocol
		formula func(params.CostModel, int) time.Duration
		// exact requires equality up to the 2τ propagation the formulas
		// ignore; otherwise a 1% relative tolerance applies (T_SW's tail
		// idealisation).
		exact bool
	}
	variants := []variant{
		{core.StopAndWait, analytic.TimeStopAndWait, true},
		{core.Blast, analytic.TimeBlast, true},
		{core.SlidingWindow, analytic.TimeSlidingWindow, false},
	}

	for _, m := range models {
		for _, n := range sizes {
			for _, v := range variants {
				name := fmt.Sprintf("%s/%s/n=%d", m.Name, v.proto, n)
				t.Run(name, func(t *testing.T) {
					cfg := core.Config{
						TransferID:     1,
						Bytes:          n * 1024,
						Protocol:       v.proto,
						Strategy:       core.GoBackN,
						RetransTimeout: 10 * time.Second,
					}
					res, err := Transfer(cfg, Options{Cost: m})
					if err != nil || res.Failed() {
						t.Fatal(err, res.SendErr, res.RecvErr)
					}
					want := v.formula(m, n)
					got := res.Send.Elapsed
					if v.proto == core.SlidingWindow && n == 1 {
						// Documented deviation: the paper's T_SW formula
						// undercounts one ack copy at N=1. A 1-packet
						// transfer is the same serial exchange under every
						// protocol; assert that invariant instead.
						if exact := analytic.TimeStopAndWait(m, 1) + 2*m.Propagation; got != exact {
							t.Errorf("1-packet SW = %v, want the universal exchange %v", got, exact)
						}
						return
					}
					if v.exact {
						// The formulas ignore propagation; SAW pays 2τ per
						// packet, blast 2τ per transfer.
						slack := 2 * m.Propagation
						if v.proto == core.StopAndWait {
							slack = time.Duration(2*n) * m.Propagation
						}
						if got != want+slack {
							t.Errorf("sim %v, formula %v + slack %v", got, want, slack)
						}
						return
					}
					if re := stats.RelErr(float64(got), float64(want)); re > 0.05 {
						t.Errorf("sim %v vs formula %v (rel err %.4f)", got, want, re)
					}
				})
			}
			// Double-buffered blast against its two-regime formula.
			md := params.DoubleBuffered(m)
			t.Run(fmt.Sprintf("%s/blast-dblbuf/n=%d", m.Name, n), func(t *testing.T) {
				cfg := core.Config{
					TransferID:     1,
					Bytes:          n * 1024,
					Protocol:       core.BlastAsync,
					Strategy:       core.GoBackN,
					RetransTimeout: 10 * time.Second,
				}
				res, err := Transfer(cfg, Options{Cost: md})
				if err != nil || res.Failed() {
					t.Fatal(err, res.SendErr, res.RecvErr)
				}
				want := analytic.TimeBlastDouble(md, n) + 2*md.Propagation
				if res.Send.Elapsed != want {
					t.Errorf("sim %v, formula %v", res.Send.Elapsed, want)
				}
			})
		}
	}
}

// hostileNakScript mangles first transmissions only, keyed purely on packet
// identity (type, sequence, attempt) so the event sequence is independent of
// arrival order and therefore identical on every substrate. Recovery is
// entirely NAK-driven — the reliable last packet always gets through — so no
// retransmission timer fires and the counters are timing-independent.
func hostileNakScript(p *wire.Packet) params.Mangle {
	if p.Type != wire.TypeData || p.Attempt != 0 {
		return params.Mangle{}
	}
	switch p.Seq {
	case 2:
		return params.Mangle{Drop: true}
	case 5:
		return params.Mangle{Corrupt: true, CorruptBit: 91}
	case 7:
		return params.Mangle{Duplicate: true}
	case 9:
		return params.Mangle{Hold: 2}
	}
	return params.Mangle{}
}

// hostileAdjacentScript stresses the overtaking bookkeeping: a hold+dup pair
// while an earlier hold is still pending (the duplicate must go out ahead of
// the holds its arrival matures, on every substrate), a duplicate of a packet
// that is itself held (the copy overtakes its twin), and a drop immediately
// behind another hold (the dropped packet must still count as overtaking even
// though it never arrives).
func hostileAdjacentScript(p *wire.Packet) params.Mangle {
	if p.Type != wire.TypeData || p.Attempt != 0 {
		return params.Mangle{}
	}
	switch p.Seq {
	case 4:
		return params.Mangle{Hold: 1}
	case 5:
		return params.Mangle{Duplicate: true, Hold: 2}
	case 9:
		return params.Mangle{Hold: 2}
	case 10:
		return params.Mangle{Drop: true}
	}
	return params.Mangle{}
}

// hostileLosslessScript reorders and duplicates without losing anything, for
// strategies (full-no-nak) and protocols (stop-and-wait) whose loss recovery
// necessarily runs through a retransmission timer.
func hostileLosslessScript(p *wire.Packet) params.Mangle {
	if p.Type != wire.TypeData || p.Attempt != 0 {
		return params.Mangle{}
	}
	switch p.Seq {
	case 3:
		return params.Mangle{Duplicate: true}
	case 9:
		return params.Mangle{Hold: 2}
	}
	return params.Mangle{}
}

// sawDupScript duplicates one packet of a stop-and-wait transfer: the
// receiver's duplicate-suppression path (core/saw.go recvInOrder) must count
// and re-acknowledge it identically everywhere. Holds are useless against
// stop-and-wait (nothing follows to overtake the held packet), so this is
// the protocol's whole conformance surface.
func sawDupScript(p *wire.Packet) params.Mangle {
	if p.Type == wire.TypeData && p.Attempt == 0 && p.Seq == 3 {
		return params.Mangle{Duplicate: true}
	}
	return params.Mangle{}
}

// TestCrossSubstrateConformance runs the same seeded drop+reorder scripts
// over the discrete-event simulator, the V kernel and real UDP loopback
// sockets, and asserts byte-identical delivered payloads and identical
// protocol counters (packets, duplicates, retransmits, acks, naks) on all
// three substrates. This is the contract that makes one Scenario definition
// meaningful everywhere.
func TestCrossSubstrateConformance(t *testing.T) {
	udpOK := true
	if c, err := net.ListenPacket("udp", "127.0.0.1:0"); err != nil {
		udpOK = false
	} else {
		c.Close()
	}

	payload := advPayload(16000, 9)
	baseCfg := func(p core.Protocol, s core.Strategy) core.Config {
		return core.Config{
			TransferID:     1,
			Bytes:          len(payload),
			ChunkSize:      1000, // 16 packets
			Protocol:       p,
			Strategy:       s,
			RetransTimeout: 500 * time.Millisecond,
			MaxAttempts:    50,
			Linger:         150 * time.Millisecond,
			ReceiverIdle:   2 * time.Second,
			Payload:        payload,
		}
	}
	cases := []struct {
		name   string
		cfg    core.Config
		script func(*wire.Packet) params.Mangle
		// wantRetransmits>0 asserts the script actually forced recovery.
		wantRetransmits bool
	}{
		{"blast/full-nak", baseCfg(core.Blast, core.FullNak), hostileNakScript, true},
		{"blast/go-back-n", baseCfg(core.Blast, core.GoBackN), hostileNakScript, true},
		{"blast/selective", baseCfg(core.Blast, core.Selective), hostileNakScript, true},
		{"blast/go-back-n-adjacent", baseCfg(core.Blast, core.GoBackN), hostileAdjacentScript, true},
		{"blast/full-no-nak", baseCfg(core.Blast, core.FullNoNak), hostileLosslessScript, false},
		{"saw", baseCfg(core.StopAndWait, core.GoBackN), sawDupScript, false},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := Scenario{
				Name:      c.name,
				Adversary: params.Adversary{Script: c.script},
				Config:    c.cfg,
				Seed:      7,
			}
			simOut, err := sc.RunSim()
			if err != nil {
				t.Fatal(err)
			}
			if !simOut.Completed || !simOut.IntactPayload(payload) {
				t.Fatalf("sim: completed=%v payload intact=%v", simOut.Completed, simOut.IntactPayload(payload))
			}
			if c.wantRetransmits && simOut.Retransmits == 0 {
				t.Error("script forced no retransmissions; scenario is vacuous")
			}
			if simOut.Duplicates == 0 {
				t.Error("script injected no observable duplicates; scenario is vacuous")
			}

			vkOut, err := sc.RunVKernel()
			if err != nil {
				t.Fatal(err)
			}
			if !vkOut.IntactPayload(payload) {
				t.Error("vkernel: delivered payload differs")
			}
			if vkOut.Counts != simOut.Counts {
				t.Errorf("vkernel counters diverge from sim:\nsim     %+v\nvkernel %+v", simOut.Counts, vkOut.Counts)
			}

			if !udpOK {
				t.Skip("no UDP loopback: sim/vkernel conformance only")
			}
			udpOut, err := sc.RunUDP()
			if err != nil {
				t.Fatal(err)
			}
			if !udpOut.Completed || !udpOut.IntactPayload(payload) {
				t.Errorf("udp: completed=%v payload intact=%v", udpOut.Completed, udpOut.IntactPayload(payload))
			}
			if udpOut.Counts != simOut.Counts {
				t.Errorf("udp counters diverge from sim:\nsim %+v\nudp %+v", simOut.Counts, udpOut.Counts)
			}
		})
	}
}

// TestScenarioSeededAllSubstrates is the acceptance scenario: one seeded
// adversary with reorder depth ≥ 2, duplication > 0 and corruption > 0 must
// complete for all four blast strategies on all three substrates with
// byte-identical delivered payloads. (Counters legitimately differ here —
// the substrates see different arrival orders, so the seeded draws land on
// different packets; the scripted conformance test above is what pins
// counters.)
func TestScenarioSeededAllSubstrates(t *testing.T) {
	udpOK := true
	if c, err := net.ListenPacket("udp", "127.0.0.1:0"); err != nil {
		udpOK = false
	} else {
		c.Close()
	}
	adv := params.Adversary{
		Loss:          params.LossModel{PNet: 0.01},
		ReorderProb:   0.05,
		ReorderDepth:  2,
		DuplicateProb: 0.04,
		CorruptProb:   0.03,
		JitterMax:     300 * time.Microsecond,
	}
	payload := advPayload(16000, 3)
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		t.Run(s.String(), func(t *testing.T) {
			sc := Scenario{
				Name:      "seeded-" + s.String(),
				Adversary: adv,
				Config: core.Config{
					TransferID:     1,
					Bytes:          len(payload),
					ChunkSize:      1000,
					Protocol:       core.Blast,
					Strategy:       s,
					RetransTimeout: 80 * time.Millisecond,
					MaxAttempts:    200,
					Linger:         120 * time.Millisecond,
					ReceiverIdle:   3 * time.Second,
					Payload:        payload,
				},
				Seed: int64(s) + 11,
			}
			simOut, err := sc.RunSim()
			if err != nil {
				t.Fatal(err)
			}
			if !simOut.IntactPayload(payload) {
				t.Error("sim payload corrupted")
			}
			vkOut, err := sc.RunVKernel()
			if err != nil {
				t.Fatal(err)
			}
			if !vkOut.IntactPayload(payload) {
				t.Error("vkernel payload corrupted")
			}
			if !udpOK {
				t.Skip("no UDP loopback")
			}
			udpOut, err := sc.RunUDP()
			if err != nil {
				t.Fatal(err)
			}
			if !udpOut.IntactPayload(payload) {
				t.Error("udp payload corrupted")
			}
		})
	}
}

// Property across random synthetic hardware: the four §2.1.3 formulas keep
// their ordering T_dbl ≤ T_B ≤ T_SW ≤ T_SAW, and the simulator agrees with
// the blast formula exactly, whatever the copy/wire ratio.
func TestConformanceRandomHardware(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		// Deterministic pseudo-random models spanning C/T from ~0.05 to ~20.
		dataCopy := time.Duration(50+137*trial%3000) * time.Microsecond
		ackCopy := dataCopy / time.Duration(4+trial%13)
		bw := int64(4_000_000 + 1_000_000*(trial%17))
		m := params.NewCostModel(fmt.Sprintf("rand-%d", trial),
			dataCopy, ackCopy, bw, time.Duration(trial%30)*time.Microsecond)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := 3 + trial%40

		dbl := analytic.TimeBlastDouble(params.DoubleBuffered(m), n)
		b := analytic.TimeBlast(m, n)
		sw := analytic.TimeSlidingWindow(m, n)
		saw := analytic.TimeStopAndWait(m, n)
		if !(dbl <= b && b <= sw && sw <= saw) {
			t.Fatalf("trial %d: formula ordering violated: %v %v %v %v", trial, dbl, b, sw, saw)
		}

		cfg := core.Config{
			TransferID:     1,
			Bytes:          n * 1024,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			RetransTimeout: 30 * time.Second,
		}
		res, err := Transfer(cfg, Options{Cost: m})
		if err != nil || res.Failed() {
			t.Fatalf("trial %d: %v %v", trial, err, res.SendErr)
		}
		if want := b + 2*m.Propagation; res.Send.Elapsed != want {
			t.Fatalf("trial %d (%s, n=%d): sim %v != formula %v",
				trial, m.Name, n, res.Send.Elapsed, want)
		}
	}
}
