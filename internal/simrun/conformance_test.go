package simrun

import (
	"fmt"
	"testing"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/stats"
)

// Conformance matrix: every protocol on every hardware preset at several
// sizes must match its §2.1.3 closed form. This is the regression net that
// keeps the simulator and the analytic model from drifting apart.
func TestConformanceMatrix(t *testing.T) {
	models := []params.CostModel{
		params.Standalone3Com(),
		params.VKernel(),
		params.ExcelanDMA(),
		params.ModernGigabit(),
	}
	sizes := []int{1, 7, 64}

	type variant struct {
		proto   core.Protocol
		formula func(params.CostModel, int) time.Duration
		// exact requires equality up to the 2τ propagation the formulas
		// ignore; otherwise a 1% relative tolerance applies (T_SW's tail
		// idealisation).
		exact bool
	}
	variants := []variant{
		{core.StopAndWait, analytic.TimeStopAndWait, true},
		{core.Blast, analytic.TimeBlast, true},
		{core.SlidingWindow, analytic.TimeSlidingWindow, false},
	}

	for _, m := range models {
		for _, n := range sizes {
			for _, v := range variants {
				name := fmt.Sprintf("%s/%s/n=%d", m.Name, v.proto, n)
				t.Run(name, func(t *testing.T) {
					cfg := core.Config{
						TransferID:     1,
						Bytes:          n * 1024,
						Protocol:       v.proto,
						Strategy:       core.GoBackN,
						RetransTimeout: 10 * time.Second,
					}
					res, err := Transfer(cfg, Options{Cost: m})
					if err != nil || res.Failed() {
						t.Fatal(err, res.SendErr, res.RecvErr)
					}
					want := v.formula(m, n)
					got := res.Send.Elapsed
					if v.proto == core.SlidingWindow && n == 1 {
						// Documented deviation: the paper's T_SW formula
						// undercounts one ack copy at N=1. A 1-packet
						// transfer is the same serial exchange under every
						// protocol; assert that invariant instead.
						if exact := analytic.TimeStopAndWait(m, 1) + 2*m.Propagation; got != exact {
							t.Errorf("1-packet SW = %v, want the universal exchange %v", got, exact)
						}
						return
					}
					if v.exact {
						// The formulas ignore propagation; SAW pays 2τ per
						// packet, blast 2τ per transfer.
						slack := 2 * m.Propagation
						if v.proto == core.StopAndWait {
							slack = time.Duration(2*n) * m.Propagation
						}
						if got != want+slack {
							t.Errorf("sim %v, formula %v + slack %v", got, want, slack)
						}
						return
					}
					if re := stats.RelErr(float64(got), float64(want)); re > 0.05 {
						t.Errorf("sim %v vs formula %v (rel err %.4f)", got, want, re)
					}
				})
			}
			// Double-buffered blast against its two-regime formula.
			md := params.DoubleBuffered(m)
			t.Run(fmt.Sprintf("%s/blast-dblbuf/n=%d", m.Name, n), func(t *testing.T) {
				cfg := core.Config{
					TransferID:     1,
					Bytes:          n * 1024,
					Protocol:       core.BlastAsync,
					Strategy:       core.GoBackN,
					RetransTimeout: 10 * time.Second,
				}
				res, err := Transfer(cfg, Options{Cost: md})
				if err != nil || res.Failed() {
					t.Fatal(err, res.SendErr, res.RecvErr)
				}
				want := analytic.TimeBlastDouble(md, n) + 2*md.Propagation
				if res.Send.Elapsed != want {
					t.Errorf("sim %v, formula %v", res.Send.Elapsed, want)
				}
			})
		}
	}
}

// Property across random synthetic hardware: the four §2.1.3 formulas keep
// their ordering T_dbl ≤ T_B ≤ T_SW ≤ T_SAW, and the simulator agrees with
// the blast formula exactly, whatever the copy/wire ratio.
func TestConformanceRandomHardware(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		// Deterministic pseudo-random models spanning C/T from ~0.05 to ~20.
		dataCopy := time.Duration(50+137*trial%3000) * time.Microsecond
		ackCopy := dataCopy / time.Duration(4+trial%13)
		bw := int64(4_000_000 + 1_000_000*(trial%17))
		m := params.NewCostModel(fmt.Sprintf("rand-%d", trial),
			dataCopy, ackCopy, bw, time.Duration(trial%30)*time.Microsecond)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := 3 + trial%40

		dbl := analytic.TimeBlastDouble(params.DoubleBuffered(m), n)
		b := analytic.TimeBlast(m, n)
		sw := analytic.TimeSlidingWindow(m, n)
		saw := analytic.TimeStopAndWait(m, n)
		if !(dbl <= b && b <= sw && sw <= saw) {
			t.Fatalf("trial %d: formula ordering violated: %v %v %v %v", trial, dbl, b, sw, saw)
		}

		cfg := core.Config{
			TransferID:     1,
			Bytes:          n * 1024,
			Protocol:       core.Blast,
			Strategy:       core.GoBackN,
			RetransTimeout: 30 * time.Second,
		}
		res, err := Transfer(cfg, Options{Cost: m})
		if err != nil || res.Failed() {
			t.Fatalf("trial %d: %v %v", trial, err, res.SendErr)
		}
		if want := b + 2*m.Propagation; res.Send.Elapsed != want {
			t.Fatalf("trial %d (%s, n=%d): sim %v != formula %v",
				trial, m.Name, n, res.Send.Elapsed, want)
		}
	}
}
