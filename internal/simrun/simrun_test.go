package simrun

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/stats"
)

// paper64K is the canonical 64 KB transfer of the paper's tables.
func paper64K(p core.Protocol, s core.Strategy) core.Config {
	return core.Config{
		TransferID:     1,
		Bytes:          64 * 1024,
		Protocol:       p,
		Strategy:       s,
		RetransTimeout: 200 * time.Millisecond,
	}
}

func mustTransfer(t *testing.T, cfg core.Config, opt Options) Result {
	t.Helper()
	res, err := Transfer(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SendErr != nil || res.RecvErr != nil {
		t.Fatalf("transfer failed: send=%v recv=%v", res.SendErr, res.RecvErr)
	}
	if !res.Recv.Completed {
		t.Fatal("receiver did not complete")
	}
	if res.Recv.Bytes != cfg.Bytes {
		t.Fatalf("receiver got %d bytes, want %d", res.Recv.Bytes, cfg.Bytes)
	}
	return res
}

// Error-free elapsed times must equal the paper's §2.1.3 closed forms
// (plus the 2τ round-trip propagation the formulas ignore).
func TestErrorFreeMatchesPaperFormulas(t *testing.T) {
	m := params.Standalone3Com()
	C, Ca, T, Ta, tau := m.C(), m.Ca(), m.T(), m.Ta(), m.Propagation
	const n = 64
	nd := time.Duration(n)

	t.Run("stop-and-wait", func(t *testing.T) {
		res := mustTransfer(t, paper64K(core.StopAndWait, core.FullNoNak), Options{Cost: m})
		want := nd * (2*C + 2*Ca + T + Ta + 2*tau)
		if res.Send.Elapsed != want {
			t.Errorf("T_SAW = %v, want %v", res.Send.Elapsed, want)
		}
		// The paper's headline: ≈ 3.91–3.93 ms per packet.
		perPkt := res.Send.Elapsed / nd
		if perPkt < 3900*time.Microsecond || perPkt > 3950*time.Microsecond {
			t.Errorf("per-packet = %v, want ≈ 3.91 ms", perPkt)
		}
	})

	t.Run("blast", func(t *testing.T) {
		res := mustTransfer(t, paper64K(core.Blast, core.GoBackN), Options{Cost: m})
		want := nd*(C+T) + C + 2*Ca + Ta + 2*tau
		if res.Send.Elapsed != want {
			t.Errorf("T_B = %v, want %v", res.Send.Elapsed, want)
		}
	})

	t.Run("sliding-window", func(t *testing.T) {
		res := mustTransfer(t, paper64K(core.SlidingWindow, core.FullNoNak), Options{Cost: m})
		paper := nd*(C+Ca+T) + C + Ta
		// The paper's formula idealises the tail (it folds the final ack
		// handling differently than a cycle-accurate execution); the sim
		// lands within a fraction of a percent.
		if re := stats.RelErr(float64(res.Send.Elapsed), float64(paper)); re > 0.005 {
			t.Errorf("T_SW = %v, paper formula %v (rel err %.4f)", res.Send.Elapsed, paper, re)
		}
	})

	t.Run("blast-double-buffered", func(t *testing.T) {
		res := mustTransfer(t, paper64K(core.BlastAsync, core.GoBackN),
			Options{Cost: params.DoubleBuffered(m)})
		// T ≤ C on this hardware: T_dbl = N·C + T + C + 2Ca + Ta.
		want := nd*C + T + C + 2*Ca + Ta + 2*tau
		if res.Send.Elapsed != want {
			t.Errorf("T_dbl = %v, want %v", res.Send.Elapsed, want)
		}
	})
}

// On transmission-bound hardware (T > C) the double-buffered formula
// switches to N·T + 2C + 2Ca + Ta (§2.1.3).
func TestDoubleBufferedTransmissionBound(t *testing.T) {
	m := params.NewCostModel("fastcopy", 400*time.Microsecond, 40*time.Microsecond,
		10_000_000, 10*time.Microsecond)
	m = params.DoubleBuffered(m)
	C, Ca, T, Ta, tau := m.C(), m.Ca(), m.T(), m.Ta(), m.Propagation
	if T <= C {
		t.Fatalf("test premise violated: T=%v C=%v", T, C)
	}
	const n = 32
	cfg := paper64K(core.BlastAsync, core.GoBackN)
	cfg.Bytes = n * 1024
	res := mustTransfer(t, cfg, Options{Cost: m})
	want := time.Duration(n)*T + 2*C + 2*Ca + Ta + 2*tau
	if res.Send.Elapsed != want {
		t.Errorf("T_dbl(T>C) = %v, want %v", res.Send.Elapsed, want)
	}
}

// The headline of Table 1: stop-and-wait ≈ 2× slower than blast, sliding
// window slightly slower than blast.
func TestProtocolOrdering(t *testing.T) {
	m := params.Standalone3Com()
	saw := mustTransfer(t, paper64K(core.StopAndWait, core.FullNoNak), Options{Cost: m}).Send.Elapsed
	sw := mustTransfer(t, paper64K(core.SlidingWindow, core.FullNoNak), Options{Cost: m}).Send.Elapsed
	b := mustTransfer(t, paper64K(core.Blast, core.GoBackN), Options{Cost: m}).Send.Elapsed
	if !(b < sw && sw < saw) {
		t.Errorf("ordering violated: blast=%v sw=%v saw=%v", b, sw, saw)
	}
	ratio := float64(saw) / float64(b)
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("SAW/blast ratio = %.2f, paper says ≈ 2", ratio)
	}
}

// V-kernel preset: T0(1) ≈ 5.9 ms and T0(64) ≈ 173 ms (Table 3 / Fig. 5).
func TestVKernelTable3Anchors(t *testing.T) {
	m := params.VKernel()
	one := paper64K(core.StopAndWait, core.FullNoNak)
	one.Bytes = 1024
	res1 := mustTransfer(t, one, Options{Cost: m})
	if res1.Send.Elapsed < 5800*time.Microsecond || res1.Send.Elapsed > 6000*time.Microsecond {
		t.Errorf("T0(1) = %v, want ≈ 5.9 ms", res1.Send.Elapsed)
	}
	res64 := mustTransfer(t, paper64K(core.Blast, core.GoBackN), Options{Cost: m})
	if res64.Send.Elapsed < 172*time.Millisecond || res64.Send.Elapsed > 174*time.Millisecond {
		t.Errorf("T0(64) = %v, want ≈ 173 ms", res64.Send.Elapsed)
	}
}

// Every strategy must deliver the complete transfer under loss, for many
// seeds: the central correctness invariant.
func TestLossRecoveryAllStrategies(t *testing.T) {
	m := params.VKernel()
	strategies := []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective}
	losses := []params.LossModel{
		{PNet: 0.01},
		{PNet: 0.05},
		{PNet: 0.02, PIface: 0.02},
	}
	for _, s := range strategies {
		for _, loss := range losses {
			for seed := int64(0); seed < 8; seed++ {
				cfg := paper64K(core.Blast, s)
				res, err := Transfer(cfg, Options{Cost: m, Loss: loss, Seed: seed})
				if err != nil {
					t.Fatalf("%v loss=%+v seed=%d: %v", s, loss, seed, err)
				}
				if res.Failed() {
					t.Fatalf("%v loss=%+v seed=%d: send=%v recv=%v", s, loss, seed, res.SendErr, res.RecvErr)
				}
				if res.Recv.Bytes != cfg.Bytes {
					t.Fatalf("%v seed=%d: got %d bytes", s, seed, res.Recv.Bytes)
				}
				if res.Send.Elapsed <= 0 {
					t.Fatalf("%v seed=%d: elapsed %v", s, seed, res.Send.Elapsed)
				}
			}
		}
	}
}

// Stop-and-wait and sliding-window must also recover from loss.
func TestLossRecoveryInOrderProtocols(t *testing.T) {
	m := params.VKernel()
	for _, p := range []core.Protocol{core.StopAndWait, core.SlidingWindow} {
		for seed := int64(0); seed < 8; seed++ {
			cfg := paper64K(p, core.FullNoNak)
			cfg.RetransTimeout = 50 * time.Millisecond
			res, err := Transfer(cfg, Options{Cost: m, Loss: params.LossModel{PNet: 0.03}, Seed: seed})
			if err != nil {
				t.Fatalf("%v seed=%d: %v", p, seed, err)
			}
			if res.Failed() || res.Recv.Bytes != cfg.Bytes {
				t.Fatalf("%v seed=%d: failed (send=%v recv=%v bytes=%d)",
					p, seed, res.SendErr, res.RecvErr, res.Recv.Bytes)
			}
		}
	}
}

// Selective retransmission must never resend more data packets than
// go-back-n for the same loss pattern (same seed).
func TestSelectiveBeatsGoBackN(t *testing.T) {
	m := params.VKernel()
	var selTotal, gbnTotal int
	for seed := int64(0); seed < 20; seed++ {
		sel, err := Transfer(paper64K(core.Blast, core.Selective),
			Options{Cost: m, Loss: params.LossModel{PNet: 0.05}, Seed: seed})
		if err != nil || sel.Failed() {
			t.Fatal(err, sel.SendErr, sel.RecvErr)
		}
		gbn, err := Transfer(paper64K(core.Blast, core.GoBackN),
			Options{Cost: m, Loss: params.LossModel{PNet: 0.05}, Seed: seed})
		if err != nil || gbn.Failed() {
			t.Fatal(err, gbn.SendErr, gbn.RecvErr)
		}
		selTotal += sel.Send.DataPackets
		gbnTotal += gbn.Send.DataPackets
	}
	if selTotal > gbnTotal {
		t.Errorf("selective sent %d packets total, go-back-n %d", selTotal, gbnTotal)
	}
}

// Full retransmission (R1/R2) must resend whole windows; go-back-n resends
// suffixes; the error-free run retransmits nothing.
func TestRetransmissionAccounting(t *testing.T) {
	m := params.VKernel()
	clean := mustTransfer(t, paper64K(core.Blast, core.GoBackN), Options{Cost: m})
	if clean.Send.Retransmits != 0 || clean.Send.Rounds != 1 {
		t.Errorf("error-free run: %+v", clean.Send)
	}
	if clean.Send.DataPackets != 64 {
		t.Errorf("error-free run sent %d packets", clean.Send.DataPackets)
	}
	if clean.Recv.Duplicates != 0 {
		t.Errorf("error-free run had %d dups", clean.Recv.Duplicates)
	}

	lossy, err := Transfer(paper64K(core.Blast, core.FullNak),
		Options{Cost: m, Loss: params.LossModel{PNet: 0.05}, Seed: 3})
	if err != nil || lossy.Failed() {
		t.Fatal(err)
	}
	if lossy.Send.Retransmits == 0 {
		t.Error("5% loss with full retransmission must retransmit")
	}
}

// Multiblast (§3.1.3): splitting a large transfer into several blasts, each
// individually acknowledged.
func TestMultiblast(t *testing.T) {
	m := params.VKernel()
	cfg := paper64K(core.Blast, core.GoBackN)
	cfg.Bytes = 256 * 1024 // 256 packets
	cfg.Window = 64
	res := mustTransfer(t, cfg, Options{Cost: m})
	if res.Send.AcksReceived != 4 {
		t.Errorf("acks = %d, want 4 (one per blast)", res.Send.AcksReceived)
	}
	if res.Recv.AcksSent != 4 {
		t.Errorf("receiver sent %d acks", res.Recv.AcksSent)
	}
	// Multiblast under loss.
	for seed := int64(0); seed < 5; seed++ {
		r, err := Transfer(cfg, Options{Cost: m, Loss: params.LossModel{PNet: 0.02}, Seed: seed})
		if err != nil || r.Failed() || r.Recv.Bytes != cfg.Bytes {
			t.Fatalf("seed %d: %v %v %v", seed, err, r.SendErr, r.RecvErr)
		}
	}
}

// Real payload mode: bytes must arrive intact, in order, with a matching
// whole-transfer checksum.
func TestRealPayloadIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 10_000)
	rng.Read(payload)
	for _, p := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
		cfg := core.Config{
			TransferID:     7,
			Bytes:          len(payload),
			Payload:        payload,
			Protocol:       p,
			Strategy:       core.Selective,
			RetransTimeout: 100 * time.Millisecond,
		}
		res, err := Transfer(cfg, Options{Cost: params.Standalone3Com(),
			Loss: params.LossModel{PNet: 0.02}, Seed: 5})
		if err != nil || res.Failed() {
			t.Fatalf("%v: %v %v %v", p, err, res.SendErr, res.RecvErr)
		}
		if !bytes.Equal(res.Recv.Data, payload) {
			t.Fatalf("%v: payload corrupted", p)
		}
		if res.Recv.Checksum != core.TransferChecksum(payload) {
			t.Fatalf("%v: checksum mismatch", p)
		}
	}
}

// A hopeless link makes the sender give up with ErrGiveUp.
func TestGiveUp(t *testing.T) {
	cfg := paper64K(core.Blast, core.GoBackN)
	cfg.MaxAttempts = 3
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.ReceiverIdle = 200 * time.Millisecond
	res, err := Transfer(cfg, Options{Cost: params.Standalone3Com(),
		Loss: params.LossModel{PNet: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.SendErr, core.ErrGiveUp) {
		t.Errorf("SendErr = %v, want ErrGiveUp", res.SendErr)
	}
	if res.Recv.Completed {
		t.Error("receiver cannot have completed")
	}
}

// Determinism: identical seeds give identical results.
func TestTransferDeterminism(t *testing.T) {
	cfg := paper64K(core.Blast, core.GoBackN)
	opt := Options{Cost: params.VKernel(), Loss: params.LossModel{PNet: 0.05}, Seed: 99}
	a, err := Transfer(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transfer(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Send != b.Send {
		t.Errorf("send results differ:\n%+v\n%+v", a.Send, b.Send)
	}
	if a.Send.Elapsed != b.Send.Elapsed {
		t.Error("elapsed differs")
	}
}

// Randomised robustness sweep: many random configurations and loss rates;
// the transfer must either complete exactly or give up cleanly — never
// deliver the wrong byte count, never deadlock.
func TestRandomisedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	protos := []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast, core.BlastAsync}
	strategies := []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective}
	for trial := 0; trial < 60; trial++ {
		cfg := core.Config{
			TransferID:     uint32(trial),
			Bytes:          1 + rng.Intn(100*1024),
			ChunkSize:      256 << rng.Intn(3), // 256,512,1024
			Protocol:       protos[rng.Intn(len(protos))],
			Strategy:       strategies[rng.Intn(len(strategies))],
			RetransTimeout: time.Duration(20+rng.Intn(200)) * time.Millisecond,
			Window:         rng.Intn(3) * 16, // 0,16,32
		}
		loss := params.LossModel{PNet: []float64{0, 0.01, 0.08}[rng.Intn(3)]}
		cost := params.Standalone3Com()
		if rng.Intn(2) == 0 {
			cost = params.DoubleBuffered(params.VKernel())
		}
		res, err := Transfer(cfg, Options{Cost: cost, Loss: loss, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d (%+v): substrate error %v", trial, cfg, err)
		}
		if res.SendErr == nil {
			if !res.Recv.Completed || res.Recv.Bytes != cfg.Bytes {
				t.Fatalf("trial %d (%+v): sender ok but receiver got %d/%d (completed=%v)",
					trial, cfg, res.Recv.Bytes, cfg.Bytes, res.Recv.Completed)
			}
		}
	}
}

// Interface counters must reconcile with protocol results in the error-free
// case: every transmitted packet is received.
func TestCountersReconcile(t *testing.T) {
	res := mustTransfer(t, paper64K(core.Blast, core.GoBackN),
		Options{Cost: params.Standalone3Com()})
	// 64 data packets plus the post-measurement FIN.
	if res.SrcCounters.TxPackets != 65 {
		t.Errorf("src tx = %d, want 65 (64 data + fin)", res.SrcCounters.TxPackets)
	}
	if res.DstCounters.RxPackets != 65 {
		t.Errorf("dst rx = %d, want 65", res.DstCounters.RxPackets)
	}
	if res.DstCounters.WireDrops+res.DstCounters.IfaceDrops+res.DstCounters.Overruns != 0 {
		t.Errorf("error-free run dropped packets: %+v", res.DstCounters)
	}
	// One ack back.
	if res.DstCounters.TxPackets != 1 || res.SrcCounters.RxPackets != 1 {
		t.Errorf("ack counters: dst.tx=%d src.rx=%d", res.DstCounters.TxPackets, res.SrcCounters.RxPackets)
	}
}
