package simrun

import (
	"reflect"
	"testing"
	"time"

	"blastlan/internal/disk"
)

// A thundering herd against one cold cache costs exactly one pass over the
// platter: with the cache at least file-sized, ChunkReads equals the file's
// chunk count no matter how many clients pulled, and the batched read-ahead
// folds that pass into far fewer disk accesses than chunks.
func TestDiskLoadSingleReadPerChunk(t *testing.T) {
	const fileBytes, chunk = 256 << 10, 1 << 10
	sc := DiskLoadScenario{
		Name:      "herd",
		N:         8,
		FileBytes: fileBytes,
		Chunk:     chunk,
		ReadAhead: 7,
		Seed:      42,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.N || res.Served != sc.N {
		t.Fatalf("completed %d served %d, want %d", res.Completed, res.Served, sc.N)
	}
	chunks := int64(fileBytes / chunk)
	if res.Store.ChunkReads != chunks {
		t.Errorf("ChunkReads = %d, want exactly %d (one disk pass for %d clients)",
			res.Store.ChunkReads, chunks, sc.N)
	}
	if want := chunks / 8; res.Store.ReadOps != want {
		t.Errorf("ReadOps = %d, want %d (8-chunk spans)", res.Store.ReadOps, want)
	}
	if res.Store.Hits == 0 {
		t.Error("no cache hits across 8 pullers of one file")
	}
	if res.Store.Evictions != 0 {
		t.Errorf("evictions = %d with an ample cache", res.Store.Evictions)
	}
}

// Same seed, same bits: the whole result — every virtual timestamp and
// every store counter — reproduces exactly across runs.
func TestDiskLoadDeterministic(t *testing.T) {
	sc := DiskLoadScenario{
		Name:       "det",
		N:          6,
		FileBytes:  128 << 10,
		Chunk:      1 << 10,
		Spacing:    3 * time.Millisecond,
		CacheBytes: 32 << 10, // pressure: evictions must reproduce too
		ReadAhead:  7,
		Seed:       7,
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("runs diverged:\n a = %+v\n b = %+v", a, b)
	}
	if a.Completed != sc.N {
		t.Fatalf("completed %d, want %d", a.Completed, sc.N)
	}
	if a.Store.Evictions == 0 {
		t.Error("no evictions with a cache a quarter of the file")
	}
	if a.Store.ChunkReads <= int64(128<<10/(1<<10)) {
		t.Errorf("ChunkReads = %d: eviction pressure should force re-reads", a.Store.ChunkReads)
	}
}

// Cold versus hot through the same store: a late second client pulls the
// whole file from cache and finishes far faster than the first, whose cold
// read is bounded below by the disk model's full-file read time.
func TestDiskLoadColdVsHot(t *testing.T) {
	const fileBytes, chunk, ra = 1 << 20, 1 << 10, 7
	g := disk.FujitsuEagle()
	sc := DiskLoadScenario{
		Name:      "coldhot",
		Disk:      g,
		N:         2,
		FileBytes: fileBytes,
		Chunk:     chunk,
		Spacing:   2 * time.Second, // client 1 arrives after client 0 finishes
		ReadAhead: ra,
		Seed:      3,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d, want 2", res.Completed)
	}
	cold, hot := res.Clients[0], res.Clients[1]
	// The cold pull cannot beat the platter: its elapsed time is at least
	// the model's cost of reading the file in read-ahead-sized pages.
	diskFloor := g.FileReadTime(fileBytes, (ra+1)*chunk)
	if cold.Elapsed < diskFloor {
		t.Errorf("cold pull took %v, below the disk floor %v", cold.Elapsed, diskFloor)
	}
	if hot.Elapsed*4 > cold.Elapsed {
		t.Errorf("hot pull (%v) not ≫ faster than cold (%v)", hot.Elapsed, cold.Elapsed)
	}
	if res.Store.ChunkReads != int64(fileBytes/chunk) {
		t.Errorf("ChunkReads = %d, want %d (hot client cost zero disk reads)",
			res.Store.ChunkReads, fileBytes/chunk)
	}
}
