package simrun

import (
	"reflect"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
)

// loadScenario64 is the acceptance scenario: 64 concurrent seeded clients
// with staggered arrivals, mixed sizes and strategies, against one sharded
// simulated server.
func loadScenario64() LoadScenario {
	return LoadScenario{
		Name:        "load64",
		N:           64,
		Bytes:       []int{16 << 10, 64 << 10, 256 << 10},
		Strategies:  []core.Strategy{core.GoBackN, core.Selective, core.FullNak},
		Arrival:     200 * time.Millisecond,
		Concurrency: 8,
		Seed:        7,
		Trials:      3,
	}
}

// TestLoadScenarioCompletes pins the basic contract: every client's pull
// completes with an intact payload, the server served them all, and the
// fairness index is sane.
func TestLoadScenarioCompletes(t *testing.T) {
	sc := LoadScenario{
		Name:        "load8",
		N:           8,
		Bytes:       []int{32 << 10, 96 << 10},
		Arrival:     50 * time.Millisecond,
		Concurrency: 4,
		Seed:        3,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.N || res.Served != sc.N {
		t.Fatalf("completed %d served %d, want %d", res.Completed, res.Served, sc.N)
	}
	for _, c := range res.Clients {
		if !c.ChecksumOK {
			t.Errorf("client %d: checksum mismatch (bytes %d)", c.Client, c.Bytes)
		}
		if c.Counts.DataSent == 0 || c.Counts.DataRecv == 0 {
			t.Errorf("client %d: empty counters %+v", c.Client, c.Counts)
		}
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness %v out of range", res.Fairness)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan %v", res.Makespan)
	}
}

// TestLoadScenarioCapRecovery pins that clients beyond the session cap
// recover through REQ retransmission: with a cap of 2 and a thundering
// herd of 8, everyone still completes.
func TestLoadScenarioCapRecovery(t *testing.T) {
	sc := LoadScenario{
		Name:        "cap2",
		N:           8,
		Bytes:       []int{48 << 10},
		Concurrency: 2,
		Seed:        11,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.N {
		t.Fatalf("completed %d of %d under cap 2", res.Completed, sc.N)
	}
}

// TestLoadScenarioAdversarial runs the herd under a per-client seeded
// drop/duplicate adversary: everyone must still complete, with recovery
// visibly engaged.
func TestLoadScenarioAdversarial(t *testing.T) {
	sc := LoadScenario{
		Name:        "load-adv",
		N:           12,
		Bytes:       []int{64 << 10},
		Arrival:     20 * time.Millisecond,
		Concurrency: 4,
		Adversary: params.Adversary{
			Loss:          params.LossModel{PNet: 0.02},
			DuplicateProb: 0.01,
		},
		Seed: 19,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != sc.N {
		t.Fatalf("completed %d of %d under adversary", res.Completed, sc.N)
	}
	if res.Agg.Retransmits == 0 {
		t.Error("no retransmissions under 2% loss; scenario is vacuous")
	}
}

// TestLoadScenarioDeterministic is the acceptance regression: the 64-client
// scenario is bit-identical run to run (the DES handoff schedule admits no
// nondeterminism at any GOMAXPROCS), and the trial sampler merges to
// bit-identical aggregates at any worker count.
func TestLoadScenarioDeterministic(t *testing.T) {
	sc := loadScenario64()
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("64-client load scenario is not deterministic run to run")
	}
	if a.Completed != sc.N {
		t.Fatalf("completed %d of %d", a.Completed, sc.N)
	}

	seq, err := sc.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sc.Sample(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("load sampler diverges across worker counts:\nseq %+v\npar %+v", seq, par)
	}
}
