package simrun

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/udplan"
	"blastlan/internal/wire"
)

// Fault-injection conformance: a server that crashes after serving its 80th
// chunk and restarts 200ms later, implemented with the substrate's own
// crash mechanics — station close/reopen on the simulator, socket
// close/rebind on UDP — must yield the same recovered transfer through
// core.PullResume on both substrates: identical reassembled bytes, a resumed
// session on both, and (pinned exactly on the deterministic substrate) not a
// single verified chunk re-fetched.

const (
	fcChunk    = 1000
	fcChunks   = 200
	fcBytes    = fcChunk * fcChunks
	fcCrashAt  = 80
	fcDowntime = 200 * time.Millisecond
)

func fcFaults() params.Faults {
	return params.Faults{CrashAfterChunks: []int64{fcCrashAt}, Downtime: fcDowntime}
}

func fcConfig() core.Config {
	return core.Config{
		TransferID:     7,
		Bytes:          fcBytes,
		ChunkSize:      fcChunk,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		RetransTimeout: 100 * time.Millisecond,
		// One REQ round per session: recovery belongs to the resume layer's
		// offset REQs (see FaultScenario).
		MaxAttempts: 1,
	}
}

// fcSource streams the seeded stream and fires crash on the trigger's
// schedule — the serving side both substrates share.
func fcSource(trigger *params.CrashTrigger, crash func()) func(wire.Req) (core.ChunkSource, bool) {
	return func(r wire.Req) (core.ChunkSource, bool) {
		if r.Bytes == 0 || r.Chunk == 0 {
			return nil, false
		}
		stream := int(r.StreamBytes())
		base := core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks))
		return func(seq int, dst []byte) []byte {
			if trigger.OnChunk() {
				crash()
			}
			return base(seq, dst)
		}, true
	}
}

// runFaultConformanceSim recovers the transfer on the simulator: the crash
// closes the serving station mid-blast; a kernel timer flushes, reopens and
// re-serves it after the downtime.
func runFaultConformanceSim(t *testing.T) ([]byte, core.ResumeStats) {
	t.Helper()
	k := sim.NewKernel()
	n, err := sim.NewNetwork(k, params.ModernGigabit(), params.LossModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	serverSt := n.AddStation("server")
	trigger := fcFaults().Trigger()

	var srvErr error
	srv := &session.Server{Concurrency: 2, Idle: 5 * time.Minute, SessionIdle: 2 * time.Second}
	var crash func()
	srv.Source = fcSource(trigger, func() { crash() })
	var runServer func()
	runServer = func() {
		sim.Serve(n, serverSt, func(l *sim.Listener) {
			if err := srv.Run(l); err != nil && srvErr == nil {
				srvErr = err
			}
		})
	}
	crash = func() {
		if serverSt.Closed() {
			return
		}
		serverSt.Close()
		k.After(fcDowntime, func() {
			serverSt.FlushRx()
			serverSt.Reopen()
			runServer()
		})
	}
	runServer()

	var (
		data   []byte
		rstats core.ResumeStats
		cliErr error
	)
	clientSt := n.AddStation("client")
	k.Go("client", func(p *sim.Proc) {
		c := sim.NewEndpoint(p, clientSt, serverSt)
		var res core.RecvResult
		res, rstats, cliErr = core.PullResume(c, fcConfig(), core.ResumeOptions{
			Backoff: 50 * time.Millisecond,
			Seed:    1,
		})
		data = res.Data
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatalf("sim server: %v", srvErr)
	}
	if cliErr != nil {
		t.Fatalf("sim client: %v", cliErr)
	}
	return data, rstats
}

// runFaultConformanceUDP recovers the same transfer over real UDP loopback:
// the crash closes the serving socket under its sessions; after the downtime
// a fresh socket binds the same port and a new server incarnation takes
// over.
func runFaultConformanceUDP(t *testing.T) ([]byte, core.ResumeStats) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := conn.LocalAddr().String()
	trigger := fcFaults().Trigger()

	var (
		mu      sync.Mutex
		curConn net.PacketConn
	)
	srvDone := make(chan error, 2)
	var crash func()
	start := func(c net.PacketConn) {
		srv := udplan.NewServer(c)
		srv.Concurrency = 2
		srv.SessionIdle = 2 * time.Second
		srv.Source = fcSource(trigger, func() { crash() })
		mu.Lock()
		curConn = c
		mu.Unlock()
		go func() { srvDone <- srv.Run() }()
	}
	restarted := make(chan struct{})
	crash = func() {
		mu.Lock()
		dead := curConn
		mu.Unlock()
		dead.Close()
		time.AfterFunc(fcDowntime, func() {
			defer close(restarted)
			c2, err := net.ListenPacket("udp", addr)
			if err != nil {
				t.Errorf("rebind %s: %v", addr, err)
				return
			}
			start(c2)
		})
	}
	start(conn)

	e, err := udplan.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetSocketBuffers(1 << 20)
	res, rstats, cliErr := core.PullResume(e, fcConfig(), core.ResumeOptions{
		Backoff:    50 * time.Millisecond,
		MaxResumes: 16,
		Seed:       1,
	})
	if cliErr != nil {
		t.Fatalf("udp client: %v", cliErr)
	}

	<-restarted // both incarnations exist before teardown
	mu.Lock()
	curConn.Close()
	mu.Unlock()
	for i := 0; i < 2; i++ {
		if err := <-srvDone; err != nil {
			t.Fatalf("udp server: %v", err)
		}
	}
	return res.Data, rstats
}

// TestFaultConformance pins crash-recovery identity across substrates: the
// simulator's recovered bytes are the seeded stream, recovery goes through a
// resumed session that re-fetches only unverified chunks, and real UDP —
// with its own socket-level crash mechanics — reassembles byte-identical
// data.
func TestFaultConformance(t *testing.T) {
	simData, simStats := runFaultConformanceSim(t)

	want := core.SeededPayload(int64(fcBytes), fcBytes, fcChunk)
	if !bytes.Equal(simData, want) {
		t.Fatal("sim recovered bytes differ from the seeded stream")
	}
	if simStats.Sessions != 2 {
		t.Fatalf("sim sessions = %d, want exactly 2 (one crash, one resume)", simStats.Sessions)
	}
	if simStats.DupChunks != 0 {
		t.Fatalf("sim resume re-fetched %d verified chunks", simStats.DupChunks)
	}
	if simStats.ResumedChunks == 0 || simStats.ResumedChunks >= fcChunks {
		t.Fatalf("sim resume re-requested %d of %d chunks; want a strict mid-transfer tail",
			simStats.ResumedChunks, fcChunks)
	}

	udpData, udpStats := runFaultConformanceUDP(t)
	if !bytes.Equal(udpData, simData) {
		t.Fatal("recovered bytes differ between sim and udp")
	}
	if udpStats.Sessions < 2 {
		t.Fatalf("udp sessions = %d; the crash did not force a resume", udpStats.Sessions)
	}
}
