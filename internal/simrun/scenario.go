package simrun

import (
	"bytes"
	"fmt"
	"net"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/udplan"
	"blastlan/internal/vkernel"
)

// Scenario is one declarative hostile-network experiment: a transfer
// contract, the adversary it must survive, and a trial budget. The same
// scenario definition runs on all three substrates — the discrete-event
// simulator (RunSim, Sample), the V kernel (RunVKernel) and real UDP
// loopback sockets (RunUDP) — which is what lets the conformance suite
// assert that one seeded mangling script produces identical protocol
// behaviour everywhere.
type Scenario struct {
	// Name labels the scenario in test output and experiment tables.
	Name string
	// Cost is the simulator hardware model; the zero value means the
	// standalone §2.1 preset. Ignored by RunUDP (real time is real).
	Cost params.CostModel
	// Adversary is the hostile-network model (see params.Adversary).
	Adversary params.Adversary
	// Config is the two-sided transfer contract. Cross-substrate runs
	// (RunVKernel, RunUDP) need Config.Payload set: real substrates move
	// real bytes. Timeouts should be wall-clock sized — virtual time is
	// free, so one Config works on every substrate.
	Config core.Config
	// Trials is the Sample batch size (default 1).
	Trials int
	// Seed seeds trial 0; trial i uses Seed+i. The single-shot runners use
	// Seed directly.
	Seed int64
	// Batch, when > 1, runs RunUDP over the batched syscall datapath
	// (frame rings of this size) on both endpoints. Ignored by the
	// virtual-time substrates. The conformance suite pins that every batch
	// size produces identical protocol behaviour.
	Batch int
	// Tier, when non-zero, caps the batched datapath tier RunUDP probes up
	// to (udplan.Endpoint.MaxTier): the GSO conformance suite pins that the
	// same scenario script behaves identically whether frames ride
	// UDP_SEGMENT superbuffers, sendmmsg batches or WriteTo loops.
	Tier udplan.Tier
}

// withDefaults fills the zero fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Cost.BandwidthBitsPerSec == 0 {
		sc.Cost = params.Standalone3Com()
	}
	if sc.Trials <= 0 {
		sc.Trials = 1
	}
	return sc
}

// Options projects the scenario onto simulator options for one trial.
func (sc Scenario) Options() Options {
	sc = sc.withDefaults()
	return Options{Cost: sc.Cost, Adversary: sc.Adversary, Seed: sc.Seed}
}

// Sample fans the scenario's trials through the parallel sampling engine
// (trial i seeded Seed+i, merged in index order): the result is bit-identical
// at any worker count, which the adversary determinism regression asserts.
func (sc Scenario) Sample(workers int) (Stats, error) {
	sc = sc.withDefaults()
	return SampleWorkers(sc.Config, sc.Options(), sc.Trials, workers)
}

// Stripes projects the scenario onto per-stripe scenarios: the transfer is
// split into `streams` chunk-aligned byte ranges (core.PlanStripes), each
// getting the narrowed config (Payload sliced to its range, distinct
// TransferID, stripe coordinates set) and the per-stripe seed Seed+i — the
// same seeding udplan.PullStriped applies to its per-endpoint adversaries.
// Running each stripe scenario on two substrates and comparing is how the
// conformance suite pins that a striped transfer behaves identically
// everywhere.
func (sc Scenario) Stripes(streams int) []Scenario {
	sc = sc.withDefaults()
	chunk := sc.Config.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	plan := core.PlanStripes(sc.Config.Bytes, chunk, streams)
	out := make([]Scenario, 0, len(plan))
	for i, s := range plan {
		ssc := sc
		ssc.Name = fmt.Sprintf("%s/stripe%d", sc.Name, i)
		ssc.Config = core.StripeConfig(sc.Config, s)
		ssc.Seed = sc.Seed + int64(i)
		out = append(out, ssc)
	}
	return out
}

// Counts is the substrate-independent projection of one transfer's protocol
// counters — everything that must agree when the same scenario script runs
// on the simulator, the V kernel and UDP loopback. Elapsed times are
// excluded (virtual versus wall clock), as are post-completion linger
// tallies (they depend on teardown timing, not protocol behaviour).
type Counts struct {
	DataSent    int // sender data transmissions, including retransmissions
	Retransmits int
	Rounds      int
	Timeouts    int
	AcksIn      int
	NaksIn      int
	DataRecv    int // receiver data arrivals, including duplicates
	Duplicates  int
	AcksOut     int
	NaksOut     int
}

// Outcome reports one cross-substrate scenario run.
type Outcome struct {
	Counts
	Completed bool
	// Data is the payload the receiver reassembled.
	Data []byte
}

// IntactPayload reports whether the delivered bytes match the scenario's.
func (o Outcome) IntactPayload(want []byte) bool { return bytes.Equal(o.Data, want) }

// outcomeOf projects the two sides' results.
func outcomeOf(s core.SendResult, r core.RecvResult) Outcome {
	return Outcome{
		Counts: Counts{
			DataSent:    s.DataPackets,
			Retransmits: s.Retransmits,
			Rounds:      s.Rounds,
			Timeouts:    s.Timeouts,
			AcksIn:      s.AcksReceived,
			NaksIn:      s.NaksReceived,
			DataRecv:    r.DataPackets - r.LingerEvents,
			Duplicates:  r.Duplicates - r.LingerEvents,
			AcksOut:     r.AcksSent - r.LingerAcks,
			NaksOut:     r.NaksSent - r.LingerNaks,
		},
		Completed: r.Completed,
		Data:      r.Data,
	}
}

// RunSim executes the scenario once on the discrete-event simulator.
func (sc Scenario) RunSim() (Outcome, error) {
	sc = sc.withDefaults()
	res, err := Transfer(sc.Config, sc.Options())
	if err != nil {
		return Outcome{}, err
	}
	if res.Failed() {
		return Outcome{}, fmt.Errorf("simrun: scenario %s on sim: %v / %v", sc.Name, res.SendErr, res.RecvErr)
	}
	return outcomeOf(res.Send, res.Recv), nil
}

// RunVKernel executes the scenario once as a V-kernel MoveTo between two
// processes on a cluster with the same cost model and adversary seed.
func (sc Scenario) RunVKernel() (Outcome, error) {
	sc = sc.withDefaults()
	if sc.Config.Payload == nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s: V-kernel runs move real bytes; set Config.Payload", sc.Name)
	}
	c, err := vkernel.NewCluster(vkernel.Options{
		Cost:      sc.Cost,
		Seed:      sc.Seed,
		Adversary: sc.Adversary,
	})
	if err != nil {
		return Outcome{}, err
	}
	n := len(sc.Config.Payload)
	src := c.A.CreateProcess(n, false)
	dst := c.B.CreateProcess(n, true)
	copy(src.Bytes(), sc.Config.Payload)
	res, err := c.MoveTo(src, 0, dst, 0, n, vkernel.MoveOptions{
		Protocol:     sc.Config.Protocol,
		Strategy:     sc.Config.Strategy,
		Tr:           sc.Config.RetransTimeout,
		Window:       sc.Config.Window,
		Controller:   sc.Config.Controller,
		Adaptive:     sc.Config.Adaptive,
		Chunk:        sc.Config.ChunkSize,
		MaxAttempts:  sc.Config.MaxAttempts,
		Linger:       sc.Config.Linger,
		ReceiverIdle: sc.Config.ReceiverIdle,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s on vkernel: %w", sc.Name, err)
	}
	out := outcomeOf(res.Send, res.Recv)
	out.Data = append([]byte(nil), dst.Bytes()...)
	return out, nil
}

// RunUDP executes the scenario once over real UDP loopback sockets, with the
// whole adversary installed on the sending endpoint (both directions), which
// — like the simulator's network-level adversary — sees every packet of the
// transfer exactly once.
func (sc Scenario) RunUDP() (Outcome, error) {
	sc = sc.withDefaults()
	if sc.Config.Payload == nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s: UDP runs move real bytes; set Config.Payload", sc.Name)
	}
	cs, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s: %w", sc.Name, err)
	}
	defer cs.Close()
	ss, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s: %w", sc.Name, err)
	}
	defer ss.Close()

	ce := udplan.NewEndpoint(cs, ss.LocalAddr())
	se := udplan.NewEndpoint(ss, cs.LocalAddr())
	ce.MaxTier, se.MaxTier = sc.Tier, sc.Tier
	if sc.Batch > 1 {
		ce.SetBatch(sc.Batch)
		se.SetBatch(sc.Batch)
	}
	if err := ce.SetAdversary(sc.Adversary, sc.Seed); err != nil {
		return Outcome{}, err
	}

	rcfg := sc.Config
	rcfg.Payload = nil // the receiver reassembles from packets
	type recvOut struct {
		res core.RecvResult
		err error
	}
	done := make(chan recvOut, 1)
	go func() {
		r, err := core.RunReceiver(se, rcfg)
		done <- recvOut{r, err}
	}()
	sres, serr := core.RunSender(ce, sc.Config)
	ro := <-done
	if serr != nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s on udp sender: %w", sc.Name, serr)
	}
	if ro.err != nil {
		return Outcome{}, fmt.Errorf("simrun: scenario %s on udp receiver: %w", sc.Name, ro.err)
	}
	return outcomeOf(sres, ro.res), nil
}
