package simrun

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
)

// ContentionSweep judges the rate-control policies against each other: it
// crosses every registered (or requested) policy with a set of adversaries
// and client counts, runs each cell as a DES LoadScenario — N clients of
// that policy pulling concurrently from one sharded server — and reports
// per-cell goodput, Jain fairness and makespan. Cells are seeded from the
// sweep seed and the cell's index in the deterministic Policies × Adversaries
// × Clients enumeration order and merged in index order, so the whole table
// is bit-identical at any worker count — the same contract the adversary
// determinism regression pins for Sample.
type ContentionSweep struct {
	// Policies are the rate-control policy names to judge (default: every
	// registered policy, in registry order). "" is the fixed schedule.
	Policies []string
	// Adversaries are the hostile-network columns (default: DefaultAdversaries).
	Adversaries []NamedAdversary
	// Clients are the contention levels (default {1, 8, 64}).
	Clients []int
	// Bytes is the per-client transfer size (default 256 KB).
	Bytes int
	// Chunk is the data packet size (default params.DataPacketSize).
	Chunk int
	// Tr is the clients' retransmission timeout (default LoadScenario's).
	Tr time.Duration
	// Arrival is the client arrival window (default 2 ms: a near-herd).
	Arrival time.Duration
	// Concurrency is the server session cap (default: the cell's client
	// count — contention comes from the fabric, not REQ-time drops).
	Concurrency int
	// Seed seeds the sweep. A cell's seed is Seed plus its (adversary,
	// clients) coordinate — deliberately NOT its policy index, so every
	// policy is judged on the identical seeded workload (same arrival draws,
	// same adversary stream prefix) and a cross-policy goodput difference is
	// the policy's doing, not seed noise.
	Seed int64
}

// NamedAdversary labels one hostile-network column of the sweep.
type NamedAdversary struct {
	Name string
	Adv  params.Adversary
}

// DefaultAdversaries is the standard judging gauntlet: a clean fabric, 1%
// random wire loss, and heavy per-packet jitter.
func DefaultAdversaries() []NamedAdversary {
	return []NamedAdversary{
		{Name: "clean"},
		{Name: "loss1", Adv: params.Adversary{Loss: params.LossModel{PNet: 0.01}}},
		{Name: "jitter", Adv: params.Adversary{JitterMax: 500 * time.Microsecond}},
	}
}

// ContentionCell is one (policy, adversary, clients) cell of the sweep.
type ContentionCell struct {
	Policy    string // "" reported as "fixed"
	Adversary string
	Clients   int
	Completed int           // clients that finished with an intact payload
	Goodput   float64       // aggregate delivered MB/s over the makespan
	Fairness  float64       // Jain's index over per-client throughputs
	Makespan  time.Duration // first arrival to last completion (virtual)
	Retrans   int           // total sender retransmissions
}

// PolicyName is the cell's policy with the fixed schedule spelled out.
func (c ContentionCell) PolicyName() string {
	if c.Policy == "" {
		return "fixed"
	}
	return c.Policy
}

func (sw ContentionSweep) withDefaults() ContentionSweep {
	if len(sw.Policies) == 0 {
		sw.Policies = core.ControllerNames()
	}
	if len(sw.Adversaries) == 0 {
		sw.Adversaries = DefaultAdversaries()
	}
	if len(sw.Clients) == 0 {
		sw.Clients = []int{1, 8, 64}
	}
	if sw.Bytes == 0 {
		sw.Bytes = 256 << 10
	}
	if sw.Arrival == 0 {
		sw.Arrival = 2 * time.Millisecond
	}
	return sw
}

// cell builds the LoadScenario for one sweep cell.
func (sw ContentionSweep) cell(policy string, adv NamedAdversary, clients int, seed int64) LoadScenario {
	conc := sw.Concurrency
	if conc <= 0 {
		conc = clients
	}
	return LoadScenario{
		Name:        fmt.Sprintf("contention/%s/%s/%d", policy, adv.Name, clients),
		N:           clients,
		Bytes:       []int{sw.Bytes},
		Chunk:       sw.Chunk,
		Tr:          sw.Tr,
		Arrival:     sw.Arrival,
		Concurrency: conc,
		Controller:  policy,
		Adversary:   adv.Adv,
		Seed:        seed,
	}
}

// Run executes the sweep fanned across workers (0 or negative: GOMAXPROCS),
// returning cells in enumeration order: policies outermost, then
// adversaries, then client counts.
func (sw ContentionSweep) Run(workers int) ([]ContentionCell, error) {
	sw = sw.withDefaults()
	type cellSpec struct {
		policy  string
		adv     NamedAdversary
		clients int
		seed    int64
	}
	var specs []cellSpec
	for _, p := range sw.Policies {
		for ai, a := range sw.Adversaries {
			for ni, n := range sw.Clients {
				seed := sw.Seed + int64(ai*len(sw.Clients)+ni)
				specs = append(specs, cellSpec{p, a, n, seed})
			}
		}
	}
	out := make([]ContentionCell, len(specs))
	errs := make([]error, len(specs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	worker := func(w int) {
		for i := w; i < len(specs); i += workers {
			s := specs[i]
			res, err := sw.cell(s.policy, s.adv, s.clients, s.seed).Run()
			if err != nil {
				errs[i] = err
				continue
			}
			c := ContentionCell{
				Policy:    s.policy,
				Adversary: s.adv.Name,
				Clients:   s.clients,
				Completed: res.Completed,
				Fairness:  res.Fairness,
				Makespan:  res.Makespan,
				Retrans:   res.Agg.Retransmits,
			}
			if res.Makespan > 0 {
				c.Goodput = float64(res.AggBytes) / res.Makespan.Seconds() / 1e6
			}
			out[i] = c
		}
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Table renders the cells as the aligned markdown table EXPERIMENTS.md
// archives.
func ContentionTable(cells []ContentionCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| %-8s | %-9s | %7s | %9s | %13s | %8s | %12s | %7s |\n",
		"policy", "adversary", "clients", "completed", "goodput MB/s", "jain", "makespan", "retrans")
	b.WriteString("|----------|-----------|---------|-----------|---------------|----------|--------------|---------|\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "| %-8s | %-9s | %7d | %9d | %13.1f | %8.3f | %12s | %7d |\n",
			c.PolicyName(), c.Adversary, c.Clients, c.Completed, c.Goodput, c.Fairness,
			c.Makespan.Round(time.Microsecond), c.Retrans)
	}
	return b.String()
}
