package vkernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// This file implements the V kernel's short-message IPC — the Send /
// Receive / Reply primitives of Cheriton & Zwaenepoel's kernel [4,6] that
// precede every MoveTo in practice: "It then sends a message to the file
// server indicating the starting address of the buffer and its length" (§2).
//
// V messages are fixed 32-byte records delivered synchronously: Send blocks
// the client until the server Replies. Remote messages ride in single
// ack-sized packets with at-least-once retransmission and reply
// deduplication, which is the V interkernel protocol's design point (short
// requests are idempotent at this layer; MoveTo carries the bulk data).

// MsgSize is the fixed V message size in bytes.
const MsgSize = 32

// Message is one V IPC message.
type Message [MsgSize]byte

// PutUint32 and Uint32 give structured access to message words.
func (m *Message) PutUint32(word int, v uint32) {
	binary.BigEndian.PutUint32(m[word*4:word*4+4], v)
}

// Uint32 reads word w.
func (m *Message) Uint32(word int) uint32 {
	return binary.BigEndian.Uint32(m[word*4 : word*4+4])
}

// IPC errors.
var (
	ErrIPCTimeout = errors.New("vkernel: ipc timed out")
	ErrNoServer   = errors.New("vkernel: no process is receiving")
)

// ipcWire carries V messages between kernels as wire packets. Message
// packets reuse TypeReq with a transfer id in the reserved IPC range so
// they cannot collide with data transfers.
const (
	ipcTransBase = 0xF0000000
	ipcMaxTries  = 50
)

// msgPacket encodes a message exchange packet. kind 0 = request, 1 = reply.
func msgPacket(seq uint32, kind uint8, m *Message) *wire.Packet {
	payload := make([]byte, 1+MsgSize)
	payload[0] = kind
	copy(payload[1:], m[:])
	return &wire.Packet{
		Type:        wire.TypeReq,
		Trans:       ipcTransBase | (seq & 0x0FFFFFFF),
		Seq:         seq,
		Payload:     payload,
		VirtualSize: 64, // one ack-sized packet on the simulated wire
	}
}

// isIPC reports whether a packet belongs to the IPC range and decodes it.
func isIPC(p *wire.Packet) (seq uint32, kind uint8, m *Message, ok bool) {
	if p.Type != wire.TypeReq || p.Trans&ipcTransBase != ipcTransBase || len(p.Payload) != 1+MsgSize {
		return 0, 0, nil, false
	}
	var msg Message
	copy(msg[:], p.Payload[1:])
	return p.Seq, p.Payload[0], &msg, true
}

// ipcState is the per-kernel IPC machinery.
type ipcState struct {
	nextSeq uint32
	// handler serves incoming requests; set by ServeIPC.
	handler func(Message) Message
	// lastReplied / lastReply deduplicate retransmitted requests.
	lastReplied uint32
	lastReply   Message
	seen        bool
}

// ServeIPC registers the kernel's message handler: every incoming request
// message is answered with handler's reply (the V server's Receive+Reply
// loop). The handler runs in the receiving kernel's context.
func (k *Kernel) ServeIPC(handler func(Message) Message) {
	k.ipc.handler = handler
}

// SendMessage performs a synchronous V message exchange from this kernel to
// the peer kernel: the message is transmitted, the peer's registered
// handler produces a reply, and the reply is returned. Lost requests or
// replies are retransmitted up to ipcMaxTries times with the given timeout.
//
// It must be called from a simulation process on this kernel's station, and
// not concurrently with a bulk transfer on the same station (the V kernel
// demultiplexes at interrupt level; this miniature serialises instead — in
// practice the message exchange precedes the MoveTo, as in §2).
func (k *Kernel) SendMessage(p *sim.Proc, m Message, timeout time.Duration) (Message, error) {
	peer := k.peer()
	if peer == nil {
		return Message{}, ErrNoServer
	}
	env := sim.NewEndpoint(p, k.Station, peer.Station)
	k.ipc.nextSeq++
	seq := k.ipc.nextSeq
	if timeout <= 0 {
		timeout = 10 * time.Millisecond
	}
	for try := 0; try < ipcMaxTries; try++ {
		if err := env.Send(msgPacket(seq, 0, &m)); err != nil {
			return Message{}, err
		}
		remaining := timeout
		for remaining > 0 {
			t0 := p.Now()
			pkt, err := env.Recv(remaining)
			if err != nil {
				break // timeout: retransmit the request
			}
			remaining -= p.Now() - t0
			rseq, kind, rm, ok := isIPC(pkt)
			if !ok || kind != 1 {
				// A request for our own handler may arrive while we wait
				// (both kernels can be clients and servers): answer it.
				k.maybeServe(p, env, pkt)
				continue
			}
			if rseq == seq {
				return *rm, nil
			}
			// Stale reply to an earlier exchange: ignore.
		}
	}
	return Message{}, fmt.Errorf("seq %d after %d tries: %w", seq, ipcMaxTries, ErrIPCTimeout)
}

// ReceiveLoop runs the kernel's server side: it receives request messages
// and replies via the registered handler until the idle timeout passes
// with no traffic. V kernels run this forever; simulations bound it.
func (k *Kernel) ReceiveLoop(p *sim.Proc, idle time.Duration) error {
	peer := k.peer()
	if peer == nil {
		return ErrNoServer
	}
	env := sim.NewEndpoint(p, k.Station, peer.Station)
	for {
		pkt, err := env.Recv(idle)
		if err != nil {
			return nil // idle: done serving
		}
		k.maybeServe(p, env, pkt)
	}
}

// maybeServe answers an incoming IPC request packet, with reply
// deduplication for retransmitted requests.
func (k *Kernel) maybeServe(p *sim.Proc, env *sim.Endpoint, pkt *wire.Packet) {
	seq, kind, m, ok := isIPC(pkt)
	if !ok || kind != 0 || k.ipc.handler == nil {
		return
	}
	var reply Message
	if k.ipc.seen && seq == k.ipc.lastReplied {
		reply = k.ipc.lastReply // duplicate request: repeat the reply
	} else {
		reply = k.ipc.handler(*m)
		k.ipc.lastReplied = seq
		k.ipc.lastReply = reply
		k.ipc.seen = true
	}
	_ = env.Send(msgPacket(seq, 1, &reply))
}

// peer returns the other kernel in the cluster.
func (k *Kernel) peer() *Kernel {
	if k.cluster == nil {
		return nil
	}
	if k.cluster.A == k {
		return k.cluster.B
	}
	return k.cluster.A
}

// Exchange is the cluster-level convenience: it runs a client process on
// kernel `from` sending msg, with kernel `to` serving via its registered
// handler, and returns the reply together with the client-observed elapsed
// time. The server side polls briefly between requests and retires as soon
// as the client has its reply, so the virtual clock advances by only a few
// milliseconds beyond the exchange itself.
func (c *Cluster) Exchange(from, to *Kernel, msg Message, timeout time.Duration) (Message, time.Duration, error) {
	if timeout <= 0 {
		timeout = 10 * time.Millisecond
	}
	var reply Message
	var sendErr error
	var elapsed time.Duration
	clientDone := false
	c.Sim.Go("ipc-client", func(p *sim.Proc) {
		start := p.Now()
		reply, sendErr = from.SendMessage(p, msg, timeout)
		elapsed = p.Now() - start
		clientDone = true
	})
	c.Sim.Go("ipc-server", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, to.Station, to.peer().Station)
		poll := timeout/4 + time.Millisecond
		for !clientDone {
			pkt, err := env.Recv(poll)
			if err != nil {
				continue // poll expired: re-check the client
			}
			to.maybeServe(p, env, pkt)
		}
	})
	if err := c.Sim.Run(); err != nil {
		return Message{}, 0, err
	}
	return reply, elapsed, sendErr
}
