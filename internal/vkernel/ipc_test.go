package vkernel

import (
	"errors"
	"testing"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/sim"
)

// echoHandler replies with the request words incremented.
func echoHandler(m Message) Message {
	var r Message
	for w := 0; w < MsgSize/4; w++ {
		r.PutUint32(w, m.Uint32(w)+1)
	}
	return r
}

func TestMessageWords(t *testing.T) {
	var m Message
	m.PutUint32(0, 0xdeadbeef)
	m.PutUint32(7, 42)
	if m.Uint32(0) != 0xdeadbeef || m.Uint32(7) != 42 {
		t.Errorf("word access broken: %x %d", m.Uint32(0), m.Uint32(7))
	}
}

func TestExchangeErrorFree(t *testing.T) {
	c := newCluster(t, Options{})
	c.B.ServeIPC(echoHandler)
	var req Message
	req.PutUint32(0, 10)
	req.PutUint32(3, 99)
	reply, _, err := c.Exchange(c.A, c.B, req, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Uint32(0) != 11 || reply.Uint32(3) != 100 {
		t.Errorf("reply = %d, %d", reply.Uint32(0), reply.Uint32(3))
	}
}

// The exchange survives request and reply loss via retransmission, and the
// server deduplicates retransmitted requests (the handler must not run
// twice for one logical Send).
func TestExchangeUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := newCluster(t, Options{Loss: params.LossModel{PNet: 0.2}, Seed: seed})
		calls := 0
		c.B.ServeIPC(func(m Message) Message {
			calls++
			return echoHandler(m)
		})
		var req Message
		req.PutUint32(0, 7)
		reply, _, err := c.Exchange(c.A, c.B, req, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if reply.Uint32(0) != 8 {
			t.Fatalf("seed %d: bad reply", seed)
		}
		if calls != 1 {
			t.Fatalf("seed %d: handler ran %d times, want 1 (dedup)", seed, calls)
		}
	}
}

func TestExchangeTimesOutWithoutServer(t *testing.T) {
	c := newCluster(t, Options{})
	// No handler registered on B: requests are ignored forever.
	var req Message
	_, _, err := c.Exchange(c.A, c.B, req, time.Millisecond)
	if !errors.Is(err, ErrIPCTimeout) {
		t.Errorf("err = %v, want ErrIPCTimeout", err)
	}
}

// A full V-style interaction: IPC to arrange the transfer, then MoveTo for
// the bulk data — the paper's file-read sequence (§2).
func TestIPCThenMoveTo(t *testing.T) {
	c := newCluster(t, Options{})
	server := c.A.CreateProcess(16*1024, false)
	fill(server.Bytes(), 3)
	client := c.B.CreateProcess(16*1024, true)

	// "Send a message to the file server indicating the starting address
	// of the buffer and its length."
	c.A.ServeIPC(func(m Message) Message {
		var r Message
		r.PutUint32(0, 1) // OK
		r.PutUint32(1, uint32(server.Size()))
		return r
	})
	var req Message
	req.PutUint32(0, uint32(client.PID))
	req.PutUint32(1, 16*1024)
	reply, _, err := c.Exchange(c.B, c.A, req, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Uint32(0) != 1 || reply.Uint32(1) != 16*1024 {
		t.Fatalf("handshake reply wrong: %d %d", reply.Uint32(0), reply.Uint32(1))
	}

	// The transfer itself.
	if _, err := c.MoveTo(server, 0, client, 0, 16*1024, MoveOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, b := range client.Bytes() {
		if b != server.Bytes()[i] {
			t.Fatal("data corrupted")
		}
	}
}

// One IPC exchange costs two ack-sized packets plus handler time:
// 2 × (Ca copy-in + Ta + Ca copy-out + τ) ≈ 2.8 ms on the V preset.
func TestExchangeCost(t *testing.T) {
	c := newCluster(t, Options{})
	c.B.ServeIPC(echoHandler)
	var elapsed time.Duration
	var sendErr error
	c.Sim.Go("client", func(p *simProc) {
		var req Message
		start := p.Now()
		_, sendErr = c.A.SendMessage(p, req, 10*time.Millisecond)
		elapsed = p.Now() - start
	})
	c.Sim.Go("server", func(p *simProc) {
		c.B.ReceiveLoop(p, 50*time.Millisecond)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	m := c.Net.Cost
	want := 2 * (2*m.Ca() + m.Ta() + m.Propagation)
	if elapsed != want {
		t.Errorf("exchange cost %v, want %v", elapsed, want)
	}
}

// simProc aliases the simulator's process type for test readability.
type simProc = sim.Proc
