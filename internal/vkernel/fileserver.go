package vkernel

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"blastlan/internal/disk"
	"blastlan/internal/sim"
)

// FileServer is the paper's motivating application (§2): a server process
// that, on request, "reads the file from disk, and then uses MoveTo to move
// the file from its address space into that of the client". Reads follow
// the full V sequence — a 32-byte IPC request/reply to arrange the
// transfer, a modelled disk access, then the bulk MoveTo — so the
// end-to-end page-size experiment captures both of the intro's "economies
// in large quantities" at once.
type FileServer struct {
	kernel *Kernel
	geom   disk.Geometry
	files  map[string][]byte
	// staging is the server's address space for the file being served.
	staging *Process
}

// File-server errors.
var (
	ErrNoFile   = errors.New("vkernel: no such file")
	ErrFileSize = errors.New("vkernel: read beyond end of file")
)

// File-server IPC message layout (words of the 32-byte message).
const (
	fsWordOp     = 0 // 1 = read request, 2 = reply OK, 3 = reply error
	fsWordName   = 1 // FNV-32 hash of the file name
	fsWordOffset = 2
	fsWordLength = 3
	fsWordStatus = 4 // reply: bytes available
)

// NewFileServer attaches a file server to a kernel with the given disk.
func NewFileServer(k *Kernel, geom disk.Geometry) (*FileServer, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	fs := &FileServer{kernel: k, geom: geom, files: map[string][]byte{}}
	// Serve read-arrangement requests over V IPC.
	k.ServeIPC(func(m Message) Message {
		var reply Message
		if m.Uint32(fsWordOp) != 1 {
			reply.PutUint32(fsWordOp, 3)
			return reply
		}
		data, ok := fs.lookup(m.Uint32(fsWordName))
		if !ok {
			reply.PutUint32(fsWordOp, 3)
			return reply
		}
		off, n := int(m.Uint32(fsWordOffset)), int(m.Uint32(fsWordLength))
		if off < 0 || n < 0 || off+n > len(data) {
			reply.PutUint32(fsWordOp, 3)
			return reply
		}
		reply.PutUint32(fsWordOp, 2)
		reply.PutUint32(fsWordStatus, uint32(len(data)))
		return reply
	})
	return fs, nil
}

// Store places a file on the server's disk.
func (fs *FileServer) Store(name string, data []byte) {
	fs.files[name] = data
}

// lookup finds a stored file by name hash.
func (fs *FileServer) lookup(h uint32) ([]byte, bool) {
	for name, data := range fs.files {
		if nameHash(name) == h {
			return data, true
		}
	}
	return nil, false
}

// nameHash is the 32-bit identity a file name compresses to inside a
// 32-byte V message.
func nameHash(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// ReadResult reports one completed file read.
type ReadResult struct {
	// Elapsed is the end-to-end time: IPC + disk + transfer.
	Elapsed time.Duration
	// DiskTime and NetTime decompose it.
	DiskTime time.Duration
	NetTime  time.Duration
	IPCTime  time.Duration
	// Pages is the number of page transfers performed.
	Pages int
}

// Read performs the paper's complete file-read interaction: the client
// (which has already allocated buf, per the MoveTo contract) requests
// [off, off+n) of the named file in pages of pageSize bytes. Each page is
// arranged over IPC, read from the modelled disk into the server's address
// space, and moved with MoveTo under opt's protocol.
func (fs *FileServer) Read(client *Process, buf int, name string, off, n, pageSize int, opt MoveOptions) (*ReadResult, error) {
	data, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	if off < 0 || n < 0 || off+n > len(data) {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrFileSize, off, off+n, len(data))
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("vkernel: page size must be positive")
	}
	c := fs.kernel.cluster
	res := &ReadResult{}
	start := c.Sim.Now()

	// One IPC exchange arranges the whole read (the paper's single
	// request message naming buffer address and length).
	var req Message
	req.PutUint32(fsWordOp, 1)
	req.PutUint32(fsWordName, nameHash(name))
	req.PutUint32(fsWordOffset, uint32(off))
	req.PutUint32(fsWordLength, uint32(n))
	reply, ipcElapsed, err := c.Exchange(client.kernel, fs.kernel, req, 10*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if reply.Uint32(fsWordOp) != 2 {
		return nil, fmt.Errorf("%w: server refused %q", ErrNoFile, name)
	}
	res.IPCTime = ipcElapsed

	// Page loop: disk read into the staging space, then MoveTo.
	if fs.staging == nil || fs.staging.Size() < pageSize {
		fs.staging = fs.kernel.CreateProcess(pageSize, false)
	}
	remaining := n
	pos := off
	dst := buf
	first := true
	for remaining > 0 {
		chunk := pageSize
		if chunk > remaining {
			chunk = remaining
		}
		// Disk access, charged on the server in virtual time: the first
		// page seeks; follow-on pages pay rotational latency only.
		var dt time.Duration
		if first {
			dt = fs.geom.AccessTime(chunk)
		} else {
			dt = fs.geom.RotationPeriod/2 + fs.geom.SequentialTime(chunk)
		}
		first = false
		c.Sim.Go("disk-read", func(p *sim.Proc) { p.Sleep(dt) })
		if err := c.Sim.Run(); err != nil {
			return nil, err
		}
		copy(fs.staging.space[:chunk], data[pos:pos+chunk])
		res.DiskTime += dt

		netStart := c.Sim.Now()
		if _, err := c.MoveTo(fs.staging, 0, client, dst, chunk, opt); err != nil {
			return nil, err
		}
		res.NetTime += c.Sim.Now() - netStart
		res.Pages++
		remaining -= chunk
		pos += chunk
		dst += chunk
	}
	res.Elapsed = c.Sim.Now() - start
	return res, nil
}
