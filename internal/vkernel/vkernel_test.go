package vkernel

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/stats"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fill(b []byte, seed int64) {
	rand.New(rand.NewSource(seed)).Read(b)
}

func TestRemoteMoveToDeliversBytes(t *testing.T) {
	c := newCluster(t, Options{})
	src := c.A.CreateProcess(64*1024, false)
	dst := c.B.CreateProcess(64*1024, true)
	fill(src.Bytes(), 1)

	res, err := c.MoveTo(src, 0, dst, 0, 64*1024, MoveOptions{
		Protocol: core.Blast, Strategy: core.GoBackN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Error("destination space does not match source")
	}
	// Table 3 anchor: 64 KB blast MoveTo ≈ 173 ms on the V-kernel preset.
	if res.Elapsed < 172*time.Millisecond || res.Elapsed > 175*time.Millisecond {
		t.Errorf("MoveTo(64KB) = %v, want ≈ 173 ms (Table 3)", res.Elapsed)
	}
	if res.Local {
		t.Error("remote move misreported as local")
	}
}

func TestMoveToSubRange(t *testing.T) {
	c := newCluster(t, Options{})
	src := c.A.CreateProcess(8192, false)
	dst := c.B.CreateProcess(8192, true)
	fill(src.Bytes(), 2)

	if _, err := c.MoveTo(src, 1024, dst, 4096, 2048, MoveOptions{Protocol: core.Blast}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes()[4096:4096+2048], src.Bytes()[1024:1024+2048]) {
		t.Error("sub-range corrupted")
	}
	for _, b := range dst.Bytes()[:4096] {
		if b != 0 {
			t.Fatal("bytes outside target range modified")
		}
	}
}

func TestLocalMoveAvoidsNetwork(t *testing.T) {
	c := newCluster(t, Options{})
	src := c.A.CreateProcess(32*1024, false)
	dst := c.A.CreateProcess(32*1024, true)
	fill(src.Bytes(), 3)

	res, err := c.MoveTo(src, 0, dst, 0, 32*1024, MoveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local {
		t.Error("same-kernel move should be local")
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Error("local move corrupted data")
	}
	if c.A.Station.Counters.TxPackets != 0 {
		t.Error("local move used the network")
	}
	// One block move, no per-packet protocol overhead: far faster than the
	// remote path (≈ 40 ms vs 87 ms for 32 KB).
	remote := 32 * (c.Net.Cost.C() + c.Net.Cost.T())
	if res.Elapsed >= remote {
		t.Errorf("local move %v not faster than remote %v", res.Elapsed, remote)
	}
}

func TestMoveFromPullsData(t *testing.T) {
	c := newCluster(t, Options{})
	server := c.A.CreateProcess(16*1024, false)
	client := c.B.CreateProcess(16*1024, true)
	fill(server.Bytes(), 4)

	res, err := c.MoveFrom(server, 0, client, 0, 16*1024, MoveOptions{
		Protocol: core.Blast, Strategy: core.Selective,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(client.Bytes(), server.Bytes()) {
		t.Error("MoveFrom corrupted data")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestMoveFromUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := newCluster(t, Options{Loss: params.LossModel{PNet: 0.02}, Seed: seed})
		server := c.A.CreateProcess(32*1024, false)
		client := c.B.CreateProcess(32*1024, true)
		fill(server.Bytes(), seed)
		if _, err := c.MoveFrom(server, 0, client, 0, 32*1024, MoveOptions{
			Protocol: core.Blast, Strategy: core.GoBackN,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(client.Bytes(), server.Bytes()) {
			t.Fatalf("seed %d: data corrupted", seed)
		}
	}
}

func TestMoveToUnderLossAllProtocols(t *testing.T) {
	for _, proto := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
		c := newCluster(t, Options{Loss: params.LossModel{PNet: 0.03}, Seed: 7})
		src := c.A.CreateProcess(16*1024, false)
		dst := c.B.CreateProcess(16*1024, true)
		fill(src.Bytes(), 9)
		if _, err := c.MoveTo(src, 0, dst, 0, 16*1024, MoveOptions{
			Protocol: proto, Strategy: core.GoBackN, Tr: 50 * time.Millisecond,
		}); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !bytes.Equal(dst.Bytes(), src.Bytes()) {
			t.Fatalf("%v: corrupted", proto)
		}
	}
}

func TestAccessChecks(t *testing.T) {
	c := newCluster(t, Options{})
	src := c.A.CreateProcess(4096, false)
	roDst := c.B.CreateProcess(4096, false) // not writable

	if _, err := c.MoveTo(src, 0, roDst, 0, 4096, MoveOptions{}); !errors.Is(err, ErrAccess) {
		t.Errorf("write to read-only process: %v", err)
	}
	wDst := c.B.CreateProcess(4096, true)
	cases := []struct{ srcOff, dstOff, n int }{
		{0, 0, 5000},  // larger than both spaces
		{-1, 0, 100},  // negative source offset
		{0, -1, 100},  // negative destination offset
		{4000, 0, 97}, // source overrun
		{0, 4090, 7},  // destination overrun
		{0, 0, -5},    // negative length
	}
	for _, cse := range cases {
		if _, err := c.MoveTo(src, cse.srcOff, wDst, cse.dstOff, cse.n, MoveOptions{}); !errors.Is(err, ErrBounds) {
			t.Errorf("MoveTo(%+v) = %v, want ErrBounds", cse, err)
		}
	}
	if _, err := c.MoveTo(nil, 0, wDst, 0, 1, MoveOptions{}); !errors.Is(err, ErrNoProcess) {
		t.Errorf("nil process: %v", err)
	}
}

func TestProcessLookup(t *testing.T) {
	c := newCluster(t, Options{})
	p := c.A.CreateProcess(10, true)
	got, err := c.A.Process(p.PID)
	if err != nil || got != p {
		t.Errorf("lookup: %v %v", got, err)
	}
	if _, err := c.A.Process(999); !errors.Is(err, ErrNoProcess) {
		t.Errorf("missing pid: %v", err)
	}
	if p.Size() != 10 {
		t.Errorf("Size = %d", p.Size())
	}
}

// Table 3's headline: the kernel-level blast is ≈2.2× faster than the
// kernel-level stop-and-wait for 64 KB.
func TestKernelBlastAdvantage(t *testing.T) {
	move := func(proto core.Protocol) time.Duration {
		c := newCluster(t, Options{})
		src := c.A.CreateProcess(64*1024, false)
		dst := c.B.CreateProcess(64*1024, true)
		res, err := c.MoveTo(src, 0, dst, 0, 64*1024, MoveOptions{Protocol: proto, Strategy: core.GoBackN})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	saw := move(core.StopAndWait)
	blast := move(core.Blast)
	ratio := float64(saw) / float64(blast)
	// Kernel overhead raises C and Ca relative to T and Ta, making blast
	// "even more advantageous than in the case of a standalone program"
	// (§2.2): expect ≈ 2.2×, vs ≈ 1.8× standalone.
	if ratio < 2.0 || ratio > 2.4 {
		t.Errorf("kernel SAW/blast ratio = %.2f, want ≈ 2.2", ratio)
	}
	if stats.RelErr(float64(saw), float64(64*5900*time.Microsecond)) > 0.01 {
		t.Errorf("kernel SAW(64KB) = %v, want ≈ 64·5.9 ms", saw)
	}
}

// Multiblast through the kernel API (§3.1.3: "for such very large sizes, we
// suggest the use of multiple blasts").
func TestMoveToMultiblast(t *testing.T) {
	c := newCluster(t, Options{})
	src := c.A.CreateProcess(256*1024, false)
	dst := c.B.CreateProcess(256*1024, true)
	fill(src.Bytes(), 5)
	res, err := c.MoveTo(src, 0, dst, 0, 256*1024, MoveOptions{
		Protocol: core.Blast, Strategy: core.GoBackN, Window: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Send.AcksReceived != 4 {
		t.Errorf("acks = %d, want 4", res.Send.AcksReceived)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Error("multiblast corrupted data")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{Loss: params.LossModel{PNet: 3}}); err == nil {
		t.Error("invalid loss model accepted")
	}
}

// A MoveTo across a hostile network (reordering, duplication, corruption,
// jitter) must still deliver the exact bytes: the paper's MoveTo contract is
// unconditional, and the adversary exercises every recovery path of the
// chosen strategy at kernel level.
func TestMoveToUnderAdversary(t *testing.T) {
	adv := params.Adversary{
		Loss:          params.LossModel{PNet: 0.01},
		ReorderProb:   0.05,
		ReorderDepth:  2,
		DuplicateProb: 0.04,
		CorruptProb:   0.03,
		JitterMax:     300 * time.Microsecond,
	}
	for _, s := range []core.Strategy{core.FullNoNak, core.GoBackN, core.Selective} {
		c := newCluster(t, Options{Adversary: adv, Seed: int64(s) + 5})
		src := c.A.CreateProcess(32*1024, false)
		dst := c.B.CreateProcess(32*1024, true)
		fill(src.Bytes(), int64(s))

		res, err := c.MoveTo(src, 0, dst, 0, 32*1024, MoveOptions{
			Protocol: core.Blast, Strategy: s,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(dst.Bytes(), src.Bytes()) {
			t.Errorf("%v: destination corrupted under adversary", s)
		}
		if res.Recv.Duplicates == 0 && res.Send.Retransmits == 0 && c.Net.Adv == (sim.AdvCounters{}) {
			t.Errorf("%v: adversary injected nothing; test is vacuous", s)
		}
	}
}
