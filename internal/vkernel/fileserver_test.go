package vkernel

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/disk"
	"blastlan/internal/params"
)

func newFS(t *testing.T) (*Cluster, *FileServer, *Process) {
	t.Helper()
	c := newCluster(t, Options{})
	fs, err := NewFileServer(c.A, disk.FujitsuEagle())
	if err != nil {
		t.Fatal(err)
	}
	client := c.B.CreateProcess(64*1024, true)
	return c, fs, client
}

func TestFileServerReadWhole(t *testing.T) {
	c, fs, client := newFS(t)
	_ = c
	file := make([]byte, 64*1024)
	fill(file, 12)
	fs.Store("kernel-image", file)

	res, err := fs.Read(client, 0, "kernel-image", 0, len(file), 16*1024,
		MoveOptions{Protocol: core.Blast, Strategy: core.GoBackN})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(client.Bytes(), file) {
		t.Fatal("file corrupted in transit")
	}
	if res.Pages != 4 {
		t.Errorf("pages = %d, want 4", res.Pages)
	}
	if res.DiskTime <= 0 || res.NetTime <= 0 || res.IPCTime <= 0 {
		t.Errorf("decomposition missing: %+v", res)
	}
	if res.Elapsed < res.DiskTime+res.NetTime {
		t.Errorf("elapsed %v < disk %v + net %v", res.Elapsed, res.DiskTime, res.NetTime)
	}
}

func TestFileServerPartialRead(t *testing.T) {
	_, fs, client := newFS(t)
	file := make([]byte, 10000)
	fill(file, 5)
	fs.Store("f", file)
	if _, err := fs.Read(client, 100, "f", 2000, 3000, 1024,
		MoveOptions{Protocol: core.Blast}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(client.Bytes()[100:3100], file[2000:5000]) {
		t.Error("partial read corrupted")
	}
}

func TestFileServerErrors(t *testing.T) {
	_, fs, client := newFS(t)
	fs.Store("small", make([]byte, 100))
	if _, err := fs.Read(client, 0, "missing", 0, 10, 1024, MoveOptions{}); !errors.Is(err, ErrNoFile) {
		t.Errorf("missing file: %v", err)
	}
	if _, err := fs.Read(client, 0, "small", 50, 100, 1024, MoveOptions{}); !errors.Is(err, ErrFileSize) {
		t.Errorf("oversize read: %v", err)
	}
	if _, err := fs.Read(client, 0, "small", 0, 100, 0, MoveOptions{}); err == nil {
		t.Error("zero page size accepted")
	}
}

// The intro's end-to-end claim: with disk and network both modelled, large
// pages beat small pages by a wide margin.
func TestPageSizeEconomies(t *testing.T) {
	file := make([]byte, 64*1024)
	fill(file, 7)
	read := func(page int) time.Duration {
		_, fs, client := newFS(t)
		fs.Store("f", file)
		res, err := fs.Read(client, 0, "f", 0, len(file), page,
			MoveOptions{Protocol: core.Blast, Strategy: core.GoBackN})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(client.Bytes(), file) {
			t.Fatal("corrupted")
		}
		return res.Elapsed
	}
	prev := time.Duration(1 << 62)
	for _, page := range []int{1024, 4096, 16384, 65536} {
		cur := read(page)
		if cur >= prev {
			t.Errorf("page %d: %v not faster than smaller pages %v", page, cur, prev)
		}
		prev = cur
	}
	if ratio := float64(read(1024)) / float64(read(65536)); ratio < 2 {
		t.Errorf("1KB/64KB end-to-end ratio = %.2f, expected substantial", ratio)
	}
}

// The read must also work under a lossy network.
func TestFileServerUnderLoss(t *testing.T) {
	c := newCluster(t, Options{Loss: blastLoss(0.02), Seed: 4})
	fs, err := NewFileServer(c.A, disk.FujitsuEagle())
	if err != nil {
		t.Fatal(err)
	}
	client := c.B.CreateProcess(32*1024, true)
	file := make([]byte, 32*1024)
	fill(file, 9)
	fs.Store("f", file)
	if _, err := fs.Read(client, 0, "f", 0, len(file), 8*1024,
		MoveOptions{Protocol: core.Blast, Strategy: core.GoBackN, Tr: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(client.Bytes(), file) {
		t.Error("corrupted under loss")
	}
}

// blastLoss builds a wire-loss model for file-server tests.
func blastLoss(pn float64) (l lossModel) { l.PNet = pn; return }

// lossModel aliases params.LossModel locally.
type lossModel = params.LossModel
