package vkernel

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// TestClusterServeManyKernels pins the V-kernel face of the shared session
// layer: one file-server kernel serves six client kernels concurrently
// (Concurrency=3, so half the herd recovers through REQ retry), each client
// pulling a segment of the server process's address space into its own
// process — a MoveFrom fan-out the two-kernel paths cannot express.
func TestClusterServeManyKernels(t *testing.T) {
	c, err := NewCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 6
		segment = 24 << 10
	)

	// The served process: one address space holding every client's segment.
	data := make([]byte, clients*segment)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	src := c.B.CreateProcess(len(data), false)
	copy(src.Bytes(), data)

	srv := &session.Server{
		Idle:        time.Minute,
		Concurrency: 3,
		// Pulls resolve byte ranges of the served segment through the REQ's
		// stripe fields, exactly like a striped udplan pull.
		Source: func(r wire.Req) (core.ChunkSource, bool) {
			if r.Chunk == 0 {
				return nil, false
			}
			off := int(r.Offset())
			if off+int(r.Bytes) > len(data) {
				return nil, false
			}
			seg := data[off : off+int(r.Bytes)]
			chunk := int(r.Chunk)
			return func(seq int, dst []byte) []byte {
				lo := seq * chunk
				hi := lo + chunk
				if hi > len(seg) {
					hi = len(seg)
				}
				return seg[lo:hi]
			}, true
		},
	}
	h := c.Serve(c.B, srv)

	kernels := make([]*Kernel, clients)
	dsts := make([]*Process, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		kernels[i] = c.AddKernel(fmt.Sprintf("client%d", i))
		dsts[i] = kernels[i].CreateProcess(segment, true)
	}
	for i := 0; i < clients; i++ {
		i := i
		c.Sim.Go(fmt.Sprintf("pull%d", i), func(p *sim.Proc) {
			env := sim.NewEndpoint(p, kernels[i].Station, c.B.Station)
			cfg := core.Config{
				TransferID:     uint32(1 + i),
				Bytes:          segment,
				ChunkSize:      1024,
				Protocol:       core.Blast,
				Strategy:       core.GoBackN,
				RetransTimeout: 100 * time.Millisecond,
				MaxAttempts:    50,
				Linger:         50 * time.Millisecond,
				ReceiverIdle:   2 * time.Second,
				StripeOffset:   i * segment,
				StripeTotal:    len(data),
			}
			res, err := core.Request(env, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			copy(dsts[i].Bytes(), res.Data)
		})
	}
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("server exited with %v", err)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client kernel %d: %v", i, errs[i])
		}
		if !bytes.Equal(dsts[i].Bytes(), data[i*segment:(i+1)*segment]) {
			t.Errorf("client kernel %d received the wrong segment", i)
		}
	}
	if got := srv.Served(); got != clients {
		t.Errorf("server served %d transfers, want %d", got, clients)
	}
}
