// Package vkernel is a miniature reproduction of the V distributed kernel's
// interprocess data-transfer facility (Cheriton & Zwaenepoel; the paper's
// §2): processes own pre-allocated address-space segments, and the kernel
// moves arbitrary amounts of data between the address spaces of processes —
// MoveTo pushes, MoveFrom pulls — transparently across the network.
//
// Per the V IPC contract, "the recipient has sufficient buffers allocated to
// receive the data prior to the transfer": a MoveTo/MoveFrom call names an
// existing destination segment, so the kernel never needs intermediate
// copies or flow control — exactly the precondition the blast protocol
// exploits.
//
// The kernels run on the internal/sim substrate with the params.VKernel cost
// preset, whose copy constants (C = 1.83 ms, Ca = 0.67 ms) fold in the
// paper's measured kernel overhead: headers, access-right checks,
// demultiplexing and interrupt handling (§2.2). Table 3's MoveTo elapsed
// times come out of this package.
package vkernel

import (
	"errors"
	"fmt"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/sim"
	"blastlan/internal/wire"
)

// Kernel-level errors.
var (
	ErrNoProcess = errors.New("vkernel: no such process")
	ErrBounds    = errors.New("vkernel: segment out of bounds")
	ErrAccess    = errors.New("vkernel: access violation")
)

// PID identifies a process within one kernel.
type PID int

// Process is a V process: an address space plus access rights.
type Process struct {
	PID    PID
	kernel *Kernel
	space  []byte
	// writable marks segments the kernel may MoveTo into; V checks access
	// rights on every transfer (§2.2).
	writable bool
}

// Size returns the process's address-space size.
func (p *Process) Size() int { return len(p.space) }

// Bytes exposes the address space for test verification and file-server
// style use (the "disk read" fills it).
func (p *Process) Bytes() []byte { return p.space }

// Kernel is one machine's V kernel instance.
type Kernel struct {
	Name    string
	Station *sim.Station
	cluster *Cluster
	procs   map[PID]*Process
	nextPID PID
	ipc     ipcState
}

// CreateProcess allocates a process with an address space of the given
// size; writable controls whether remote kernels may move data into it.
func (k *Kernel) CreateProcess(size int, writable bool) *Process {
	k.nextPID++
	p := &Process{PID: k.nextPID, kernel: k, space: make([]byte, size), writable: writable}
	k.procs[p.PID] = p
	return p
}

// Process looks up a process by PID.
func (k *Kernel) Process(pid PID) (*Process, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %s pid %d", ErrNoProcess, k.Name, pid)
	}
	return p, nil
}

// Cluster is a pair of kernels on one simulated network — the paper's
// two-workstation measurement configuration.
type Cluster struct {
	Sim         *sim.Kernel
	Net         *sim.Network
	A, B        *Kernel
	opts        Options
	transferSeq uint32
}

// Options configures a cluster.
type Options struct {
	Cost params.CostModel
	Loss params.LossModel
	Seed int64
	// Adversary, when active, installs a hostile-network model on the
	// cluster's network (reordering, duplication, corruption, jitter and
	// scripted mangling — see params.Adversary), seeded from Seed exactly
	// like simrun's simulator runs so one scenario definition behaves
	// identically on both substrates.
	Adversary params.Adversary
	// Trace receives simulator spans when set.
	Trace func(sim.Span)
}

// NewCluster builds two kernels ("alpha", "beta") on a fresh simulated
// network. Zero-value Cost defaults to the V-kernel preset.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Cost.BandwidthBitsPerSec == 0 {
		opts.Cost = params.VKernel()
	}
	sk := sim.NewKernel()
	net, err := sim.NewNetwork(sk, opts.Cost, opts.Loss, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.Adversary.Active() {
		if err := net.SetAdversary(opts.Adversary, opts.Seed); err != nil {
			return nil, err
		}
	}
	net.Trace = opts.Trace
	c := &Cluster{Sim: sk, Net: net, opts: opts}
	c.A = &Kernel{Name: "alpha", Station: net.AddStation("src"), cluster: c, procs: map[PID]*Process{}}
	c.B = &Kernel{Name: "beta", Station: net.AddStation("dst"), cluster: c, procs: map[PID]*Process{}}
	return c, nil
}

// AddKernel attaches another kernel to the cluster's network — the paper's
// configuration generalised beyond two workstations, so a file-server
// kernel can serve many client kernels at once through the shared session
// layer (see Serve).
func (c *Cluster) AddKernel(name string) *Kernel {
	return &Kernel{Name: name, Station: c.Net.AddStation(name), cluster: c, procs: map[PID]*Process{}}
}

// ServeHandle reports a session-layer daemon started with Serve. Err is
// meaningful once the simulation has quiesced (Sim.Run returned).
type ServeHandle struct {
	Proc *sim.Proc
	err  error
}

// Err reports how the server exited (nil: clean close or idle bound).
func (h *ServeHandle) Err() error { return h.err }

// Serve runs a session-layer daemon on kernel k: the substrate-agnostic
// sharded server of internal/session (the same demux loop, session table
// and handlers that drive udplan's UDP daemon) listening on this kernel's
// station. Client kernels reach it with ordinary REQ-initiated pulls
// (core.Request on an endpoint bound to their own station), so a V file
// server can serve a whole cluster of concurrently pulling clients — the
// scale configuration the two-kernel MoveTo/MoveFrom paths cannot express.
// The daemon completes when the server stops (its Idle bound expires with
// no session in flight); check the handle's Err after the simulation runs.
func (c *Cluster) Serve(k *Kernel, srv *session.Server) *ServeHandle {
	h := &ServeHandle{}
	h.Proc = sim.Serve(c.Net, k.Station, func(l *sim.Listener) { h.err = srv.Run(l) })
	return h
}

// MoveOptions selects the transfer protocol for a MoveTo/MoveFrom.
type MoveOptions struct {
	Protocol core.Protocol
	Strategy core.Strategy
	// Tr is the retransmission timeout; defaults to twice the transfer's
	// error-free blast estimate.
	Tr time.Duration
	// Window splits very large transfers into multiple blasts (§3.1.3).
	Window int
	// Controller names the rate-control policy driving blast moves
	// (core.Config.Controller): the same controller state machines the UDP
	// substrate runs, in virtual time.
	Controller string
	// Adaptive is the deprecated boolean spelling of Controller: it selects
	// the AIMD policy (core.ControllerAIMD) when Controller is empty.
	Adaptive bool
	// Chunk is the data packet size (defaults to params.DataPacketSize).
	Chunk int
	// MaxAttempts, Linger and ReceiverIdle bound the transfer exactly like
	// the corresponding core.Config fields (zero means the core defaults).
	// Cross-substrate scenarios set them so a MoveTo gives up, lingers and
	// idles out identically to the same Config on every other substrate.
	MaxAttempts  int
	Linger       time.Duration
	ReceiverIdle time.Duration
}

// MoveResult reports one completed move.
type MoveResult struct {
	Elapsed time.Duration
	Send    core.SendResult
	Recv    core.RecvResult
	// Local reports a same-kernel move (no network involved).
	Local bool
}

// MoveTo schedules a move of n bytes from process src's address space at
// srcOff into process dst's address space at dstOff, then runs the
// simulation to completion. It is the paper's MoveTo: the source side
// drives the transfer.
func (c *Cluster) MoveTo(src *Process, srcOff int, dst *Process, dstOff, n int, opt MoveOptions) (*MoveResult, error) {
	if err := checkSegment(src, srcOff, n, false); err != nil {
		return nil, err
	}
	if err := checkSegment(dst, dstOff, n, true); err != nil {
		return nil, err
	}
	res := &MoveResult{}
	if src.kernel == dst.kernel {
		// Local case: the client's buffer is already allocated, so the
		// kernel moves the data without an intermediate copy (§2) — one
		// block move, charged at the interface-copy rate.
		c.Sim.Go("local-move", func(p *sim.Proc) {
			start := p.Now()
			p.Sleep(c.opts.Cost.CopyTime(n))
			copy(dst.space[dstOff:dstOff+n], src.space[srcOff:srcOff+n])
			res.Elapsed = p.Now() - start
			res.Local = true
		})
		if err := c.Sim.Run(); err != nil {
			return nil, err
		}
		return res, nil
	}

	cfg := c.transferConfig(src.space[srcOff:srcOff+n], opt)
	var sendErr, recvErr error
	c.Sim.Go("moveto-send", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, src.kernel.Station, dst.kernel.Station)
		res.Send, sendErr = core.RunSender(env, cfg)
	})
	recvCfg := cfg
	recvCfg.Payload = nil // the receiver reassembles from packets
	c.Sim.Go("moveto-recv", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, dst.kernel.Station, src.kernel.Station)
		res.Recv, recvErr = core.RunReceiver(env, recvCfg)
	})
	if err := c.Sim.Run(); err != nil {
		return nil, err
	}
	if sendErr != nil {
		return nil, fmt.Errorf("vkernel: MoveTo: %w", sendErr)
	}
	if recvErr != nil {
		return nil, fmt.Errorf("vkernel: MoveTo receiver: %w", recvErr)
	}
	copy(dst.space[dstOff:dstOff+n], res.Recv.Data)
	res.Elapsed = res.Send.Elapsed
	return res, nil
}

// MoveFrom schedules a move of n bytes from the (possibly remote) process
// src into the local process dst: the destination side requests the data
// with a REQ packet and the source side blasts it back (the paper's
// MoveFrom direction). The REQ is retried until data flows.
func (c *Cluster) MoveFrom(src *Process, srcOff int, dst *Process, dstOff, n int, opt MoveOptions) (*MoveResult, error) {
	if src.kernel == dst.kernel {
		return c.MoveTo(src, srcOff, dst, dstOff, n, opt)
	}
	if err := checkSegment(src, srcOff, n, false); err != nil {
		return nil, err
	}
	if err := checkSegment(dst, dstOff, n, true); err != nil {
		return nil, err
	}
	cfg := c.transferConfig(src.space[srcOff:srcOff+n], opt)
	res := &MoveResult{}
	var reqErr, srvErr error

	// The data owner serves requests (V kernels always listen).
	c.Sim.Go("movefrom-serve", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, src.kernel.Station, dst.kernel.Station)
		_, srvErr = core.ServeOnce(env, -1, func(req wire.Req) (core.Config, bool) {
			if req.Bytes != uint64(n) {
				return core.Config{}, false
			}
			return cfg, true
		})
		if srvErr == nil {
			res.Send, srvErr = core.RunSender(env, cfg)
		}
	})
	c.Sim.Go("movefrom-req", func(p *sim.Proc) {
		env := sim.NewEndpoint(p, dst.kernel.Station, src.kernel.Station)
		recvCfg := cfg
		recvCfg.Payload = nil
		res.Recv, reqErr = core.Request(env, recvCfg)
	})
	if err := c.Sim.Run(); err != nil {
		return nil, err
	}
	if reqErr != nil {
		return nil, fmt.Errorf("vkernel: MoveFrom: %w", reqErr)
	}
	if srvErr != nil {
		return nil, fmt.Errorf("vkernel: MoveFrom server: %w", srvErr)
	}
	copy(dst.space[dstOff:dstOff+n], res.Recv.Data)
	res.Elapsed = res.Recv.Elapsed
	return res, nil
}

// transferConfig derives the core.Config for a move.
func (c *Cluster) transferConfig(payload []byte, opt MoveOptions) core.Config {
	c.transferSeq++
	chunk := opt.Chunk
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	tr := opt.Tr
	if tr == 0 {
		// Default Tr: twice the error-free blast estimate for this size.
		nPkts := (len(payload) + chunk - 1) / chunk
		tr = 2 * (time.Duration(nPkts)*(c.opts.Cost.C()+c.opts.Cost.T()) +
			c.opts.Cost.C() + 2*c.opts.Cost.Ca() + c.opts.Cost.Ta())
	}
	return core.Config{
		TransferID:     c.transferSeq,
		Bytes:          len(payload),
		ChunkSize:      chunk,
		Protocol:       opt.Protocol,
		Strategy:       opt.Strategy,
		RetransTimeout: tr,
		Window:         opt.Window,
		Controller:     opt.Controller,
		Adaptive:       opt.Adaptive,
		MaxAttempts:    opt.MaxAttempts,
		Linger:         opt.Linger,
		ReceiverIdle:   opt.ReceiverIdle,
		Payload:        payload,
	}
}

// checkSegment enforces V's bounds and access-right checks.
func checkSegment(p *Process, off, n int, write bool) error {
	if p == nil {
		return ErrNoProcess
	}
	if n < 0 || off < 0 || off+n > len(p.space) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+n, len(p.space))
	}
	if write && !p.writable {
		return fmt.Errorf("%w: pid %d is not writable", ErrAccess, p.PID)
	}
	return nil
}
