// Package disk models the file server's disk — the other half of the
// paper's motivation. The introduction cites file-access studies [10,12,15]
// showing that high performance requires large page sizes "due to economies
// in accessing the disk in large quantities as well as to economies in
// accessing the network in large quantities"; the paper studies the network
// half, and this package supplies the disk half so the end-to-end file-read
// experiment (ext-pagesize) can reproduce the combined effect.
//
// The model is the classic three-term access time: average seek, half a
// rotation of latency, then media transfer at a fixed rate. Sequential
// follow-on reads skip the seek.
package disk

import (
	"fmt"
	"time"
)

// Geometry describes a disk's timing parameters.
type Geometry struct {
	Name string
	// AvgSeek is the average seek time for a random access.
	AvgSeek time.Duration
	// RotationPeriod is one full platter revolution; random accesses wait
	// half of it on average.
	RotationPeriod time.Duration
	// BytesPerSec is the sustained media transfer rate.
	BytesPerSec int64
	// SectorSize is the access granularity; reads round up to whole
	// sectors.
	SectorSize int
}

// FujitsuEagle is a canonical 1985 server disk (Fujitsu M2351 "Eagle"):
// ~18 ms average seek, 3600 RPM (16.7 ms/rev), ~1.8 MB/s transfer.
func FujitsuEagle() Geometry {
	return Geometry{
		Name:           "fujitsu-eagle",
		AvgSeek:        18 * time.Millisecond,
		RotationPeriod: 16667 * time.Microsecond,
		BytesPerSec:    1_800_000,
		SectorSize:     512,
	}
}

// ModernNVMe is the ablation counterpart: microsecond access, GB/s rates.
func ModernNVMe() Geometry {
	return Geometry{
		Name:           "modern-nvme",
		AvgSeek:        10 * time.Microsecond,
		RotationPeriod: 0,
		BytesPerSec:    3_000_000_000,
		SectorSize:     4096,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.BytesPerSec <= 0:
		return fmt.Errorf("disk: %s: transfer rate must be positive", g.Name)
	case g.SectorSize <= 0:
		return fmt.Errorf("disk: %s: sector size must be positive", g.Name)
	case g.AvgSeek < 0 || g.RotationPeriod < 0:
		return fmt.Errorf("disk: %s: negative latency", g.Name)
	}
	return nil
}

// roundUp rounds n up to whole sectors.
func (g Geometry) roundUp(n int) int {
	if n <= 0 {
		return 0
	}
	s := g.SectorSize
	return (n + s - 1) / s * s
}

// AccessTime is the time to read n bytes starting at a random position:
// seek + rotational latency + transfer of whole sectors.
func (g Geometry) AccessTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return g.AvgSeek + g.RotationPeriod/2 + g.transfer(n)
}

// SequentialTime is the time to read n bytes continuing a previous access:
// no seek, no rotational latency.
func (g Geometry) SequentialTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return g.transfer(n)
}

func (g Geometry) transfer(n int) time.Duration {
	bytes := int64(g.roundUp(n))
	return time.Duration(bytes * int64(time.Second) / g.BytesPerSec)
}

// FileReadTime is the time to read a file of the given size in pages of
// pageSize bytes, with the first page paying a random access and each
// subsequent page costing one rotational latency plus transfer (the page
// boundary loses the disk's position — the [12] fast-file-system effect
// that makes small pages expensive).
//
// Computed in closed form: every subsequent page pays the same rotational
// latency, every full page the same sector-rounded transfer, and at most
// one short tail page differs — so the per-page loop (2M iterations for a
// 1 GB file at 512 B pages) collapses to four terms. The per-term integer
// divisions (RotationPeriod/2, sector rounding) are preserved exactly;
// TestFileReadTimeClosedForm pins equality against the literal loop.
func (g Geometry) FileReadTime(fileSize, pageSize int) time.Duration {
	if fileSize <= 0 || pageSize <= 0 {
		return 0
	}
	if fileSize <= pageSize {
		return g.AccessTime(fileSize)
	}
	full, rem := fileSize/pageSize, fileSize%pageSize
	pages := full
	if rem > 0 {
		pages++
	}
	total := g.AccessTime(pageSize) +
		time.Duration(pages-1)*(g.RotationPeriod/2) +
		time.Duration(full-1)*g.transfer(pageSize)
	if rem > 0 {
		total += g.transfer(rem)
	}
	return total
}
