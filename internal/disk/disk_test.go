package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGeometryValidate(t *testing.T) {
	if err := FujitsuEagle().Validate(); err != nil {
		t.Error(err)
	}
	if err := ModernNVMe().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Geometry{
		{Name: "no-rate", SectorSize: 512},
		{Name: "no-sector", BytesPerSec: 1},
		{Name: "neg-seek", BytesPerSec: 1, SectorSize: 1, AvgSeek: -1},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%s accepted", g.Name)
		}
	}
}

func TestAccessTimeComponents(t *testing.T) {
	g := FujitsuEagle()
	// 1 KB = 2 sectors = 1024 bytes at 1.8 MB/s ≈ 569 µs, plus 18 ms seek
	// and 8.33 ms latency.
	got := g.AccessTime(1024)
	want := 18*time.Millisecond + g.RotationPeriod/2 +
		time.Duration(1024*int64(time.Second)/1_800_000)
	if got != want {
		t.Errorf("AccessTime(1KB) = %v, want %v", got, want)
	}
	if g.AccessTime(0) != 0 || g.AccessTime(-5) != 0 {
		t.Error("degenerate sizes should cost nothing")
	}
	// Sequential reads skip seek and latency entirely.
	if g.SequentialTime(1024) >= g.AccessTime(1024) {
		t.Error("sequential must be cheaper than random")
	}
}

func TestSectorRounding(t *testing.T) {
	g := FujitsuEagle()
	if g.SequentialTime(1) != g.SequentialTime(512) {
		t.Error("sub-sector reads round up to one sector")
	}
	if g.SequentialTime(513) != g.SequentialTime(1024) {
		t.Error("513 bytes rounds to two sectors")
	}
}

// Property: access time is monotone in size.
func TestAccessMonotone(t *testing.T) {
	g := FujitsuEagle()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return g.AccessTime(x) <= g.AccessTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The intro's claim: reading a 64 KB file in larger pages is dramatically
// cheaper because per-page positioning costs amortise.
func TestLargePagesAmortise(t *testing.T) {
	g := FujitsuEagle()
	prev := time.Duration(1 << 62)
	for _, page := range []int{1024, 4096, 16384, 65536} {
		cur := g.FileReadTime(64*1024, page)
		if cur >= prev {
			t.Errorf("page %d: %v not cheaper than smaller page %v", page, cur, prev)
		}
		prev = cur
	}
	// 1 KB pages pay 63 extra rotational latencies ≈ 525 ms extra.
	small := g.FileReadTime(64*1024, 1024)
	large := g.FileReadTime(64*1024, 65536)
	if ratio := float64(small) / float64(large); ratio < 5 {
		t.Errorf("1KB/64KB page ratio = %.1f, expected dramatic", ratio)
	}
}

func TestFileReadTimeEdges(t *testing.T) {
	g := FujitsuEagle()
	if g.FileReadTime(0, 1024) != 0 || g.FileReadTime(1024, 0) != 0 {
		t.Error("degenerate inputs cost nothing")
	}
	// A file smaller than one page costs exactly one access.
	if g.FileReadTime(100, 4096) != g.AccessTime(100) {
		t.Error("partial single page mismatch")
	}
	// Exact multi-page accounting: 2 pages = access + rotation/2 + transfer.
	want := g.AccessTime(1024) + g.RotationPeriod/2 + g.SequentialTime(1024)
	if got := g.FileReadTime(2048, 1024); got != want {
		t.Errorf("2-page read = %v, want %v", got, want)
	}
}

// fileReadTimeLoop is the original O(pages) accounting FileReadTime
// replaced: first page pays a random access, every subsequent page a
// rotational latency plus sector-rounded transfer. Kept here as the
// reference the closed form must match term for term.
func fileReadTimeLoop(g Geometry, fileSize, pageSize int) time.Duration {
	if fileSize <= 0 || pageSize <= 0 {
		return 0
	}
	pages := (fileSize + pageSize - 1) / pageSize
	total := g.AccessTime(min(fileSize, pageSize))
	remaining := fileSize - pageSize
	for i := 1; i < pages; i++ {
		n := min(pageSize, remaining)
		total += g.RotationPeriod/2 + g.transfer(n)
		remaining -= n
	}
	return total
}

// The closed form must equal the loop exactly — including the per-term
// integer division of RotationPeriod/2 and the per-page sector rounding —
// across page-aligned, tail-page, sub-page and sub-sector shapes on both
// an odd-period 1985 disk and a zero-rotation NVMe.
func TestFileReadTimeClosedForm(t *testing.T) {
	sizes := []int{1, 100, 511, 512, 513, 1024, 2048, 4096, 65536,
		65537, 1<<20 - 1, 1 << 20, 1<<20 + 513, 16 << 20}
	pages := []int{1, 100, 512, 1024, 4096, 16384, 65536, 1 << 20}
	for _, g := range []Geometry{FujitsuEagle(), ModernNVMe()} {
		for _, fs := range sizes {
			for _, ps := range pages {
				want := fileReadTimeLoop(g, fs, ps)
				if got := g.FileReadTime(fs, ps); got != want {
					t.Errorf("%s: FileReadTime(%d, %d) = %v, loop says %v",
						g.Name, fs, ps, got, want)
				}
			}
		}
	}
	// Degenerate inputs stay free in both formulations.
	g := FujitsuEagle()
	if g.FileReadTime(0, 512) != 0 || g.FileReadTime(512, 0) != 0 ||
		g.FileReadTime(-1, 512) != 0 {
		t.Error("degenerate inputs must cost nothing")
	}
	// The motivating case: 1 GB at 512 B pages is 2M loop iterations; the
	// closed form answers immediately and identically.
	const gb, page = 1 << 30, 512
	if got, want := g.FileReadTime(gb, page), fileReadTimeLoop(g, gb, page); got != want {
		t.Errorf("1GB/512B closed form %v != loop %v", got, want)
	}
}

func TestModernDiskNearlyFlat(t *testing.T) {
	g := ModernNVMe()
	// Compare sector-aligned page sizes: sub-sector pages pay 4× raw
	// transfer through rounding, which is a (realistic) separate effect.
	small := g.FileReadTime(64*1024, 4096)
	large := g.FileReadTime(64*1024, 65536)
	if ratio := float64(small) / float64(large); ratio > 2 {
		t.Errorf("modern page-size penalty %.1f should be modest", ratio)
	}
}
