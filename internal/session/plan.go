package session

import "fmt"

// Fan-out planning: which receiver pulls from whom. The planner lays the
// N receivers out as a complete branch-ary tree rooted at the source, so
// the source blasts each chunk to at most Branch children and every other
// hop is carried by a receiver that wanted the bytes anyway — the relay
// shape that turns N× distribution cost at the source into ~1× (§ the
// paper's single-LAN setting makes the source NIC the contended link; the
// modern reading is the same for a source's socket and disk).

// Tree is a fan-out plan over n receivers. Receiver i pulls from
// Parent[i]; -1 means directly from the source. Receivers with children
// run a relay (a Board-backed server) as well as their own pull.
type Tree struct {
	Parent []int
	Branch int
}

// PlanFanout lays n receivers out as a complete branch-ary tree: the
// first branch receivers pull from the source, receiver i (i >= branch)
// pulls from receiver i/branch - 1. branch < 1 plans a flat tree (all n
// from the source).
func PlanFanout(n, branch int) Tree {
	if n < 0 {
		panic(fmt.Sprintf("session: PlanFanout(%d, %d): negative receiver count", n, branch))
	}
	t := Tree{Parent: make([]int, n), Branch: branch}
	for i := range t.Parent {
		if branch < 1 || i < branch {
			t.Parent[i] = -1
			continue
		}
		t.Parent[i] = i/branch - 1
	}
	return t
}

// Transfer-ID scheme for stripe fan-outs, shared by every substrate's
// runner so one Done-hook map joins sender-side counters to the right
// session: stripe k of receiver i and relay k's uplink each get a distinct
// ID. FanoutStripeStride bounds stripes per receiver.
const FanoutStripeStride = 16

// FanoutReceiverID is receiver i's transfer ID for stripe k (k = 0 for a
// baseline whole-object pull).
func FanoutReceiverID(i, k int) uint32 { return uint32(101 + i*FanoutStripeStride + k) }

// FanoutRelayID is relay k's uplink transfer ID.
func FanoutRelayID(k int) uint32 { return uint32(901 + k) }

// Children returns the receivers that pull from receiver i.
func (t Tree) Children(i int) []int {
	var kids []int
	for j, p := range t.Parent {
		if p == i {
			kids = append(kids, j)
		}
	}
	return kids
}

// Internal returns the receivers that relay to at least one child, in
// index order.
func (t Tree) Internal() []int {
	relay := make([]bool, len(t.Parent))
	for _, p := range t.Parent {
		if p >= 0 {
			relay[p] = true
		}
	}
	var out []int
	for i, r := range relay {
		if r {
			out = append(out, i)
		}
	}
	return out
}

// DepthOf returns receiver i's hop count from the source (1 = pulls
// directly).
func (t Tree) DepthOf(i int) int {
	d := 1
	for t.Parent[i] >= 0 {
		d++
		i = t.Parent[i]
	}
	return d
}

// Depth returns the deepest receiver's hop count; 0 for an empty plan.
func (t Tree) Depth() int {
	max := 0
	for i := range t.Parent {
		if d := t.DepthOf(i); d > max {
			max = d
		}
	}
	return max
}
