package session

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// fakeClient is a transport.Client whose Recv waits out its timeout (or
// blocks forever) until aborted — the shape of a stripe session wedged on
// a silent server. Timeouts satisfy core.IsTimeout, so a protocol engine
// retries against it indefinitely, exactly like a real endpoint.
type fakeClient struct {
	abort chan struct{}
	once  sync.Once
}

func newFakeClient() *fakeClient { return &fakeClient{abort: make(chan struct{})} }

func (c *fakeClient) Now() time.Duration             { return 0 }
func (c *fakeClient) Compute(time.Duration)          {}
func (c *fakeClient) Send(*wire.Packet) error        { return nil }
func (c *fakeClient) SendAsync(p *wire.Packet) error { return c.Send(p) }

func (c *fakeClient) Recv(timeout time.Duration) (*wire.Packet, error) {
	if timeout < 0 {
		<-c.abort
		return nil, errClientAborted
	}
	select {
	case <-c.abort:
		return nil, errClientAborted
	case <-time.After(timeout):
		return nil, os.ErrDeadlineExceeded
	}
}

func (c *fakeClient) Close() error { c.Abort(); return nil }
func (c *fakeClient) Abort()       { c.once.Do(func() { close(c.abort) }) }

var errClientAborted = errors.New("fake client aborted")

// failFastClient fails every protocol operation with err, like an endpoint
// whose server rejected it outright.
type failFastClient struct {
	transport.Client
	err error
}

func (c *failFastClient) Send(*wire.Packet) error                  { return c.err }
func (c *failFastClient) SendAsync(*wire.Packet) error             { return c.err }
func (c *failFastClient) Recv(time.Duration) (*wire.Packet, error) { return nil, c.err }

// fakeFabric fans goroutine bodies over fakeClients; stripe failAt gets a
// client that fails instantly with failErr, every sibling one that blocks
// until aborted.
type fakeFabric struct {
	failAt  int
	failErr error
}

func (f *fakeFabric) Fan(n int, body func(i int, c transport.Client) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c transport.Client = newFakeClient()
			if i == f.failAt {
				c = &failFastClient{Client: c, err: f.failErr}
			}
			defer c.Close()
			errs[i] = body(i, c)
		}(i)
	}
	wg.Wait()
	return errs
}

// TestPullStripedCancelsSiblings pins the partial-failure contract: when
// one stripe fails, its siblings — wedged in endless REQ retries against a
// silent server — are aborted promptly, and the returned error names the
// stripe that failed.
func TestPullStripedCancelsSiblings(t *testing.T) {
	boom := errors.New("stripe exploded")
	cfg := core.Config{
		Bytes:          64000,
		ChunkSize:      1000,
		RetransTimeout: 100 * time.Millisecond,
		// Without cancellation the blocked siblings would retry their REQs
		// for MaxAttempts * 4*Tr = 400 s each; the 2 s bound below is only
		// passable because the failure aborts them.
		MaxAttempts: 1000,
	}

	start := time.Now()
	done := make(chan struct{})
	var res StripedResult
	var err error
	go func() {
		defer close(done)
		res, err = PullStriped(&fakeFabric{failAt: 2, failErr: boom}, cfg, StripeOptions{Streams: 4})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("PullStriped never returned: blocked siblings were not cancelled")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; siblings were not aborted promptly", elapsed)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the stripe failure", err)
	}
	if !strings.Contains(err.Error(), "stripe 2 of 4") {
		t.Errorf("error %q does not name the failing stripe", err)
	}
	if len(res.Stripes) != 4 {
		t.Fatalf("partial result reports %d stripes, want 4", len(res.Stripes))
	}
	if res.Stripes[2].Err == nil {
		t.Error("failing stripe's outcome lost its error")
	}
	for i, s := range res.Stripes {
		if s.Stripe.Bytes == 0 {
			t.Errorf("stripe %d plan missing from the partial result", i)
		}
	}
}

// TestPullStripedLateRegistrantBails pins the register-after-failure path:
// a stripe body that starts after a sibling has already failed must be
// told to bail before opening a doomed session, and the failing stripe
// itself must not be self-aborted.
func TestPullStripedLateRegistrantBails(t *testing.T) {
	boom := errors.New("early failure")
	cancel := &stripeCancel{clients: make([]transport.Client, 3)}
	c0, c1 := newFakeClient(), newFakeClient()
	if cancel.register(0, c0) {
		t.Fatal("first registrant told to bail")
	}
	if cancel.register(1, c1) {
		t.Fatal("second registrant told to bail")
	}
	cancel.fail(0, boom)
	select {
	case <-c1.abort:
	default:
		t.Fatal("registered sibling was not aborted")
	}
	select {
	case <-c0.abort:
		t.Fatal("the failing stripe must not be self-aborted")
	default:
	}
	if !cancel.register(2, newFakeClient()) {
		t.Fatal("late registrant not told a sibling already failed")
	}
	if i, err := cancel.first(); i != 0 || !errors.Is(err, boom) {
		t.Fatalf("first() = %d, %v", i, err)
	}
	// A later failure must not displace the first.
	cancel.fail(1, errors.New("secondary"))
	if i, err := cancel.first(); i != 0 || !errors.Is(err, boom) {
		t.Fatalf("first failure displaced: first() = %d, %v", i, err)
	}
}
