package session

import (
	"fmt"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/transport"
)

// Striped transfers: one logical pull split into contiguous chunk-aligned
// byte ranges (core.PlanStripes), each moved by its own client session — a
// separate conn, so a sharded Server demultiplexes each stripe into its own
// session — running concurrently. Per-stripe ack round trips overlap, which
// is what lets a single large transfer saturate a link the way GridFTP-style
// parallel streams do. The fan-out itself is substrate-free: the same
// orchestrator runs over UDP sockets (udplan.PullStriped) and simulator
// processes (sim.Fabric), so striped behaviour is testable deterministically.

// StripeOptions configures the substrate-independent part of a striped
// pull; everything wire-specific (batch sizes, MTUs, adversaries) is
// configured on the transport.Fabric that dials the stripes.
type StripeOptions struct {
	// Streams is the number of parallel stripe sessions (default 4).
	Streams int
	// Sink, when non-nil, receives every distinct chunk at its
	// logical-stream offset. Stripes deliver concurrently; calls are
	// serialised. When nil the transfer is checksummed and discarded.
	Sink core.ChunkSink

	// Repair enables per-stripe failure recovery: instead of the first
	// error aborting every sibling, the failed stripe is resumed from its
	// verified frontier with an offset REQ (core.PullResume), re-dialing a
	// fresh conn when the fabric supports it (transport.Redialer). Abort-
	// all remains the behaviour for non-retryable failures — a refused or
	// corrupt configuration (core.ErrBadConfig) names a transfer that can
	// never complete, so the siblings stop immediately.
	Repair bool
	// MaxResumes, Backoff, Seed and Sleep tune the per-stripe resume
	// engine when Repair is set; zero values take core.ResumeOptions
	// defaults. On the simulator Sleep must be the client process's own
	// virtual clock (sim clients provide it via SleepFor automatically).
	MaxResumes int
	Backoff    time.Duration
	Seed       int64
	Sleep      func(time.Duration)
	// OnResume, when non-nil, observes stripe repairs: which stripe, its
	// resume ordinal, the logical chunk offset re-requested, and the error
	// that killed the previous session.
	OnResume func(stripe, resume, offsetChunks int, cause error)
}

// StripeOutcome is one stripe session's result.
type StripeOutcome struct {
	Stripe core.Stripe
	Recv   core.RecvResult
	Resume core.ResumeStats // zero unless StripeOptions.Repair recovered the stripe
	Err    error
}

// StripedResult reports a striped pull: merged whole-transfer progress plus
// the per-stripe feed.
type StripedResult struct {
	Bytes    int           // distinct payload bytes delivered across all stripes
	Checksum uint16        // whole-stream Internet checksum (== core.TransferChecksum)
	Elapsed  time.Duration // fan-out start to last stripe completion
	Stripes  []StripeOutcome
}

// MBps returns the logical transfer's application-level throughput.
func (r StripedResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// clockOf returns the fabric's own clock when it has one (a virtual-time
// fabric measures the fan-out in virtual time), falling back to wall time.
func clockOf(f transport.Fabric) func() time.Duration {
	if c, ok := f.(interface{ Now() time.Duration }); ok {
		return c.Now
	}
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// stripeCancel coordinates partial-failure cancellation across the stripe
// bodies: the first stripe to fail wins the error slot and aborts every
// sibling promptly, so a wedged transfer does not wait out the survivors'
// full retry budgets.
type stripeCancel struct {
	mu      sync.Mutex
	clients []transport.Client
	failed  int // 1 + index of the first failed stripe; 0 = none
	err     error
}

// register records a live stripe client; if a sibling already failed the
// newcomer is told to bail out before doing any work.
func (sc *stripeCancel) register(i int, c transport.Client) (alreadyFailed bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.clients[i] = c
	return sc.failed != 0
}

// fail records stripe i's error (first failure wins) and aborts every other
// registered stripe.
func (sc *stripeCancel) fail(i int, err error) {
	sc.mu.Lock()
	if sc.failed != 0 {
		sc.mu.Unlock()
		return
	}
	sc.failed = 1 + i
	sc.err = err
	aborts := make([]transport.Client, 0, len(sc.clients))
	for j, c := range sc.clients {
		if j != i && c != nil {
			aborts = append(aborts, c)
		}
	}
	sc.mu.Unlock()
	for _, c := range aborts {
		c.Abort()
	}
}

// first returns the first failure, if any.
func (sc *stripeCancel) first() (int, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.failed - 1, sc.err
}

// PullStriped requests the logical transfer cfg describes (Bytes, ChunkSize,
// Protocol, Strategy, Window, Adaptive, timeouts) through the fabric as
// opts.Streams concurrent stripe sessions and reassembles the result. The
// serving side must resolve each stripe's REQ against the logical stream
// (see wire.Req.Offset); Server does this whenever its Source/Data handler
// honours the request's stripe fields. cfg.Sink and cfg.Payload are ignored
// — delivery goes through opts.Sink.
//
// If one stripe fails, its siblings are aborted promptly (their conns
// unblock and their engines error out) and the returned error names the
// stripe that failed first; the partial StripedResult still reports
// whatever every stripe delivered.
func PullStriped(f transport.Fabric, cfg core.Config, opts StripeOptions) (StripedResult, error) {
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	streams := opts.Streams
	if streams <= 0 {
		streams = 4
	}
	plan := core.PlanStripes(cfg.Bytes, chunk, streams)
	if len(plan) == 0 {
		return StripedResult{}, fmt.Errorf("session: nothing to stripe: %w", core.ErrBadConfig)
	}
	cfg.Payload, cfg.Source = nil, nil // pull side: bytes come off the wire

	merger := core.NewStripeMerger(opts.Sink)
	outs := make([]StripeOutcome, len(plan))
	for i := range outs {
		outs[i].Stripe = plan[i]
	}
	cancel := &stripeCancel{clients: make([]transport.Client, len(plan))}
	now := clockOf(f)
	start := now()
	errs := f.Fan(len(plan), func(i int, c transport.Client) error {
		if cancel.register(i, c) {
			return nil // a sibling already failed; don't start a doomed session
		}
		scfg := core.StripeConfig(cfg, plan[i])
		scfg.Sink = merger.StripeSink(plan[i])
		// Substrates with hard framing limits (an MTU) veto the transfer
		// before any packet moves, turning a silent truncation stall into a
		// clear error.
		if v, ok := c.(interface{ ValidateConfig(core.Config) error }); ok {
			if err := v.ValidateConfig(scfg); err != nil {
				cancel.fail(i, err)
				return err
			}
		}
		var res core.RecvResult
		var err error
		if opts.Repair {
			res, outs[i].Resume, err = pullStripeRepair(f, c, scfg, opts, cancel, i)
		} else {
			res, err = core.Request(c, scfg)
		}
		outs[i].Recv = res
		if err != nil {
			cancel.fail(i, err)
		}
		return err
	})
	res := StripedResult{Elapsed: now() - start, Stripes: outs}
	sums := make([]uint16, len(plan))
	for i := range outs {
		outs[i].Err = errs[i]
		res.Bytes += outs[i].Recv.Bytes
		sums[i] = outs[i].Recv.Checksum
	}
	res.Checksum = core.MergeStripeChecksums(plan, sums)
	if i, err := cancel.first(); err != nil {
		return res, fmt.Errorf("session: stripe %d of %d: %w", i, len(plan), err)
	}
	// Defensive: a fabric that does not route dial failures through the
	// body (see transport.Fabric) reports them only in errs; surface them
	// with their stripe index anyway.
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("session: stripe %d of %d: %w", i, len(plan), err)
		}
	}
	return res, nil
}

// pullStripeRepair runs stripe i through the resume engine instead of a
// single Request: a dead session is re-planned from the stripe's verified
// frontier rather than aborting every sibling. When the fabric can re-dial
// (transport.Redialer) each resume gets a fresh conn, registered with the
// cancel set so a sibling's fatal failure still aborts it promptly; the
// replaced conn is closed here (the fabric only closes the original).
func pullStripeRepair(f transport.Fabric, c transport.Client, scfg core.Config,
	opts StripeOptions, cancel *stripeCancel, i int) (core.RecvResult, core.ResumeStats, error) {
	cur := c
	defer func() {
		if cur != c {
			cur.Close()
		}
	}()
	ropts := core.ResumeOptions{
		MaxResumes: opts.MaxResumes,
		Backoff:    opts.Backoff,
		Seed:       opts.Seed + int64(i)*1000003,
		Sleep:      opts.Sleep,
		Cancel: func() bool {
			_, err := cancel.first()
			return err != nil
		},
	}
	if rd, ok := f.(transport.Redialer); ok {
		ropts.Redial = func() (core.Env, error) {
			nc, err := rd.Redial(i)
			if err != nil {
				return nil, err
			}
			if cancel.register(i, nc) {
				nc.Close()
				return nil, fmt.Errorf("stripe %d cancelled by sibling", i)
			}
			if cur != c {
				cur.Close()
			}
			cur = nc
			return nc, nil
		}
	}
	if opts.OnResume != nil {
		ropts.OnResume = func(resume, offsetChunks int, cause error) {
			opts.OnResume(i, resume, offsetChunks, cause)
		}
	}
	return core.PullResume(cur, scfg, ropts)
}
