// Package session is the substrate-agnostic transport/session layer: the
// serving machinery that used to live inside internal/udplan — one demux
// loop, a GOMAXPROCS-sharded session table, per-session bodies running the
// unmodified core protocol engines, REQ-only session opening, streaming
// Source/SinkStream handlers and stripe-range resolution — lifted above the
// wire so the same sharded server runs over real UDP sockets, the
// discrete-event simulator and the V kernel's simulated cluster. Substrates
// plug in through the small interfaces of internal/transport; everything
// here is wire-agnostic.
//
// This mirrors how large-scale transfer services separate the transfer
// orchestrator from the substrate (Globus and XRootD both serve many
// concurrent movers above a pluggable data channel), and it is what makes
// scale behaviour — session capacity, shard contention, many-client
// fairness — reproducible deterministically on the simulator (see
// simrun.LoadScenario).
package session

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// drainPoll bounds how long a draining server blocks in Accept before
// re-checking whether its last session has completed.
const drainPoll = 50 * time.Millisecond

// Server answers transfer requests on one listener. With Concurrency <= 1
// callers usually drive a single env serially through ServeEnv (the paper's
// world of two matched machines); Run is the sharded daemon: one demux loop
// routes arrivals by source into per-session bodies, each running the
// unmodified core protocol engines over its own channel-fed Env — the
// fan-out a daemon needs to serve many clients at once, on any substrate.
type Server struct {
	// Data, when non-nil, satisfies pull requests (MoveFrom): it returns
	// the bytes to blast back for an accepted request.
	Data func(wire.Req) ([]byte, bool)

	// Source, when non-nil, satisfies pull requests without materialising
	// them: it returns a streaming chunk source (see core.ChunkSource).
	// Preferred over Data when both are set — a 1 GB pull then never means
	// a 1 GB allocation. Striped requests resolve their range through the
	// REQ's stripe fields (wire.Req.OffsetChunks/Total) exactly as unstriped
	// ones; the handler sees the narrowed request.
	Source func(wire.Req) (core.ChunkSource, bool)

	// SourceEnv is Source with the session's protocol environment passed
	// through, for sources whose reads are charged to the substrate's
	// clock — a store whose simulated disk spends the serving host's
	// virtual time (env.Compute) per miss. Preferred over Source when both
	// are set.
	SourceEnv func(wire.Req, core.Env) (core.ChunkSource, bool)

	// Stat, when non-nil, answers stat requests (wire.Req.Stat): it
	// returns the named object's size. The session replies with an
	// ack-sized FIN carrying the size and stays open for the pull that
	// usually follows; rejected or unresolvable names are dropped (the
	// client's retry gives up on its own schedule). Stat REQs are answered
	// from the accept hook, so a retransmitted stat earns an idempotent
	// re-reply.
	Stat func(wire.Req) (int64, bool)

	// Copy, when non-nil, serves third-party copy requests (wire.Req.Copy):
	// asked to move the object named by req.Name to the server at
	// req.Target, it performs the push on the serving substrate — dialing
	// the target itself — and returns the bytes moved. progress must be
	// called with the running byte count as the push advances; the session
	// relays quantised progress acks to the orchestrator (see
	// core.ServeCopy), whose patience window they keep open. An error
	// return is relayed verbatim as the copy's failure text.
	Copy func(req wire.Req, env core.Env, progress func(int64)) (int64, error)

	// Sink, when non-nil, accepts push requests (MoveTo) and receives the
	// completed, fully assembled transfer.
	Sink func(wire.Req, []byte)

	// SinkStream, when non-nil, accepts push requests without buffering:
	// it returns a per-transfer chunk sink plus a completion callback that
	// receives the final result (byte count, incremental checksum).
	// Preferred over Sink when both are set. done is called exactly once
	// per accepted push, whether or not the transfer completed — check
	// RecvResult.Completed before trusting the bytes — so implementations
	// can release per-transfer resources (close files) on aborts too.
	SinkStream func(wire.Req) (sink core.ChunkSink, done func(core.RecvResult), ok bool)

	// Idle bounds how long Run waits for the next request; zero waits
	// forever (until the listener closes).
	Idle time.Duration

	// Concurrency caps the number of simultaneous sessions; requests beyond
	// the cap are refused with a best-effort BUSY/RETRY-AFTER reply (when
	// the listener can address one) and otherwise dropped — either way the
	// client retries on its own schedule. Values <= 1 mean a single session
	// at a time.
	Concurrency int

	// RetryAfter is the back-off hint carried on BUSY refusals (default
	// 250ms): how soon a refused client should re-request.
	RetryAfter time.Duration

	// SessionIdle bounds how long an admitted session may sit quiet before
	// it is reaped (default: Idle when set, else 30s) — a client that
	// vanished mid-handshake must not hold a session slot forever.
	SessionIdle time.Duration

	// Validate, when non-nil, checks an accepted transfer configuration
	// against substrate limits (an MTU, say) before the session starts.
	Validate func(core.Config) error

	// Logf, when non-nil, receives operational log lines (rejections,
	// session errors, cap drops).
	Logf func(format string, args ...any)

	// Done, when non-nil, is called after every completed transfer with
	// its stats — the per-peer rate log hook.
	Done func(TransferStats)

	mu       sync.Mutex
	served   int
	active   atomic.Int32 // sessions admitted by the sharded demux loop
	busy     atomic.Int32 // transfers in flight inside ServeEnv (any path)
	draining atomic.Bool
	limiter  logLimiter
}

// logLimiter rate-limits per-peer operational log lines to one per second,
// so a REQ storm (refused admissions, degenerate requests) cannot spam the
// log with one line per packet.
type logLimiter struct {
	mu   sync.Mutex
	last map[string]time.Time
}

// allowKey reports whether a line keyed by raw demux-key bytes may log now.
// The lookup itself does not allocate; only the once-per-second insert does.
func (ll *logLimiter) allowKey(key []byte, now time.Time) bool {
	ll.mu.Lock()
	defer ll.mu.Unlock()
	if t, ok := ll.last[string(key)]; ok && now.Sub(t) < time.Second {
		return false
	}
	ll.insert(string(key), now)
	return true
}

// allowString is allowKey for string-identified peers.
func (ll *logLimiter) allowString(key string, now time.Time) bool {
	ll.mu.Lock()
	defer ll.mu.Unlock()
	if t, ok := ll.last[key]; ok && now.Sub(t) < time.Second {
		return false
	}
	ll.insert(key, now)
	return true
}

func (ll *logLimiter) insert(key string, now time.Time) {
	if ll.last == nil {
		ll.last = make(map[string]time.Time)
	}
	if len(ll.last) > 4096 {
		// A storm of spoofed sources must not grow the map without bound.
		clear(ll.last)
	}
	ll.last[key] = now
}

// TransferStats reports one completed transfer for the Done hook.
type TransferStats struct {
	Peer        transport.Peer
	Req         wire.Req
	TransferID  uint32
	Push        bool
	Bytes       int
	Elapsed     time.Duration
	Packets     int // data packets (received for pushes, sent for pulls)
	Retransmits int // pulls only
	Checksum    uint16
}

// MBps returns the transfer's application-level throughput in MB/s.
func (t TransferStats) MBps() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.Elapsed.Seconds() / 1e6
}

// Served reports how many transfers completed successfully.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Active reports how many conversations are currently in flight: admitted
// sessions on the sharded path, or the accepted transfer a serial single-env
// server is driving (which never registers a session).
func (s *Server) Active() int {
	if a := int(s.active.Load()); a > 0 {
		return a
	}
	return int(s.busy.Load())
}

// BeginDrain puts the server into graceful shutdown: no new session opens
// (a REQ beyond this point is dropped and the client's retry will find the
// server gone), and Run returns once the sessions already in flight have
// completed. Callers that want a bound put a timer on Run's return and
// force the issue by closing the listener's socket.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// logfPeer logs at most one line per peer per second.
func (s *Server) logfPeer(peer transport.Peer, format string, args ...any) {
	if s.Logf == nil {
		return
	}
	if !s.limiter.allowString(peer.String(), time.Now()) {
		return
	}
	s.Logf(format, args...)
}

func (s *Server) retryAfter() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return 250 * time.Millisecond
}

// refuse answers an admissible REQ the server will not serve: a best-effort
// BUSY/RETRY-AFTER reply when the listener can address one (clients honor
// the hint, see core.PullResume), plus a rate-limited log line — one per
// peer per second, not one per packet.
func (s *Server) refuse(l transport.Listener, inb transport.Inbound, why string) {
	retry := s.retryAfter()
	if br, ok := l.(transport.BusyReplier); ok {
		_ = br.ReplyBusy(inb.Msg, retry)
	}
	if s.Logf != nil && s.limiter.allowKey(inb.Key, time.Now()) {
		s.Logf("session: %s (active %d/%d); replying BUSY to %x (retry-after %v)",
			why, s.active.Load(), s.concurrency(), inb.Key, retry)
	}
}

func (s *Server) concurrency() int {
	if s.Concurrency < 1 {
		return 1
	}
	return s.Concurrency
}

// session is one client conversation in the sharded server.
type session struct {
	key  string
	conn transport.Conn
}

// Run is the sharded daemon: the single demux loop feeding per-session
// bodies through the listener's conns. It returns nil on a clean close
// (listener closed, idle bound reached with nothing in flight, or drain
// completed) and blocks until every session body has returned.
func (s *Server) Run(l transport.Listener) error {
	table := newSessionTable()
	defer func() {
		table.hangupAll()
		l.Drain()
	}()

	// Listeners with cheap timeouts (sockets) advertise a poll bound, so an
	// unbounded-Idle server still notices BeginDrain within one poll instead
	// of blocking in Accept until the next arrival. Virtual-time listeners
	// advertise none — polling forever would keep the event heap alive.
	poll := time.Duration(0)
	if p, ok := l.(interface{ AcceptPoll() time.Duration }); ok {
		poll = p.AcceptPoll()
	}

	for {
		idle := s.Idle
		if idle <= 0 {
			idle = poll // 0 still means block forever
		}
		if s.draining.Load() {
			if s.active.Load() == 0 {
				return nil
			}
			// Poll so the loop notices the last session completing even if
			// the network has gone quiet.
			if idle <= 0 || idle > drainPoll {
				idle = drainPoll
			}
		}
		inb, err := l.Accept(idle)
		if err != nil {
			if core.IsTimeout(err) {
				if s.active.Load() == 0 && (s.Idle > 0 || s.draining.Load()) {
					return nil // idle bound reached
				}
				continue
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}

		sess := table.get(inb.Key)
		if sess == nil {
			// Only a checksum-valid REQ opens a session — the demux mirror
			// of LearnReqOnly: stragglers from finished transfers cannot
			// claim server state.
			if _, ok := l.ReqOf(inb.Msg); !ok {
				continue
			}
			if s.draining.Load() {
				s.refuse(l, inb, "draining")
				continue
			}
			if int(s.active.Load()) >= s.concurrency() {
				s.refuse(l, inb, "at session cap")
				continue
			}
			conn, peer, err := l.Open()
			if err != nil {
				continue // unresolvable source
			}
			sess = &session{key: string(inb.Key), conn: conn}
			table.put(sess)
			s.active.Add(1)
			key := sess.key
			conn.Spawn("session", func(env core.Env) {
				s.runSession(env, peer)
				table.remove(key)
				s.active.Add(-1)
			})
		}
		sess.conn.Deliver(inb.Msg)
	}
}

// RunAll runs one demux loop per listener over the same server state — the
// SO_REUSEPORT multi-queue daemon. The kernel hashes each client flow to
// exactly one socket, so every loop owns its sessions outright (per-loop
// session tables, no cross-loop lookups), while the admission cap, drain
// flag and Served/Done accounting are shared atomics and mutexes — N loops
// never double-count a transfer or race the Done hook. Blocks until every
// loop has returned; the first loop error wins (nil on clean closes).
func (s *Server) RunAll(ls ...transport.Listener) error {
	if len(ls) == 1 {
		return s.Run(ls[0])
	}
	errs := make([]error, len(ls))
	var wg sync.WaitGroup
	for i := range ls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Run(ls[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runSession drives one client conversation to completion.
func (s *Server) runSession(env core.Env, peer transport.Peer) {
	// The opening REQ is already queued; the idle bound reaps a session
	// whose client vanished mid-handshake so it cannot hold a slot forever.
	idle := s.SessionIdle
	if idle <= 0 {
		idle = s.Idle
	}
	if idle <= 0 {
		idle = 30 * time.Second
	}
	err := s.ServeEnv(env, idle, s.Validate, func() transport.Peer { return peer })
	if err != nil && !core.IsTimeout(err) && !errors.Is(err, net.ErrClosed) {
		s.logf("session: %v: %v", peer, err)
	}
}

// ServeEnv accepts one request on env and completes the transfer,
// dispatching to the server's streaming or buffering handlers. It is the
// whole per-session protocol path — Run's session bodies and serial
// single-env servers (udplan's Concurrency <= 1 mode) share it. peerOf is
// consulted lazily (a serial endpoint only learns its peer from the REQ);
// validate, when non-nil, overrides the server-wide Validate hook.
func (s *Server) ServeEnv(env core.Env, idle time.Duration, validate func(core.Config) error, peerOf func() transport.Peer) error {
	var (
		isPush   bool
		isCopy   bool
		req      wire.Req
		pushDone func(core.RecvResult)
	)
	if validate == nil {
		validate = s.Validate
	}
	cfg, err := core.ServeOnceID(env, idle, func(r wire.Req, trans uint32) (core.Config, bool) {
		if r.Copy {
			// A copy ask opens a control session, not a transfer: the
			// session relays progress while the Copy hook moves the bytes
			// to the third party. Servers without the hook drop the REQ
			// (the orchestrator's retry gives up on its own schedule).
			if s.Copy == nil {
				s.logfPeer(peerOf(), "session: copy %q to %q from %v: no copy handler", r.Name, r.Target, peerOf())
				return core.Config{}, false
			}
			req, isCopy = r, true
			c := core.Config{}
			if r.TrMicros > 0 {
				c.RetransTimeout = time.Duration(r.TrMicros) * time.Microsecond
			}
			return c, true
		}
		if r.Stat {
			// A stat is a control exchange, not a transfer: answer it from
			// the accept hook and keep the session waiting for the pull
			// that usually follows. Retransmitted stats earn idempotent
			// re-replies; unresolvable names are dropped silently on the
			// wire (the client's retry gives up on its own schedule).
			if s.Stat == nil {
				return core.Config{}, false
			}
			size, ok := s.Stat(r)
			if !ok {
				s.logfPeer(peerOf(), "session: stat %q from %v: no such object", r.Name, peerOf())
				return core.Config{}, false
			}
			if serr := env.Send(core.StatReply(trans, size)); serr != nil {
				s.logf("session: stat reply to %v: %v", peerOf(), serr)
			}
			return core.Config{}, false
		}
		c := core.ConfigOf(0, r)
		// Bounded linger/idle: the simulation defaults are sized for free
		// virtual time and would stall the server between clients. The same
		// bounds apply on every substrate — on the simulator they are cheap
		// virtual waits — so one scenario behaves identically everywhere.
		c.Linger = 2*c.RetransTimeout + 100*time.Millisecond
		c.ReceiverIdle = 8*c.RetransTimeout + 2*time.Second
		if validate != nil {
			if verr := validate(c); verr != nil {
				// Rate-limited: a degenerate-REQ storm (one malformed client
				// retransmitting hard) must not write a log line per packet.
				s.logfPeer(peerOf(), "session: rejecting request from %v: %v", peerOf(), verr)
				return core.Config{}, false
			}
		}
		req, isPush = r, r.Push
		if r.Push {
			if s.SinkStream != nil {
				sink, done, ok := s.SinkStream(r)
				if !ok {
					return core.Config{}, false
				}
				c.Sink, pushDone = sink, done
				return c, true
			}
			if s.Sink == nil {
				return core.Config{}, false
			}
			return c, true
		}
		if s.SourceEnv != nil {
			src, ok := s.SourceEnv(r, env)
			if !ok {
				return core.Config{}, false
			}
			c.Source = src
			return c, true
		}
		if s.Source != nil {
			src, ok := s.Source(r)
			if !ok {
				return core.Config{}, false
			}
			c.Source = src
			return c, true
		}
		if s.Data == nil {
			return core.Config{}, false
		}
		payload, ok := s.Data(r)
		if !ok || len(payload) != c.Bytes {
			return core.Config{}, false
		}
		c.Payload = payload
		return c, true
	})
	if err != nil {
		return err
	}
	s.busy.Add(1)
	defer s.busy.Add(-1)
	stats := TransferStats{Peer: peerOf(), Req: req, TransferID: cfg.TransferID, Push: isPush}
	if isCopy {
		t0 := env.Now()
		bytes, cerr := core.ServeCopy(env, cfg, func(progress func(int64)) (int64, error) {
			return s.Copy(req, env, progress)
		})
		if cerr != nil {
			// The failure already went to the orchestrator as the copy's
			// NAK text; surface it here for the server's own log too.
			return fmt.Errorf("session: serving copy %q to %q: %w", req.Name, req.Target, cerr)
		}
		stats.Bytes, stats.Elapsed = int(bytes), env.Now()-t0
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		if s.Done != nil {
			s.Done(stats)
		}
		return nil
	}
	if isPush {
		// The sink's completion callback must run exactly once on every
		// exit path — success, protocol error, a hangup-induced abort or a
		// panic unwinding the session — or the daemon leaks the sink's
		// per-transfer resources (an open file, a partial transfer on
		// disk). finish is idempotent and a deferred call backstops any
		// path that misses it, delivering whatever result was reached
		// (zero-valued, Completed=false, if AcceptPush never returned).
		hadStream := pushDone != nil
		finish := func(res core.RecvResult) {
			if pushDone == nil {
				return
			}
			done := pushDone
			pushDone = nil
			done(res)
		}
		var last core.RecvResult
		defer func() { finish(last) }()
		res, err := core.AcceptPush(env, cfg)
		last = res
		if err != nil {
			// Completed is false on this path; the sink releases its
			// resources and discards partials.
			finish(res)
			return fmt.Errorf("session: accepting push: %w", err)
		}
		finish(res)
		if !hadStream && s.Sink != nil {
			s.Sink(req, res.Data)
		}
		stats.Bytes, stats.Elapsed = res.Bytes, res.Elapsed
		stats.Packets, stats.Checksum = res.DataPackets, res.Checksum
	} else {
		res, err := core.RunSender(env, cfg)
		if err != nil {
			return fmt.Errorf("session: serving pull: %w", err)
		}
		stats.Bytes, stats.Elapsed = cfg.Bytes, res.Elapsed
		stats.Packets, stats.Retransmits = res.DataPackets, res.Retransmits
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	if s.Done != nil {
		s.Done(stats)
	}
	return nil
}

// sessionTable is the sharded session map: one shard per GOMAXPROCS so
// concurrent completions and lookups do not serialise on a single lock.
// (On the simulator everything runs under handoff scheduling, so the locks
// never contend and shard count cannot affect results.)
type sessionTable struct {
	shards []tableShard
}

type tableShard struct {
	mu sync.Mutex
	m  map[string]*session
}

func newSessionTable() *sessionTable {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	t := &sessionTable{shards: make([]tableShard, n)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*session)
	}
	return t
}

// fnv-1a over the two key forms; identical results so lookups never copy.
func hashKeyBytes(k []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range k {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

func hashKeyString(k string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h
}

// get looks a session up by raw key bytes without allocating.
func (t *sessionTable) get(k []byte) *session {
	sh := &t.shards[hashKeyBytes(k)%uint32(len(t.shards))]
	sh.mu.Lock()
	s := sh.m[string(k)]
	sh.mu.Unlock()
	return s
}

func (t *sessionTable) put(s *session) {
	sh := &t.shards[hashKeyString(s.key)%uint32(len(t.shards))]
	sh.mu.Lock()
	sh.m[s.key] = s
	sh.mu.Unlock()
}

func (t *sessionTable) remove(key string) {
	sh := &t.shards[hashKeyString(key)%uint32(len(t.shards))]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// hangupAll closes every live session's inbox (the demux loop has stopped;
// sessions drain and exit).
func (t *sessionTable) hangupAll() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, s := range sh.m {
			s.conn.Hangup()
			delete(sh.m, k)
		}
		sh.mu.Unlock()
	}
}
