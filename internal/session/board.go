package session

import (
	"fmt"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// Board is a relay's cut-through chunk board: the rendezvous between one
// upstream pull filling it and the downstream sessions draining it. The
// upstream receiver writes each delivered chunk through Sink; a child
// session's ChunkSource blocks until the chunk it needs has landed and
// then serves it — so a relay forwards the head of a transfer while its
// tail is still arriving, paying one receive and one send per byte
// instead of a store-and-forward round through the full object.
//
// Chunks arrive at upstream-chunk granularity but are served at whatever
// granularity (and stripe offset) a child's REQ names: presence is
// checked over the covered board-chunk range, so repair pulls that resume
// from a mid-transfer frontier (offset REQs, PR 8) read the same board.
//
// Blocking is substrate-aware, the same split internal/store uses: real
// substrates wait on a condition variable; under the discrete-event
// simulator the serving session polls in virtual time (env.Compute), which
// keeps the kernel's handoff scheduling deterministic.
type Board struct {
	mu     sync.Mutex
	cond   *sync.Cond
	origin int // byte offset of the board within the logical stream
	chunk  int
	bytes  int
	have   []bool
	got    int // chunks landed
	buf    []byte
	err    error
	sim    bool
}

// boardWaitQuantum is how much virtual time a simulated child session
// sleeps between board polls while the chunk it needs is still upstream.
const boardWaitQuantum = 200 * time.Microsecond

// NewBoard creates a board for a bytes-long object arriving in
// upstream-chunk-sized pieces. sim selects virtual-time polling for the
// blocked readers (see Options.Sim in internal/store for the same knob).
func NewBoard(bytes, chunk int, sim bool) *Board {
	return NewBoardAt(0, bytes, chunk, sim)
}

// NewBoardAt creates a board whose byte range sits origin bytes into the
// logical stream — a stripe relay's board: the upstream stripe pull fills
// it with stripe-local offsets, while children address it with the stream's
// own stripe-range REQs (wire.Req.Offset), which SourceReq rebases.
func NewBoardAt(origin, bytes, chunk int, sim bool) *Board {
	if bytes <= 0 || chunk <= 0 || origin < 0 {
		panic(fmt.Sprintf("session: NewBoardAt(%d, %d, %d): bad dimensions", origin, bytes, chunk))
	}
	b := &Board{
		origin: origin,
		chunk:  chunk,
		bytes:  bytes,
		have:   make([]bool, (bytes+chunk-1)/chunk),
		buf:    make([]byte, bytes),
		sim:    sim,
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Sink returns the ChunkSink the upstream pull writes through: wire it
// into the pull's Config.Sink (or a PullResume's).
func (b *Board) Sink() core.ChunkSink { return b.Put }

// Put lands one upstream chunk at byte offset off and wakes blocked
// readers. Duplicate deliveries (retransmissions the receiver let through,
// resumed sessions re-covering the frontier) are idempotent.
func (b *Board) Put(off int, chunk []byte) {
	if len(chunk) == 0 {
		return
	}
	b.mu.Lock()
	copy(b.buf[off:], chunk)
	idx := off / b.chunk
	if !b.have[idx] {
		b.have[idx] = true
		b.got++
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Fail poisons the board: the upstream pull gave up for good (its resume
// budget exhausted). Blocked readers unblock and serve zeroes — the child
// transfers complete with a checksum mismatch rather than deadlocking,
// and the child's own resume layer re-pulls through a recovered relay.
func (b *Board) Fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Err returns the poisoning error, if any.
func (b *Board) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Complete reports whether every chunk has landed.
func (b *Board) Complete() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.got == len(b.have)
}

// Bytes returns the assembled object once every chunk has landed, nil
// otherwise. The returned slice is the board's own buffer — callers only
// read it.
func (b *Board) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.got != len(b.have) {
		return nil
	}
	return b.buf
}

// ready reports (locked) whether byte range [off, off+n) has fully landed.
func (b *Board) ready(off, n int) bool {
	if b.err != nil {
		return true // poisoned: serve what's there (zeroes where nothing is)
	}
	lo := off / b.chunk
	hi := (off + n - 1) / b.chunk
	for i := lo; i <= hi; i++ {
		if !b.have[i] {
			return false
		}
	}
	return true
}

// waitRange blocks until byte range [off, off+n) is present (or the board
// is poisoned), in the substrate's own time.
func (b *Board) waitRange(env core.Env, off, n int) {
	if b.sim {
		for {
			b.mu.Lock()
			ok := b.ready(off, n)
			b.mu.Unlock()
			if ok {
				return
			}
			env.Compute(boardWaitQuantum)
		}
	}
	b.mu.Lock()
	for !b.ready(off, n) {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// SourceReq resolves a child's pull request against the board: the
// session.Server.SourceEnv adapter for a relay. The request's stripe
// fields address the logical stream; the board serves the [origin,
// origin+bytes) slice of it exactly as a store would — an offset REQ from
// a resuming child reads from its frontier — and each chunk read blocks
// until the upstream pull has delivered it. Requests whose range falls
// outside the board are refused.
func (b *Board) SourceReq(r wire.Req, env core.Env) (core.ChunkSource, bool) {
	base := int(r.Offset()) - b.origin
	rchunk := int(r.Chunk)
	if rchunk <= 0 || base < 0 || base+int(r.Bytes) > b.bytes {
		return nil, false
	}
	return func(seq int, dst []byte) []byte {
		off := base + seq*rchunk
		n := rchunk
		if rem := b.bytes - off; rem < n {
			n = rem
		}
		if n <= 0 {
			return nil
		}
		b.waitRange(env, off, n)
		b.mu.Lock()
		out := dst[:n]
		copy(out, b.buf[off:off+n])
		b.mu.Unlock()
		return out
	}, true
}
