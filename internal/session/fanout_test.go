package session

import (
	"bytes"
	"errors"
	"testing"

	"blastlan/internal/wire"
)

func TestPlanFanout(t *testing.T) {
	tr := PlanFanout(8, 3)
	want := []int{-1, -1, -1, 0, 0, 0, 1, 1}
	for i, p := range tr.Parent {
		if p != want[i] {
			t.Errorf("Parent[%d] = %d, want %d", i, p, want[i])
		}
	}
	if d := tr.Depth(); d != 2 {
		t.Errorf("Depth() = %d, want 2", d)
	}
	if got := tr.Internal(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Internal() = %v, want [0 1]", got)
	}
	if kids := tr.Children(0); len(kids) != 3 || kids[0] != 3 || kids[2] != 5 {
		t.Errorf("Children(0) = %v", kids)
	}
	if kids := tr.Children(7); kids != nil {
		t.Errorf("Children(7) = %v, want none", kids)
	}
	// A flat plan: everyone pulls from the source.
	flat := PlanFanout(4, 0)
	for i, p := range flat.Parent {
		if p != -1 {
			t.Errorf("flat Parent[%d] = %d", i, p)
		}
	}
	if flat.Depth() != 1 || flat.Internal() != nil {
		t.Errorf("flat plan depth %d internal %v", flat.Depth(), flat.Internal())
	}
	// Wider trees stay consistent: every parent index precedes its child.
	wide := PlanFanout(64, 4)
	for i, p := range wide.Parent {
		if p >= i {
			t.Errorf("Parent[%d] = %d is not upstream", i, p)
		}
	}
}

func TestBoardCutThrough(t *testing.T) {
	const chunk, n = 100, 10
	payload := make([]byte, chunk*n)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b := NewBoard(len(payload), chunk, false)
	src, ok := b.SourceReq(wire.Req{Bytes: uint64(len(payload)), Chunk: chunk}, nil)
	if !ok {
		t.Fatal("full-object request refused")
	}
	// A reader asking for chunk 5 blocks until the upstream delivers it —
	// and only it; the tail can still be in flight.
	served := make(chan []byte)
	go func() {
		dst := make([]byte, chunk)
		served <- append([]byte(nil), src(5, dst)...)
	}()
	select {
	case <-served:
		t.Fatal("read completed before the chunk landed")
	default:
	}
	for i := 0; i <= 5; i++ {
		b.Put(i*chunk, payload[i*chunk:(i+1)*chunk])
	}
	if got := <-served; !bytes.Equal(got, payload[5*chunk:6*chunk]) {
		t.Error("served chunk differs from the delivered one")
	}
	if b.Complete() || b.Bytes() != nil {
		t.Error("board complete with chunks still upstream")
	}
	for i := 6; i < n; i++ {
		b.Put(i*chunk, payload[i*chunk:(i+1)*chunk])
	}
	if !b.Complete() || !bytes.Equal(b.Bytes(), payload) {
		t.Error("assembled object differs from the upstream payload")
	}
	// An offset REQ (a resuming child) reads from its frontier: seq 0 of a
	// request offset 3 chunks in is the board's chunk 3.
	rsrc, ok := b.SourceReq(wire.Req{
		Bytes: uint64(len(payload) - 3*chunk), Chunk: chunk,
		OffsetChunks: 3, Total: uint64(len(payload)),
	}, nil)
	if !ok {
		t.Fatal("offset request refused")
	}
	if got := rsrc(0, make([]byte, chunk)); !bytes.Equal(got, payload[3*chunk:4*chunk]) {
		t.Error("offset read served the wrong range")
	}
	// Ranges outside the board are refused, not served.
	if _, ok := b.SourceReq(wire.Req{Bytes: uint64(len(payload)) + 1, Chunk: chunk}, nil); ok {
		t.Error("oversized request accepted")
	}
	if _, ok := b.SourceReq(wire.Req{Bytes: chunk, Chunk: chunk, OffsetChunks: n, Total: uint64(len(payload))}, nil); ok {
		t.Error("out-of-range offset accepted")
	}
}

func TestBoardFailUnblocks(t *testing.T) {
	b := NewBoard(1000, 100, false)
	src, _ := b.SourceReq(wire.Req{Bytes: 1000, Chunk: 100}, nil)
	served := make(chan int)
	go func() {
		served <- len(src(9, make([]byte, 100)))
	}()
	b.Fail(errors.New("upstream gave up"))
	if n := <-served; n != 100 {
		t.Errorf("poisoned read served %d bytes, want the zero-filled 100", n)
	}
	if b.Err() == nil {
		t.Error("Err() lost the poisoning error")
	}
}
