package udplan

import (
	"bytes"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// A push over a fully batched endpoint pair must deliver byte-identical
// data for every protocol, at several batch sizes.
func TestBatchedTransferAllProtocols(t *testing.T) {
	for _, batch := range []int{2, 4, 32} {
		for _, p := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
			payload := randomPayload(16*1024, int64(batch)*10+int64(p))
			srv, addr := newLoopbackServer(t)
			srv.Batch = batch
			got := make(chan []byte, 1)
			srv.Sink = func(r wire.Req, data []byte) { got <- data }
			go srv.Run()

			e, err := Dial(addr)
			if err != nil {
				t.Skipf("dial: %v", err)
			}
			e.SetBatch(batch)
			if _, err := Push(e, loopCfg(uint32(batch*10)+uint32(p), payload, p, core.GoBackN)); err != nil {
				t.Fatalf("batch=%d %v: %v", batch, p, err)
			}
			select {
			case data := <-got:
				if !bytes.Equal(data, payload) {
					t.Fatalf("batch=%d %v: corrupted", batch, p)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("batch=%d %v: timed out", batch, p)
			}
			e.Close()
		}
	}
}

// The Tx reorder-hold semantics must be bit-identical on the batched path:
// same arrival order as the single-syscall test above it.
func TestBatchedMangleTxReorder(t *testing.T) {
	ea, eb := pipe(t)
	ea.SetBatch(4)
	ea.MangleTx = func(p *wire.Packet) params.Mangle {
		if p.Seq == 0 {
			return params.Mangle{Hold: 2}
		}
		return params.Mangle{}
	}
	for i := 0; i < 4; i++ {
		if err := ea.Send(data(uint32(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ea.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	var order []uint32
	for i := 0; i < 4; i++ {
		pkt, err := eb.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, pkt.Seq)
	}
	want := []uint32{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", order, want)
		}
	}
}

// Batched duplicates and corruption: the duplicate arrives twice, the
// corrupted frame is rejected by the receiver's checksum — exactly as on
// the single-syscall path.
func TestBatchedMangleDupAndCorrupt(t *testing.T) {
	ea, eb := pipe(t)
	ea.SetBatch(8)
	ea.MangleTx = func(p *wire.Packet) params.Mangle {
		switch p.Seq {
		case 1:
			return params.Mangle{Duplicate: true}
		case 2:
			return params.Mangle{Corrupt: true, CorruptBit: 77}
		}
		return params.Mangle{}
	}
	for i := 0; i < 4; i++ {
		if err := ea.Send(data(uint32(i), "y")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ea.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	var order []uint32
	for i := 0; i < 4; i++ { // 0, 1, 1(dup), 3 — seq 2 dies on the checksum
		pkt, err := eb.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, pkt.Seq)
	}
	want := []uint32{0, 1, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", order, want)
		}
	}
	if _, err := eb.Recv(50 * time.Millisecond); !core.IsTimeout(err) {
		t.Fatalf("expected silence after the batch, got %v", err)
	}
}

// A full ring flushes itself: no explicit FlushBatch needed once batch
// packets are queued.
func TestBatchAutoFlushWhenFull(t *testing.T) {
	ea, eb := pipe(t)
	ea.SetBatch(3)
	for i := 0; i < 3; i++ {
		if err := ea.Send(data(uint32(i), "z")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := eb.Recv(2 * time.Second); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
}

// Control packets and FlagLast data flush the queue immediately — the
// reliable last packet of a window must never linger in the ring.
func TestBatchFlushesOnLastAndControl(t *testing.T) {
	ea, eb := pipe(t)
	ea.SetBatch(16)
	if err := ea.Send(data(0, "a")); err != nil {
		t.Fatal(err)
	}
	lastPkt := data(1, "b")
	lastPkt.Flags |= wire.FlagLast
	if err := ea.Send(lastPkt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eb.Recv(2 * time.Second); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}

	if err := ea.Send(data(2, "c")); err != nil { // queued
		t.Fatal(err)
	}
	if err := ea.Send(&wire.Packet{Type: wire.TypeAck, Trans: 1, Seq: 3}); err != nil {
		t.Fatal(err) // control: flushes the queued data ahead of itself
	}
	p1, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t1 := p1.Type // the packet is valid only until the next Recv
	p2, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != wire.TypeData || p2.Type != wire.TypeAck {
		t.Fatalf("order %v then %v; want DATA then ACK", t1, p2.Type)
	}
}

// MTU plumbing: oversized configs are rejected with ErrMTU up front, and a
// raised MTU accepts jumbo chunks end to end.
func TestMTUValidationAndJumbo(t *testing.T) {
	ea, eb := pipe(t)
	big := core.Config{
		TransferID: 1, Bytes: 8192, ChunkSize: 4096,
		Protocol: core.Blast, RetransTimeout: 100 * time.Millisecond,
		Payload: randomPayload(8192, 4),
	}
	if _, err := Push(ea, big); err == nil || !bytesContains(err.Error(), "MTU") {
		t.Fatalf("oversized chunk accepted: %v", err)
	}

	if err := ea.SetMTU(wire.HeaderSize); err == nil {
		t.Error("tiny MTU accepted")
	}
	if err := ea.SetMTU(MaxMTU + 1); err == nil {
		t.Error("huge MTU accepted")
	}
	if err := ea.SetMTU(9000); err != nil {
		t.Fatal(err)
	}
	if err := eb.SetMTU(9000); err != nil {
		t.Fatal(err)
	}
	if got := ea.MTU(); got != 9000 {
		t.Fatalf("MTU = %d", got)
	}
	ea.SetBatch(4) // rings re-sized to the jumbo MTU

	payload := randomPayload(16384, 9)
	cfg := core.Config{
		TransferID: 2, Bytes: len(payload), ChunkSize: 4096,
		Protocol: core.Blast, Strategy: core.GoBackN,
		RetransTimeout: 200 * time.Millisecond, MaxAttempts: 20,
		Linger: 100 * time.Millisecond, ReceiverIdle: 2 * time.Second,
		Payload: payload,
	}
	rcfg := cfg
	rcfg.Payload = nil
	type out struct {
		res core.RecvResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := core.RunReceiver(eb, rcfg)
		done <- out{r, err}
	}()
	if _, err := Push(ea, cfg); err != nil {
		t.Fatal(err)
	}
	ro := <-done
	if ro.err != nil {
		t.Fatal(ro.err)
	}
	if !bytes.Equal(ro.res.Data, payload) {
		t.Error("jumbo transfer corrupted")
	}
}

func bytesContains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// Deep reorder holds drain in O(n): a regression guard for the popReady
// index ring (the old slice-delete pop was quadratic in the ready-queue
// depth). Semantics only — the held packets must all surface, in hold
// order, when the blocking read times out.
func TestDeepHoldDrainOrder(t *testing.T) {
	ea, eb := pipe(t)
	const n = 200
	eb.MangleRx = func(p *wire.Packet) params.Mangle {
		return params.Mangle{Hold: 1000} // nothing ever overtakes
	}
	for i := 0; i < n; i++ {
		if err := ea.Send(data(uint32(i), "h")); err != nil {
			t.Fatal(err)
		}
	}
	// Give loopback delivery a moment, then read: the first blocking Recv
	// judges (and holds) every arrival, then times out and releases the
	// holds as late arrivals; later Recvs drain the ready queue.
	time.Sleep(50 * time.Millisecond)
	seen := 0
	for seen < n {
		pkt, err := eb.Recv(200 * time.Millisecond)
		if err != nil {
			t.Fatalf("after %d packets: %v", seen, err)
		}
		if int(pkt.Seq) != seen {
			t.Fatalf("hold order broken: got %d want %d", pkt.Seq, seen)
		}
		seen++
	}
}

// Pull through a batched serial server with a streaming source: no
// transfer-sized buffer on either side, checksum verified end to end.
func TestBatchedStreamingPull(t *testing.T) {
	const size = 256 * 1024
	srv, addr := newLoopbackServer(t)
	srv.Batch = 16
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
	}
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	e.SetBatch(16)

	want := core.SeededPayload(size, size, 1000)
	got := make([]byte, size)
	cfg := loopCfg(31, nil, core.Blast, core.GoBackN)
	cfg.Bytes = size
	cfg.Window = 64
	cfg.Sink = func(off int, b []byte) { copy(got[off:], b) }
	res, err := Pull(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != nil {
		t.Error("sink-mode pull assembled Data")
	}
	if !bytes.Equal(got, want) {
		t.Error("streamed pull corrupted")
	}
	if res.Checksum != wire.Checksum(want) {
		t.Errorf("incremental checksum %04x want %04x", res.Checksum, wire.Checksum(want))
	}
}
