//go:build linux

package udplan

import "syscall"

// reuseportSharding: Linux SO_REUSEPORT load-balances UDP across the
// sockets by 4-tuple hash, so each client flow lands on exactly one demux
// loop for its whole lifetime — the property the multi-queue server needs.
const reuseportSharding = true

// soReusePort is Linux's SO_REUSEPORT, which the stdlib syscall package
// predates (it is wrapped only in golang.org/x/sys).
const soReusePort = 0xf

// reuseportControl sets SO_REUSEPORT before bind.
func reuseportControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
