package udplan

import (
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/store"
	"blastlan/internal/wire"
)

// doneRecorder collects FileSink.OnDone invocations for assertions.
type doneRecorder struct {
	mu    sync.Mutex
	calls []doneCall
	ch    chan doneCall
}

type doneCall struct {
	path string
	res  core.RecvResult
	kept bool
}

func newDoneRecorder() *doneRecorder {
	return &doneRecorder{ch: make(chan doneCall, 8)}
}

func (d *doneRecorder) hook(path string, res core.RecvResult, kept bool) {
	c := doneCall{path, res, kept}
	d.mu.Lock()
	d.calls = append(d.calls, c)
	d.mu.Unlock()
	d.ch <- c
}

func (d *doneRecorder) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.calls)
}

// waitDone blocks for the next completion or fails the test.
func (d *doneRecorder) waitDone(t *testing.T, timeout time.Duration) doneCall {
	t.Helper()
	select {
	case c := <-d.ch:
		return c
	case <-time.After(timeout):
		t.Fatal("push completion callback never fired")
		panic("unreachable")
	}
}

func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// A client that vanishes mid-push must not leak daemon resources: the
// receiver idles out, the completion callback fires exactly once with
// Completed=false, and the partial transfer-NNNN.bin is removed. This is
// the regression test for the push-path resource leak (an aborted push
// used to leave the open file and its partial bytes behind).
func TestPushAbortDiscardsPartialFile(t *testing.T) {
	dir := t.TempDir()
	rec := newDoneRecorder()
	sink := &store.FileSink{Dir: dir, OnDone: rec.hook, Logf: t.Logf}

	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	srv.SinkStream = sink.SinkStream
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}

	// Announce a 64-chunk push with a tight retransmission interval (the
	// server derives its receiver-idle bound from it), then send only the
	// first three chunks — no FlagLast — and hang up.
	const chunk = 1024
	req := wire.Req{
		Bytes:    64 * chunk,
		Chunk:    chunk,
		Strategy: uint8(core.Selective),
		Protocol: uint8(core.Blast),
		Push:     true,
		Window:   64,
		TrMicros: 20_000, // 20ms: server waits 8*20ms+2s before giving up
	}
	const trans = 4242
	if err := e.Send(&wire.Packet{Type: wire.TypeReq, Trans: trans, Payload: wire.EncodeReq(req)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recv(2 * time.Second); err != nil {
		t.Fatalf("no go-ahead: %v", err)
	}
	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	for seq := 0; seq < 3; seq++ {
		if err := e.Send(&wire.Packet{Type: wire.TypeData, Trans: trans, Seq: uint32(seq), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the datagrams time to land before abandoning the transfer, so
	// the sink really has a partial file to discard.
	time.Sleep(100 * time.Millisecond)
	e.Close()

	c := rec.waitDone(t, 10*time.Second)
	if c.res.Completed {
		t.Error("aborted push reported Completed=true")
	}
	if c.kept {
		t.Errorf("aborted push kept file %s", c.path)
	}
	if c.res.Bytes == 0 {
		t.Error("no partial bytes recorded; the abort path was never exercised")
	}
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("partial file left behind: %v", names)
	}
	// Exactly once: no second invocation trails in.
	time.Sleep(200 * time.Millisecond)
	if n := rec.count(); n != 1 {
		t.Errorf("completion callback fired %d times, want 1", n)
	}
}

// Force-closing the server mid-push (shutdown with a session in flight)
// must run the same lifecycle: the hung-up session's receiver aborts, the
// completion callback fires exactly once with Completed=false, and the
// partial file is discarded.
func TestPushForceCloseDiscardsPartialFile(t *testing.T) {
	dir := t.TempDir()
	rec := newDoneRecorder()
	sink := &store.FileSink{Dir: dir, OnDone: rec.hook, Logf: t.Logf}

	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	firstChunk := make(chan struct{})
	var once sync.Once
	srv.SinkStream = func(r wire.Req) (core.ChunkSink, func(core.RecvResult), bool) {
		s, done, ok := sink.SinkStream(r)
		if !ok {
			return nil, nil, false
		}
		return func(off int, b []byte) {
			s(off, b)
			once.Do(func() { close(firstChunk) })
		}, done, true
	}
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run() }()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	// Pace the client so the server can be killed mid-transfer.
	e.SetPacketGap(2 * time.Millisecond)
	cfg := loopCfg(4243, randomPayload(256*1024, 99), core.Blast, core.Selective)
	cfg.MaxAttempts = 3
	pushErr := make(chan error, 1)
	go func() {
		_, err := Push(e, cfg)
		pushErr <- err
	}()

	select {
	case <-firstChunk:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received a chunk")
	}
	srv.Close()

	c := rec.waitDone(t, 10*time.Second)
	if c.res.Completed {
		t.Error("force-closed push reported Completed=true")
	}
	if c.kept {
		t.Errorf("force-closed push kept file %s", c.path)
	}
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("partial file left behind: %v", names)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run returned %v after close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after close")
	}
	if err := <-pushErr; err == nil {
		t.Log("client push completed despite server close (raced the last ack)")
	}
	time.Sleep(200 * time.Millisecond)
	if n := rec.count(); n != 1 {
		t.Errorf("completion callback fired %d times, want 1", n)
	}
}

// The push path mirrors the pull path's degenerate-REQ guard: Bytes==0 or
// Chunk==0 is rejected at admission with a log line, before any file is
// created. (A degenerate push REQ used to reach the engine's chunk
// arithmetic.)
func TestPushRejectsDegenerateReq(t *testing.T) {
	dir := t.TempDir()
	rec := newDoneRecorder()
	logged := make(chan string, 8)
	sink := &store.FileSink{Dir: dir, OnDone: rec.hook, Logf: func(format string, args ...any) {
		select {
		case logged <- format:
		default:
		}
	}}

	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	srv.SinkStream = sink.SinkStream
	go srv.Run()

	for _, req := range []wire.Req{
		{Bytes: 0, Chunk: 1024, Push: true, Window: 8, TrMicros: 20_000},
		{Bytes: 4096, Chunk: 0, Push: true, Window: 8, TrMicros: 20_000},
	} {
		e, err := Dial(addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		if err := e.Send(&wire.Packet{Type: wire.TypeReq, Trans: 4244, Payload: wire.EncodeReq(req)}); err != nil {
			t.Fatal(err)
		}
		// No go-ahead comes back for a rejected push.
		if pkt, err := e.Recv(300 * time.Millisecond); err == nil {
			t.Errorf("degenerate push %+v got go-ahead %v", req, pkt.Type)
		} else if !core.IsTimeout(err) && err != net.ErrClosed {
			t.Logf("recv: %v", err)
		}
		e.Close()
	}

	select {
	case <-logged:
	case <-time.After(2 * time.Second):
		t.Error("rejection was never logged")
	}
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("rejected push created files: %v", names)
	}
	if n := rec.count(); n != 0 {
		t.Errorf("completion callback fired %d times for rejected pushes", n)
	}
}
