package udplan

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// A drain racing an active striped pull: BeginDrain must let the admitted
// stripe sessions run to completion while refusing the REQ of a client that
// arrives after the drain began — with a BUSY reply, so the latecomer fails
// fast instead of burning its retry budget against a server that is going
// away.
func TestDrainRacesStripedPull(t *testing.T) {
	const total = 4 << 20
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 8
	srv.Batch = 8
	srv.RetryAfter = 20 * time.Millisecond
	// Throttle the source so the admitted stripes stay in flight for about a
	// second — the drain window the latecomer's refused REQs must land in.
	// Without it a loopback pull finishes in milliseconds and the drained
	// server is gone before the new client even dials.
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		src, ok := stripedSource(r)
		if !ok {
			return nil, false
		}
		return func(seq int, dst []byte) []byte {
			time.Sleep(time.Millisecond)
			return src(seq, dst)
		}, true
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Run() }()

	// Drain the moment the first stripe byte lands: the stripe sessions are
	// admitted and mid-flight, the next client is not.
	var once sync.Once
	draining := make(chan struct{})
	out := make([]byte, total)
	var mu sync.Mutex
	pullDone := make(chan error, 1)
	var res StripedResult
	go func() {
		var err error
		res, err = PullStriped(addr, logicalCfg(total), StripeOptions{
			Streams: 4,
			Batch:   8,
			Sink: func(off int, b []byte) {
				mu.Lock()
				copy(out[off:], b)
				mu.Unlock()
				once.Do(func() {
					srv.BeginDrain()
					close(draining)
				})
			},
		})
		pullDone <- err
	}()

	<-draining

	// A new client's REQ now meets the draining server. PullResume surfaces
	// the BUSY refusal once its (tiny) wait budget is spent.
	e, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cfg := logicalCfg(total)
	cfg.TransferID = 999
	cfg.MaxAttempts = 1
	_, rstats, rerr := core.PullResume(e, cfg, core.ResumeOptions{
		MaxBusyWaits: 2,
		Backoff:      20 * time.Millisecond,
	})
	if rerr == nil {
		t.Fatal("a draining server admitted a new client")
	}
	var busy *core.BusyError
	if !errors.As(rerr, &busy) {
		t.Fatalf("latecomer failed with %v, want a BUSY refusal", rerr)
	}
	if rstats.BusyWaits == 0 {
		t.Fatal("latecomer never observed a BUSY reply")
	}

	// The in-flight striped pull still completes, byte-identically.
	if err := <-pullDone; err != nil {
		t.Fatalf("in-flight striped pull failed under drain: %v", err)
	}
	want := core.SeededPayload(int64(total), total, 1000)
	mu.Lock()
	same := bytes.Equal(out, want)
	mu.Unlock()
	if !same {
		t.Fatal("striped payload differs from the seeded stream")
	}
	if res.Bytes != total {
		t.Fatalf("striped pull delivered %d of %d bytes", res.Bytes, total)
	}

	// And the drain completes: Run returns once the last stripe session
	// exits, with no sessions leaked.
	select {
	case err := <-srvDone:
		if err != nil {
			t.Fatalf("drained server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not finish draining")
	}
	if a := srv.Active(); a != 0 {
		t.Fatalf("%d sessions still active after drain", a)
	}
}
