//go:build linux && amd64

package udplan

// sendmmsg/recvmmsg syscall numbers for linux/amd64 (the stdlib syscall
// tables predate them).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
