package udplan

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// TestPullStripedPartialFailure pins the hardened partial-failure path over
// real sockets: the server refuses exactly one stripe's range, that stripe
// gives up, and PullStriped returns a wrapped error naming it — while the
// surviving stripes' deliveries still show up in the partial result.
func TestPullStripedPartialFailure(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer conn.Close()
	srv := NewServer(conn)
	srv.Concurrency = 8
	srv.Idle = 2 * time.Second
	const (
		bytes   = 64000
		chunk   = 1000
		streams = 4
	)
	plan := core.PlanStripes(bytes, chunk, streams)
	refusedOffset := uint32(plan[1].Offset / chunk)
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		if r.OffsetChunks == refusedOffset {
			return nil, false // stripe 1's range is refused outright
		}
		stream := int(r.StreamBytes())
		return core.OffsetSource(
			core.SeededSource(int64(stream), stream, int(r.Chunk)),
			int(r.OffsetChunks)), true
	}
	go srv.Run()

	cfg := core.Config{
		TransferID: 9,
		Bytes:      bytes,
		ChunkSize:  chunk,
		Protocol:   core.Blast,
		Strategy:   core.GoBackN,
		// A refused stripe retries its REQ MaxAttempts times, 4*Tr apart,
		// before giving up; keep that budget small so the failure is fast.
		RetransTimeout: 50 * time.Millisecond,
		MaxAttempts:    3,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   time.Second,
	}
	res, err := PullStriped(conn.LocalAddr().String(), cfg, StripeOptions{Streams: streams})
	if err == nil {
		t.Fatal("striped pull against a refusing server reported success")
	}
	if !errors.Is(err, core.ErrGiveUp) {
		t.Errorf("error %v does not wrap core.ErrGiveUp", err)
	}
	if !strings.Contains(err.Error(), "stripe 1 of 4") {
		t.Errorf("error %q does not name the refused stripe", err)
	}
	if res.Stripes[1].Err == nil {
		t.Error("refused stripe's outcome lost its error")
	}
	if res.Stripes[1].Recv.Bytes != 0 {
		t.Errorf("refused stripe delivered %d bytes", res.Stripes[1].Recv.Bytes)
	}
	// Fast stripes may have completed before the failure aborted the rest;
	// whatever did arrive must be accounted and bounded.
	if res.Bytes > bytes-plan[1].Bytes {
		t.Errorf("partial result reports %d bytes, more than the servable %d",
			res.Bytes, bytes-plan[1].Bytes)
	}
}
