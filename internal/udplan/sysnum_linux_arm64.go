//go:build linux && arm64

package udplan

// sendmmsg/recvmmsg syscall numbers for linux/arm64.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
