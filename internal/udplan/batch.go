package udplan

import (
	"encoding/binary"
	"net"
	"syscall"

	"blastlan/internal/wire"
)

// This file holds the platform-independent half of the batched datapath:
// the reusable frame rings that amortise one syscall across a whole blast
// window. The platform-specific sendmmsg/recvmmsg wrappers live in
// mmsg_linux.go (with a no-op fallback in mmsg_fallback.go); when they are
// unavailable the rings still form and flush as plain WriteTo loops, so
// behaviour is identical everywhere and only the syscall count differs.

// txBatch is a frame ring of pre-allocated MTU-sized slots. The sender
// encodes each outbound packet directly into the next slot
// (wire.EncodeInto — no allocation), and the ring flushes as one vectored
// write when full or on demand.
type txBatch struct {
	frames [][]byte // fixed slots, each cap = MTU
	lens   []int
	queued int
	// limit caps how many frames queue before an automatic flush; 0 (or
	// anything ≥ len(frames)) means the full ring. The adaptive
	// controller throttles batching through this instead of resizing the
	// ring, so mid-transfer adjustments allocate nothing.
	limit int
	flush func(frames [][]byte, lens []int, n int) error
}

// flushAt returns the effective queue depth that triggers a flush.
func (t *txBatch) flushAt() int {
	if t.limit > 0 && t.limit < len(t.frames) {
		return t.limit
	}
	return len(t.frames)
}

// setLimit adjusts the flush threshold; anything already queued beyond the
// new threshold goes on the wire immediately (order preserved).
func (t *txBatch) setLimit(n int) error {
	if n < 1 {
		n = 1
	}
	t.limit = n
	if t.queued >= t.flushAt() {
		return t.Flush()
	}
	return nil
}

// newTxBatch builds a ring of n MTU-sized slots over one backing array.
func newTxBatch(n, mtu int, flush func([][]byte, []int, int) error) *txBatch {
	backing := make([]byte, n*mtu)
	t := &txBatch{frames: make([][]byte, n), lens: make([]int, n), flush: flush}
	for i := range t.frames {
		t.frames[i] = backing[i*mtu : (i+1)*mtu]
	}
	return t
}

// slot returns the current free frame slot to encode into.
func (t *txBatch) slot() []byte { return t.frames[t.queued] }

// commit finalises the current slot with n encoded bytes; a ring at its
// flush threshold flushes immediately.
func (t *txBatch) commit(n int) error {
	t.lens[t.queued] = n
	t.queued++
	if t.queued >= t.flushAt() {
		return t.Flush()
	}
	return nil
}

// enqueueCopy queues a copy of an already-encoded frame (an injected
// duplicate, a matured reorder hold) behind whatever is queued.
func (t *txBatch) enqueueCopy(b []byte) error {
	if len(b) > len(t.slot()) {
		// Defensive: cannot happen for frames this endpoint encoded, since
		// slots are MTU-sized like the encode path.
		return t.Flush()
	}
	n := copy(t.slot(), b)
	return t.commit(n)
}

// Flush writes every queued frame, in order, and empties the ring.
func (t *txBatch) Flush() error {
	if t.queued == 0 {
		return nil
	}
	n := t.queued
	t.queued = 0
	return t.flush(t.frames, t.lens, n)
}

// GRO ring geometry. A GRO-enabled socket can deliver a coalesced
// superbuffer up to the full UDP payload space per message, so the ring
// trades message count for message size: a few superbuffer-sized slots hold
// far more frames than an MTU-sized ring of any width.
const (
	groBufBytes  = 65535 // one coalesced superbuffer can span the whole UDP payload space
	groCtrlBytes = 64    // cmsg space per message: one gso_size cmsg plus headroom
	groRingMsgs  = 4     // messages per fill; each can carry ~a window of frames
)

// rxBatch is the receive ring recvmmsg drains into: raw datagrams plus the
// raw source sockaddr of each, consumed FIFO by the endpoint's Recv loop.
// A GRO ring additionally carries per-message control buffers and segment
// sizes, and pop splits coalesced superbuffers back into frames.
type rxBatch struct {
	bufs        [][]byte
	names       [][]byte
	ctrls       [][]byte // GRO mode only: per-message cmsg space (gso_size)
	lens        []int
	segs        []int // GRO mode only: per-message gso_size (0 = one plain datagram)
	count, next int
	segOff      int // byte cursor inside the current coalesced message
	recv        mmsgReceiver
}

func newRxBatch(n, mtu int, gro bool) *rxBatch {
	bufSize := mtu
	if gro {
		if n > groRingMsgs {
			n = groRingMsgs
		}
		bufSize = groBufBytes
	}
	backing := make([]byte, n*bufSize)
	names := make([]byte, n*rawNameLen)
	r := &rxBatch{bufs: make([][]byte, n), names: make([][]byte, n), lens: make([]int, n)}
	for i := 0; i < n; i++ {
		r.bufs[i] = backing[i*bufSize : (i+1)*bufSize]
		r.names[i] = names[i*rawNameLen : (i+1)*rawNameLen]
	}
	if gro {
		ctrls := make([]byte, n*groCtrlBytes)
		r.ctrls = make([][]byte, n)
		r.segs = make([]int, n)
		for i := 0; i < n; i++ {
			r.ctrls[i] = ctrls[i*groCtrlBytes : (i+1)*groCtrlBytes]
		}
	}
	return r
}

// pending reports whether drained datagrams are waiting.
func (r *rxBatch) pending() bool { return r.next < r.count }

// pop returns the next drained datagram and its raw source sockaddr. Both
// slices are valid until the ring's next drain (which only happens after
// every pending datagram has been popped). A message delivered coalesced
// (gso_size attached) pops one segment at a time: gso_size bytes each, the
// final one possibly shorter — the inverse of the GSO transmit packing.
func (r *rxBatch) pop() (data, name []byte) {
	i := r.next
	if r.segs != nil && r.segs[i] > 0 {
		end := r.segOff + r.segs[i]
		if end > r.lens[i] {
			end = r.lens[i]
		}
		data, name = r.bufs[i][r.segOff:end], r.names[i]
		r.segOff = end
		if r.segOff >= r.lens[i] {
			r.next++
			r.segOff = 0
		}
		return data, name
	}
	r.next++
	return r.bufs[i][:r.lens[i]], r.names[i]
}

// drain performs one non-blocking recvmmsg, filling the ring with whatever
// the kernel already queued. A no-op when the platform lacks recvmmsg.
func (r *rxBatch) drain(raw syscall.RawConn) {
	if raw == nil {
		return
	}
	if n, ok := recvBatch(raw, r); ok {
		r.count, r.next, r.segOff = n, 0, 0
	}
}

// flushFramesTiered writes frames[0:n] to peer through the highest rung of
// the datapath ladder the writer's tier allows, degrading per flush when a
// rung cannot take the frames (an unroutable peer, a platform stub): GSO
// superbuffer → sendmmsg → WriteTo loop. The single implementation behind
// every batched writer (Endpoint, server sessions).
func flushFramesTiered(tier Tier, raw syscall.RawConn, gs *gsoSender, ms *mmsgSender, conn net.PacketConn, peer net.Addr, frames [][]byte, lens []int, n int) error {
	if tier >= TierGSO {
		if handled, err := sendGSO(raw, gs, peer, frames, lens, n); handled {
			return err
		}
	}
	if tier >= TierMmsg {
		if handled, err := sendBatch(raw, ms, peer, frames, lens, n); handled {
			return err
		}
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if _, err := conn.WriteTo(frames[i][:lens[i]], peer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushFramesTo is flushFramesTiered at the sendmmsg rung — the pre-GSO
// entry point, kept for writers that never probe a tier.
func flushFramesTo(raw syscall.RawConn, ms *mmsgSender, conn net.PacketConn, peer net.Addr, frames [][]byte, lens []int, n int) error {
	if handled, err := sendBatch(raw, ms, peer, frames, lens, n); handled {
		return err
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if _, err := conn.WriteTo(frames[i][:lens[i]], peer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushesImmediately reports whether a packet must not linger in the batch
// ring: control traffic and the reliable last packet of a window keep
// their single-packet latency.
func flushesImmediately(p *wire.Packet) bool {
	return p.Type != wire.TypeData || p.Flags&wire.FlagLast != 0
}

// rawConnOf extracts the raw connection for batched syscalls, when the
// socket supports it.
func rawConnOf(conn net.PacketConn) syscall.RawConn {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	return raw
}

// addrKeyLen is the canonical address key size: a 16-byte IP (IPv4 mapped
// into IPv6 form) plus a big-endian port.
const addrKeyLen = 18

// addrKey returns the canonical comparison key for a peer address. Non-UDP
// addresses fall back to their string form.
func addrKey(a net.Addr) string {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return a.String()
	}
	var k [addrKeyLen]byte
	keyFromUDP(&k, ua)
	return string(k[:])
}

// keyFromUDP writes a UDP address's canonical key into dst without
// allocating.
func keyFromUDP(dst *[addrKeyLen]byte, ua *net.UDPAddr) {
	ip := ua.IP.To16()
	if ip == nil {
		*dst = [addrKeyLen]byte{}
		return
	}
	copy(dst[:16], ip)
	binary.BigEndian.PutUint16(dst[16:], uint16(ua.Port))
}
