package udplan

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/session"
)

// A pre-dialed endpoint handed to the fan-out via StripeOptions.Endpoint —
// the one a preceding stat ran on — must carry stripe 0's session instead
// of being thrown away, and the fan-out must own (and close) it afterwards.
func TestStripedPullReusesStatEndpoint(t *testing.T) {
	const total = 256 << 10
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 8
	srv.Source = stripedSource
	var mu sync.Mutex
	peers := make(map[string]bool)
	srv.Done = func(ts session.TransferStats) {
		mu.Lock()
		peers[ts.Peer.String()] = true
		mu.Unlock()
	}
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	local := e.conn.LocalAddr().String()
	cfg := logicalCfg(total)
	out := make([]byte, total)
	res, err := PullStriped(addr, cfg, StripeOptions{
		Streams:  4,
		Endpoint: e,
		Sink:     func(off int, b []byte) { copy(out[off:], b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := core.SeededPayload(int64(total), total, cfg.ChunkSize)
	if !bytes.Equal(out, want) {
		t.Fatal("striped pull over a reused endpoint reassembled a corrupt stream")
	}
	if res.Bytes != total {
		t.Fatalf("pulled %d of %d bytes", res.Bytes, total)
	}

	mu.Lock()
	reused := peers[local]
	mu.Unlock()
	if !reused {
		t.Errorf("pre-dialed endpoint %s never served a stripe session (peers: %v)", local, peers)
	}
	// Ownership transferred: the fan-out closed the endpoint with its own.
	if err := e.conn.SetReadDeadline(time.Time{}); err == nil {
		t.Error("pre-dialed endpoint still open after the fan-out returned")
	}
}
