package udplan

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/store"
	"blastlan/internal/wire"
)

// copyServerA starts a daemon serving real files from dir that answers
// third-party copy asks by pushing the named object to the target itself —
// the same hook blastd installs.
func copyServerA(t *testing.T, dir string) string {
	t.Helper()
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 4
	st := store.Open(dir, store.Options{})
	t.Cleanup(st.Close)
	srv.SourceEnv = st.SourceReq
	srv.Stat = st.StatReq
	srv.Copy = func(r wire.Req, env core.Env, progress func(int64)) (int64, error) {
		size, ok := st.StatReq(r)
		if !ok {
			return 0, fmt.Errorf("no such object %q", r.Name)
		}
		const chunk = 1000
		src, err := st.Source(r.Name, chunk, 0, nil)
		if err != nil {
			return 0, err
		}
		e, err := Dial(r.Target)
		if err != nil {
			return 0, fmt.Errorf("dial %s: %v", r.Target, err)
		}
		defer e.Close()
		var sent int64
		cfg := core.Config{
			TransferID: 1,
			Bytes:      int(size),
			ChunkSize:  chunk,
			Protocol:   core.Blast,
			Strategy:   core.GoBackN,
			Window:     64,
			Source: func(seq int, dst []byte) []byte {
				b := src(seq, dst)
				if hi := int64(seq)*chunk + int64(len(b)); hi > sent {
					sent = hi
					progress(sent)
				}
				return b
			},
			RetransTimeout: 100 * time.Millisecond,
			MaxAttempts:    50,
			Linger:         200 * time.Millisecond,
		}
		if _, err := Push(e, cfg); err != nil {
			return 0, fmt.Errorf("push to %s: %v", r.Target, err)
		}
		return size, nil
	}
	go srv.Run()
	return addr
}

// TestThirdPartyCopy drives the full TPC triangle over UDP loopback: the
// orchestrator asks daemon A to push a stored file to daemon B, watches the
// relayed progress, and the bytes land on B byte-identical — without ever
// passing through the orchestrator's socket.
func TestThirdPartyCopy(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	payload := make([]byte, 3<<20)
	rand.New(rand.NewSource(11)).Read(payload)
	if err := os.WriteFile(filepath.Join(srcDir, "data.bin"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	addrA := copyServerA(t, srcDir)

	// Daemon B: an ordinary push receiver streaming to files.
	srvB, addrB := newLoopbackServer(t)
	srvB.Concurrency = 4
	var landed struct {
		sync.Mutex
		path string
		res  core.RecvResult
	}
	fsink := &store.FileSink{Dir: dstDir, MaxBytes: 1 << 30, OnDone: func(path string, res core.RecvResult, kept bool) {
		landed.Lock()
		defer landed.Unlock()
		if kept {
			landed.path, landed.res = path, res
		}
	}}
	srvB.SinkStream = fsink.SinkStream
	go srvB.Run()

	e, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cfg := core.Config{
		TransferID:     42,
		RetransTimeout: 100 * time.Millisecond,
		MaxAttempts:    20,
		ReceiverIdle:   10 * time.Second,
	}
	var progress []int64
	n, err := core.Copy(e, cfg, "data.bin", addrB, func(b int64) {
		progress = append(progress, b)
	})
	if err != nil {
		t.Fatalf("copy: %v", err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("copy reported %d bytes, want %d", n, len(payload))
	}
	// Progress was relayed and monotone: the accepting 0 plus at least one
	// quantum for a 3 MiB object.
	if len(progress) < 2 {
		t.Fatalf("saw %d progress reports, want the accept plus quanta: %v", len(progress), progress)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress went backwards: %v", progress)
		}
	}

	// B's completion callback fires once its session winds down (it lingers
	// re-acking stragglers after the last chunk); poll briefly.
	var path string
	var res core.RecvResult
	deadline := time.Now().Add(5 * time.Second)
	for {
		landed.Lock()
		path, res = landed.path, landed.res
		landed.Unlock()
		if path != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if path == "" {
		t.Fatal("no completed push landed on daemon B")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("B received %d bytes differing from the source object", len(got))
	}
	if res.Checksum != core.TransferChecksum(payload) {
		t.Errorf("B's checksum %04x, want %04x", res.Checksum, core.TransferChecksum(payload))
	}
}

// TestThirdPartyCopyMissingObject pins the failure relay: asking A to copy
// a name it cannot resolve surfaces as a RemoteCopyError carrying A's
// explanation, not a timeout.
func TestThirdPartyCopyMissingObject(t *testing.T) {
	addrA := copyServerA(t, t.TempDir())
	e, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cfg := core.Config{
		TransferID:     43,
		RetransTimeout: 50 * time.Millisecond,
		MaxAttempts:    10,
	}
	_, err = core.Copy(e, cfg, "no-such.bin", "127.0.0.1:1", nil)
	var rce *core.RemoteCopyError
	if !errors.As(err, &rce) {
		t.Fatalf("err = %v, want a RemoteCopyError", err)
	}
	if rce.Msg == "" {
		t.Error("failure NAK carried no explanation")
	}
}
