package udplan

import (
	"sync"
	"time"
)

// linePacer models a serializing link of a fixed byte rate, shared by every
// session on one socket. Loopback has no NIC: a single-socket daemon serving
// 8 clients never pays the serialization that makes one-to-many distribution
// expensive on real hardware, so topology comparisons (the fan-out tree vs N
// independent pulls) degenerate into a CPU benchmark. Charging every egress
// byte against one busy-until horizon restores the physics: the socket
// transmits at most rate bytes/s no matter how many sessions share it, and
// sessions contend for the link exactly as their frames interleave.
//
// The model is a virtual transmission clock, not a token bucket: each write
// of n bytes extends the link-busy horizon by n/rate, and the writer sleeps
// until the horizon minus a small burst allowance (lineBurst bytes' worth),
// which amortizes sleeps into >=~1ms quanta so actuation cost stays far
// below the rates being modeled.
type linePacer struct {
	mu    sync.Mutex
	rate  int64 // bytes per second
	burst time.Duration
	busy  time.Time // link is transmitting until this instant
}

// lineBurst is the in-flight allowance: a writer may run this many bytes
// ahead of the modeled link before it sleeps. 64 KiB at 62.5 MB/s is ~1ms —
// coarse enough for the sleep timer, small against any bench object.
const lineBurst = 64 << 10

func newLinePacer(rate int) *linePacer {
	if rate <= 0 {
		return nil
	}
	lp := &linePacer{rate: int64(rate)}
	lp.burst = lp.cost(lineBurst)
	return lp
}

// cost is the modeled transmission time of n bytes.
func (lp *linePacer) cost(n int) time.Duration {
	return time.Duration(int64(n) * int64(time.Second) / lp.rate)
}

// wait charges n egress bytes against the shared link and blocks until the
// link has capacity for them (within the burst allowance). Nil-safe: an
// unlimited socket charges nothing.
func (lp *linePacer) wait(n int) {
	if lp == nil || n <= 0 {
		return
	}
	lp.mu.Lock()
	now := time.Now()
	if lp.busy.Before(now) {
		lp.busy = now
	}
	sleep := lp.busy.Sub(now) - lp.burst
	lp.busy = lp.busy.Add(lp.cost(n))
	lp.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}
