//go:build linux && (amd64 || arm64)

package udplan

import (
	"bytes"
	"net"
	"syscall"
	"testing"
	"time"
	"unsafe"
)

// sendGSO's run splitting must reproduce the exact datagram sequence the
// frame ring holds, whatever the size mix: equal runs ride one superbuffer,
// a shorter frame may only close a run, and a larger one starts a new run.
// The receiver here has no GRO, so the kernel segments every superbuffer
// back into individual datagrams — what arrives is exactly what a plain
// WriteTo loop would have sent.
func TestSendGSORunSplitting(t *testing.T) {
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer tx.Close()
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer rx.Close()
	raw := rawConnOf(tx)
	if !probeGSO(raw) {
		t.Skip("UDP_SEGMENT unsupported on this kernel")
	}

	// equal run | shorter closes it | new equal run | single | trailing short
	sizes := []int{1000, 1000, 1000, 400, 700, 700, 1200, 300}
	frames := make([][]byte, len(sizes))
	lens := make([]int, len(sizes))
	for i, n := range sizes {
		frames[i] = bytes.Repeat([]byte{byte('a' + i)}, n)
		lens[i] = n
	}
	var gs gsoSender
	handled, err := sendGSO(raw, &gs, rx.LocalAddr(), frames, lens, len(frames))
	if !handled {
		t.Fatal("sendGSO fell back with a UDP peer on a probed socket")
	}
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	rx.(*net.UDPConn).SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := range frames {
		n, _, err := rx.ReadFrom(buf)
		if err != nil {
			t.Fatalf("datagram %d never arrived: %v", i, err)
		}
		if n != lens[i] || !bytes.Equal(buf[:n], frames[i]) {
			t.Fatalf("datagram %d: got %d bytes (first %q), want %d of %q", i, n, buf[0], lens[i], frames[i][0])
		}
	}
}

// A GRO-coalesced receive must split back into the original frames: the
// transmit side sends one GSO superbuffer, fillBatch drains it with its
// gso_size cmsg, and pop returns segment-sized frames with the final
// shorter segment intact.
func TestGRODeliverySplitsSegments(t *testing.T) {
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer tx.Close()
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer rx.Close()
	txRaw, rxRaw := rawConnOf(tx), rawConnOf(rx)
	if !probeGSO(txRaw) {
		t.Skip("UDP_SEGMENT unsupported on this kernel")
	}
	if !setGRO(rxRaw, true) {
		t.Skip("UDP_GRO unsupported on this kernel")
	}

	sizes := []int{1024, 1024, 1024, 512} // equal segments + shorter tail
	frames := make([][]byte, len(sizes))
	lens := make([]int, len(sizes))
	for i, n := range sizes {
		frames[i] = bytes.Repeat([]byte{byte('A' + i)}, n)
		lens[i] = n
	}
	var gs gsoSender
	if handled, err := sendGSO(txRaw, &gs, rx.LocalAddr(), frames, lens, len(frames)); !handled || err != nil {
		t.Fatalf("sendGSO: handled=%v err=%v", handled, err)
	}

	ring := newRxBatch(4, MaxDatagram, true)
	rx.(*net.UDPConn).SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := range frames {
		for !ring.pending() {
			if err := fillBatch(rxRaw, ring); err != nil {
				t.Fatalf("frame %d: fillBatch: %v", i, err)
			}
		}
		data, name := ring.pop()
		if !bytes.Equal(data, frames[i]) {
			t.Fatalf("frame %d: got %d bytes, want %d of %q", i, len(data), lens[i], frames[i][0])
		}
		if ua := rawToUDPAddr(name); ua == nil || ua.Port != tx.LocalAddr().(*net.UDPAddr).Port {
			t.Fatalf("frame %d: wrong source %v", i, ua)
		}
	}
}

// parseGROSize must find the gso_size cmsg wherever it sits in the control
// buffer and tolerate both the kernel's int and a two-byte encoding.
func TestParseGROSize(t *testing.T) {
	mk := func(level, typ int32, data []byte) []byte {
		buf := make([]byte, syscall.CmsgSpace(len(data)))
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[0]))
		h.Level = level
		h.Type = typ
		h.SetLen(syscall.CmsgLen(len(data)))
		copy(buf[syscall.CmsgLen(0):], data)
		return buf
	}
	i32 := func(v int32) []byte {
		b := make([]byte, 4)
		*(*int32)(unsafe.Pointer(&b[0])) = v
		return b
	}
	if got := parseGROSize(mk(solUDP, udpGRO, i32(1472))); got != 1472 {
		t.Errorf("int32 cmsg: got %d", got)
	}
	u16 := make([]byte, 2)
	*(*uint16)(unsafe.Pointer(&u16[0])) = 999
	if got := parseGROSize(mk(solUDP, udpGRO, u16)); got != 999 {
		t.Errorf("uint16 cmsg: got %d", got)
	}
	// gso_size behind an unrelated cmsg
	other := mk(int32(syscall.SOL_SOCKET), int32(syscall.SO_TIMESTAMP), i32(0))
	if got := parseGROSize(append(other, mk(solUDP, udpGRO, i32(555))...)); got != 555 {
		t.Errorf("second cmsg: got %d", got)
	}
	if got := parseGROSize(nil); got != 0 {
		t.Errorf("empty control: got %d", got)
	}
	if got := parseGROSize(mk(int32(syscall.SOL_SOCKET), int32(syscall.SO_TIMESTAMP), i32(42))); got != 0 {
		t.Errorf("foreign cmsg only: got %d", got)
	}
}
