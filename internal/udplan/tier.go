package udplan

import (
	"fmt"
	"os"
	"syscall"
)

// Tier identifies one rung of the batched-datapath degradation ladder. The
// endpoint (and the sharded server's per-session writers) pick the highest
// tier the socket, kernel and platform support at configuration time, and
// every rung degrades to the one below it at runtime when a particular
// flush cannot take the fast path (an unresolvable peer address, say) — so
// the ladder is a latency/syscall optimisation, never a correctness
// requirement:
//
//	TierGSO     one sendmsg per flush: the whole frame ring rides a single
//	            UDP_SEGMENT superbuffer through one kernel traversal, and
//	            (on the receive side) UDP_GRO delivers coalesced
//	            superbuffers split back into frames by the gso_size cmsg.
//	            Linux ≥ 4.18 (≥ 5.0 for GRO), probed at socket setup.
//	TierMmsg    one sendmmsg per flush, one opportunistic recvmmsg drain
//	            per blocking receive. Linux.
//	TierWriteTo portable WriteTo/ReadFrom loops: the rings still form and
//	            flush, only the syscall count differs. Everywhere.
//
// The zero value means "auto": pick the best supported tier.
type Tier uint8

// Datapath tiers, best last. TierAuto (the zero value) is not a tier but a
// request to probe for the best one.
const (
	TierAuto    Tier = 0
	TierWriteTo Tier = 1
	TierMmsg    Tier = 2
	TierGSO     Tier = 3
)

// String returns the tier's flag-friendly name.
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierWriteTo:
		return "writeto"
	case TierMmsg:
		return "mmsg"
	case TierGSO:
		return "gso"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// ParseTier parses a tier name as accepted by the -tier flags of blastd,
// blastcp and lanbench ("gso", "mmsg", "writeto", "auto").
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "auto":
		return TierAuto, nil
	case "writeto":
		return TierWriteTo, nil
	case "mmsg":
		return TierMmsg, nil
	case "gso":
		return TierGSO, nil
	}
	return TierAuto, fmt.Errorf("udplan: unknown tier %q (want gso, mmsg, writeto or auto)", s)
}

// gsoSegLimit mirrors the kernel's UDP_MAX_SEGMENTS bound on superbuffer
// segments. It lives here (not the Linux-only GSO files) so flush-unit
// geometry compiles on every platform; gso_linux.go pins its maxGSOSegs to
// this value with a compile-time assertion.
const gsoSegLimit = 64

// flushUnitOf returns how many frames one flush syscall puts on the wire as
// a single unit: a superbuffer's segment capacity at TierGSO (bounded by
// the ring size), 1 everywhere else — sendmmsg and the WriteTo loop
// transmit each frame as its own datagram unit. This is what Endpoint and
// sessionEnv report through core.BatchGeometry, so the controlled sender
// quantizes batch actuation to whole superbuffers at the GSO tier.
func flushUnitOf(tier Tier, ring int) int {
	if tier >= TierGSO && ring > 1 {
		if ring < gsoSegLimit {
			return ring
		}
		return gsoSegLimit
	}
	return 1
}

// TierEnv is the environment knob capping the datapath tier for a whole
// process, so CI can exercise every rung of the GSO→mmsg→WriteTo chain on a
// kernel where the best tier works (see the forced-fallback tests).
const TierEnv = "BLASTLAN_TIER"

// tierCapFromEnv returns the process-wide tier cap, TierAuto when unset or
// unparseable (a bad value must not silently slow a production daemon; the
// flags are the supported interface, the env var is a test override).
func tierCapFromEnv() Tier {
	v := os.Getenv(TierEnv)
	if v == "" {
		return TierAuto
	}
	t, err := ParseTier(v)
	if err != nil {
		return TierAuto
	}
	return t
}

// capTier applies an explicit cap to a probed tier; TierAuto caps nothing.
func capTier(t, cap Tier) Tier {
	if cap != TierAuto && t > cap {
		return cap
	}
	return t
}

// pickTxTier probes the best transmit tier a socket supports at the given
// batch size, honouring the writer's configured cap and the process-wide
// BLASTLAN_TIER override. Batch ≤ 1 always means the plain path: the tiers
// only amortise multi-frame flushes.
func pickTxTier(raw syscall.RawConn, batch int, max Tier) Tier {
	limit := capTier(capTier(TierGSO, max), tierCapFromEnv())
	if batch <= 1 || raw == nil {
		return TierWriteTo
	}
	t := TierWriteTo
	if mmsgSupported {
		t = TierMmsg
		if gsoSupported && limit >= TierGSO && probeGSO(raw) {
			t = TierGSO
		}
	}
	return capTier(t, limit)
}
