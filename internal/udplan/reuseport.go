package udplan

import (
	"context"
	"fmt"
	"net"
)

// ListenReuseport opens n UDP sockets all bound to the same address with
// SO_REUSEPORT — the multi-queue server substrate. The kernel hashes each
// client flow's 4-tuple to exactly one of the sockets, so NewMultiServer
// can run n independent demux loops with no shared receive path: once the
// per-packet cost is amortised (sendmmsg, GSO), the single recvmmsg demux
// loop is the next bottleneck, and this removes it. With an ephemeral port
// request (":0") the first socket picks the port and the siblings join it.
//
// n <= 1 opens one plain socket. On platforms without SO_REUSEPORT
// load-balancing semantics (Windows; macOS accepts the option but steers
// all traffic to one socket) n > 1 returns an error rather than a server
// that silently serves on one queue.
func ListenReuseport(network, addr string, n int) ([]net.PacketConn, error) {
	if n <= 1 {
		conn, err := net.ListenPacket(network, addr)
		if err != nil {
			return nil, err
		}
		return []net.PacketConn{conn}, nil
	}
	if !reuseportSharding {
		return nil, fmt.Errorf("udplan: SO_REUSEPORT multi-queue (%d sockets) unsupported on this platform", n)
	}
	lc := net.ListenConfig{Control: reuseportControl}
	conns := make([]net.PacketConn, 0, n)
	for i := 0; i < n; i++ {
		conn, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("udplan: reuseport socket %d/%d: %w", i+1, n, err)
		}
		if i == 0 {
			addr = conn.LocalAddr().String() // pin an ephemeral port for the siblings
		}
		conns = append(conns, conn)
	}
	return conns, nil
}
