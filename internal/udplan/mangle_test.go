package udplan

import (
	"bytes"
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// pipe builds two connected endpoints on loopback sockets.
func pipe(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback available: %v", err)
	}
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Skipf("no UDP loopback available: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	ea := NewEndpoint(a, b.LocalAddr())
	eb := NewEndpoint(b, a.LocalAddr())
	return ea, eb
}

func data(seq uint32, payload string) *wire.Packet {
	return &wire.Packet{Type: wire.TypeData, Trans: 1, Seq: seq, Total: 8,
		Payload: []byte(payload)}
}

// A Tx hold of depth 2 must deliver the held datagram after two later writes
// have overtaken it.
func TestMangleTxReorder(t *testing.T) {
	ea, eb := pipe(t)
	ea.MangleTx = func(p *wire.Packet) params.Mangle {
		if p.Seq == 0 {
			return params.Mangle{Hold: 2}
		}
		return params.Mangle{}
	}
	for i := 0; i < 4; i++ {
		if err := ea.Send(data(uint32(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	var order []uint32
	for i := 0; i < 4; i++ {
		pkt, err := eb.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, pkt.Seq)
	}
	want := []uint32{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", order, want)
		}
	}
}

// A held Tx datagram must be flushed when the sender turns to listen, not
// lost.
func TestMangleTxHoldFlushesOnRecv(t *testing.T) {
	ea, eb := pipe(t)
	ea.MangleTx = func(p *wire.Packet) params.Mangle { return params.Mangle{Hold: 10} }
	if err := ea.Send(data(0, "held")); err != nil {
		t.Fatal(err)
	}
	// Nothing overtakes; the sender turning to listen drains the queue.
	if _, err := ea.Recv(10 * time.Millisecond); !core.IsTimeout(err) {
		t.Fatalf("recv: %v", err)
	}
	pkt, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Seq != 0 || string(pkt.Payload) != "held" {
		t.Errorf("got %v", pkt)
	}
}

// Rx holds reorder on the receive side; a read timeout releases pending
// holds as late arrivals instead of a deadline.
func TestMangleRxReorderAndTimeoutFlush(t *testing.T) {
	ea, eb := pipe(t)
	eb.MangleRx = func(p *wire.Packet) params.Mangle {
		if p.Seq == 0 {
			return params.Mangle{Hold: 1}
		}
		return params.Mangle{}
	}
	if err := ea.Send(data(0, "a")); err != nil {
		t.Fatal(err)
	}
	if err := ea.Send(data(1, "b")); err != nil {
		t.Fatal(err)
	}
	p1, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Seq != 1 || p2.Seq != 0 {
		t.Errorf("order = %d,%d, want 1,0", p1.Seq, p2.Seq)
	}

	// A hold that nothing overtakes surfaces on read timeout.
	if err := ea.Send(data(2, "late")); err != nil {
		t.Fatal(err)
	}
	eb.MangleRx = func(p *wire.Packet) params.Mangle { return params.Mangle{Hold: 5} }
	pkt, err := eb.Recv(300 * time.Millisecond)
	if err != nil {
		t.Fatalf("held packet lost to the deadline: %v", err)
	}
	if pkt.Seq != 2 {
		t.Errorf("got seq %d, want 2", pkt.Seq)
	}
}

// Tx corruption mangles the real datagram: the peer's checksum rejects it,
// so it behaves as a loss and never surfaces.
func TestMangleCorruptionRejectedByPeer(t *testing.T) {
	ea, eb := pipe(t)
	ea.MangleTx = func(p *wire.Packet) params.Mangle {
		if p.Seq == 0 {
			return params.Mangle{Corrupt: true, CorruptBit: 77}
		}
		return params.Mangle{}
	}
	if err := ea.Send(data(0, "doomed")); err != nil {
		t.Fatal(err)
	}
	if err := ea.Send(data(1, "fine")); err != nil {
		t.Fatal(err)
	}
	pkt, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Seq != 1 {
		t.Errorf("corrupted packet survived: got seq %d", pkt.Seq)
	}
	// Rx-side corruption: judged after decode, re-decoded after the flip.
	eb.MangleRx = func(p *wire.Packet) params.Mangle {
		if p.Seq == 2 {
			return params.Mangle{Corrupt: true, CorruptBit: 3}
		}
		return params.Mangle{}
	}
	if err := ea.Send(data(2, "doomed too")); err != nil {
		t.Fatal(err)
	}
	if err := ea.Send(data(3, "fine too")); err != nil {
		t.Fatal(err)
	}
	pkt, err = eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Seq != 3 {
		t.Errorf("rx-corrupted packet survived: got seq %d", pkt.Seq)
	}
}

// Duplication delivers the datagram twice on both sides.
func TestMangleDuplicate(t *testing.T) {
	ea, eb := pipe(t)
	ea.MangleTx = func(p *wire.Packet) params.Mangle { return params.Mangle{Duplicate: true} }
	if err := ea.Send(data(5, "twice")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		pkt, err := eb.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Seq != 5 || string(pkt.Payload) != "twice" {
			t.Errorf("copy %d: %v", i, pkt)
		}
	}
	ea.MangleTx = nil
	eb.MangleRx = func(p *wire.Packet) params.Mangle { return params.Mangle{Duplicate: true} }
	if err := ea.Send(data(6, "again")); err != nil {
		t.Fatal(err)
	}
	a, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 6 || b.Seq != 6 {
		t.Errorf("rx duplicate: %v %v", a, b)
	}
	if &a.Payload[0] == &b.Payload[0] {
		t.Error("rx duplicate aliases the original")
	}
}

// A full transfer with a seeded adversary on the client endpoint (both
// directions) must complete with intact payload — the udplan half of the
// cross-substrate acceptance scenario.
func TestPushUnderSeededAdversary(t *testing.T) {
	adv := params.Adversary{
		Loss:          params.LossModel{PNet: 0.02},
		ReorderProb:   0.05,
		ReorderDepth:  2,
		DuplicateProb: 0.03,
		CorruptProb:   0.02,
		JitterMax:     200 * time.Microsecond,
	}
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		payload := randomPayload(16*1024, int64(s)+700)
		srv, addr := newLoopbackServer(t)
		got := make(chan []byte, 1)
		srv.Sink = func(r wire.Req, data []byte) { got <- data }
		go srv.Run()

		e, err := Dial(addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		if err := e.SetAdversary(adv, int64(s)+1); err != nil {
			t.Fatal(err)
		}
		if _, err := Push(e, loopCfg(uint32(s)+400, payload, core.Blast, s)); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		select {
		case data := <-got:
			if !bytes.Equal(data, payload) {
				t.Fatalf("%v: corrupted under adversary", s)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%v: timed out", s)
		}
		e.Close()
	}
}
