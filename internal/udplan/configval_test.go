package udplan

import (
	"errors"
	"testing"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// Error-path coverage for the endpoint configuration surface: exact ErrMTU
// boundaries, degenerate batch sizes, and jumbo chunks beyond the codec's
// hard payload bound. The happy paths are covered by the jumbo/batch
// transfer tests; these pin the rejections.

func TestValidateConfigMTUBoundaries(t *testing.T) {
	ea, _ := pipe(t)
	// Default MTU 2048: a chunk of exactly MTU-HeaderSize fits...
	fits := core.Config{Bytes: 10000, ChunkSize: MaxDatagram - wire.HeaderSize}
	if err := ea.ValidateConfig(fits); err != nil {
		t.Errorf("chunk exactly filling the MTU rejected: %v", err)
	}
	// ...and one byte more does not, with errors.Is-able ErrMTU.
	over := fits
	over.ChunkSize++
	err := ea.ValidateConfig(over)
	if !errors.Is(err, ErrMTU) {
		t.Errorf("chunk one byte over the MTU: err = %v, want ErrMTU", err)
	}
	// The zero chunk defaults to params.DataPacketSize and fits.
	if err := ea.ValidateConfig(core.Config{Bytes: 10000}); err != nil {
		t.Errorf("default chunk rejected: %v", err)
	}
	// A raised MTU admits exactly the matching jumbo chunk.
	if err := ea.SetMTU(9000); err != nil {
		t.Fatal(err)
	}
	jumbo := core.Config{Bytes: 1 << 20, ChunkSize: 9000 - wire.HeaderSize}
	if err := ea.ValidateConfig(jumbo); err != nil {
		t.Errorf("jumbo chunk matching the raised MTU rejected: %v", err)
	}
	jumbo.ChunkSize++
	if err := ea.ValidateConfig(jumbo); !errors.Is(err, ErrMTU) {
		t.Errorf("jumbo chunk over the raised MTU: err = %v, want ErrMTU", err)
	}
}

func TestSetMTUBoundaries(t *testing.T) {
	ea, _ := pipe(t)
	// The smallest legal MTU carries a one-byte payload.
	if err := ea.SetMTU(wire.HeaderSize + 1); err != nil {
		t.Errorf("minimum MTU rejected: %v", err)
	}
	if err := ea.SetMTU(wire.HeaderSize); err == nil {
		t.Error("header-only MTU accepted")
	}
	if err := ea.SetMTU(0); err == nil {
		t.Error("zero MTU accepted")
	}
	if err := ea.SetMTU(-1); err == nil {
		t.Error("negative MTU accepted")
	}
	// The largest UDP/IPv4 datagram is the ceiling, inclusive.
	if err := ea.SetMTU(MaxMTU); err != nil {
		t.Errorf("MaxMTU rejected: %v", err)
	}
	if err := ea.SetMTU(MaxMTU + 1); err == nil {
		t.Error("MTU beyond the largest UDP datagram accepted")
	}
	if got := ea.MTU(); got != MaxMTU {
		t.Errorf("failed SetMTU mutated the endpoint: MTU = %d", got)
	}
}

func TestSetBatchDegenerate(t *testing.T) {
	ea, _ := pipe(t)
	for _, n := range []int{0, 1, -3} {
		ea.SetBatch(8) // engage, then collapse
		ea.SetBatch(n)
		if got := ea.Batch(); got != 1 {
			t.Errorf("SetBatch(%d): Batch() = %d, want the single-syscall path", n, got)
		}
	}
	// SetMTU with batching engaged re-sizes the rings, preserving the
	// batch size.
	ea.SetBatch(16)
	if err := ea.SetMTU(9000); err != nil {
		t.Fatal(err)
	}
	if got := ea.Batch(); got != 16 {
		t.Errorf("Batch() after SetMTU = %d, want 16", got)
	}
}

// Chunks beyond the codec's hard payload bound must be rejected before any
// socket work: by core's config validation for real-mode transfers, and by
// the MTU check for the endpoint even in simulated mode.
func TestJumboBeyondAbsMaxPayload(t *testing.T) {
	ea, _ := pipe(t)
	if err := ea.SetMTU(MaxMTU); err != nil {
		t.Fatal(err)
	}
	huge := core.Config{
		Bytes:     wire.AbsMaxPayload + 1,
		ChunkSize: wire.AbsMaxPayload + 1,
		Payload:   make([]byte, wire.AbsMaxPayload+1),
	}
	if _, err := Push(ea, huge); !errors.Is(err, core.ErrBadConfig) && !errors.Is(err, ErrMTU) {
		t.Errorf("chunk beyond AbsMaxPayload accepted: %v", err)
	}
	// Exactly AbsMaxPayload passes the MTU check at MaxMTU (the codec
	// bound and the datagram bound coincide there).
	edge := core.Config{Bytes: 1 << 20, ChunkSize: wire.AbsMaxPayload}
	if err := ea.ValidateConfig(edge); err != nil {
		t.Errorf("chunk of exactly AbsMaxPayload at MaxMTU rejected: %v", err)
	}
}

// The server-side validation shares validateConfigMTU: a serving MTU
// rejects oversized requests with ErrMTU before any session state forms.
func TestServerMTUValidation(t *testing.T) {
	cfg := core.Config{Bytes: 1 << 20, ChunkSize: 4000}
	if err := validateConfigMTU(cfg, MaxDatagram); !errors.Is(err, ErrMTU) {
		t.Errorf("4000-byte chunk at default MTU: err = %v, want ErrMTU", err)
	}
	if err := validateConfigMTU(cfg, 9000); err != nil {
		t.Errorf("4000-byte chunk at jumbo MTU rejected: %v", err)
	}
	// Boundary: header + chunk exactly equal to the MTU is legal.
	cfg.ChunkSize = 9000 - wire.HeaderSize
	if err := validateConfigMTU(cfg, 9000); err != nil {
		t.Errorf("exact-fit chunk rejected: %v", err)
	}
	cfg.ChunkSize++
	if err := validateConfigMTU(cfg, 9000); !errors.Is(err, ErrMTU) {
		t.Errorf("one-over chunk: err = %v, want ErrMTU", err)
	}
}
