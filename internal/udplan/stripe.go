package udplan

import (
	"fmt"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Striped transfers: one logical pull split into contiguous chunk-aligned
// byte ranges (core.PlanStripes), each moved by its own endpoint — its own
// socket, so the sharded server demultiplexes each stripe into its own
// session — running concurrently. Per-stripe ack round trips overlap, which
// is what lets a single large transfer saturate a link the way GridFTP-style
// parallel streams do. Reassembly is by offset through a core.StripeMerger;
// the whole-stream checksum comes out of the per-stripe accumulators with no
// cross-stripe synchronisation during the transfer.

// StripeOptions configures the fan-out of a striped pull.
type StripeOptions struct {
	// Streams is the number of parallel stripe sessions (default 4).
	Streams int
	// Batch is the per-endpoint syscall batch size (<= 1: single-syscall).
	Batch int
	// MTU overrides each endpoint's maximum datagram size (0: default).
	MTU int
	// SocketBuf, when positive, raises each endpoint's kernel buffers.
	SocketBuf int
	// PacketGap paces each stripe's data packets (see Endpoint.PacketGap).
	PacketGap time.Duration
	// Sink, when non-nil, receives every distinct chunk at its
	// logical-stream offset. Stripes deliver concurrently; calls are
	// serialised. When nil the transfer is checksummed and discarded.
	Sink core.ChunkSink
	// Adversary, when active, installs the seeded hostile-network model on
	// both directions of every stripe endpoint — stripe i is seeded
	// AdversarySeed+i, so one scenario definition reproduces exactly
	// (testing; see params.Adversary).
	Adversary     params.Adversary
	AdversarySeed int64
	// MangleTx and MangleRx, when non-nil, build directional per-stripe
	// mangle hooks: stripe i's endpoint gets MangleTx(i)/MangleRx(i)
	// (seeded loss injection, scripted scenarios — blastcp's
	// -drop-tx/-drop-rx). Installed after Adversary, so a directional hook
	// overrides that direction.
	MangleTx func(stripe int) func(*wire.Packet) params.Mangle
	MangleRx func(stripe int) func(*wire.Packet) params.Mangle
}

// StripeOutcome is one stripe session's result.
type StripeOutcome struct {
	Stripe core.Stripe
	Recv   core.RecvResult
	Err    error
}

// StripedResult reports a striped pull: merged whole-transfer progress plus
// the per-stripe feed.
type StripedResult struct {
	Bytes    int           // distinct payload bytes delivered across all stripes
	Checksum uint16        // whole-stream Internet checksum (== core.TransferChecksum)
	Elapsed  time.Duration // fan-out start to last stripe completion
	Stripes  []StripeOutcome
}

// MBps returns the logical transfer's application-level throughput.
func (r StripedResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// PullStriped requests the logical transfer cfg describes (Bytes, ChunkSize,
// Protocol, Strategy, Window, Adaptive, timeouts) from the daemon at addr as
// opts.Streams concurrent stripe sessions and reassembles the result. The
// server must resolve each stripe's REQ against the logical stream (see
// wire.Req.Offset); the sharded udplan.Server does this whenever its
// Source/Data handler honours the request's stripe fields. cfg.Sink and
// cfg.Payload are ignored — delivery goes through opts.Sink.
func PullStriped(addr string, cfg core.Config, opts StripeOptions) (StripedResult, error) {
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	streams := opts.Streams
	if streams <= 0 {
		streams = 4
	}
	plan := core.PlanStripes(cfg.Bytes, chunk, streams)
	if len(plan) == 0 {
		return StripedResult{}, fmt.Errorf("udplan: nothing to stripe: %w", core.ErrBadConfig)
	}
	cfg.Payload, cfg.Source = nil, nil // pull side: bytes come off the wire

	merger := core.NewStripeMerger(opts.Sink)
	outs := make([]StripeOutcome, len(plan))
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range plan {
		scfg := core.StripeConfig(cfg, s)
		scfg.Sink = merger.StripeSink(s)
		outs[i].Stripe = s
		wg.Add(1)
		go func(i int, scfg core.Config) {
			defer wg.Done()
			outs[i].Err = pullStripe(addr, scfg, opts, i, &outs[i].Recv)
		}(i, scfg)
	}
	wg.Wait()
	res := StripedResult{Elapsed: time.Since(start), Stripes: outs}
	sums := make([]uint16, len(plan))
	for i := range outs {
		res.Bytes += outs[i].Recv.Bytes
		sums[i] = outs[i].Recv.Checksum
	}
	res.Checksum = core.MergeStripeChecksums(plan, sums)
	for i := range outs {
		if outs[i].Err != nil {
			return res, fmt.Errorf("udplan: stripe %d of %d: %w", i, len(outs), outs[i].Err)
		}
	}
	return res, nil
}

// pullStripe runs one stripe session on its own endpoint.
func pullStripe(addr string, scfg core.Config, opts StripeOptions, i int, out *core.RecvResult) error {
	e, err := Dial(addr)
	if err != nil {
		return err
	}
	defer e.Close()
	if opts.MTU > 0 {
		if err := e.SetMTU(opts.MTU); err != nil {
			return err
		}
	}
	if opts.SocketBuf > 0 {
		e.SetSocketBuffers(opts.SocketBuf)
	}
	if opts.Batch > 1 {
		e.SetBatch(opts.Batch)
	}
	e.PacketGap = opts.PacketGap
	if opts.Adversary.Active() {
		if err := e.SetAdversary(opts.Adversary, opts.AdversarySeed+int64(i)); err != nil {
			return err
		}
	}
	if opts.MangleTx != nil {
		e.MangleTx = opts.MangleTx(i)
	}
	if opts.MangleRx != nil {
		e.MangleRx = opts.MangleRx(i)
	}
	res, err := Pull(e, scfg)
	*out = res
	return err
}
