package udplan

import (
	"sync"
	"sync/atomic"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// Striped transfers: one logical pull split into contiguous chunk-aligned
// byte ranges, each moved by its own endpoint — its own socket, so the
// sharded server demultiplexes each stripe into its own session — running
// concurrently. The orchestration (planning, merging, partial-failure
// cancellation) is the substrate-agnostic session.PullStriped; this file
// only contributes the UDP fabric: one dialed, adversary-armed endpoint per
// stripe, one goroutine per stripe body.

// StripeOptions configures the fan-out of a striped pull.
type StripeOptions struct {
	// Streams is the number of parallel stripe sessions (default 4).
	Streams int
	// Endpoint, when non-nil, is an already-dialed endpoint to the same
	// server that stripe 0 reuses instead of dialing fresh — the endpoint a
	// preceding stat ran on, so the session the daemon opened for the stat
	// carries the first stripe too. Ownership transfers: the fan-out
	// reconfigures and closes it like every endpoint it dials itself.
	Endpoint *Endpoint
	// Batch is the per-endpoint syscall batch size (<= 1: single-syscall).
	Batch int
	// Tier caps the batched-datapath tier each stripe endpoint probes up to
	// (see Endpoint.MaxTier); the zero value probes for the best supported.
	Tier Tier
	// MTU overrides each endpoint's maximum datagram size (0: default).
	MTU int
	// SocketBuf, when positive, raises each endpoint's kernel buffers.
	SocketBuf int
	// PacketGap paces each stripe's data packets (see Endpoint.PacketGap).
	PacketGap time.Duration
	// Sink, when non-nil, receives every distinct chunk at its
	// logical-stream offset. Stripes deliver concurrently; calls are
	// serialised. When nil the transfer is checksummed and discarded.
	Sink core.ChunkSink
	// Adversary, when active, installs the seeded hostile-network model on
	// both directions of every stripe endpoint — stripe i is seeded
	// AdversarySeed+i, so one scenario definition reproduces exactly
	// (testing; see params.Adversary).
	Adversary     params.Adversary
	AdversarySeed int64
	// MangleTx and MangleRx, when non-nil, build directional per-stripe
	// mangle hooks: stripe i's endpoint gets MangleTx(i)/MangleRx(i)
	// (seeded loss injection, scripted scenarios — blastcp's
	// -drop-tx/-drop-rx). Installed after Adversary, so a directional hook
	// overrides that direction.
	MangleTx func(stripe int) func(*wire.Packet) params.Mangle
	MangleRx func(stripe int) func(*wire.Packet) params.Mangle
	// Repair enables per-stripe failure recovery (see
	// session.StripeOptions.Repair): a dead stripe session is re-dialed and
	// resumed from its verified frontier instead of aborting the whole pull.
	// MaxResumes, Backoff and Seed tune the resume engine; zero values take
	// core.ResumeOptions defaults.
	Repair     bool
	MaxResumes int
	Backoff    time.Duration
	Seed       int64
}

// StripeOutcome is one stripe session's result.
type StripeOutcome = session.StripeOutcome

// StripedResult reports a striped pull: merged whole-transfer progress plus
// the per-stripe feed.
type StripedResult = session.StripedResult

// PullStriped requests the logical transfer cfg describes (Bytes, ChunkSize,
// Protocol, Strategy, Window, Adaptive, timeouts) from the daemon at addr as
// opts.Streams concurrent stripe sessions and reassembles the result. The
// server must resolve each stripe's REQ against the logical stream (see
// wire.Req.Offset); the sharded Server does this whenever its Source/Data
// handler honours the request's stripe fields. cfg.Sink and cfg.Payload are
// ignored — delivery goes through opts.Sink. If one stripe fails its
// siblings are cancelled promptly (their sockets close under them) and the
// returned error names the stripe that failed first.
func PullStriped(addr string, cfg core.Config, opts StripeOptions) (StripedResult, error) {
	f := &stripeFabric{addr: addr, opts: opts}
	return session.PullStriped(f, cfg, session.StripeOptions{
		Streams:    opts.Streams,
		Sink:       opts.Sink,
		Repair:     opts.Repair,
		MaxResumes: opts.MaxResumes,
		Backoff:    opts.Backoff,
		Seed:       opts.Seed,
	})
}

// stripeFabric implements transport.Fabric over dialed UDP endpoints: one
// fresh socket per stripe body, configured from StripeOptions.
type stripeFabric struct {
	addr string
	opts StripeOptions
	// handed marks the pre-dialed opts.Endpoint as consumed, so stripe 0's
	// first dial reuses it but a repair Redial opens a fresh socket.
	handed atomic.Bool
}

// Fan runs each stripe body in its own goroutine with its own endpoint.
func (f *stripeFabric) Fan(n int, body func(i int, c transport.Client) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := f.dial(i)
			if err != nil {
				// The failure still flows through the body (see
				// transport.Fabric), so a dead stripe cancels its siblings
				// instead of letting them run their full transfers first.
				errs[i] = body(i, transport.FailedClient(err))
				return
			}
			defer c.Close()
			errs[i] = body(i, c)
		}(i)
	}
	wg.Wait()
	return errs
}

// dial opens and configures stripe i's endpoint. Stripe 0's first dial
// reuses a pre-dialed StripeOptions.Endpoint when one was supplied.
func (f *stripeFabric) dial(i int) (transport.Client, error) {
	var e *Endpoint
	if i == 0 && f.opts.Endpoint != nil && f.handed.CompareAndSwap(false, true) {
		e = f.opts.Endpoint
	} else {
		var err error
		if e, err = Dial(f.addr); err != nil {
			return nil, err
		}
	}
	opts := f.opts
	if opts.MTU > 0 {
		if err := e.SetMTU(opts.MTU); err != nil {
			e.Close()
			return nil, err
		}
	}
	if opts.SocketBuf > 0 {
		e.SetSocketBuffers(opts.SocketBuf)
	}
	e.MaxTier = opts.Tier
	if opts.Batch > 1 {
		e.SetBatch(opts.Batch)
	}
	e.PacketGap = opts.PacketGap
	if opts.Adversary.Active() {
		if err := e.SetAdversary(opts.Adversary, opts.AdversarySeed+int64(i)); err != nil {
			e.Close()
			return nil, err
		}
	}
	if opts.MangleTx != nil {
		e.MangleTx = opts.MangleTx(i)
	}
	if opts.MangleRx != nil {
		e.MangleRx = opts.MangleRx(i)
	}
	return &clientConn{e}, nil
}

// Redial opens a fresh, identically-configured endpoint to the same server
// for stripe i (transport.Redialer) — the striped repair path's socket
// replacement after a stripe session dies with its conn.
func (f *stripeFabric) Redial(i int) (transport.Client, error) { return f.dial(i) }

// clientConn adapts a dialed endpoint to transport.Client.
type clientConn struct{ *Endpoint }

// Abort closes the underlying socket from a sibling's goroutine: the
// owning engine's pending or next socket operation fails with
// net.ErrClosed. Socket close is the only cross-goroutine-safe operation
// on an Endpoint, which is exactly why cancellation uses it.
func (c *clientConn) Abort() { c.conn.Close() }
