package udplan

import (
	"fmt"
	"net"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/wire"
)

// One-to-many replication over real UDP loopback/LAN: the same depth-2
// stripe-relay fan-out simrun.FanoutScenario models, run with sockets. The
// source (an ordinary daemon at a caller-supplied address) blasts each
// stripe of the object once — to the in-process relay that owns it — and
// every receiver assembles the object by pulling each stripe from its
// relay. Relays are cut-through: a session.Board lets a relay serve a
// chunk the moment its uplink delivers it, so the head of the object fans
// out while the tail is still leaving the source. With Relays == 0 the
// runner degrades to the baseline the tree is judged against: N
// independent whole-object pulls straight from the source.

// FanoutOptions configures a RunFanout.
type FanoutOptions struct {
	// N is the number of receivers (default 8).
	N int
	// Relays is the number of stripe relays; 0 runs the independent-pulls
	// baseline.
	Relays int
	// Bytes is the object size (default 256 KiB); Chunk the data packet
	// size (default params.DataPacketSize); Window the blast split
	// (default 16).
	Bytes  int
	Chunk  int
	Window int
	// Tr is every hop's retransmission timeout (default 250 ms).
	Tr time.Duration
	// Controller names the rate-control policy each pull requests.
	Controller string
	// Batch is the per-socket syscall batch size (<= 1: single-syscall).
	Batch int
	// SocketBuf sizes every socket's kernel buffers (default 4 MiB).
	SocketBuf int
	// LineRate, when positive, models each relay's socket as a serializing
	// link of this many egress bytes/s (Server.LineRate). Set the same rate
	// on the source daemon and the comparison measures topology — which
	// socket carries how many copies — instead of loopback CPU.
	LineRate int
	// MaxResumes, MaxBusyWaits and Backoff tune every pull's recovery
	// budget (zero: core.ResumeOptions defaults).
	MaxResumes   int
	MaxBusyWaits int
	Backoff      time.Duration
	// Seed drives backoff jitter.
	Seed int64
	// KeepData retains each receiver's assembled payload (conformance);
	// otherwise receivers verify by checksum alone.
	KeepData bool
	// Done, when non-nil, observes every relay-served transfer's
	// sender-side stats. Install the same hook on the source daemon and
	// one map joins both (transfer IDs are disjoint by construction — see
	// session.FanoutReceiverID).
	Done func(session.TransferStats)
}

func (o FanoutOptions) withDefaults() FanoutOptions {
	if o.N <= 0 {
		o.N = 8
	}
	if o.Bytes <= 0 {
		o.Bytes = 256 << 10
	}
	if o.Chunk <= 0 {
		o.Chunk = params.DataPacketSize
	}
	if o.Window == 0 {
		o.Window = 16
	}
	if o.Tr == 0 {
		o.Tr = 250 * time.Millisecond
	}
	if o.SocketBuf <= 0 {
		o.SocketBuf = 4 << 20
	}
	return o
}

// FanoutStripeOutcome is one stripe session's result.
type FanoutStripeOutcome struct {
	Stripe core.Stripe
	ID     uint32
	Recv   core.RecvResult
	Resume core.ResumeStats
	Err    error
}

// FanoutReceiverOutcome is one receiver's end-to-end result.
type FanoutReceiverOutcome struct {
	Receiver  int
	Stripes   []FanoutStripeOutcome
	Completed bool
	// Checksum is the whole-object Internet checksum folded from the
	// stripes; Data is the assembled payload when KeepData is set.
	Checksum uint16
	Data     []byte
	Elapsed  time.Duration
}

// FanoutRelayOutcome is one relay's uplink result.
type FanoutRelayOutcome struct {
	Relay  int
	Stripe core.Stripe
	ID     uint32
	Recv   core.RecvResult
	Resume core.ResumeStats
	Err    error
}

// FanoutRunResult reports one UDP fan-out run.
type FanoutRunResult struct {
	Receivers []FanoutReceiverOutcome
	Relays    []FanoutRelayOutcome
	// Elapsed is wall time from fan-out start (relay uplinks and receivers
	// launch together) to the last receiver finishing.
	Elapsed time.Duration
	// Completed counts receivers that assembled an intact object.
	Completed int
}

// AggMBps is aggregate delivered payload (intact receivers) over Elapsed.
func (r FanoutRunResult) AggMBps(bytes int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(bytes) / r.Elapsed.Seconds() / 1e6
}

// fanoutDial opens and configures one client endpoint.
func fanoutDial(addr string, o FanoutOptions) (*Endpoint, error) {
	e, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	e.SetSocketBuffers(o.SocketBuf)
	if o.Batch > 1 {
		e.SetBatch(o.Batch)
	}
	return e, nil
}

// RunFanout distributes the seeded object served by the daemon at addr to
// opts.N receivers and reports every hop's outcome. The daemon must
// resolve stripe-range REQs against the logical stream (blastd and the
// shared session.Server Source hook do). Setup failures — a socket that
// cannot bind — return an error; per-hop transfer failures are reported in
// the outcomes, with each relay's board poisoned on uplink failure so its
// children finish (corrupt, resumable) instead of deadlocking.
func RunFanout(addr string, opts FanoutOptions) (FanoutRunResult, error) {
	o := opts.withDefaults()
	treed := o.Relays > 0
	var parts []core.Stripe
	if treed {
		parts = core.PlanStripes(o.Bytes, o.Chunk, o.Relays)
	} else {
		parts = []core.Stripe{{Index: 0, Offset: 0, Bytes: o.Bytes}}
	}
	if len(parts) > session.FanoutStripeStride {
		return FanoutRunResult{}, fmt.Errorf("udplan: fanout: %d stripes exceed the ID stride %d",
			len(parts), session.FanoutStripeStride)
	}

	// Relay plumbing: one board-backed server per stripe on its own
	// loopback socket.
	boards := make([]*session.Board, len(parts))
	relayAddrs := make([]string, len(parts))
	relaySrvs := make([]*Server, len(parts))
	relayRunErrs := make([]chan error, len(parts))
	if treed {
		for ki, st := range parts {
			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				for _, s := range relaySrvs[:ki] {
					s.Close()
				}
				return FanoutRunResult{}, fmt.Errorf("udplan: fanout relay %d: %w", ki, err)
			}
			SetConnBuffers(conn, o.SocketBuf)
			boards[ki] = session.NewBoardAt(st.Offset, st.Bytes, o.Chunk, false)
			srv := NewServer(conn)
			srv.Batch = o.Batch
			srv.Concurrency = o.N + 2
			srv.LineRate = o.LineRate
			srv.SourceEnv = boards[ki].SourceReq
			srv.Done = o.Done
			relaySrvs[ki] = srv
			relayAddrs[ki] = conn.LocalAddr().String()
			relayRunErrs[ki] = make(chan error, 1)
			ch := relayRunErrs[ki]
			go func() { ch <- srv.Run() }()
		}
	}

	res := FanoutRunResult{
		Receivers: make([]FanoutReceiverOutcome, o.N),
		Relays:    make([]FanoutRelayOutcome, 0, len(parts)),
	}
	var wg sync.WaitGroup
	start := time.Now()

	// Relay uplinks: each pulls its stripe from the source into its board.
	if treed {
		res.Relays = make([]FanoutRelayOutcome, len(parts))
		for ki, st := range parts {
			ki, st := ki, st
			wg.Add(1)
			go func() {
				defer wg.Done()
				rr := &res.Relays[ki]
				rr.Relay, rr.Stripe, rr.ID = ki, st, session.FanoutRelayID(ki)
				ep, err := fanoutDial(addr, o)
				if err != nil {
					rr.Err = err
					boards[ki].Fail(err)
					return
				}
				defer ep.Close()
				cfg := core.Config{
					TransferID:     rr.ID,
					Bytes:          st.Bytes,
					ChunkSize:      o.Chunk,
					Protocol:       core.Blast,
					Strategy:       core.GoBackN,
					Window:         o.Window,
					Controller:     o.Controller,
					RetransTimeout: o.Tr,
					StripeOffset:   st.Offset,
					StripeTotal:    o.Bytes,
					Sink:           boards[ki].Sink(),
				}
				rr.Recv, rr.Resume, rr.Err = core.PullResume(ep, cfg, core.ResumeOptions{
					MaxResumes:   o.MaxResumes,
					MaxBusyWaits: o.MaxBusyWaits,
					Backoff:      o.Backoff,
					Seed:         o.Seed + 7000 + int64(ki),
					Redial: func() (core.Env, error) {
						ep.Close()
						ne, err := fanoutDial(addr, o)
						if err != nil {
							return nil, err
						}
						ep = ne
						return ne, nil
					},
				})
				if rr.Err != nil {
					boards[ki].Fail(rr.Err)
				}
			}()
		}
	}

	// Receivers: each pulls every stripe from the relay that owns it (or
	// the whole object from the source, in the baseline).
	for i := 0; i < o.N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &res.Receivers[i]
			r.Receiver = i
			r.Stripes = make([]FanoutStripeOutcome, len(parts))
			var buf []byte
			if o.KeepData {
				buf = make([]byte, o.Bytes)
			}
			t0 := time.Now()
			var swg sync.WaitGroup
			for ki, st := range parts {
				ki, st := ki, st
				swg.Add(1)
				go func() {
					defer swg.Done()
					so := &r.Stripes[ki]
					so.Stripe, so.ID = st, session.FanoutReceiverID(i, ki)
					target := addr
					if treed {
						target = relayAddrs[ki]
					}
					ep, err := fanoutDial(target, o)
					if err != nil {
						so.Err = err
						return
					}
					defer ep.Close()
					cfg := core.Config{
						TransferID:     so.ID,
						Bytes:          st.Bytes,
						ChunkSize:      o.Chunk,
						Protocol:       core.Blast,
						Strategy:       core.GoBackN,
						Window:         o.Window,
						Controller:     o.Controller,
						RetransTimeout: o.Tr,
					}
					if treed {
						cfg.StripeOffset = st.Offset
						cfg.StripeTotal = o.Bytes
					}
					if buf != nil {
						// Stripes cover disjoint ranges, so concurrent sinks
						// never overlap.
						cfg.Sink = func(off int, b []byte) {
							copy(buf[st.Offset+off:], b)
						}
					}
					so.Recv, so.Resume, so.Err = core.PullResume(ep, cfg, core.ResumeOptions{
						MaxResumes:   o.MaxResumes,
						MaxBusyWaits: o.MaxBusyWaits,
						Backoff:      o.Backoff,
						Seed:         o.Seed + int64(i*session.FanoutStripeStride+ki),
						Redial: func() (core.Env, error) {
							ep.Close()
							ne, err := fanoutDial(target, o)
							if err != nil {
								return nil, err
							}
							ep = ne
							return ne, nil
						},
					})
				}()
			}
			swg.Wait()
			r.Elapsed = time.Since(t0)
			r.Completed = true
			var acc wire.SumAcc
			for ki := range r.Stripes {
				so := &r.Stripes[ki]
				if so.Err != nil || !so.Recv.Completed {
					r.Completed = false
					continue
				}
				acc.AddChecksumAt(so.Stripe.Offset, so.Recv.Checksum)
			}
			r.Checksum = acc.Sum16()
			r.Data = buf
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	// Tear the relays down; a clean socket close ends each Run loop.
	var firstErr error
	if treed {
		for ki, s := range relaySrvs {
			s.Close()
			if err := <-relayRunErrs[ki]; err != nil && firstErr == nil {
				firstErr = fmt.Errorf("udplan: fanout relay %d server: %w", ki, err)
			}
		}
	}

	expected := core.TransferChecksum(core.SeededPayload(int64(o.Bytes), o.Bytes, o.Chunk))
	for i := range res.Receivers {
		r := &res.Receivers[i]
		if r.Completed && r.Checksum == expected {
			res.Completed++
		}
	}
	return res, firstErr
}
