package udplan

import (
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// This file is the UDP substrate's implementation of transport.Listener:
// everything socket- and syscall-specific about serving many clients on one
// socket — recvmmsg demux drains, raw-sockaddr keys, pooled datagram
// copies, per-session goroutines with sendmmsg frame rings. The serving
// logic itself (session table, REQ-only admission, handler dispatch) lives
// in internal/session and is shared with the simulator substrate.

// serverListener adapts one shared socket to transport.Listener.
type serverListener struct {
	conn  net.PacketConn
	raw   syscall.RawConn // non-nil when the socket supports raw batched I/O
	mtu   int
	batch int
	tier  Tier       // transmit tier for session frame rings, probed once per socket
	line  *linePacer // modeled egress line rate shared by all sessions (nil: unlimited)
	rx    *rxBatch
	rbuf  []byte
	pool  *sync.Pool

	keybuf   [addrKeyLen]byte
	lastAddr net.Addr // source of the most recent Accept (blocking read)
	lastName []byte   // raw sockaddr of the most recent Accept (batch drain)

	wg sync.WaitGroup
}

func newServerListener(conn net.PacketConn, batch, mtu int, maxTier Tier) *serverListener {
	l := &serverListener{
		conn:  conn,
		raw:   rawConnOf(conn),
		mtu:   mtu,
		batch: batch,
		tier:  pickTxTier(rawConnOf(conn), batch, maxTier),
		rbuf:  make([]byte, mtu),
		pool:  &sync.Pool{New: func() any { b := make([]byte, mtu); return &b }},
	}
	if batch > 1 && l.raw != nil {
		// The demux ring stays plain (no UDP_GRO): session datagrams copy
		// into MTU-sized pooled buffers, which a coalesced superbuffer would
		// overflow. GSO-tier clients still work — the kernel segments an
		// inbound GSO skb for a socket without GRO — so only the transmit
		// side of the server rides the GSO tier.
		l.rx = newRxBatch(batch, mtu, false)
	}
	return l
}

// Accept returns the next datagram on the socket: a batch-drained one if
// pending, otherwise one blocking read followed (when batching) by an
// opportunistic recvmmsg drain of everything else already queued in the
// kernel. The demux key is canonical and allocation-free.
func (l *serverListener) Accept(idle time.Duration) (transport.Inbound, error) {
	var deadline time.Time
	if idle > 0 {
		deadline = time.Now().Add(idle)
	}
	if err := l.conn.SetReadDeadline(deadline); err != nil {
		return transport.Inbound{}, err
	}
	for {
		var (
			data, name []byte
			addr       net.Addr
		)
		if l.rx != nil && l.rx.pending() {
			data, name = l.rx.pop()
		} else {
			n, a, err := l.conn.ReadFrom(l.rbuf)
			if err != nil {
				return transport.Inbound{}, err
			}
			data, addr = l.rbuf[:n], a
			if l.rx != nil {
				l.rx.drain(l.raw)
			}
		}
		if name != nil {
			if !keyFromRaw(&l.keybuf, name) {
				continue
			}
		} else if ua, ok := addr.(*net.UDPAddr); ok {
			keyFromUDP(&l.keybuf, ua)
		} else {
			continue
		}
		l.lastAddr, l.lastName = addr, name
		return transport.Inbound{Key: l.keybuf[:], Msg: data}, nil
	}
}

// ReqOf decodes a datagram as a session-opening request: only a
// checksum-valid REQ qualifies.
func (l *serverListener) ReqOf(msg transport.Message) (wire.Req, bool) {
	data, ok := msg.([]byte)
	if !ok {
		return wire.Req{}, false
	}
	var pkt wire.Packet
	if wire.DecodeInto(&pkt, data) != nil || pkt.Type != wire.TypeReq {
		return wire.Req{}, false
	}
	req, err := wire.DecodeReq(pkt.Payload)
	if err != nil {
		return wire.Req{}, false
	}
	return req, true
}

// Open creates the session conn for the source of the most recent Accept.
func (l *serverListener) Open() (transport.Conn, transport.Peer, error) {
	peer := l.lastAddr
	if peer == nil {
		ua := rawToUDPAddr(l.lastName)
		if ua == nil {
			return nil, nil, fmt.Errorf("udplan: unresolvable raw source address")
		}
		peer = ua
	}
	return &serverConn{l: l, peer: peer, inbox: make(chan dgram, 256)}, peer, nil
}

// ReplyBusy sends a best-effort BUSY/RETRY-AFTER refusal to the source of
// the most recent Accept (transport.BusyReplier). The reply is a single
// unbatched write: refusals are rare by construction (one per refused REQ
// round trip) and must not sit in a frame ring.
func (l *serverListener) ReplyBusy(msg transport.Message, retryAfter time.Duration) error {
	data, ok := msg.([]byte)
	if !ok {
		return fmt.Errorf("udplan: refused arrival is not a datagram")
	}
	var pkt wire.Packet
	if err := wire.DecodeInto(&pkt, data); err != nil {
		return err
	}
	peer := l.lastAddr
	if peer == nil {
		ua := rawToUDPAddr(l.lastName)
		if ua == nil {
			return fmt.Errorf("udplan: unresolvable raw source address")
		}
		peer = ua
	}
	buf, err := core.Busy(pkt.Trans, retryAfter).Encode(nil)
	if err != nil {
		return err
	}
	_, err = l.conn.WriteTo(buf, peer)
	return err
}

// Drain blocks until every session goroutine has returned.
func (l *serverListener) Drain() { l.wg.Wait() }

// AcceptPoll bounds an otherwise-unbounded Accept so the demux loop can
// notice server state changes (BeginDrain) while the socket is idle; a
// read timeout every quarter second costs nothing.
func (l *serverListener) AcceptPoll() time.Duration { return 250 * time.Millisecond }

// dgram is one pooled datagram in flight from the demux loop to a session.
type dgram struct {
	b *[]byte
	n int
}

// serverConn is one admitted session's channel: a buffered inbox of pooled
// datagram copies fed by the demux loop, consumed by the session goroutine.
type serverConn struct {
	l     *serverListener
	peer  net.Addr
	inbox chan dgram
}

// Deliver copies the datagram into a pooled buffer and queues it. A full
// inbox drops — an interface drop; the protocol recovers.
func (c *serverConn) Deliver(msg transport.Message) {
	data, ok := msg.([]byte)
	if !ok {
		return
	}
	bp := c.l.pool.Get().(*[]byte)
	n := copy(*bp, data)
	select {
	case c.inbox <- dgram{bp, n}:
	default:
		c.l.pool.Put(bp) // inbox overflow: an interface drop; the protocol recovers
	}
}

// Hangup closes the inbox from the demux side (the demux loop has stopped).
func (c *serverConn) Hangup() { close(c.inbox) }

// Spawn runs the session body in its own goroutine over a channel-fed Env
// with its own sendmmsg frame ring, and tears the ring down after the body
// returns.
func (c *serverConn) Spawn(name string, body func(env core.Env)) {
	c.l.wg.Add(1)
	go func() {
		defer c.l.wg.Done()
		env := newSessionEnv(c.l.conn, c.l.raw, c.peer, c.inbox, c.l.pool)
		env.tier = c.l.tier
		env.line = c.l.line
		if c.l.batch > 1 {
			env.tx = newTxBatch(c.l.batch, c.l.mtu, env.flushFrames)
		}
		body(env)
		env.FlushBatch()
		env.recycle()
	}()
}

// sessionEnv adapts one demuxed session to core.Env: receives come from the
// demux loop's channel, sends go straight to the shared socket (batched
// through a per-session frame ring when enabled).
type sessionEnv struct {
	conn  net.PacketConn
	raw   syscall.RawConn
	peer  net.Addr
	inbox chan dgram
	pool  *sync.Pool
	start time.Time
	timer *time.Timer
	cur   *[]byte // current packet's buffer; recycled on the next Recv
	pkt   wire.Packet
	wbuf  []byte
	tx    *txBatch
	ms    mmsgSender
	gs    gsoSender
	tier  Tier          // transmit tier, inherited from the listener's probe
	line  *linePacer    // shared per-socket line rate (nil: unlimited)
	gap   time.Duration // adaptive pacing between data packets (core.Pacer)
	pace  pacer         // amortized sleep state for gap actuation
}

func newSessionEnv(conn net.PacketConn, raw syscall.RawConn, peer net.Addr, inbox chan dgram, pool *sync.Pool) *sessionEnv {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &sessionEnv{conn: conn, raw: raw, peer: peer, inbox: inbox, pool: pool, start: time.Now(), timer: t}
}

// BatchLimit implements core.BatchLimiter.
func (se *sessionEnv) BatchLimit() int {
	if se.tx == nil {
		return 1
	}
	return se.tx.flushAt()
}

// SetBatchLimit implements core.BatchLimiter: the session's flush
// threshold follows the adaptive controller's window without reallocating
// the ring. The demux loop owns the receive side; only transmit batching
// is per-session.
func (se *sessionEnv) SetBatchLimit(n int) {
	if se.tx == nil {
		return
	}
	se.tx.setLimit(n)
}

// FlushUnit implements core.BatchGeometry: the frames one flush syscall
// carries as a single wire unit at the session's inherited tier (see
// flushUnitOf), so a serving-side controller's batch actuation is quantized
// to whole GSO superbuffers too.
func (se *sessionEnv) FlushUnit() int {
	if se.tx == nil {
		return 1
	}
	return flushUnitOf(se.tier, len(se.tx.frames))
}

// SetPacketGap implements core.Pacer for the serving side of a pull.
func (se *sessionEnv) SetPacketGap(d time.Duration) { se.gap = d }

// Gap implements core.Pacer.
func (se *sessionEnv) Gap() time.Duration { return se.gap }

// Now returns the wall-clock time since the session started.
func (se *sessionEnv) Now() time.Duration { return time.Since(se.start) }

// Compute is a no-op: real work takes real time.
func (se *sessionEnv) Compute(time.Duration) {}

// PacketConsumedOnSend implements core.PacketReuser.
func (se *sessionEnv) PacketConsumedOnSend() {}

// FlushBatch implements core.BatchFlusher.
func (se *sessionEnv) FlushBatch() error {
	if se.tx == nil {
		return nil
	}
	return se.tx.Flush()
}

// flushFrames writes the session's queued frames through the listener's
// probed datapath tier (GSO superbuffer, sendmmsg or WriteTo loop). A
// modeled line rate charges the whole flush before it hits the socket: the
// shared pacer serializes this session's frames against every other
// session's on the same link.
func (se *sessionEnv) flushFrames(frames [][]byte, lens []int, n int) error {
	if se.line != nil {
		total := 0
		for _, l := range lens[:n] {
			total += l
		}
		se.line.wait(total)
	}
	return flushFramesTiered(se.tier, se.raw, &se.gs, &se.ms, se.conn, se.peer, frames, lens, n)
}

// Send encodes and transmits one packet to the session's peer. A non-zero
// pacing gap spaces data packets on the wire, exactly like
// Endpoint.PacketGap: the pacer flushes queued frames before it sleeps so
// the gap is real spacing, not a queued burst, and amortizes sub-quantum
// gaps so the actuation cost tracks the nominal rate (see pace.go).
func (se *sessionEnv) Send(p *wire.Packet) error {
	if err := se.send(p); err != nil {
		return err
	}
	if se.gap > 0 && p.Type == wire.TypeData {
		return se.pace.owe(se.gap, se.FlushBatch)
	}
	return nil
}

func (se *sessionEnv) send(p *wire.Packet) error {
	if se.tx != nil {
		n, err := p.EncodeInto(se.tx.slot())
		if err != nil {
			return err
		}
		if err := se.tx.commit(n); err != nil {
			return err
		}
		if flushesImmediately(p) {
			return se.tx.Flush()
		}
		return nil
	}
	buf, err := p.Encode(se.wbuf[:0])
	if err != nil {
		return err
	}
	se.wbuf = buf[:0]
	se.line.wait(len(buf))
	_, err = se.conn.WriteTo(buf, se.peer)
	return err
}

// SendAsync is Send: UDP writes do not wait for transmission anyway.
func (se *sessionEnv) SendAsync(p *wire.Packet) error { return se.Send(p) }

// Recv returns the session's next valid packet. The decoded packet aliases
// a pooled buffer that stays valid until the following Recv.
func (se *sessionEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	if err := se.FlushBatch(); err != nil {
		return nil, err
	}
	for {
		d, err := se.nextDgram(timeout)
		if err != nil {
			return nil, err
		}
		se.recycle()
		se.cur = d.b
		if derr := wire.DecodeInto(&se.pkt, (*d.b)[:d.n]); derr != nil {
			continue // corrupted in flight: the checksum did its job
		}
		return &se.pkt, nil
	}
}

// recycle returns the current packet's buffer to the pool.
func (se *sessionEnv) recycle() {
	if se.cur != nil {
		se.pool.Put(se.cur)
		se.cur = nil
	}
}

// nextDgram waits for the demux loop's next datagram with core.Env timeout
// semantics.
func (se *sessionEnv) nextDgram(timeout time.Duration) (dgram, error) {
	if timeout < 0 {
		d, ok := <-se.inbox
		if !ok {
			return dgram{}, net.ErrClosed
		}
		return d, nil
	}
	if timeout == 0 {
		select {
		case d, ok := <-se.inbox:
			if !ok {
				return dgram{}, net.ErrClosed
			}
			return d, nil
		default:
			return dgram{}, os.ErrDeadlineExceeded
		}
	}
	se.timer.Reset(timeout)
	select {
	case d, ok := <-se.inbox:
		if !se.timer.Stop() {
			select {
			case <-se.timer.C:
			default:
			}
		}
		if !ok {
			return dgram{}, net.ErrClosed
		}
		return d, nil
	case <-se.timer.C:
		return dgram{}, os.ErrDeadlineExceeded
	}
}
