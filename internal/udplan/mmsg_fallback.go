//go:build !linux || !(amd64 || arm64)

package udplan

// Portable no-op stand-ins for the Linux sendmmsg/recvmmsg fast path: the
// batch rings still form and flush, but as plain WriteTo loops, and the
// receive drain never fills — behaviour is identical, only the syscall
// count differs.

import (
	"net"
	"syscall"
)

// rawNameLen matches the Linux sockaddr_in6 slot size so ring geometry is
// platform-independent.
const rawNameLen = 28

// mmsgSupported reports whether this build has the sendmmsg/recvmmsg tier.
const mmsgSupported = false

type mmsgSender struct{}

type mmsgReceiver struct{}

func sendBatch(syscall.RawConn, *mmsgSender, net.Addr, [][]byte, []int, int) (bool, error) {
	return false, nil
}

func recvBatch(syscall.RawConn, *rxBatch) (int, bool) {
	return 0, false
}

func keyFromRaw(*[addrKeyLen]byte, []byte) bool { return false }

func rawToUDPAddr([]byte) *net.UDPAddr { return nil }
