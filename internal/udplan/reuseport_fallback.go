//go:build !linux

package udplan

import "syscall"

// reuseportSharding: only Linux guarantees SO_REUSEPORT load-balancing for
// UDP (macOS accepts the option but delivers all traffic to one socket;
// Windows has no equivalent semantics), so multi-queue listening is
// refused rather than silently degraded to one queue.
const reuseportSharding = false

func reuseportControl(network, address string, c syscall.RawConn) error {
	return syscall.EINVAL // unreachable: ListenReuseport gates on reuseportSharding
}
