// Package udplan runs the protocol engines of internal/core over real UDP
// sockets, playing the role of the paper's standalone measurement programs
// (§2.1.1): the same sender/receiver code that executes in virtual time on
// the simulator executes here against the operating system's network stack.
//
// UDP gives exactly the substrate the paper's data-link-level experiments
// assume: unreliable, unordered-but-practically-ordered datagram delivery
// with no protocol machinery on top. All reliability comes from
// internal/core. Loss can be injected deterministically on either side for
// testing recovery paths on a lossless loopback.
package udplan

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// MaxDatagram bounds receive buffers; it comfortably exceeds the paper's
// 1536-byte maximum packet (§2.1.2).
const MaxDatagram = 2048

// Endpoint adapts a packet socket to core.Env. It must be used from a
// single goroutine, like every Env.
type Endpoint struct {
	conn  net.PacketConn
	peer  net.Addr
	start time.Time
	rbuf  [MaxDatagram]byte
	wbuf  []byte

	// DropTx and DropRx, when non-nil, drop matching packets before the
	// socket write / after the socket read. They exist to exercise
	// retransmission machinery deterministically on a lossless loopback.
	DropTx func(*wire.Packet) bool
	DropRx func(*wire.Packet) bool

	// LockPeer, when set, discards datagrams from other sources once a
	// peer is known.
	LockPeer bool

	// LearnReqOnly restricts peer learning to TypeReq packets. Servers use
	// this so stragglers from a finished transfer cannot claim the
	// endpoint before the next client's request arrives.
	LearnReqOnly bool

	// PacketGap paces data packets: Send sleeps this long after writing a
	// TypeData packet. The paper assumes "source and destination machine
	// are more or less matched in speed" (§1); on a modern loopback the
	// sender can outrun kernel socket buffers by orders of magnitude, and
	// pacing restores the matched-speed premise for large blasts.
	PacketGap time.Duration
}

// NewEndpoint wraps an open socket. peer may be nil for servers; it is
// learned from the first valid datagram.
func NewEndpoint(conn net.PacketConn, peer net.Addr) *Endpoint {
	return &Endpoint{conn: conn, peer: peer, start: time.Now()}
}

// Dial opens an ephemeral UDP socket talking to remote.
func Dial(remote string) (*Endpoint, error) {
	raddr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return nil, fmt.Errorf("udplan: resolve %q: %w", remote, err)
	}
	local := ":0"
	if raddr.IP != nil && raddr.IP.IsLoopback() {
		local = "127.0.0.1:0"
	}
	conn, err := net.ListenPacket("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udplan: listen: %w", err)
	}
	e := NewEndpoint(conn, raddr)
	e.LockPeer = true
	return e, nil
}

// Close releases the underlying socket.
func (e *Endpoint) Close() error { return e.conn.Close() }

// LocalAddr returns the socket's address.
func (e *Endpoint) LocalAddr() net.Addr { return e.conn.LocalAddr() }

// Peer returns the current peer (nil until learned).
func (e *Endpoint) Peer() net.Addr { return e.peer }

// ResetPeer forgets the current peer so a server endpoint can accept its
// next client.
func (e *Endpoint) ResetPeer() { e.peer = nil }

// Now returns the wall-clock time since the endpoint was created.
func (e *Endpoint) Now() time.Duration { return time.Since(e.start) }

// Compute is a no-op: real work takes real time.
func (e *Endpoint) Compute(time.Duration) {}

// Send encodes and transmits one packet to the peer.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.peer == nil {
		return errors.New("udplan: no peer known")
	}
	if e.DropTx != nil && e.DropTx(p) {
		return nil // injected loss: silently dropped, like a wire error
	}
	buf, err := p.Encode(e.wbuf[:0])
	if err != nil {
		return err
	}
	e.wbuf = buf[:0]
	if _, err := e.conn.WriteTo(buf, e.peer); err != nil {
		return err
	}
	if e.PacketGap > 0 && p.Type == wire.TypeData {
		time.Sleep(e.PacketGap)
	}
	return nil
}

// SendAsync is Send: UDP writes do not wait for transmission anyway.
func (e *Endpoint) SendAsync(p *wire.Packet) error { return e.Send(p) }

// Recv returns the next valid packet. timeout < 0 waits forever. Malformed
// datagrams and (with LockPeer) foreign sources are skipped. On expiry the
// error satisfies errors.Is(err, os.ErrDeadlineExceeded).
func (e *Endpoint) Recv(timeout time.Duration) (*wire.Packet, error) {
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := e.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	for {
		n, addr, err := e.conn.ReadFrom(e.rbuf[:])
		if err != nil {
			return nil, err
		}
		pkt, derr := wire.Decode(e.rbuf[:n])
		if derr != nil {
			continue // not ours / corrupted: the checksum did its job
		}
		if e.peer == nil {
			if e.LearnReqOnly && pkt.Type != wire.TypeReq {
				continue // unverifiable straggler
			}
			e.peer = addr
		} else if e.LockPeer && addr.String() != e.peer.String() {
			continue
		}
		if e.DropRx != nil && e.DropRx(pkt) {
			continue
		}
		return pkt.Clone(), nil // rbuf is reused; detach
	}
}

// SeededDrop returns a deterministic drop function losing packets with
// probability p. Each returned function owns its generator, so install
// separate instances for Tx and Rx.
func SeededDrop(p float64, seed int64) func(*wire.Packet) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(*wire.Packet) bool { return rng.Float64() < p }
}

// Push transfers cfg.Payload to the peer: announce, wait for the go-ahead,
// blast (or whatever cfg.Protocol says).
func Push(e *Endpoint, cfg core.Config) (core.SendResult, error) {
	return core.Push(e, cfg)
}

// Pull requests the configured transfer from the peer and receives it.
func Pull(e *Endpoint, cfg core.Config) (core.RecvResult, error) {
	return core.Request(e, cfg)
}

// Server answers transfer requests on one socket, serially (the paper's
// world is two matched machines; a transfer in progress owns the link).
type Server struct {
	// Data, when non-nil, satisfies pull requests (MoveFrom): it returns
	// the bytes to blast back for an accepted request.
	Data func(wire.Req) ([]byte, bool)
	// Sink, when non-nil, accepts push requests (MoveTo) and receives the
	// completed transfer.
	Sink func(wire.Req, []byte)
	// Idle bounds how long Run waits for the next request; zero waits
	// forever (until the socket closes).
	Idle time.Duration

	conn net.PacketConn

	mu      sync.Mutex
	served  int
	lastErr error
}

// NewServer wraps a socket in a transfer server.
func NewServer(conn net.PacketConn) *Server { return &Server{conn: conn} }

// Served reports how many transfers completed successfully.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Run serves requests until the socket is closed (or Idle expires).
// It returns nil on a clean close.
func (s *Server) Run() error {
	for {
		if err := s.serveOne(); err != nil {
			if core.IsTimeout(err) {
				return nil // idle bound reached
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// serveOne accepts and completes a single transfer.
func (s *Server) serveOne() error {
	e := NewEndpoint(s.conn, nil)
	e.LockPeer = true
	e.LearnReqOnly = true
	idle := time.Duration(-1)
	if s.Idle > 0 {
		idle = s.Idle
	}
	cfg, err := core.ServeOnce(e, idle, func(r wire.Req) (core.Config, bool) {
		c := core.ConfigOf(0, r)
		// Wall-clock linger/idle bounds: the simulation defaults are sized
		// for free virtual time and would stall a serial server between
		// clients.
		c.Linger = 2*c.RetransTimeout + 100*time.Millisecond
		c.ReceiverIdle = 8*c.RetransTimeout + 2*time.Second
		if r.Push {
			if s.Sink == nil {
				return core.Config{}, false
			}
			return c, true
		}
		if s.Data == nil {
			return core.Config{}, false
		}
		payload, ok := s.Data(r)
		if !ok || len(payload) != c.Bytes {
			return core.Config{}, false
		}
		c.Payload = payload
		return c, true
	})
	if err != nil {
		return err
	}
	if cfg.Payload == nil {
		// Push: receive the transfer.
		res, err := core.AcceptPush(e, cfg)
		if err != nil {
			return fmt.Errorf("udplan: accepting push: %w", err)
		}
		if s.Sink != nil {
			s.Sink(core.ReqOf(cfg, true), res.Data)
		}
	} else {
		if _, err := core.RunSender(e, cfg); err != nil {
			return fmt.Errorf("udplan: serving pull: %w", err)
		}
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	return nil
}
