// Package udplan runs the protocol engines of internal/core over real UDP
// sockets, playing the role of the paper's standalone measurement programs
// (§2.1.1): the same sender/receiver code that executes in virtual time on
// the simulator executes here against the operating system's network stack.
//
// UDP gives exactly the substrate the paper's data-link-level experiments
// assume: unreliable, unordered-but-practically-ordered datagram delivery
// with no protocol machinery on top. All reliability comes from
// internal/core. Hostile network conditions — loss, reordering, duplication,
// bit corruption, jitter — can be injected deterministically on either side
// (MangleTx/MangleRx, or SetAdversary for a seeded params.Adversary) for
// testing recovery paths on a lossless loopback.
package udplan

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// MaxDatagram bounds receive buffers; it comfortably exceeds the paper's
// 1536-byte maximum packet (§2.1.2).
const MaxDatagram = 2048

// Endpoint adapts a packet socket to core.Env. It must be used from a
// single goroutine, like every Env.
type Endpoint struct {
	conn  net.PacketConn
	peer  net.Addr
	start time.Time
	rbuf  [MaxDatagram]byte
	wbuf  []byte

	// MangleTx and MangleRx, when non-nil, judge every packet before the
	// socket write / after the socket read, and the endpoint implements the
	// verdict: drops, single-bit corruption of the encoded datagram (the
	// peer's checksum then rejects it — the real codec fires end to end),
	// duplicate writes, reordering holds and jitter sleeps. They exist to
	// exercise recovery machinery deterministically on a lossless loopback;
	// SetAdversary installs a seeded params.Adversary on both directions.
	//
	// A held Tx datagram is released once Mangle.Hold later writes have
	// overtaken it, or when the endpoint turns to listen (a blocking Recv;
	// zero-timeout polls do not count) or closes — the moment a real
	// interface's queue would drain. A held Rx packet is released after
	// Hold later arrivals, or when a blocking read times out with the hold
	// still pending (a late arrival instead of a deadline).
	MangleTx func(*wire.Packet) params.Mangle
	MangleRx func(*wire.Packet) params.Mangle

	txHeld  []heldFrame
	rxHeld  []heldFrame
	rxReady []*wire.Packet

	// LockPeer, when set, discards datagrams from other sources once a
	// peer is known.
	LockPeer bool

	// LearnReqOnly restricts peer learning to TypeReq packets. Servers use
	// this so stragglers from a finished transfer cannot claim the
	// endpoint before the next client's request arrives.
	LearnReqOnly bool

	// PacketGap paces data packets: Send sleeps this long after writing a
	// TypeData packet. The paper assumes "source and destination machine
	// are more or less matched in speed" (§1); on a modern loopback the
	// sender can outrun kernel socket buffers by orders of magnitude, and
	// pacing restores the matched-speed premise for large blasts.
	PacketGap time.Duration
}

// heldFrame is one packet the endpoint's adversary is holding back for
// reordering: an encoded datagram on the transmit side, a decoded packet on
// the receive side.
type heldFrame struct {
	data      []byte
	pkt       *wire.Packet
	remaining int
}

// NewEndpoint wraps an open socket. peer may be nil for servers; it is
// learned from the first valid datagram.
func NewEndpoint(conn net.PacketConn, peer net.Addr) *Endpoint {
	return &Endpoint{conn: conn, peer: peer, start: time.Now()}
}

// SetAdversary installs one seeded hostile-network model on both directions
// of the endpoint. Installing it on a single endpoint of a pair mirrors the
// simulator's network-level adversary: that endpoint sees every packet of
// the transfer exactly once.
func (e *Endpoint) SetAdversary(adv params.Adversary, seed int64) error {
	if err := adv.Validate(); err != nil {
		return err
	}
	j := adv.Mangler(seed)
	e.MangleTx, e.MangleRx = j, j
	return nil
}

// Dial opens an ephemeral UDP socket talking to remote.
func Dial(remote string) (*Endpoint, error) {
	raddr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return nil, fmt.Errorf("udplan: resolve %q: %w", remote, err)
	}
	local := ":0"
	if raddr.IP != nil && raddr.IP.IsLoopback() {
		local = "127.0.0.1:0"
	}
	conn, err := net.ListenPacket("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udplan: listen: %w", err)
	}
	e := NewEndpoint(conn, raddr)
	e.LockPeer = true
	return e, nil
}

// Close flushes any held transmissions and releases the underlying socket.
func (e *Endpoint) Close() error {
	e.flushTx()
	return e.conn.Close()
}

// LocalAddr returns the socket's address.
func (e *Endpoint) LocalAddr() net.Addr { return e.conn.LocalAddr() }

// Peer returns the current peer (nil until learned).
func (e *Endpoint) Peer() net.Addr { return e.peer }

// ResetPeer forgets the current peer so a server endpoint can accept its
// next client.
func (e *Endpoint) ResetPeer() { e.peer = nil }

// Now returns the wall-clock time since the endpoint was created.
func (e *Endpoint) Now() time.Duration { return time.Since(e.start) }

// Compute is a no-op: real work takes real time.
func (e *Endpoint) Compute(time.Duration) {}

// Send encodes and transmits one packet to the peer, applying the MangleTx
// verdict on the way out. PacketGap pacing applies to every data packet
// regardless of the verdict — the sender spends the slot whether or not the
// adversary lets the frame through.
func (e *Endpoint) Send(p *wire.Packet) error {
	err := e.sendMangled(p)
	if err == nil && e.PacketGap > 0 && p.Type == wire.TypeData {
		time.Sleep(e.PacketGap)
	}
	return err
}

func (e *Endpoint) sendMangled(p *wire.Packet) error {
	if e.peer == nil {
		return errors.New("udplan: no peer known")
	}
	var m params.Mangle
	if e.MangleTx != nil {
		m = e.MangleTx(p)
	}
	// Every judged packet overtakes the held transmissions — including one
	// that is itself dropped, corrupted or held — mirroring the simulator,
	// where reaching the adversary is what counts as overtaking. Matured
	// holds go on the wire after the current packet.
	if m.Drop || m.IfaceDrop {
		return e.passTx() // injected loss: silently dropped, like a wire error
	}
	buf, err := p.Encode(e.wbuf[:0])
	if err != nil {
		return err
	}
	e.wbuf = buf[:0]
	if m.Corrupt {
		// Mangle the real datagram: the peer's decode rejects it on the
		// checksum, exactly as a line hit would play out.
		params.FlipBit(buf, m.CorruptBit)
	}
	if m.Delay > 0 && m.Hold == 0 { // a hold already delays (see Mangle.Delay)
		time.Sleep(m.Delay)
	}
	if m.Hold > 0 {
		// A duplicate of a held packet still goes out now, overtaking its
		// held twin, and — as on the simulator — ahead of any holds this
		// arrival matures. The new hold must not overtake itself, so it is
		// appended after passTx.
		if m.Duplicate {
			if _, err := e.conn.WriteTo(buf, e.peer); err != nil {
				return err
			}
		}
		if err := e.passTx(); err != nil {
			return err
		}
		e.txHeld = append(e.txHeld, heldFrame{
			data:      append([]byte(nil), buf...),
			remaining: m.Hold,
		})
		return nil
	}
	if _, err := e.conn.WriteTo(buf, e.peer); err != nil {
		return err
	}
	if m.Duplicate {
		if _, err := e.conn.WriteTo(buf, e.peer); err != nil {
			return err
		}
	}
	return e.passTx()
}

// passTx records one datagram overtaking the held transmissions and writes
// out any whose reorder depth is now satisfied.
func (e *Endpoint) passTx() error {
	if len(e.txHeld) == 0 {
		return nil
	}
	keep := e.txHeld[:0]
	var firstErr error
	for i := range e.txHeld {
		h := e.txHeld[i]
		h.remaining--
		if h.remaining <= 0 {
			if _, err := e.conn.WriteTo(h.data, e.peer); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			keep = append(keep, h)
		}
	}
	e.txHeld = keep
	return firstErr
}

// flushTx releases every held transmission, in hold order: the sender has
// stopped transmitting (it is turning to listen, or closing), so a real
// interface's queue would drain now.
func (e *Endpoint) flushTx() error {
	var firstErr error
	for _, h := range e.txHeld {
		if e.peer == nil {
			break
		}
		if _, err := e.conn.WriteTo(h.data, e.peer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.txHeld = e.txHeld[:0]
	return firstErr
}

// SendAsync is Send: UDP writes do not wait for transmission anyway.
func (e *Endpoint) SendAsync(p *wire.Packet) error { return e.Send(p) }

// Recv returns the next valid packet, applying the MangleRx verdict to every
// arrival. timeout < 0 waits forever. Malformed datagrams and (with
// LockPeer) foreign sources are skipped. On expiry the error satisfies
// errors.Is(err, os.ErrDeadlineExceeded).
func (e *Endpoint) Recv(timeout time.Duration) (*wire.Packet, error) {
	// A blocking listen means the sender has turned to listen: its interface
	// queue drains, releasing any transmissions held for reordering. A
	// zero-timeout poll (sliding window draining acks between sends) is not
	// a turn — holds keep waiting for overtaking traffic, as on the
	// simulator.
	if timeout != 0 {
		if err := e.flushTx(); err != nil {
			return nil, err
		}
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := e.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	for {
		// Matured holds and injected duplicates deliver before the socket
		// is read again.
		if len(e.rxReady) > 0 {
			return e.popReady(), nil
		}
		n, addr, err := e.conn.ReadFrom(e.rbuf[:])
		if err != nil {
			if timeout != 0 && len(e.rxHeld) > 0 && core.IsTimeout(err) {
				// A blocking listen went quiet with packets still held:
				// they arrive late instead of never (holds delay, they do
				// not lose). Zero-timeout polls do not release holds.
				for _, h := range e.rxHeld {
					e.rxReady = append(e.rxReady, h.pkt)
				}
				e.rxHeld = e.rxHeld[:0]
				return e.popReady(), nil
			}
			return nil, err
		}
		pkt, derr := wire.Decode(e.rbuf[:n])
		if derr != nil {
			continue // not ours / corrupted: the checksum did its job
		}
		if e.peer == nil {
			if e.LearnReqOnly && pkt.Type != wire.TypeReq {
				continue // unverifiable straggler
			}
			e.peer = addr
		} else if e.LockPeer && addr.String() != e.peer.String() {
			continue
		}
		var m params.Mangle
		if e.MangleRx != nil {
			m = e.MangleRx(pkt)
		}
		// As on the transmit side, every judged arrival overtakes the held
		// receptions, whatever its own verdict.
		if m.Drop || m.IfaceDrop {
			e.passRx()
			continue
		}
		if m.Corrupt {
			// Mangle the raw datagram and re-run the real codec: the flip
			// must evade the checksum to survive.
			params.FlipBit(e.rbuf[:n], m.CorruptBit)
			mangled, derr := wire.Decode(e.rbuf[:n])
			if derr != nil {
				e.passRx()
				continue
			}
			pkt = mangled
		}
		if m.Delay > 0 && m.Hold == 0 { // a hold already delays
			time.Sleep(m.Delay)
		}
		out := pkt.Clone() // rbuf is reused; detach
		if m.Duplicate {
			e.rxReady = append(e.rxReady, out.Clone())
		}
		if m.Hold > 0 {
			// Existing holds are overtaken first; the new hold must not
			// overtake itself.
			e.passRx()
			e.rxHeld = append(e.rxHeld, heldFrame{pkt: out, remaining: m.Hold})
			continue
		}
		e.passRx()
		return out, nil
	}
}

// popReady returns the oldest packet queued for delivery (matured holds and
// injected duplicates).
func (e *Endpoint) popReady() *wire.Packet {
	pkt := e.rxReady[0]
	e.rxReady = append(e.rxReady[:0], e.rxReady[1:]...)
	return pkt
}

// passRx records one arrival overtaking the held receptions; matured holds
// queue for delivery on the next Recv calls.
func (e *Endpoint) passRx() {
	if len(e.rxHeld) == 0 {
		return
	}
	keep := e.rxHeld[:0]
	for i := range e.rxHeld {
		h := e.rxHeld[i]
		h.remaining--
		if h.remaining <= 0 {
			e.rxReady = append(e.rxReady, h.pkt)
		} else {
			keep = append(keep, h)
		}
	}
	e.rxHeld = keep
}

// SeededDrop returns a deterministic mangle hook losing packets with
// probability p. Each returned function owns its generator, so install
// separate instances for Tx and Rx.
func SeededDrop(p float64, seed int64) func(*wire.Packet) params.Mangle {
	rng := rand.New(rand.NewSource(seed))
	return func(*wire.Packet) params.Mangle {
		return params.Mangle{Drop: rng.Float64() < p}
	}
}

// Push transfers cfg.Payload to the peer: announce, wait for the go-ahead,
// blast (or whatever cfg.Protocol says).
func Push(e *Endpoint, cfg core.Config) (core.SendResult, error) {
	return core.Push(e, cfg)
}

// Pull requests the configured transfer from the peer and receives it.
func Pull(e *Endpoint, cfg core.Config) (core.RecvResult, error) {
	return core.Request(e, cfg)
}

// Server answers transfer requests on one socket, serially (the paper's
// world is two matched machines; a transfer in progress owns the link).
type Server struct {
	// Data, when non-nil, satisfies pull requests (MoveFrom): it returns
	// the bytes to blast back for an accepted request.
	Data func(wire.Req) ([]byte, bool)
	// Sink, when non-nil, accepts push requests (MoveTo) and receives the
	// completed transfer.
	Sink func(wire.Req, []byte)
	// Idle bounds how long Run waits for the next request; zero waits
	// forever (until the socket closes).
	Idle time.Duration

	conn net.PacketConn

	mu      sync.Mutex
	served  int
	lastErr error
}

// NewServer wraps a socket in a transfer server.
func NewServer(conn net.PacketConn) *Server { return &Server{conn: conn} }

// Served reports how many transfers completed successfully.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Run serves requests until the socket is closed (or Idle expires).
// It returns nil on a clean close.
func (s *Server) Run() error {
	for {
		if err := s.serveOne(); err != nil {
			if core.IsTimeout(err) {
				return nil // idle bound reached
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// serveOne accepts and completes a single transfer.
func (s *Server) serveOne() error {
	e := NewEndpoint(s.conn, nil)
	e.LockPeer = true
	e.LearnReqOnly = true
	idle := time.Duration(-1)
	if s.Idle > 0 {
		idle = s.Idle
	}
	cfg, err := core.ServeOnce(e, idle, func(r wire.Req) (core.Config, bool) {
		c := core.ConfigOf(0, r)
		// Wall-clock linger/idle bounds: the simulation defaults are sized
		// for free virtual time and would stall a serial server between
		// clients.
		c.Linger = 2*c.RetransTimeout + 100*time.Millisecond
		c.ReceiverIdle = 8*c.RetransTimeout + 2*time.Second
		if r.Push {
			if s.Sink == nil {
				return core.Config{}, false
			}
			return c, true
		}
		if s.Data == nil {
			return core.Config{}, false
		}
		payload, ok := s.Data(r)
		if !ok || len(payload) != c.Bytes {
			return core.Config{}, false
		}
		c.Payload = payload
		return c, true
	})
	if err != nil {
		return err
	}
	if cfg.Payload == nil {
		// Push: receive the transfer.
		res, err := core.AcceptPush(e, cfg)
		if err != nil {
			return fmt.Errorf("udplan: accepting push: %w", err)
		}
		if s.Sink != nil {
			s.Sink(core.ReqOf(cfg, true), res.Data)
		}
	} else {
		if _, err := core.RunSender(e, cfg); err != nil {
			return fmt.Errorf("udplan: serving pull: %w", err)
		}
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	return nil
}
