// Package udplan runs the protocol engines of internal/core over real UDP
// sockets, playing the role of the paper's standalone measurement programs
// (§2.1.1): the same sender/receiver code that executes in virtual time on
// the simulator executes here against the operating system's network stack.
//
// UDP gives exactly the substrate the paper's data-link-level experiments
// assume: unreliable, unordered-but-practically-ordered datagram delivery
// with no protocol machinery on top. All reliability comes from
// internal/core. Hostile network conditions — loss, reordering, duplication,
// bit corruption, jitter — can be injected deterministically on either side
// (MangleTx/MangleRx, or SetAdversary for a seeded params.Adversary) for
// testing recovery paths on a lossless loopback.
//
// The hot path batches syscalls: with SetBatch, outbound data packets are
// encoded into a reusable frame ring (wire.EncodeInto, no allocation) and
// flushed with one sendmmsg per batch, and each blocking receive
// opportunistically drains the socket with recvmmsg — cutting syscalls per
// blast window from W to roughly ⌈W/batch⌉ on Linux, with a portable
// single-datagram fallback elsewhere. Adversary semantics are preserved
// bit-for-bit: every packet is judged before it enters the batch, in send
// order, exactly as on the unbatched path.
package udplan

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"syscall"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// MaxDatagram is the default endpoint MTU; it comfortably exceeds the
// paper's 1536-byte maximum packet (§2.1.2). SetMTU raises it for
// jumbo-frame experiments.
const MaxDatagram = 2048

// MaxMTU bounds SetMTU: the largest UDP/IPv4 datagram.
const MaxMTU = 65507

// ErrMTU reports a transfer configuration whose packets cannot fit the
// endpoint's datagram size.
var ErrMTU = errors.New("udplan: packet exceeds endpoint MTU")

// Endpoint adapts a packet socket to core.Env. It must be used from a
// single goroutine, like every Env.
type Endpoint struct {
	conn    net.PacketConn
	raw     syscall.RawConn // non-nil when the socket supports raw batched I/O
	peer    net.Addr
	peerKey string
	start   time.Time
	mtu     int
	rbuf    []byte
	wbuf    []byte
	keybuf  [addrKeyLen]byte

	// Batched I/O state (nil when batching is off, the default).
	tx      *txBatch
	rx      *rxBatch
	msender mmsgSender
	gsender gsoSender
	tier    Tier // active transmit tier, probed by SetBatch
	gro     bool // receive side is UDP_GRO-coalesced (GSO tier only)

	// MaxTier, when non-zero, caps the datapath tier SetBatch may probe up
	// to (the -tier flags of blastd/blastcp/lanbench land here). Set it
	// before SetBatch. The process-wide BLASTLAN_TIER environment override
	// applies on top, whichever is lower.
	MaxTier Tier

	// MangleTx and MangleRx, when non-nil, judge every packet before the
	// socket write / after the socket read, and the endpoint implements the
	// verdict: drops, single-bit corruption of the encoded datagram (the
	// peer's checksum then rejects it — the real codec fires end to end),
	// duplicate writes, reordering holds and jitter sleeps. They exist to
	// exercise recovery machinery deterministically on a lossless loopback;
	// SetAdversary installs a seeded params.Adversary on both directions.
	//
	// A held Tx datagram is released once Mangle.Hold later writes have
	// overtaken it, or when the endpoint turns to listen (a blocking Recv;
	// zero-timeout polls do not count) or closes — the moment a real
	// interface's queue would drain. A held Rx packet is released after
	// Hold later arrivals, or when a blocking read times out with the hold
	// still pending (a late arrival instead of a deadline).
	//
	// On the batched path the verdict is judged before the frame enters the
	// batch queue, in send order, so one seeded script produces identical
	// protocol behaviour at every batch size.
	MangleTx func(*wire.Packet) params.Mangle
	MangleRx func(*wire.Packet) params.Mangle

	txHeld      []heldFrame
	rxHeld      []heldFrame
	rxReady     []*wire.Packet
	rxReadyHead int         // index-advancing ring head: pops are O(1), not a slice delete
	rxPkt       wire.Packet // reusable decode target: one live packet per Env, per the Recv contract

	// LockPeer, when set, discards datagrams from other sources once a
	// peer is known.
	LockPeer bool

	// LearnReqOnly restricts peer learning to TypeReq packets. Servers use
	// this so stragglers from a finished transfer cannot claim the
	// endpoint before the next client's request arrives.
	LearnReqOnly bool

	// PacketGap paces data packets: Send sleeps this long after writing a
	// TypeData packet. The paper assumes "source and destination machine
	// are more or less matched in speed" (§1); on a modern loopback the
	// sender can outrun kernel socket buffers by orders of magnitude, and
	// pacing restores the matched-speed premise for large blasts.
	PacketGap time.Duration

	pace pacer // amortized sleep state for PacketGap actuation
}

// heldFrame is one packet the endpoint's adversary is holding back for
// reordering: an encoded datagram on the transmit side, a decoded packet on
// the receive side.
type heldFrame struct {
	data      []byte
	pkt       *wire.Packet
	remaining int
}

// NewEndpoint wraps an open socket. peer may be nil for servers; it is
// learned from the first valid datagram.
func NewEndpoint(conn net.PacketConn, peer net.Addr) *Endpoint {
	e := &Endpoint{
		conn:  conn,
		start: time.Now(),
		mtu:   MaxDatagram,
		rbuf:  make([]byte, MaxDatagram),
		tier:  TierWriteTo,
	}
	e.raw = rawConnOf(conn)
	if peer != nil {
		e.setPeer(peer)
	}
	return e
}

// SetAdversary installs one seeded hostile-network model on both directions
// of the endpoint. Installing it on a single endpoint of a pair mirrors the
// simulator's network-level adversary: that endpoint sees every packet of
// the transfer exactly once.
func (e *Endpoint) SetAdversary(adv params.Adversary, seed int64) error {
	if err := adv.Validate(); err != nil {
		return err
	}
	j := adv.Mangler(seed)
	e.MangleTx, e.MangleRx = j, j
	return nil
}

// SetMTU resizes the endpoint's maximum datagram (receive buffers and
// batch frame slots) for jumbo-frame experiments. Call it before the
// transfer starts. Without it, an oversized configuration would silently
// truncate on receive — the reader's buffer clips the datagram and the
// checksum rejects every packet, an undebuggable stall; ValidateConfig
// turns that into a clear error instead.
func (e *Endpoint) SetMTU(n int) error {
	if n < wire.HeaderSize+1 || n > MaxMTU {
		return fmt.Errorf("udplan: MTU %d out of range [%d, %d]", n, wire.HeaderSize+1, MaxMTU)
	}
	// Frames already queued (possibly a GSO superbuffer in formation) were
	// encoded against the old slot geometry: they must reach the wire
	// before the rings are rebuilt, and a flush failure must surface here
	// rather than vanish into the resize.
	if err := e.FlushBatch(); err != nil {
		return err
	}
	e.mtu = n
	e.rbuf = make([]byte, n)
	if e.tx != nil {
		e.SetBatch(len(e.tx.frames)) // re-size the rings to the new MTU
	}
	return nil
}

// MTU returns the endpoint's maximum datagram size.
func (e *Endpoint) MTU() int { return e.mtu }

// SetConnBuffers raises the kernel send and receive buffers of a UDP
// socket (no-op on sockets without buffer control). Large blast windows
// need this: a ~1 KB datagram charges ~2-3 KB of skb truesize against
// SO_RCVBUF, so the ~208 KB default silently drops the tail of any window
// beyond ~90 packets — a Tr stall per window. Shared by endpoints,
// daemons and the bench harness so the sizing rationale lives once.
func SetConnBuffers(conn net.PacketConn, bytes int) {
	if uc, ok := conn.(*net.UDPConn); ok {
		uc.SetReadBuffer(bytes)
		uc.SetWriteBuffer(bytes)
	}
}

// SetSocketBuffers raises the kernel buffers of the endpoint's socket; see
// SetConnBuffers.
func (e *Endpoint) SetSocketBuffers(bytes int) { SetConnBuffers(e.conn, bytes) }

// SetBatch enables batched syscall I/O and probes the best datapath tier
// the socket supports (GSO superbuffers → sendmmsg → WriteTo loop; see
// Tier): up to n outbound frames are queued in a frame ring and flushed
// with a single sendmsg+UDP_SEGMENT or sendmmsg (FlushBatch, a full ring, a
// blocking Recv, a non-data or FlagLast packet, or Close), and each
// blocking receive drains already-arrived datagrams in one recvmmsg — on
// the GSO tier with UDP_GRO enabled, so a whole window can arrive as one
// coalesced superbuffer split back into frames in user space. n <= 1
// restores the single-syscall path. On platforms without the fast paths the
// queue still forms and flushes as a WriteTo loop, preserving semantics.
//
// SetBatch is a configuration call: make it before the transfer starts
// (queued outbound frames are flushed first, but rebuilding the receive
// ring discards any drained-but-undelivered datagrams — between transfers
// that is nothing). Mid-transfer batch adaptation goes through
// SetBatchLimit, which moves only the flush threshold.
func (e *Endpoint) SetBatch(n int) {
	if e.tx != nil {
		e.tx.Flush() // socket errors resurface on the next Send/Recv
	}
	e.tier = pickTxTier(e.raw, n, e.MaxTier)
	wantGRO := e.tier >= TierGSO
	switch {
	case wantGRO && !e.gro:
		// GRO may be refused (UDP_SEGMENT without UDP_GRO, kernels
		// 4.18–4.20): the transmit side still rides GSO, receives stay plain
		// datagrams — the kernel segments inbound GSO skbs for non-GRO
		// sockets.
		e.gro = setGRO(e.raw, true)
	case !wantGRO && e.gro:
		// GRO is sticky on the socket: left on, a later plain ReadFrom
		// would misread a coalesced superbuffer as one giant datagram.
		setGRO(e.raw, false)
		e.gro = false
	}
	if n <= 1 {
		e.tx, e.rx = nil, nil
		return
	}
	e.tx = newTxBatch(n, e.mtu, e.flushFrames)
	e.rx = newRxBatch(n, e.mtu, e.gro)
}

// Tier reports the active transmit tier of the batched datapath
// (TierWriteTo when batching is off). Probed by SetBatch.
func (e *Endpoint) Tier() Tier { return e.tier }

// GRO reports whether the receive side is UDP_GRO-coalesced.
func (e *Endpoint) GRO() bool { return e.gro }

// Batch reports the configured batch size (1 when batching is off).
func (e *Endpoint) Batch() int {
	if e.tx == nil {
		return 1
	}
	return len(e.tx.frames)
}

// SetPacketGap implements core.Pacer: the adaptive controller's pacing
// actuation (see Endpoint.PacketGap).
func (e *Endpoint) SetPacketGap(d time.Duration) { e.PacketGap = d }

// Gap implements core.Pacer: the current pacing gap, which the adaptive
// sender snapshots so it can restore a user-configured gap afterwards.
func (e *Endpoint) Gap() time.Duration { return e.PacketGap }

// BatchLimit implements core.BatchLimiter: the effective queued-frames
// flush threshold (1 when batching is off).
func (e *Endpoint) BatchLimit() int {
	if e.tx == nil {
		return 1
	}
	return e.tx.flushAt()
}

// SetBatchLimit implements core.BatchLimiter: the adaptive controller's
// batch actuation. The ring keeps its configured size — only the flush
// threshold moves, so mid-transfer adjustments allocate nothing — and
// frames already queued beyond the new threshold flush immediately. A
// no-op when batching is off.
func (e *Endpoint) SetBatchLimit(n int) {
	if e.tx == nil {
		return
	}
	e.tx.setLimit(n) // socket errors resurface on the next Send/Recv
}

// FlushUnit implements core.BatchGeometry: the frames one flush syscall
// carries as a single wire unit — a superbuffer's segment capacity at the
// GSO tier, 1 on the frame-at-a-time tiers (see flushUnitOf).
func (e *Endpoint) FlushUnit() int {
	if e.tx == nil {
		return 1
	}
	return flushUnitOf(e.tier, len(e.tx.frames))
}

// ValidateConfig checks that the configured transfer's packets fit the
// endpoint's datagram size, returning a clear error instead of the silent
// truncating receive an oversized chunk would otherwise cause.
func (e *Endpoint) ValidateConfig(cfg core.Config) error {
	return validateConfigMTU(cfg, e.mtu)
}

// FlushBatch implements core.BatchFlusher: every queued frame goes on the
// wire, in queue order.
func (e *Endpoint) FlushBatch() error {
	if e.tx == nil {
		return nil
	}
	return e.tx.Flush()
}

// PacketConsumedOnSend implements core.PacketReuser: Send encodes the packet
// before returning, so senders may reuse one Packet value.
func (e *Endpoint) PacketConsumedOnSend() {}

// flushFrames writes frames[0:n] to the peer through the endpoint's active
// datapath tier (GSO superbuffer, sendmmsg or WriteTo loop).
func (e *Endpoint) flushFrames(frames [][]byte, lens []int, n int) error {
	return flushFramesTiered(e.tier, e.raw, &e.gsender, &e.msender, e.conn, e.peer, frames, lens, n)
}

// Dial opens an ephemeral UDP socket talking to remote.
func Dial(remote string) (*Endpoint, error) {
	raddr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return nil, fmt.Errorf("udplan: resolve %q: %w", remote, err)
	}
	local := ":0"
	if raddr.IP != nil && raddr.IP.IsLoopback() {
		local = "127.0.0.1:0"
	}
	conn, err := net.ListenPacket("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udplan: listen: %w", err)
	}
	e := NewEndpoint(conn, raddr)
	e.LockPeer = true
	return e, nil
}

// Close flushes the batch queue and any held transmissions, then releases
// the underlying socket.
func (e *Endpoint) Close() error {
	e.FlushBatch()
	e.flushTx()
	return e.conn.Close()
}

// LocalAddr returns the socket's address.
func (e *Endpoint) LocalAddr() net.Addr { return e.conn.LocalAddr() }

// Peer returns the current peer (nil until learned).
func (e *Endpoint) Peer() net.Addr { return e.peer }

// ResetPeer forgets the current peer so a server endpoint can accept its
// next client.
func (e *Endpoint) ResetPeer() { e.peer, e.peerKey = nil, "" }

// setPeer records the peer and its canonical comparison key.
func (e *Endpoint) setPeer(a net.Addr) {
	e.peer = a
	e.peerKey = addrKey(a)
}

// fromPeer reports whether an arrival came from the locked peer. name, when
// non-nil, is the raw sockaddr of a batch-drained datagram; it is compared
// without constructing a net.Addr (no allocation on the hot receive path).
func (e *Endpoint) fromPeer(addr net.Addr, name []byte) bool {
	if name != nil {
		if !keyFromRaw(&e.keybuf, name) {
			return false
		}
		return string(e.keybuf[:]) == e.peerKey
	}
	if ua, ok := addr.(*net.UDPAddr); ok {
		keyFromUDP(&e.keybuf, ua)
		return string(e.keybuf[:]) == e.peerKey
	}
	return addr.String() == e.peerKey
}

// Now returns the wall-clock time since the endpoint was created.
func (e *Endpoint) Now() time.Duration { return time.Since(e.start) }

// Compute is a no-op: real work takes real time.
func (e *Endpoint) Compute(time.Duration) {}

// Send encodes and transmits one packet to the peer, applying the MangleTx
// verdict on the way out. PacketGap pacing applies to every data packet
// regardless of the verdict — the sender spends the slot whether or not the
// adversary lets the frame through.
func (e *Endpoint) Send(p *wire.Packet) error {
	err := e.sendMangled(p)
	if err == nil && e.PacketGap > 0 && p.Type == wire.TypeData {
		// Pacing means spacing on the wire: the pacer flushes the batch
		// ring before it sleeps, and amortizes sub-quantum gaps so the
		// actuation cost tracks the nominal rate (see pace.go).
		if ferr := e.pace.owe(e.PacketGap, e.FlushBatch); ferr != nil {
			return ferr
		}
	}
	return err
}

func (e *Endpoint) sendMangled(p *wire.Packet) error {
	if e.peer == nil {
		return errors.New("udplan: no peer known")
	}
	var m params.Mangle
	if e.MangleTx != nil {
		m = e.MangleTx(p)
	}
	// Every judged packet overtakes the held transmissions — including one
	// that is itself dropped, corrupted or held — mirroring the simulator,
	// where reaching the adversary is what counts as overtaking. Matured
	// holds go on the wire after the current packet.
	if m.Drop || m.IfaceDrop {
		return e.passTx() // injected loss: silently dropped, like a wire error
	}
	// Encode into the next frame-ring slot (batched) or the reusable
	// scratch buffer (single-syscall path).
	var buf []byte
	if e.tx != nil {
		n, err := p.EncodeInto(e.tx.slot())
		if err != nil {
			return err
		}
		buf = e.tx.slot()[:n]
	} else {
		b, err := p.Encode(e.wbuf[:0])
		if err != nil {
			return err
		}
		e.wbuf = b[:0]
		buf = b
	}
	if m.Corrupt {
		// Mangle the real datagram: the peer's decode rejects it on the
		// checksum, exactly as a line hit would play out.
		params.FlipBit(buf, m.CorruptBit)
	}
	if m.Delay > 0 && m.Hold == 0 { // a hold already delays (see Mangle.Delay)
		time.Sleep(m.Delay)
	}
	if m.Hold > 0 {
		held := append([]byte(nil), buf...)
		// A duplicate of a held packet still goes out now, overtaking its
		// held twin, and — as on the simulator — ahead of any holds this
		// arrival matures. The new hold must not overtake itself, so it is
		// appended after passTx.
		if m.Duplicate {
			if err := e.emitCurrent(buf); err != nil {
				return err
			}
		}
		if err := e.passTx(); err != nil {
			return err
		}
		e.txHeld = append(e.txHeld, heldFrame{data: held, remaining: m.Hold})
		return e.maybeFlushControl(p)
	}
	if err := e.emitCurrent(buf); err != nil {
		return err
	}
	if m.Duplicate {
		if err := e.emitCopy(buf); err != nil {
			return err
		}
	}
	if err := e.passTx(); err != nil {
		return err
	}
	return e.maybeFlushControl(p)
}

// emitCurrent puts the just-encoded frame on the wire: it commits the
// current ring slot when batching, or writes the scratch buffer directly.
func (e *Endpoint) emitCurrent(buf []byte) error {
	if e.tx != nil {
		return e.tx.commit(len(buf))
	}
	_, err := e.conn.WriteTo(buf, e.peer)
	return err
}

// emitCopy puts a copy of an arbitrary encoded frame on the wire (injected
// duplicates, matured reorder holds), preserving queue order when batching.
func (e *Endpoint) emitCopy(buf []byte) error {
	if e.tx != nil {
		return e.tx.enqueueCopy(buf)
	}
	_, err := e.conn.WriteTo(buf, e.peer)
	return err
}

// maybeFlushControl flushes the batch queue behind control traffic and the
// reliable last packet of a window: only unreliable mid-window data may
// linger in the ring, so acknowledgement exchanges keep their single-packet
// latency.
func (e *Endpoint) maybeFlushControl(p *wire.Packet) error {
	if e.tx == nil || !flushesImmediately(p) {
		return nil
	}
	return e.tx.Flush()
}

// passTx records one datagram overtaking the held transmissions and writes
// out any whose reorder depth is now satisfied. The in-place filter is a
// single linear pass per overtake — no per-element slice deletes.
func (e *Endpoint) passTx() error {
	if len(e.txHeld) == 0 {
		return nil
	}
	keep := e.txHeld[:0]
	var firstErr error
	for i := range e.txHeld {
		h := e.txHeld[i]
		h.remaining--
		if h.remaining <= 0 {
			if err := e.emitCopy(h.data); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			keep = append(keep, h)
		}
	}
	e.txHeld = keep
	return firstErr
}

// flushTx releases every held transmission, in hold order: the sender has
// stopped transmitting (it is turning to listen, or closing), so a real
// interface's queue would drain now.
func (e *Endpoint) flushTx() error {
	var firstErr error
	for _, h := range e.txHeld {
		if e.peer == nil {
			break
		}
		if _, err := e.conn.WriteTo(h.data, e.peer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.txHeld = e.txHeld[:0]
	return firstErr
}

// SendAsync is Send: UDP writes do not wait for transmission anyway.
func (e *Endpoint) SendAsync(p *wire.Packet) error { return e.Send(p) }

// Recv returns the next valid packet, applying the MangleRx verdict to every
// arrival. timeout < 0 waits forever. Malformed datagrams and (with
// LockPeer) foreign sources are skipped. On expiry the error satisfies
// errors.Is(err, os.ErrDeadlineExceeded).
func (e *Endpoint) Recv(timeout time.Duration) (*wire.Packet, error) {
	// Anything queued for batch transmission is committed traffic: it must
	// reach the wire before the endpoint waits for responses to it.
	if err := e.FlushBatch(); err != nil {
		return nil, err
	}
	// A blocking listen means the sender has turned to listen: its interface
	// queue drains, releasing any transmissions held for reordering. A
	// zero-timeout poll (sliding window draining acks between sends) is not
	// a turn — holds keep waiting for overtaking traffic, as on the
	// simulator.
	if timeout != 0 {
		if err := e.flushTx(); err != nil {
			return nil, err
		}
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := e.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	for {
		// Matured holds and injected duplicates deliver before the socket
		// is read again.
		if e.readyCount() > 0 {
			return e.popReady(), nil
		}
		data, addr, name, err := e.readDatagram()
		if err != nil {
			if timeout != 0 && len(e.rxHeld) > 0 && core.IsTimeout(err) {
				// A blocking listen went quiet with packets still held:
				// they arrive late instead of never (holds delay, they do
				// not lose). Zero-timeout polls do not release holds.
				for _, h := range e.rxHeld {
					e.rxReady = append(e.rxReady, h.pkt)
				}
				e.rxHeld = e.rxHeld[:0]
				return e.popReady(), nil
			}
			return nil, err
		}
		pkt := &e.rxPkt
		if derr := wire.DecodeInto(pkt, data); derr != nil {
			continue // not ours / corrupted: the checksum did its job
		}
		if e.peer == nil {
			if e.LearnReqOnly && pkt.Type != wire.TypeReq {
				continue // unverifiable straggler
			}
			if addr == nil {
				addr = rawToUDPAddr(name)
				if addr == nil {
					continue
				}
			}
			e.setPeer(addr)
		} else if e.LockPeer && !e.fromPeer(addr, name) {
			continue
		}
		var m params.Mangle
		if e.MangleRx != nil {
			m = e.MangleRx(pkt)
		}
		// As on the transmit side, every judged arrival overtakes the held
		// receptions, whatever its own verdict.
		if m.Drop || m.IfaceDrop {
			e.passRx()
			continue
		}
		if m.Corrupt {
			// Mangle the raw datagram and re-run the real codec: the flip
			// must evade the checksum to survive.
			params.FlipBit(data, m.CorruptBit)
			if derr := wire.DecodeInto(pkt, data); derr != nil {
				e.passRx()
				continue
			}
		}
		if m.Delay > 0 && m.Hold == 0 { // a hold already delays
			time.Sleep(m.Delay)
		}
		if m.Duplicate || m.Hold > 0 {
			// Queued across Recv calls: detach from the reused buffers.
			out := pkt.Clone()
			if m.Duplicate {
				e.rxReady = append(e.rxReady, out.Clone())
			}
			if m.Hold > 0 {
				// Existing holds are overtaken first; the new hold must not
				// overtake itself.
				e.passRx()
				e.rxHeld = append(e.rxHeld, heldFrame{pkt: out, remaining: m.Hold})
				continue
			}
			e.passRx()
			return out, nil
		}
		e.passRx()
		// The packet aliases this endpoint's receive buffers (and the one
		// decode value), all stable until the next Recv — the same contract
		// every Env in this repository provides. No per-packet allocation.
		return pkt, nil
	}
}

// readDatagram returns the next raw datagram: a batch-drained one if
// pending, otherwise one blocking socket read followed (when batching) by
// an opportunistic recvmmsg drain of everything else already queued in the
// kernel. Drained datagrams carry their raw source sockaddr in name; the
// blocking read carries a net.Addr instead.
func (e *Endpoint) readDatagram() (data []byte, addr net.Addr, name []byte, err error) {
	if e.rx != nil && e.rx.pending() {
		data, name = e.rx.pop()
		return data, nil, name, nil
	}
	if e.gro && e.rx != nil {
		// GRO tier: the blocking read itself is a recvmmsg-with-control, so
		// a coalesced superbuffer arrives with its gso_size attached and pop
		// splits it back into frames. Deadline and close semantics come from
		// the raw read's wait, same as ReadFrom.
		for {
			if err := fillBatch(e.raw, e.rx); err != nil {
				return nil, nil, nil, err
			}
			if e.rx.pending() {
				data, name = e.rx.pop()
				return data, nil, name, nil
			}
		}
	}
	n, a, err := e.conn.ReadFrom(e.rbuf)
	if err != nil {
		return nil, nil, nil, err
	}
	if e.rx != nil {
		e.rx.drain(e.raw)
	}
	return e.rbuf[:n], a, nil, nil
}

// readyCount reports how many packets are queued for delivery.
func (e *Endpoint) readyCount() int { return len(e.rxReady) - e.rxReadyHead }

// popReady returns the oldest packet queued for delivery (matured holds and
// injected duplicates). The head index advances instead of re-slicing the
// queue, so draining n queued packets is O(n), not O(n²) — deep reorder
// holds used to pay a full copy per pop.
func (e *Endpoint) popReady() *wire.Packet {
	pkt := e.rxReady[e.rxReadyHead]
	e.rxReady[e.rxReadyHead] = nil
	e.rxReadyHead++
	if e.rxReadyHead == len(e.rxReady) {
		e.rxReady = e.rxReady[:0]
		e.rxReadyHead = 0
	}
	return pkt
}

// passRx records one arrival overtaking the held receptions; matured holds
// queue for delivery on the next Recv calls. Like passTx, a single linear
// pass with an in-place filter.
func (e *Endpoint) passRx() {
	if len(e.rxHeld) == 0 {
		return
	}
	keep := e.rxHeld[:0]
	for i := range e.rxHeld {
		h := e.rxHeld[i]
		h.remaining--
		if h.remaining <= 0 {
			e.rxReady = append(e.rxReady, h.pkt)
		} else {
			keep = append(keep, h)
		}
	}
	e.rxHeld = keep
}

// SeededDrop returns a deterministic mangle hook losing packets with
// probability p. Each returned function owns its generator, so install
// separate instances for Tx and Rx.
func SeededDrop(p float64, seed int64) func(*wire.Packet) params.Mangle {
	rng := rand.New(rand.NewSource(seed))
	return func(*wire.Packet) params.Mangle {
		return params.Mangle{Drop: rng.Float64() < p}
	}
}

// Push transfers the configured payload to the peer: announce, wait for the
// go-ahead, blast (or whatever cfg.Protocol says). The configuration is
// validated against the endpoint's MTU first.
func Push(e *Endpoint, cfg core.Config) (core.SendResult, error) {
	if err := e.ValidateConfig(cfg); err != nil {
		return core.SendResult{}, err
	}
	return core.Push(e, cfg)
}

// Pull requests the configured transfer from the peer and receives it. The
// configuration is validated against the endpoint's MTU first.
func Pull(e *Endpoint, cfg core.Config) (core.RecvResult, error) {
	if err := e.ValidateConfig(cfg); err != nil {
		return core.RecvResult{}, err
	}
	return core.Request(e, cfg)
}
