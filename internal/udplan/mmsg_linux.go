//go:build linux && (amd64 || arm64)

package udplan

// Batched datagram syscalls for Linux: one sendmmsg flushes a whole frame
// ring, one recvmmsg drains everything the kernel has queued. The stdlib
// syscall package stops short of these (they are wrapped only in
// golang.org/x/net), so the mmsghdr layout and syscall numbers are defined
// here for the 64-bit architectures this project targets; every other
// platform takes the portable WriteTo/ReadFrom fallback in
// mmsg_fallback.go.

import (
	"net"
	"syscall"
	"unsafe"
)

// rawNameLen is the raw sockaddr slot size: big enough for sockaddr_in6.
const rawNameLen = syscall.SizeofSockaddrInet6

// mmsgSupported reports whether this build has the sendmmsg/recvmmsg tier.
const mmsgSupported = true

// mmsgHdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the per-message transferred length, padded to 8 bytes.
type mmsgHdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgSender holds the reusable sendmmsg argument arrays of one batched
// writer; the zero value is ready to use.
type mmsgSender struct {
	hdrs    []mmsgHdr
	iovs    []syscall.Iovec
	name    [rawNameLen]byte
	nameLen uint32
}

// setName encodes the destination into the shared sockaddr every message
// of the batch points at. Reports false for addresses this path cannot
// target (the caller then falls back to WriteTo).
func (s *mmsgSender) setName(ua *net.UDPAddr) bool {
	return encodeUDPName(&s.name, &s.nameLen, ua)
}

// encodeUDPName writes a UDP address as a raw sockaddr into the shared name
// slot every batched writer (sendmmsg and GSO sendmsg alike) points its
// msghdrs at. Reports false for addresses the raw path cannot target (the
// caller then falls back to WriteTo).
func encodeUDPName(name *[rawNameLen]byte, nameLen *uint32, ua *net.UDPAddr) bool {
	if ua.Zone != "" {
		return false // link-local zones need an interface lookup
	}
	if ip4 := ua.IP.To4(); ip4 != nil {
		*(*uint16)(unsafe.Pointer(&name[0])) = syscall.AF_INET
		name[2], name[3] = byte(ua.Port>>8), byte(ua.Port)
		copy(name[4:8], ip4)
		for i := 8; i < rawNameLen; i++ {
			name[i] = 0
		}
		*nameLen = syscall.SizeofSockaddrInet4
		return true
	}
	if ip16 := ua.IP.To16(); ip16 != nil {
		*(*uint16)(unsafe.Pointer(&name[0])) = syscall.AF_INET6
		name[2], name[3] = byte(ua.Port>>8), byte(ua.Port)
		name[4], name[5], name[6], name[7] = 0, 0, 0, 0 // flowinfo
		copy(name[8:24], ip16)
		name[24], name[25], name[26], name[27] = 0, 0, 0, 0 // scope
		*nameLen = syscall.SizeofSockaddrInet6
		return true
	}
	return false
}

// mmsgReceiver holds the reusable recvmmsg argument arrays of one batched
// reader; the zero value is ready to use.
type mmsgReceiver struct {
	hdrs []mmsgHdr
	iovs []syscall.Iovec
}

// sendBatch transmits frames[0:n] to peer with as few sendmmsg calls as the
// kernel allows (normally one). handled is false when the peer or socket
// cannot take this path and the caller must fall back to WriteTo.
func sendBatch(raw syscall.RawConn, s *mmsgSender, peer net.Addr, frames [][]byte, lens []int, n int) (handled bool, err error) {
	if raw == nil || n == 0 {
		return n == 0, nil
	}
	ua, ok := peer.(*net.UDPAddr)
	if !ok || !s.setName(ua) {
		return false, nil
	}
	if cap(s.hdrs) < n {
		s.hdrs = make([]mmsgHdr, n)
		s.iovs = make([]syscall.Iovec, n)
	}
	hdrs, iovs := s.hdrs[:n], s.iovs[:n]
	for i := 0; i < n; i++ {
		iovs[i].Base = &frames[i][0]
		iovs[i].SetLen(lens[i])
		hdrs[i] = mmsgHdr{}
		hdrs[i].hdr.Name = &s.name[0]
		hdrs[i].hdr.Namelen = s.nameLen
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	for off := 0; off < n; {
		var sent int
		var serr error
		werr := raw.Write(func(fd uintptr) bool {
			r0, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[off])), uintptr(n-off), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, then retry
			}
			if errno != 0 {
				serr = errno
			} else {
				sent = int(r0)
			}
			return true
		})
		switch {
		case werr != nil:
			return true, werr
		case serr != nil:
			return true, serr
		case sent <= 0:
			return true, syscall.EIO // defensive: avoid a zero-progress spin
		}
		off += sent
	}
	return true, nil
}

// recvBatch performs one non-blocking recvmmsg into the ring, recording
// each datagram's length, raw source sockaddr and (on GRO rings) segment
// size. It never waits: an empty socket returns (0, true). ok is false when
// the platform path failed and the caller should not trust the ring. The
// blocking variant is gso_linux.go's fillBatch; both share recvmmsgInto.
func recvBatch(raw syscall.RawConn, r *rxBatch) (got int, ok bool) {
	if raw == nil {
		return 0, false
	}
	rerr := raw.Read(func(fd uintptr) bool {
		n, errno := recvmmsgInto(fd, r)
		if errno != 0 {
			got = 0 // EAGAIN (socket empty) or transient: drain nothing
		} else {
			got = n
		}
		return true // opportunistic: never block the drain
	})
	if rerr != nil {
		return 0, false
	}
	return got, true
}

// keyFromRaw writes the canonical address key of a raw sockaddr into dst
// without allocating (IPv4 is mapped into IPv6 form, matching
// keyFromUDP's net.IP.To16 normalisation).
func keyFromRaw(dst *[addrKeyLen]byte, name []byte) bool {
	if len(name) < 2 {
		return false
	}
	switch *(*uint16)(unsafe.Pointer(&name[0])) {
	case syscall.AF_INET:
		if len(name) < syscall.SizeofSockaddrInet4 {
			return false
		}
		for i := 0; i < 10; i++ {
			dst[i] = 0
		}
		dst[10], dst[11] = 0xff, 0xff
		copy(dst[12:16], name[4:8])
		dst[16], dst[17] = name[2], name[3]
		return true
	case syscall.AF_INET6:
		if len(name) < syscall.SizeofSockaddrInet6 {
			return false
		}
		copy(dst[:16], name[8:24])
		dst[16], dst[17] = name[2], name[3]
		return true
	}
	return false
}

// rawToUDPAddr converts a raw sockaddr into a net.UDPAddr (copying the IP
// bytes out of the reused name slot), or nil for unknown families.
func rawToUDPAddr(name []byte) *net.UDPAddr {
	if len(name) < 2 {
		return nil
	}
	switch *(*uint16)(unsafe.Pointer(&name[0])) {
	case syscall.AF_INET:
		if len(name) < syscall.SizeofSockaddrInet4 {
			return nil
		}
		ip := make(net.IP, 4)
		copy(ip, name[4:8])
		return &net.UDPAddr{IP: ip, Port: int(name[2])<<8 | int(name[3])}
	case syscall.AF_INET6:
		if len(name) < syscall.SizeofSockaddrInet6 {
			return nil
		}
		ip := make(net.IP, 16)
		copy(ip, name[8:24])
		return &net.UDPAddr{IP: ip, Port: int(name[2])<<8 | int(name[3])}
	}
	return nil
}
