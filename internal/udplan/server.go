package udplan

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Server answers transfer requests on one socket. With Concurrency <= 1 it
// serves serially, the paper's world of two matched machines where a
// transfer in progress owns the link. With Concurrency > 1 it becomes a
// sharded daemon: one demux loop (batched with recvmmsg where available)
// routes datagrams by source address into per-session goroutines, each
// running the unmodified core protocol engines over its own channel-fed
// Env — the fan-out a daemon needs to serve many clients at once.
type Server struct {
	// Data, when non-nil, satisfies pull requests (MoveFrom): it returns
	// the bytes to blast back for an accepted request.
	Data func(wire.Req) ([]byte, bool)

	// Source, when non-nil, satisfies pull requests without materialising
	// them: it returns a streaming chunk source (see core.ChunkSource).
	// Preferred over Data when both are set — a 1 GB pull then never means
	// a 1 GB allocation.
	Source func(wire.Req) (core.ChunkSource, bool)

	// Sink, when non-nil, accepts push requests (MoveTo) and receives the
	// completed, fully assembled transfer.
	Sink func(wire.Req, []byte)

	// SinkStream, when non-nil, accepts push requests without buffering:
	// it returns a per-transfer chunk sink plus a completion callback that
	// receives the final result (byte count, incremental checksum).
	// Preferred over Sink when both are set. done is called exactly once
	// per accepted push, whether or not the transfer completed — check
	// RecvResult.Completed before trusting the bytes — so implementations
	// can release per-transfer resources (close files) on aborts too.
	SinkStream func(wire.Req) (sink core.ChunkSink, done func(core.RecvResult), ok bool)

	// Idle bounds how long Run waits for the next request; zero waits
	// forever (until the socket closes).
	Idle time.Duration

	// Concurrency caps the number of simultaneous sessions. <= 1 serves
	// serially; above that, each client gets its own session goroutine and
	// requests beyond the cap are dropped (the client's REQ retransmission
	// retries them).
	Concurrency int

	// Batch enables batched syscall I/O (sendmmsg frame rings per session,
	// recvmmsg demux drain) with the given batch size; <= 1 stays on the
	// single-syscall path.
	Batch int

	// MTU overrides the maximum datagram size (default MaxDatagram) for
	// jumbo-frame serving. Requests whose packets exceed it are rejected
	// with a clear log line instead of stalling on truncated reads.
	MTU int

	// Logf, when non-nil, receives operational log lines (rejections,
	// session errors, cap drops).
	Logf func(format string, args ...any)

	// Done, when non-nil, is called after every completed transfer with
	// its stats — the per-peer rate log hook.
	Done func(TransferStats)

	conn net.PacketConn

	mu     sync.Mutex
	served int
}

// TransferStats reports one completed transfer for the Done hook.
type TransferStats struct {
	Peer        net.Addr
	Req         wire.Req
	Push        bool
	Bytes       int
	Elapsed     time.Duration
	Packets     int // data packets (received for pushes, sent for pulls)
	Retransmits int // pulls only
	Checksum    uint16
}

// MBps returns the transfer's application-level throughput in MB/s.
func (t TransferStats) MBps() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.Elapsed.Seconds() / 1e6
}

// NewServer wraps a socket in a transfer server.
func NewServer(conn net.PacketConn) *Server { return &Server{conn: conn} }

// Served reports how many transfers completed successfully.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) mtu() int {
	if s.MTU > 0 {
		return s.MTU
	}
	return MaxDatagram
}

// Run serves requests until the socket is closed (or Idle expires with no
// session in flight). It returns nil on a clean close.
func (s *Server) Run() error {
	if s.Concurrency > 1 {
		return s.runConcurrent()
	}
	for {
		if err := s.serveOne(); err != nil {
			if core.IsTimeout(err) {
				return nil // idle bound reached
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// serveOne accepts and completes a single transfer on the serial path.
func (s *Server) serveOne() error {
	e := NewEndpoint(s.conn, nil)
	e.LockPeer = true
	e.LearnReqOnly = true
	if s.MTU > 0 {
		if err := e.SetMTU(s.MTU); err != nil {
			return err
		}
	}
	if s.Batch > 1 {
		e.SetBatch(s.Batch)
	}
	idle := time.Duration(-1)
	if s.Idle > 0 {
		idle = s.Idle
	}
	return s.serveTransfer(e, idle, e.ValidateConfig, e.Peer)
}

// serveTransfer accepts one request on env and completes the transfer,
// dispatching to the server's streaming or buffering handlers. peerOf is
// consulted lazily (the serial endpoint only learns its peer from the REQ).
func (s *Server) serveTransfer(env core.Env, idle time.Duration, validate func(core.Config) error, peerOf func() net.Addr) error {
	var (
		isPush   bool
		req      wire.Req
		pushDone func(core.RecvResult)
	)
	cfg, err := core.ServeOnce(env, idle, func(r wire.Req) (core.Config, bool) {
		c := core.ConfigOf(0, r)
		// Wall-clock linger/idle bounds: the simulation defaults are sized
		// for free virtual time and would stall the server between clients.
		c.Linger = 2*c.RetransTimeout + 100*time.Millisecond
		c.ReceiverIdle = 8*c.RetransTimeout + 2*time.Second
		if validate != nil {
			if verr := validate(c); verr != nil {
				s.logf("udplan: rejecting request from %v: %v", peerOf(), verr)
				return core.Config{}, false
			}
		}
		req, isPush = r, r.Push
		if r.Push {
			if s.SinkStream != nil {
				sink, done, ok := s.SinkStream(r)
				if !ok {
					return core.Config{}, false
				}
				c.Sink, pushDone = sink, done
				return c, true
			}
			if s.Sink == nil {
				return core.Config{}, false
			}
			return c, true
		}
		if s.Source != nil {
			src, ok := s.Source(r)
			if !ok {
				return core.Config{}, false
			}
			c.Source = src
			return c, true
		}
		if s.Data == nil {
			return core.Config{}, false
		}
		payload, ok := s.Data(r)
		if !ok || len(payload) != c.Bytes {
			return core.Config{}, false
		}
		c.Payload = payload
		return c, true
	})
	if err != nil {
		return err
	}
	stats := TransferStats{Peer: peerOf(), Req: req, Push: isPush}
	if isPush {
		res, err := core.AcceptPush(env, cfg)
		if err != nil {
			// The sink's resources (an open file, say) must be released
			// even for an aborted push; Completed is false on this path.
			if pushDone != nil {
				pushDone(res)
			}
			return fmt.Errorf("udplan: accepting push: %w", err)
		}
		if pushDone != nil {
			pushDone(res)
		} else if s.Sink != nil {
			s.Sink(req, res.Data)
		}
		stats.Bytes, stats.Elapsed = res.Bytes, res.Elapsed
		stats.Packets, stats.Checksum = res.DataPackets, res.Checksum
	} else {
		res, err := core.RunSender(env, cfg)
		if err != nil {
			return fmt.Errorf("udplan: serving pull: %w", err)
		}
		stats.Bytes, stats.Elapsed = cfg.Bytes, res.Elapsed
		stats.Packets, stats.Retransmits = res.DataPackets, res.Retransmits
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	if s.Done != nil {
		s.Done(stats)
	}
	return nil
}

// dgram is one pooled datagram in flight from the demux loop to a session.
type dgram struct {
	b *[]byte
	n int
}

// session is one client conversation in the concurrent server.
type session struct {
	key   string
	peer  net.Addr
	inbox chan dgram
}

// runConcurrent is the sharded daemon: one demux loop feeding per-session
// goroutines.
func (s *Server) runConcurrent() error {
	mtu := s.mtu()
	raw := rawConnOf(s.conn)
	var rx *rxBatch
	if s.Batch > 1 && raw != nil {
		rx = newRxBatch(s.Batch, mtu)
	}
	rbuf := make([]byte, mtu)
	pool := &sync.Pool{New: func() any { b := make([]byte, mtu); return &b }}
	table := newSessionTable()
	var wg sync.WaitGroup
	var active atomic.Int32
	var keybuf [addrKeyLen]byte

	defer func() {
		table.closeAll()
		wg.Wait()
	}()

	for {
		var deadline time.Time
		if s.Idle > 0 {
			deadline = time.Now().Add(s.Idle)
		}
		if err := s.conn.SetReadDeadline(deadline); err != nil {
			return err
		}

		var (
			data, name []byte
			addr       net.Addr
		)
		if rx != nil && rx.pending() {
			data, name = rx.pop()
		} else {
			n, a, err := s.conn.ReadFrom(rbuf)
			if err != nil {
				if core.IsTimeout(err) {
					if active.Load() == 0 {
						return nil // idle bound reached
					}
					continue
				}
				if errors.Is(err, net.ErrClosed) {
					return nil
				}
				return err
			}
			data, addr = rbuf[:n], a
			if rx != nil {
				rx.drain(raw)
			}
		}

		// Canonical demux key, allocation-free for lookups.
		if name != nil {
			if !keyFromRaw(&keybuf, name) {
				continue
			}
		} else if ua, ok := addr.(*net.UDPAddr); ok {
			keyFromUDP(&keybuf, ua)
		} else {
			continue
		}

		sess := table.get(keybuf[:])
		if sess == nil {
			// Only a checksum-valid REQ opens a session — the concurrent
			// mirror of LearnReqOnly: stragglers from finished transfers
			// cannot claim server state.
			var pkt wire.Packet
			if wire.DecodeInto(&pkt, data) != nil || pkt.Type != wire.TypeReq {
				continue
			}
			if int(active.Load()) >= s.Concurrency {
				s.logf("udplan: session cap %d reached; dropping REQ (client will retry)", s.Concurrency)
				continue
			}
			peer := addr
			if peer == nil {
				if peer = rawToUDPAddr(name); peer == nil {
					continue
				}
			}
			sess = &session{
				key:   string(keybuf[:]),
				peer:  peer,
				inbox: make(chan dgram, 256),
			}
			table.put(sess)
			active.Add(1)
			wg.Add(1)
			go func(sess *session) {
				defer wg.Done()
				s.runSession(sess, pool, raw, mtu)
				table.remove(sess.key)
				active.Add(-1)
			}(sess)
		}

		bp := pool.Get().(*[]byte)
		n := copy(*bp, data)
		select {
		case sess.inbox <- dgram{bp, n}:
		default:
			pool.Put(bp) // inbox overflow: an interface drop; the protocol recovers
		}
	}
}

// runSession drives one client conversation to completion.
func (s *Server) runSession(sess *session, pool *sync.Pool, raw syscall.RawConn, mtu int) {
	env := newSessionEnv(s.conn, raw, sess.peer, sess.inbox, pool)
	if s.Batch > 1 {
		env.tx = newTxBatch(s.Batch, mtu, env.flushFrames)
	}
	idle := s.Idle
	if idle <= 0 {
		// The opening REQ is already queued; this only bounds a client that
		// vanished mid-handshake.
		idle = 30 * time.Second
	}
	err := s.serveTransfer(env, idle, func(c core.Config) error {
		return validateConfigMTU(c, mtu)
	}, func() net.Addr { return sess.peer })
	env.FlushBatch()
	env.recycle()
	if err != nil && !core.IsTimeout(err) && !errors.Is(err, net.ErrClosed) {
		s.logf("udplan: session %v: %v", sess.peer, err)
	}
}

// sessionEnv adapts one demuxed session to core.Env: receives come from the
// demux loop's channel, sends go straight to the shared socket (batched
// through a per-session frame ring when enabled).
type sessionEnv struct {
	conn  net.PacketConn
	raw   syscall.RawConn
	peer  net.Addr
	inbox chan dgram
	pool  *sync.Pool
	start time.Time
	timer *time.Timer
	cur   *[]byte // current packet's buffer; recycled on the next Recv
	pkt   wire.Packet
	wbuf  []byte
	tx    *txBatch
	ms    mmsgSender
	gap   time.Duration // adaptive pacing between data packets (core.Pacer)
}

func newSessionEnv(conn net.PacketConn, raw syscall.RawConn, peer net.Addr, inbox chan dgram, pool *sync.Pool) *sessionEnv {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &sessionEnv{conn: conn, raw: raw, peer: peer, inbox: inbox, pool: pool, start: time.Now(), timer: t}
}

// BatchLimit implements core.BatchLimiter.
func (se *sessionEnv) BatchLimit() int {
	if se.tx == nil {
		return 1
	}
	return se.tx.flushAt()
}

// SetBatchLimit implements core.BatchLimiter: the session's flush
// threshold follows the adaptive controller's window without reallocating
// the ring. The demux loop owns the receive side; only transmit batching
// is per-session.
func (se *sessionEnv) SetBatchLimit(n int) {
	if se.tx == nil {
		return
	}
	se.tx.setLimit(n)
}

// SetPacketGap implements core.Pacer for the serving side of a pull.
func (se *sessionEnv) SetPacketGap(d time.Duration) { se.gap = d }

// Gap implements core.Pacer.
func (se *sessionEnv) Gap() time.Duration { return se.gap }

// Now returns the wall-clock time since the session started.
func (se *sessionEnv) Now() time.Duration { return time.Since(se.start) }

// Compute is a no-op: real work takes real time.
func (se *sessionEnv) Compute(time.Duration) {}

// PacketConsumedOnSend implements core.PacketReuser.
func (se *sessionEnv) PacketConsumedOnSend() {}

// FlushBatch implements core.BatchFlusher.
func (se *sessionEnv) FlushBatch() error {
	if se.tx == nil {
		return nil
	}
	return se.tx.Flush()
}

// flushFrames writes the session's queued frames, batched where possible.
func (se *sessionEnv) flushFrames(frames [][]byte, lens []int, n int) error {
	return flushFramesTo(se.raw, &se.ms, se.conn, se.peer, frames, lens, n)
}

// Send encodes and transmits one packet to the session's peer. A non-zero
// pacing gap spaces data packets on the wire, exactly like
// Endpoint.PacketGap (the frame is flushed before the sleep so the gap is
// real spacing, not a queued burst).
func (se *sessionEnv) Send(p *wire.Packet) error {
	if err := se.send(p); err != nil {
		return err
	}
	if se.gap > 0 && p.Type == wire.TypeData {
		if err := se.FlushBatch(); err != nil {
			return err
		}
		time.Sleep(se.gap)
	}
	return nil
}

func (se *sessionEnv) send(p *wire.Packet) error {
	if se.tx != nil {
		n, err := p.EncodeInto(se.tx.slot())
		if err != nil {
			return err
		}
		if err := se.tx.commit(n); err != nil {
			return err
		}
		if flushesImmediately(p) {
			return se.tx.Flush()
		}
		return nil
	}
	buf, err := p.Encode(se.wbuf[:0])
	if err != nil {
		return err
	}
	se.wbuf = buf[:0]
	_, err = se.conn.WriteTo(buf, se.peer)
	return err
}

// SendAsync is Send: UDP writes do not wait for transmission anyway.
func (se *sessionEnv) SendAsync(p *wire.Packet) error { return se.Send(p) }

// Recv returns the session's next valid packet. The decoded packet aliases
// a pooled buffer that stays valid until the following Recv.
func (se *sessionEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	if err := se.FlushBatch(); err != nil {
		return nil, err
	}
	for {
		d, err := se.nextDgram(timeout)
		if err != nil {
			return nil, err
		}
		se.recycle()
		se.cur = d.b
		if derr := wire.DecodeInto(&se.pkt, (*d.b)[:d.n]); derr != nil {
			continue // corrupted in flight: the checksum did its job
		}
		return &se.pkt, nil
	}
}

// recycle returns the current packet's buffer to the pool.
func (se *sessionEnv) recycle() {
	if se.cur != nil {
		se.pool.Put(se.cur)
		se.cur = nil
	}
}

// nextDgram waits for the demux loop's next datagram with core.Env timeout
// semantics.
func (se *sessionEnv) nextDgram(timeout time.Duration) (dgram, error) {
	if timeout < 0 {
		d, ok := <-se.inbox
		if !ok {
			return dgram{}, net.ErrClosed
		}
		return d, nil
	}
	if timeout == 0 {
		select {
		case d, ok := <-se.inbox:
			if !ok {
				return dgram{}, net.ErrClosed
			}
			return d, nil
		default:
			return dgram{}, os.ErrDeadlineExceeded
		}
	}
	se.timer.Reset(timeout)
	select {
	case d, ok := <-se.inbox:
		if !se.timer.Stop() {
			select {
			case <-se.timer.C:
			default:
			}
		}
		if !ok {
			return dgram{}, net.ErrClosed
		}
		return d, nil
	case <-se.timer.C:
		return dgram{}, os.ErrDeadlineExceeded
	}
}

// sessionTable is the sharded session map: one shard per GOMAXPROCS so
// concurrent completions and lookups do not serialise on a single lock.
type sessionTable struct {
	shards []tableShard
}

type tableShard struct {
	mu sync.Mutex
	m  map[string]*session
}

func newSessionTable() *sessionTable {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	t := &sessionTable{shards: make([]tableShard, n)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*session)
	}
	return t
}

// fnv-1a over the two key forms; identical results so lookups never copy.
func hashKeyBytes(k []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range k {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

func hashKeyString(k string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h
}

// get looks a session up by raw key bytes without allocating.
func (t *sessionTable) get(k []byte) *session {
	sh := &t.shards[hashKeyBytes(k)%uint32(len(t.shards))]
	sh.mu.Lock()
	s := sh.m[string(k)]
	sh.mu.Unlock()
	return s
}

func (t *sessionTable) put(s *session) {
	sh := &t.shards[hashKeyString(s.key)%uint32(len(t.shards))]
	sh.mu.Lock()
	sh.m[s.key] = s
	sh.mu.Unlock()
}

func (t *sessionTable) remove(key string) {
	sh := &t.shards[hashKeyString(key)%uint32(len(t.shards))]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// closeAll closes every live session's inbox (the demux loop has stopped;
// sessions drain and exit).
func (t *sessionTable) closeAll() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, s := range sh.m {
			close(s.inbox)
			delete(sh.m, k)
		}
		sh.mu.Unlock()
	}
}

// validateConfigMTU checks that a transfer's packets fit datagrams of the
// given size.
func validateConfigMTU(cfg core.Config, mtu int) error {
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	if need := wire.HeaderSize + chunk; need > mtu {
		return fmt.Errorf("%w: packet bytes %d (header %d + chunk %d) > MTU %d; raise SetMTU or shrink ChunkSize",
			ErrMTU, need, wire.HeaderSize, chunk, mtu)
	}
	return nil
}
