package udplan

import (
	"errors"
	"fmt"
	"net"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/session"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// Server answers transfer requests on one socket (or several SO_REUSEPORT
// siblings). With Concurrency <= 1 it serves serially, the paper's world of
// two matched machines where a transfer in progress owns the link. With
// Concurrency > 1 it becomes a sharded daemon: the substrate-agnostic
// session layer (internal/session) runs its demux loop over this socket's
// transport.Listener, routing datagrams by source address into per-session
// goroutines — each running the unmodified core protocol engines over its
// own channel-fed Env, with its own tiered frame ring (GSO superbuffers,
// sendmmsg, or a WriteTo loop; see Tier). Given multiple sockets
// (NewMultiServer over ListenReuseport), it runs one independent demux loop
// per socket with kernel-hashed flow steering — the single-demux bottleneck
// removed once per-packet cost is amortised. All the serving machinery
// (sharded session table, REQ-only admission, streaming handlers,
// stripe-range resolution, graceful drain) is shared with the simulator
// substrate; only the socket/syscall specifics live here.
type Server struct {
	// The shared serving machinery and its handler hooks: Data, Source,
	// Sink, SinkStream, Idle, Concurrency, Logf, Done, BeginDrain, Served —
	// see session.Server.
	session.Server

	// Batch enables batched syscall I/O (tiered frame rings per session,
	// recvmmsg demux drain) with the given batch size; <= 1 stays on the
	// single-syscall path.
	Batch int

	// MTU overrides the maximum datagram size (default MaxDatagram) for
	// jumbo-frame serving. Requests whose packets exceed it are rejected
	// with a clear log line instead of stalling on truncated reads.
	MTU int

	// MaxTier, when non-zero, caps the datapath tier the server probes up
	// to (blastd's -tier flag lands here); the BLASTLAN_TIER environment
	// override applies on top.
	MaxTier Tier

	// LineRate, when positive, models each socket as a serializing link of
	// this many egress bytes per second, shared by every session on it —
	// loopback has no NIC, so topology benchmarks (fan-out trees vs N
	// independent pulls) need the modeled link to measure anything but CPU.
	// Applies to the sharded datapath (Concurrency > 1 or multiple
	// sockets); the serial path ignores it. Each socket of a MultiServer
	// gets its own line, like ports on a switch.
	LineRate int

	conns []net.PacketConn
}

// TransferStats reports one completed transfer for the Done hook.
type TransferStats = session.TransferStats

// NewServer wraps a socket in a transfer server.
func NewServer(conn net.PacketConn) *Server {
	return &Server{conns: []net.PacketConn{conn}}
}

// NewMultiServer wraps several sockets bound to the same address
// (ListenReuseport) in one transfer server: Run drives an independent demux
// loop per socket, with the kernel steering each client flow to exactly one
// of them. Requires Concurrency > 1 to be useful; accounting (Served, Done)
// is shared across the loops.
func NewMultiServer(conns ...net.PacketConn) *Server {
	return &Server{conns: conns}
}

// Close closes every socket the server owns (Run then returns).
func (s *Server) Close() error {
	var firstErr error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Server) mtu() int {
	if s.MTU > 0 {
		return s.MTU
	}
	return MaxDatagram
}

// Tier reports the datapath tier the server's first socket probes to at
// the configured batch size — what Run's sessions will use.
func (s *Server) Tier() Tier {
	return pickTxTier(rawConnOf(s.conns[0]), s.Batch, s.MaxTier)
}

// Run serves requests until the socket is closed (or Idle expires with no
// session in flight). It returns nil on a clean close.
func (s *Server) Run() error {
	mtu := s.mtu()
	if s.Validate == nil {
		s.Validate = func(c core.Config) error { return validateConfigMTU(c, mtu) }
	}
	if len(s.conns) > 1 {
		ls := make([]transport.Listener, len(s.conns))
		for i, conn := range s.conns {
			sl := newServerListener(conn, s.Batch, mtu, s.MaxTier)
			sl.line = newLinePacer(s.LineRate)
			ls[i] = sl
		}
		return s.Server.RunAll(ls...)
	}
	if s.Concurrency > 1 {
		sl := newServerListener(s.conns[0], s.Batch, mtu, s.MaxTier)
		sl.line = newLinePacer(s.LineRate)
		return s.Server.Run(sl)
	}
	var e *Endpoint
	for {
		// Serial drain: finish the transfer in flight (ServeEnv returns only
		// between transfers), then stop accepting — the same contract as the
		// sharded loop's BeginDrain handling.
		if s.Draining() {
			return nil
		}
		if e == nil {
			var err error
			if e, err = s.serveEndpoint(); err != nil {
				return err
			}
		}
		err := s.serveOne(e)
		if err == nil {
			e = nil // a fresh endpoint per transfer, exactly as before
			continue
		}
		if core.IsTimeout(err) {
			if s.Idle > 0 || s.Draining() {
				return nil // idle bound reached
			}
			// Wait-poll expired: keep the endpoint but forget any peer a
			// rejected REQ locked it to, exactly as retiring it would have.
			e.ResetPeer()
			continue
		}
		if errors.Is(err, net.ErrClosed) {
			return nil
		}
		return err
	}
}

// serveEndpoint builds the serial path's per-transfer endpoint. It is
// reused across idle wait-polls (only a completed transfer retires it), so
// an idle server allocates nothing while it waits.
func (s *Server) serveEndpoint() (*Endpoint, error) {
	e := NewEndpoint(s.conns[0], nil)
	e.LockPeer = true
	e.LearnReqOnly = true
	e.MaxTier = s.MaxTier
	if s.MTU > 0 {
		if err := e.SetMTU(s.MTU); err != nil {
			return nil, err
		}
	}
	if s.Batch > 1 {
		e.SetBatch(s.Batch)
	}
	return e, nil
}

// serveOne accepts and completes a single transfer on the serial path.
func (s *Server) serveOne(e *Endpoint) error {
	// An unbounded wait becomes a poll, so Run's loop notices BeginDrain on
	// an idle server instead of blocking in Recv until the next request.
	idle := 250 * time.Millisecond
	if s.Idle > 0 {
		idle = s.Idle
	}
	// The serial endpoint only learns its peer from the REQ, so the peer is
	// resolved lazily.
	return s.ServeEnv(e, idle, e.ValidateConfig, func() transport.Peer {
		if p := e.Peer(); p != nil {
			return p
		}
		return nil
	})
}

// validateConfigMTU checks that a transfer's packets fit datagrams of the
// given size.
func validateConfigMTU(cfg core.Config, mtu int) error {
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	if need := wire.HeaderSize + chunk; need > mtu {
		return fmt.Errorf("%w: packet bytes %d (header %d + chunk %d) > MTU %d; raise SetMTU or shrink ChunkSize",
			ErrMTU, need, wire.HeaderSize, chunk, mtu)
	}
	return nil
}
