package udplan

import (
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// End-to-end jumbo frames through the concurrent batched server: 8000-byte
// chunks need SetMTU on both sides, stream from a seeded source, and must
// verify against the incremental checksum with no retransmission storms on
// a lossless loopback.
func TestJumboConcurrentBatchedPull(t *testing.T) {
	const (
		size  = 8 << 20
		chunk = 8000
	)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer conn.Close()
	srv := NewServer(conn)
	srv.Concurrency = 2
	srv.Batch = 16
	srv.MTU = 9000
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(9, int(r.Bytes), int(r.Chunk)), true
	}
	go srv.Run()

	e, err := Dial(conn.LocalAddr().String())
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	if err := e.SetMTU(9000); err != nil {
		t.Fatal(err)
	}
	e.SetSocketBuffers(4 << 20)
	e.SetBatch(16)

	var acc wire.SumAcc
	cfg := core.Config{
		TransferID:     1,
		Bytes:          size,
		ChunkSize:      chunk,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         32,
		RetransTimeout: 200 * time.Millisecond,
		MaxAttempts:    1000,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   5 * time.Second,
		Sink:           func(off int, b []byte) { acc.AddAt(off, b) },
	}
	res, err := Pull(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("received %d of %d bytes", res.Bytes, size)
	}
	want := wire.Checksum(core.SeededPayload(9, size, chunk))
	if res.Checksum != want || acc.Sum16() != want {
		t.Errorf("checksums: res %04x, sink acc %04x, want %04x", res.Checksum, acc.Sum16(), want)
	}
}
