package udplan

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// newLoopbackServer starts a Server on an ephemeral loopback socket, or
// skips the test when sockets are unavailable in the environment.
func newLoopbackServer(t *testing.T) (*Server, string) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback available: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	s := NewServer(conn)
	return s, conn.LocalAddr().String()
}

func randomPayload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// quick transfer config over loopback: tight timeouts, bounded attempts,
// so failures surface fast.
func loopCfg(id uint32, payload []byte, p core.Protocol, s core.Strategy) core.Config {
	return core.Config{
		TransferID:     id,
		Bytes:          len(payload),
		ChunkSize:      1000,
		Protocol:       p,
		Strategy:       s,
		RetransTimeout: 80 * time.Millisecond,
		MaxAttempts:    60,
		Linger:         200 * time.Millisecond,
		ReceiverIdle:   2 * time.Second,
		Payload:        payload,
	}
}

func TestPullOverLoopback(t *testing.T) {
	payload := randomPayload(64*1024, 1)
	srv, addr := newLoopbackServer(t)
	srv.Data = func(r wire.Req) ([]byte, bool) { return payload, true }
	done := make(chan error, 1)
	go func() { done <- srv.Run() }()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	cfg := loopCfg(7, payload, core.Blast, core.GoBackN)
	cfg.Payload = nil // the puller has no data; it receives
	res, err := Pull(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !bytes.Equal(res.Data, payload) {
		t.Fatalf("pull corrupted: completed=%v bytes=%d", res.Completed, len(res.Data))
	}
	if res.Checksum != core.TransferChecksum(payload) {
		t.Error("checksum mismatch")
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Errorf("server: %v", err)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestPushOverLoopback(t *testing.T) {
	payload := randomPayload(32*1024, 2)
	srv, addr := newLoopbackServer(t)
	got := make(chan []byte, 1)
	srv.Sink = func(r wire.Req, data []byte) { got <- data }
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	res, err := Push(e, loopCfg(9, payload, core.Blast, core.Selective))
	if err != nil {
		t.Fatal(err)
	}
	if res.DataPackets == 0 {
		t.Error("no packets sent")
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Error("push corrupted data")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never delivered the push")
	}
}

// All three protocol classes over real sockets.
func TestAllProtocolsOverLoopback(t *testing.T) {
	for _, p := range []core.Protocol{core.StopAndWait, core.SlidingWindow, core.Blast} {
		payload := randomPayload(8*1024, int64(p))
		srv, addr := newLoopbackServer(t)
		got := make(chan []byte, 1)
		srv.Sink = func(r wire.Req, data []byte) { got <- data }
		go srv.Run()

		e, err := Dial(addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		if _, err := Push(e, loopCfg(uint32(p)+1, payload, p, core.GoBackN)); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		select {
		case data := <-got:
			if !bytes.Equal(data, payload) {
				t.Fatalf("%v: corrupted", p)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: timed out", p)
		}
		e.Close()
	}
}

// Injected loss on a lossless loopback: every strategy must still deliver.
func TestRecoveryUnderInjectedLoss(t *testing.T) {
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		payload := randomPayload(16*1024, int64(s))
		srv, addr := newLoopbackServer(t)
		got := make(chan []byte, 1)
		srv.Sink = func(r wire.Req, data []byte) { got <- data }
		go srv.Run()

		e, err := Dial(addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		// 5 % loss in both directions, deterministic.
		e.MangleTx = SeededDrop(0.05, int64(s)*2+1)
		e.MangleRx = SeededDrop(0.05, int64(s)*2+2)
		if _, err := Push(e, loopCfg(uint32(s)+100, payload, core.Blast, s)); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		select {
		case data := <-got:
			if !bytes.Equal(data, payload) {
				t.Fatalf("%v: corrupted under loss", s)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: timed out", s)
		}
		e.Close()
	}
}

// A server must survive serving several transfers in sequence.
func TestServerServesSequentially(t *testing.T) {
	payload := randomPayload(4*1024, 5)
	srv, addr := newLoopbackServer(t)
	srv.Data = func(r wire.Req) ([]byte, bool) { return payload, true }
	go srv.Run()

	for i := 0; i < 3; i++ {
		e, err := Dial(addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		cfg := loopCfg(uint32(200+i), payload, core.Blast, core.GoBackN)
		cfg.Payload = nil
		res, err := Pull(e, cfg)
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		if !bytes.Equal(res.Data, payload) {
			t.Fatalf("pull %d corrupted", i)
		}
		e.Close()
	}
	if srv.Served() != 3 {
		t.Errorf("served = %d, want 3", srv.Served())
	}
}

// The server rejects requests it has no handler or data for; the client
// gives up cleanly rather than hanging.
func TestServerRejectsUnknown(t *testing.T) {
	srv, addr := newLoopbackServer(t)
	srv.Data = func(r wire.Req) ([]byte, bool) { return nil, false }
	srv.Idle = 2 * time.Second
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	cfg := core.Config{
		TransferID:     300,
		Bytes:          1024,
		Protocol:       core.Blast,
		RetransTimeout: 30 * time.Millisecond,
		MaxAttempts:    3,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   100 * time.Millisecond,
	}
	if _, err := Pull(e, cfg); err == nil {
		t.Error("expected pull of unknown data to fail")
	}
}

func TestEndpointErrors(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer conn.Close()
	e := NewEndpoint(conn, nil)
	if err := e.Send(&wire.Packet{Type: wire.TypeAck}); err == nil {
		t.Error("send without peer should fail")
	}
	if _, err := e.Recv(10 * time.Millisecond); !core.IsTimeout(err) {
		t.Errorf("recv on silent socket: %v", err)
	}
	if e.LocalAddr() == nil {
		t.Error("no local addr")
	}
	if e.Peer() != nil {
		t.Error("peer should be nil")
	}
}

// Malformed datagrams must be skipped, not returned as errors.
func TestMalformedDatagramsIgnored(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer conn.Close()
	sender, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer sender.Close()

	e := NewEndpoint(conn, nil)
	go func() {
		sender.WriteTo([]byte("garbage that is not a packet"), conn.LocalAddr())
		pkt := &wire.Packet{Type: wire.TypeAck, Trans: 1, Seq: 5}
		buf, _ := pkt.Encode(nil)
		sender.WriteTo(buf, conn.LocalAddr())
	}()
	pkt, err := e.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Type != wire.TypeAck || pkt.Seq != 5 {
		t.Errorf("got %v", pkt)
	}
}

func TestLearnReqOnly(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer conn.Close()
	sender, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer sender.Close()

	e := NewEndpoint(conn, nil)
	e.LearnReqOnly = true
	go func() {
		ack := &wire.Packet{Type: wire.TypeAck, Trans: 1}
		buf, _ := ack.Encode(nil)
		sender.WriteTo(buf, conn.LocalAddr()) // straggler: must not claim peer
		req := &wire.Packet{Type: wire.TypeReq, Trans: 2,
			Payload: wire.EncodeReq(wire.Req{Bytes: 10, Chunk: 10})}
		buf2, _ := req.Encode(nil)
		sender.WriteTo(buf2, conn.LocalAddr())
	}()
	pkt, err := e.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Type != wire.TypeReq {
		t.Errorf("learned from %v packet", pkt.Type)
	}
	if e.Peer() == nil {
		t.Error("peer not learned from REQ")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("not-an-address:xyz"); err == nil {
		t.Error("expected resolve error")
	}
}

// A large paced blast must complete over loopback: an unpaced 1 MB burst
// would swamp the kernel socket buffer and rely entirely on go-back-n,
// while pacing restores the paper's matched-speed premise. The test only
// asserts correctness (completion + integrity); pacing efficiency is
// machine-dependent.
func TestLargePacedPush(t *testing.T) {
	if testing.Short() {
		t.Skip("large transfer")
	}
	payload := randomPayload(1<<20, 99)
	srv, addr := newLoopbackServer(t)
	got := make(chan []byte, 1)
	srv.Sink = func(r wire.Req, data []byte) { got <- data }
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	e.PacketGap = 10 * time.Microsecond
	cfg := loopCfg(500, payload, core.Blast, core.GoBackN)
	cfg.RetransTimeout = 300 * time.Millisecond
	cfg.ReceiverIdle = 5 * time.Second
	res, err := Push(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("paced push corrupted data")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("paced push timed out")
	}
	if res.DataPackets < 1049 { // ceil(1 MiB / 1000)
		t.Errorf("sent %d packets", res.DataPackets)
	}
	t.Logf("1 MiB paced push: %v elapsed, %d packets, %d retransmitted",
		res.Elapsed, res.DataPackets, res.Retransmits)
}
