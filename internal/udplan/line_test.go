package udplan

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// lineServer starts a sharded server whose socket is modeled as a lineRate
// bytes/s serializing link, serving the given payload.
func lineServer(t *testing.T, payload []byte, lineRate int) string {
	t.Helper()
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 8
	srv.Batch = 8
	srv.LineRate = lineRate
	srv.Data = func(r wire.Req) ([]byte, bool) { return payload, true }
	go srv.Run()
	return addr
}

func linePull(addr string, id uint32, payload []byte) (time.Duration, error) {
	e, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	e.SetBatch(8)
	cfg := loopCfg(id, payload, core.Blast, core.GoBackN)
	cfg.Payload = nil
	cfg.Window = 64
	cfg.RetransTimeout = 500 * time.Millisecond
	t0 := time.Now()
	res, err := Pull(e, cfg)
	if err != nil {
		return 0, fmt.Errorf("pull %d: %v", id, err)
	}
	if !res.Completed || !bytes.Equal(res.Data, payload) {
		return 0, fmt.Errorf("pull %d corrupted: completed=%v bytes=%d", id, res.Completed, len(res.Data))
	}
	return time.Since(t0), nil
}

// TestLineRateBounds pins the modeled link's defining property: egress
// cannot beat the line. A 512 KiB object through a 16 MB/s socket takes at
// least ~32ms no matter how fast loopback is, and two concurrent pulls
// SHARE the line — aggregate stays ~16 MB/s, so the pair takes roughly
// twice as long as one, where independent per-session pacing would let them
// finish together.
func TestLineRateBounds(t *testing.T) {
	const rate = 16 << 20
	payload := randomPayload(512<<10, 3)
	ideal := time.Duration(int64(len(payload)) * int64(time.Second) / rate)
	addr := lineServer(t, payload, rate)

	single, err := linePull(addr, 21, payload)
	if err != nil {
		t.Fatal(err)
	}
	// The line is the floor (minus the 64 KiB burst allowance); CPU noise
	// only adds. A generous 60% of ideal catches a pacer that stopped
	// engaging without flaking on scheduler jitter.
	if single < ideal*6/10 {
		t.Fatalf("single pull took %v, faster than the %v line permits (ideal %v)", single, ideal*6/10, ideal)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	t0 := time.Now()
	for i := 0; i < 2; i++ {
		id := uint32(31 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := linePull(addr, id, payload); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	pair := time.Since(t0)
	// Two objects over one shared line need ~2*ideal; 1.4x proves the
	// sessions contended for one link rather than each getting its own.
	if pair < ideal*14/10 {
		t.Fatalf("concurrent pulls took %v together, want >= %v: sessions are not sharing the modeled line", pair, ideal*14/10)
	}
}
