package udplan

import "time"

// pacer amortizes pacing sleeps over a quantum of accumulated gap. The
// naive actuation — flush + time.Sleep after every data packet — charges a
// flush syscall plus the scheduler's sleep granularity per packet, which
// for a µs-grade gap overshoots the nominal rate by 10-100×: the
// controller believes it is pacing gently while the substrate crawls (the
// same distortion the bbr delivery model refuses to measure). Instead each
// data packet accrues its nominal gap as debt and the sender sleeps only
// once the debt reaches paceQuantum, crediting the *measured* sleep
// against the debt so timer overshoot pays for future packets instead of
// compounding. The wire sees short bursts spaced at the nominal average
// rate — pacing in quanta, the way production rate-based senders actuate.
// Gaps at or above the quantum still sleep on every packet.
type pacer struct {
	debt time.Duration
}

// paceQuantum is the debt threshold that triggers a real sleep: well above
// the sleep granularity of a loaded scheduler, so the overshoot stays a
// small fraction of each quantum.
const paceQuantum = 250 * time.Microsecond

// owe accrues one packet's nominal gap and sleeps if the debt is due.
// flush puts queued frames on the wire first, so the sleep spaces real
// transmissions rather than a buffered burst.
func (pc *pacer) owe(gap time.Duration, flush func() error) error {
	pc.debt += gap
	if pc.debt < paceQuantum {
		return nil
	}
	if err := flush(); err != nil {
		return err
	}
	start := time.Now()
	time.Sleep(pc.debt)
	pc.debt -= time.Since(start)
	if pc.debt < -paceQuantum {
		// Bound the credit: one long preemption must not erase pacing
		// for an arbitrary stretch of future packets.
		pc.debt = -paceQuantum
	}
	return nil
}
