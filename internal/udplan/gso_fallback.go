//go:build !linux || !(amd64 || arm64)

package udplan

// Portable no-op stand-ins for the Linux GSO/GRO segmentation-offload path:
// on these platforms the probe always fails, so endpoints settle on the
// sendmmsg tier (itself stubbed on non-Linux) or the WriteTo loop. The
// rings, flush points and adversary semantics are identical everywhere —
// only the syscall count differs.

import (
	"net"
	"syscall"
)

// gsoSupported reports whether this build can attempt the GSO tier at all.
const gsoSupported = false

type gsoSender struct{}

func probeGSO(syscall.RawConn) bool { return false }

func setGRO(syscall.RawConn, bool) bool { return false }

func sendGSO(syscall.RawConn, *gsoSender, net.Addr, [][]byte, []int, int) (bool, error) {
	return false, nil
}

// fillBatch is unreachable here (GRO never enables without the probe), but
// fails loudly rather than pretending a read happened.
func fillBatch(syscall.RawConn, *rxBatch) error { return syscall.EINVAL }
