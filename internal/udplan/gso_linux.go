//go:build linux && (amd64 || arm64)

package udplan

// UDP segmentation offload for Linux: the GSO tier of the batched datapath.
//
// On transmit, a whole flush of equal-sized wire frames travels as ONE
// contiguous superbuffer through ONE sendmsg carrying a UDP_SEGMENT control
// message: the kernel traverses its stack once and segments the buffer into
// individual datagrams at the very bottom (or, on loopback, not at all —
// see below). Compared to the sendmmsg tier this amortises not just the
// syscall but the entire per-packet kernel cost: route lookup, skb
// allocation, socket accounting — the 1985 paper's per-packet software
// overhead, one layer further down.
//
// On receive, UDP_GRO is the mirror image: the kernel hands the socket one
// coalesced superbuffer plus a gso_size control message, and the endpoint
// splits it back into frames in user space. On loopback the two compose
// perfectly: a locally delivered GSO skb whose destination socket has GRO
// enabled is never segmented at all — W frames cross the kernel as one
// buffer in one syscall each way.
//
// Frames in one superbuffer must share one size, except the final segment,
// which may be shorter (never longer). The protocol engines already emit
// that geometry — data frames are equal-sized and the transfer's short tail
// always carries FlagLast, which flushes separately (see core's blast
// sender and flushesImmediately) — and sendGSO re-checks it anyway,
// splitting any mixed-size flush into maximal GSO-compatible runs.
//
// Everything here degrades: a probe failure at setup drops the endpoint to
// the sendmmsg tier, and an unroutable peer drops a single flush to the
// caller's fallback (see flushFramesTiered).

import (
	"net"
	"syscall"
	"unsafe"
)

// Kernel constants the syscall package predates.
const (
	solUDP     = 17  // SOL_UDP (== IPPROTO_UDP)
	udpSegment = 103 // UDP_SEGMENT: setsockopt + cmsg, Linux ≥ 4.18
	udpGRO     = 104 // UDP_GRO: setsockopt + cmsg, Linux ≥ 5.0
)

// GSO geometry bounds.
const (
	// maxGSOSegs is the kernel's UDP_MAX_SEGMENTS: the most segments one
	// superbuffer may carry.
	maxGSOSegs = 64
	// maxGSOBytes bounds one superbuffer to what a single UDP/IPv4 datagram
	// could carry — the GSO payload is one giant UDP payload until the
	// kernel segments it.
	maxGSOBytes = 65507
)

// maxGSOSegs must stay in lock-step with the portable gsoSegLimit that
// flush-unit geometry (tier.go) reports to the rate controllers.
var (
	_ [maxGSOSegs - gsoSegLimit]struct{}
	_ [gsoSegLimit - maxGSOSegs]struct{}
)

// gsoSupported reports whether this build can attempt the GSO tier at all;
// the runtime probe still has the final say.
const gsoSupported = true

// probeGSO reports whether the socket's kernel understands UDP_SEGMENT
// (setting it to 0 is a no-op on kernels that do, ENOPROTOOPT on kernels
// that don't).
func probeGSO(raw syscall.RawConn) bool {
	if raw == nil {
		return false
	}
	var serr error
	if err := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0)
	}); err != nil {
		return false
	}
	return serr == nil
}

// setGRO enables or disables UDP_GRO coalescing on the socket, reporting
// whether the kernel accepted it.
func setGRO(raw syscall.RawConn, on bool) bool {
	if raw == nil {
		return false
	}
	v := 0
	if on {
		v = 1
	}
	var serr error
	if err := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, v)
	}); err != nil {
		return false
	}
	return serr == nil
}

// gsoOob is the encoded UDP_SEGMENT control message: one cmsghdr plus a
// uint16 segment size, padded to the kernel's alignment.
const gsoOobLen = 24 // syscall.CmsgSpace(2) on 64-bit Linux

// gsoSender holds the reusable sendmsg arguments of one GSO-tier writer;
// the zero value is ready to use.
type gsoSender struct {
	iovs    []syscall.Iovec
	name    [rawNameLen]byte
	nameLen uint32
	oob     [gsoOobLen]byte
}

// setSegment encodes the UDP_SEGMENT control message for segment size seg.
func (g *gsoSender) setSegment(seg int) {
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&g.oob[0]))
	h.Level = solUDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&g.oob[syscall.CmsgLen(0)])) = uint16(seg)
}

// sendGSO transmits frames[0:n] to peer as a minimal number of UDP_SEGMENT
// superbuffers: each maximal run of equal-sized frames (plus at most one
// shorter trailing frame, which GSO permits as the final segment) becomes
// one sendmsg whose iovec array is the frame ring itself — no copy into a
// staging buffer. handled is false when the peer or socket cannot take this
// path and the caller must fall back a tier.
func sendGSO(raw syscall.RawConn, g *gsoSender, peer net.Addr, frames [][]byte, lens []int, n int) (handled bool, err error) {
	if raw == nil || n == 0 {
		return n == 0, nil
	}
	ua, ok := peer.(*net.UDPAddr)
	if !ok || !encodeUDPName(&g.name, &g.nameLen, ua) {
		return false, nil
	}
	if cap(g.iovs) < n {
		g.iovs = make([]syscall.Iovec, n)
	}
	iovs := g.iovs[:n]
	for i := 0; i < n; i++ {
		iovs[i].Base = &frames[i][0]
		iovs[i].SetLen(lens[i])
	}
	for i := 0; i < n; {
		seg := lens[i]
		j := i + 1
		total := seg
		for j < n && lens[j] == seg && j-i < maxGSOSegs && total+seg <= maxGSOBytes {
			total += seg
			j++
		}
		// One shorter frame may close the run: GSO's final segment may be
		// smaller than gso_size (never larger).
		if j < n && lens[j] < seg && j-i < maxGSOSegs && total+lens[j] <= maxGSOBytes {
			total += lens[j]
			j++
		}
		if err := g.sendRun(raw, iovs[i:j], total, seg, j-i > 1); err != nil {
			return true, err
		}
		i = j
	}
	return true, nil
}

// sendRun performs one sendmsg over the run's iovecs, attaching the
// UDP_SEGMENT cmsg when the run holds more than one frame.
func (g *gsoSender) sendRun(raw syscall.RawConn, iovs []syscall.Iovec, total, seg int, segmented bool) error {
	var mh syscall.Msghdr
	mh.Name = &g.name[0]
	mh.Namelen = g.nameLen
	mh.Iov = &iovs[0]
	mh.Iovlen = uint64(len(iovs))
	if segmented {
		g.setSegment(seg)
		mh.Control = &g.oob[0]
		mh.SetControllen(gsoOobLen)
	}
	var sent int
	var serr error
	werr := raw.Write(func(fd uintptr) bool {
		r0, _, errno := syscall.Syscall(syscall.SYS_SENDMSG, fd,
			uintptr(unsafe.Pointer(&mh)), 0)
		if errno == syscall.EAGAIN {
			return false // wait for writability, then retry
		}
		if errno != 0 {
			serr = errno
		} else {
			sent = int(r0)
		}
		return true
	})
	switch {
	case werr != nil:
		return werr
	case serr != nil:
		return serr
	case sent != total:
		return syscall.EIO // defensive: a datagram sendmsg is all-or-error
	}
	return nil
}

// fillBatch blocks (honouring the socket's read deadline) until at least
// one message is drained into the ring — the GRO tier's blocking receive.
// Messages carry their gso_size control data, so a coalesced superbuffer
// splits back into frames as the ring is popped.
func fillBatch(raw syscall.RawConn, r *rxBatch) error {
	if raw == nil {
		return syscall.EINVAL
	}
	var got int
	var rerrno syscall.Errno
	err := raw.Read(func(fd uintptr) bool {
		n, errno := recvmmsgInto(fd, r)
		if errno == syscall.EAGAIN {
			return false // wait for readability, then retry
		}
		got, rerrno = n, errno
		return true
	})
	if err != nil {
		return err // deadline expired or socket closed
	}
	if rerrno != 0 {
		return rerrno
	}
	r.count, r.next, r.segOff = got, 0, 0
	return nil
}

// recvmmsgInto performs one non-blocking recvmmsg into the ring's buffers,
// recording per-message lengths, raw source sockaddrs and (when the ring
// carries control buffers) GRO segment sizes.
func recvmmsgInto(fd uintptr, r *rxBatch) (got int, errno syscall.Errno) {
	n := len(r.bufs)
	rv := &r.recv
	if cap(rv.hdrs) < n {
		rv.hdrs = make([]mmsgHdr, n)
		rv.iovs = make([]syscall.Iovec, n)
	}
	hdrs, iovs := rv.hdrs[:n], rv.iovs[:n]
	for i := 0; i < n; i++ {
		iovs[i].Base = &r.bufs[i][0]
		iovs[i].SetLen(len(r.bufs[i]))
		hdrs[i] = mmsgHdr{}
		hdrs[i].hdr.Name = &r.names[i][0]
		hdrs[i].hdr.Namelen = rawNameLen
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		if r.ctrls != nil {
			hdrs[i].hdr.Control = &r.ctrls[i][0]
			hdrs[i].hdr.SetControllen(len(r.ctrls[i]))
		}
	}
	r0, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(n),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if e != 0 {
		return 0, e
	}
	got = int(r0)
	for i := 0; i < got; i++ {
		r.lens[i] = int(hdrs[i].n)
		if r.segs != nil {
			r.segs[i] = 0
			if r.ctrls != nil {
				r.segs[i] = parseGROSize(r.ctrls[i][:hdrs[i].hdr.Controllen])
			}
		}
	}
	return got, 0
}

// parseGROSize extracts the gso_size from a received control buffer: the
// kernel attaches a SOL_UDP/UDP_GRO cmsg (an int) to every message it
// delivered coalesced. Returns 0 when absent (the message is one datagram).
func parseGROSize(ctrl []byte) int {
	off := 0
	for off+syscall.SizeofCmsghdr <= len(ctrl) {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[off]))
		l := int(h.Len)
		if l < syscall.SizeofCmsghdr || off+l > len(ctrl) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO {
			data := ctrl[off+syscall.CmsgLen(0) : off+l]
			switch {
			case len(data) >= 4:
				return int(*(*int32)(unsafe.Pointer(&data[0])))
			case len(data) >= 2:
				return int(*(*uint16)(unsafe.Pointer(&data[0])))
			}
			return 0
		}
		off += (l + 7) &^ 7 // next cmsg, 8-byte aligned
	}
	return 0
}
