package udplan

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// The REUSEPORT multi-queue server must keep its accounting exact: with two
// demux loops on two kernel-steered sockets and Concurrency=4, eight
// concurrent clients produce exactly eight Served transfers and eight Done
// calls — no double-counting and no racing of the shared hooks across
// loops (this test is in the CI race-detector matrix).
func TestReuseportServedAccounting(t *testing.T) {
	if !reuseportSharding {
		if _, err := ListenReuseport("udp", "127.0.0.1:0", 2); err == nil {
			t.Fatal("ListenReuseport(2) must refuse on platforms without REUSEPORT sharding")
		}
		t.Skip("SO_REUSEPORT multi-queue unsupported on this platform")
	}
	conns, err := ListenReuseport("udp", "127.0.0.1:0", 2)
	if err != nil {
		t.Skipf("reuseport listen: %v", err)
	}
	if a, b := conns[0].LocalAddr().String(), conns[1].LocalAddr().String(); a != b {
		t.Fatalf("sibling sockets bound to different addresses: %s vs %s", a, b)
	}
	srv := NewMultiServer(conns...)
	srv.Concurrency = 4
	srv.Batch = 16
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
	}
	var doneMu sync.Mutex
	doneCount := 0
	srv.Done = func(TransferStats) {
		doneMu.Lock()
		doneCount++
		doneMu.Unlock()
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run() }()
	addr := conns[0].LocalAddr().String()

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := 24*1024 + i*2048 // distinct sizes → distinct payloads
			e, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer e.Close()
			e.SetBatch(16)
			cfg := loopCfg(uint32(900+i), nil, core.Blast, core.Selective)
			cfg.Bytes = size
			cfg.Window = 32
			res, err := Pull(e, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			want := core.SeededPayload(int64(size), size, 1000)
			if !bytes.Equal(res.Data, want) {
				errs[i] = fmt.Errorf("client %d: corrupted pull", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := srv.Served(); got != clients {
		t.Errorf("served = %d, want %d", got, clients)
	}
	doneMu.Lock()
	if doneCount != clients {
		t.Errorf("Done fired %d times, want %d", doneCount, clients)
	}
	doneMu.Unlock()
	srv.Close()
	if err := <-runErr; err != nil {
		t.Errorf("server: %v", err)
	}
}
