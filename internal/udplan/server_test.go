package udplan

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// The concurrent server must serve several clients at once: each pull gets
// its own session, payloads are independent and verified, and the Done hook
// fires per transfer.
func TestConcurrentServerParallelPulls(t *testing.T) {
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 4
	srv.Batch = 8
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(int64(r.Bytes), int(r.Bytes), int(r.Chunk)), true
	}
	var doneMu sync.Mutex
	var stats []TransferStats
	srv.Done = func(ts TransferStats) {
		doneMu.Lock()
		stats = append(stats, ts)
		doneMu.Unlock()
	}
	go srv.Run()

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := 32*1024 + i*4096 // distinct sizes → distinct payloads
			e, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer e.Close()
			e.SetBatch(8)
			cfg := loopCfg(uint32(400+i), nil, core.Blast, core.GoBackN)
			cfg.Bytes = size
			cfg.Window = 32
			res, err := Pull(e, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			want := core.SeededPayload(int64(size), size, 1000)
			if !bytes.Equal(res.Data, want) {
				errs[i] = fmt.Errorf("client %d: corrupted pull", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := srv.Served(); got != clients {
		t.Errorf("served = %d, want %d", got, clients)
	}
	doneMu.Lock()
	defer doneMu.Unlock()
	if len(stats) != clients {
		t.Errorf("Done fired %d times, want %d", len(stats), clients)
	}
	for _, ts := range stats {
		if ts.Push || ts.Bytes == 0 || ts.Peer == nil || ts.MBps() <= 0 {
			t.Errorf("bad stats: %+v", ts)
		}
	}
}

// Concurrent streaming pushes: SinkStream receives each client's bytes
// incrementally, with the incremental checksum matching the payload.
func TestConcurrentServerStreamingPush(t *testing.T) {
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 3
	type result struct {
		sum   uint16
		bytes int
	}
	results := make(chan result, 8)
	srv.SinkStream = func(r wire.Req) (core.ChunkSink, func(core.RecvResult), bool) {
		return func(off int, b []byte) {}, func(res core.RecvResult) {
			results <- result{res.Checksum, res.Bytes}
		}, true
	}
	go srv.Run()

	const clients = 3
	payloads := make([][]byte, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		payloads[i] = randomPayload(24*1024+i*1000, int64(i)+50)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer e.Close()
			if _, err := Push(e, loopCfg(uint32(500+i), payloads[i], core.Blast, core.Selective)); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	wantSums := map[uint16]int{}
	for _, p := range payloads {
		wantSums[wire.Checksum(p)] = len(p)
	}
	for i := 0; i < clients; i++ {
		select {
		case r := <-results:
			if want, ok := wantSums[r.sum]; !ok || want != r.bytes {
				t.Errorf("unexpected streamed result %04x/%d", r.sum, r.bytes)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("missing streamed push result")
		}
	}
}

// Clients beyond the session cap are dropped but recover through REQ
// retransmission: with cap 2 and 4 clients, everyone completes eventually.
func TestConcurrentServerSessionCap(t *testing.T) {
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(7, int(r.Bytes), int(r.Chunk)), true
	}
	go srv.Run()

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer e.Close()
			cfg := loopCfg(uint32(600+i), nil, core.Blast, core.GoBackN)
			cfg.Bytes = 64 * 1024
			cfg.Window = 16
			cfg.MaxAttempts = 200 // REQ retries ride this
			if _, err := Pull(e, cfg); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d under cap pressure: %v", i, err)
		}
	}
	if got := srv.Served(); got != clients {
		t.Errorf("served = %d, want %d", got, clients)
	}
}

// A concurrent server shuts down cleanly when its socket closes, even with
// no traffic, and Run returns nil.
func TestConcurrentServerCleanShutdown(t *testing.T) {
	srv, _ := newLoopbackServer(t)
	srv.Concurrency = 4
	done := make(chan error, 1)
	go func() { done <- srv.Run() }()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after close")
	}
}

// The concurrent server rejects oversized-chunk requests via the MTU check
// (the client fails fast instead of stalling on truncated datagrams).
func TestConcurrentServerRejectsOversized(t *testing.T) {
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	srv.Source = func(r wire.Req) (core.ChunkSource, bool) {
		return core.SeededSource(1, int(r.Bytes), int(r.Chunk)), true
	}
	var logged sync.Once
	rejected := make(chan struct{}, 1)
	srv.Logf = func(format string, args ...any) {
		logged.Do(func() { rejected <- struct{}{} })
	}
	go srv.Run()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	if err := e.SetMTU(9000); err != nil { // client side can encode it...
		t.Fatal(err)
	}
	cfg := core.Config{
		TransferID:     700,
		Bytes:          16 * 1024,
		ChunkSize:      4000, // ...but the server's default MTU cannot
		Protocol:       core.Blast,
		RetransTimeout: 50 * time.Millisecond,
		MaxAttempts:    3,
		Linger:         50 * time.Millisecond,
		ReceiverIdle:   200 * time.Millisecond,
	}
	if _, err := Pull(e, cfg); err == nil {
		t.Error("oversized pull should fail")
	}
	select {
	case <-rejected:
	case <-time.After(2 * time.Second):
		t.Error("server never logged the rejection")
	}
}
