package udplan

import (
	"bytes"
	"net"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

func TestParseTierRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierAuto, TierWriteTo, TierMmsg, TierGSO} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if got, err := ParseTier(""); err != nil || got != TierAuto {
		t.Errorf("ParseTier(\"\") = %v, %v", got, err)
	}
	if _, err := ParseTier("turbo"); err == nil {
		t.Error("ParseTier accepted an unknown tier")
	}
}

// bestTier independently probes the highest tier this platform/kernel
// supports, so the forced-chain test's expectations do not come from the
// code under test's own ladder logic.
func bestTier(t *testing.T) Tier {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback available: %v", err)
	}
	defer conn.Close()
	best := TierWriteTo
	if mmsgSupported {
		best = TierMmsg
		if gsoSupported && probeGSO(rawConnOf(conn)) {
			best = TierGSO
		}
	}
	return best
}

// Every rung of the GSO→mmsg→WriteTo degradation chain must be reachable
// and correct: the BLASTLAN_TIER cap forces each tier in turn, the endpoint
// reports the expected one, and a real transfer completes byte-identically
// — so CI exercises the fallback rungs even on kernels where GSO works (and
// exercises exactly the working rungs on platforms where it does not).
func TestForcedTierChain(t *testing.T) {
	best := bestTier(t)
	for _, forced := range []Tier{TierWriteTo, TierMmsg, TierGSO} {
		t.Run(forced.String(), func(t *testing.T) {
			t.Setenv(TierEnv, forced.String())
			want := forced
			if best < want {
				want = best
			}

			payload := randomPayload(96*1024, 1000+int64(forced))
			srv, addr := newLoopbackServer(t)
			srv.Concurrency = 2
			srv.Batch = 16
			srv.Data = func(r wire.Req) ([]byte, bool) { return payload, true }
			done := make(chan error, 1)
			go func() { done <- srv.Run() }()
			if got := srv.Tier(); got != want {
				t.Fatalf("server tier = %v, want %v", got, want)
			}

			e, err := Dial(addr)
			if err != nil {
				t.Skipf("dial: %v", err)
			}
			defer e.Close()
			e.SetBatch(16)
			if got := e.Tier(); got != want {
				t.Fatalf("endpoint tier = %v, want %v", got, want)
			}
			if e.GRO() && want < TierGSO {
				t.Fatal("GRO left enabled below the GSO tier")
			}
			cfg := loopCfg(700+uint32(forced), payload, core.Blast, core.Selective)
			cfg.Payload = nil
			cfg.Window = 32
			res, err := Pull(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || !bytes.Equal(res.Data, payload) {
				t.Fatalf("tier %v: corrupted pull (completed=%v bytes=%d)", want, res.Completed, len(res.Data))
			}
			srv.Close()
			if err := <-done; err != nil {
				t.Errorf("server: %v", err)
			}
		})
	}
}

// The GSO tier must actually engage where the kernel supports it (skip, not
// pass, elsewhere — CI greps for the skip on old kernels): the endpoint
// probes to TierGSO, coalesces receives when the kernel grants UDP_GRO, and
// a batched window-sized transfer survives byte-identically.
func TestGSOTierEngages(t *testing.T) {
	if best := bestTier(t); best < TierGSO {
		t.Skipf("UDP_SEGMENT unsupported here (best tier %v); GSO needs Linux >= 4.18", best)
	}
	if cap := tierCapFromEnv(); cap != TierAuto && cap < TierGSO {
		t.Skipf("%s=%s caps the ladder below GSO (forced-fallback run)", TierEnv, cap)
	}
	payload := randomPayload(512*1024, 77)
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = 2
	srv.Batch = 32
	srv.Data = func(r wire.Req) ([]byte, bool) { return payload, true }
	if got := srv.Tier(); got != TierGSO {
		t.Fatalf("server tier = %v, want gso", got)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run() }()

	e, err := Dial(addr)
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer e.Close()
	e.SetBatch(32)
	if got := e.Tier(); got != TierGSO {
		t.Fatalf("endpoint tier = %v, want gso", got)
	}
	// GRO is a separate kernel feature (>= 5.0); assert it only where a
	// scratch socket says the kernel grants it.
	scratch, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err == nil {
		kernelGRO := setGRO(rawConnOf(scratch), true)
		scratch.Close()
		if kernelGRO && !e.GRO() {
			t.Error("kernel grants UDP_GRO but the endpoint left it off")
		}
	}
	cfg := loopCfg(801, payload, core.Blast, core.Selective)
	cfg.Payload = nil
	cfg.Window = 64
	res, err := Pull(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !bytes.Equal(res.Data, payload) {
		t.Fatalf("GSO pull corrupted: completed=%v bytes=%d", res.Completed, len(res.Data))
	}
	if res.Checksum != core.TransferChecksum(payload) {
		t.Error("checksum mismatch")
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Errorf("server: %v", err)
	}
}

// SetMTU mid-stream must put queued frames (possibly a GSO superbuffer in
// formation) on the wire before rebuilding the rings — the SetBatch
// flush-before-resize contract extended to the resize that changes slot
// geometry. Without the flush the queued frames would be silently dropped
// with the old ring.
func TestSetMTUFlushesQueuedFrames(t *testing.T) {
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer a.Close()
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	defer b.Close()

	e := NewEndpoint(a, b.LocalAddr())
	e.SetBatch(16)
	const queued = 3
	for i := 0; i < queued; i++ {
		p := &wire.Packet{Type: wire.TypeData, Trans: 9, Seq: uint32(i), Payload: []byte("held in the ring")}
		if err := e.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SetMTU(4096); err != nil {
		t.Fatal(err)
	}
	eb := NewEndpoint(b, a.LocalAddr())
	for i := 0; i < queued; i++ {
		p, err := eb.Recv(500 * time.Millisecond) // the frames must already be on the wire
		if err != nil {
			t.Fatalf("frame %d never arrived: SetMTU dropped the queued ring (%v)", i, err)
		}
		if p.Seq != uint32(i) {
			t.Fatalf("frame %d: got seq %d", i, p.Seq)
		}
	}
}
