//go:build linux && (amd64 || arm64)

package udplan

import (
	"net"
	"testing"
)

// The raw fast path must actually take effect on this platform: sendBatch
// reports handled (no silent WriteTo fallback), recvBatch drains queued
// datagrams, and the raw-sockaddr demux key matches the net.UDPAddr key for
// the same source — the invariant that keeps one client from becoming two
// sessions.
func TestMmsgFastPath(t *testing.T) {
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer a.Close()
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer b.Close()

	ea := NewEndpoint(a, b.LocalAddr())
	if ea.raw == nil {
		t.Fatal("UDP socket exposed no raw conn")
	}
	frames := [][]byte{[]byte("first"), []byte("second"), []byte("third")}
	lens := []int{5, 6, 5}
	var ms mmsgSender
	handled, err := sendBatch(ea.raw, &ms, ea.peer, frames, lens, 3)
	if !handled {
		t.Fatal("sendBatch fell back on linux")
	}
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := range frames {
		n, _, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != string(frames[i][:lens[i]]) {
			t.Fatalf("frame %d: got %q want %q", i, buf[:n], frames[i][:lens[i]])
		}
	}

	// recvmmsg drain + raw-name demux key equivalence.
	eb := NewEndpoint(b, a.LocalAddr())
	for i := 0; i < 3; i++ {
		if _, err := a.WriteTo([]byte{byte(i), 9, 9}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.ReadFrom(buf); err != nil { // blocking read consumes one
		t.Fatal(err)
	}
	rx := newRxBatch(4, 128, false)
	rx.drain(eb.raw)
	if rx.count != 2 {
		t.Fatalf("drained %d datagrams, want 2", rx.count)
	}
	_, name := rx.pop()
	var fromRaw, fromUDP [addrKeyLen]byte
	if !keyFromRaw(&fromRaw, name) {
		t.Fatal("keyFromRaw rejected a real sockaddr")
	}
	keyFromUDP(&fromUDP, a.LocalAddr().(*net.UDPAddr))
	if fromRaw != fromUDP {
		t.Fatalf("demux keys diverge:\nraw %x\nudp %x", fromRaw, fromUDP)
	}
	if ua := rawToUDPAddr(name); ua == nil || ua.Port != a.LocalAddr().(*net.UDPAddr).Port {
		t.Fatalf("rawToUDPAddr = %v", ua)
	}
}
