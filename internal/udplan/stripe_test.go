package udplan

import (
	"bytes"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// stripedSource resolves a (possibly striped) pull request against the
// deterministic seeded stream — the same resolution blastd performs: the
// generator covers the whole logical stream (seeded by its length), and the
// stripe's REQ selects a chunk-aligned view into it.
func stripedSource(r wire.Req) (core.ChunkSource, bool) {
	if r.Bytes == 0 || r.Chunk == 0 {
		return nil, false
	}
	stream := int(r.StreamBytes())
	src := core.SeededSource(int64(stream), stream, int(r.Chunk))
	return core.OffsetSource(src, int(r.OffsetChunks)), true
}

// stripedLoopbackServer starts a sharded batched server resolving striped
// seeded pulls.
func stripedLoopbackServer(t *testing.T, concurrency int) string {
	t.Helper()
	srv, addr := newLoopbackServer(t)
	srv.Concurrency = concurrency
	srv.Batch = 8
	srv.Source = stripedSource
	go srv.Run()
	return addr
}

// logicalCfg is the transfer contract for a striped-pull test.
func logicalCfg(total int) core.Config {
	return core.Config{
		TransferID:     100,
		Bytes:          total,
		ChunkSize:      1000,
		Protocol:       core.Blast,
		Strategy:       core.GoBackN,
		Window:         64,
		RetransTimeout: 150 * time.Millisecond,
		MaxAttempts:    200,
		Linger:         100 * time.Millisecond,
		ReceiverIdle:   5 * time.Second,
	}
}

// A striped pull must reassemble byte-identically to the unstriped stream
// and to a streams=1 pull of the same contract.
func TestStripedPullReassembles(t *testing.T) {
	const total = 2 << 20
	addr := stripedLoopbackServer(t, 8)
	want := core.SeededPayload(int64(total), total, 1000)

	pull := func(streams int) ([]byte, StripedResult) {
		out := make([]byte, total)
		res, err := PullStriped(addr, logicalCfg(total), StripeOptions{
			Streams: streams,
			Batch:   8,
			Sink:    func(off int, b []byte) { copy(out[off:], b) },
		})
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		return out, res
	}

	got4, res4 := pull(4)
	if len(res4.Stripes) != 4 {
		t.Fatalf("stripes = %d, want 4", len(res4.Stripes))
	}
	if !bytes.Equal(got4, want) {
		t.Fatal("streams=4 payload differs from the logical stream")
	}
	got1, res1 := pull(1)
	if !bytes.Equal(got1, got4) {
		t.Fatal("streams=1 and streams=4 reassemble differently")
	}
	wantSum := core.TransferChecksum(want)
	if res4.Checksum != wantSum || res1.Checksum != wantSum {
		t.Errorf("checksums %04x/%04x, want %04x", res4.Checksum, res1.Checksum, wantSum)
	}
	if res4.Bytes != total || res1.Bytes != total {
		t.Errorf("bytes %d/%d, want %d", res4.Bytes, res1.Bytes, total)
	}
	// Per-stripe feeds are populated and cover the plan.
	covered := 0
	for _, s := range res4.Stripes {
		if !s.Recv.Completed {
			t.Errorf("stripe %d incomplete", s.Stripe.Index)
		}
		covered += s.Recv.Bytes
	}
	if covered != total {
		t.Errorf("stripe byte feeds cover %d of %d", covered, total)
	}
}

// Striping must survive a hostile network: every stripe endpoint gets its
// own seeded drop/reorder/dup adversary and the reassembled stream is still
// byte-identical.
func TestStripedPullUnderAdversary(t *testing.T) {
	const total = 512 << 10
	addr := stripedLoopbackServer(t, 8)
	want := core.SeededPayload(int64(total), total, 1000)
	out := make([]byte, total)
	cfg := logicalCfg(total)
	cfg.Window = 32
	res, err := PullStriped(addr, cfg, StripeOptions{
		Streams: 4,
		Batch:   8,
		Sink:    func(off int, b []byte) { copy(out[off:], b) },
		Adversary: params.Adversary{
			Loss:          params.LossModel{PNet: 0.01},
			ReorderProb:   0.01,
			DuplicateProb: 0.01,
		},
		AdversarySeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("adversarial striped pull corrupted the stream")
	}
	if res.Checksum != core.TransferChecksum(want) {
		t.Errorf("checksum %04x", res.Checksum)
	}
}

// Adaptive striped pull: the REQ's adaptive bit makes the serving side run
// the AIMD controller; the transfer must still reassemble byte-identically,
// with loss on every stripe.
func TestStripedPullAdaptive(t *testing.T) {
	const total = 1 << 20
	addr := stripedLoopbackServer(t, 8)
	want := core.SeededPayload(int64(total), total, 1000)
	out := make([]byte, total)
	cfg := logicalCfg(total)
	cfg.Adaptive = true
	res, err := PullStriped(addr, cfg, StripeOptions{
		Streams:       4,
		Batch:         8,
		Sink:          func(off int, b []byte) { copy(out[off:], b) },
		Adversary:     params.Adversary{Loss: params.LossModel{PNet: 0.01}},
		AdversarySeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("adaptive striped pull corrupted the stream")
	}
	if res.Bytes != total {
		t.Errorf("bytes %d", res.Bytes)
	}
}

// The adaptive sender over a real endpoint pair: scripted first-transmission
// drops must engage the controller (window cuts), actuate batching, and
// still deliver the payload intact.
func TestAdaptiveSenderControllerOverUDP(t *testing.T) {
	ea, eb := pipe(t)
	ea.SetBatch(16)
	ea.PacketGap = 5 * time.Microsecond // user-configured pacing: must survive
	payload := randomPayload(256<<10, 5)
	cfg := loopCfg(9, payload, core.Blast, core.GoBackN)
	cfg.Adaptive = true
	cfg.Window = 32
	// Drop a handful of identified first transmissions: NAK-driven
	// recovery, deterministic on any substrate.
	ea.MangleTx = func(p *wire.Packet) params.Mangle {
		if p.Type == wire.TypeData && p.Attempt == 0 && p.Seq%50 == 3 && !p.IsLast() {
			return params.Mangle{Drop: true}
		}
		return params.Mangle{}
	}

	rcfg := cfg
	rcfg.Payload = nil
	type out struct {
		res core.RecvResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := core.RunReceiver(eb, rcfg)
		done <- out{r, err}
	}()
	res, err := core.RunSender(ea, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro := <-done
	if ro.err != nil {
		t.Fatal(ro.err)
	}
	if !bytes.Equal(ro.res.Data, payload) {
		t.Fatal("adaptive transfer corrupted")
	}
	st := res.Controller
	if st == nil {
		t.Fatal("adaptive sender reported no controller stats")
	}
	if st.Windows == 0 || st.Cuts == 0 {
		t.Errorf("controller never engaged: %+v", *st)
	}
	if st.FinalWindow < 16 {
		t.Errorf("final window %d below MinWindow", st.FinalWindow)
	}
	// The controller's actuations are scoped to the transfer: the
	// endpoint's configured batching and pacing must come back, so a lossy
	// adaptive transfer cannot ratchet the endpoint down for later ones.
	if got := ea.BatchLimit(); got != 16 {
		t.Errorf("batch limit after adaptive transfer = %d, want the configured 16", got)
	}
	if ea.PacketGap != 5*time.Microsecond {
		t.Errorf("pacing gap %v after the transfer, want the configured 5µs restored", ea.PacketGap)
	}
}

// Every registered policy drives a transfer over real endpoints: scripted
// first-transmission drops, intact payload, the policy's own stats on the
// SendResult, and the endpoint's configured batching restored afterwards.
func TestControllerPoliciesOverUDP(t *testing.T) {
	for _, name := range core.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			ea, eb := pipe(t)
			ea.SetBatch(16)
			payload := randomPayload(256<<10, 11)
			cfg := loopCfg(13, payload, core.Blast, core.GoBackN)
			cfg.Controller = name
			cfg.Window = 32
			ea.MangleTx = func(p *wire.Packet) params.Mangle {
				if p.Type == wire.TypeData && p.Attempt == 0 && p.Seq%50 == 3 && !p.IsLast() {
					return params.Mangle{Drop: true}
				}
				return params.Mangle{}
			}
			rcfg := cfg
			rcfg.Payload = nil
			type out struct {
				res core.RecvResult
				err error
			}
			done := make(chan out, 1)
			go func() {
				r, err := core.RunReceiver(eb, rcfg)
				done <- out{r, err}
			}()
			res, err := core.RunSender(ea, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ro := <-done
			if ro.err != nil {
				t.Fatal(ro.err)
			}
			if !bytes.Equal(ro.res.Data, payload) {
				t.Fatalf("policy %s corrupted the transfer", name)
			}
			st := res.Controller
			if st == nil {
				t.Fatalf("policy %s reported no controller stats", name)
			}
			if st.Policy != name {
				t.Errorf("stats policy %q, want %q", st.Policy, name)
			}
			if st.Windows == 0 {
				t.Errorf("policy %s never observed a window: %+v", name, *st)
			}
			if got := ea.BatchLimit(); got != 16 {
				t.Errorf("batch limit after %s transfer = %d, want the configured 16", name, got)
			}
		})
	}
}

// The batch-limit actuation must throttle flushes without reallocating the
// ring: a ring of 16 with limit 4 flushes every 4 commits, and raising the
// limit back restores full-ring batching.
func TestBatchLimitThrottlesWithoutRealloc(t *testing.T) {
	flushes := 0
	var sizes []int
	tb := newTxBatch(16, 2048, func(_ [][]byte, _ []int, n int) error {
		flushes++
		sizes = append(sizes, n)
		return nil
	})
	commit := func(k int) {
		for i := 0; i < k; i++ {
			copy(tb.slot(), []byte("frame"))
			if err := tb.commit(5); err != nil {
				t.Fatal(err)
			}
		}
	}
	tb.setLimit(4)
	commit(8)
	if flushes != 2 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("limit 4: %d flushes of %v, want 2×4", flushes, sizes)
	}
	// Lowering the limit below the queue depth flushes immediately.
	commit(3)
	if err := tb.setLimit(2); err != nil {
		t.Fatal(err)
	}
	if flushes != 3 || sizes[2] != 3 {
		t.Fatalf("shrink under queued frames: %d flushes of %v", flushes, sizes)
	}
	// Restoring a large limit goes back to full-ring batching.
	tb.setLimit(64)
	commit(16)
	if flushes != 4 || sizes[3] != 16 {
		t.Fatalf("restored limit: %d flushes of %v, want one full ring", flushes, sizes)
	}
}
