package core

import (
	"fmt"
	"time"

	"blastlan/internal/wire"
)

// sendBlast implements the paper's blast sender: all data packets are
// transmitted in sequence with a single acknowledgement for the entire
// sequence (Figure 1, Figure 3.b), under one of the four retransmission
// strategies of §3.2. When Config.Window is set, the transfer is broken
// into multiple blasts (§3.1.3), each completed before the next begins.
//
// async selects Figure 3.d semantics: unreliable packets are handed to the
// interface with SendAsync so that a double-buffered interface overlaps the
// copy of packet k+1 with the transmission of packet k.
func sendBlast(env Env, c Config, async bool) (SendResult, error) {
	if c.Controller != "" || c.Adaptive {
		return sendBlastControlled(env, c, async)
	}
	var res SendResult
	start := env.Now()
	n := c.NumPackets()
	w := c.Window
	if w <= 0 || w > n {
		w = n
	}
	est := newRTO(c)
	scratch := scratchPacket(env)
	for base := 0; base < n; base += w {
		end := base + w
		if end > n {
			end = n
		}
		if err := sendBlastWindow(env, c, &res, &est, scratch, base, end, n, async); err != nil {
			res.Elapsed = env.Now() - start
			return res, err
		}
	}
	res.Elapsed = env.Now() - start
	return res, nil
}

// sendBlastControlled is the blast sender under pluggable rate control
// (Config.Controller; the deprecated Config.Adaptive maps to "aimd"): each
// window's size comes from the policy, each completed window's recovery
// cost (and measured duration) feeds back into it, and the policy's pacing
// and batch decisions are actuated on substrates that support them. The
// receiver needs no changes — it judges windows by the high-water FlagLast
// sequence, whatever their sizes.
func sendBlastControlled(env Env, c Config, async bool) (SendResult, error) {
	var res SendResult
	start := env.Now()
	n := c.NumPackets()
	// The hill-climbing policy draws its perturbation order from the seed;
	// both substrates of a conformance pair share the transfer id, so they
	// share the search trajectory too.
	cc := ControllerConfig{InitWindow: c.Window, Seed: int64(c.TransferID)}
	limiter, _ := env.(BatchLimiter)
	pacer, _ := env.(Pacer)
	origLimit := 0
	origGap := time.Duration(0)
	if limiter != nil {
		origLimit = limiter.BatchLimit()
		cc.MaxBatch = origLimit
	}
	if pacer != nil {
		// A pre-configured gap becomes the controller's pacing floor: the
		// transfer never runs faster than its operator deliberately paced
		// it, and the gap is restored verbatim afterwards.
		origGap = pacer.Gap()
		cc.MinGap = origGap
	}
	// Frames per flush syscall unit: >1 on the GSO tier, where batch
	// actuation is quantized to whole superbuffers (see BatchGeometry).
	unit := 1
	if g, ok := env.(BatchGeometry); ok {
		if u := g.FlushUnit(); u > 1 {
			unit = u
		}
	}
	name := c.Controller
	if name == "" {
		name = ControllerAIMD
	}
	ctrl, err := NewRateController(name, cc)
	if err != nil {
		return res, err
	}
	// A controlled transfer subsumes AdaptiveTr: the fixed Tr only seeds
	// the estimator (see adaptive.go).
	c.AdaptiveTr = true
	est := newRTO(c)
	scratch := scratchPacket(env)
	finish := func() {
		res.Elapsed = env.Now() - start
		st := ctrl.Stats()
		res.Controller = &st
		// The controller's actuations are scoped to this transfer: the
		// substrate's configured batching and pacing come back, so a
		// lossy transfer never ratchets the endpoint down for its
		// successors (and a user-configured gap survives).
		if limiter != nil {
			limiter.SetBatchLimit(origLimit)
		}
		if pacer != nil {
			pacer.SetPacketGap(origGap)
		}
	}
	for base := 0; base < n; {
		end := base + ctrl.Window()
		if end > n {
			end = n
		}
		before := res
		t0 := env.Now()
		if err := sendBlastWindow(env, c, &res, &est, scratch, base, end, n, async); err != nil {
			finish()
			return res, err
		}
		ctrl.Observe(WindowObs{
			Packets:     end - base,
			Retransmits: res.Retransmits - before.Retransmits,
			Naks:        res.NaksReceived - before.NaksReceived,
			Timeouts:    res.Timeouts - before.Timeouts,
			Elapsed:     env.Now() - t0,
		})
		if pacer != nil {
			pacer.SetPacketGap(ctrl.Gap())
		}
		if limiter != nil {
			if want := batchLimitFor(ctrl, unit, origLimit); limiter.BatchLimit() != want {
				limiter.SetBatchLimit(want)
			}
		}
		base = end
	}
	finish()
	return res, nil
}

// batchLimitFor translates the policy's batch recommendation into the
// substrate's flush threshold. On frame-unit substrates (sendmmsg, WriteTo
// loop) it is the recommendation itself. On the GSO tier (unit > 1) the
// threshold follows the policy's *window* in whole superbuffer units
// instead of mmsg frame counts: the kernel bursts a superbuffer
// back-to-back on the wire regardless, so a threshold below one superbuffer
// only multiplies syscalls, and chopping a large window at an mmsg-era
// frame cap splits what could ride one UDP_SEGMENT call into several.
func batchLimitFor(ctrl RateController, unit, ring int) int {
	if unit <= 1 {
		return ctrl.Batch()
	}
	w := ctrl.Window()
	if w > ring {
		w = ring
	}
	lim := (w + unit - 1) / unit * unit // round up to whole superbuffers
	if lim > ring {
		lim = ring
	}
	return lim
}

// sendBlastWindow drives one blast of packets [base, end) to completion.
// scratch, when non-nil, is the transfer's reusable data packet (the
// substrate consumes packets synchronously, see core.PacketReuser).
func sendBlastWindow(env Env, c Config, res *SendResult, est *rto, scratch *wire.Packet, base, end, total int, async bool) error {
	pending := make([]int, 0, end-base)
	for seq := base; seq < end; seq++ {
		pending = append(pending, seq)
	}
	attempts := 0
	round := 0
	for attempts < c.MaxAttempts {
		res.Rounds++
		// Blast the pending set: everything before the final packet is sent
		// without acknowledgement; the final packet carries FlagLast to
		// elicit the receiver's (positive or negative) response.
		for _, seq := range pending[:len(pending)-1] {
			if err := sendData(env, c, res, scratch, seq, total, round, false, async); err != nil {
				return err
			}
		}
		// Batched substrates may still hold queued frames; put the window on
		// the wire before the reliable last packet, so the response timer it
		// starts measures a fully transmitted blast.
		if err := FlushBatch(env); err != nil {
			return err
		}
		last := pending[len(pending)-1]

		// The final packet is "sent reliably" (§3.2.3): retransmitted until
		// a response arrives. For the full-retransmission strategies a
		// silent Tr instead retransmits the whole sequence (§3.2.1–3.2.2),
		// so their inner loop runs exactly once per round.
		lastTries := 0
		for attempts < c.MaxAttempts {
			attempts++
			// The FlagLast packet is always sent synchronously so that Tr
			// starts when it has actually left the interface. Its attempt
			// number advances per retry so retries count as retransmissions.
			if err := sendData(env, c, res, scratch, last, total, round+lastTries, true, false); err != nil {
				return err
			}
			lastTries++
			sent := env.Now()
			nak, done := awaitBlastResponse(env, c, res, end, est.timeout())
			if (done || nak != nil) && lastTries == 1 {
				// Karn's rule: the response unambiguously answers this
				// round's single transmission of the reliable last.
				est.sample(env.Now() - sent)
			}
			if done {
				return nil
			}
			if nak != nil {
				// A NAK: reshape the pending set per the strategy.
				pending = pending[:0]
				switch c.Strategy {
				case FullNak:
					for seq := base; seq < end; seq++ {
						pending = append(pending, seq)
					}
				case GoBackN:
					from := int(nak.Seq)
					if from < base {
						from = base
					}
					if from >= end {
						from = end - 1 // defensive: stale NAK beyond window
					}
					for seq := from; seq < end; seq++ {
						pending = append(pending, seq)
					}
				case Selective:
					for _, seq := range filterWindow(nakMissing(nak), base, end) {
						pending = append(pending, seq)
					}
					if len(pending) == 0 {
						pending = append(pending, end-1)
					}
				default: // FullNoNak receivers never NAK; treat as timeout
					for seq := base; seq < end; seq++ {
						pending = append(pending, seq)
					}
				}
				round++
				break
			}
			// Timeout.
			switch c.Strategy {
			case FullNoNak, FullNak:
				// Retransmit the whole sequence.
				pending = pending[:0]
				for seq := base; seq < end; seq++ {
					pending = append(pending, seq)
				}
				round++
			case GoBackN, Selective:
				// Retransmit only the reliable last packet.
				continue
			}
			break
		}
	}
	return fmt.Errorf("blast window [%d,%d): %w", base, end, ErrGiveUp)
}

// sendData transmits one data packet, choosing sync or async semantics.
// scratch, when non-nil, is reused instead of allocating a fresh packet.
func sendData(env Env, c Config, res *SendResult, scratch *wire.Packet, seq, total, attempt int, last, async bool) error {
	var pkt *wire.Packet
	if scratch != nil {
		pkt = c.fillData(scratch, seq, total, attempt, last || seq == total-1)
	} else {
		pkt = c.dataPacket(seq, total, attempt, last || seq == total-1)
	}
	if last {
		pkt.Flags |= wire.FlagLast
	}
	var err error
	if async {
		err = env.SendAsync(pkt)
	} else {
		err = env.Send(pkt)
	}
	if err != nil {
		return err
	}
	res.DataPackets++
	if attempt > 0 {
		res.Retransmits++
	}
	return nil
}

// awaitBlastResponse waits up to timeout for the receiver's verdict on the
// window ending at end. It returns (nil, true) when a cumulative ack
// covering the window arrived, (nak, false) when a NAK arrived, and
// (nil, false) on timeout.
func awaitBlastResponse(env Env, c Config, res *SendResult, end int, timeout time.Duration) (nak *wire.Packet, done bool) {
	remaining := timeout
	for remaining > 0 {
		t0 := env.Now()
		resp, err := env.Recv(remaining)
		if err != nil {
			res.Timeouts++
			return nil, false
		}
		remaining -= env.Now() - t0
		if resp.Trans != c.TransferID {
			continue
		}
		switch resp.Type {
		case wire.TypeAck:
			res.AcksReceived++
			if int(resp.Seq) >= end {
				return nil, true
			}
			// Stale ack from an earlier window: keep waiting.
		case wire.TypeNak:
			res.NaksReceived++
			if int(resp.Seq) >= end {
				continue // nonsensical; ignore
			}
			return resp, false
		}
	}
	res.Timeouts++
	return nil, false
}

// nakMissing extracts the selective missing set from a NAK, decoding the
// bitmap payload for real packets or using the in-memory list for simulated
// ones.
func nakMissing(nak *wire.Packet) []uint32 {
	if nak.SimMissing != nil {
		return nak.SimMissing
	}
	if len(nak.Payload) > 0 {
		if missing, err := wire.DecodeMissing(nak.Payload); err == nil {
			return missing
		}
	}
	// Degenerate NAK: fall back to go-back-n from its first-missing field.
	return []uint32{nak.Seq}
}

// filterWindow filters a missing list to the window [base, end), as ints.
func filterWindow(missing []uint32, base, end int) []int {
	out := make([]int, 0, len(missing))
	for _, m := range missing {
		if s := int(m); s >= base && s < end {
			out = append(out, s)
		}
	}
	return out
}

// recvBlast implements the blast receiver for all four strategies: data
// packets are accepted in any order into the pre-allocated transfer buffer
// (the MoveTo contract guarantees it exists); a FlagLast arrival triggers
// the strategy's response (§3.2).
func recvBlast(env Env, c Config) (RecvResult, error) {
	var res RecvResult
	n := c.NumPackets()
	got := make([]bool, n)
	count := 0
	firstMissing := 0
	high := 0 // high-water mark of FlagLast sequence numbers + 1
	start := env.Now()
	idle := c.receiverIdle()

	// respond builds the strategy's reply to a FlagLast packet; any other
	// data packet (including duplicates arriving during linger) gets no
	// reply — the paper's receiver speaks only when "it receives the last
	// packet" (§3.2.2). The window being judged ends at the highest
	// FlagLast sequence seen so far: in every window's first round the true
	// final packet carries FlagLast, and later rounds may flag an earlier
	// packet (the reliable last of a partial or selective retransmission,
	// §3.2.3) without shrinking the window under judgement.
	respond := func(pkt *wire.Packet) *wire.Packet {
		if !pkt.IsLast() {
			return nil
		}
		if e := int(pkt.Seq) + 1; e > high {
			high = e
		}
		windowEnd := high
		for firstMissing < n && got[firstMissing] {
			firstMissing++
		}
		if firstMissing >= windowEnd {
			return c.ackPacket(windowEnd, n)
		}
		if c.Strategy == FullNoNak {
			return nil // §3.2.1: no negative acknowledgements
		}
		var missing []uint32
		if c.Strategy == Selective {
			for seq := firstMissing; seq < windowEnd; seq++ {
				if !got[seq] {
					missing = append(missing, uint32(seq))
				}
			}
		}
		nak, err := c.nakPacket(firstMissing, n, missing)
		if err != nil {
			// Bitmap too wide for one NAK: degrade to go-back-n.
			nak, _ = c.nakPacket(firstMissing, n, nil)
		}
		return nak
	}

	for count < n {
		pkt, err := env.Recv(idle)
		if err != nil {
			res.Elapsed = env.Now() - start
			return res, fmt.Errorf("blast receiver idle with %d/%d packets: %w", count, n, err)
		}
		if pkt.Trans != c.TransferID {
			continue
		}
		if pkt.Type == wire.TypeBusy {
			// Admission refusal: the server will not serve this session.
			// Not a timeout, so Request surfaces it to the caller at once.
			// Ignored once data has flowed — by then we were admitted, and
			// the BUSY is a straggler from an earlier refused REQ.
			if res.DataPackets == 0 {
				res.Elapsed = env.Now() - start
				return res, busyErrorOf(pkt)
			}
			continue
		}
		if pkt.Type == wire.TypeReq {
			// Retransmitted push announcement: our go-ahead was lost.
			if err := env.Send(goAhead(c)); err != nil {
				return res, err
			}
			continue
		}
		if pkt.Type != wire.TypeData {
			continue
		}
		res.DataPackets++
		seq := int(pkt.Seq)
		if seq >= 0 && seq < n && !got[seq] {
			got[seq] = true
			count++
			deliverChunk(&res, c, pkt)
		} else {
			res.Duplicates++
		}
		if pkt.IsLast() {
			if reply := respond(pkt); reply != nil {
				if err := env.Send(reply); err != nil {
					return res, err
				}
				if reply.Type == wire.TypeAck {
					res.AcksSent++
				} else {
					res.NaksSent++
				}
			}
		}
	}
	res.Completed = true
	res.Elapsed = env.Now() - start
	finishData(&res)
	lingerReAck(env, c, &res, respond)
	return res, nil
}
