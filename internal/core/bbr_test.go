package core

import (
	"testing"
	"time"
)

// paced builds a clean observation with a measured duration, as a slow path
// would report it.
func paced(n int, perPacket time.Duration) WindowObs {
	return WindowObs{Packets: n, Elapsed: time.Duration(n) * perPacket}
}

// pacedOn is paced as the send side of a paced transfer actually measures
// it: the controller's in-effect gap is slept per packet on top of the
// path's own service time, and Observe nets that sleep back out.
func pacedOn(c *bbrController, n int, perPacket time.Duration) WindowObs {
	return WindowObs{Packets: n, Elapsed: time.Duration(n) * (perPacket + c.Gap())}
}

func TestBBRStartupDoublesLikeSlowStart(t *testing.T) {
	c := newBBRController(ControllerConfig{})
	want := []int{64, 128, 256, 512, 512}
	for i, w := range want {
		c.Observe(clean(c.Window()))
		if c.Window() != w {
			t.Fatalf("after clean window %d: window %d, want %d", i+1, c.Window(), w)
		}
	}
}

// The defining property versus AIMD: isolated NAK-repaired loss — the
// signature of ~1% random drop — does not shrink the window at all, and
// only a run of bbrLossEpoch consecutive lossy windows drains it by an
// eighth.
func TestBBRNoCollapseAtModestLoss(t *testing.T) {
	c := newBBRController(ControllerConfig{InitWindow: 256})
	c.Observe(nakked(256)) // exits startup, tolerated
	if c.Window() != 256 {
		t.Fatalf("single lossy window cut the window to %d", c.Window())
	}
	// Alternating loss/clean (a steady 1%-drop path at large windows) never
	// accumulates a loss run, so the window only ever grows.
	for i := 0; i < 20; i++ {
		c.Observe(nakked(c.Window()))
		c.Observe(clean(c.Window()))
	}
	if c.Window() < 256 {
		t.Errorf("alternating modest loss drained the window to %d", c.Window())
	}
	// Persistent loss is congestion: three consecutive lossy windows drain.
	c2 := newBBRController(ControllerConfig{InitWindow: 256})
	c2.Observe(nakked(256))
	c2.Observe(nakked(256))
	if c2.Window() != 256 {
		t.Fatalf("window moved before the loss epoch completed: %d", c2.Window())
	}
	c2.Observe(nakked(256))
	if c2.Window() != 256-256/8 {
		t.Errorf("after a full loss epoch: window %d, want %d", c2.Window(), 256-256/8)
	}
}

func TestBBRTimeoutHalvesAndPaces(t *testing.T) {
	c := newBBRController(ControllerConfig{InitWindow: 256})
	c.Observe(timeout(256))
	if c.Window() != 128 {
		t.Fatalf("after timeout: window %d, want 128 (halved)", c.Window())
	}
	if c.Gap() != 5*time.Microsecond {
		t.Fatalf("after timeout: gap %v, want one GapStep", c.Gap())
	}
	st := c.Stats()
	if st.Cuts != 1 || st.TimeoutCuts != 1 {
		t.Errorf("stats %+v", st)
	}
}

// Pacing cycles a gain over the estimated delivery interval on genuinely
// slow paths (interval ≥ bbrPaceFloor), probing faster one phase and
// draining slower another, and never actuates on loopback-grade paths
// where a sleep costs more than it spaces.
func TestBBRPacingGainCycle(t *testing.T) {
	c := newBBRController(ControllerConfig{InitWindow: 512, MaxWindow: 512, MaxGap: time.Millisecond})
	const interval = 40 * time.Microsecond
	c.Observe(pacedOn(c, 512, interval)) // leaves startup at MaxWindow
	seen := map[time.Duration]bool{}
	for i := 0; i < bbrCycleLen; i++ {
		c.Observe(pacedOn(c, 512, interval))
		seen[c.Gap()] = true
	}
	if !seen[interval*4/5] {
		t.Errorf("probe-up gap %v never seen (gaps: %v)", interval*4/5, seen)
	}
	if !seen[interval*5/4] {
		t.Errorf("drain gap %v never seen (gaps: %v)", interval*5/4, seen)
	}
	if !seen[interval] {
		t.Errorf("cruise gap %v never seen (gaps: %v)", interval, seen)
	}
	// Loopback-grade interval: no pacing at all.
	fast := newBBRController(ControllerConfig{InitWindow: 512})
	for i := 0; i < 10; i++ {
		fast.Observe(pacedOn(fast, 512, time.Microsecond))
		if fast.Gap() != 0 {
			t.Fatalf("paced a %v-per-packet path with gap %v", time.Microsecond, fast.Gap())
		}
	}
}

// One RTO-dominated window must not poison the delivery model: its Elapsed
// (the estimator's patience, ~1 ms/packet over a big window) is excluded
// from the rate ring, and the in-effect gap is netted out of later samples,
// so pacing releases as soon as clean windows flow again. Before these
// exclusions, a single early timeout on the real UDP path locked the sender
// into a self-confirming ~1 ms/packet stall (gap inflates Elapsed, Elapsed
// confirms the gap) and udp_pull_bbr_loss1 collapsed to ~4 MB/s.
func TestBBRTimeoutDoesNotPoisonDeliveryModel(t *testing.T) {
	c := newBBRController(ControllerConfig{InitWindow: 256})
	c.Observe(clean(256)) // startup exit path irrelevant; seed one sample
	c.Observe(WindowObs{Packets: 256, Timeouts: 1, Elapsed: 250 * time.Millisecond})
	// Clean loopback-grade windows resume: the stale 250 ms must not pace.
	for i := 0; i < bbrRateWindow; i++ {
		c.Observe(pacedOn(c, c.Window(), 2*time.Microsecond))
	}
	if g := c.Gap(); g != 0 {
		t.Fatalf("timeout-tainted model still pacing: gap %v", g)
	}
}
func TestBBRWindowTrajectoryTimingFree(t *testing.T) {
	a := newBBRController(ControllerConfig{})
	b := newBBRController(ControllerConfig{})
	obs := []WindowObs{clean(32), nakked(64), clean(64), timeout(80), clean(40), nakked(56), nakked(56), nakked(56), clean(49)}
	for i, o := range obs {
		oa, ob := o, o
		oa.Elapsed = time.Duration(i+1) * 3 * time.Millisecond
		ob.Elapsed = time.Duration(i+1) * 17 * time.Microsecond
		a.Observe(oa)
		b.Observe(ob)
		if a.Window() != b.Window() || a.Batch() != b.Batch() {
			t.Fatalf("window trajectory diverged on timing at observation %d: %d/%d vs %d/%d",
				i, a.Window(), a.Batch(), b.Window(), b.Batch())
		}
	}
}

func TestBBRDeterministic(t *testing.T) {
	obs := []WindowObs{clean(32), clean(64), nakked(128), paced(128, 20*time.Microsecond),
		timeout(72), clean(18), nakked(26), nakked(26), nakked(26), clean(20)}
	a := newBBRController(ControllerConfig{})
	b := newBBRController(ControllerConfig{})
	for i, o := range obs {
		a.Observe(o)
		b.Observe(o)
		if a.Window() != b.Window() || a.Gap() != b.Gap() || a.Batch() != b.Batch() {
			t.Fatalf("diverged at observation %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
