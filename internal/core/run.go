package core

import "blastlan/internal/wire"

// RunSender executes the sending side of the configured transfer on env.
// It returns when the whole transfer has been acknowledged (or abandoned
// with ErrGiveUp after Config.MaxAttempts rounds).
func RunSender(env Env, cfg Config) (SendResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return SendResult{}, err
	}
	var res SendResult
	switch c.Protocol {
	case StopAndWait:
		res, err = sendStopAndWait(env, c)
	case SlidingWindow:
		res, err = sendSlidingWindow(env, c)
	case Blast:
		res, err = sendBlast(env, c, false)
	case BlastAsync:
		res, err = sendBlast(env, c, true)
	default:
		return SendResult{}, ErrBadConfig // unreachable after withDefaults
	}
	if err == nil {
		// Best-effort FIN after the measurement closes: releases the
		// receiver's linger promptly; the linger timeout covers its loss.
		_ = env.Send(c.finPacket())
	}
	return res, err
}

// RunReceiver executes the receiving side of the configured transfer on
// env. Per the paper's MoveTo/MoveFrom contract the receiver knows the
// transfer's size before it starts and has buffers allocated.
//
// After completing, the receiver lingers for Config.Linger re-answering
// retransmissions whose acknowledgements were lost, then returns.
func RunReceiver(env Env, cfg Config) (RecvResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, err
	}
	switch c.Protocol {
	case StopAndWait, SlidingWindow:
		return recvInOrder(env, c)
	case Blast, BlastAsync:
		return recvBlast(env, c)
	}
	return RecvResult{}, ErrBadConfig // unreachable after withDefaults
}

// TransferChecksum is the whole-transfer software checksum (§4 cites
// Spector's suggestion of an overall checksum on the entire data segment).
// Receivers of real transfers report it in RecvResult.Checksum; senders can
// compare with TransferChecksum(payload).
func TransferChecksum(data []byte) uint16 { return wire.Checksum(data) }
