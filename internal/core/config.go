package core

import (
	"fmt"
	"strings"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Protocol selects one of the paper's three protocol classes (Figure 1),
// plus the double-buffered blast variant of Figure 3.d.
type Protocol int

// Protocols.
const (
	// StopAndWait sends one packet and waits for its acknowledgement before
	// sending the next.
	StopAndWait Protocol = iota
	// SlidingWindow acknowledges every packet but the sender does not wait;
	// the window is assumed large enough that it never closes (§1).
	SlidingWindow
	// Blast transmits all data packets in sequence with a single
	// acknowledgement for the entire sequence.
	Blast
	// BlastAsync is Blast using SendAsync for the unreliable packets so a
	// double-buffered interface can overlap copies with transmissions
	// (Figure 3.d). On a single-buffered interface it behaves like Blast.
	BlastAsync
)

// String returns the name used in experiment tables.
func (p Protocol) String() string {
	switch p {
	case StopAndWait:
		return "stop-and-wait"
	case SlidingWindow:
		return "sliding-window"
	case Blast:
		return "blast"
	case BlastAsync:
		return "blast-dblbuf"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Strategy selects the blast retransmission strategy (§3.2).
type Strategy int

// Retransmission strategies, in the paper's order.
const (
	// FullNoNak retransmits the full sequence on timeout; the receiver
	// never sends negative acknowledgements (§3.2.1).
	FullNoNak Strategy = iota
	// FullNak retransmits the full sequence on a NAK or timeout; the
	// receiver NAKs when the last packet arrives with gaps (§3.2.2).
	FullNak
	// GoBackN retransmits from the first packet not received, as reported
	// by the NAK (§3.2.3 "partial retransmission"). The paper's
	// recommendation.
	GoBackN
	// Selective retransmits exactly the packets the NAK's bitmap reports
	// missing (§3.2.3).
	Selective
)

// String returns the name used in experiment tables.
func (s Strategy) String() string {
	switch s {
	case FullNoNak:
		return "full-no-nak"
	case FullNak:
		return "full-nak"
	case GoBackN:
		return "go-back-n"
	case Selective:
		return "selective"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config describes one transfer. Both sides must agree on TransferID,
// Bytes, ChunkSize, Protocol, Strategy and Window (in the paper's setting
// the MoveTo/MoveFrom handshake establishes this agreement: the recipient
// has buffers allocated before the transfer starts).
type Config struct {
	// TransferID demultiplexes concurrent transfers.
	TransferID uint32

	// Bytes is the total transfer size.
	Bytes int

	// ChunkSize is the number of transfer bytes carried per data packet.
	// In simulated runs it is also the packet's size on the virtual wire
	// (the paper's convention: 1024-byte data packets, headers included).
	// Defaults to params.DataPacketSize.
	ChunkSize int

	// AckSize is the simulated wire size of acknowledgement and NAK
	// packets. Defaults to params.AckPacketSize.
	AckSize int

	// Protocol selects the protocol class.
	Protocol Protocol

	// Strategy selects the blast retransmission strategy. Ignored by
	// StopAndWait and SlidingWindow.
	Strategy Strategy

	// RetransTimeout is the paper's Tr: how long a sender waits for a
	// response before retransmitting. Defaults to 100 ms.
	RetransTimeout time.Duration

	// AdaptiveTr, when set, replaces the fixed Tr with a Jacobson/Karn
	// estimator seeded by RetransTimeout (see rto.go): the sender learns
	// the response time online instead of requiring a hand-picked multiple
	// of the transfer time. Applies to stop-and-wait and blast.
	AdaptiveTr bool

	// MinRTO bounds the adaptive timeout from below. Zero means the
	// built-in 1 ms floor, which suits a quiet LAN; hosts with coarse
	// timers or heavy scheduling noise (virtualized runners, the race
	// detector) can raise it so a delayed-but-coming response is never
	// mistaken for a loss. The cross-substrate conformance suites pin
	// timing-independent counters by raising it to the fixed Tr. Ignored
	// unless the estimator is active (AdaptiveTr or Controller).
	MinRTO time.Duration

	// Window, when non-zero, splits a blast transfer into multiple blasts
	// of at most Window packets each (§3.1.3 "multiple blasts"). Zero means
	// a single blast. Ignored by StopAndWait and SlidingWindow.
	Window int

	// Controller names the rate-control policy that drives a blast transfer
	// instead of the fixed Window: a registered RateController factory
	// ("aimd", "bbr", "autotune"; see ratecontrol.go) whose window size,
	// syscall batch and pacing react to observed NAKs, retransmissions and
	// timeouts, with the retransmission interval learned online (AdaptiveTr
	// is implied). Window, when set, seeds the controller's initial window.
	// Empty runs the fixed schedule. Unknown names are rejected by
	// ValidateConfig. Ignored by StopAndWait and SlidingWindow.
	Controller string

	// Adaptive is the deprecated PR-4 spelling of Controller: true maps to
	// Controller="aimd" when Controller is empty. Kept so existing callers
	// and the wire flag bit keep working.
	Adaptive bool

	// StripeOffset and StripeTotal identify this transfer as one stripe of
	// a larger logical stream: the transfer's Bytes start StripeOffset
	// bytes into a StripeTotal-byte stream. Both zero for a standalone
	// transfer. StripeOffset must be chunk-aligned; the values ride the REQ
	// so a serving side can address exactly the requested range (see
	// stripe.go). They do not change the local engine's behaviour.
	StripeOffset int
	StripeTotal  int

	// Name identifies the remote object a pull addresses — a file the
	// serving side resolves by name through its store. Empty for anonymous
	// (seeded or pushed) transfers. Rides the REQ's name extension; must
	// satisfy wire.ValidReqName when set.
	Name string

	// MaxAttempts bounds the number of transmission rounds (per window)
	// before the sender gives up with ErrGiveUp. Defaults to 10000.
	MaxAttempts int

	// Linger is how long the receiver stays alive after completing the
	// transfer to re-acknowledge retransmissions whose acks were lost. The
	// timer restarts on every received packet. Defaults to
	// 4*RetransTimeout + 1 s.
	Linger time.Duration

	// ReceiverIdle bounds how long the receiver waits for the next packet
	// of an incomplete transfer before concluding the sender is gone.
	// Defaults to 64*RetransTimeout + 10 s (virtual time is free in
	// simulation; real callers should set a tighter bound).
	ReceiverIdle time.Duration

	// Payload, when non-nil, is the data to transfer (real substrates).
	// When nil the transfer is simulated: packets carry sizes only.
	Payload []byte

	// Source, when non-nil, supplies packet payloads on demand instead of
	// Payload, so a large transfer never needs a contiguous in-memory copy
	// (a 1 GB pull is generated chunk by chunk). Mutually exclusive with
	// Payload. Retransmissions call it again for the same seq, so it must
	// be deterministic.
	Source ChunkSource

	// Sink, when non-nil, consumes delivered chunks instead of assembling
	// RecvResult.Data: each distinct data packet is handed over exactly
	// once, with its byte offset in the transfer. Blast receivers deliver
	// out of order. RecvResult.Checksum is still reported (computed
	// incrementally); RecvResult.Data stays nil.
	Sink ChunkSink

	// srcBuf is the reusable chunk scratch handed to Source; sized once in
	// withDefaults so the steady-state send loop allocates nothing.
	srcBuf []byte

	// surfaceBusy makes Request return a server's BUSY refusal to the
	// caller immediately instead of honoring the retry-after hint inside
	// its own attempt loop. Set by PullResume, which owns the backoff
	// policy (jitter, budgets, stats) and must observe every refusal.
	surfaceBusy bool
}

// ChunkSource deterministically supplies the payload of data packet seq. It
// may fill dst (a scratch of at least ChunkSize bytes, reused across calls)
// and return a prefix of it, or return its own slice; the engine consumes
// the bytes before the next call. The final packet's chunk is short.
type ChunkSource func(seq int, dst []byte) []byte

// ChunkSink consumes one delivered chunk at byte offset off of the
// transfer. The slice is only valid during the call.
type ChunkSink func(off int, chunk []byte)

// realMode reports whether the transfer moves real bytes (as opposed to a
// payload-elided simulation).
func (c *Config) realMode() bool { return c.Payload != nil || c.Source != nil }

// withDefaults returns a copy with defaults applied, or an error.
func (c Config) withDefaults() (Config, error) {
	if c.ChunkSize == 0 {
		c.ChunkSize = params.DataPacketSize
	}
	if c.AckSize == 0 {
		c.AckSize = params.AckPacketSize
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = 100 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10000
	}
	if c.Linger == 0 {
		c.Linger = 4*c.RetransTimeout + time.Second
	}
	switch {
	case c.Bytes <= 0:
		return c, fmt.Errorf("%w: Bytes must be positive, got %d", ErrBadConfig, c.Bytes)
	case c.ChunkSize <= 0:
		return c, fmt.Errorf("%w: ChunkSize must be positive", ErrBadConfig)
	case c.AckSize <= 0:
		return c, fmt.Errorf("%w: AckSize must be positive", ErrBadConfig)
	case c.RetransTimeout < 0:
		return c, fmt.Errorf("%w: RetransTimeout must be positive", ErrBadConfig)
	case c.Window < 0:
		return c, fmt.Errorf("%w: Window must be non-negative", ErrBadConfig)
	case c.MaxAttempts < 1:
		return c, fmt.Errorf("%w: MaxAttempts must be positive", ErrBadConfig)
	case c.Protocol < StopAndWait || c.Protocol > BlastAsync:
		return c, fmt.Errorf("%w: unknown protocol %d", ErrBadConfig, c.Protocol)
	case c.Strategy < FullNoNak || c.Strategy > Selective:
		return c, fmt.Errorf("%w: unknown strategy %d", ErrBadConfig, c.Strategy)
	case c.Payload != nil && len(c.Payload) != c.Bytes:
		return c, fmt.Errorf("%w: len(Payload)=%d but Bytes=%d", ErrBadConfig, len(c.Payload), c.Bytes)
	case c.Payload != nil && c.Source != nil:
		return c, fmt.Errorf("%w: Payload and Source are mutually exclusive", ErrBadConfig)
	}
	if c.realMode() && c.ChunkSize > wire.AbsMaxPayload {
		return c, fmt.Errorf("%w: ChunkSize %d exceeds wire.AbsMaxPayload %d", ErrBadConfig, c.ChunkSize, wire.AbsMaxPayload)
	}
	if err := c.validateStripe(); err != nil {
		return c, err
	}
	if c.Controller == "" && c.Adaptive {
		c.Controller = ControllerAIMD
	}
	if c.Controller != "" {
		if _, ok := controllerRegistry[c.Controller]; !ok {
			return c, fmt.Errorf("%w: unknown controller %q (registered: %s)",
				ErrBadConfig, c.Controller, strings.Join(ControllerNames(), ", "))
		}
		c.Adaptive = true
	}
	if c.Name != "" && !wire.ValidReqName(c.Name) {
		return c, fmt.Errorf("%w: Name %q does not fit the request encoding", ErrBadConfig, c.Name)
	}
	if c.Source != nil {
		c.srcBuf = make([]byte, c.ChunkSize)
	}
	return c, nil
}

// NumPackets returns the number of data packets the transfer needs
// (the paper's N or D).
func (c Config) NumPackets() int {
	chunk := c.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	if c.Bytes <= 0 {
		return 0
	}
	return (c.Bytes + chunk - 1) / chunk
}

// dataPacket builds the data packet for sequence number seq.
func (c *Config) dataPacket(seq, total int, attempt int, last bool) *wire.Packet {
	return c.fillData(new(wire.Packet), seq, total, attempt, last)
}

// fillData overwrites p with the data packet for sequence number seq and
// returns it. Senders on substrates that consume packets synchronously
// (core.PacketReuser) pass one scratch packet for the whole transfer, which
// keeps the steady-state send loop allocation-free.
func (c *Config) fillData(p *wire.Packet, seq, total int, attempt int, last bool) *wire.Packet {
	*p = wire.Packet{
		Type:  wire.TypeData,
		Trans: c.TransferID,
		Seq:   uint32(seq),
		Total: uint32(total),
	}
	if attempt > 255 {
		attempt = 255
	}
	p.Attempt = uint8(attempt)
	if last {
		p.Flags |= wire.FlagLast
	}
	switch {
	case c.Payload != nil:
		lo := seq * c.ChunkSize
		hi := lo + c.ChunkSize
		if hi > len(c.Payload) {
			hi = len(c.Payload)
		}
		p.Payload = c.Payload[lo:hi]
	case c.Source != nil:
		p.Payload = c.Source(seq, c.srcBuf)
	}
	// On a simulated wire the packet occupies ChunkSize bytes (the final
	// packet only its remainder) — the paper's convention, which counts
	// headers inside the quoted 1024-byte data packet size. Real sockets
	// ignore VirtualSize and encode header + payload.
	size := c.ChunkSize
	if rem := c.Bytes - seq*c.ChunkSize; rem < size {
		size = rem
	}
	p.VirtualSize = size
	return p
}

// ackPacket builds a cumulative acknowledgement: nextExpected == total
// acknowledges the whole transfer.
func (c *Config) ackPacket(nextExpected, total int) *wire.Packet {
	p := &wire.Packet{
		Type:  wire.TypeAck,
		Trans: c.TransferID,
		Seq:   uint32(nextExpected),
		Total: uint32(total),
	}
	if nextExpected >= total {
		p.Flags |= wire.FlagAllReceived
	}
	p.VirtualSize = c.AckSize
	return p
}

// finPacket builds the post-completion FIN (FlagDone): a best-effort
// notice from the sender that its final acknowledgement arrived, releasing
// the receiver from its linger.
func (c *Config) finPacket() *wire.Packet {
	return &wire.Packet{
		Type:        wire.TypeAck,
		Trans:       c.TransferID,
		Flags:       wire.FlagDone,
		VirtualSize: c.AckSize,
	}
}

// nakPacket builds a negative acknowledgement. firstMissing is always set;
// missing carries the selective bitmap when strategy is Selective.
func (c *Config) nakPacket(firstMissing, total int, missing []uint32) (*wire.Packet, error) {
	p := &wire.Packet{
		Type:  wire.TypeNak,
		Trans: c.TransferID,
		Seq:   uint32(firstMissing),
		Total: uint32(total),
	}
	if len(missing) > 0 {
		payload, err := wire.EncodeMissing(missing)
		if err != nil {
			return nil, err
		}
		p.Payload = payload
		// Preserve the decoded form so simulated senders need not re-parse.
		p.SimMissing = missing
	}
	p.VirtualSize = c.AckSize
	return p, nil
}

// SendResult reports the sender side of a transfer.
type SendResult struct {
	Elapsed      time.Duration // start of first send to receipt of final ack
	DataPackets  int           // data packets transmitted, including retransmissions
	Retransmits  int           // data packets beyond the first transmission of each
	Rounds       int           // transmission rounds (1 = error-free)
	Timeouts     int           // Recv deadlines that expired
	AcksReceived int
	NaksReceived int

	// Controller summarises the rate-control trajectory of a controlled
	// transfer (nil when no Config.Controller policy drove it) — the
	// per-stripe stats feed. Stats.Policy names the policy that ran.
	Controller *ControllerStats
}

// RecvResult reports the receiver side of a transfer.
type RecvResult struct {
	Elapsed      time.Duration // first packet receipt to transfer completion
	DataPackets  int           // data packets received, including duplicates
	Duplicates   int           // data packets that were already held
	AcksSent     int
	NaksSent     int
	Completed    bool
	Bytes        int    // distinct payload bytes received
	Data         []byte // reassembled payload (real mode only)
	Checksum     uint16 // Internet checksum of Data (real mode only)
	LingerEvents int    // retransmissions handled after completion
	LingerAcks   int    // of AcksSent, those sent during the linger
	LingerNaks   int    // of NaksSent, those sent during the linger

	// sinkSum incrementally accumulates Checksum for Sink-mode transfers,
	// where no contiguous Data buffer ever exists; usedSink records that
	// the transfer streamed.
	sinkSum  wire.SumAcc
	usedSink bool
}
