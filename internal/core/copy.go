package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Third-party copy: a thin control session through which an orchestrator
// asks server A to push a named object to server B. The data path is the
// ordinary push engine between A and B — the orchestrator only watches.
// This is the bulk-replication shape WLCG/XRootD HTTP-TPC uses: the client
// that decides a copy should happen is rarely the machine that should
// carry the bytes.
//
// The exchange, all ack-sized control packets on the A↔orchestrator
// session:
//
//	orchestrator → A   REQ{Copy, Name, Target}   retransmitted on silence
//	A → orchestrator   progress acks             TypeAck, 8-byte bytes-so-far
//	A → orchestrator   final reply               TypeAck+FlagDone+8-byte total
//	                   or failure                TypeNak carrying the error text
//
// The first progress ack (0 bytes) doubles as the go-ahead that stops the
// REQ retransmit loop; the final reply is idempotent — A lingers briefly
// re-answering duplicate REQs, like a stat.

// copyProgressQuantum is how many new bytes A must move before it emits
// another progress ack — enough feedback to keep the orchestrator's
// patience window open without an ack per chunk.
const copyProgressQuantum = 1 << 20

// maxCopyErrLen bounds the error text a failure NAK carries.
const maxCopyErrLen = 200

// copyProgressPacket reports bytes moved so far. It is distinguishable
// from every other session packet: transfer acks carry no payload, stat
// and copy replies set FlagDone.
func copyProgressPacket(trans uint32, seq uint32, bytes int64) *wire.Packet {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, uint64(bytes))
	return &wire.Packet{
		Type:        wire.TypeAck,
		Trans:       trans,
		Seq:         seq,
		Payload:     payload,
		VirtualSize: params.AckPacketSize,
	}
}

// copyProgress recognises a progress ack for the given transfer id.
func copyProgress(p *wire.Packet, trans uint32) (int64, bool) {
	if p.Type != wire.TypeAck || p.Trans != trans ||
		p.Flags&wire.FlagDone != 0 || len(p.Payload) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(p.Payload)), true
}

// copyFailPacket reports a failed copy with its error text. A NAK on a
// copy session can mean nothing else — the orchestrator never receives
// data packets.
func copyFailPacket(trans uint32, msg string) *wire.Packet {
	if len(msg) > maxCopyErrLen {
		msg = msg[:maxCopyErrLen]
	}
	return &wire.Packet{
		Type:        wire.TypeNak,
		Trans:       trans,
		Payload:     []byte(msg),
		VirtualSize: params.AckPacketSize,
	}
}

// RemoteCopyError reports that the serving side attempted the copy and
// failed; Msg is the server's one-line explanation.
type RemoteCopyError struct {
	Msg string
}

func (e *RemoteCopyError) Error() string {
	return fmt.Sprintf("remote copy failed: %s", e.Msg)
}

// validCopyTarget reports whether a target address fits the request
// encoding's second extension.
func validCopyTarget(target string) bool {
	if target == "" || len(target) > wire.MaxReqTarget {
		return false
	}
	for i := 0; i < len(target); i++ {
		if target[i] == 0 {
			return false
		}
	}
	return true
}

// Copy asks the serving side to push the named object to target and waits
// for the outcome, reporting intermediate progress through onProgress
// (which may be nil). cfg supplies the transfer id, retransmit timeout and
// attempt bound, exactly as for Stat; Bytes may be zero. The returned
// count is the server's byte total for the completed copy.
func Copy(env Env, cfg Config, name, target string, onProgress func(int64)) (int64, error) {
	if !wire.ValidReqName(name) {
		return 0, fmt.Errorf("%w: object name %q does not fit the request encoding", ErrBadConfig, name)
	}
	if !validCopyTarget(target) {
		return 0, fmt.Errorf("%w: copy target %q does not fit the request encoding", ErrBadConfig, target)
	}
	tr := cfg.RetransTimeout
	if tr <= 0 {
		tr = 100 * time.Millisecond
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 10
	}
	size := cfg.AckSize
	if size <= 0 {
		size = params.AckPacketSize
	}
	// Once A has acknowledged the ask, patience stretches to the receiver's
	// idle bound: the copy itself can be long, and silence only means A is
	// between progress quanta (retransmitting to B, say) — the same reason
	// a data receiver waits ReceiverIdle for an incomplete transfer.
	patience := cfg.ReceiverIdle
	if patience <= 0 {
		patience = 64*tr + 10*time.Second
	}
	req := &wire.Packet{
		Type:  wire.TypeReq,
		Trans: cfg.TransferID,
		Payload: wire.EncodeReq(wire.Req{
			Copy:     true,
			Name:     name,
			Target:   target,
			TrMicros: uint64(tr / time.Microsecond),
		}),
		VirtualSize: size,
	}
	accepted := false
	for attempt := 0; attempt < attempts; attempt++ {
		if !accepted {
			if err := env.Send(req); err != nil {
				return 0, err
			}
		}
		remaining := 4 * tr
		if accepted {
			remaining = patience
		}
		for remaining > 0 {
			t0 := env.Now()
			resp, err := env.Recv(remaining)
			if err != nil {
				if IsTimeout(err) {
					break // re-request (or, once accepted, give up below)
				}
				return 0, err
			}
			remaining -= env.Now() - t0
			switch {
			case resp.Type == wire.TypeBusy && resp.Trans == cfg.TransferID:
				return 0, busyErrorOf(resp)
			case resp.Type == wire.TypeNak && resp.Trans == cfg.TransferID:
				return 0, &RemoteCopyError{Msg: string(resp.Payload)}
			}
			if n, ok := statSize(resp, cfg.TransferID); ok {
				return n, nil
			}
			if n, ok := copyProgress(resp, cfg.TransferID); ok {
				accepted = true
				remaining = patience
				if onProgress != nil {
					onProgress(n)
				}
			}
		}
		if accepted {
			// A went quiet for a whole patience window after accepting:
			// re-asking cannot help (the session is gone), so report the
			// abandoned copy rather than spinning the attempt budget.
			return 0, fmt.Errorf("copy %q to %s: lost contact mid-copy: %w", name, target, ErrGiveUp)
		}
	}
	return 0, fmt.Errorf("copy %q to %s: %w", name, target, ErrGiveUp)
}

// ServeCopy runs the serving side of a third-party copy session: it emits
// the accepting progress ack, invokes run — which performs the actual A→B
// push and reports bytes moved through its progress callback — then sends
// the final reply (or the failure NAK) and lingers briefly to re-answer
// duplicate REQs idempotently. The returned count and error mirror run's.
func ServeCopy(env Env, cfg Config, run func(progress func(int64)) (int64, error)) (int64, error) {
	trans := cfg.TransferID
	tr := cfg.RetransTimeout
	if tr <= 0 {
		tr = 100 * time.Millisecond
	}
	linger := cfg.Linger
	if linger <= 0 {
		linger = 2*tr + 100*time.Millisecond
	}
	// The accepting ack: progress 0. Stops the orchestrator's REQ loop.
	seq := uint32(1)
	if err := env.Send(copyProgressPacket(trans, seq, 0)); err != nil {
		return 0, err
	}
	var lastReported int64
	progress := func(n int64) {
		if n-lastReported < copyProgressQuantum {
			return
		}
		lastReported = n
		seq++
		// Best-effort: a lost progress ack costs nothing, the next quantum
		// brings another.
		_ = env.Send(copyProgressPacket(trans, seq, n))
	}
	bytes, err := run(progress)
	final := StatReply(trans, bytes)
	if err != nil {
		final = copyFailPacket(trans, err.Error())
	}
	if serr := env.Send(final); serr != nil && err == nil {
		return bytes, serr
	}
	// Idempotent linger: a duplicate REQ (the final reply was lost) earns
	// the same reply again.
	remaining := linger
	for remaining > 0 {
		t0 := env.Now()
		pkt, rerr := env.Recv(remaining)
		if rerr != nil {
			break
		}
		remaining -= env.Now() - t0
		if pkt.Type == wire.TypeReq {
			_ = env.Send(final)
		}
	}
	return bytes, err
}
