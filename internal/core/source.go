package core

import "encoding/binary"

// SeededSource returns a ChunkSource generating deterministic pseudo-random
// transfer bytes: packet seq's chunk is derived from (seed, seq) alone, so
// retransmissions regenerate identical payloads and a daemon can serve an
// arbitrarily large pull without ever materialising it. The generator is a
// per-chunk splitmix64 stream and performs no allocation when dst has
// capacity for the chunk.
func SeededSource(seed int64, bytes, chunk int) ChunkSource {
	return func(seq int, dst []byte) []byte {
		n := chunk
		if rem := bytes - seq*chunk; rem < n {
			n = rem
		}
		if n < 0 {
			n = 0
		}
		if cap(dst) < n {
			dst = make([]byte, n)
		}
		dst = dst[:n]
		fillChunk(uint64(seed)+0x9e3779b97f4a7c15*uint64(seq+1), dst)
		return dst
	}
}

// SeededPayload materialises the full transfer a SeededSource generates —
// the verification-side convenience: a client that knows the seed can check
// a received transfer byte for byte (or just compare checksums) without the
// server ever buffering it.
func SeededPayload(seed int64, bytes, chunk int) []byte {
	src := SeededSource(seed, bytes, chunk)
	out := make([]byte, bytes)
	for seq, off := 0, 0; off < bytes; seq++ {
		off += copy(out[off:], src(seq, out[off:]))
	}
	return out
}

// fillChunk fills dst from a splitmix64 stream starting at state.
func fillChunk(state uint64, dst []byte) {
	var word [8]byte
	for len(dst) > 0 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		if len(dst) >= 8 {
			binary.LittleEndian.PutUint64(dst, z)
			dst = dst[8:]
			continue
		}
		binary.LittleEndian.PutUint64(word[:], z)
		copy(dst, word[:])
		return
	}
}
