package core

import (
	"fmt"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// This file implements the request handshake that precedes a pulled
// transfer: the paper's MoveFrom, where the destination machine asks the
// data's owner to blast it over (§2). The REQ packet carries every
// parameter both sides must agree on — it is the stand-in for the V IPC
// message exchange that guarantees "the recipient has sufficient buffers
// allocated to receive the data prior to the transfer".

// ReqOf encodes a transfer configuration as a request payload.
func ReqOf(c Config, push bool) wire.Req {
	chunk := c.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	return wire.Req{
		Bytes:        uint64(c.Bytes),
		Chunk:        uint32(chunk),
		Strategy:     uint8(c.Strategy),
		Protocol:     uint8(c.Protocol),
		Push:         push,
		Window:       uint32(c.Window),
		TrMicros:     uint64(c.RetransTimeout / time.Microsecond),
		Adaptive:     c.Adaptive,
		OffsetChunks: uint32(c.StripeOffset / chunk),
		Total:        uint64(c.StripeTotal),
	}
}

// ConfigOf reconstructs a transfer configuration from a request. The
// returned config has no payload; the serving side attaches its data.
func ConfigOf(transferID uint32, r wire.Req) Config {
	return Config{
		TransferID:     transferID,
		Bytes:          int(r.Bytes),
		ChunkSize:      int(r.Chunk),
		Protocol:       Protocol(r.Protocol),
		Strategy:       Strategy(r.Strategy),
		Window:         int(r.Window),
		RetransTimeout: time.Duration(r.TrMicros) * time.Microsecond,
		Adaptive:       r.Adaptive,
		StripeOffset:   int(r.Offset()),
		StripeTotal:    int(r.Total),
	}
}

// reqPacket builds the REQ packet for cfg. Like all control packets it
// occupies AckSize bytes on a simulated wire.
func reqPacket(c Config, push bool) *wire.Packet {
	size := c.AckSize
	if size == 0 {
		size = params.AckPacketSize
	}
	return &wire.Packet{
		Type:        wire.TypeReq,
		Trans:       c.TransferID,
		Payload:     wire.EncodeReq(ReqOf(c, push)),
		VirtualSize: size,
	}
}

// Request asks the peer to blast the configured transfer to us and receives
// it. The REQ is retransmitted on silence (it, too, can be lost) up to
// Config.MaxAttempts times.
func Request(env Env, cfg Config) (RecvResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, err
	}
	// Bound each receive attempt so a lost REQ retries promptly: the first
	// data packet should arrive within a round trip once the REQ lands.
	attemptIdle := 4 * c.RetransTimeout
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		req := reqPacket(c, false)
		if err := env.Send(req); err != nil {
			return RecvResult{}, err
		}
		probe := c
		probe.ReceiverIdle = attemptIdle
		res, err := RunReceiver(env, probe)
		if err == nil {
			return res, nil
		}
		if !IsTimeout(err) {
			return res, err
		}
	}
	return RecvResult{}, fmt.Errorf("request for transfer %d: %w", cfg.TransferID, ErrGiveUp)
}

// goAhead builds the handshake acknowledgement for a push request: a
// cumulative ack with Seq 0, which data senders ignore as stale, so it can
// never be confused with transfer progress.
func goAhead(c Config) *wire.Packet { return c.ackPacket(0, c.NumPackets()) }

// isGoAhead recognises the handshake acknowledgement.
func isGoAhead(p *wire.Packet, trans uint32) bool {
	return p.Type == wire.TypeAck && p.Trans == trans && p.Seq == 0
}

// Push announces a sender-initiated transfer (the paper's MoveTo over a
// shared medium where the peer must first set up the pre-allocated buffer),
// waits for the receiver's go-ahead, and then runs the sender. The REQ is
// retransmitted on silence.
func Push(env Env, cfg Config) (SendResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return SendResult{}, err
	}
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if err := env.Send(reqPacket(c, true)); err != nil {
			return SendResult{}, err
		}
		remaining := c.RetransTimeout
		for remaining > 0 {
			t0 := env.Now()
			resp, err := env.Recv(remaining)
			if err != nil {
				if IsTimeout(err) {
					break // re-announce
				}
				return SendResult{}, err
			}
			remaining -= env.Now() - t0
			if isGoAhead(resp, c.TransferID) {
				return RunSender(env, c)
			}
		}
	}
	return SendResult{}, fmt.Errorf("push announce for transfer %d: %w", cfg.TransferID, ErrGiveUp)
}

// AcceptPush answers an accepted push request with the go-ahead and runs
// the receiver. Receivers re-issue the go-ahead if the announcement is
// retransmitted (the go-ahead itself can be lost).
func AcceptPush(env Env, cfg Config) (RecvResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, err
	}
	if err := env.Send(goAhead(c)); err != nil {
		return RecvResult{}, err
	}
	return RunReceiver(env, c)
}

// ServeOnce waits up to idle (negative = forever) for a REQ packet, asks
// accept for the matching transfer configuration, and returns it so the
// caller can run the sender side. accept returning false rejects the
// request and keeps waiting; malformed requests are ignored.
func ServeOnce(env Env, idle time.Duration, accept func(wire.Req) (Config, bool)) (Config, error) {
	for {
		pkt, err := env.Recv(idle)
		if err != nil {
			return Config{}, err
		}
		if pkt.Type != wire.TypeReq {
			continue
		}
		req, err := wire.DecodeReq(pkt.Payload)
		if err != nil {
			continue // malformed request: ignore, keep serving
		}
		if cfg, ok := accept(req); ok {
			cfg.TransferID = pkt.Trans
			return cfg, nil
		}
	}
}
