package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// This file implements the request handshake that precedes a pulled
// transfer: the paper's MoveFrom, where the destination machine asks the
// data's owner to blast it over (§2). The REQ packet carries every
// parameter both sides must agree on — it is the stand-in for the V IPC
// message exchange that guarantees "the recipient has sufficient buffers
// allocated to receive the data prior to the transfer".

// ReqOf encodes a transfer configuration as a request payload. The
// rate-control policy rides as its registered wire id; a policy registered
// without an id (or the deprecated Adaptive bool alone) encodes as the AIMD
// id, the only policy pre-policy-byte servers know.
func ReqOf(c Config, push bool) wire.Req {
	chunk := c.ChunkSize
	if chunk == 0 {
		chunk = params.DataPacketSize
	}
	policy := uint8(0)
	if c.Controller != "" {
		if policy = ControllerID(c.Controller); policy == 0 {
			policy = ControllerID(ControllerAIMD)
		}
	} else if c.Adaptive {
		policy = ControllerID(ControllerAIMD)
	}
	return wire.Req{
		Bytes:        uint64(c.Bytes),
		Chunk:        uint32(chunk),
		Strategy:     uint8(c.Strategy),
		Protocol:     uint8(c.Protocol),
		Push:         push,
		Window:       uint32(c.Window),
		TrMicros:     uint64(c.RetransTimeout / time.Microsecond),
		Adaptive:     policy,
		OffsetChunks: uint32(c.StripeOffset / chunk),
		Total:        uint64(c.StripeTotal),
		Name:         c.Name,
	}
}

// ConfigOf reconstructs a transfer configuration from a request. The
// returned config has no payload; the serving side attaches its data. The
// policy byte resolves through the controller registry — an id this build
// does not know degrades to AIMD (see ControllerNameOf), so a newer
// client's request is served rather than refused.
func ConfigOf(transferID uint32, r wire.Req) Config {
	ctrl := ControllerNameOf(r.Adaptive)
	return Config{
		TransferID:     transferID,
		Bytes:          int(r.Bytes),
		ChunkSize:      int(r.Chunk),
		Protocol:       Protocol(r.Protocol),
		Strategy:       Strategy(r.Strategy),
		Window:         int(r.Window),
		RetransTimeout: time.Duration(r.TrMicros) * time.Microsecond,
		Controller:     ctrl,
		Adaptive:       ctrl != "",
		StripeOffset:   int(r.Offset()),
		StripeTotal:    int(r.Total),
		Name:           r.Name,
	}
}

// reqPacket builds the REQ packet for cfg. Like all control packets it
// occupies AckSize bytes on a simulated wire.
func reqPacket(c Config, push bool) *wire.Packet {
	size := c.AckSize
	if size == 0 {
		size = params.AckPacketSize
	}
	return &wire.Packet{
		Type:        wire.TypeReq,
		Trans:       c.TransferID,
		Payload:     wire.EncodeReq(ReqOf(c, push)),
		VirtualSize: size,
	}
}

// Request asks the peer to blast the configured transfer to us and receives
// it. The REQ is retransmitted on silence (it, too, can be lost) up to
// Config.MaxAttempts times.
func Request(env Env, cfg Config) (RecvResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, err
	}
	// Bound each receive attempt so a lost REQ retries promptly: the first
	// data packet should arrive within a round trip once the REQ lands.
	attemptIdle := 4 * c.RetransTimeout
	// Counters accumulate across attempts, so even a failed request reports
	// every packet that actually crossed the wire — the resume layer's
	// recovery accounting depends on partial sessions not vanishing.
	var acc RecvResult
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		req := reqPacket(c, false)
		if err := env.Send(req); err != nil {
			return acc, err
		}
		probe := c
		probe.ReceiverIdle = attemptIdle
		res, err := RunReceiver(env, probe)
		addRecv(&acc, res)
		if err == nil {
			res.DataPackets, res.Duplicates = acc.DataPackets, acc.Duplicates
			res.AcksSent, res.NaksSent = acc.AcksSent, acc.NaksSent
			res.LingerEvents = acc.LingerEvents
			res.LingerAcks, res.LingerNaks = acc.LingerAcks, acc.LingerNaks
			return res, nil
		}
		var busy *BusyError
		if errors.As(err, &busy) && !c.surfaceBusy {
			// Refused at admission. Honor the server's hint and ask again —
			// the attempt-loop equivalent of the old silent-drop recovery,
			// but without burning REQ rounds against a server that already
			// said no. Callers that manage their own backoff (PullResume)
			// set surfaceBusy and see the refusal instead.
			wait := busy.RetryAfter
			if wait <= 0 {
				wait = c.RetransTimeout
			}
			sleepOn(env, wait)
			continue
		}
		if !IsTimeout(err) {
			return acc, err
		}
	}
	return acc, fmt.Errorf("request for transfer %d: %w", cfg.TransferID, ErrGiveUp)
}

// sleepOn idles between request attempts on the env's own clock when it has
// one (a simulated endpoint sleeps in virtual time), wall time otherwise.
func sleepOn(env Env, d time.Duration) {
	if s, ok := env.(interface{ SleepFor(time.Duration) }); ok {
		s.SleepFor(d)
		return
	}
	time.Sleep(d)
}

// Busy is the server's admission refusal for transfer trans: a best-effort
// ack-sized reply telling the requester the server is at capacity (or
// draining) and to retry no sooner than retryAfter. The hint rides in Seq
// as whole milliseconds.
func Busy(trans uint32, retryAfter time.Duration) *wire.Packet {
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return &wire.Packet{
		Type:        wire.TypeBusy,
		Trans:       trans,
		Seq:         uint32(ms),
		VirtualSize: params.AckPacketSize,
	}
}

// BusyError reports that the server refused a request with a BUSY reply.
// RetryAfter is the server's back-off hint; Request surfaces the error
// immediately (it is not a timeout), so callers — PullResume, the striped
// repair path — can honor the hint instead of burning REQ retransmissions
// against a server that has already said no.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy (retry after %v)", e.RetryAfter)
}

// busyErrorOf converts a received BUSY packet into its client-side error.
func busyErrorOf(pkt *wire.Packet) *BusyError {
	return &BusyError{RetryAfter: time.Duration(pkt.Seq) * time.Millisecond}
}

// StatReply builds the serving side's answer to a stat request: an
// ack-sized FIN-flagged ack carrying the named object's size as an 8-byte
// payload. The FlagDone + 8-byte-payload combination is what
// distinguishes it from transfer acks (payload-free) on the same session;
// the reply is idempotent, so retransmitted stat REQs just earn another.
func StatReply(trans uint32, size int64) *wire.Packet {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, uint64(size))
	return &wire.Packet{
		Type:        wire.TypeAck,
		Trans:       trans,
		Flags:       wire.FlagDone,
		Payload:     payload,
		VirtualSize: params.AckPacketSize,
	}
}

// statSize recognises a stat reply for the given transfer id.
func statSize(p *wire.Packet, trans uint32) (int64, bool) {
	if p.Type != wire.TypeAck || p.Trans != trans ||
		p.Flags&wire.FlagDone == 0 || len(p.Payload) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(p.Payload)), true
}

// Stat asks the serving side for the size of the named object, so a pull —
// striped or not — can size its REQ exactly. Like any request the stat REQ
// is retransmitted on silence; cfg supplies the transfer id, retransmit
// timeout, attempt bound and ack size (Bytes may be zero — no transfer
// starts, and the session stays open for the pull that follows).
func Stat(env Env, cfg Config, name string) (int64, error) {
	if !wire.ValidReqName(name) {
		return 0, fmt.Errorf("%w: object name %q does not fit the request encoding", ErrBadConfig, name)
	}
	tr := cfg.RetransTimeout
	if tr <= 0 {
		tr = 100 * time.Millisecond
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 10
	}
	size := cfg.AckSize
	if size <= 0 {
		size = params.AckPacketSize
	}
	req := &wire.Packet{
		Type:  wire.TypeReq,
		Trans: cfg.TransferID,
		Payload: wire.EncodeReq(wire.Req{
			Stat:     true,
			Name:     name,
			TrMicros: uint64(tr / time.Microsecond),
		}),
		VirtualSize: size,
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if err := env.Send(req); err != nil {
			return 0, err
		}
		remaining := 4 * tr
		for remaining > 0 {
			t0 := env.Now()
			resp, err := env.Recv(remaining)
			if err != nil {
				if IsTimeout(err) {
					break // re-request
				}
				return 0, err
			}
			remaining -= env.Now() - t0
			if n, ok := statSize(resp, cfg.TransferID); ok {
				return n, nil
			}
		}
	}
	return 0, fmt.Errorf("stat %q: %w", name, ErrGiveUp)
}

// goAhead builds the handshake acknowledgement for a push request: a
// cumulative ack with Seq 0, which data senders ignore as stale, so it can
// never be confused with transfer progress.
func goAhead(c Config) *wire.Packet { return c.ackPacket(0, c.NumPackets()) }

// isGoAhead recognises the handshake acknowledgement.
func isGoAhead(p *wire.Packet, trans uint32) bool {
	return p.Type == wire.TypeAck && p.Trans == trans && p.Seq == 0
}

// Push announces a sender-initiated transfer (the paper's MoveTo over a
// shared medium where the peer must first set up the pre-allocated buffer),
// waits for the receiver's go-ahead, and then runs the sender. The REQ is
// retransmitted on silence.
func Push(env Env, cfg Config) (SendResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return SendResult{}, err
	}
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if err := env.Send(reqPacket(c, true)); err != nil {
			return SendResult{}, err
		}
		remaining := c.RetransTimeout
		for remaining > 0 {
			t0 := env.Now()
			resp, err := env.Recv(remaining)
			if err != nil {
				if IsTimeout(err) {
					break // re-announce
				}
				return SendResult{}, err
			}
			remaining -= env.Now() - t0
			if isGoAhead(resp, c.TransferID) {
				return RunSender(env, c)
			}
		}
	}
	return SendResult{}, fmt.Errorf("push announce for transfer %d: %w", cfg.TransferID, ErrGiveUp)
}

// AcceptPush answers an accepted push request with the go-ahead and runs
// the receiver. Receivers re-issue the go-ahead if the announcement is
// retransmitted (the go-ahead itself can be lost).
func AcceptPush(env Env, cfg Config) (RecvResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, err
	}
	if err := env.Send(goAhead(c)); err != nil {
		return RecvResult{}, err
	}
	return RunReceiver(env, c)
}

// ServeOnce waits up to idle (negative = forever) for a REQ packet, asks
// accept for the matching transfer configuration, and returns it so the
// caller can run the sender side. accept returning false rejects the
// request and keeps waiting; malformed requests are ignored.
func ServeOnce(env Env, idle time.Duration, accept func(wire.Req) (Config, bool)) (Config, error) {
	return ServeOnceID(env, idle, func(r wire.Req, _ uint32) (Config, bool) { return accept(r) })
}

// ServeOnceID is ServeOnce with the REQ packet's transfer id passed to
// accept, so handlers that answer control exchanges from inside the accept
// hook (a stat reply, say) can address the reply to the requesting
// transfer before rejecting the REQ to keep the session open.
func ServeOnceID(env Env, idle time.Duration, accept func(r wire.Req, trans uint32) (Config, bool)) (Config, error) {
	for {
		pkt, err := env.Recv(idle)
		if err != nil {
			return Config{}, err
		}
		if pkt.Type != wire.TypeReq {
			continue
		}
		req, err := wire.DecodeReq(pkt.Payload)
		if err != nil {
			continue // malformed request: ignore, keep serving
		}
		if cfg, ok := accept(req, pkt.Trans); ok {
			cfg.TransferID = pkt.Trans
			return cfg, nil
		}
	}
}
