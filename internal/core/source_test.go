package core

import (
	"bytes"
	"os"
	"testing"
	"time"

	"blastlan/internal/wire"
)

// loopEnv is a minimal in-memory Env pair for exercising the engines
// without a substrate package (which would be an import cycle here).
type loopEnv struct {
	in    chan *wire.Packet
	out   chan *wire.Packet
	start time.Time
}

func newLoopEnvPair() (*loopEnv, *loopEnv) {
	ab := make(chan *wire.Packet, 1024)
	ba := make(chan *wire.Packet, 1024)
	now := time.Now()
	return &loopEnv{in: ba, out: ab, start: now}, &loopEnv{in: ab, out: ba, start: now}
}

func (e *loopEnv) Now() time.Duration             { return time.Since(e.start) }
func (e *loopEnv) Compute(time.Duration)          {}
func (e *loopEnv) Send(p *wire.Packet) error      { e.out <- p.Clone(); return nil }
func (e *loopEnv) SendAsync(p *wire.Packet) error { return e.Send(p) }
func (e *loopEnv) PacketConsumedOnSend()          {} // Send clones: reuse is safe
func (e *loopEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	if timeout < 0 {
		return <-e.in, nil
	}
	if timeout == 0 {
		select {
		case p := <-e.in:
			return p, nil
		default:
			return nil, os.ErrDeadlineExceeded
		}
	}
	select {
	case p := <-e.in:
		return p, nil
	case <-time.After(timeout):
		return nil, os.ErrDeadlineExceeded
	}
}

func TestSeededSourceDeterministic(t *testing.T) {
	const (
		seed  = int64(77)
		size  = 10_500
		chunk = 1000
	)
	src := SeededSource(seed, size, chunk)
	whole := SeededPayload(seed, size, chunk)
	if len(whole) != size {
		t.Fatalf("payload length %d", len(whole))
	}
	scratch := make([]byte, chunk)
	for seq := 0; seq*chunk < size; seq++ {
		a := append([]byte(nil), src(seq, scratch)...)
		b := src(seq, scratch) // regeneration (a retransmission) must match
		if !bytes.Equal(a, b) {
			t.Fatalf("seq %d: source is not deterministic", seq)
		}
		lo, hi := seq*chunk, seq*chunk+len(a)
		if !bytes.Equal(a, whole[lo:hi]) {
			t.Fatalf("seq %d: source and SeededPayload disagree", seq)
		}
	}
	// Final chunk is the remainder.
	if got := len(src(10, scratch)); got != 500 {
		t.Errorf("final chunk length %d, want 500", got)
	}
	// A different seed yields different bytes.
	if bytes.Equal(whole, SeededPayload(seed+1, size, chunk)) {
		t.Error("seeds do not differentiate the stream")
	}
}

// A Source-driven sender and a Sink-driven receiver on the loopback Env pair
// must agree with the materialised payload and its checksum, without the
// receiver ever assembling Data.
func TestSourceSinkStreaming(t *testing.T) {
	const (
		seed  = int64(5)
		size  = 16_000
		chunk = 1000
	)
	want := SeededPayload(seed, size, chunk)

	got := make([]byte, size)
	cfg := Config{
		TransferID:     3,
		Bytes:          size,
		ChunkSize:      chunk,
		Protocol:       Blast,
		Strategy:       GoBackN,
		RetransTimeout: 500_000_000,
		MaxAttempts:    20,
		Linger:         1,
		ReceiverIdle:   2_000_000_000,
	}
	scfg := cfg
	scfg.Source = SeededSource(seed, size, chunk)
	rcfg := cfg
	rcfg.Sink = func(off int, b []byte) { copy(got[off:], b) }

	a, b := newLoopEnvPair()
	type out struct {
		res RecvResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := RunReceiver(b, rcfg)
		done <- out{r, err}
	}()
	if _, err := RunSender(a, scfg); err != nil {
		t.Fatal(err)
	}
	ro := <-done
	if ro.err != nil {
		t.Fatal(ro.err)
	}
	if !ro.res.Completed || ro.res.Bytes != size {
		t.Fatalf("completed=%v bytes=%d", ro.res.Completed, ro.res.Bytes)
	}
	if ro.res.Data != nil {
		t.Error("sink mode must not assemble Data")
	}
	if !bytes.Equal(got, want) {
		t.Error("streamed bytes differ from SeededPayload")
	}
	if ro.res.Checksum != wire.Checksum(want) {
		t.Errorf("incremental checksum %04x, want %04x", ro.res.Checksum, wire.Checksum(want))
	}
}
