package core

import (
	"testing"
	"time"

	"blastlan/internal/wire"
)

// batchGeomEnv wraps a loopEnv with the queue/flush behaviour of a batching
// substrate, recording the on-wire size run of every flush. It mirrors the
// udplan flush points: the ring flushes when full, before any blocking or
// polling Recv, and immediately behind control traffic and FlagLast frames.
type batchGeomEnv struct {
	*loopEnv
	limit   int
	queued  []int
	flushes [][]int
}

func (e *batchGeomEnv) flushNow() {
	if len(e.queued) == 0 {
		return
	}
	e.flushes = append(e.flushes, append([]int(nil), e.queued...))
	e.queued = e.queued[:0]
}

func (e *batchGeomEnv) FlushBatch() error {
	e.flushNow()
	return nil
}

func (e *batchGeomEnv) Send(p *wire.Packet) error {
	if err := e.loopEnv.Send(p); err != nil {
		return err
	}
	e.queued = append(e.queued, wire.FrameBytes(p))
	if p.Type != wire.TypeData || p.Flags&wire.FlagLast != 0 || len(e.queued) >= e.limit {
		e.flushNow()
	}
	return nil
}

func (e *batchGeomEnv) SendAsync(p *wire.Packet) error { return e.Send(p) }

func (e *batchGeomEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	e.flushNow()
	return e.loopEnv.Recv(timeout)
}

// The engines must hand batching substrates GSO-compatible flush geometry:
// every flushed run is equal-sized frames with at most one shorter trailing
// frame (a UDP_SEGMENT superbuffer's only legal shape — the kernel rejects
// a segment larger than gso_size mid-buffer). The transfer sizes here leave
// a short tail chunk and windows that do not divide the packet count, the
// cases that would break the invariant if FlagLast or the window flush ever
// regressed.
func TestFlushGeometryGSOCompatible(t *testing.T) {
	for _, proto := range []Protocol{Blast, BlastAsync, SlidingWindow} {
		for _, strat := range []Strategy{GoBackN, Selective} {
			t.Run(proto.String()+"/"+strat.String(), func(t *testing.T) {
				a, b := newLoopEnvPair()
				send := &batchGeomEnv{loopEnv: a, limit: 8}
				payload := SeededPayload(42, 10_500, 1000) // short 500-byte tail chunk
				cfg := Config{
					TransferID:     51,
					Bytes:          len(payload),
					ChunkSize:      1000,
					Window:         6, // does not divide 11 packets
					Protocol:       proto,
					Strategy:       strat,
					RetransTimeout: 100 * time.Millisecond,
					MaxAttempts:    20,
					Payload:        payload,
				}
				done := make(chan error, 1)
				go func() {
					_, err := RunSender(send, cfg)
					done <- err
				}()
				rcfg := cfg
				rcfg.Payload = nil
				if _, err := RunReceiver(b, rcfg); err != nil {
					t.Fatalf("receiver: %v", err)
				}
				if err := <-done; err != nil {
					t.Fatalf("sender: %v", err)
				}
				if len(send.flushes) == 0 {
					t.Fatal("no flushes recorded")
				}
				for fi, run := range send.flushes {
					for i := 1; i < len(run); i++ {
						if run[i] > run[i-1] {
							t.Fatalf("flush %d not GSO-compatible: frame %d grows (%v)", fi, i, run)
						}
						if i < len(run)-1 && run[i] != run[0] {
							t.Fatalf("flush %d not GSO-compatible: mid-run size change at %d (%v)", fi, i, run)
						}
					}
				}
			})
		}
	}
}
