package core

import (
	"testing"
	"time"

	"blastlan/internal/wire"
)

// batchGeomEnv wraps a loopEnv with the queue/flush behaviour of a batching
// substrate, recording the on-wire size run of every flush. It mirrors the
// udplan flush points: the ring flushes when full, before any blocking or
// polling Recv, and immediately behind control traffic and FlagLast frames.
type batchGeomEnv struct {
	*loopEnv
	limit   int
	queued  []int
	flushes [][]int
}

func (e *batchGeomEnv) flushNow() {
	if len(e.queued) == 0 {
		return
	}
	e.flushes = append(e.flushes, append([]int(nil), e.queued...))
	e.queued = e.queued[:0]
}

func (e *batchGeomEnv) FlushBatch() error {
	e.flushNow()
	return nil
}

func (e *batchGeomEnv) Send(p *wire.Packet) error {
	if err := e.loopEnv.Send(p); err != nil {
		return err
	}
	e.queued = append(e.queued, wire.FrameBytes(p))
	if p.Type != wire.TypeData || p.Flags&wire.FlagLast != 0 || len(e.queued) >= e.limit {
		e.flushNow()
	}
	return nil
}

func (e *batchGeomEnv) SendAsync(p *wire.Packet) error { return e.Send(p) }

func (e *batchGeomEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	e.flushNow()
	return e.loopEnv.Recv(timeout)
}

// gsoBatchEnv extends batchGeomEnv with the batch-limiter and flush-unit
// geometry of a GSO-tier endpoint: the flush threshold is adjustable
// (core.BatchLimiter) and one flush syscall carries up to unit frames as a
// single superbuffer (core.BatchGeometry), the way udplan reports TierGSO.
type gsoBatchEnv struct {
	*batchGeomEnv
	unit   int
	ring   int
	limits []int // SetBatchLimit history, restore included
}

func (e *gsoBatchEnv) BatchLimit() int { return e.limit }
func (e *gsoBatchEnv) SetBatchLimit(n int) {
	e.limits = append(e.limits, n)
	e.limit = n
}
func (e *gsoBatchEnv) FlushUnit() int { return e.unit }

// At the GSO tier the flush threshold must follow the controller's window
// in whole superbuffer units, not mmsg frame counts: the kernel bursts a
// superbuffer back-to-back regardless, so a threshold that chops a window
// at a frame-count recommendation splits one UDP_SEGMENT call into several
// without shrinking the wire burst. The window trajectory here passes
// through 40 packets — an mmsg-era actuation would set the threshold to 40;
// superbuffer quantization (unit 16) must set 48.
func TestBatchLimitGSOFollowsWindowInSuperbufferUnits(t *testing.T) {
	a, b := newLoopEnvPair()
	ring := 64
	send := &gsoBatchEnv{batchGeomEnv: &batchGeomEnv{loopEnv: a, limit: ring}, unit: 16, ring: ring}
	payload := SeededPayload(7, 140_000, 1000) // windows 20, 40, 80 on a clean path
	cfg := Config{
		TransferID:     52,
		Bytes:          len(payload),
		ChunkSize:      1000,
		Window:         20, // seeds the controller off unit alignment
		Controller:     ControllerAIMD,
		Protocol:       Blast,
		Strategy:       GoBackN,
		RetransTimeout: 100 * time.Millisecond,
		MaxAttempts:    20,
		Payload:        payload,
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunSender(send, cfg)
		done <- err
	}()
	rcfg := cfg
	rcfg.Payload = nil
	if _, err := RunReceiver(b, rcfg); err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if len(send.limits) == 0 {
		t.Fatal("no batch-limit actuations recorded")
	}
	for i, lim := range send.limits {
		if lim%send.unit != 0 {
			t.Errorf("actuation %d set flush threshold %d: not a whole number of %d-segment superbuffers", i, lim, send.unit)
		}
		if lim > ring {
			t.Errorf("actuation %d set flush threshold %d beyond the %d-frame ring", i, lim, ring)
		}
	}
	// The 40-packet window must ride three superbuffers' worth of threshold
	// (48), not the mmsg frame recommendation (40).
	if send.limits[0] != 48 {
		t.Errorf("first actuation = %d, want 48 (window 40 in superbuffer units)", send.limits[0])
	}
	// The transfer-scoped actuation contract still holds: the configured
	// threshold comes back afterwards.
	if last := send.limits[len(send.limits)-1]; last != ring {
		t.Errorf("final actuation = %d, want the configured %d restored", last, ring)
	}
}

// fixedWinController pins Window/Batch so batchLimitFor's quantization can
// be probed directly.
type fixedWinController struct{ win, batch int }

func (f fixedWinController) Window() int            { return f.win }
func (f fixedWinController) Gap() time.Duration     { return 0 }
func (f fixedWinController) Batch() int             { return f.batch }
func (f fixedWinController) Observe(WindowObs)      {}
func (f fixedWinController) Stats() ControllerStats { return ControllerStats{} }

func TestBatchLimitForQuantization(t *testing.T) {
	cases := []struct {
		win, batch, unit, ring, want int
	}{
		{win: 40, batch: 40, unit: 1, ring: 64, want: 40},  // frame tiers: the recommendation itself
		{win: 40, batch: 40, unit: 16, ring: 64, want: 48}, // GSO: round up to whole superbuffers
		{win: 16, batch: 16, unit: 64, ring: 64, want: 64}, // below one superbuffer: never sub-unit
		{win: 512, batch: 32, unit: 64, ring: 64, want: 64},
		{win: 512, batch: 32, unit: 16, ring: 32, want: 32}, // ring still caps
	}
	for _, c := range cases {
		got := batchLimitFor(fixedWinController{win: c.win, batch: c.batch}, c.unit, c.ring)
		if got != c.want {
			t.Errorf("batchLimitFor(win=%d batch=%d unit=%d ring=%d) = %d, want %d",
				c.win, c.batch, c.unit, c.ring, got, c.want)
		}
	}
}

// The engines must hand batching substrates GSO-compatible flush geometry:
// every flushed run is equal-sized frames with at most one shorter trailing
// frame (a UDP_SEGMENT superbuffer's only legal shape — the kernel rejects
// a segment larger than gso_size mid-buffer). The transfer sizes here leave
// a short tail chunk and windows that do not divide the packet count, the
// cases that would break the invariant if FlagLast or the window flush ever
// regressed.
func TestFlushGeometryGSOCompatible(t *testing.T) {
	for _, proto := range []Protocol{Blast, BlastAsync, SlidingWindow} {
		for _, strat := range []Strategy{GoBackN, Selective} {
			t.Run(proto.String()+"/"+strat.String(), func(t *testing.T) {
				a, b := newLoopEnvPair()
				send := &batchGeomEnv{loopEnv: a, limit: 8}
				payload := SeededPayload(42, 10_500, 1000) // short 500-byte tail chunk
				cfg := Config{
					TransferID:     51,
					Bytes:          len(payload),
					ChunkSize:      1000,
					Window:         6, // does not divide 11 packets
					Protocol:       proto,
					Strategy:       strat,
					RetransTimeout: 100 * time.Millisecond,
					MaxAttempts:    20,
					Payload:        payload,
				}
				done := make(chan error, 1)
				go func() {
					_, err := RunSender(send, cfg)
					done <- err
				}()
				rcfg := cfg
				rcfg.Payload = nil
				if _, err := RunReceiver(b, rcfg); err != nil {
					t.Fatalf("receiver: %v", err)
				}
				if err := <-done; err != nil {
					t.Fatalf("sender: %v", err)
				}
				if len(send.flushes) == 0 {
					t.Fatal("no flushes recorded")
				}
				for fi, run := range send.flushes {
					for i := 1; i < len(run); i++ {
						if run[i] > run[i-1] {
							t.Fatalf("flush %d not GSO-compatible: frame %d grows (%v)", fi, i, run)
						}
						if i < len(run)-1 && run[i] != run[0] {
							t.Fatalf("flush %d not GSO-compatible: mid-run size change at %d (%v)", fi, i, run)
						}
					}
				}
			})
		}
	}
}
