package core

import (
	"errors"
	"testing"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

func TestWithDefaults(t *testing.T) {
	c, err := Config{Bytes: 64 * 1024}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.ChunkSize != params.DataPacketSize || c.AckSize != params.AckPacketSize {
		t.Errorf("default sizes: %d/%d", c.ChunkSize, c.AckSize)
	}
	if c.RetransTimeout != 100*time.Millisecond {
		t.Errorf("default Tr = %v", c.RetransTimeout)
	}
	if c.MaxAttempts != 10000 {
		t.Errorf("default MaxAttempts = %d", c.MaxAttempts)
	}
	if c.Linger <= 0 || c.ReceiverIdle != 0 {
		t.Errorf("linger %v, receiverIdle %v", c.Linger, c.ReceiverIdle)
	}
	if c.receiverIdle() <= c.RetransTimeout {
		t.Error("receiver idle must exceed Tr")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                        // no bytes
		{Bytes: -3},               // negative
		{Bytes: 1, ChunkSize: -1}, // bad chunk
		{Bytes: 1, AckSize: -1},   // bad ack size
		{Bytes: 1, Window: -2},    // bad window
		{Bytes: 1, Protocol: 99},  // unknown protocol
		{Bytes: 1, Strategy: 17},  // unknown strategy
		{Bytes: 1, MaxAttempts: -1},
		{Bytes: 1, RetransTimeout: -time.Second},
		{Bytes: 4, Payload: []byte{1, 2}}, // length mismatch
		{Bytes: 70000, ChunkSize: 70000, Payload: make([]byte, 70000)},                        // chunk > wire.AbsMaxPayload
		{Bytes: 8, Payload: make([]byte, 8), Source: func(int, []byte) []byte { return nil }}, // both sources
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadConfig", i, c, err)
		}
	}
}

func TestNumPackets(t *testing.T) {
	cases := []struct {
		bytes, chunk, want int
	}{
		{64 * 1024, 1024, 64},
		{1, 1024, 1},
		{1025, 1024, 2},
		{0, 1024, 0},
		{64 * 1024, 0, 64}, // default chunk
	}
	for _, cse := range cases {
		c := Config{Bytes: cse.bytes, ChunkSize: cse.chunk}
		if got := c.NumPackets(); got != cse.want {
			t.Errorf("NumPackets(%d,%d) = %d, want %d", cse.bytes, cse.chunk, got, cse.want)
		}
	}
}

func TestDataPacketSimulated(t *testing.T) {
	c, _ := Config{Bytes: 2000, TransferID: 9}.withDefaults()
	p := c.dataPacket(0, 2, 0, false)
	if p.VirtualSize != 1024 || p.Payload != nil {
		t.Errorf("first packet: %+v", p)
	}
	last := c.dataPacket(1, 2, 3, true)
	if last.VirtualSize != 2000-1024 {
		t.Errorf("ragged last packet size = %d", last.VirtualSize)
	}
	if !last.IsLast() {
		t.Error("FlagLast missing")
	}
	if last.Attempt != 3 || last.Trans != 9 || last.Total != 2 {
		t.Errorf("metadata: %+v", last)
	}
	// Attempt saturates rather than wrapping.
	big := c.dataPacket(0, 2, 1000, false)
	if big.Attempt != 255 {
		t.Errorf("attempt = %d, want 255", big.Attempt)
	}
}

func TestDataPacketReal(t *testing.T) {
	payload := make([]byte, 2000)
	for i := range payload {
		payload[i] = byte(i)
	}
	c, err := Config{Bytes: 2000, Payload: payload}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	p0 := c.dataPacket(0, 2, 0, false)
	if len(p0.Payload) != 1024 || p0.VirtualSize != 1024 {
		t.Errorf("p0: len=%d virt=%d", len(p0.Payload), p0.VirtualSize)
	}
	p1 := c.dataPacket(1, 2, 0, true)
	if len(p1.Payload) != 2000-1024 {
		t.Errorf("ragged payload len = %d", len(p1.Payload))
	}
	if p1.Payload[0] != payload[1024] {
		t.Error("payload slicing wrong")
	}
}

func TestAckPacket(t *testing.T) {
	c, _ := Config{Bytes: 64 * 1024}.withDefaults()
	partial := c.ackPacket(32, 64)
	if partial.Flags&wire.FlagAllReceived != 0 {
		t.Error("partial ack must not claim completion")
	}
	if partial.VirtualSize != params.AckPacketSize {
		t.Errorf("ack size = %d", partial.VirtualSize)
	}
	full := c.ackPacket(64, 64)
	if full.Flags&wire.FlagAllReceived == 0 {
		t.Error("complete ack must set FlagAllReceived")
	}
}

func TestNakPacket(t *testing.T) {
	c, _ := Config{Bytes: 64 * 1024}.withDefaults()
	nak, err := c.nakPacket(5, 64, []uint32{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if nak.Seq != 5 || nak.VirtualSize != params.AckPacketSize {
		t.Errorf("nak: %+v", nak)
	}
	if len(nak.SimMissing) != 3 {
		t.Errorf("SimMissing = %v", nak.SimMissing)
	}
	if got, err := wire.DecodeMissing(nak.Payload); err != nil || len(got) != 3 {
		t.Errorf("bitmap: %v %v", got, err)
	}

	// Real mode carries the encoded bitmap.
	cReal, _ := Config{Bytes: 2048, Payload: make([]byte, 2048)}.withDefaults()
	nakReal, err := cReal.nakPacket(0, 2, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(nakReal.Payload) == 0 {
		t.Error("real NAK must carry the bitmap")
	}
	missing, err := wire.DecodeMissing(nakReal.Payload)
	if err != nil || len(missing) != 1 || missing[0] != 0 {
		t.Errorf("bitmap round trip: %v %v", missing, err)
	}
}

func TestEnumStrings(t *testing.T) {
	names := map[string]string{
		StopAndWait.String():   "stop-and-wait",
		SlidingWindow.String(): "sliding-window",
		Blast.String():         "blast",
		BlastAsync.String():    "blast-dblbuf",
		FullNoNak.String():     "full-no-nak",
		FullNak.String():       "full-nak",
		GoBackN.String():       "go-back-n",
		Selective.String():     "selective",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if Protocol(42).String() == "" || Strategy(42).String() == "" {
		t.Error("unknown enums must stringify")
	}
}
