package core

import "time"

// Probing auto-tuner — the "autotune" policy of the RateController
// registry, after Arslan & Kosar's heuristic protocol tuning: instead of a
// fixed control law, the controller searches the window × batch × pacing
// space online. Time is divided into epochs of autotuneEpoch windows; each
// epoch either measures the incumbent parameter set or trials a seeded
// perturbation of one dimension, and the epoch's efficiency score decides
// accept or revert. Consecutive reverts mean the climb sits on a local
// optimum, so the tuner holds the incumbent for a while before probing
// again — convergence mid-transfer, with enough residual probing to track a
// path whose conditions change.
//
// The score is the epoch's delivery efficiency — first-transmission packets
// over total transmissions (timeouts weighted heavily) — a pure function of
// the recovery counters, which keeps the whole search deterministic and
// substrate-independent (see the contract in ratecontrol.go). On a clean
// path every parameter set scores 1.0, so ties are broken by preference:
// upward window and batch trials and downward gap trials accept on a tie
// (more pipelining, fewer syscalls, line rate), their opposites revert.
// That drives the clean-path climb to (MaxWindow, MaxBatch, MinGap) and
// holds there; under loss the go-back-n waste of an oversized window drops
// its score and the climb settles where efficiency peaks.
type autotuneController struct {
	cfg   ControllerConfig
	win   int
	batch int
	gap   time.Duration
	rng   uint64

	// Epoch accumulators.
	winIdx   int
	packets  int
	retrans  int
	naks     int
	timeouts int

	// Search state.
	trial     bool   // a perturbation is live this epoch
	tieAccept bool   // live perturbation accepts on a tied score
	trialWin  bool   // live perturbation moved the window (for stats)
	saved     tuning // incumbent to restore on revert
	incumbent float64
	haveScore bool
	reverts   int
	hold      int  // epochs left holding the incumbent
	converged bool // the climb sat on a local optimum last probe cycle

	// Momentum: an accepted perturbation repeats its direction next epoch,
	// so a profitable climb (e.g. window up on a clean path) takes
	// consecutive geometric steps instead of waiting for the dimension to be
	// redrawn. Cleared on revert or when the direction pins at a bound.
	momentum bool
	lastDim  uint64
	lastUp   bool

	stats ControllerStats
}

// tuning is one point in the search space.
type tuning struct {
	win   int
	batch int
	gap   time.Duration
}

const (
	// autotuneEpoch is the epoch length in windows: long enough to smooth a
	// single unlucky window, short enough to converge inside one transfer.
	autotuneEpoch = 2
	// autotuneHold is how many epochs a converged tuner holds the incumbent
	// before probing again.
	autotuneHold = 8
	// autotuneReverts is the consecutive-revert count that declares
	// convergence.
	autotuneReverts = 3
	// autotuneMargin is the score improvement a non-preferred trial must
	// show to be accepted.
	autotuneMargin = 0.005
	// autotuneSeed is the default hill-climb seed when ControllerConfig.Seed
	// is zero.
	autotuneSeed = 0x5DEECE66D
)

func newAutotuneController(cfg ControllerConfig) *autotuneController {
	cfg = cfg.withDefaults()
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = autotuneSeed
	}
	c := &autotuneController{
		cfg:   cfg,
		win:   cfg.InitWindow,
		batch: cfg.MaxBatch,
		gap:   cfg.MinGap,
		rng:   seed,
	}
	c.stats.Policy = ControllerAutotune
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
	return c
}

func (c *autotuneController) Window() int        { return c.win }
func (c *autotuneController) Gap() time.Duration { return c.gap }
func (c *autotuneController) Batch() int         { return c.batch }

// next is splitmix64: a tiny, allocation-free seeded generator so the
// perturbation order is deterministic for a given seed on every substrate.
func (c *autotuneController) next() uint64 {
	c.rng += 0x9E3779B97F4A7C15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// score is the epoch's delivery efficiency in [0, 1].
func (c *autotuneController) score() float64 {
	if c.packets == 0 {
		return 0
	}
	waste := c.retrans + 16*c.timeouts
	return float64(c.packets) / float64(c.packets+waste)
}

// perturb applies one step of dimension dim in direction up to the
// incumbent and reports whether the trial should accept on a tied score
// (the preference ordering: more window, more batch, less gap).
func (c *autotuneController) perturb(dim uint64, up bool) (trial tuning, tie bool) {
	trial = c.saved
	switch dim {
	case 0: // window: geometric steps climb in few epochs
		if up {
			trial.win = trial.win*3/2 + 1
			if trial.win > c.cfg.MaxWindow {
				trial.win = c.cfg.MaxWindow
			}
			tie = true
		} else {
			trial.win = trial.win * 2 / 3
			if trial.win < c.cfg.MinWindow {
				trial.win = c.cfg.MinWindow
			}
		}
	case 1: // batch
		if up {
			trial.batch *= 2
			if trial.batch > c.cfg.MaxBatch {
				trial.batch = c.cfg.MaxBatch
			}
			tie = true
		} else {
			trial.batch /= 2
			if trial.batch < 1 {
				trial.batch = 1
			}
		}
	default: // pacing gap
		if up {
			trial.gap += c.cfg.GapStep
			if trial.gap > c.cfg.MaxGap {
				trial.gap = c.cfg.MaxGap
			}
		} else {
			trial.gap -= c.cfg.GapStep
			if trial.gap < c.cfg.MinGap {
				trial.gap = c.cfg.MinGap
			}
			tie = true
		}
	}
	return trial, tie
}

// propose picks a perturbation of one dimension and applies it for the next
// epoch: the accepted direction again while momentum holds, otherwise a
// seeded draw. Perturbations that would be no-ops (the dimension already
// sits on its bound) are redrawn a few times; if everything is pinned the
// epoch just re-measures the incumbent.
func (c *autotuneController) propose() {
	c.saved = tuning{win: c.win, batch: c.batch, gap: c.gap}
	// A non-preferred trial (window down, batch down, gap up) accepts only
	// on a strict score improvement, and no epoch can score above 1.0: when
	// the incumbent already sits at perfect delivery the trial is provably
	// futile. Skipping it is exact, not heuristic — and on real substrates
	// it is far from free to run anyway, because actuating any pacing gap
	// forces per-packet flushes for the whole trial epoch (the same
	// actuation cost the bbr delivery model refuses to measure). Loss drops
	// the incumbent below the threshold and reopens the full search space.
	futile := c.haveScore && c.incumbent >= 1-autotuneMargin
	if c.momentum {
		if trial, tie := c.perturb(c.lastDim, c.lastUp); trial != c.saved {
			c.win, c.batch, c.gap = trial.win, trial.batch, trial.gap
			c.trial, c.tieAccept, c.trialWin = true, tie, c.lastDim == 0
			return
		}
		c.momentum = false // direction pinned at its bound
	}
	for try := 0; try < 4; try++ {
		r := c.next()
		dim, up := r%3, r&(1<<32) != 0
		trial, tie := c.perturb(dim, up)
		if trial == c.saved || (futile && !tie) {
			continue // pinned at a bound, or provably unacceptable; redraw
		}
		c.win, c.batch, c.gap = trial.win, trial.batch, trial.gap
		c.trial, c.tieAccept, c.trialWin = true, tie, dim == 0
		c.lastDim, c.lastUp = dim, up
		return
	}
	c.trial = false
}

// endEpoch folds the finished epoch's score into the search.
func (c *autotuneController) endEpoch() {
	s := c.score()
	switch {
	case !c.trial:
		// Measured the incumbent: (re-)baseline and start probing unless
		// holding.
		c.incumbent, c.haveScore = s, true
		if c.hold > 0 {
			c.hold--
		} else {
			c.propose()
		}
	case !c.haveScore:
		// Defensive: a trial without a baseline becomes the baseline.
		c.incumbent, c.haveScore = s, true
		c.trial = false
	case s > c.incumbent+autotuneMargin || (c.tieAccept && s >= c.incumbent-autotuneMargin):
		// Accept: the trial point becomes the incumbent.
		if c.trialWin {
			if c.win > c.saved.win {
				c.stats.Growths++
			} else if c.win < c.saved.win {
				c.stats.Cuts++
			}
		}
		c.incumbent = s
		c.reverts = 0
		c.trial = false
		c.momentum = true
		c.converged = false
		c.propose()
	default:
		// Revert to the incumbent. Once the climb has declared convergence,
		// a single failed probe is enough to re-enter the hold — the
		// incumbent stays in place for all but one epoch per probe cycle.
		c.win, c.batch, c.gap = c.saved.win, c.saved.batch, c.saved.gap
		c.reverts++
		c.trial = false
		c.momentum = false
		if c.converged || c.reverts >= autotuneReverts {
			c.reverts = 0
			c.hold = autotuneHold
			c.converged = true
		} else {
			c.propose()
		}
	}
	c.winIdx, c.packets, c.retrans, c.naks, c.timeouts = 0, 0, 0, 0, 0
}

func (c *autotuneController) Observe(o WindowObs) {
	c.stats.Windows++
	if o.Timeouts > 0 {
		// Safety valve, outside the hill-climb: darkness halves the window
		// and backs pacing off immediately, aborts any live trial, and
		// invalidates the baseline (the path changed under the search).
		c.win /= 2
		if c.win < c.cfg.MinWindow {
			c.win = c.cfg.MinWindow
		}
		c.gap = c.gap*2 + c.cfg.GapStep
		if c.gap > c.cfg.MaxGap {
			c.gap = c.cfg.MaxGap
		}
		c.trial = false
		c.haveScore = false
		c.momentum = false
		c.converged = false
		c.reverts, c.hold = 0, 0
		c.winIdx, c.packets, c.retrans, c.naks, c.timeouts = 0, 0, 0, 0, 0
		c.stats.Cuts++
		c.stats.TimeoutCuts++
		c.stats.FinalWindow = c.win
		c.stats.FinalGap = c.gap
		return
	}
	c.packets += o.Packets
	c.retrans += o.Retransmits
	c.naks += o.Naks
	c.timeouts += o.Timeouts
	c.winIdx++
	if c.winIdx >= autotuneEpoch {
		c.endEpoch()
	}
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
}

func (c *autotuneController) Stats() ControllerStats { return c.stats }
