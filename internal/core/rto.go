package core

import "time"

// Adaptive retransmission timeout (Config.AdaptiveTr).
//
// The paper's Figures 5 and 6 show that the elapsed-time variance of the
// simpler retransmission strategies is driven by the retransmission
// interval Tr, and its timeout values are hand-picked multiples of the
// known error-free transfer time. A deployed protocol does not know T0(D)
// a priori; the modern answer (Jacobson 1988, RFC 6298 — three years after
// this paper) estimates the response time online:
//
//	first sample R:  srtt = R, rttvar = R/2
//	thereafter:      rttvar = 3/4·rttvar + 1/4·|srtt − R|
//	                 srtt   = 7/8·srtt   + 1/8·R
//	timeout          = srtt + 4·rttvar   (floored)
//
// with Karn's rule: never sample an exchange that was retransmitted. The
// estimator applies to stop-and-wait (one sample per packet) and to blast
// (one sample per reliable-last response); sliding window keeps its fixed
// Tr (its cumulative acks do not pair one-to-one with sends).
type rto struct {
	srtt    time.Duration
	rttvar  time.Duration
	primed  bool
	fixed   time.Duration // Config.RetransTimeout: initial and non-adaptive value
	floor   time.Duration // Config.MinRTO, defaulted to rtoFloor
	enabled bool
}

// rtoFloor bounds the adaptive timeout from below: a timeout under the
// response latency would retransmit before any reply can arrive.
const rtoFloor = time.Millisecond

func newRTO(c Config) rto {
	floor := c.MinRTO
	if floor <= 0 {
		floor = rtoFloor
	}
	return rto{fixed: c.RetransTimeout, floor: floor, enabled: c.AdaptiveTr}
}

// timeout returns the current retransmission interval.
func (r *rto) timeout() time.Duration {
	if !r.enabled || !r.primed {
		return r.fixed
	}
	t := r.srtt + 4*r.rttvar
	if t < r.floor {
		t = r.floor
	}
	return t
}

// sample folds one response-time measurement into the estimator. Callers
// enforce Karn's rule (no samples from retransmitted exchanges).
func (r *rto) sample(d time.Duration) {
	if !r.enabled || d <= 0 {
		return
	}
	if !r.primed {
		r.srtt = d
		r.rttvar = d / 2
		r.primed = true
		return
	}
	diff := r.srtt - d
	if diff < 0 {
		diff = -diff
	}
	r.rttvar = (3*r.rttvar + diff) / 4
	r.srtt = (7*r.srtt + d) / 8
}
