package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"blastlan/internal/wire"
)

// The plan must tile the transfer exactly: contiguous, chunk-aligned
// offsets, all bytes covered, chunks spread within one of each other.
func TestPlanStripesTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		bytes := 1 + rng.Intn(1<<20)
		chunk := 1 + rng.Intn(2000)
		streams := 1 + rng.Intn(12)
		plan := PlanStripes(bytes, chunk, streams)
		if len(plan) == 0 {
			t.Fatalf("empty plan for bytes=%d chunk=%d streams=%d", bytes, chunk, streams)
		}
		nChunks := (bytes + chunk - 1) / chunk
		wantStripes := streams
		if wantStripes > nChunks {
			wantStripes = nChunks
		}
		if len(plan) != wantStripes {
			t.Fatalf("bytes=%d chunk=%d streams=%d: %d stripes, want %d",
				bytes, chunk, streams, len(plan), wantStripes)
		}
		off := 0
		minChunks, maxChunks := nChunks, 0
		for i, s := range plan {
			if s.Index != i {
				t.Fatalf("stripe %d has Index %d", i, s.Index)
			}
			if s.Offset != off {
				t.Fatalf("stripe %d offset %d, want %d (contiguous)", i, s.Offset, off)
			}
			if s.Offset%chunk != 0 {
				t.Fatalf("stripe %d offset %d not aligned to chunk %d", i, s.Offset, chunk)
			}
			if s.Bytes <= 0 {
				t.Fatalf("stripe %d has %d bytes", i, s.Bytes)
			}
			c := s.Chunks(chunk)
			if c < minChunks {
				minChunks = c
			}
			if c > maxChunks {
				maxChunks = c
			}
			off += s.Bytes
		}
		if off != bytes {
			t.Fatalf("plan covers %d of %d bytes", off, bytes)
		}
		if maxChunks > 0 && maxChunks-minChunks > 1 {
			t.Fatalf("uneven plan: stripe chunk counts span [%d, %d]", minChunks, maxChunks)
		}
	}
}

func TestPlanStripesDegenerate(t *testing.T) {
	if p := PlanStripes(0, 1000, 4); p != nil {
		t.Errorf("zero bytes: %v", p)
	}
	if p := PlanStripes(100, 0, 4); p != nil {
		t.Errorf("zero chunk: %v", p)
	}
	if p := PlanStripes(100, 1000, 0); len(p) != 1 || p[0].Bytes != 100 {
		t.Errorf("streams=0 should fall back to one stripe: %v", p)
	}
	// Fewer chunks than streams: one stripe per chunk.
	p := PlanStripes(2500, 1000, 8)
	if len(p) != 3 {
		t.Fatalf("2500B/1000B across 8 streams: %d stripes, want 3", len(p))
	}
	if p[2].Bytes != 500 {
		t.Errorf("final stripe %d bytes, want the 500B remainder", p[2].Bytes)
	}
}

func TestStripeConfig(t *testing.T) {
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(payload)
	base := Config{TransferID: 10, Bytes: 5000, ChunkSize: 1000, Payload: payload}
	plan := PlanStripes(5000, 1000, 2)
	c0 := StripeConfig(base, plan[0])
	c1 := StripeConfig(base, plan[1])
	if c0.TransferID != 10 || c1.TransferID != 11 {
		t.Errorf("transfer ids %d, %d", c0.TransferID, c1.TransferID)
	}
	if c0.Bytes+c1.Bytes != 5000 {
		t.Errorf("stripe bytes %d + %d", c0.Bytes, c1.Bytes)
	}
	if c1.StripeOffset != c0.Bytes || c1.StripeTotal != 5000 {
		t.Errorf("stripe coords: offset %d total %d", c1.StripeOffset, c1.StripeTotal)
	}
	if !bytes.Equal(append(append([]byte(nil), c0.Payload...), c1.Payload...), payload) {
		t.Error("stripe payloads do not reassemble the original")
	}
	// Stripe configs must pass validation.
	if _, err := c1.withDefaults(); err != nil {
		t.Errorf("stripe config invalid: %v", err)
	}
}

func TestStripeConfigSourceView(t *testing.T) {
	const total, chunk = 5000, 1000
	src := SeededSource(7, total, chunk)
	base := Config{TransferID: 1, Bytes: total, ChunkSize: chunk, Source: src}
	plan := PlanStripes(total, chunk, 2)
	whole := SeededPayload(7, total, chunk)
	var got []byte
	for _, s := range plan {
		sc := StripeConfig(base, s)
		for seq := 0; seq < sc.NumPackets(); seq++ {
			got = append(got, sc.Source(seq, nil)...)
		}
	}
	if !bytes.Equal(got, whole) {
		t.Error("offset sources do not reproduce the logical stream")
	}
}

func TestStripeValidation(t *testing.T) {
	bad := []Config{
		{Bytes: 1000, ChunkSize: 100, StripeOffset: -100, StripeTotal: 2000},
		{Bytes: 1000, ChunkSize: 100, StripeOffset: 55, StripeTotal: 2000},  // misaligned
		{Bytes: 1000, ChunkSize: 100, StripeOffset: 500, StripeTotal: 1200}, // total too small
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadConfig", i, c, err)
		}
	}
	ok := Config{Bytes: 1000, ChunkSize: 100, StripeOffset: 500, StripeTotal: 1500}
	if _, err := ok.withDefaults(); err != nil {
		t.Errorf("valid stripe rejected: %v", err)
	}
}

// Concurrent stripes delivering out-of-order chunks through the merger must
// reassemble the payload through the global sink, and the per-stripe
// incremental checksums (stripe-local coordinates, exactly what each
// stripe's RecvResult.Checksum reports) must merge into the whole-transfer
// checksum.
func TestStripeMergerConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		total := 1 + rng.Intn(200_000)
		chunk := 16 + rng.Intn(1500)
		streams := 1 + rng.Intn(6)
		payload := make([]byte, total)
		rng.Read(payload)
		want := TransferChecksum(payload)

		out := make([]byte, total)
		m := NewStripeMerger(func(off int, b []byte) { copy(out[off:], b) })
		plan := PlanStripes(total, chunk, streams)
		sinks := make([]ChunkSink, len(plan))
		for i, s := range plan {
			sinks[i] = m.StripeSink(s)
		}
		sums := make([]uint16, len(plan))
		var wg sync.WaitGroup
		for i, s := range plan {
			wg.Add(1)
			go func(i int, sink ChunkSink, s Stripe, seed int64) {
				defer wg.Done()
				// Deliver the stripe's chunks in a shuffled order, as a
				// blast receiver would, accumulating the stripe-local
				// incremental checksum exactly like the engine does.
				var acc wire.SumAcc
				r := rand.New(rand.NewSource(seed))
				order := r.Perm(s.Chunks(chunk))
				for _, seq := range order {
					lo := seq * chunk
					hi := lo + chunk
					if hi > s.Bytes {
						hi = s.Bytes
					}
					acc.AddAt(lo, payload[s.Offset+lo:s.Offset+hi])
					sink(lo, payload[s.Offset+lo:s.Offset+hi])
				}
				sums[i] = acc.Sum16()
			}(i, sinks[i], s, int64(trial*10+i))
		}
		wg.Wait()
		if gotSum := MergeStripeChecksums(plan, sums); gotSum != want {
			t.Fatalf("trial %d: merged checksum %04x, want %04x", trial, gotSum, want)
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("trial %d: global sink did not reassemble the payload", trial)
		}
	}
}
