package core

import "time"

// Rate-based BBR-flavoured blast control — the "bbr" policy of the
// RateController registry.
//
// AIMD reads loss as a congestion verdict and cuts the window every time,
// which on a path with steady ~1% random loss (a radio hop, a cheap switch)
// never lets the pipe fill: the window saws between cuts and additive
// recovery while the bottleneck sits idle. BBR's insight (Cardwell et al.,
// and the delivery-rate framing Arslan & Kosar's tuner shares) is to build
// an explicit model of the path — maximum delivery rate, minimum round
// time — and pace to the model, treating isolated loss as noise:
//
//   - Startup mirrors slow-start: each clean window doubles the next until
//     the first loss or MaxWindow, finding the pipe's order of magnitude in
//     log₂ rounds.
//   - Steady state tolerates NAK-repaired loss: the window holds its size
//     (the strategy repaired the gap in one bounded response round), and
//     only *persistent* loss — lossEpoch consecutive lossy windows, the
//     signature of a standing queue or genuine congestion rather than
//     random drops — drains the window by one eighth.
//   - A silent timeout is still darkness: the window halves and pacing
//     backs off, exactly because no model survives a dead return path.
//   - Pacing cycles a gain over the estimated per-packet delivery interval
//     (probe faster one window in eight, drain slower the next, cruise at
//     the estimate otherwise), so the sender continuously re-probes for
//     freed bandwidth without standing queues.
//
// Determinism: window decisions above read only the recovery counters, so
// the window trajectory is identical across the simulator, the V kernel and
// UDP (the conformance suite pins this). The delivery-interval estimate
// reads WindowObs.Elapsed — substrate time — and feeds *pacing only*; see
// the contract in ratecontrol.go.
type bbrController struct {
	cfg     ControllerConfig
	win     int
	gap     time.Duration
	startup bool
	// cycleIdx walks the pacing-gain cycle; the window additively probes on
	// the probe-up phase.
	cycleIdx int
	// lossRun counts consecutive lossy (but not timed-out) windows.
	lossRun int
	// pacedRun counts consecutive windows actuated above MinGap; every
	// bbrRemeasure-th such window runs unpaced (BBR's PROBE_RTT analogue)
	// so the delivery model re-admits an honest sample instead of coasting
	// forever on the one that started the pacing.
	pacedRun int
	// intervals is a ring of recent per-packet delivery-interval samples
	// (window Elapsed over packets put on the wire, net of the pacing gap
	// the controller itself had in effect); the estimate is the ring
	// minimum, i.e. the maximum observed delivery rate, BBR's btlbw filter
	// in interval form.
	intervals [bbrRateWindow]time.Duration
	nSamples  int
	stats     ControllerStats
}

const (
	// bbrRateWindow is the delivery-rate filter depth, in windows.
	bbrRateWindow = 8
	// bbrCycleLen is the pacing-gain cycle length: one probe-up phase, one
	// drain phase, six cruise phases, mirroring BBR's eight-phase cycle.
	bbrCycleLen = 8
	// bbrLossEpoch is how many consecutive lossy windows signal persistent
	// congestion rather than random drops.
	bbrLossEpoch = 3
	// bbrPaceFloor is the smallest per-packet interval worth actuating: a
	// loopback-grade path delivers packets microseconds apart, where a
	// sleep-based pacer costs far more than it spaces, so the policy paces
	// only genuinely slow paths.
	bbrPaceFloor = 10 * time.Microsecond
	// bbrRemeasure bounds a pacing run: after this many consecutive paced
	// windows, one window runs unpaced to refresh the delivery model.
	bbrRemeasure = 8
)

func newBBRController(cfg ControllerConfig) *bbrController {
	cfg = cfg.withDefaults()
	c := &bbrController{cfg: cfg, win: cfg.InitWindow, gap: cfg.MinGap, startup: true}
	c.stats.Policy = ControllerBBR
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
	return c
}

func (c *bbrController) Window() int        { return c.win }
func (c *bbrController) Gap() time.Duration { return c.gap }

// Batch follows the window like AIMD's recommendation: a shrunken window
// should not burst through a ring sized for the clean-path window.
func (c *bbrController) Batch() int {
	if c.win < c.cfg.MaxBatch {
		return c.win
	}
	return c.cfg.MaxBatch
}

// minInterval returns the per-packet delivery-interval estimate: the
// minimum over the sample ring, or zero before any sample exists.
func (c *bbrController) minInterval() time.Duration {
	n := c.nSamples
	if n > bbrRateWindow {
		n = bbrRateWindow
	}
	var best time.Duration
	for i := 0; i < n; i++ {
		if s := c.intervals[i]; best == 0 || s < best {
			best = s
		}
	}
	return best
}

// paceGap derives the pacing gap from the delivery model and the current
// gain phase, clamped to [MinGap, MaxGap]. Paths faster than bbrPaceFloor
// per packet are not paced at all (see the constant).
func (c *bbrController) paceGap() time.Duration {
	base := c.minInterval()
	if base < bbrPaceFloor {
		return c.cfg.MinGap
	}
	g := base
	switch c.cycleIdx {
	case 0: // probe up: send a quarter faster than the estimate
		g = base * 4 / 5
	case 1: // drain: send a quarter slower, emptying any probe queue
		g = base * 5 / 4
	}
	if g > c.cfg.MaxGap {
		g = c.cfg.MaxGap
	}
	if g < c.cfg.MinGap {
		g = c.cfg.MinGap
	}
	if g > c.cfg.MinGap {
		if c.pacedRun++; c.pacedRun >= bbrRemeasure {
			c.pacedRun = 0
			return c.cfg.MinGap // PROBE_RTT analogue: one honest window
		}
	} else {
		c.pacedRun = 0
	}
	return g
}

func (c *bbrController) Observe(o WindowObs) {
	c.stats.Windows++
	// Delivery model update: one sample per clean, unpaced window. The
	// exclusions keep the model honest — each excluded class measures
	// something other than the path's delivery rate, and one bad sample in
	// the ring minimum starts a self-sustaining stall (the inflated gap
	// inflates the next Elapsed, which confirms the gap):
	//
	//   - A timed-out window measures the RTO estimator's patience: one
	//     silent Tr over a 256-packet window reads as ~1 ms/packet.
	//   - A window with recovery traffic (NAKs, retransmissions) measures
	//     response round-trips stacked on the send time; the first window
	//     of a 1%-loss transfer read as ~15 µs/packet on a ~2 µs/packet
	//     loopback path purely from its NAK rounds.
	//   - A window the controller itself paced (c.gap is not updated until
	//     the tail of this call, so it is still the gap this window ran
	//     under) measures the sleep — and a real sleep overshoots a
	//     microsecond-grade gap by the timer's whole granularity, so even
	//     netting the nominal gap out leaves the overshoot re-arming the
	//     model. paceGap's bbrRemeasure cycle guarantees unpaced windows
	//     keep coming, so the model refreshes instead of freezing.
	//
	// MinGap is an operator-configured floor the transfer never runs faster
	// than; it is in effect on every window, so it is netted out rather
	// than excluding everything.
	if o.Timeouts == 0 && o.Naks == 0 && o.Retransmits == 0 &&
		c.gap <= c.cfg.MinGap && o.Elapsed > 0 && o.Packets > 0 {
		sent := time.Duration(o.Packets + o.Retransmits)
		sample := o.Elapsed/sent - c.gap
		if sample < time.Nanosecond {
			sample = time.Nanosecond
		}
		c.intervals[c.nSamples%bbrRateWindow] = sample
		c.nSamples++
	}
	switch {
	case o.Timeouts > 0:
		// Darkness: halve (gentler than AIMD's quartering — the model will
		// re-fill the pipe quickly) and back pacing off.
		c.win /= 2
		if c.win < c.cfg.MinWindow {
			c.win = c.cfg.MinWindow
		}
		c.gap = c.gap*2 + c.cfg.GapStep
		if c.gap > c.cfg.MaxGap {
			c.gap = c.cfg.MaxGap
		}
		c.startup = false
		c.lossRun = 0
		c.stats.Cuts++
		c.stats.TimeoutCuts++
	case o.lossy():
		// NAK-repaired loss: tolerated. Only a run of lossy windows drains.
		c.startup = false
		c.lossRun++
		if c.lossRun >= bbrLossEpoch {
			c.lossRun = 0
			if cut := c.win - c.win/8; cut >= c.cfg.MinWindow {
				c.win = cut
				c.stats.Cuts++
			} else if c.win > c.cfg.MinWindow {
				c.win = c.cfg.MinWindow
				c.stats.Cuts++
			}
		}
		c.cycleIdx = (c.cycleIdx + 1) % bbrCycleLen
		c.gap = c.paceGap()
	default:
		c.lossRun = 0
		if c.startup {
			c.win *= 2
			if c.win >= c.cfg.MaxWindow {
				c.win = c.cfg.MaxWindow
				c.startup = false
			}
			c.stats.Growths++
		} else {
			c.cycleIdx = (c.cycleIdx + 1) % bbrCycleLen
			if c.cycleIdx == 0 && c.win < c.cfg.MaxWindow {
				// Probe-up phase: additive window probe for freed bandwidth.
				c.win += c.cfg.Increment
				if c.win > c.cfg.MaxWindow {
					c.win = c.cfg.MaxWindow
				}
				c.stats.Growths++
			}
		}
		c.gap = c.paceGap()
	}
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
}

func (c *bbrController) Stats() ControllerStats { return c.stats }
