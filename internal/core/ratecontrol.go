package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Pluggable blast rate control (Config.Controller).
//
// PR 4 hard-wired one policy — the AIMD state machine of adaptive.go —
// behind a Config.Adaptive bool. This file makes the policy a first-class
// choice: RateController is the interface the blast sender drives, and a
// registry of named factories turns a policy name (carried end to end: CLI
// flag → Config.Controller → REQ policy byte → serving side) into a
// controller instance. "aimd" preserves the PR-4 behaviour exactly;
// Adaptive=true maps to it for back-compat.
//
// Contract: a controller's *window and batch decisions* must be a pure
// function of its observation sequence's recovery counters — never of
// WindowObs.Elapsed, the wall clock, or unseeded randomness. The same
// NAK/retransmit/timeout events must produce the same window trajectory on
// the simulator, the V kernel and real UDP; the cross-substrate conformance
// suite pins that for every built-in policy, and the DES contention sweep's
// bit-identical parallelism depends on it. Elapsed (virtual time on the
// simulator, wall time on UDP) may inform *pacing* only: the gap spaces
// packets in time without changing which packets are sent, so timing-aware
// pacing keeps the counter trajectories conformant.

// RateController is the pluggable policy the controlled blast sender drives:
// before each window it asks Window (size in packets), Gap (inter-packet
// pacing, actuated on substrates implementing Pacer) and Batch (syscall
// batch recommendation, actuated through BatchLimiter); after each window it
// feeds back one WindowObs. Stats summarises the trajectory for
// SendResult.Controller. Controllers are used from the sender's goroutine
// only, like everything else in a protocol engine.
type RateController interface {
	Window() int
	Gap() time.Duration
	Batch() int
	Observe(WindowObs)
	Stats() ControllerStats
}

// ControllerFactory builds a fresh controller for one transfer.
type ControllerFactory func(ControllerConfig) RateController

// Built-in policy names.
const (
	// ControllerAIMD is the PR-4 additive-increase/multiplicative-decrease
	// discipline (adaptive.go): NAK-repaired loss cuts the window to 3/4, a
	// silent timeout quarters it and backs pacing off.
	ControllerAIMD = "aimd"
	// ControllerBBR is the rate-based BBR-flavoured policy (bbr.go):
	// delivery-rate and min-interval estimation drive pacing-gain cycling,
	// and modest random loss does not collapse the window.
	ControllerBBR = "bbr"
	// ControllerAutotune is the probing auto-tuner (autotune.go): a seeded
	// hill-climb perturbs window, batch and pacing online with accept/revert
	// epochs, after Arslan & Kosar's heuristic protocol tuning.
	ControllerAutotune = "autotune"
)

// controllerEntry pairs a factory with its stable wire id (the REQ policy
// byte; 0 for local-only policies that cannot ride a handshake).
type controllerEntry struct {
	id      uint8
	factory ControllerFactory
}

var controllerRegistry = map[string]controllerEntry{}

// RegisterController adds a named policy to the registry. id is the stable
// wire policy byte for the REQ handshake (pass 0 for a local-only policy a
// server cannot be asked for). Registration happens at init time; duplicate
// names or wire ids panic — they are programming errors, not runtime
// conditions.
func RegisterController(name string, id uint8, f ControllerFactory) {
	if name == "" || f == nil {
		panic("core: RegisterController needs a name and a factory")
	}
	if _, dup := controllerRegistry[name]; dup {
		panic(fmt.Sprintf("core: controller %q registered twice", name))
	}
	if id != 0 {
		for other, e := range controllerRegistry {
			if e.id == id {
				panic(fmt.Sprintf("core: controller wire id %d claimed by both %q and %q", id, other, name))
			}
		}
	}
	controllerRegistry[name] = controllerEntry{id: id, factory: f}
}

// ControllerNames returns the registered policy names in deterministic
// (sorted) order — the iteration order CLIs and error messages present.
func ControllerNames() []string {
	names := make([]string, 0, len(controllerRegistry))
	for name := range controllerRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewRateController instantiates a registered policy. Unknown names return
// ErrBadConfig naming the registered alternatives.
func NewRateController(name string, cfg ControllerConfig) (RateController, error) {
	e, ok := controllerRegistry[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown controller %q (registered: %s)",
			ErrBadConfig, name, strings.Join(ControllerNames(), ", "))
	}
	return e.factory(cfg), nil
}

// ControllerID returns the wire policy byte of a named controller (0 when
// the name is unknown or the policy is local-only).
func ControllerID(name string) uint8 { return controllerRegistry[name].id }

// ControllerNameOf maps a wire policy byte back to its name. Unknown
// non-zero bytes degrade to "aimd": a newer client's policy request is
// served with the baseline controller rather than refused — the byte is a
// preference, not a capability negotiation.
func ControllerNameOf(id uint8) string {
	if id == 0 {
		return ""
	}
	for name, e := range controllerRegistry {
		if e.id == id {
			return name
		}
	}
	return ControllerAIMD
}

// ValidateConfig applies Config defaulting and validation without running a
// transfer: CLIs use it to reject an unknown -controller name (or any other
// bad parameter) before dialing anything.
func ValidateConfig(cfg Config) error {
	_, err := cfg.withDefaults()
	return err
}

// BatchGeometry is optionally implemented by substrates whose flush syscall
// puts many frames on the wire as one unit — a GSO superbuffer. FlushUnit
// returns that unit in frames (1 when every frame is its own wire unit, as
// on the sendmmsg and WriteTo tiers). The controlled sender quantizes its
// batch actuation to whole units: at the GSO tier the flush threshold
// follows the window in superbuffer units rather than mmsg frame counts,
// because the kernel bursts a superbuffer back-to-back regardless — a
// threshold below one superbuffer only adds syscalls without shrinking the
// wire burst.
type BatchGeometry interface {
	FlushUnit() int
}

func init() {
	RegisterController(ControllerAIMD, 1, func(cfg ControllerConfig) RateController {
		return NewController(cfg)
	})
	RegisterController(ControllerBBR, 2, func(cfg ControllerConfig) RateController {
		return newBBRController(cfg)
	})
	RegisterController(ControllerAutotune, 3, func(cfg ControllerConfig) RateController {
		return newAutotuneController(cfg)
	})
}
