package core

import (
	"fmt"
	"sync"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Striping: one logical transfer split into contiguous chunk-aligned byte
// ranges, each moved by an independent protocol session, reassembled by
// offset on the receiving side. The planner and merger are substrate-free;
// the session fan-out (sockets, goroutines) lives with the substrate (see
// udplan.PullStriped). Striping is how a single large transfer exploits a
// concurrent server: per-stripe ack waits overlap, so the link never idles
// through a response round trip.

// Stripe is one contiguous byte range of a striped transfer. Offset is
// always a multiple of the transfer's chunk size, so stripe-local packet
// sequence numbers map to logical-stream chunks by pure addition.
type Stripe struct {
	Index  int
	Offset int // byte offset within the logical stream
	Bytes  int // stripe length in bytes
}

// Chunks returns the number of data packets the stripe needs.
func (s Stripe) Chunks(chunk int) int { return (s.Bytes + chunk - 1) / chunk }

// PlanStripes splits a bytes-long transfer chunked at chunk bytes into at
// most streams contiguous stripes. Every stripe boundary is chunk-aligned;
// chunks are spread as evenly as possible (earlier stripes take the
// remainder); only the final stripe's final chunk may be short. Transfers
// with fewer chunks than streams get one stripe per chunk. streams <= 1, or
// a degenerate size, yields a single stripe covering the whole transfer.
func PlanStripes(bytes, chunk, streams int) []Stripe {
	if bytes <= 0 || chunk <= 0 {
		return nil
	}
	n := (bytes + chunk - 1) / chunk
	k := streams
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	per, rem := n/k, n%k
	out := make([]Stripe, 0, k)
	off := 0
	for i := 0; i < k; i++ {
		chunks := per
		if i < rem {
			chunks++
		}
		size := chunks * chunk
		if off+size > bytes {
			size = bytes - off
		}
		out = append(out, Stripe{Index: i, Offset: off, Bytes: size})
		off += size
	}
	return out
}

// StripeConfig narrows a logical transfer's configuration to one stripe:
// Bytes becomes the stripe's length, the TransferID is offset by the stripe
// index (stripes are concurrent sessions and must demultiplex), and the
// stripe's coordinates within the logical stream are recorded so the REQ
// can carry them to the serving side. Payload and Source views are narrowed
// to the stripe's range; the caller attaches its own Sink (see
// StripeMerger).
func StripeConfig(cfg Config, s Stripe) Config {
	c := cfg
	c.Bytes = s.Bytes
	c.TransferID = cfg.TransferID + uint32(s.Index)
	c.StripeOffset = s.Offset
	c.StripeTotal = cfg.Bytes
	c.Sink = nil
	if cfg.Payload != nil {
		c.Payload = cfg.Payload[s.Offset : s.Offset+s.Bytes]
	}
	if cfg.Source != nil {
		chunk := cfg.ChunkSize
		if chunk == 0 {
			chunk = params.DataPacketSize
		}
		c.Source = OffsetSource(cfg.Source, s.Offset/chunk)
	}
	return c
}

// OffsetSource views a logical-stream chunk source through a stripe
// starting offsetChunks chunks in: the stripe's packet seq maps to logical
// chunk offsetChunks+seq. The stream source's own end-of-stream clipping
// shortens the final chunk exactly where the stripe plan expects it.
func OffsetSource(src ChunkSource, offsetChunks int) ChunkSource {
	return func(seq int, dst []byte) []byte { return src(offsetChunks+seq, dst) }
}

// StripeMerger routes per-stripe deliveries into one logical-stream view:
// each stripe's sink translates its local offsets to stream offsets and
// serialises calls into the optional global sink. It deliberately does NOT
// re-checksum chunks — every stripe's engine already accumulates its own
// incremental checksum (RecvResult.Checksum), and MergeStripeChecksums
// combines those for free, so the per-chunk hot path stays as cheap as an
// unstriped transfer's.
type StripeMerger struct {
	mu   sync.Mutex
	sink ChunkSink
}

// NewStripeMerger builds a merger; sink, when non-nil, receives every
// distinct chunk at its logical-stream offset (serialised by a lock —
// stripes deliver concurrently).
func NewStripeMerger(sink ChunkSink) *StripeMerger {
	return &StripeMerger{sink: sink}
}

// StripeSink returns the ChunkSink one stripe's receiver should deliver
// into — always non-nil, so the stripe's engine stays in streaming mode
// (no transfer-sized Data buffer) even when no global sink is installed.
func (m *StripeMerger) StripeSink(s Stripe) ChunkSink {
	if m.sink == nil {
		return func(int, []byte) {}
	}
	base := s.Offset
	return func(off int, b []byte) {
		m.mu.Lock()
		m.sink(base+off, b)
		m.mu.Unlock()
	}
}

// MergeStripeChecksums folds per-stripe transfer checksums — each computed
// by its stripe's engine in stripe-local coordinates (RecvResult.Checksum)
// — into the whole-stream Internet checksum, equal to TransferChecksum over
// the reassembled bytes. sums[i] belongs to stripes[i].
func MergeStripeChecksums(stripes []Stripe, sums []uint16) uint16 {
	var acc wire.SumAcc
	for i, s := range stripes {
		acc.AddChecksumAt(s.Offset, sums[i])
	}
	return acc.Sum16()
}

// validateStripe checks the stripe coordinates of a config (called from
// withDefaults once sizes are resolved).
func (c *Config) validateStripe() error {
	if c.StripeOffset == 0 && c.StripeTotal == 0 {
		return nil
	}
	switch {
	case c.StripeOffset < 0:
		return fmt.Errorf("%w: StripeOffset must be non-negative, got %d", ErrBadConfig, c.StripeOffset)
	case c.StripeOffset%c.ChunkSize != 0:
		return fmt.Errorf("%w: StripeOffset %d is not chunk-aligned (chunk %d)", ErrBadConfig, c.StripeOffset, c.ChunkSize)
	case c.StripeTotal < c.StripeOffset+c.Bytes:
		return fmt.Errorf("%w: StripeTotal %d < StripeOffset %d + Bytes %d", ErrBadConfig, c.StripeTotal, c.StripeOffset, c.Bytes)
	}
	return nil
}
