// Package core implements the paper's three protocol classes — stop-and-wait,
// sliding window and blast — plus the four blast retransmission strategies of
// §3.2 and the multiblast scheme of §3.1.3.
//
// Protocol engines are plain serial programs (the paper implements them as
// busy-wait standalone programs and interrupt-level kernel code; neither has
// process scheduling) written against the Env interface. The same code runs
// on two substrates:
//
//   - internal/sim provides a virtual-time Env that charges the paper's copy
//     and wire costs, so simulated elapsed times reproduce §2.1.3's closed
//     forms exactly;
//   - internal/udplan provides a wall-clock Env over real UDP sockets.
package core

import (
	"errors"
	"os"
	"time"

	"blastlan/internal/wire"
)

// Env is the substrate a protocol engine runs on. Implementations must be
// used from a single goroutine (the paper's protocols are strictly serial).
type Env interface {
	// Now returns the current time (virtual or wall-clock) since an
	// arbitrary epoch.
	Now() time.Duration

	// Compute accounts for d of protocol-internal CPU work. Simulated
	// environments advance the virtual clock; real environments may treat
	// it as a no-op because real work takes real time.
	Compute(d time.Duration)

	// Send transmits a packet to the peer and returns when the transmission
	// has left the interface (the paper's single-buffered busy-wait
	// semantics).
	Send(p *wire.Packet) error

	// SendAsync hands a packet to the interface and returns once it has
	// been copied in, allowing copy/transmit overlap on double-buffered
	// interfaces (§2.1.3). On substrates without that distinction it is
	// equivalent to Send.
	SendAsync(p *wire.Packet) error

	// Recv returns the next packet from the peer. timeout < 0 waits
	// forever. On expiry it returns an error satisfying
	// errors.Is(err, os.ErrDeadlineExceeded).
	Recv(timeout time.Duration) (*wire.Packet, error)
}

// BatchFlusher is optionally implemented by substrates that queue outbound
// packets for batched transmission (e.g. a sendmmsg- or UDP_SEGMENT-backed
// UDP endpoint, which amortises one syscall across a whole blast window).
// FlushBatch writes every queued packet to the wire, in the order it was
// queued. Substrates must also flush implicitly before blocking in Recv and
// on close, so the explicit hook is a latency optimisation, never a
// correctness requirement.
//
// The engines guarantee batching substrates a useful geometry: every
// mid-window data frame of a transfer is the same size (ChunkSize), and the
// one shorter data frame — the transfer's tail chunk — always carries
// FlagLast (fillData marks seq == total-1 as last even mid-window), which
// substrates flush separately along with all control traffic. A flush
// therefore carries equal-sized frames with at most one shorter trailing
// frame, exactly the segment layout a GSO superbuffer may carry — see
// wire.FrameBytes and TestFlushGeometryGSOCompatible.
type BatchFlusher interface {
	FlushBatch() error
}

// FlushBatch flushes env's outbound batch queue if the substrate batches;
// on all other substrates it is a no-op. The blast sender calls it once per
// window, between the unreliable packets and the reliable last, so the
// window is on the wire before the response timer starts.
func FlushBatch(env Env) error {
	if f, ok := env.(BatchFlusher); ok {
		return f.FlushBatch()
	}
	return nil
}

// PacketReuser is optionally implemented by substrates whose Send and
// SendAsync fully consume the packet — encoding or copying it — before
// returning, so a sender may reuse one Packet value across data sends and
// keep its steady-state loop allocation-free. The simulator delivers
// payload-elided packets by reference and must NOT implement this.
type PacketReuser interface {
	PacketConsumedOnSend()
}

// scratchPacket returns a reusable packet for env's data sends, or nil when
// the substrate retains references and every send needs a fresh packet.
func scratchPacket(env Env) *wire.Packet {
	if _, ok := env.(PacketReuser); ok {
		return new(wire.Packet)
	}
	return nil
}

// IsTimeout reports whether err is a receive-deadline expiry.
func IsTimeout(err error) bool { return errors.Is(err, os.ErrDeadlineExceeded) }

// ErrGiveUp is returned by senders that exhaust Config.MaxAttempts without
// completing the transfer (the paper's protocols never give up; the bound
// exists so that simulations and real transfers terminate).
var ErrGiveUp = errors.New("core: transfer abandoned after maximum attempts")

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("core: invalid config")
