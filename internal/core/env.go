// Package core implements the paper's three protocol classes — stop-and-wait,
// sliding window and blast — plus the four blast retransmission strategies of
// §3.2 and the multiblast scheme of §3.1.3.
//
// Protocol engines are plain serial programs (the paper implements them as
// busy-wait standalone programs and interrupt-level kernel code; neither has
// process scheduling) written against the Env interface. The same code runs
// on two substrates:
//
//   - internal/sim provides a virtual-time Env that charges the paper's copy
//     and wire costs, so simulated elapsed times reproduce §2.1.3's closed
//     forms exactly;
//   - internal/udplan provides a wall-clock Env over real UDP sockets.
package core

import (
	"errors"
	"os"
	"time"

	"blastlan/internal/wire"
)

// Env is the substrate a protocol engine runs on. Implementations must be
// used from a single goroutine (the paper's protocols are strictly serial).
type Env interface {
	// Now returns the current time (virtual or wall-clock) since an
	// arbitrary epoch.
	Now() time.Duration

	// Compute accounts for d of protocol-internal CPU work. Simulated
	// environments advance the virtual clock; real environments may treat
	// it as a no-op because real work takes real time.
	Compute(d time.Duration)

	// Send transmits a packet to the peer and returns when the transmission
	// has left the interface (the paper's single-buffered busy-wait
	// semantics).
	Send(p *wire.Packet) error

	// SendAsync hands a packet to the interface and returns once it has
	// been copied in, allowing copy/transmit overlap on double-buffered
	// interfaces (§2.1.3). On substrates without that distinction it is
	// equivalent to Send.
	SendAsync(p *wire.Packet) error

	// Recv returns the next packet from the peer. timeout < 0 waits
	// forever. On expiry it returns an error satisfying
	// errors.Is(err, os.ErrDeadlineExceeded).
	Recv(timeout time.Duration) (*wire.Packet, error)
}

// IsTimeout reports whether err is a receive-deadline expiry.
func IsTimeout(err error) bool { return errors.Is(err, os.ErrDeadlineExceeded) }

// ErrGiveUp is returned by senders that exhaust Config.MaxAttempts without
// completing the transfer (the paper's protocols never give up; the bound
// exists so that simulations and real transfers terminate).
var ErrGiveUp = errors.New("core: transfer abandoned after maximum attempts")

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("core: invalid config")
