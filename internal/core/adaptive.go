package core

import "time"

// AIMD blast rate control — the "aimd" policy of the RateController
// registry (ratecontrol.go), which the deprecated Config.Adaptive maps to.
//
// The paper fixes every transfer parameter — window, batch, retransmission
// interval — at connection setup, which is exactly right for its matched
// pair of otherwise-idle machines and exactly wrong for a shared network
// whose loss and latency the sender cannot know in advance. Heuristic
// protocol tuning for high-throughput transfers (Arslan & Kosar) adjusts
// the winning parameters from observed loss instead; this controller does
// the same for the blast engine with the classic AIMD discipline:
//
//   - a clean window (no retransmissions, NAKs or timeouts) grows the next
//     window: doubled while in the initial slow-start, by Increment packets
//     afterwards, up to MaxWindow;
//   - a window that needed NAK-driven recovery is wire loss the strategy
//     already repaired cheaply — one prompt response round, bounded resend
//     — so the decrease is the gentle multiplicative cut to 3/4 (enough to
//     bound go-back-n waste per future loss without starving the pipe on a
//     path with steady random loss);
//   - a window that needed a silent-timeout retransmission is the expensive
//     signal — the receiver (or the return path) went dark — so the window
//     quarters AND the inter-packet pacing gap backs off multiplicatively,
//     spacing future frames out in time as well as in number.
//
// The controller is a pure, substrate-independent function of its
// observation sequence: the same NAK/retransmit/timeout events produce the
// same window trajectory on the simulator, the V kernel and real UDP, which
// is what lets the cross-substrate conformance suite pin adaptive transfers
// too. Substrate-specific actuation (pacing sleeps, syscall batch rings) is
// applied through the optional Pacer and BatchLimiter interfaces; substrates
// without them simply get the window adjustments.
//
// Adaptive mode also subsumes Config.AdaptiveTr: response timing is learned
// online with the Jacobson/Karn estimator (rto.go), seeded by
// RetransTimeout. A fixed 250 ms Tr turns every lost last-packet or ack
// into a quarter-second stall; the estimator converges to the real response
// time and makes those stalls proportionate.

// ControllerConfig parameterises the AIMD controller. The zero value takes
// the defaults documented per field.
type ControllerConfig struct {
	// InitWindow is the first window size in packets (default 32).
	InitWindow int
	// MinWindow floors multiplicative decrease (default 16: below that the
	// per-window response round trip dominates and throughput collapses
	// from the other side).
	MinWindow int
	// MaxWindow caps growth (default 512).
	MaxWindow int
	// Increment is the additive increase per clean window once slow-start
	// has ended (default 16).
	Increment int
	// MaxBatch caps the syscall-batch recommendation (default 32). The
	// recommendation follows the window down so a shrunken window is not
	// burst out of an oversized ring.
	MaxBatch int
	// GapStep is the pacing increment added on a timeout window
	// (default 5µs).
	GapStep time.Duration
	// MaxGap caps the inter-packet pacing gap (default 100µs).
	MaxGap time.Duration
	// MinGap floors the pacing gap (default 0: clean paths run at line
	// rate). The adaptive sender seeds it with the substrate's
	// pre-configured gap, so a deliberately paced endpoint never runs
	// faster than its operator configured.
	MinGap time.Duration
	// Seed parameterises policies that draw pseudo-random decisions (the
	// autotune hill-climb's perturbation order). Zero selects a fixed
	// default, so an unseeded controller is still deterministic. The
	// controlled sender seeds it from the transfer id: both substrates of a
	// conformance pair see the same id, hence the same decision sequence.
	Seed int64
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.InitWindow <= 0 {
		c.InitWindow = 32
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 16
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 512
	}
	if c.Increment <= 0 {
		c.Increment = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.GapStep <= 0 {
		c.GapStep = 5 * time.Microsecond
	}
	if c.MaxGap <= 0 {
		c.MaxGap = 100 * time.Microsecond
	}
	if c.MinWindow > c.MaxWindow {
		c.MinWindow = c.MaxWindow
	}
	if c.InitWindow < c.MinWindow {
		c.InitWindow = c.MinWindow
	}
	if c.InitWindow > c.MaxWindow {
		c.InitWindow = c.MaxWindow
	}
	if c.MinGap < 0 {
		c.MinGap = 0
	}
	if c.MaxGap < c.MinGap {
		c.MaxGap = c.MinGap
	}
	return c
}

// WindowObs is what the sender observed driving one blast window to
// completion. Window and batch decision rules read only the recovery
// counters — that is what keeps controller trajectories identical across
// substrates (see ratecontrol.go). Elapsed is the substrate clock's measure
// of the window (virtual time on the simulator, wall time on UDP): policies
// may use it for pacing only, and it is zero on substrates or paths that do
// not measure it.
type WindowObs struct {
	Packets     int           // first-transmission packets in the window
	Retransmits int           // data packets re-sent recovering it
	Naks        int           // negative acknowledgements received
	Timeouts    int           // silent Tr expiries
	Elapsed     time.Duration // time driving the window, response round included
}

// lossy reports whether the window needed any recovery at all.
func (o WindowObs) lossy() bool {
	return o.Retransmits > 0 || o.Naks > 0 || o.Timeouts > 0
}

// ControllerStats summarises one transfer's controller trajectory — the
// per-stripe stats feed surfaced in SendResult.
type ControllerStats struct {
	Policy      string        // registered policy name ("aimd", "bbr", ...)
	Windows     int           // windows driven
	Growths     int           // windows after which the window grew
	Cuts        int           // windows after which the window shrank
	TimeoutCuts int           // of Cuts, those triggered by a silent timeout
	FinalWindow int           // window size after the last observation
	FinalGap    time.Duration // pacing gap after the last observation
}

// Controller is the AIMD state machine — the "aimd" entry of the
// RateController registry (ratecontrol.go). It is used from the sender's
// goroutine only, like everything else in a protocol engine.
type Controller struct {
	cfg       ControllerConfig
	win       int
	gap       time.Duration
	slowStart bool
	stats     ControllerStats
}

// NewController builds a controller in slow-start at cfg.InitWindow,
// pacing at cfg.MinGap.
func NewController(cfg ControllerConfig) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, win: cfg.InitWindow, gap: cfg.MinGap, slowStart: true}
	c.stats.Policy = ControllerAIMD
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
	return c
}

// Window returns the size of the next blast window, in packets.
func (c *Controller) Window() int { return c.win }

// Gap returns the current inter-packet pacing gap (zero on a clean path).
func (c *Controller) Gap() time.Duration { return c.gap }

// Batch returns the recommended syscall batch size: the window itself,
// capped at MaxBatch — a shrunken window should not be burst onto the wire
// through a ring sized for the clean-path window.
func (c *Controller) Batch() int {
	if c.win < c.cfg.MaxBatch {
		return c.win
	}
	return c.cfg.MaxBatch
}

// Observe folds in one completed window and adjusts the next window, the
// pacing gap and the batch recommendation per the AIMD rules.
func (c *Controller) Observe(o WindowObs) {
	c.stats.Windows++
	if !o.lossy() {
		if c.slowStart {
			c.win *= 2
		} else {
			c.win += c.cfg.Increment
		}
		if c.win > c.cfg.MaxWindow {
			c.win = c.cfg.MaxWindow
		}
		// Decay pacing back toward the configured floor (line rate when
		// none was set).
		c.gap /= 2
		if c.gap < c.cfg.MinGap {
			c.gap = c.cfg.MinGap
		}
		c.stats.Growths++
	} else {
		if o.Timeouts > 0 {
			c.win /= 4
			c.gap = c.gap*2 + c.cfg.GapStep
			if c.gap > c.cfg.MaxGap {
				c.gap = c.cfg.MaxGap
			}
			c.stats.TimeoutCuts++
		} else {
			c.win = c.win * 3 / 4
		}
		if c.win < c.cfg.MinWindow {
			c.win = c.cfg.MinWindow
		}
		c.slowStart = false
		c.stats.Cuts++
	}
	c.stats.FinalWindow = c.win
	c.stats.FinalGap = c.gap
}

// Stats returns the trajectory summary so far.
func (c *Controller) Stats() ControllerStats { return c.stats }

// Pacer is optionally implemented by substrates that can space data packets
// on the wire (udplan.Endpoint sleeps between datagram writes). The
// adaptive sender owns pacing while it runs — it updates the gap between
// windows — and restores the gap it found (Gap at transfer start, e.g. a
// user-configured pacing flag) when the transfer finishes.
type Pacer interface {
	Gap() time.Duration
	SetPacketGap(d time.Duration)
}

// BatchLimiter is optionally implemented by substrates whose syscall
// batching can be throttled mid-transfer without reallocating: the frame
// ring keeps its configured size and only the queued-frames flush
// threshold moves (n <= 1 flushes every frame). SetBatchLimit must not
// strand queued traffic (flush anything beyond the new threshold). The
// adaptive sender restores the original limit when the transfer finishes,
// so one lossy transfer never ratchets an endpoint's configured batching
// down for its successors.
type BatchLimiter interface {
	BatchLimit() int
	SetBatchLimit(n int)
}
