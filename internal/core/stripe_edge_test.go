package core

import (
	"bytes"
	"math/rand"
	"testing"

	"blastlan/internal/wire"
)

// Targeted StripeMerger/MergeStripeChecksums edge cases: odd stripe
// boundaries (odd chunk sizes make every stripe offset odd), single-chunk
// stripes, a zero-length synthetic final stripe, and merge-order
// independence — stripes complete in arbitrary order and the fold must not
// care.
func TestStripeMergerEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))

	cases := []struct {
		name    string
		total   int
		chunk   int
		streams int
	}{
		{"odd-chunk-odd-boundaries", 777, 7, 4}, // offsets 7k: odd stripe starts
		{"single-chunk-stripes", 5 * 11, 11, 8}, // fewer chunks than streams: one stripe per chunk
		{"short-final-chunk", 1000, 3, 3},       // 334 chunks, final chunk 1 byte
		{"one-byte-transfer", 1, 9, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := make([]byte, tc.total)
			rng.Read(payload)
			want := TransferChecksum(payload)
			plan := PlanStripes(tc.total, tc.chunk, tc.streams)

			out := make([]byte, tc.total)
			m := NewStripeMerger(func(off int, b []byte) { copy(out[off:], b) })
			sums := make([]uint16, len(plan))
			// Deliver stripes in reverse completion order with shuffled
			// chunks inside each, accumulating stripe-local checksums like
			// the engines do.
			for i := len(plan) - 1; i >= 0; i-- {
				s := plan[i]
				sink := m.StripeSink(s)
				var acc wire.SumAcc
				order := rng.Perm(s.Chunks(tc.chunk))
				for _, seq := range order {
					lo := seq * tc.chunk
					hi := lo + tc.chunk
					if hi > s.Bytes {
						hi = s.Bytes
					}
					acc.AddAt(lo, payload[s.Offset+lo:s.Offset+hi])
					sink(lo, payload[s.Offset+lo:s.Offset+hi])
				}
				sums[i] = acc.Sum16()
			}
			if !bytes.Equal(out, payload) {
				t.Fatal("merger did not reassemble the payload")
			}
			if got := MergeStripeChecksums(plan, sums); got != want {
				t.Fatalf("merged checksum %04x, want %04x", got, want)
			}

			// Merge-order independence: fold the per-stripe checksums in a
			// different order than the plan's and compare.
			var acc wire.SumAcc
			for _, i := range rng.Perm(len(plan)) {
				acc.AddChecksumAt(plan[i].Offset, sums[i])
			}
			if got := acc.Sum16(); got != want {
				t.Fatalf("shuffled merge %04x, want %04x", got, want)
			}
		})
	}
}

// TestMergeStripeChecksumsZeroLengthStripe pins the degenerate plan a
// failed or synthetic fan-out can produce: a zero-length stripe (its engine
// never ran, its checksum is the zero value) must merge as a no-op.
func TestMergeStripeChecksumsZeroLengthStripe(t *testing.T) {
	payload := []byte("stripe me gently, but completely, across the network")
	want := TransferChecksum(payload)
	plan := []Stripe{
		{Index: 0, Offset: 0, Bytes: 20},
		{Index: 1, Offset: 20, Bytes: len(payload) - 20},
		{Index: 2, Offset: len(payload), Bytes: 0}, // zero-length final stripe
	}
	sums := []uint16{
		TransferChecksum(payload[:20]),
		TransferChecksum(payload[20:]),
		0, // an engine that never ran
	}
	if got := MergeStripeChecksums(plan, sums); got != want {
		t.Fatalf("merged %04x, want %04x", got, want)
	}
	// The empty stream's real checksum must behave identically.
	sums[2] = TransferChecksum(nil)
	if got := MergeStripeChecksums(plan, sums); got != want {
		t.Fatalf("merged with empty-stream checksum %04x, want %04x", got, want)
	}
	// A zero-length stripe's sink must accept (and ignore) nothing without
	// panicking.
	m := NewStripeMerger(nil)
	sink := m.StripeSink(plan[2])
	sink(0, nil)
}
