package core

import (
	"testing"
	"time"
)

func clean(n int) WindowObs   { return WindowObs{Packets: n} }
func nakked(n int) WindowObs  { return WindowObs{Packets: n, Retransmits: n / 2, Naks: 1} }
func timeout(n int) WindowObs { return WindowObs{Packets: n, Retransmits: n, Timeouts: 1} }

func TestControllerSlowStart(t *testing.T) {
	c := NewController(ControllerConfig{})
	if c.Window() != 32 {
		t.Fatalf("initial window %d, want default 32", c.Window())
	}
	want := []int{64, 128, 256, 512, 512}
	for i, w := range want {
		c.Observe(clean(c.Window()))
		if c.Window() != w {
			t.Fatalf("after clean window %d: window %d, want %d", i+1, c.Window(), w)
		}
	}
	if st := c.Stats(); st.Windows != 5 || st.Growths != 5 || st.Cuts != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestControllerNakCutsAndAdditiveGrowth(t *testing.T) {
	c := NewController(ControllerConfig{InitWindow: 128})
	c.Observe(nakked(128))
	if c.Window() != 96 {
		t.Fatalf("after NAK loss: window %d, want 96 (cut to 3/4)", c.Window())
	}
	// Slow-start is over: a clean window now grows additively.
	c.Observe(clean(96))
	if c.Window() != 96+16 {
		t.Fatalf("post-loss clean growth: window %d, want 112", c.Window())
	}
	if c.Gap() != 0 {
		t.Errorf("NAK loss should not start pacing, gap %v", c.Gap())
	}
}

func TestControllerTimeoutQuartersAndPaces(t *testing.T) {
	c := NewController(ControllerConfig{InitWindow: 256})
	c.Observe(timeout(256))
	if c.Window() != 64 {
		t.Fatalf("after timeout: window %d, want 64 (quartered)", c.Window())
	}
	if c.Gap() != 5*time.Microsecond {
		t.Fatalf("after timeout: gap %v, want one GapStep", c.Gap())
	}
	c.Observe(timeout(64))
	if c.Gap() != 15*time.Microsecond {
		t.Fatalf("second timeout: gap %v, want 2*5+5 µs", c.Gap())
	}
	// Repeated timeouts floor the window and cap the gap.
	for i := 0; i < 10; i++ {
		c.Observe(timeout(c.Window()))
	}
	if c.Window() != 16 {
		t.Errorf("window floor: %d, want MinWindow 16", c.Window())
	}
	if c.Gap() != 100*time.Microsecond {
		t.Errorf("gap cap: %v, want MaxGap", c.Gap())
	}
	// Clean windows decay the gap back toward line rate.
	for i := 0; i < 20 && c.Gap() > 0; i++ {
		c.Observe(clean(c.Window()))
	}
	if c.Gap() != 0 {
		t.Errorf("gap did not decay to zero: %v", c.Gap())
	}
	st := c.Stats()
	if st.TimeoutCuts != 12 || st.Cuts != 12 {
		t.Errorf("stats %+v", st)
	}
}

// A pre-configured pacing gap is a floor: the controller backs off above
// it under timeouts and decays back down to it — never below — so an
// operator-paced endpoint never runs faster than configured.
func TestControllerGapFloor(t *testing.T) {
	const floor = 50 * time.Microsecond
	c := NewController(ControllerConfig{MinGap: floor})
	if c.Gap() != floor {
		t.Fatalf("initial gap %v, want the %v floor", c.Gap(), floor)
	}
	c.Observe(timeout(32))
	if c.Gap() <= floor {
		t.Fatalf("timeout did not raise the gap above the floor: %v", c.Gap())
	}
	for i := 0; i < 10; i++ {
		c.Observe(clean(c.Window()))
	}
	if c.Gap() != floor {
		t.Errorf("gap decayed to %v, want clamped at the %v floor", c.Gap(), floor)
	}
}

func TestControllerBatchFollowsWindow(t *testing.T) {
	c := NewController(ControllerConfig{InitWindow: 64, MaxBatch: 32})
	if c.Batch() != 32 {
		t.Fatalf("batch %d, want MaxBatch while the window is large", c.Batch())
	}
	c.Observe(timeout(64)) // window -> 16
	if c.Window() != 16 || c.Batch() != 16 {
		t.Fatalf("window %d batch %d, want both 16", c.Window(), c.Batch())
	}
}

func TestControllerDefaultsClamped(t *testing.T) {
	c := NewController(ControllerConfig{InitWindow: 1, MinWindow: 16, MaxWindow: 8})
	// MinWindow collapses onto MaxWindow, and InitWindow is clamped into
	// the [min, max] range.
	if c.Window() != 8 {
		t.Errorf("window %d, want clamped to 8", c.Window())
	}
}

// The controller must be a pure function of its observation sequence — the
// property the cross-substrate conformance of adaptive transfers rests on.
func TestControllerDeterministic(t *testing.T) {
	obs := []WindowObs{clean(32), clean(64), nakked(128), clean(64),
		timeout(72), clean(18), clean(26), nakked(34)}
	a := NewController(ControllerConfig{})
	b := NewController(ControllerConfig{})
	for i, o := range obs {
		a.Observe(o)
		b.Observe(o)
		if a.Window() != b.Window() || a.Gap() != b.Gap() || a.Batch() != b.Batch() {
			t.Fatalf("diverged at observation %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
