package core

import (
	"testing"
	"time"
)

func TestRTODisabledUsesFixed(t *testing.T) {
	r := newRTO(Config{RetransTimeout: 200 * time.Millisecond})
	if r.timeout() != 200*time.Millisecond {
		t.Errorf("timeout = %v", r.timeout())
	}
	r.sample(time.Millisecond) // ignored when disabled
	if r.timeout() != 200*time.Millisecond {
		t.Errorf("disabled estimator moved: %v", r.timeout())
	}
}

func TestRTOFirstSample(t *testing.T) {
	r := newRTO(Config{RetransTimeout: 200 * time.Millisecond, AdaptiveTr: true})
	if r.timeout() != 200*time.Millisecond {
		t.Error("unprimed estimator must use the seed")
	}
	r.sample(4 * time.Millisecond)
	// RFC 6298: srtt = R, rttvar = R/2, RTO = R + 4·R/2 = 3R.
	if got, want := r.timeout(), 12*time.Millisecond; got != want {
		t.Errorf("first RTO = %v, want %v", got, want)
	}
}

func TestRTOConvergesToSteadyResponse(t *testing.T) {
	r := newRTO(Config{RetransTimeout: time.Second, AdaptiveTr: true})
	for i := 0; i < 100; i++ {
		r.sample(3 * time.Millisecond)
	}
	// rttvar decays toward 0; RTO approaches srtt ≈ 3 ms from above.
	if got := r.timeout(); got < 3*time.Millisecond || got > 5*time.Millisecond {
		t.Errorf("converged RTO = %v, want ≈ 3-5 ms", got)
	}
}

func TestRTOReactsToVariance(t *testing.T) {
	r := newRTO(Config{RetransTimeout: time.Second, AdaptiveTr: true})
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			r.sample(2 * time.Millisecond)
		} else {
			r.sample(10 * time.Millisecond)
		}
	}
	// With alternating 2/10 ms responses the 4·rttvar term must keep the
	// timeout above the largest observed response.
	if got := r.timeout(); got < 10*time.Millisecond {
		t.Errorf("RTO %v below max observed response", got)
	}
}

func TestRTOFloorAndGarbage(t *testing.T) {
	r := newRTO(Config{RetransTimeout: time.Second, AdaptiveTr: true})
	r.sample(0)  // ignored
	r.sample(-5) // ignored
	if r.primed {
		t.Error("non-positive samples must not prime the estimator")
	}
	for i := 0; i < 200; i++ {
		r.sample(10 * time.Microsecond)
	}
	if got := r.timeout(); got < rtoFloor {
		t.Errorf("RTO %v below floor %v", got, rtoFloor)
	}
}

func TestRTOMinRTORaisesFloor(t *testing.T) {
	r := newRTO(Config{RetransTimeout: time.Second, AdaptiveTr: true, MinRTO: 50 * time.Millisecond})
	for i := 0; i < 200; i++ {
		r.sample(time.Millisecond)
	}
	// srtt + 4·rttvar converges to ≈ 1 ms, well under the configured
	// floor: the floor must win, so a host with scheduling noise can pin
	// how aggressive the learned timeout is allowed to get.
	if got := r.timeout(); got != 50*time.Millisecond {
		t.Errorf("RTO %v, want the 50ms MinRTO floor", got)
	}
}
