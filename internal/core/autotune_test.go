package core

import (
	"testing"
	"time"
)

// drive feeds the tuner n windows through a deterministic path model and
// returns the window-size history.
func drive(c *autotuneController, n int, model func(win int) WindowObs) []int {
	hist := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c.Observe(model(c.Window()))
		hist = append(hist, c.Window())
	}
	return hist
}

// On a clean path the hill-climb converges to the preference-ordered
// optimum — maximum window and batch, minimum gap — and then holds it: the
// tuner's parameters are stable across whole epochs, not still wandering.
func TestAutotuneCleanPathConvergesAndHolds(t *testing.T) {
	c := newAutotuneController(ControllerConfig{})
	hist := drive(c, 200, func(win int) WindowObs { return clean(win) })
	// The second half of the run holds the preference optimum: at least one
	// full hold period of consecutive MaxWindow epochs (residual probing may
	// dip off-optimum for a single trial epoch between holds, by design).
	tail := hist[len(hist)/2:]
	run, best, at512 := 0, 0, 0
	for _, w := range tail {
		if w == 512 {
			run++
			at512++
		} else {
			run = 0
		}
		if run > best {
			best = run
		}
	}
	if best < autotuneHold*autotuneEpoch {
		t.Fatalf("no stable hold at MaxWindow: longest 512-run %d windows, want >= %d (tail %v)",
			best, autotuneHold*autotuneEpoch, tail[len(tail)-20:])
	}
	if at512 < len(tail)*3/4 {
		t.Errorf("spent only %d/%d of the tail at MaxWindow", at512, len(tail))
	}
	if c.Batch() != 32 {
		t.Errorf("batch converged to %d, want MaxBatch 32", c.Batch())
	}
	if c.Gap() != 0 {
		t.Errorf("gap converged to %v, want line rate", c.Gap())
	}
}

// A path whose go-back-n waste grows with the window pushes the climb back:
// the tuner settles below the lossy knee instead of pinning MaxWindow.
func TestAutotuneBacksOffWhereEfficiencyDrops(t *testing.T) {
	const knee = 128
	c := newAutotuneController(ControllerConfig{})
	drive(c, 400, func(win int) WindowObs {
		if win > knee {
			// Beyond the knee half the window is go-back-n waste.
			return WindowObs{Packets: win, Retransmits: win / 2, Naks: 1}
		}
		return clean(win)
	})
	if c.Window() > knee*3/2 {
		t.Errorf("tuner pinned window %d well beyond the efficiency knee %d", c.Window(), knee)
	}
	if c.Window() < 16 {
		t.Errorf("tuner collapsed to %d under bounded loss", c.Window())
	}
}

// A silent timeout bypasses the epoch machinery entirely: the window halves
// and pacing backs off on the very next decision.
func TestAutotuneTimeoutSafetyValve(t *testing.T) {
	c := newAutotuneController(ControllerConfig{InitWindow: 256})
	c.Observe(timeout(256))
	if c.Window() != 128 {
		t.Fatalf("after timeout: window %d, want 128", c.Window())
	}
	if c.Gap() != 5*time.Microsecond {
		t.Fatalf("after timeout: gap %v, want one GapStep", c.Gap())
	}
	st := c.Stats()
	if st.Cuts != 1 || st.TimeoutCuts != 1 {
		t.Errorf("stats %+v", st)
	}
}

// Same seed, same observations → identical trajectories (the conformance
// and DES-determinism contract); the perturbation order is a pure function
// of the seed.
func TestAutotuneDeterministic(t *testing.T) {
	model := func(win int) WindowObs {
		if win > 200 {
			return WindowObs{Packets: win, Retransmits: win / 3, Naks: 1}
		}
		return clean(win)
	}
	a := newAutotuneController(ControllerConfig{Seed: 42})
	b := newAutotuneController(ControllerConfig{Seed: 42})
	for i := 0; i < 300; i++ {
		a.Observe(model(a.Window()))
		b.Observe(model(b.Window()))
		if a.Window() != b.Window() || a.Batch() != b.Batch() || a.Gap() != b.Gap() {
			t.Fatalf("same-seed trajectories diverged at window %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
